// Shardsvc: a deadline-aware KV service on the sharded store, replacing
// the ad-hoc "one global lock around a map" pattern.
//
// The service below is the shape of a real request path: concurrent
// clients issue skewed Get/Put traffic, every request carries a deadline,
// and each request is tagged with its client id so the store can account
// admissions per stripe. It is run twice with identical traffic:
//
//   - Stripes: 1 — the global-lock design every service starts with. All
//     clients funnel through a single admission queue; the paper's
//     collapse dynamics (and deadline misses) apply to the whole service.
//   - Stripes: 16 — the same store, same lock spec, sharded. Contention
//     drops by the stripe count on uniform traffic, and the per-stripe
//     snapshot shows exactly which stripes still run hot under skew.
//
// Both per-stripe policies are runtime configuration — three registries,
// one API: the *lock spec* picks the admission policy (a Malthusian lock
// where collapse threatens, a plain TAS where it does not), and the
// *backend spec* picks the data structure serving the stripe (the
// hashmap for pure point traffic, an ordered skiplist/rbtree when the
// service must answer range queries). With an ordered backend the demo
// finishes with a cross-stripe Scan: the keys come back in global key
// order even though they are hash-scattered over the stripes.
//
// The adaptive act closes the loop: the same zipf traffic against a map
// built entirely from plain FIFO mcs-stp stripes, with an adaptation
// controller (shard.StartController driving the "malthusian" registry
// policy) watching per-stripe park rates. Stripes that collapse under
// the skew are demoted live — lock spec swapped to a culling mcscr-stp
// while requests are in flight — and the per-stripe spec report shows
// exactly which stripes the controller decided were worth a Malthusian
// lock.
//
// The chaos act injects the failure instead of waiting for one: a fault
// set (fault.New, the fourth registry) storms the hot stripe with
// critical-section stalls while a crowd of patient clients convoys
// behind them and a paced probe client measures the deadline SLO. The
// "slo" policy watches the per-stripe deadline-miss counters burn,
// demotes the stripe's lock to a culling mcscr-stp while the stall is
// still being injected — recovering the SLO without fixing the fault —
// and restores the FIFO spec on sustained calm after the fault lifts.
//
//	go run ./examples/shardsvc
//	go run ./examples/shardsvc 'lifocr?fairness=100'
//	go run ./examples/shardsvc 'mcscr-stp?fairness=1000' 'skiplist?seed=7'
package main

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/fault"
	"repro/policy"
	"repro/server"
	"repro/shard"
	"repro/wire"
)

const (
	clients  = 8
	keyspace = 4096
	deadline = 500 * time.Microsecond
	runFor   = 400 * time.Millisecond
)

func main() {
	spec := "mcscr-stp?fairness=1000"
	backend := "hashmap"
	if len(os.Args) > 1 {
		spec = os.Args[1]
	}
	if len(os.Args) > 2 {
		backend = os.Args[2]
	}
	for _, stripes := range []int{1, 16} {
		serve(spec, backend, stripes)
	}
	fmt.Println("Same traffic, same admission policy — sharding moves the service")
	fmt.Println("from one collapse-prone queue to many lightly loaded ones, and the")
	fmt.Println("per-stripe snapshot is where a hot stripe would show itself.")
	fmt.Println()
	serveAdaptive(backend)
	fmt.Println()
	serveChaos(backend)
	fmt.Println()
	serveRemote(backend)
}

// serveChaos injects the paper's failure mode on demand: a stall storm
// lengthens every critical section on the hot stripe while patient
// clients convoy behind it, and the slo policy defends the probe
// client's deadline budget by demoting the stripe's lock mid-fault.
func serveChaos(backend string) {
	const (
		hammerers = 10
		hold      = time.Millisecond
		probeSLO  = 8 * time.Millisecond
		interval  = 20 * time.Millisecond
	)
	m, err := shard.New(shard.Config{
		Stripes:     2,
		LockSpec:    "mcs-stp",
		BackendSpec: backend,
		Capacity:    keyspace,
		Seed:        1,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	hotKey := uint64(1)
	idx := m.StripeFor(hotKey)
	m.Put(hotKey, 0)

	set := fault.MustNew(fmt.Sprintf("stall?p=1&hold=%s&stripe=%d", hold, idx))
	m.SetInjector(set)
	pol := policy.MustNew("slo?target=0.25&fast=3&slow=30&min=4&hot=mcscr-stp")
	ctrl := shard.StartController(context.Background(), m, pol, interval)
	defer ctrl.Stop()

	// Patient hammerers (no deadline — they can afford to wait out the
	// stall) plus one paced probe client carrying the SLO.
	var probeOK, probeMiss atomic.Int64
	var stop atomic.Bool
	var wg sync.WaitGroup
	for c := 0; c < hammerers; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !stop.Load() {
				m.Put(hotKey, 1)
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		tick := time.NewTicker(2 * time.Millisecond)
		defer tick.Stop()
		for !stop.Load() {
			<-tick.C
			ctx, cancel := context.WithTimeout(context.Background(), probeSLO)
			_, _, err := m.GetContext(ctx, hotKey)
			cancel()
			if err != nil {
				probeMiss.Add(1)
			} else {
				probeOK.Add(1)
			}
		}
	}()

	lockSpec := func() string { ls, _ := m.StripeSpecs(idx); return ls }
	until := func(desc string, cond func() bool) bool {
		deadline := time.Now().Add(10 * time.Second)
		for !cond() {
			if time.Now().After(deadline) {
				fmt.Printf("  gave up waiting for %s\n", desc)
				return false
			}
			time.Sleep(5 * time.Millisecond)
		}
		return true
	}
	rate := func(window time.Duration) float64 {
		o0, m0 := probeOK.Load(), probeMiss.Load()
		time.Sleep(window)
		dOK, dMiss := probeOK.Load()-o0, probeMiss.Load()-m0
		if dOK+dMiss == 0 {
			return 0
		}
		return float64(dMiss) / float64(dOK+dMiss)
	}

	fmt.Printf("chaos: stripes=2 lock=mcs-stp policy=slo fault=%q\n", set.String())
	time.Sleep(6 * interval)
	fmt.Printf("  healthy: probe miss rate %.0f%%, stripe %d runs %q\n", 100*rate(5*interval), idx, lockSpec())

	set.Arm()
	start := time.Now()
	fmt.Printf("  fault armed: every critical section on stripe %d now stalls %v\n", idx, hold)
	if until("demotion", func() bool { return lockSpec() == "mcscr-stp" }) {
		fmt.Printf("  +%-6s slo demoted stripe %d to %q — fault still active\n",
			time.Since(start).Round(time.Millisecond), idx, lockSpec())
	}
	midFault := rate(5 * interval)
	fmt.Printf("  +%-6s probe miss rate %.0f%% with the stall still injected (stalls so far: %d)\n",
		time.Since(start).Round(time.Millisecond), 100*midFault, set.Stats().Stalls)

	set.Disarm()
	fmt.Printf("  fault lifted after %v\n", time.Since(start).Round(time.Millisecond))
	if until("restore", func() bool { return lockSpec() == "mcs-stp" }) {
		fmt.Printf("  +%-6s sustained calm restored %q (swaps total: %d)\n",
			time.Since(start).Round(time.Millisecond), lockSpec(), ctrl.Swaps())
	}

	stop.Store(true)
	wg.Wait()
	fmt.Println("The SLO is defended at the objective: the lock was demoted while the")
	fmt.Println("fault was still firing, and the budget recovered before the fault did.")
}

// serveAdaptive runs the same skewed deadline traffic against plain FIFO
// stripes and lets a controller demote the ones that collapse.
func serveAdaptive(backend string) {
	m, err := shard.New(shard.Config{
		Stripes:     8,
		LockSpec:    "mcs-stp",
		BackendSpec: backend,
		Capacity:    keyspace,
		HistoryCap:  1 << 18,
		// A wide LWSS window: the trailing working set should span
		// several scheduler quanta, not fit inside one goroutine's
		// timeslice (where it would always read 1 on a small host, and
		// oscillate as bursts align — flapping the controller).
		HistoryWindow: 1 << 16,
		Seed:          1,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	for k := uint64(0); k < keyspace; k++ {
		m.Put(k, 0)
	}
	// Either collapse signal demotes a stripe to the culling spec: a
	// park storm (the multicore symptom) or a recent working set of six
	// of the eight clients (the symptom this single-socket demo shows).
	// hold=1 reacts within one interval — a demo tuning, not production.
	pol := policy.MustNew("malthusian?parks=32&lwss=6&hold=1")
	ctrl := shard.StartController(context.Background(), m, pol, 20*time.Millisecond)

	// Patient traffic (no per-request deadline): queued waiters exhaust
	// their spin budget and park, which is exactly the collapse signal
	// the policy watches. The context still carries the client id, so
	// admissions land in the per-stripe histories.
	var ok atomic.Int64
	var stop atomic.Bool
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(id) + 1))
			zipf := rand.NewZipf(rng, 1.2, 1, keyspace-1)
			ctx := shard.WithClientID(context.Background(), id)
			for !stop.Load() {
				key := zipf.Uint64()
				var err error
				if rng.Intn(10) < 9 {
					_, _, err = m.GetContext(ctx, key)
				} else {
					_, err = m.PutContext(ctx, key, uint64(id))
				}
				if err != nil {
					panic(err) // uncancellable contexts cannot fail
				}
				ok.Add(1)
			}
		}(c)
	}
	time.Sleep(runFor)
	stop.Store(true)
	wg.Wait()
	ctrl.Stop()

	snap := m.Snapshot()
	fmt.Printf("adaptive: stripes=%d start lock=mcs-stp policy=malthusian\n", m.Stripes())
	fmt.Printf("  served=%d swaps=%d (culls=%d after demotion)\n",
		ok.Load(), ctrl.Swaps(), snap.Lock.Culls)
	for _, s := range snap.Stripes {
		if s.Swaps == 0 {
			continue
		}
		fmt.Printf("  stripe %2d: swaps=%d now %q (admissions=%d recentLWSS=%.0f parks=%d)\n",
			s.Index, s.Swaps, s.LockSpec, s.Fairness.Admissions, s.Fairness.RecentLWSS, s.Lock.Parks)
	}
	fmt.Println("The controller is the paper's thesis one level up: admission policy")
	fmt.Println("adapts to observed contention — per stripe, live, under traffic.")
}

func serve(spec, backend string, stripes int) {
	m, err := shard.New(shard.Config{
		Stripes:     stripes,
		LockSpec:    spec,
		BackendSpec: backend,
		Capacity:    keyspace,
		HistoryCap:  1 << 16,
		Seed:        1,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	for k := uint64(0); k < keyspace; k++ {
		m.Put(k, 0)
	}

	var ok, missed atomic.Int64
	var stop atomic.Bool
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(id) + 1))
			zipf := rand.NewZipf(rng, 1.2, 1, keyspace-1)
			base := shard.WithClientID(context.Background(), id)
			for !stop.Load() {
				ctx, cancel := context.WithTimeout(base, deadline)
				key := zipf.Uint64()
				var err error
				if rng.Intn(10) < 9 {
					_, _, err = m.GetContext(ctx, key)
				} else {
					_, err = m.PutContext(ctx, key, uint64(id))
				}
				cancel()
				if err != nil {
					missed.Add(1)
				} else {
					ok.Add(1)
				}
			}
		}(c)
	}
	time.Sleep(runFor)
	stop.Store(true)
	wg.Wait()

	snap := m.Snapshot()
	fmt.Printf("stripes=%-3d lock=%s backend=%s\n", m.Stripes(), spec, backend)
	fmt.Printf("  served=%d missed=%d (deadline %v)\n", ok.Load(), missed.Load(), deadline)
	fmt.Printf("  lock events: acquires=%d parks=%d cancels=%d culls=%d promotions=%d\n",
		snap.Lock.Acquires, snap.Lock.Parks, snap.Lock.Cancels, snap.Lock.Culls, snap.Lock.Promotions)
	// The busiest few stripes, by admissions: under zipf skew the hottest
	// stripe carries a working set all its own.
	active := make([]shard.StripeSnapshot, 0, len(snap.Stripes))
	for _, s := range snap.Stripes {
		if s.Fairness.Admissions > 0 {
			active = append(active, s)
		}
	}
	sort.Slice(active, func(i, j int) bool {
		return active[i].Fairness.Admissions > active[j].Fairness.Admissions
	})
	for i, s := range active {
		if i == 3 {
			fmt.Printf("  ... %d more stripes\n", len(active)-3)
			break
		}
		fmt.Printf("  stripe %2d: admissions=%-8d LWSS=%.1f Gini=%.3f keys=%d\n",
			s.Index, s.Fairness.Admissions, s.Fairness.AvgLWSS, s.Fairness.Gini, s.Len)
	}
	if m.Ordered() {
		// Range queries are what an ordered backend buys: the smallest
		// keys of the whole service, merged across stripes into global
		// key order even though they are hash-scattered, and still under
		// the same deadline machinery as every other op.
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
		defer cancel()
		var first []uint64
		if err := m.ScanContext(ctx, 0, keyspace-1, func(k, _ uint64) bool {
			first = append(first, k)
			return len(first) < 5
		}); err != nil {
			fmt.Printf("  ordered scan: %v\n", err)
		} else {
			fmt.Printf("  ordered scan, smallest keys: %v\n", first)
		}
	}
	fmt.Println()
}

// serveRemote is the served-layer act: the same deadline-aware traffic,
// but across a socket. An in-process shardd (the server package) serves
// the map over the wire protocol; clients attach their budgets at the
// socket and the stripe lock enforces them on the other side — a
// deadline miss here crossed a real network hop, a read loop, and a
// connection's pipeline before the lock culled it. The act closes with
// a graceful drain: the last pipelined responses flush before the
// listener dies.
func serveRemote(backend string) {
	fmt.Println("=== Over the wire: remote deadlines against an in-process shardd ===")
	srv, err := server.New(server.Config{
		Addr:        "127.0.0.1:0",
		Stripes:     8,
		LockSpec:    "mcscr-stp?fairness=1000",
		BackendSpec: backend,
	})
	if err != nil {
		fmt.Println("  server:", err)
		return
	}
	if err := srv.Start(); err != nil {
		fmt.Println("  server:", err)
		return
	}
	fmt.Printf("  shardd serving %d stripes of %q on %s\n", srv.Map().Stripes(), backend, srv.Addr())

	const clients, opsEach = 6, 400
	var ok, missed atomic.Int64
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			cl, err := wire.Dial(srv.Addr())
			if err != nil {
				fmt.Println("  dial:", err)
				return
			}
			defer cl.Close()
			cl.Class = uint8(1 + id%2) // two request classes share the stripes
			rng := rand.New(rand.NewSource(int64(id) + 1))
			for i := 0; i < opsEach; i++ {
				key := uint64(rng.Intn(1 << 12))
				deadline := time.Now().Add(2 * time.Millisecond)
				var err error
				if rng.Float64() < 0.8 {
					_, _, err = cl.Get(key, deadline)
				} else {
					_, err = cl.Put(key, uint64(id), deadline)
				}
				switch {
				case err == nil:
					ok.Add(1)
				case errors.Is(err, wire.ErrDeadline):
					missed.Add(1)
				default:
					fmt.Println("  client:", err)
					return
				}
			}
		}(c)
	}
	wg.Wait()

	snap := srv.Map().Snapshot()
	fmt.Printf("  %d requests served, %d deadline misses (server ledger: %d attempts, %d misses)\n",
		ok.Load(), missed.Load(), snap.DeadlineAttempts, snap.DeadlineMisses)
	fmt.Printf("  per-class attempts: unclassified=%d class1=%d class2=%d — the wire's class\n",
		snap.ClassDeadlineAttempts[0], snap.ClassDeadlineAttempts[1], snap.ClassDeadlineAttempts[2])
	fmt.Println("  byte landed in the stripe counters the slo policy reads.")
	if err := srv.Drain(); err != nil {
		fmt.Println("  drain:", err)
		return
	}
	fmt.Println("  drained: listener closed, in-flight responses flushed, nothing dropped.")
}
