// Shardsvc: a deadline-aware KV service on the sharded store, replacing
// the ad-hoc "one global lock around a map" pattern.
//
// The service below is the shape of a real request path: concurrent
// clients issue skewed Get/Put traffic, every request carries a deadline,
// and each request is tagged with its client id so the store can account
// admissions per stripe. It is run twice with identical traffic:
//
//   - Stripes: 1 — the global-lock design every service starts with. All
//     clients funnel through a single admission queue; the paper's
//     collapse dynamics (and deadline misses) apply to the whole service.
//   - Stripes: 16 — the same store, same lock spec, sharded. Contention
//     drops by the stripe count on uniform traffic, and the per-stripe
//     snapshot shows exactly which stripes still run hot under skew.
//
// Both per-stripe policies are runtime configuration — three registries,
// one API: the *lock spec* picks the admission policy (a Malthusian lock
// where collapse threatens, a plain TAS where it does not), and the
// *backend spec* picks the data structure serving the stripe (the
// hashmap for pure point traffic, an ordered skiplist/rbtree when the
// service must answer range queries). With an ordered backend the demo
// finishes with a cross-stripe Scan: the keys come back in global key
// order even though they are hash-scattered over the stripes.
//
// The final act closes the loop: the same zipf traffic against a map
// built entirely from plain FIFO mcs-stp stripes, with an adaptation
// controller (shard.StartController driving the "malthusian" registry
// policy) watching per-stripe park rates. Stripes that collapse under
// the skew are demoted live — lock spec swapped to a culling mcscr-stp
// while requests are in flight — and the per-stripe spec report shows
// exactly which stripes the controller decided were worth a Malthusian
// lock.
//
//	go run ./examples/shardsvc
//	go run ./examples/shardsvc 'lifocr?fairness=100'
//	go run ./examples/shardsvc 'mcscr-stp?fairness=1000' 'skiplist?seed=7'
package main

import (
	"context"
	"fmt"
	"math/rand"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/policy"
	"repro/shard"
)

const (
	clients  = 8
	keyspace = 4096
	deadline = 500 * time.Microsecond
	runFor   = 400 * time.Millisecond
)

func main() {
	spec := "mcscr-stp?fairness=1000"
	backend := "hashmap"
	if len(os.Args) > 1 {
		spec = os.Args[1]
	}
	if len(os.Args) > 2 {
		backend = os.Args[2]
	}
	for _, stripes := range []int{1, 16} {
		serve(spec, backend, stripes)
	}
	fmt.Println("Same traffic, same admission policy — sharding moves the service")
	fmt.Println("from one collapse-prone queue to many lightly loaded ones, and the")
	fmt.Println("per-stripe snapshot is where a hot stripe would show itself.")
	fmt.Println()
	serveAdaptive(backend)
}

// serveAdaptive runs the same skewed deadline traffic against plain FIFO
// stripes and lets a controller demote the ones that collapse.
func serveAdaptive(backend string) {
	m, err := shard.New(shard.Config{
		Stripes:     8,
		LockSpec:    "mcs-stp",
		BackendSpec: backend,
		Capacity:    keyspace,
		HistoryCap:  1 << 18,
		// A wide LWSS window: the trailing working set should span
		// several scheduler quanta, not fit inside one goroutine's
		// timeslice (where it would always read 1 on a small host, and
		// oscillate as bursts align — flapping the controller).
		HistoryWindow: 1 << 16,
		Seed:          1,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	for k := uint64(0); k < keyspace; k++ {
		m.Put(k, 0)
	}
	// Either collapse signal demotes a stripe to the culling spec: a
	// park storm (the multicore symptom) or a recent working set of six
	// of the eight clients (the symptom this single-socket demo shows).
	// hold=1 reacts within one interval — a demo tuning, not production.
	pol := policy.MustNew("malthusian?parks=32&lwss=6&hold=1")
	ctrl := shard.StartController(context.Background(), m, pol, 20*time.Millisecond)

	// Patient traffic (no per-request deadline): queued waiters exhaust
	// their spin budget and park, which is exactly the collapse signal
	// the policy watches. The context still carries the client id, so
	// admissions land in the per-stripe histories.
	var ok atomic.Int64
	var stop atomic.Bool
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(id) + 1))
			zipf := rand.NewZipf(rng, 1.2, 1, keyspace-1)
			ctx := shard.WithClientID(context.Background(), id)
			for !stop.Load() {
				key := zipf.Uint64()
				var err error
				if rng.Intn(10) < 9 {
					_, _, err = m.GetContext(ctx, key)
				} else {
					_, err = m.PutContext(ctx, key, uint64(id))
				}
				if err != nil {
					panic(err) // uncancellable contexts cannot fail
				}
				ok.Add(1)
			}
		}(c)
	}
	time.Sleep(runFor)
	stop.Store(true)
	wg.Wait()
	ctrl.Stop()

	snap := m.Snapshot()
	fmt.Printf("adaptive: stripes=%d start lock=mcs-stp policy=malthusian\n", m.Stripes())
	fmt.Printf("  served=%d swaps=%d (culls=%d after demotion)\n",
		ok.Load(), ctrl.Swaps(), snap.Lock.Culls)
	for _, s := range snap.Stripes {
		if s.Swaps == 0 {
			continue
		}
		fmt.Printf("  stripe %2d: swaps=%d now %q (admissions=%d recentLWSS=%.0f parks=%d)\n",
			s.Index, s.Swaps, s.LockSpec, s.Fairness.Admissions, s.Fairness.RecentLWSS, s.Lock.Parks)
	}
	fmt.Println("The controller is the paper's thesis one level up: admission policy")
	fmt.Println("adapts to observed contention — per stripe, live, under traffic.")
}

func serve(spec, backend string, stripes int) {
	m, err := shard.New(shard.Config{
		Stripes:     stripes,
		LockSpec:    spec,
		BackendSpec: backend,
		Capacity:    keyspace,
		HistoryCap:  1 << 16,
		Seed:        1,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	for k := uint64(0); k < keyspace; k++ {
		m.Put(k, 0)
	}

	var ok, missed atomic.Int64
	var stop atomic.Bool
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(id) + 1))
			zipf := rand.NewZipf(rng, 1.2, 1, keyspace-1)
			base := shard.WithClientID(context.Background(), id)
			for !stop.Load() {
				ctx, cancel := context.WithTimeout(base, deadline)
				key := zipf.Uint64()
				var err error
				if rng.Intn(10) < 9 {
					_, _, err = m.GetContext(ctx, key)
				} else {
					_, err = m.PutContext(ctx, key, uint64(id))
				}
				cancel()
				if err != nil {
					missed.Add(1)
				} else {
					ok.Add(1)
				}
			}
		}(c)
	}
	time.Sleep(runFor)
	stop.Store(true)
	wg.Wait()

	snap := m.Snapshot()
	fmt.Printf("stripes=%-3d lock=%s backend=%s\n", m.Stripes(), spec, backend)
	fmt.Printf("  served=%d missed=%d (deadline %v)\n", ok.Load(), missed.Load(), deadline)
	fmt.Printf("  lock events: acquires=%d parks=%d cancels=%d culls=%d promotions=%d\n",
		snap.Lock.Acquires, snap.Lock.Parks, snap.Lock.Cancels, snap.Lock.Culls, snap.Lock.Promotions)
	// The busiest few stripes, by admissions: under zipf skew the hottest
	// stripe carries a working set all its own.
	active := make([]shard.StripeSnapshot, 0, len(snap.Stripes))
	for _, s := range snap.Stripes {
		if s.Fairness.Admissions > 0 {
			active = append(active, s)
		}
	}
	sort.Slice(active, func(i, j int) bool {
		return active[i].Fairness.Admissions > active[j].Fairness.Admissions
	})
	for i, s := range active {
		if i == 3 {
			fmt.Printf("  ... %d more stripes\n", len(active)-3)
			break
		}
		fmt.Printf("  stripe %2d: admissions=%-8d LWSS=%.1f Gini=%.3f keys=%d\n",
			s.Index, s.Fairness.Admissions, s.Fairness.AvgLWSS, s.Fairness.Gini, s.Len)
	}
	if m.Ordered() {
		// Range queries are what an ordered backend buys: the smallest
		// keys of the whole service, merged across stripes into global
		// key order even though they are hash-scattered, and still under
		// the same deadline machinery as every other op.
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
		defer cancel()
		var first []uint64
		if err := m.ScanContext(ctx, 0, keyspace-1, func(k, _ uint64) bool {
			first = append(first, k)
			return len(first) < 5
		}); err != nil {
			fmt.Printf("  ordered scan: %v\n", err)
		} else {
			fmt.Printf("  ordered scan, smallest keys: %v\n", first)
		}
	}
	fmt.Println()
}
