// Collapse: run the RandArray experiment (§6.1) on the simulated T5
// machine and print the scalability-collapse curve of Figure 3 as ASCII,
// comparing classic MCS against the Malthusian MCSCR lock.
//
//	go run ./examples/collapse
package main

import (
	"fmt"
	"strings"

	"repro/sim"
	"repro/workloads"
)

func run(spec sim.LockSpec, threads int) sim.Result {
	cfg := sim.DefaultConfig(16) // T5 shape, capacities scaled 1/16
	workloads.ConfigureLargePages(&cfg)
	e := sim.New(cfg)
	l := e.NewLock(spec)
	workloads.BuildRandArray(e, l, threads, workloads.DefaultRandArray())
	return e.RunStandard(8_000_000)
}

func main() {
	sweep := []int{1, 2, 4, 5, 8, 12, 16, 24, 32, 48, 64}
	mcs := sim.LockSpec{Kind: sim.KindMCS, Mode: sim.ModeSpin}
	cr := sim.LockSpec{Kind: sim.KindMCSCR, Mode: sim.ModeSTP}

	fmt.Println("RandArray on the simulated 128-CPU machine (8 MB LLC /16 scale):")
	fmt.Println()
	fmt.Printf("%8s  %12s  %12s  %6s  %s\n", "threads", "MCS-S", "MCSCR-STP", "LWSS", "")
	var peak float64
	type row struct {
		n       int
		mcs, cr float64
		lwss    float64
	}
	var rows []row
	for _, n := range sweep {
		a := run(mcs, n)
		b := run(cr, n)
		rows = append(rows, row{n, a.StepsPerSec, b.StepsPerSec, b.Fairness.AvgLWSS})
		if a.StepsPerSec > peak {
			peak = a.StepsPerSec
		}
		if b.StepsPerSec > peak {
			peak = b.StepsPerSec
		}
	}
	for _, r := range rows {
		bar := func(v float64) string {
			return strings.Repeat("█", int(v/peak*30+0.5))
		}
		fmt.Printf("%8d  %12.0f  %12.0f  %6.1f  MCS %s\n", r.n, r.mcs, r.cr, r.lwss, bar(r.mcs))
		fmt.Printf("%8s  %12s  %12s  %6s   CR %s\n", "", "", "", "", bar(r.cr))
	}
	fmt.Println()
	fmt.Println("Past ~5 threads the FIFO curve collapses (LLC thrash); the Malthusian")
	fmt.Println("lock clamps the working set near saturation and holds the plateau.")
}
