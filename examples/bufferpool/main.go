// Bufferpool: the §6.11 pattern — a bounded pool of buffers guarded by a
// concurrency-restricting semaphore.
//
// The semaphore's mostly-LIFO admission keeps a small, cache-warm subset
// of worker goroutines cycling over the pool while the surplus waits; the
// rare (1/1000) FIFO append bounds starvation, which is what
// distinguishes this from folly's strictly-LIFO LifoSem.
//
//	go run ./examples/bufferpool
package main

import (
	"fmt"
	"sync"
	"time"

	"repro/metrics"
	"repro/semaphore"
)

const (
	buffers    = 4
	goroutines = 16
	runFor     = 500 * time.Millisecond
)

func main() {
	run := func(name string, appendProb float64) {
		sem := semaphore.New(buffers, appendProb, 42)
		var mu sync.Mutex
		pool := make([][]byte, buffers)
		for i := range pool {
			pool[i] = make([]byte, 1<<16)
		}
		rec := metrics.NewRecorder(1 << 16)

		stop := time.Now().Add(runFor)
		var wg sync.WaitGroup
		for g := 0; g < goroutines; g++ {
			wg.Add(1)
			go func(id int) {
				defer wg.Done()
				for time.Now().Before(stop) {
					sem.Acquire()
					mu.Lock()
					buf := pool[len(pool)-1]
					pool = pool[:len(pool)-1]
					rec.Record(id)
					mu.Unlock()

					for i := 0; i < len(buf); i += 512 {
						buf[i]++
					}

					mu.Lock()
					pool = append(pool, buf)
					mu.Unlock()
					sem.Release()
				}
			}(g)
		}
		wg.Wait()
		s := metrics.Summarize(rec.History(), metrics.DefaultWindow)
		fmt.Printf("%-12s ops=%7d  avg working set=%.1f goroutines  MTTR=%.1f  Gini=%.3f\n",
			name, rec.Len(), s.AvgLWSS, s.MTTR, s.Gini)
	}

	fmt.Printf("%d buffers, %d goroutines, %v each:\n\n", buffers, goroutines, runFor)
	run("FIFO", semaphore.FIFO)
	run("mostly-LIFO", semaphore.MostlyLIFO)
	fmt.Println("\nmostly-LIFO concentrates the pool on few goroutines (small working set)")
	fmt.Println("while still visiting every goroutine over time (bounded Gini).")
}
