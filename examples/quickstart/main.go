// Quickstart: build any lock in the family from a spec string, use it as
// a drop-in sync.Locker, and acquire it under a deadline.
//
// The Malthusian lock is API-compatible with sync.Mutex: construct one,
// Lock/Unlock. Under contention it transparently culls surplus threads
// into a passive set (improving cache residency for the active ones) and
// periodically promotes the eldest passive thread for long-term fairness.
// Every lock also satisfies lock.ContextMutex, so request-scoped code can
// bound its wait with a context or a duration.
//
//	go run ./examples/quickstart
//	go run ./examples/quickstart 'lifocr?fairness=100&seed=7'
package main

import (
	"fmt"
	"os"
	"sync"
	"time"

	"repro/lock"
)

func main() {
	// A lock spec names the implementation and its tunables; the registry
	// (lock.New) is the single source of truth for both. The default here
	// is the paper's Malthusian MCS with spin-then-park waiting and the
	// 1/1000 fairness period.
	spec := "mcscr-stp?fairness=1000&seed=1"
	if len(os.Args) > 1 {
		spec = os.Args[1]
	}
	m, err := lock.New(spec)
	if err != nil {
		fmt.Fprintln(os.Stderr, err) // the error lists the known locks
		os.Exit(2)
	}

	var (
		counter int
		wg      sync.WaitGroup
	)
	const goroutines, iters = 8, 10_000
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				m.Lock()
				counter++
				m.Unlock()
			}
		}()
	}
	wg.Wait()

	fmt.Printf("spec             = %s\n", spec)
	fmt.Printf("counter          = %d (want %d)\n", counter, goroutines*iters)
	if s, ok := m.(lock.Instrumented); ok {
		snap := s.Stats()
		fmt.Printf("acquisitions     = %d\n", snap.Acquires)
		fmt.Printf("culls            = %d (threads moved into the passive set)\n", snap.Culls)
		fmt.Printf("reprovisions     = %d (passive threads recalled to keep the lock saturated)\n", snap.Reprovisions)
		fmt.Printf("promotions       = %d (Bernoulli long-term-fairness grafts)\n", snap.Promotions)
		fmt.Printf("parks / unparks  = %d / %d\n", snap.Parks, snap.Unparks)
	}

	// Deadline-bounded acquisition: with the lock held elsewhere, a
	// request whose budget runs out abandons its place in the queue
	// instead of waiting forever.
	cm := m.(lock.ContextMutex)
	m.Lock()
	start := time.Now()
	if cm.TryLockFor(25 * time.Millisecond) {
		fmt.Println("TryLockFor unexpectedly succeeded on a held lock")
		m.Unlock()
	} else {
		fmt.Printf("TryLockFor gave up after %v (lock was held), as a deadline-bound request should\n",
			time.Since(start).Round(time.Millisecond))
	}
	//lockcheck:ignore cm is m through a type assertion, an alias the lockset cannot prove
	m.Unlock()
	if cm.TryLockFor(25 * time.Millisecond) {
		fmt.Println("...and acquired immediately once the lock was free")
		//lockcheck:ignore cm is m through a type assertion, an alias the lockset cannot prove
		m.Unlock()
	}
}
