// Quickstart: MCSCR as a drop-in sync.Locker.
//
// The Malthusian lock is API-compatible with sync.Mutex: construct one,
// Lock/Unlock. Under contention it transparently culls surplus threads
// into a passive set (improving cache residency for the active ones) and
// periodically promotes the eldest passive thread for long-term fairness.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"sync"

	"repro/lock"
)

func main() {
	// A Malthusian MCS lock with spin-then-park waiting and the paper's
	// 1/1000 fairness period. Every lock in the library satisfies
	// sync.Locker, so it composes with sync.Cond, sync.WaitGroup, etc.
	m := lock.NewMCSCR()

	var (
		counter int
		wg      sync.WaitGroup
	)
	const goroutines, iters = 8, 10_000
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				m.Lock()
				counter++
				m.Unlock()
			}
		}()
	}
	wg.Wait()

	s := m.Stats()
	fmt.Printf("counter          = %d (want %d)\n", counter, goroutines*iters)
	fmt.Printf("acquisitions     = %d\n", s.Acquires)
	fmt.Printf("culls            = %d (threads moved into the passive set)\n", s.Culls)
	fmt.Printf("reprovisions     = %d (passive threads recalled to keep the lock saturated)\n", s.Reprovisions)
	fmt.Printf("promotions       = %d (Bernoulli long-term-fairness grafts)\n", s.Promotions)
	fmt.Printf("parks / unparks  = %d / %d\n", s.Parks, s.Unparks)
}
