// Pipeline: the §6.7 producer-consumer pattern — a bounded blocking queue
// built from a Malthusian mutex and two concurrency-restricting condition
// variables, with every wait bounded by the run's deadline.
//
// With many more producers than consumers, a strict-FIFO queue forces the
// "futile acquisition" cycle (acquire, find the queue full, block, later
// reacquire: three lock acquisitions per message). Mostly-LIFO condvar
// admission lets the system settle into the paper's "fast flow" mode with
// a small, stable set of active producers.
//
// Shutdown uses WaitContext: each stage waits on its condition under the
// run's context, so when the deadline passes every goroutine unblocks
// with ctx.Err() and exits — no unbounded Wait can strand a producer
// whose consumers have already left (which is precisely the failure mode
// unbounded parking has in production services).
//
//	go run ./examples/pipeline
package main

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/condvar"
	"repro/lock"
)

const (
	producers = 12
	consumers = 3
	capacity  = 64
	runFor    = 500 * time.Millisecond
	drainFor  = 200 * time.Millisecond
)

func run(name string, appendProb float64) {
	// The registry resolves the lock spec; any lock.Names() entry works.
	m := lock.MustNew("mcscr-stp?seed=7")
	notEmpty := condvar.New(m, appendProb, 1)
	notFull := condvar.New(m, appendProb, 2)

	queue := 0
	var messages atomic.Int64
	var futile atomic.Int64
	stop := time.Now().Add(runFor)
	// Every wait in the pipeline is bounded by this context: producers
	// stop producing at the deadline, consumers get a drain grace period.
	ctx, cancel := context.WithDeadline(context.Background(), stop.Add(drainFor))
	defer cancel()

	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for time.Now().Before(stop) {
				m.Lock()
				for queue == capacity {
					futile.Add(1)
					if notFull.WaitContext(ctx) != nil {
						m.Unlock()
						return
					}
				}
				queue++
				m.Unlock()
				notEmpty.Signal()
			}
		}()
	}
	for c := 0; c < consumers; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				m.Lock()
				for queue == 0 {
					if notEmpty.WaitContext(ctx) != nil {
						m.Unlock()
						return // deadline passed and the queue is drained
					}
				}
				queue--
				messages.Add(1)
				m.Unlock()
				notFull.Signal()
			}
		}()
	}
	wg.Wait()
	got := messages.Load()
	fmt.Printf("%-12s messages=%8d  msgs/sec=%9.0f  waits-on-full=%d\n",
		name, got, float64(got)/runFor.Seconds(), futile.Load())
}

func main() {
	fmt.Printf("%d producers, %d consumers, queue bound %d, %v each:\n\n",
		producers, consumers, capacity, runFor)
	run("FIFO", condvar.FIFO)
	run("mostly-LIFO", condvar.MostlyLIFO)
}
