package wire

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"net"
	"time"
)

// Client is a synchronous client for one shardd connection: each call
// writes a request frame and blocks for its response. It is not safe
// for concurrent use — a load generator that wants in-flight pipelining
// owns its own frame buffers and uses the Append*/Parse* functions
// directly (cmd/shardload does); Client is the simple path for tests,
// examples, and admin verbs.
//
// The request headers a Client writes carry the remaining budget of the
// deadline passed per call, converted to microseconds at write time, so
// the server re-arms an equivalent context deadline on its side of the
// wire.
type Client struct {
	conn net.Conn
	br   *bufio.Reader
	wbuf []byte // request frame under construction, reused
	rbuf []byte // response payload, reused
	// Class is the request-class byte stamped on every point op and
	// scan. Zero (unclassified) by default.
	Class uint8
}

// Dial connects to a shardd server at addr (host:port).
func Dial(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return NewClient(conn), nil
}

// NewClient wraps an established connection (e.g. a net.Pipe end or a
// pre-dialed socket) in a Client.
func NewClient(conn net.Conn) *Client {
	return &Client{
		conn: conn,
		br:   bufio.NewReaderSize(conn, 4096),
		wbuf: make([]byte, 0, 256),
		rbuf: make([]byte, 0, 256),
	}
}

// Close closes the underlying connection.
func (c *Client) Close() error { return c.conn.Close() }

// budgetMicros converts an absolute deadline into the wire's
// remaining-budget field. The zero time means patient (0 on the wire).
// An already-expired deadline encodes as the ExpiredBudget sentinel —
// the server must see the expiry to count the miss, and it must see it
// deterministically rather than as a microsecond timer it may outrun.
func budgetMicros(deadline time.Time) uint32 {
	if deadline.IsZero() {
		return 0
	}
	d := time.Until(deadline)
	if d <= 0 {
		return ExpiredBudget
	}
	us := d.Microseconds()
	if us < 1 {
		us = 1
	}
	if us >= ExpiredBudget {
		return 0 // budgets beyond ~71 minutes are patient in practice
	}
	return uint32(us)
}

// Get fetches key. deadline zero means patient.
func (c *Client) Get(key uint64, deadline time.Time) (val uint64, found bool, err error) {
	c.wbuf = AppendGet(c.wbuf[:0], c.Class, budgetMicros(deadline), key)
	p, err := c.roundTrip(OpGet)
	if err != nil {
		return 0, false, err
	}
	return ParseGetResp(p)
}

// Put stores key=val and reports whether the key was fresh (absent
// before). deadline zero means patient.
func (c *Client) Put(key, val uint64, deadline time.Time) (fresh bool, err error) {
	c.wbuf = AppendPut(c.wbuf[:0], c.Class, budgetMicros(deadline), key, val)
	p, err := c.roundTrip(OpPut)
	if err != nil {
		return false, err
	}
	return ParseBoolResp(p)
}

// Delete removes key and reports whether it was present. deadline zero
// means patient.
func (c *Client) Delete(key uint64, deadline time.Time) (present bool, err error) {
	c.wbuf = AppendDel(c.wbuf[:0], c.Class, budgetMicros(deadline), key)
	p, err := c.roundTrip(OpDel)
	if err != nil {
		return false, err
	}
	return ParseBoolResp(p)
}

// Scan streams the pairs in [lo, hi] (ascending keys) to fn until fn
// returns false; max bounds the result (0 = MaxScanPairs). It returns
// the pair count.
func (c *Client) Scan(lo, hi uint64, max uint32, deadline time.Time, fn func(key, val uint64) bool) (int, error) {
	c.wbuf = AppendScan(c.wbuf[:0], c.Class, budgetMicros(deadline), lo, hi, max)
	p, err := c.roundTrip(OpScan)
	if err != nil {
		return 0, err
	}
	return ParseScanResp(p, fn)
}

// Ping round-trips an empty frame.
func (c *Client) Ping() error {
	c.wbuf = AppendPing(c.wbuf[:0])
	_, err := c.roundTrip(OpPing)
	return err
}

// Info returns the server's "key=value" description lines (lock spec,
// backend spec, policy, stripes, swap count, conn model).
func (c *Client) Info() (string, error) {
	c.wbuf = AppendInfo(c.wbuf[:0])
	p, err := c.roundTrip(OpInfo)
	if err != nil {
		return "", err
	}
	return string(p), nil
}

// FaultArm installs and arms a fault set on the server (spec grammar:
// fault.New).
func (c *Client) FaultArm(spec string) error {
	c.wbuf = AppendFaultArm(c.wbuf[:0], spec)
	_, err := c.roundTrip(OpFault)
	return err
}

// FaultDisarm stops all server-side injection.
func (c *Client) FaultDisarm() error {
	c.wbuf = AppendFaultDisarm(c.wbuf[:0])
	_, err := c.roundTrip(OpFault)
	return err
}

// FaultStats returns the armed fault set's evidence counters as
// "key=value" lines.
func (c *Client) FaultStats() (string, error) {
	c.wbuf = AppendFaultStats(c.wbuf[:0])
	p, err := c.roundTrip(OpFault)
	if err != nil {
		return "", err
	}
	return string(p), nil
}

// roundTrip writes the frame staged in wbuf and reads one response,
// returning its payload (aliasing rbuf — valid until the next call).
func (c *Client) roundTrip(op Op) ([]byte, error) {
	if _, err := c.conn.Write(c.wbuf); err != nil {
		return nil, err
	}
	return c.readResp(op)
}

func (c *Client) readResp(op Op) ([]byte, error) {
	var hb [RespHeaderSize]byte
	if _, err := io.ReadFull(c.br, hb[:]); err != nil {
		return nil, err
	}
	h, err := ParseRespHeader(hb[:])
	if err != nil {
		return nil, err
	}
	if cap(c.rbuf) < int(h.Len) {
		c.rbuf = make([]byte, h.Len)
	}
	p := c.rbuf[:h.Len]
	if _, err := io.ReadFull(c.br, p); err != nil {
		return nil, err
	}
	if h.Op != op {
		return nil, fmt.Errorf("wire: response op %v for request %v", h.Op, op)
	}
	if h.Status != StatusOK {
		base := h.Status.Err()
		if len(p) == 0 {
			return nil, base
		}
		var se *StatusError
		if errors.As(base, &se) {
			return nil, &StatusError{Status: se.Status, Msg: string(p)}
		}
		return nil, base
	}
	return p, nil
}
