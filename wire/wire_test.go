package wire

import (
	"bytes"
	"encoding/hex"
	"errors"
	"testing"
	"time"
)

// TestGoldenFrames pins the exact byte layout of the frame formats.
// These bytes are the protocol: if this test needs updating, Version
// must be bumped and DESIGN.md §11 revised — an encoder change that
// silently re-shapes frames breaks every deployed peer.
func TestGoldenFrames(t *testing.T) {
	cases := []struct {
		name string
		got  []byte
		want string // hex
	}{
		{
			"get",
			AppendGet(nil, 2, 1500, 0x0102030405060708),
			"01" + "01" + "02" + "00" + "000005dc" + "00000008" +
				"0102030405060708",
		},
		{
			"get-expired",
			AppendGet(nil, 2, ExpiredBudget, 0x0102030405060708),
			"01" + "01" + "02" + "00" + "ffffffff" + "00000008" +
				"0102030405060708",
		},
		{
			"put",
			AppendPut(nil, 0, 0, 0xAABB, 0xCCDD),
			"01" + "02" + "00" + "00" + "00000000" + "00000010" +
				"000000000000aabb" + "000000000000ccdd",
		},
		{
			"del",
			AppendDel(nil, 1, 1, 7),
			"01" + "03" + "01" + "00" + "00000001" + "00000008" +
				"0000000000000007",
		},
		{
			"scan",
			AppendScan(nil, 3, 250000, 16, 32, 100),
			"01" + "04" + "03" + "00" + "0003d090" + "00000014" +
				"0000000000000010" + "0000000000000020" + "00000064",
		},
		{
			"ping",
			AppendPing(nil),
			"01" + "05" + "00" + "00" + "00000000" + "00000000",
		},
		{
			"info",
			AppendInfo(nil),
			"01" + "06" + "00" + "00" + "00000000" + "00000000",
		},
		{
			"fault-arm",
			AppendFaultArm(nil, "stall?p=0.5"),
			"01" + "07" + "00" + "00" + "00000000" + "0000000c" +
				"01" + hex.EncodeToString([]byte("stall?p=0.5")),
		},
		{
			"fault-disarm",
			AppendFaultDisarm(nil),
			"01" + "07" + "00" + "00" + "00000000" + "00000001" + "02",
		},
		{
			"get-resp",
			AppendGetResp(nil, true, 0x99),
			"01" + "01" + "00" + "00" + "00000009" +
				"01" + "0000000000000099",
		},
		{
			"put-resp",
			AppendPutResp(nil, false),
			"01" + "02" + "00" + "00" + "00000001" + "00",
		},
		{
			"err-resp",
			AppendErrorResp(nil, OpGet, StatusDeadline, "late"),
			"01" + "01" + "01" + "00" + "00000004" +
				hex.EncodeToString([]byte("late")),
		},
	}
	for _, tc := range cases {
		want, err := hex.DecodeString(tc.want)
		if err != nil {
			t.Fatalf("%s: bad test hex: %v", tc.name, err)
		}
		if !bytes.Equal(tc.got, want) {
			t.Errorf("%s:\n got %x\nwant %x", tc.name, tc.got, want)
		}
	}
}

// TestGoldenScanResp pins the begin/patch/end SCAN response shape.
func TestGoldenScanResp(t *testing.T) {
	dst, start := BeginScanResp(nil)
	dst = AppendScanPair(dst, 1, 10)
	dst = AppendScanPair(dst, 2, 20)
	dst = EndScanResp(dst, start)
	want, _ := hex.DecodeString(
		"01" + "04" + "00" + "00" + "00000024" + // 4 + 2*16 = 36
			"00000002" +
			"0000000000000001" + "000000000000000a" +
			"0000000000000002" + "0000000000000014")
	if !bytes.Equal(dst, want) {
		t.Fatalf("scan resp:\n got %x\nwant %x", dst, want)
	}
	n, err := ParseScanResp(dst[RespHeaderSize:], func(k, v uint64) bool { return true })
	if err != nil || n != 2 {
		t.Fatalf("ParseScanResp = %d, %v", n, err)
	}
}

// TestHeaderRoundTrip checks Put/Parse symmetry and the reject paths.
func TestHeaderRoundTrip(t *testing.T) {
	var b [ReqHeaderSize]byte
	in := ReqHeader{Op: OpScan, Class: 3, DeadlineMicros: 123456, Len: 20}
	PutReqHeader(b[:], in)
	out, err := ParseReqHeader(b[:])
	if err != nil || out != in {
		t.Fatalf("req round trip: %+v, %v", out, err)
	}

	bad := b
	bad[0] = 99
	if _, err := ParseReqHeader(bad[:]); !errors.Is(err, ErrVersion) {
		t.Fatalf("version: %v", err)
	}
	bad = b
	bad[3] = 1
	if _, err := ParseReqHeader(bad[:]); !errors.Is(err, ErrFlags) {
		t.Fatalf("flags: %v", err)
	}
	bad = b
	bad[8] = 0xFF // Len > MaxPayload
	if _, err := ParseReqHeader(bad[:]); !errors.Is(err, ErrPayloadSize) {
		t.Fatalf("size: %v", err)
	}
	if _, err := ParseReqHeader(b[:ReqHeaderSize-1]); !errors.Is(err, ErrShortHeader) {
		t.Fatalf("short: %v", err)
	}

	var rb [RespHeaderSize]byte
	rin := RespHeader{Op: OpGet, Status: StatusDeadline, Len: 4}
	PutRespHeader(rb[:], rin)
	rout, err := ParseRespHeader(rb[:])
	if err != nil || rout != rin {
		t.Fatalf("resp round trip: %+v, %v", rout, err)
	}
	if _, err := ParseRespHeader(rb[:3]); !errors.Is(err, ErrShortHeader) {
		t.Fatalf("resp short: %v", err)
	}
}

// TestPayloadParsers checks each payload codec against its encoder and
// its shape rejections.
func TestPayloadParsers(t *testing.T) {
	g := AppendGet(nil, 0, 0, 42)
	if k, err := ParseKey(g[ReqHeaderSize:]); err != nil || k != 42 {
		t.Fatalf("ParseKey = %d, %v", k, err)
	}
	if _, err := ParseKey([]byte{1, 2, 3}); !errors.Is(err, ErrPayloadShape) {
		t.Fatalf("short key: %v", err)
	}

	p := AppendPut(nil, 0, 0, 7, 8)
	if k, v, err := ParseKeyVal(p[ReqHeaderSize:]); err != nil || k != 7 || v != 8 {
		t.Fatalf("ParseKeyVal = %d,%d, %v", k, v, err)
	}

	s := AppendScan(nil, 0, 0, 5, 50, 0)
	lo, hi, max, err := ParseScan(s[ReqHeaderSize:])
	if err != nil || lo != 5 || hi != 50 || max != MaxScanPairs {
		t.Fatalf("ParseScan = %d,%d,%d, %v (max=0 should clamp to MaxScanPairs)", lo, hi, max, err)
	}

	fa := AppendFaultArm(nil, "stall?p=1")
	sub, spec, err := ParseFault(fa[ReqHeaderSize:])
	if err != nil || sub != FaultArm || string(spec) != "stall?p=1" {
		t.Fatalf("ParseFault arm = %d,%q, %v", sub, spec, err)
	}
	if _, _, err := ParseFault([]byte{FaultDisarm, 'x'}); !errors.Is(err, ErrPayloadShape) {
		t.Fatalf("disarm with trailing bytes: %v", err)
	}
	if _, _, err := ParseFault([]byte{9}); !errors.Is(err, ErrPayloadShape) {
		t.Fatalf("unknown sub: %v", err)
	}
	if _, _, err := ParseFault(nil); !errors.Is(err, ErrPayloadShape) {
		t.Fatalf("empty fault: %v", err)
	}

	gr := AppendGetResp(nil, true, 123)
	if v, found, err := ParseGetResp(gr[RespHeaderSize:]); err != nil || !found || v != 123 {
		t.Fatalf("ParseGetResp = %d,%v, %v", v, found, err)
	}
	if _, _, err := ParseGetResp([]byte{1}); !errors.Is(err, ErrResponseShape) {
		t.Fatalf("short get resp: %v", err)
	}
	br := AppendDelResp(nil, true)
	if ok, err := ParseBoolResp(br[RespHeaderSize:]); err != nil || !ok {
		t.Fatalf("ParseBoolResp = %v, %v", ok, err)
	}
	if _, err := ParseScanResp([]byte{0, 0, 0, 5}, nil); !errors.Is(err, ErrResponseShape) {
		t.Fatalf("scan count lies: %v", err)
	}
}

// TestStatusErrors pins the errors.Is contract: message-carrying
// StatusErrors match their sentinels, and every status maps to a
// distinct sentinel.
func TestStatusErrors(t *testing.T) {
	withMsg := &StatusError{Status: StatusDeadline, Msg: "budget expired 14us before stripe"}
	if !errors.Is(withMsg, ErrDeadline) {
		t.Fatal("message-carrying deadline error must match ErrDeadline")
	}
	if errors.Is(withMsg, ErrUnordered) {
		t.Fatal("deadline error must not match ErrUnordered")
	}
	if StatusOK.Err() != nil {
		t.Fatal("StatusOK.Err() must be nil")
	}
	seen := map[error]Status{}
	for s := StatusDeadline; s <= StatusInternal; s++ {
		e := s.Err()
		if e == nil {
			t.Fatalf("status %v has no sentinel", s)
		}
		if prev, dup := seen[e]; dup {
			t.Fatalf("statuses %v and %v share a sentinel", prev, s)
		}
		seen[e] = s
	}
	// Unknown statuses still produce a usable error.
	if Status(200).Err() == nil {
		t.Fatal("unknown status must still error")
	}
}

// TestPointOpEncodersDoNotAllocate pins the zero-allocation contract on
// the point-op encode path given a pre-sized buffer.
func TestPointOpEncodersDoNotAllocate(t *testing.T) {
	buf := make([]byte, 0, 256)
	allocs := testing.AllocsPerRun(100, func() {
		buf = AppendGet(buf[:0], 1, 100, 42)
		buf = AppendPut(buf[:0], 1, 100, 42, 43)
		buf = AppendDel(buf[:0], 1, 100, 42)
		buf = AppendGetResp(buf[:0], true, 43)
		buf = AppendPutResp(buf[:0], true)
		buf = AppendDelResp(buf[:0], false)
	})
	if allocs != 0 {
		t.Fatalf("point-op encode allocated %.1f times per run, want 0", allocs)
	}
}

// TestBudgetMicros pins the client-side deadline encoding: zero time is
// patient, an expired deadline is the ExpiredBudget sentinel (never 0,
// never a racy 1µs budget), sub-microsecond remainders round up to 1µs,
// and budgets beyond the field's range degrade to patient.
func TestBudgetMicros(t *testing.T) {
	if got := budgetMicros(time.Time{}); got != 0 {
		t.Fatalf("zero time = %d, want 0 (patient)", got)
	}
	if got := budgetMicros(time.Now().Add(-time.Second)); got != ExpiredBudget {
		t.Fatalf("expired deadline = %d, want ExpiredBudget", got)
	}
	if got := budgetMicros(time.Now().Add(time.Hour)); got < 3_000_000_000 || got == ExpiredBudget {
		t.Fatalf("1h budget = %d, want ~3.6e9 and not the sentinel", got)
	}
	if got := budgetMicros(time.Now().Add(100 * time.Hour)); got != 0 {
		t.Fatalf("out-of-range budget = %d, want 0 (patient)", got)
	}
}
