package wire

import (
	"bytes"
	"testing"
)

// The fuzz targets pin decode totality: every parser either succeeds or
// returns an error — no panic, no over-read — on arbitrary hostile
// bytes, and a successful parse re-encodes to the same bytes where an
// encoder exists (so the codec cannot silently drop or invent bits).

func FuzzParseReqHeader(f *testing.F) {
	var b [ReqHeaderSize]byte
	PutReqHeader(b[:], ReqHeader{Op: OpGet, Class: 1, DeadlineMicros: 99, Len: 8})
	f.Add(b[:])
	f.Add([]byte{})
	f.Add([]byte{Version})
	f.Add(bytes.Repeat([]byte{0xFF}, ReqHeaderSize))
	f.Fuzz(func(t *testing.T, data []byte) {
		h, err := ParseReqHeader(data)
		if err != nil {
			return
		}
		// Success implies every invariant the reader relies on before
		// trusting Len, and the header re-encodes byte-identically.
		if h.Len > MaxPayload {
			t.Fatalf("accepted oversized Len %d", h.Len)
		}
		var re [ReqHeaderSize]byte
		PutReqHeader(re[:], h)
		if !bytes.Equal(re[:], data[:ReqHeaderSize]) {
			t.Fatalf("re-encode mismatch: %x != %x", re, data[:ReqHeaderSize])
		}
	})
}

func FuzzParseRespHeader(f *testing.F) {
	var b [RespHeaderSize]byte
	PutRespHeader(b[:], RespHeader{Op: OpPut, Status: StatusOK, Len: 1})
	f.Add(b[:])
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0xFF}, RespHeaderSize))
	f.Fuzz(func(t *testing.T, data []byte) {
		h, err := ParseRespHeader(data)
		if err != nil {
			return
		}
		if h.Len > MaxPayload {
			t.Fatalf("accepted oversized Len %d", h.Len)
		}
		var re [RespHeaderSize]byte
		PutRespHeader(re[:], h)
		if !bytes.Equal(re[:], data[:RespHeaderSize]) {
			t.Fatalf("re-encode mismatch: %x != %x", re, data[:RespHeaderSize])
		}
	})
}

func FuzzParsePayloads(f *testing.F) {
	f.Add(uint8(OpGet), AppendGet(nil, 0, 0, 1)[ReqHeaderSize:])
	f.Add(uint8(OpPut), AppendPut(nil, 0, 0, 1, 2)[ReqHeaderSize:])
	f.Add(uint8(OpScan), AppendScan(nil, 0, 0, 1, 2, 3)[ReqHeaderSize:])
	f.Add(uint8(OpFault), AppendFaultArm(nil, "stall?p=1")[ReqHeaderSize:])
	f.Add(uint8(OpFault), []byte{})
	f.Fuzz(func(t *testing.T, op uint8, data []byte) {
		switch Op(op) {
		case OpGet, OpDel:
			if k, err := ParseKey(data); err == nil {
				if got := AppendGet(nil, 0, 0, k)[ReqHeaderSize:]; !bytes.Equal(got, data) {
					t.Fatalf("key re-encode mismatch")
				}
			}
		case OpPut:
			if k, v, err := ParseKeyVal(data); err == nil {
				if got := AppendPut(nil, 0, 0, k, v)[ReqHeaderSize:]; !bytes.Equal(got, data) {
					t.Fatalf("keyval re-encode mismatch")
				}
			}
		case OpScan:
			if _, _, max, err := ParseScan(data); err == nil {
				if max == 0 || max > MaxScanPairs {
					t.Fatalf("scan max %d outside (0, MaxScanPairs]", max)
				}
			}
		case OpFault:
			if sub, spec, err := ParseFault(data); err == nil {
				if sub != FaultArm && sub != FaultDisarm && sub != FaultStats {
					t.Fatalf("accepted unknown fault sub %d", sub)
				}
				if sub != FaultArm && len(spec) != 0 {
					t.Fatalf("spec bytes on sub %d", sub)
				}
			}
		default:
			// Other opcodes carry no request payload codec; nothing to
			// check, but the call must not panic either way.
			_, _ = ParseKey(data)
		}
	})
}

func FuzzParseScanResp(f *testing.F) {
	good, start := BeginScanResp(nil)
	good = AppendScanPair(good, 1, 2)
	good = EndScanResp(good, start)
	f.Add(good[RespHeaderSize:])
	f.Add([]byte{})
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF})
	f.Fuzz(func(t *testing.T, data []byte) {
		n, err := ParseScanResp(data, func(k, v uint64) bool { return true })
		if err == nil && len(data) != 4+16*n {
			t.Fatalf("accepted pair count %d for %d payload bytes", n, len(data))
		}
	})
}
