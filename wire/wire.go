// Package wire defines the compact length-prefixed binary protocol that
// serves a shard.Map over a byte stream (cmd/shardd speaks it on the
// server side, cmd/shardload and the in-package Client on the client
// side). The protocol's defining property is that the shard layer's
// deadline semantics extend end-to-end: every request frame carries a
// request-class byte and a deadline field, so the budget a client
// attaches at its socket is the budget lock.ContextMutex.LockContext
// enforces at the stripe — the paper's admission story measured from
// the arrival's true origin instead of from a goroutine the benchmark
// spawned itself.
//
// # Frames
//
// All integers are big-endian. A request frame is a fixed 12-byte
// header followed by an opcode-specific payload:
//
//	[0]     version   (Version; frames with any other value are rejected)
//	[1]     opcode    (OpGet..OpFault)
//	[2]     class     (request class for per-stripe deadline accounting;
//	                   must be < shard.NumClasses, 0 = unclassified)
//	[3]     flags     (reserved; must be 0)
//	[4:8]   deadline  (uint32 microseconds of budget remaining, measured
//	                   by the client when it writes the frame; 0 = none,
//	                   all-ones = ExpiredBudget, already expired)
//	[8:12]  length    (uint32 payload length, <= MaxPayload)
//
// A response frame is a fixed 8-byte header plus payload:
//
//	[0]     version
//	[1]     opcode    (echoed from the request)
//	[2]     status    (StatusOK or a typed error Status)
//	[3]     flags     (reserved; 0)
//	[4:8]   length    (uint32 payload length, <= MaxPayload)
//
// Responses are written in request order (the protocol pipelines; it
// does not multiplex), so no frame carries a request id. Point-op
// payloads are fixed-shape — encode and decode touch only the caller's
// buffers and allocate nothing.
//
// # Payloads
//
//	GET   req: key u64                    resp: found u8, val u64
//	PUT   req: key u64, val u64           resp: fresh u8
//	DEL   req: key u64                    resp: present u8
//	SCAN  req: lo u64, hi u64, max u32    resp: count u32, count×(k u64, v u64)
//	PING  req: —                          resp: —
//	INFO  req: —                          resp: text "key=value" lines
//	FAULT req: sub u8, [spec bytes]       resp: — (sub=stats: text lines)
//
// Error responses carry the Status in the header and a human-readable
// message as payload; Status.Err maps each to a sentinel error that
// errors.Is can match (ErrDeadline for a budget that expired before the
// stripe was reached, ErrUnordered for a scan against an unordered
// backend, and so on).
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Version is the frame header version this package speaks. A request or
// response whose first byte differs is rejected before anything else is
// read — the version byte is the evolution seam.
const Version = 1

// Header and payload size limits.
const (
	// ReqHeaderSize and RespHeaderSize are the fixed frame header sizes.
	ReqHeaderSize  = 12
	RespHeaderSize = 8
	// MaxPayload bounds a frame's payload length: a hostile or corrupt
	// length prefix must not make a reader allocate gigabytes before the
	// first payload byte arrives.
	MaxPayload = 1 << 20
	// MaxScanPairs bounds the pairs one SCAN response may carry; a
	// request asking for more (or for 0, the "no limit" shorthand) is
	// clamped to it. 65535 pairs × 16 bytes stays within MaxPayload.
	MaxScanPairs = 65535
)

// ExpiredBudget is the deadline-field sentinel for a budget that was
// already exhausted when the client wrote the frame. 0 means patient,
// so expiry needs its own encoding: the server must still route the
// request down the deadline path — the stripe counts the attempt and
// the miss, the lock records a Cancel — but against a context expired
// deterministically at construction, not one racing a microsecond
// timer the uncontended fast path can outrun. The value it shadows (a
// real budget of 2^32-1 µs, ~71.6 minutes) is patient in practice and
// encodes as 0.
const ExpiredBudget = 1<<32 - 1

// Op is a request opcode.
type Op uint8

// Opcodes. Get/Put/Del are the point operations (fixed-shape payloads,
// allocation-free on both ends); Scan is the ordered range read; Ping,
// Info, and Fault are the admin verbs (Fault arms a server-side
// fault-injection set, so chaos timelines run over the wire).
const (
	OpGet Op = iota + 1
	OpPut
	OpDel
	OpScan
	OpPing
	OpInfo
	OpFault
)

// String returns the opcode's wire-doc name.
func (o Op) String() string {
	switch o {
	case OpGet:
		return "GET"
	case OpPut:
		return "PUT"
	case OpDel:
		return "DEL"
	case OpScan:
		return "SCAN"
	case OpPing:
		return "PING"
	case OpInfo:
		return "INFO"
	case OpFault:
		return "FAULT"
	}
	return fmt.Sprintf("Op(%d)", uint8(o))
}

// FAULT subverbs (first payload byte of an OpFault request).
const (
	// FaultArm installs and arms the fault set described by the spec
	// bytes that follow (see fault.New for the grammar).
	FaultArm uint8 = 1
	// FaultDisarm stops all injection immediately.
	FaultDisarm uint8 = 2
	// FaultStats asks for the injected-fault evidence counters as text
	// "key=value" lines.
	FaultStats uint8 = 3
)

// Status is a response status code. StatusOK is success; everything
// else is a typed error whose response payload is a human-readable
// message.
type Status uint8

// Response statuses.
const (
	StatusOK Status = iota
	// StatusDeadline: the request's deadline budget expired before the
	// owning stripe was reached (the shard layer returned ctx.Err()).
	StatusDeadline
	// StatusUnordered: a SCAN against a map whose current backends do
	// not maintain key order (shard.ErrUnordered).
	StatusUnordered
	// StatusBadFrame: the frame header or payload shape was malformed
	// (wrong version, nonzero flags, payload length not matching the
	// opcode). The server closes the connection after sending it —
	// framing cannot be trusted past a malformed header.
	StatusBadFrame
	// StatusUnknownOp: the opcode is not one this server serves.
	StatusUnknownOp
	// StatusBadClass: the request-class byte is >= shard.NumClasses.
	StatusBadClass
	// StatusTooLarge: the payload length exceeds MaxPayload.
	StatusTooLarge
	// StatusBadFault: a FAULT arm spec the fault registry rejected.
	StatusBadFault
	// StatusDraining: the server is draining and no longer serves this
	// connection.
	StatusDraining
	// StatusInternal: an unexpected server-side failure.
	StatusInternal
)

// String returns the status's wire-doc name.
func (s Status) String() string {
	switch s {
	case StatusOK:
		return "OK"
	case StatusDeadline:
		return "DEADLINE"
	case StatusUnordered:
		return "UNORDERED"
	case StatusBadFrame:
		return "BAD_FRAME"
	case StatusUnknownOp:
		return "UNKNOWN_OP"
	case StatusBadClass:
		return "BAD_CLASS"
	case StatusTooLarge:
		return "TOO_LARGE"
	case StatusBadFault:
		return "BAD_FAULT"
	case StatusDraining:
		return "DRAINING"
	case StatusInternal:
		return "INTERNAL"
	}
	return fmt.Sprintf("Status(%d)", uint8(s))
}

// StatusError is the error form of a non-OK response: the typed status
// plus the server's message payload. Two StatusErrors match under
// errors.Is when their Status agrees, so callers test categories with
// the sentinels below regardless of message text.
type StatusError struct {
	Status Status
	Msg    string
}

// Error renders the status name and any server message.
func (e *StatusError) Error() string {
	if e.Msg == "" {
		return "wire: " + e.Status.String()
	}
	return "wire: " + e.Status.String() + ": " + e.Msg
}

// Is matches any StatusError with the same Status, which is what makes
// errors.Is(err, wire.ErrDeadline) work on errors carrying messages.
func (e *StatusError) Is(target error) bool {
	t, ok := target.(*StatusError)
	return ok && t.Status == e.Status
}

// Sentinel errors for the typed response statuses; match with
// errors.Is. statusErrs pre-builds the message-free values so the
// common client paths (a deadline miss under a storm) allocate nothing
// per error.
var (
	ErrDeadline  = &StatusError{Status: StatusDeadline}
	ErrUnordered = &StatusError{Status: StatusUnordered}
	ErrBadFrame  = &StatusError{Status: StatusBadFrame}
	ErrUnknownOp = &StatusError{Status: StatusUnknownOp}
	ErrBadClass  = &StatusError{Status: StatusBadClass}
	ErrTooLarge  = &StatusError{Status: StatusTooLarge}
	ErrBadFault  = &StatusError{Status: StatusBadFault}
	ErrDraining  = &StatusError{Status: StatusDraining}
	ErrInternal  = &StatusError{Status: StatusInternal}
)

var statusErrs = [...]*StatusError{
	StatusDeadline:  ErrDeadline,
	StatusUnordered: ErrUnordered,
	StatusBadFrame:  ErrBadFrame,
	StatusUnknownOp: ErrUnknownOp,
	StatusBadClass:  ErrBadClass,
	StatusTooLarge:  ErrTooLarge,
	StatusBadFault:  ErrBadFault,
	StatusDraining:  ErrDraining,
	StatusInternal:  ErrInternal,
}

// Err maps a status to its sentinel error (nil for StatusOK). When the
// response carried a message, wrap it: &StatusError{Status: s, Msg: m}
// still matches the sentinel under errors.Is.
func (s Status) Err() error {
	if s == StatusOK {
		return nil
	}
	if int(s) < len(statusErrs) && statusErrs[s] != nil {
		return statusErrs[s]
	}
	return &StatusError{Status: s}
}

// Frame-shape errors returned by the parse functions (decode totality:
// a parse either succeeds or returns one of these — it never panics and
// never reads past the slice it was given).
var (
	ErrShortHeader   = errors.New("wire: short header")
	ErrVersion       = errors.New("wire: unknown frame version")
	ErrFlags         = errors.New("wire: reserved flag bits set")
	ErrPayloadSize   = errors.New("wire: payload length exceeds MaxPayload")
	ErrPayloadShape  = errors.New("wire: payload does not match opcode shape")
	ErrResponseShape = errors.New("wire: response payload does not match opcode shape")
)

// ReqHeader is a decoded request frame header.
type ReqHeader struct {
	Op Op
	// Class is the request class for per-stripe deadline accounting
	// (shard.WithClass). The server rejects classes >= shard.NumClasses
	// with StatusBadClass; the parse layer only carries the byte.
	Class uint8
	// DeadlineMicros is the request's remaining deadline budget in
	// microseconds at the moment the client wrote the frame; 0 means
	// the request is patient (no deadline), ExpiredBudget means the
	// budget was gone before the frame was written. The server converts
	// it to a context deadline measured from frame receipt, so queueing
	// inside the server burns the same budget queueing at a stripe lock
	// does.
	DeadlineMicros uint32
	// Len is the payload length in bytes.
	Len uint32
}

// PutReqHeader encodes h into b, which must be at least ReqHeaderSize
// bytes (a fixed array on the caller keeps this allocation-free).
func PutReqHeader(b []byte, h ReqHeader) {
	_ = b[ReqHeaderSize-1]
	b[0] = Version
	b[1] = byte(h.Op)
	b[2] = h.Class
	b[3] = 0
	binary.BigEndian.PutUint32(b[4:8], h.DeadlineMicros)
	binary.BigEndian.PutUint32(b[8:12], h.Len)
}

// ParseReqHeader decodes a request frame header. It rejects short
// input, version mismatches, reserved flag bits, and oversized payload
// lengths — everything a reader must check before trusting Len.
func ParseReqHeader(b []byte) (ReqHeader, error) {
	if len(b) < ReqHeaderSize {
		return ReqHeader{}, ErrShortHeader
	}
	if b[0] != Version {
		return ReqHeader{}, ErrVersion
	}
	if b[3] != 0 {
		return ReqHeader{}, ErrFlags
	}
	h := ReqHeader{
		Op:             Op(b[1]),
		Class:          b[2],
		DeadlineMicros: binary.BigEndian.Uint32(b[4:8]),
		Len:            binary.BigEndian.Uint32(b[8:12]),
	}
	if h.Len > MaxPayload {
		return ReqHeader{}, ErrPayloadSize
	}
	return h, nil
}

// RespHeader is a decoded response frame header.
type RespHeader struct {
	Op     Op
	Status Status
	Len    uint32
}

// PutRespHeader encodes h into b, which must be at least RespHeaderSize
// bytes.
func PutRespHeader(b []byte, h RespHeader) {
	_ = b[RespHeaderSize-1]
	b[0] = Version
	b[1] = byte(h.Op)
	b[2] = byte(h.Status)
	b[3] = 0
	binary.BigEndian.PutUint32(b[4:8], h.Len)
}

// ParseRespHeader decodes a response frame header with the same checks
// as ParseReqHeader.
func ParseRespHeader(b []byte) (RespHeader, error) {
	if len(b) < RespHeaderSize {
		return RespHeader{}, ErrShortHeader
	}
	if b[0] != Version {
		return RespHeader{}, ErrVersion
	}
	if b[3] != 0 {
		return RespHeader{}, ErrFlags
	}
	h := RespHeader{
		Op:     Op(b[1]),
		Status: Status(b[2]),
		Len:    binary.BigEndian.Uint32(b[4:8]),
	}
	if h.Len > MaxPayload {
		return RespHeader{}, ErrPayloadSize
	}
	return h, nil
}

// Request payload sizes per opcode (fixed-shape ops).
const (
	getPayload  = 8
	putPayload  = 16
	delPayload  = 8
	scanPayload = 20
)

// AppendGet appends a complete GET request frame to dst.
func AppendGet(dst []byte, class uint8, deadlineMicros uint32, key uint64) []byte {
	dst = appendReqHeader(dst, OpGet, class, deadlineMicros, getPayload)
	return binary.BigEndian.AppendUint64(dst, key)
}

// AppendPut appends a complete PUT request frame to dst.
func AppendPut(dst []byte, class uint8, deadlineMicros uint32, key, val uint64) []byte {
	dst = appendReqHeader(dst, OpPut, class, deadlineMicros, putPayload)
	dst = binary.BigEndian.AppendUint64(dst, key)
	return binary.BigEndian.AppendUint64(dst, val)
}

// AppendDel appends a complete DEL request frame to dst.
func AppendDel(dst []byte, class uint8, deadlineMicros uint32, key uint64) []byte {
	dst = appendReqHeader(dst, OpDel, class, deadlineMicros, delPayload)
	return binary.BigEndian.AppendUint64(dst, key)
}

// AppendScan appends a complete SCAN request frame to dst. max bounds
// the pairs the response may carry; 0 or anything above MaxScanPairs
// means MaxScanPairs.
func AppendScan(dst []byte, class uint8, deadlineMicros uint32, lo, hi uint64, max uint32) []byte {
	dst = appendReqHeader(dst, OpScan, class, deadlineMicros, scanPayload)
	dst = binary.BigEndian.AppendUint64(dst, lo)
	dst = binary.BigEndian.AppendUint64(dst, hi)
	return binary.BigEndian.AppendUint32(dst, max)
}

// AppendPing appends a PING request frame to dst.
func AppendPing(dst []byte) []byte {
	return appendReqHeader(dst, OpPing, 0, 0, 0)
}

// AppendInfo appends an INFO request frame to dst.
func AppendInfo(dst []byte) []byte {
	return appendReqHeader(dst, OpInfo, 0, 0, 0)
}

// AppendFaultArm appends a FAULT arm request carrying the fault-set
// spec (see fault.New for the grammar).
func AppendFaultArm(dst []byte, spec string) []byte {
	dst = appendReqHeader(dst, OpFault, 0, 0, uint32(1+len(spec)))
	dst = append(dst, FaultArm)
	return append(dst, spec...)
}

// AppendFaultDisarm appends a FAULT disarm request.
func AppendFaultDisarm(dst []byte) []byte {
	dst = appendReqHeader(dst, OpFault, 0, 0, 1)
	return append(dst, FaultDisarm)
}

// AppendFaultStats appends a FAULT stats request.
func AppendFaultStats(dst []byte) []byte {
	dst = appendReqHeader(dst, OpFault, 0, 0, 1)
	return append(dst, FaultStats)
}

func appendReqHeader(dst []byte, op Op, class uint8, deadlineMicros uint32, plen uint32) []byte {
	var h [ReqHeaderSize]byte
	PutReqHeader(h[:], ReqHeader{Op: op, Class: class, DeadlineMicros: deadlineMicros, Len: plen})
	return append(dst, h[:]...)
}

// ParseKey decodes a GET/DEL payload.
func ParseKey(p []byte) (uint64, error) {
	if len(p) != getPayload {
		return 0, ErrPayloadShape
	}
	return binary.BigEndian.Uint64(p), nil
}

// ParseKeyVal decodes a PUT payload.
func ParseKeyVal(p []byte) (key, val uint64, err error) {
	if len(p) != putPayload {
		return 0, 0, ErrPayloadShape
	}
	return binary.BigEndian.Uint64(p[:8]), binary.BigEndian.Uint64(p[8:16]), nil
}

// ParseScan decodes a SCAN payload, clamping max into (0, MaxScanPairs].
func ParseScan(p []byte) (lo, hi uint64, max uint32, err error) {
	if len(p) != scanPayload {
		return 0, 0, 0, ErrPayloadShape
	}
	lo = binary.BigEndian.Uint64(p[:8])
	hi = binary.BigEndian.Uint64(p[8:16])
	max = binary.BigEndian.Uint32(p[16:20])
	if max == 0 || max > MaxScanPairs {
		max = MaxScanPairs
	}
	return lo, hi, max, nil
}

// ParseFault decodes a FAULT payload into its subverb and (for arm) the
// spec bytes. The spec aliases p — copy it before retaining.
func ParseFault(p []byte) (sub uint8, spec []byte, err error) {
	if len(p) < 1 {
		return 0, nil, ErrPayloadShape
	}
	sub = p[0]
	switch sub {
	case FaultArm:
		return sub, p[1:], nil
	case FaultDisarm, FaultStats:
		if len(p) != 1 {
			return 0, nil, ErrPayloadShape
		}
		return sub, nil, nil
	}
	return 0, nil, ErrPayloadShape
}

// Response payload builders. Each appends a complete response frame to
// dst; point-op responses are fixed-shape and allocation-free (given
// capacity in dst).

// AppendGetResp appends a GET response frame.
func AppendGetResp(dst []byte, found bool, val uint64) []byte {
	dst = appendRespHeader(dst, OpGet, StatusOK, 9)
	dst = append(dst, boolByte(found))
	return binary.BigEndian.AppendUint64(dst, val)
}

// AppendPutResp appends a PUT response frame.
func AppendPutResp(dst []byte, fresh bool) []byte {
	dst = appendRespHeader(dst, OpPut, StatusOK, 1)
	return append(dst, boolByte(fresh))
}

// AppendDelResp appends a DEL response frame.
func AppendDelResp(dst []byte, present bool) []byte {
	dst = appendRespHeader(dst, OpDel, StatusOK, 1)
	return append(dst, boolByte(present))
}

// BeginScanResp appends a SCAN response header with a zero pair count
// and returns the frame's start offset; append pairs with
// AppendScanPair and patch the counts with EndScanResp. The
// reserve-append-patch shape exists because the pair count is not known
// until the cross-stripe merge has run, and buffering pairs anywhere
// else would be a second copy.
func BeginScanResp(dst []byte) ([]byte, int) {
	start := len(dst)
	dst = appendRespHeader(dst, OpScan, StatusOK, 4)
	dst = binary.BigEndian.AppendUint32(dst, 0)
	return dst, start
}

// AppendScanPair appends one key/value pair to an open SCAN response.
func AppendScanPair(dst []byte, key, val uint64) []byte {
	dst = binary.BigEndian.AppendUint64(dst, key)
	return binary.BigEndian.AppendUint64(dst, val)
}

// EndScanResp patches the payload length and pair count of the SCAN
// response opened at start and returns dst.
func EndScanResp(dst []byte, start int) []byte {
	payload := len(dst) - start - RespHeaderSize
	pairs := (payload - 4) / 16
	binary.BigEndian.PutUint32(dst[start+4:start+8], uint32(payload))
	binary.BigEndian.PutUint32(dst[start+RespHeaderSize:start+RespHeaderSize+4], uint32(pairs))
	return dst
}

// AppendEmptyResp appends a payload-free success response (PING, FAULT
// arm/disarm acknowledgements).
func AppendEmptyResp(dst []byte, op Op) []byte {
	return appendRespHeader(dst, op, StatusOK, 0)
}

// AppendTextResp appends a success response whose payload is text
// (INFO, FAULT stats).
func AppendTextResp(dst []byte, op Op, text []byte) []byte {
	dst = appendRespHeader(dst, op, StatusOK, uint32(len(text)))
	return append(dst, text...)
}

// AppendErrorResp appends an error response: the typed status plus a
// human-readable message payload.
func AppendErrorResp(dst []byte, op Op, status Status, msg string) []byte {
	dst = appendRespHeader(dst, op, status, uint32(len(msg)))
	return append(dst, msg...)
}

func appendRespHeader(dst []byte, op Op, status Status, plen uint32) []byte {
	var h [RespHeaderSize]byte
	PutRespHeader(h[:], RespHeader{Op: op, Status: status, Len: plen})
	return append(dst, h[:]...)
}

func boolByte(b bool) byte {
	if b {
		return 1
	}
	return 0
}

// ParseGetResp decodes a GET response payload.
func ParseGetResp(p []byte) (val uint64, found bool, err error) {
	if len(p) != 9 {
		return 0, false, ErrResponseShape
	}
	return binary.BigEndian.Uint64(p[1:9]), p[0] != 0, nil
}

// ParseBoolResp decodes a PUT/DEL response payload (fresh/present).
func ParseBoolResp(p []byte) (bool, error) {
	if len(p) != 1 {
		return false, ErrResponseShape
	}
	return p[0] != 0, nil
}

// ParseScanResp decodes a SCAN response payload and calls fn for each
// pair in ascending key order. It returns the pair count.
func ParseScanResp(p []byte, fn func(key, val uint64) bool) (int, error) {
	if len(p) < 4 {
		return 0, ErrResponseShape
	}
	n := int(binary.BigEndian.Uint32(p[:4]))
	if len(p) != 4+16*n {
		return 0, ErrResponseShape
	}
	for i := 0; i < n; i++ {
		off := 4 + 16*i
		k := binary.BigEndian.Uint64(p[off : off+8])
		v := binary.BigEndian.Uint64(p[off+8 : off+16])
		if !fn(k, v) {
			break
		}
	}
	return n, nil
}
