// Command lockbench benchmarks the real (goroutine) Malthusian lock
// library on the host machine: aggregate throughput plus the paper's
// fairness metrics (average LWSS, MTTR, Gini, RSTDDEV) over the recorded
// admission history.
//
// Locks are selected by registry spec (see lock.New), so every tunable is
// reachable from the command line without code changes:
//
//	lockbench -lock mcscr-stp -threads 8 -duration 2s
//	lockbench -lock 'mcscr-stp?fairness=500&spin=4096&seed=42' -threads 16
//	lockbench -lock all -threads 16 -ncs 2000
//	lockbench -lock all -json BENCH_locks.json
//
// With -cancel-frac F (and -cancel-after D), that fraction of
// acquisitions goes through LockContext with a deadline of D, and the
// table gains a cancel% column: the observed cancellation rate. This
// exercises the cancellation machinery under real contention and shows
// its cost to the surviving acquisitions.
//
// With -json, the results table (plus each lock's CR event counters) is
// also written to the named file as a machine-readable benchmark record;
// BENCH_locks.json checked into the repository root tracks the perf
// trajectory across changes.
//
// Note: host-machine numbers demonstrate lock overheads and fairness
// behaviour, not the paper's hardware collapse curves — those come from
// cmd/figures (see DESIGN.md).
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/lock"
	"repro/metrics"
)

// result is one benchmark row, shaped for both the stdout table and the
// -json record.
type result struct {
	Lock      string  `json:"lock"`
	Threads   int     `json:"threads"`
	Duration  float64 `json:"duration_sec"`
	Ops       int     `json:"ops"`
	OpsPerSec float64 `json:"ops_per_sec"`
	AvgLWSS   float64 `json:"avg_lwss"`
	MTTR      float64 `json:"mttr"`
	Gini      float64 `json:"gini"`
	RSTDDEV   float64 `json:"rstddev"`

	// Cancellation traffic, when -cancel-frac is set: attempts that used
	// LockContext, how many of them timed out, and the resulting rate.
	CancelAttempts int     `json:"cancel_attempts,omitempty"`
	Cancelled      int     `json:"cancelled,omitempty"`
	CancelRate     float64 `json:"cancel_rate,omitempty"`

	// CR event counters, when the lock exposes them.
	Stats map[string]uint64 `json:"stats,omitempty"`
}

// record is the top-level -json document: enough environment detail to
// compare BENCH_locks.json files across machines and changes.
type record struct {
	GOMAXPROCS  int      `json:"gomaxprocs"`
	NumCPU      int      `json:"num_cpu"`
	GoVersion   string   `json:"go_version"`
	NCS         int      `json:"ncs_spin"`
	CS          int      `json:"cs_spin"`
	CancelFrac  float64  `json:"cancel_frac,omitempty"`
	CancelAfter string   `json:"cancel_after,omitempty"`
	Results     []result `json:"results"`
}

func main() {
	var (
		name        = flag.String("lock", "mcscr-stp", "lock spec (see lock.New), or 'all'")
		threads     = flag.Int("threads", 8, "goroutines")
		duration    = flag.Duration("duration", time.Second, "measurement interval")
		ncs         = flag.Int("ncs", 500, "non-critical-section work (spin iterations)")
		cs          = flag.Int("cs", 100, "critical-section work (spin iterations)")
		seed        = flag.Uint64("seed", 1, "lock PRNG seed (unless the spec sets one)")
		cancelFrac  = flag.Float64("cancel-frac", 0, "fraction of acquisitions using LockContext with a deadline (0..1)")
		cancelAfter = flag.Duration("cancel-after", 50*time.Microsecond, "LockContext deadline for -cancel-frac acquisitions")
		jsonPath    = flag.String("json", "", "also write results to this file as JSON")
		list        = flag.Bool("list", false, "list registered lock specs with their summaries, then exit")
	)
	flag.Parse()

	if *list {
		for _, n := range lock.Names() {
			reg, _ := lock.Lookup(n)
			fmt.Printf("%-11s %s\n", n, reg.Summary)
		}
		return
	}

	specs := []string{*name}
	if *name == "all" {
		specs = lock.Names()
	}
	rec := record{
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		GoVersion:  runtime.Version(),
		NCS:        *ncs,
		CS:         *cs,
		CancelFrac: *cancelFrac,
	}
	if *cancelFrac > 0 {
		rec.CancelAfter = cancelAfter.String()
	}
	// Resolve every spec before any benchmark runs (or table output), so
	// a typo in a list fails fast instead of after minutes of measuring.
	locks := make([]lock.Mutex, len(specs))
	for i, spec := range specs {
		m, err := lock.New(spec, lock.WithSeed(*seed))
		if err != nil {
			fmt.Fprintf(os.Stderr, "lockbench: %v\n", err)
			os.Exit(2)
		}
		locks[i] = m
	}
	fmt.Printf("%-10s %10s %10s %8s %8s %8s %8s %8s\n",
		"lock", "ops", "ops/sec", "LWSS", "MTTR", "Gini", "RSTDDEV", "cancel%")
	for i, spec := range specs {
		rec.Results = append(rec.Results,
			run(spec, locks[i], *threads, *duration, *ncs, *cs, *cancelFrac, *cancelAfter))
	}
	if *jsonPath != "" {
		buf, err := json.MarshalIndent(rec, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "lockbench: marshal: %v\n", err)
			os.Exit(1)
		}
		buf = append(buf, '\n')
		if err := os.WriteFile(*jsonPath, buf, 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "lockbench: %v\n", err)
			os.Exit(1)
		}
	}
}

var sink atomic.Uint64

func spin(n int) {
	s := sink.Load()
	for i := 0; i < n; i++ {
		s += uint64(i)
	}
	sink.Store(s)
}

func run(name string, m lock.Mutex, threads int, d time.Duration, ncs, cs int,
	cancelFrac float64, cancelAfter time.Duration) result {
	cm, _ := m.(lock.ContextMutex) // every registry lock satisfies this
	rec := metrics.NewRecorder(1 << 20)
	var stop atomic.Bool
	var attempts, cancelled atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < threads; g++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(id) + 1))
			for !stop.Load() {
				spin(ncs)
				if cancelFrac > 0 && cm != nil && rng.Float64() < cancelFrac {
					attempts.Add(1)
					ctx, cancel := context.WithTimeout(context.Background(), cancelAfter)
					err := cm.LockContext(ctx)
					cancel()
					if err != nil {
						cancelled.Add(1)
						continue
					}
				} else {
					m.Lock()
				}
				rec.Record(id) // serialized by the lock
				spin(cs)
				//lockcheck:ignore cm is m through a type assertion, an alias the lockset cannot prove
				m.Unlock()
			}
		}(g)
	}
	time.Sleep(d)
	stop.Store(true)
	wg.Wait()
	h := rec.History()
	s := metrics.Summarize(h, metrics.DefaultWindow)
	r := result{
		Lock:      name,
		Threads:   threads,
		Duration:  d.Seconds(),
		Ops:       len(h),
		OpsPerSec: float64(len(h)) / d.Seconds(),
		AvgLWSS:   s.AvgLWSS,
		MTTR:      s.MTTR,
		Gini:      s.Gini,
		RSTDDEV:   s.RSTDDEV,
	}
	// The rate is derived only from a nonzero attempt count: a 0/0 division
	// here would put a NaN in the JSON record, which encoding/json rejects
	// outright — the whole -json write would fail, not just one field.
	cancelCol := "-" // no acquisition carried a deadline (e.g. -cancel-frac=0)
	if n := attempts.Load(); n > 0 {
		r.CancelAttempts = int(n)
		r.Cancelled = int(cancelled.Load())
		r.CancelRate = float64(cancelled.Load()) / float64(n)
		cancelCol = fmt.Sprintf("%.2f", 100*r.CancelRate)
	}
	fmt.Printf("%-10s %10d %10.0f %8.1f %8.1f %8.3f %8.3f %8s\n",
		name, len(h), float64(len(h))/d.Seconds(), s.AvgLWSS, s.MTTR, s.Gini, s.RSTDDEV,
		cancelCol)
	if sl, ok := m.(lock.Instrumented); ok {
		snap := sl.Stats()
		r.Stats = map[string]uint64{
			"acquires":     snap.Acquires,
			"handoffs":     snap.Handoffs,
			"culls":        snap.Culls,
			"reprovisions": snap.Reprovisions,
			"promotions":   snap.Promotions,
			"parks":        snap.Parks,
			"unparks":      snap.Unparks,
			"fast_path":    snap.FastPath,
			"slow_path":    snap.SlowPath,
			"cancels":      snap.Cancels,
			"abandons":     snap.Abandons,
		}
	}
	return r
}
