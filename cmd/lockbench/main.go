// Command lockbench benchmarks the real (goroutine) Malthusian lock
// library on the host machine: aggregate throughput plus the paper's
// fairness metrics (average LWSS, MTTR, Gini, RSTDDEV) over the recorded
// admission history.
//
// Usage:
//
//	lockbench -lock mcscr -threads 8 -duration 2s
//	lockbench -lock all -threads 16 -ncs 2000
//	lockbench -lock all -json BENCH_locks.json
//
// With -json, the results table (plus each lock's CR event counters) is
// also written to the named file as a machine-readable benchmark record;
// BENCH_locks.json checked into the repository root tracks the perf
// trajectory across changes.
//
// Note: host-machine numbers demonstrate lock overheads and fairness
// behaviour, not the paper's hardware collapse curves — those come from
// cmd/figures (see DESIGN.md).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/lock"
	"repro/metrics"
)

func builders(seed uint64) map[string]func() lock.Mutex {
	return map[string]func() lock.Mutex{
		"tas":       func() lock.Mutex { return lock.NewTAS() },
		"ticket":    func() lock.Mutex { return lock.NewTicket() },
		"clh":       func() lock.Mutex { return lock.NewCLH() },
		"mcs-s":     func() lock.Mutex { return lock.NewMCS(lock.WithWaitPolicy(lock.WaitSpin)) },
		"mcs-stp":   func() lock.Mutex { return lock.NewMCS() },
		"mcscr-s":   func() lock.Mutex { return lock.NewMCSCR(lock.WithWaitPolicy(lock.WaitSpin), lock.WithSeed(seed)) },
		"mcscr-stp": func() lock.Mutex { return lock.NewMCSCR(lock.WithSeed(seed)) },
		"lifocr":    func() lock.Mutex { return lock.NewLIFOCR(lock.WithSeed(seed)) },
		"loiter":    func() lock.Mutex { return lock.NewLOITER(lock.WithSeed(seed)) },
		"null":      func() lock.Mutex { return lock.NewNull() },
	}
}

// result is one benchmark row, shaped for both the stdout table and the
// -json record.
type result struct {
	Lock      string  `json:"lock"`
	Threads   int     `json:"threads"`
	Duration  float64 `json:"duration_sec"`
	Ops       int     `json:"ops"`
	OpsPerSec float64 `json:"ops_per_sec"`
	AvgLWSS   float64 `json:"avg_lwss"`
	MTTR      float64 `json:"mttr"`
	Gini      float64 `json:"gini"`
	RSTDDEV   float64 `json:"rstddev"`

	// CR event counters, when the lock exposes them.
	Stats map[string]uint64 `json:"stats,omitempty"`
}

// record is the top-level -json document: enough environment detail to
// compare BENCH_locks.json files across machines and changes.
type record struct {
	GOMAXPROCS int      `json:"gomaxprocs"`
	NumCPU     int      `json:"num_cpu"`
	GoVersion  string   `json:"go_version"`
	NCS        int      `json:"ncs_spin"`
	CS         int      `json:"cs_spin"`
	Results    []result `json:"results"`
}

func main() {
	var (
		name     = flag.String("lock", "mcscr-stp", "lock to benchmark (or 'all')")
		threads  = flag.Int("threads", 8, "goroutines")
		duration = flag.Duration("duration", time.Second, "measurement interval")
		ncs      = flag.Int("ncs", 500, "non-critical-section work (spin iterations)")
		cs       = flag.Int("cs", 100, "critical-section work (spin iterations)")
		seed     = flag.Uint64("seed", 1, "lock PRNG seed")
		jsonPath = flag.String("json", "", "also write results to this file as JSON")
	)
	flag.Parse()

	all := builders(*seed)
	names := []string{*name}
	if *name == "all" {
		names = names[:0]
		for n := range all {
			names = append(names, n)
		}
		sort.Strings(names)
	}
	rec := record{
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		GoVersion:  runtime.Version(),
		NCS:        *ncs,
		CS:         *cs,
	}
	fmt.Printf("%-10s %10s %10s %8s %8s %8s %8s\n",
		"lock", "ops", "ops/sec", "LWSS", "MTTR", "Gini", "RSTDDEV")
	for _, n := range names {
		build, ok := all[n]
		if !ok {
			fmt.Fprintf(os.Stderr, "lockbench: unknown lock %q\n", n)
			os.Exit(2)
		}
		rec.Results = append(rec.Results, run(n, build(), *threads, *duration, *ncs, *cs))
	}
	if *jsonPath != "" {
		buf, err := json.MarshalIndent(rec, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "lockbench: marshal: %v\n", err)
			os.Exit(1)
		}
		buf = append(buf, '\n')
		if err := os.WriteFile(*jsonPath, buf, 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "lockbench: %v\n", err)
			os.Exit(1)
		}
	}
}

var sink uint64

func spin(n int) {
	s := sink
	for i := 0; i < n; i++ {
		s += uint64(i)
	}
	atomic.StoreUint64(&sink, s)
}

func run(name string, m lock.Mutex, threads int, d time.Duration, ncs, cs int) result {
	rec := metrics.NewRecorder(1 << 20)
	var stop atomic.Bool
	var wg sync.WaitGroup
	for g := 0; g < threads; g++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			for !stop.Load() {
				spin(ncs)
				m.Lock()
				rec.Record(id) // serialized by the lock
				spin(cs)
				m.Unlock()
			}
		}(g)
	}
	time.Sleep(d)
	stop.Store(true)
	wg.Wait()
	h := rec.History()
	s := metrics.Summarize(h, metrics.DefaultWindow)
	fmt.Printf("%-10s %10d %10.0f %8.1f %8.1f %8.3f %8.3f\n",
		name, len(h), float64(len(h))/d.Seconds(), s.AvgLWSS, s.MTTR, s.Gini, s.RSTDDEV)
	r := result{
		Lock:      name,
		Threads:   threads,
		Duration:  d.Seconds(),
		Ops:       len(h),
		OpsPerSec: float64(len(h)) / d.Seconds(),
		AvgLWSS:   s.AvgLWSS,
		MTTR:      s.MTTR,
		Gini:      s.Gini,
		RSTDDEV:   s.RSTDDEV,
	}
	if sl, ok := m.(interface{ Stats() core.Snapshot }); ok {
		snap := sl.Stats()
		r.Stats = map[string]uint64{
			"acquires":     snap.Acquires,
			"handoffs":     snap.Handoffs,
			"culls":        snap.Culls,
			"reprovisions": snap.Reprovisions,
			"promotions":   snap.Promotions,
			"parks":        snap.Parks,
			"unparks":      snap.Unparks,
			"fast_path":    snap.FastPath,
			"slow_path":    snap.SlowPath,
		}
	}
	return r
}
