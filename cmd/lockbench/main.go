// Command lockbench benchmarks the real (goroutine) Malthusian lock
// library on the host machine: aggregate throughput plus the paper's
// fairness metrics (average LWSS, MTTR, Gini, RSTDDEV) over the recorded
// admission history.
//
// Usage:
//
//	lockbench -lock mcscr -threads 8 -duration 2s
//	lockbench -lock all -threads 16 -ncs 2000
//
// Note: host-machine numbers demonstrate lock overheads and fairness
// behaviour, not the paper's hardware collapse curves — those come from
// cmd/figures (see DESIGN.md).
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/lock"
	"repro/metrics"
)

func builders(seed uint64) map[string]func() lock.Mutex {
	return map[string]func() lock.Mutex{
		"tas":       func() lock.Mutex { return lock.NewTAS() },
		"ticket":    func() lock.Mutex { return lock.NewTicket() },
		"clh":       func() lock.Mutex { return lock.NewCLH() },
		"mcs-s":     func() lock.Mutex { return lock.NewMCS(lock.WithWaitPolicy(lock.WaitSpin)) },
		"mcs-stp":   func() lock.Mutex { return lock.NewMCS() },
		"mcscr-s":   func() lock.Mutex { return lock.NewMCSCR(lock.WithWaitPolicy(lock.WaitSpin), lock.WithSeed(seed)) },
		"mcscr-stp": func() lock.Mutex { return lock.NewMCSCR(lock.WithSeed(seed)) },
		"lifocr":    func() lock.Mutex { return lock.NewLIFOCR(lock.WithSeed(seed)) },
		"loiter":    func() lock.Mutex { return lock.NewLOITER(lock.WithSeed(seed)) },
		"null":      func() lock.Mutex { return lock.NewNull() },
	}
}

func main() {
	var (
		name     = flag.String("lock", "mcscr-stp", "lock to benchmark (or 'all')")
		threads  = flag.Int("threads", 8, "goroutines")
		duration = flag.Duration("duration", time.Second, "measurement interval")
		ncs      = flag.Int("ncs", 500, "non-critical-section work (spin iterations)")
		cs       = flag.Int("cs", 100, "critical-section work (spin iterations)")
		seed     = flag.Uint64("seed", 1, "lock PRNG seed")
	)
	flag.Parse()

	all := builders(*seed)
	names := []string{*name}
	if *name == "all" {
		names = names[:0]
		for n := range all {
			names = append(names, n)
		}
		sort.Strings(names)
	}
	fmt.Printf("%-10s %10s %10s %8s %8s %8s %8s\n",
		"lock", "ops", "ops/sec", "LWSS", "MTTR", "Gini", "RSTDDEV")
	for _, n := range names {
		build, ok := all[n]
		if !ok {
			fmt.Fprintf(os.Stderr, "lockbench: unknown lock %q\n", n)
			os.Exit(2)
		}
		run(n, build(), *threads, *duration, *ncs, *cs)
	}
}

var sink uint64

func spin(n int) {
	s := sink
	for i := 0; i < n; i++ {
		s += uint64(i)
	}
	atomic.StoreUint64(&sink, s)
}

func run(name string, m lock.Mutex, threads int, d time.Duration, ncs, cs int) {
	rec := metrics.NewRecorder(1 << 20)
	var stop atomic.Bool
	var wg sync.WaitGroup
	for g := 0; g < threads; g++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			for !stop.Load() {
				spin(ncs)
				m.Lock()
				rec.Record(id) // serialized by the lock
				spin(cs)
				m.Unlock()
			}
		}(g)
	}
	time.Sleep(d)
	stop.Store(true)
	wg.Wait()
	h := rec.History()
	s := metrics.Summarize(h, metrics.DefaultWindow)
	fmt.Printf("%-10s %10d %10.0f %8.1f %8.1f %8.3f %8.3f\n",
		name, len(h), float64(len(h))/d.Seconds(), s.AvgLWSS, s.MTTR, s.Gini, s.RSTDDEV)
}
