// Command lockcheck is the module's static verification suite: six
// analyzers over the concurrency invariants the code relies on but the
// compiler cannot see.
//
//	atomicmix  mixed atomic/plain access to the same memory
//	speclit    constant registry specs validated by the real parsers
//	padalign   cache-line padding and size-class layout contracts
//	hotpath    //lockcheck:cs and //lockcheck:nosnapshot call budgets
//	guardedby  //lockcheck:guardedby fields vs a flow-sensitive lockset
//	lockorder  cycles in the global lock acquisition-order graph
//
// Two ways to run it:
//
//	go run repro/cmd/lockcheck ./...                 # standalone, non-test files
//	go build -o /tmp/lockcheck repro/cmd/lockcheck
//	go vet -vettool=/tmp/lockcheck ./...             # full build, incl. tests
//
// Standalone mode with -json emits findings as a machine-readable array
// instead of the file:line:col lines (one object per finding, with
// file/line/col/analyzer/message fields), for CI consumption.
//
// Findings are suppressed by an adjacent "//lockcheck:ignore <reason>"
// comment; the reason is mandatory and unused directives are themselves
// findings. See DESIGN.md §10 and `lockcheck help`.
package main

import (
	"repro/internal/analysis"
	"repro/internal/analysis/atomicmix"
	"repro/internal/analysis/guardedby"
	"repro/internal/analysis/hotpath"
	"repro/internal/analysis/lockorder"
	"repro/internal/analysis/padalign"
	"repro/internal/analysis/speclit"
)

func main() {
	analysis.Main(
		atomicmix.Analyzer,
		speclit.Analyzer,
		padalign.Analyzer,
		hotpath.Analyzer,
		guardedby.Analyzer,
		lockorder.Analyzer,
	)
}
