// Command shardd serves a shard.Map over the wire protocol: the
// repo's Malthusian lock family, registry-spec stripes, adaptation
// policies, and fault injection, fronted by TCP so arrivals are remote
// requests carrying their own deadlines instead of goroutines a
// benchmark spawned in-process.
//
// Quickstart:
//
//	shardd -addr :7070 -metrics-addr :7071 \
//	    -stripes 16 -lock 'mcscr-stp?fairness=500' -backend skiplist \
//	    -policy slo -conn-model pool -pool-size 64
//
// Drive it with cmd/shardload, scrape text-exposition counters from
// /metrics on the metrics address, arm chaos over the wire with the
// FAULT verb (wire.Client.FaultArm), and stop it with SIGTERM — the
// server drains: accepted requests finish and their responses flush
// before the process exits.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/server"
)

func main() {
	var cfg server.Config
	flag.StringVar(&cfg.Addr, "addr", ":7070", "wire listen address")
	flag.StringVar(&cfg.MetricsAddr, "metrics-addr", "", "/metrics HTTP listen address (empty = disabled)")
	flag.IntVar(&cfg.Stripes, "stripes", 0, "stripe count (0 = shard default, rounded up to a power of two)")
	flag.StringVar(&cfg.LockSpec, "lock", "", "stripe lock spec (see lock.New; empty = shard default)")
	flag.StringVar(&cfg.BackendSpec, "backend", "", "stripe backend spec (see store.New; empty = shard default)")
	flag.StringVar(&cfg.ReadPath, "read-path", "", "Get read path: locked (default) or optimistic[?retries=N] (lock-free seqlock-validated Gets)")
	flag.StringVar(&cfg.Policy, "policy", "", "adaptation policy spec (see policy.New; empty = no controller)")
	flag.DurationVar(&cfg.AdaptInterval, "adapt-interval", 0, "controller cadence (0 = shard default)")
	flag.StringVar(&cfg.ConnModel, "conn-model", server.ConnGoroutine, "connection handling: goroutine (serve all) or pool (bounded Malthusian admission)")
	flag.IntVar(&cfg.PoolSize, "pool-size", 64, "concurrently served connections under -conn-model pool")
	flag.DurationVar(&cfg.DrainGrace, "drain-grace", 2*time.Second, "how long SIGTERM drain waits for in-flight requests")
	flag.DurationVar(&cfg.MetricsInterval, "metrics-interval", time.Second, "/metrics sampler cadence")
	flag.Uint64Var(&cfg.Seed, "seed", 0, "deterministic seed for stochastic lock/pool behavior (0 = off)")
	flag.IntVar(&cfg.HistoryCap, "history-cap", 0, "per-stripe admission history capacity (0 = off; enables LWSS gauges)")
	flag.Parse()

	s, err := server.New(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	if err := s.Start(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	fmt.Printf("shardd: serving on %s", s.Addr())
	if ma := s.MetricsAddr(); ma != "" {
		fmt.Printf(", /metrics on %s", ma)
	}
	fmt.Printf(" (conn-model=%s)\n", cfg.ConnModel)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGTERM, syscall.SIGINT)
	got := <-sig
	fmt.Printf("shardd: %v — draining (grace %v)\n", got, cfg.DrainGrace)
	if err := s.Drain(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Println("shardd: drained")
}
