// Command figures regenerates the tables and figures of "Malthusian
// Locks" (EuroSys 2017) on the simulated machine.
//
// Usage:
//
//	figures -fig 3              # print Figure 3 as TSV
//	figures -fig 4              # print the Figure 4 table
//	figures -fig all            # every figure (long)
//	figures -fig 3 -quick       # trimmed sweep
//	figures -fig 3 -scale 8 -measure 20000000 -threads 1,5,16,32
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/experiments"
	"repro/sim"
)

func main() {
	var (
		fig     = flag.String("fig", "", "figure to regenerate: 1..14 or 'all'")
		quick   = flag.Bool("quick", false, "trimmed thread sweep")
		scale   = flag.Int("scale", 16, "cache/footprint scale divisor")
		measure = flag.Int64("measure", 12_000_000, "measurement interval (cycles)")
		threads = flag.String("threads", "", "comma-separated thread counts (override sweep)")
		seed    = flag.Uint64("seed", 1, "simulation seed")
	)
	flag.Parse()
	if *fig == "" {
		flag.Usage()
		os.Exit(2)
	}
	opts := experiments.Options{
		Quick:   *quick,
		Scale:   *scale,
		Measure: sim.Cycles(*measure),
		Seed:    *seed,
	}
	if *threads != "" {
		for _, part := range strings.Split(*threads, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(part))
			if err != nil || n < 1 {
				fmt.Fprintf(os.Stderr, "figures: bad thread count %q\n", part)
				os.Exit(2)
			}
			opts.Threads = append(opts.Threads, n)
		}
	}

	ids := []string{*fig}
	if *fig == "all" {
		ids = []string{"1", "2", "3", "4", "5", "6", "7", "8", "9", "10", "11", "12", "13", "14"}
	}
	for _, id := range ids {
		if err := emit(id, opts); err != nil {
			fmt.Fprintf(os.Stderr, "figures: %v\n", err)
			os.Exit(1)
		}
	}
}

func emit(id string, opts experiments.Options) error {
	switch id {
	case "1":
		fmt.Print(experiments.Fig1(opts).TSV())
	case "2":
		fmt.Println("# fig2: Comparison of TAS and MCS locks")
		fmt.Print(experiments.Fig2())
	case "3":
		fmt.Print(experiments.Fig3(opts).TSV())
	case "4":
		fmt.Println("# fig4: In-depth measurements for Random Access Array at 32 threads")
		fmt.Print(experiments.Fig4TSV(experiments.Fig4(opts)))
	case "5":
		fmt.Print(experiments.Fig5(opts).TSV())
	case "6":
		fmt.Print(experiments.Fig6(opts).TSV())
	case "7":
		fmt.Print(experiments.Fig7(opts).TSV())
	case "8":
		fmt.Print(experiments.Fig8(opts).TSV())
	case "9":
		fmt.Print(experiments.Fig9(opts).TSV())
	case "10":
		fmt.Print(experiments.Fig10(opts).TSV())
	case "11":
		fmt.Print(experiments.Fig11(opts).TSV())
	case "12":
		fmt.Print(experiments.Fig12(opts).TSV())
	case "13":
		fmt.Print(experiments.Fig13(opts).TSV())
	case "14":
		fmt.Print(experiments.Fig14(opts).TSV())
	case "numa":
		f := experiments.FigNUMA(opts)
		fmt.Print(f.TSV())
		fmt.Println("# lock migrations per acquisition at max threads:")
		for label, rate := range experiments.MigrationRates(f) {
			fmt.Printf("# %-12s %.4f\n", label, rate)
		}
	default:
		return fmt.Errorf("unknown figure %q (want 1..14, numa, or all)", id)
	}
	fmt.Println()
	return nil
}
