// Command simexplore runs ad-hoc sweeps on the simulated machine: pick a
// workload, a lock, and sweep a parameter. It complements cmd/figures
// (which reproduces the paper's exact configurations) by exposing the
// knobs the paper discusses qualitatively — fairness period, spin budget,
// idle-state exit penalties, machine scale.
//
// Usage:
//
//	simexplore -workload randarray -lock mcscr-stp -threads 32 \
//	    -sweep fairness -values 0,10,100,1000,10000
//	simexplore -workload stresslatency -lock mcscr-stp -threads 64 \
//	    -sweep spinbudget -values 5000,25000,100000
//	simexplore -workload randarray -lock mcscr-stp -threads 32 \
//	    -sweep exitdeep -values 2000,25000,80000
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/sim"
	"repro/workloads"
)

func main() {
	var (
		workload = flag.String("workload", "randarray", "randarray|ringwalker|stresslatency|keymap|lrucache")
		lockName = flag.String("lock", "mcscr-stp", "mcs-s|mcs-stp|mcscr-s|mcscr-stp|lifocr|tas|null")
		threads  = flag.Int("threads", 32, "thread count")
		scale    = flag.Int("scale", 16, "cache scale divisor")
		measure  = flag.Int64("measure", 12_000_000, "measurement cycles")
		sweepVar = flag.String("sweep", "fairness", "fairness|spinbudget|exitdeep|scale|quantum")
		values   = flag.String("values", "0,100,1000", "comma-separated sweep values")
		seed     = flag.Uint64("seed", 1, "seed")
	)
	flag.Parse()

	spec, ok := lockSpec(*lockName)
	if !ok {
		fmt.Fprintf(os.Stderr, "simexplore: unknown lock %q\n", *lockName)
		os.Exit(2)
	}
	fmt.Printf("# workload=%s lock=%s threads=%d sweep=%s\n",
		*workload, *lockName, *threads, *sweepVar)
	fmt.Printf("%-12s %12s %8s %8s %8s %10s %8s\n",
		*sweepVar, "steps/sec", "LWSS", "MTTR", "vctx", "L3miss", "∆W")
	for _, part := range strings.Split(*values, ",") {
		v, err := strconv.ParseInt(strings.TrimSpace(part), 10, 64)
		if err != nil {
			fmt.Fprintf(os.Stderr, "simexplore: bad value %q\n", part)
			os.Exit(2)
		}
		cfg := sim.DefaultConfig(*scale)
		cfg.Seed = *seed
		sp := spec
		switch *sweepVar {
		case "fairness":
			if v == 0 {
				sp.FairnessPeriod = sim.NoFairness
			} else {
				sp.FairnessPeriod = uint64(v)
			}
		case "spinbudget":
			cfg.SpinBudget = v
		case "exitdeep":
			cfg.ExitDeep = v
			cfg.ExitMid = v / 3
		case "scale":
			cfg = sim.DefaultConfig(int(v))
			cfg.Seed = *seed
		case "quantum":
			cfg.Quantum = v
		default:
			fmt.Fprintf(os.Stderr, "simexplore: unknown sweep %q\n", *sweepVar)
			os.Exit(2)
		}
		res, err := runOnce(cfg, sp, *workload, *threads, sim.Cycles(*measure))
		if err != nil {
			fmt.Fprintf(os.Stderr, "simexplore: %v\n", err)
			os.Exit(2)
		}
		fmt.Printf("%-12d %12.0f %8.1f %8.1f %8d %10d %8.0f\n",
			v, res.StepsPerSec, res.Fairness.AvgLWSS, res.Fairness.MTTR,
			res.VoluntaryCtxSwitches, res.CacheStats.LLCMisses, res.DeltaWatts)
	}
}

func lockSpec(name string) (sim.LockSpec, bool) {
	m := map[string]sim.LockSpec{
		"mcs-s":     {Kind: sim.KindMCS, Mode: sim.ModeSpin},
		"mcs-stp":   {Kind: sim.KindMCS, Mode: sim.ModeSTP},
		"mcscr-s":   {Kind: sim.KindMCSCR, Mode: sim.ModeSpin},
		"mcscr-stp": {Kind: sim.KindMCSCR, Mode: sim.ModeSTP},
		"lifocr":    {Kind: sim.KindLIFO, Mode: sim.ModeSTP},
		"tas":       {Kind: sim.KindTAS, Mode: sim.ModeSTP},
		"null":      {Kind: sim.KindNull},
	}
	s, ok := m[name]
	return s, ok
}

func runOnce(cfg sim.Config, spec sim.LockSpec, workload string, n int, measure sim.Cycles) (sim.Result, error) {
	switch workload {
	case "randarray", "keymap", "lrucache":
		workloads.ConfigureLargePages(&cfg)
	}
	e := sim.New(cfg)
	l := e.NewLock(spec)
	switch workload {
	case "randarray":
		workloads.BuildRandArray(e, l, n, workloads.DefaultRandArray())
	case "ringwalker":
		workloads.BuildRingWalker(e, l, n, workloads.DefaultRingWalker())
	case "stresslatency":
		workloads.BuildStressLatency(e, l, n, workloads.DefaultStressLatency())
	case "keymap":
		workloads.BuildKeymap(e, l, n, workloads.DefaultKeymap())
	case "lrucache":
		workloads.BuildLRUCache(e, l, n, workloads.DefaultLRUCache())
	default:
		return sim.Result{}, fmt.Errorf("unknown workload %q", workload)
	}
	return e.RunStandard(measure), nil
}
