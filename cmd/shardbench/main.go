// Command shardbench benchmarks the sharded KV service (package shard)
// under traffic shapes a served system actually sees: key skew (zipf vs
// uniform), a read/write mix, open-loop request arrival, and per-request
// deadlines. It sweeps stripe counts and per-stripe lock specs, so the
// question the paper asks of a single lock — does admission policy keep a
// heavily shared lock from collapsing? — is asked of every stripe of a
// service at once:
//
//	shardbench -stripes 1,8,64 -lock tas,mcscr-stp -cancel-frac 0.2
//	shardbench -stripes 1,16 -lock 'mcscr-stp?fairness=500' -dist zipf -rate 200000
//
// Workers issue Get/Put through the context forms, each request tagged
// with its worker id (shard.WithClientID), so every admission lands in
// the owning stripe's history and the JSON record can report fairness
// (LWSS, Gini) per stripe — which is where collapse shows up: a skewed
// keyspace collapses its hottest stripe long before the aggregate
// throughput says anything.
//
// With -rate R the arrival process is open-loop: each worker follows a
// Poisson schedule at R/threads requests/sec, and a request's deadline is
// measured from its scheduled arrival, not from when a backlogged worker
// got to it — so falling behind schedule burns deadline budget, exactly
// like a queue in front of a real service. -rate 0 (default) is closed
// loop. The fraction -cancel-frac of requests carries a deadline of
// -deadline; the table and JSON report the deadline-miss rate ("-" when
// no request carried a deadline, never NaN).
//
// The results are written to -json (default BENCH_shard.json; the copy at
// the repository root tracks the service-path perf trajectory alongside
// BENCH_locks.json).
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/shard"
)

// result is one benchmark row: a (distribution, lock spec, stripe count)
// cell of the sweep.
type result struct {
	Dist     string  `json:"dist"`
	Lock     string  `json:"lock"`
	Stripes  int     `json:"stripes"`
	Threads  int     `json:"threads"`
	Duration float64 `json:"duration_sec"`

	Ops       int     `json:"ops"`
	OpsPerSec float64 `json:"ops_per_sec"`

	// Deadline traffic: requests that carried one, how many missed (the
	// stripe was not reached in time), and the miss rate. MissRate is 0 —
	// and the table column "-" — when no request carried a deadline.
	DeadlineAttempts int     `json:"deadline_attempts,omitempty"`
	DeadlineMisses   int     `json:"deadline_misses,omitempty"`
	MissRate         float64 `json:"miss_rate,omitempty"`

	// Per-stripe fairness, aggregated: the mean/max of each stripe's
	// AvgLWSS and Gini over its admission history. Max is the collapse
	// detector — a single collapsed stripe vanishes from a mean.
	MeanLWSS float64 `json:"mean_lwss"`
	MaxLWSS  float64 `json:"max_lwss"`
	MeanGini float64 `json:"mean_gini"`
	MaxGini  float64 `json:"max_gini"`

	// Rolled-up CR event counters across all stripe locks.
	Stats map[string]uint64 `json:"stats,omitempty"`
}

// record is the top-level JSON document.
type record struct {
	GOMAXPROCS int      `json:"gomaxprocs"`
	NumCPU     int      `json:"num_cpu"`
	GoVersion  string   `json:"go_version"`
	Keys       int      `json:"keys"`
	ReadFrac   float64  `json:"read_frac"`
	ZipfS      float64  `json:"zipf_s"`
	Rate       float64  `json:"rate,omitempty"`
	CancelFrac float64  `json:"cancel_frac,omitempty"`
	Deadline   string   `json:"deadline,omitempty"`
	Results    []result `json:"results"`
}

func main() {
	var (
		stripesList = flag.String("stripes", "1,8,64", "comma-separated stripe counts to sweep")
		lockList    = flag.String("lock", "tas,mcscr-stp", "comma-separated lock specs (see lock.New)")
		distList    = flag.String("dist", "uniform,zipf", "comma-separated key distributions: uniform, zipf")
		threads     = flag.Int("threads", 8, "client goroutines")
		duration    = flag.Duration("duration", time.Second, "measurement interval per cell")
		keys        = flag.Int("keys", 1<<16, "keyspace size")
		readFrac    = flag.Float64("read-frac", 0.9, "fraction of requests that are Gets")
		zipfS       = flag.Float64("zipf-s", 1.2, "zipf skew parameter (s > 1)")
		rate        = flag.Float64("rate", 0, "open-loop arrival rate in requests/sec across all workers (0 = closed loop)")
		cancelFrac  = flag.Float64("cancel-frac", 0, "fraction of requests carrying a deadline (0..1)")
		deadline    = flag.Duration("deadline", time.Millisecond, "per-request deadline, measured from arrival")
		seed        = flag.Uint64("seed", 1, "base PRNG seed for locks and workload")
		jsonPath    = flag.String("json", "BENCH_shard.json", "write results to this file as JSON ('' disables)")
	)
	flag.Parse()

	stripeCounts, err := parseInts(*stripesList)
	if err != nil {
		fmt.Fprintf(os.Stderr, "shardbench: -stripes: %v\n", err)
		os.Exit(2)
	}
	specs := splitList(*lockList)
	dists := splitList(*distList)
	for _, d := range dists {
		if d != "uniform" && d != "zipf" {
			fmt.Fprintf(os.Stderr, "shardbench: -dist: unknown distribution %q (want uniform or zipf)\n", d)
			os.Exit(2)
		}
		// rand.NewZipf returns nil for s <= 1, which would silently fall
		// back to uniform keys under a "zipf" label in the record.
		if d == "zipf" && *zipfS <= 1 {
			fmt.Fprintf(os.Stderr, "shardbench: -zipf-s: %v is out of range (want s > 1)\n", *zipfS)
			os.Exit(2)
		}
	}
	// Resolve every (spec, stripes) cell before any measurement, so a typo
	// fails fast instead of after minutes of sweeping.
	for _, spec := range specs {
		if _, err := shard.New(shard.Config{Stripes: 1, LockSpec: spec}); err != nil {
			fmt.Fprintf(os.Stderr, "shardbench: %v\n", err)
			os.Exit(2)
		}
	}

	rec := record{
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		GoVersion:  runtime.Version(),
		Keys:       *keys,
		ReadFrac:   *readFrac,
		ZipfS:      *zipfS,
		Rate:       *rate,
		CancelFrac: *cancelFrac,
	}
	if *cancelFrac > 0 {
		rec.Deadline = deadline.String()
	}

	fmt.Printf("%-8s %-12s %8s %10s %10s %8s %9s %9s %9s\n",
		"dist", "lock", "stripes", "ops", "ops/sec", "miss%", "LWSS", "maxLWSS", "Gini")
	for _, dist := range dists {
		for _, spec := range specs {
			for _, n := range stripeCounts {
				r := runCell(cellConfig{
					dist: dist, spec: spec, stripes: n,
					threads: *threads, duration: *duration,
					keys: *keys, readFrac: *readFrac, zipfS: *zipfS,
					rate: *rate, cancelFrac: *cancelFrac, deadline: *deadline,
					seed: *seed,
				})
				rec.Results = append(rec.Results, r)
				missCol := "-"
				if r.DeadlineAttempts > 0 {
					missCol = fmt.Sprintf("%.2f", 100*r.MissRate)
				}
				fmt.Printf("%-8s %-12s %8d %10d %10.0f %8s %9.1f %9.1f %9.3f\n",
					r.Dist, r.Lock, r.Stripes, r.Ops, r.OpsPerSec, missCol,
					r.MeanLWSS, r.MaxLWSS, r.MeanGini)
			}
		}
	}

	if *jsonPath != "" {
		buf, err := json.MarshalIndent(rec, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "shardbench: marshal: %v\n", err)
			os.Exit(1)
		}
		buf = append(buf, '\n')
		if err := os.WriteFile(*jsonPath, buf, 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "shardbench: %v\n", err)
			os.Exit(1)
		}
	}
}

type cellConfig struct {
	dist       string
	spec       string
	stripes    int
	threads    int
	duration   time.Duration
	keys       int
	readFrac   float64
	zipfS      float64
	rate       float64
	cancelFrac float64
	deadline   time.Duration
	seed       uint64
}

func runCell(c cellConfig) result {
	// Per-stripe history cap scaled inversely with stripe count: admissions
	// spread across stripes, so this keeps total preallocated history
	// storage (which shard.New allocates up front to keep recording
	// allocation-free inside the critical section) at ~8 MB per cell while
	// still far exceeding any LWSS window.
	hcap := (1 << 20) / c.stripes
	if hcap < 1<<14 {
		hcap = 1 << 14
	}
	m := shard.MustNew(shard.Config{
		Stripes:    c.stripes,
		LockSpec:   c.spec,
		Seed:       c.seed,
		Capacity:   c.keys,
		HistoryCap: hcap,
	})
	// Preload the keyspace so Gets hit and Puts update in place; the
	// measured interval then exercises steady-state traffic, not growth.
	for k := 0; k < c.keys; k++ {
		m.Put(uint64(k), uint64(k))
	}

	var stop atomic.Bool
	var ops, attempts, misses atomic.Int64
	var wg sync.WaitGroup
	perWorkerRate := c.rate / float64(c.threads)
	for g := 0; g < c.threads; g++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(c.seed)*1315423911 + int64(id)))
			var zipf *rand.Zipf
			if c.dist == "zipf" {
				zipf = rand.NewZipf(rng, c.zipfS, 1, uint64(c.keys-1))
			}
			pick := func() uint64 {
				if zipf != nil {
					return zipf.Uint64()
				}
				return uint64(rng.Intn(c.keys))
			}
			base := shard.WithClientID(context.Background(), id)
			// Open loop: a Poisson schedule this worker must keep up with.
			next := time.Now()
			interval := func() time.Duration {
				if perWorkerRate <= 0 {
					return 0
				}
				return time.Duration(rng.ExpFloat64() / perWorkerRate * float64(time.Second))
			}
			for !stop.Load() {
				arrival := time.Now()
				if perWorkerRate > 0 {
					next = next.Add(interval())
					arrival = next
					if !sleepUntil(next, &stop) {
						return
					}
				}
				key := pick()
				read := rng.Float64() < c.readFrac
				var err error
				if c.cancelFrac > 0 && rng.Float64() < c.cancelFrac {
					// Deadline measured from scheduled arrival: a worker
					// behind schedule starts with the budget already burnt.
					ctx, cancel := context.WithDeadline(base, arrival.Add(c.deadline))
					attempts.Add(1)
					if read {
						_, _, err = m.GetContext(ctx, key)
					} else {
						_, err = m.PutContext(ctx, key, uint64(id))
					}
					cancel()
					if err != nil {
						misses.Add(1)
						continue
					}
				} else if read {
					_, _, err = m.GetContext(base, key)
				} else {
					_, err = m.PutContext(base, key, uint64(id))
				}
				if err != nil {
					panic(err) // uncancellable contexts cannot fail
				}
				ops.Add(1)
			}
		}(g)
	}
	time.Sleep(c.duration)
	stop.Store(true)
	wg.Wait()

	snap := m.Snapshot()
	r := result{
		Dist:      c.dist,
		Lock:      c.spec,
		Stripes:   m.Stripes(),
		Threads:   c.threads,
		Duration:  c.duration.Seconds(),
		Ops:       int(ops.Load()),
		OpsPerSec: float64(ops.Load()) / c.duration.Seconds(),
	}
	if n := attempts.Load(); n > 0 {
		// Guarded: the rate is computed only from a nonzero attempt count,
		// so the JSON can never carry a NaN (encoding/json rejects them).
		r.DeadlineAttempts = int(n)
		r.DeadlineMisses = int(misses.Load())
		r.MissRate = float64(misses.Load()) / float64(n)
	}
	active := 0
	for _, s := range snap.Stripes {
		if s.Fairness.Admissions == 0 {
			continue
		}
		active++
		r.MeanLWSS += s.Fairness.AvgLWSS
		r.MeanGini += s.Fairness.Gini
		if s.Fairness.AvgLWSS > r.MaxLWSS {
			r.MaxLWSS = s.Fairness.AvgLWSS
		}
		if s.Fairness.Gini > r.MaxGini {
			r.MaxGini = s.Fairness.Gini
		}
	}
	if active > 0 {
		r.MeanLWSS /= float64(active)
		r.MeanGini /= float64(active)
	}
	r.Stats = map[string]uint64{
		"acquires":     snap.Lock.Acquires,
		"handoffs":     snap.Lock.Handoffs,
		"culls":        snap.Lock.Culls,
		"reprovisions": snap.Lock.Reprovisions,
		"promotions":   snap.Lock.Promotions,
		"parks":        snap.Lock.Parks,
		"unparks":      snap.Lock.Unparks,
		"fast_path":    snap.Lock.FastPath,
		"slow_path":    snap.Lock.SlowPath,
		"cancels":      snap.Lock.Cancels,
		"abandons":     snap.Lock.Abandons,
	}
	return r
}

// sleepUntil sleeps toward t in short slices, abandoning the wait when
// stop is set. It reports whether the caller should proceed (false =
// stopped). Sliced sleeping keeps a low-rate worker from sleeping through
// the end of the cell: an exponential-tail inter-arrival would otherwise
// run one op past the measured window (inflating OpsPerSec exactly where
// each op matters most) and stall cell teardown until the worker wakes.
func sleepUntil(t time.Time, stop *atomic.Bool) bool {
	const slice = 5 * time.Millisecond
	for {
		if stop.Load() {
			return false
		}
		d := time.Until(t)
		if d <= 0 {
			return true
		}
		if d > slice {
			d = slice
		}
		time.Sleep(d)
	}
}

func splitList(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if part = strings.TrimSpace(part); part != "" {
			out = append(out, part)
		}
	}
	return out
}

func parseInts(s string) ([]int, error) {
	var out []int
	for _, part := range splitList(s) {
		n, err := strconv.Atoi(part)
		if err != nil || n < 1 {
			return nil, fmt.Errorf("bad stripe count %q", part)
		}
		out = append(out, n)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty list")
	}
	return out, nil
}
