// Command shardbench benchmarks the sharded KV service (package shard)
// under traffic shapes a served system actually sees: key skew (zipf vs
// uniform), a read/write mix, an optional scan mix, open-loop request
// arrival, and per-request deadlines. It sweeps stripe counts, per-stripe
// lock specs, and per-stripe backend specs, so the question the paper
// asks of a single lock — does admission policy keep a heavily shared
// lock from collapsing? — is asked of every stripe of a service at once,
// across every data structure that could serve the stripe:
//
//	shardbench -stripes 1,8,64 -lock tas,mcscr-stp -cancel-frac 0.2
//	shardbench -stripes 1,16 -lock 'mcscr-stp?fairness=500' -backend hashmap,skiplist,rbtree
//	shardbench -stripes 8 -backend skiplist -scan-frac 0.1 -scan-span 256
//	shardbench -stripes 8 -lock mcs-stp -dist zipf -policy static,malthusian
//	shardbench -read-frac 0.95 -read-path locked,optimistic -dist zipf
//	shardbench -list
//
// -read-path sweeps the Get path: "locked" routes every Get through the
// stripe lock; "optimistic[?retries=N]" serves seqlock-validated Gets
// without acquiring it (see package optimistic). Optimistic cells report
// hit/retry/fallback counts (and rates) in the JSON and an indented
// detail line; read them against the cell's "acquires" stat — on a
// read-heavy cell the acquires collapse to roughly the write volume
// while hits carry the reads, which is the whole point of the path.
//
// With -policy, each cell additionally runs a shard.Controller driving
// the named adaptation policy (see policy.New) at -adapt-interval: the
// controller snapshots the map, diffs, and live-reconfigures stripes the
// policy says are mis-specced — a zipf-hot stripe demoted to a culling
// lock by "malthusian", a scan-swamped stripe flipped to an ordered
// backend by "scanaware". The swaps column (and "swaps" JSON field)
// counts applied reconfigurations per cell; sweep "static,malthusian" to
// price adaptation against a frozen baseline on identical traffic.
//
// Workers issue Get/Put (and, with -scan-frac, ordered range scans)
// through the context forms, each request tagged with its worker id
// (shard.WithClientID), so every admission lands in the owning stripe's
// history and the JSON record can report fairness (LWSS, Gini) per
// stripe — which is where collapse shows up: a skewed keyspace collapses
// its hottest stripe long before the aggregate throughput says anything.
//
// Scans require an ordered backend ("skiplist", "rbtree"); a -scan-frac
// sweep that includes an unordered backend is rejected up front — unless
// a -policy runs, because a policy can install (or remove) an ordered
// backend mid-cell; scans refused with ErrUnordered are then counted in
// scans_rejected rather than failing the cell, so
//
//	shardbench -backend hashmap -scan-frac 0.3 -policy scanaware
//
// starts with every scan rejected and ends with the flipped stripes
// serving them. Each scan covers -scan-span consecutive keys from a
// point drawn from the key distribution and goes through ScanContext,
// so a scan visits every stripe and prices the cross-stripe merge
// against hashmap's cheaper point ops.
//
// Every completed request's latency — scheduled arrival (open loop) or
// issue time (closed loop) to completion, i.e. the time-to-stripe the
// deadline machinery bounds plus the bounded table work — is recorded,
// and the table and JSON report p50/p99 per cell alongside the
// deadline-miss rate ("-" when no request carried a deadline, never
// NaN). Deadline-missed requests are not in the percentile pool (their
// latency is clipped at -deadline by construction); they are accounted
// by the miss rate, so read the two columns together.
//
// With -rate R the arrival process is open-loop: each worker follows a
// Poisson schedule at R/threads requests/sec, and a request's deadline
// (and latency) is measured from its scheduled arrival, not from when a
// backlogged worker got to it — so falling behind schedule burns
// deadline budget, exactly like a queue in front of a real service.
// -rate 0 (default) is closed loop.
//
// With -fault, every cell runs a scripted chaos timeline (see fault.New
// for the spec grammar): the cell warms up healthy, the fault set is
// armed at -fault-after, disarmed -fault-for later, and the tail of the
// cell is the recovery window. Stall faults are injected inside the
// stripe critical section (Map.SetInjector), hotkey faults rewrite the
// workers' keys, and surge faults grow the worker pool with patient
// (deadline-free) extra hammerers while active. A sampler splits the
// deadline traffic into pre/fault/post phases and measures
// time-to-recovery: how long after fault onset the trailing miss rate
// (sampled every -fault-sample) stays at or below -fault-target for
// three consecutive samples. Sweeping -policy 'static,slo?...' over the
// same timeline prices the SLO-native controller against a frozen
// baseline on identical chaos:
//
//	shardbench -stripes 4 -lock mcs-stp -dist zipf -cancel-frac 0.2 -deadline 8ms \
//	  -duration 4s -fault 'stall?p=1&hold=1ms' -policy 'static,slo?hot=mcscr-stp'
//
// A static cell only "recovers" when the fault is lifted; an slo cell
// demotes the burning stripes to the culling lock and recovers while the
// stall is still being injected — the paper's claim, measured at the
// objective. The per-phase rates, recovery time, and injected-fault
// counters land in a "chaos" JSON object per cell and an indented detail
// line under the table row.
//
// The results are written to -json (default BENCH_shard.json; the copy at
// the repository root tracks the service-path perf trajectory alongside
// BENCH_locks.json). With -append, an existing -json file is extended to
// a JSON array of records instead of overwritten — so a chaos run can
// ride alongside the steady-state record.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/fault"
	"repro/internal/benchfmt"
	"repro/lock"
	"repro/policy"
	"repro/shard"
	"repro/store"
)

func main() {
	var (
		stripesList = flag.String("stripes", "1,8,64", "comma-separated stripe counts to sweep")
		lockList    = flag.String("lock", "tas,mcscr-stp", "comma-separated lock specs (see lock.New)")
		backendList = flag.String("backend", "hashmap", "comma-separated backend specs (see store.New)")
		rpathList   = flag.String("read-path", "locked", "comma-separated Get read paths: locked, optimistic[?retries=N] (see optimistic.Parse)")
		distList    = flag.String("dist", "uniform,zipf", "comma-separated key distributions: uniform, zipf")
		threads     = flag.Int("threads", 8, "client goroutines")
		duration    = flag.Duration("duration", time.Second, "measurement interval per cell")
		keys        = flag.Int("keys", 1<<16, "keyspace size")
		readFrac    = flag.Float64("read-frac", 0.9, "fraction of non-scan requests that are Gets")
		scanFrac    = flag.Float64("scan-frac", 0, "fraction of requests that are ordered range scans (0..1; needs an ordered backend)")
		scanSpan    = flag.Int("scan-span", 128, "consecutive keys covered by each scan")
		zipfS       = flag.Float64("zipf-s", 1.2, "zipf skew parameter (s > 1)")
		rate        = flag.Float64("rate", 0, "open-loop arrival rate in requests/sec across all workers (0 = closed loop)")
		cancelFrac  = flag.Float64("cancel-frac", 0, "fraction of requests carrying a deadline (0..1)")
		deadline    = flag.Duration("deadline", time.Millisecond, "per-request deadline, measured from arrival")
		policyList  = flag.String("policy", "", "comma-separated adaptation policy specs to sweep (see policy.New; empty = no controller)")
		adaptEvery  = flag.Duration("adapt-interval", shard.DefaultControllerInterval, "controller snapshot cadence when -policy is set")
		faultSpec   = flag.String("fault", "", "fault set spec for a scripted chaos timeline in every cell (see fault.New; empty = no chaos)")
		faultAfter  = flag.Duration("fault-after", 0, "arm the fault set this long into each cell (0 = duration/4)")
		faultFor    = flag.Duration("fault-for", 0, "keep the fault set armed this long (0 = duration/2)")
		faultSample = flag.Duration("fault-sample", 25*time.Millisecond, "chaos sampler cadence for phase accounting and recovery detection")
		faultTarget = flag.Float64("fault-target", 0.05, "trailing miss rate at or below which the SLO counts as recovered")
		seed        = flag.Uint64("seed", 1, "base PRNG seed for locks, backends, and workload")
		jsonPath    = flag.String("json", "BENCH_shard.json", "write results to this file as JSON ('' disables)")
		appendJSON  = flag.Bool("append", false, "append the record to -json as a JSON array instead of overwriting")
		list        = flag.Bool("list", false, "list registered lock, backend, policy, and fault specs with their summaries, then exit")
	)
	flag.Parse()

	if *list {
		printRegistries(os.Stdout)
		return
	}

	stripeCounts, err := parseInts(*stripesList)
	if err != nil {
		fmt.Fprintf(os.Stderr, "shardbench: -stripes: %v\n", err)
		os.Exit(2)
	}
	specs := splitList(*lockList)
	backends := splitList(*backendList)
	dists := splitList(*distList)
	for _, d := range dists {
		if d != "uniform" && d != "zipf" {
			fmt.Fprintf(os.Stderr, "shardbench: -dist: unknown distribution %q (want uniform or zipf)\n", d)
			os.Exit(2)
		}
		// rand.NewZipf returns nil for s <= 1, which would silently fall
		// back to uniform keys under a "zipf" label in the record.
		if d == "zipf" && *zipfS <= 1 {
			fmt.Fprintf(os.Stderr, "shardbench: -zipf-s: %v is out of range (want s > 1)\n", *zipfS)
			os.Exit(2)
		}
	}
	if *scanFrac > 0 && *scanSpan < 1 {
		fmt.Fprintf(os.Stderr, "shardbench: -scan-span: want a positive span\n")
		os.Exit(2)
	}
	// Resolve every cell before any measurement, so a typo — or a scan
	// mix over a backend that cannot serve scans — fails fast instead of
	// after minutes of sweeping. With a -policy the ordered requirement
	// is lifted: a policy can install (or remove) an ordered backend
	// mid-cell — that is scanaware's whole demo — so rejected scans
	// become a counted outcome instead of a config error.
	for _, bspec := range backends {
		b, err := store.New(bspec)
		if err != nil {
			fmt.Fprintf(os.Stderr, "shardbench: %v\n", err)
			os.Exit(2)
		}
		if _, ordered := b.(store.Ordered); *scanFrac > 0 && !ordered && *policyList == "" {
			fmt.Fprintf(os.Stderr, "shardbench: -scan-frac needs ordered backends (or a -policy that can install one, e.g. scanaware), but %q is not (ordered: skiplist, rbtree)\n", bspec)
			os.Exit(2)
		}
	}
	for _, spec := range specs {
		if _, err := shard.New(shard.Config{Stripes: 1, LockSpec: spec}); err != nil {
			fmt.Fprintf(os.Stderr, "shardbench: %v\n", err)
			os.Exit(2)
		}
	}
	rpaths := splitList(*rpathList)
	if len(rpaths) == 0 {
		rpaths = []string{""}
	}
	for _, rp := range rpaths {
		if _, err := shard.New(shard.Config{Stripes: 1, ReadPath: rp}); err != nil {
			fmt.Fprintf(os.Stderr, "shardbench: %v\n", err)
			os.Exit(2)
		}
	}
	// "" is the no-controller cell; named policies are resolved up front
	// like locks and backends, so a typo fails before any measurement.
	policies := splitList(*policyList)
	if len(policies) == 0 {
		policies = []string{""}
	}
	for _, pspec := range policies {
		if pspec == "" {
			continue
		}
		if _, err := policy.New(pspec); err != nil {
			fmt.Fprintf(os.Stderr, "shardbench: %v\n", err)
			os.Exit(2)
		}
	}
	// The chaos timeline is validated like everything else: spec up
	// front, and the Arm..Disarm window must leave a recovery tail inside
	// the cell — a fault that outlives the measurement proves nothing
	// about recovery.
	fAfter, fFor := *faultAfter, *faultFor
	if *faultSpec != "" {
		if _, err := fault.New(*faultSpec); err != nil {
			fmt.Fprintf(os.Stderr, "shardbench: %v\n", err)
			os.Exit(2)
		}
		if fAfter <= 0 {
			fAfter = *duration / 4
		}
		if fFor <= 0 {
			fFor = *duration / 2
		}
		if fAfter+fFor >= *duration {
			fmt.Fprintf(os.Stderr, "shardbench: -fault timeline (-fault-after %v + -fault-for %v) leaves no recovery tail inside -duration %v\n", fAfter, fFor, *duration)
			os.Exit(2)
		}
		if *faultSample <= 0 {
			fmt.Fprintf(os.Stderr, "shardbench: -fault-sample: want a positive cadence\n")
			os.Exit(2)
		}
		if *cancelFrac <= 0 {
			fmt.Fprintf(os.Stderr, "shardbench: warning: -fault without -cancel-frac: no request carries a deadline, so the chaos miss rates and recovery time will read empty\n")
		}
	}

	rec := benchfmt.Record{
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		GoVersion:  runtime.Version(),
		Keys:       *keys,
		ReadFrac:   *readFrac,
		ScanFrac:   *scanFrac,
		ZipfS:      *zipfS,
		Rate:       *rate,
		CancelFrac: *cancelFrac,
	}
	if *scanFrac > 0 {
		rec.ScanSpan = *scanSpan
	}
	if *cancelFrac > 0 {
		rec.Deadline = deadline.String()
	}
	if *policyList != "" {
		rec.Adapt = adaptEvery.String()
	}
	if *faultSpec != "" {
		rec.Fault = *faultSpec
		rec.FaultAfter = fAfter.String()
		rec.FaultFor = fFor.String()
		rec.FaultSample = faultSample.String()
		rec.FaultTarget = *faultTarget
	}

	fmt.Printf("%-8s %-12s %-10s %-10s %-12s %7s %10s %10s %7s %8s %8s %7s %7s %6s\n",
		"dist", "lock", "backend", "rpath", "policy", "stripes", "ops", "ops/sec", "miss%", "p50(us)", "p99(us)", "LWSS", "Gini", "swaps")
	for _, dist := range dists {
		for _, spec := range specs {
			for _, bspec := range backends {
				for _, rp := range rpaths {
					for _, pspec := range policies {
						for _, n := range stripeCounts {
							r := runCell(cellConfig{
								dist: dist, spec: spec, backend: bspec, stripes: n,
								readPath: rp,
								threads:  *threads, duration: *duration,
								keys: *keys, readFrac: *readFrac, zipfS: *zipfS,
								scanFrac: *scanFrac, scanSpan: *scanSpan,
								rate: *rate, cancelFrac: *cancelFrac, deadline: *deadline,
								policy: pspec, adaptEvery: *adaptEvery,
								fault: *faultSpec, faultAfter: fAfter, faultFor: fFor,
								faultSample: *faultSample, faultTarget: *faultTarget,
								seed: *seed,
							})
							rec.Results = append(rec.Results, r)
							if r.ScansRejected > 0 && r.Scans == 0 {
								// The relaxed -scan-frac validation (any
								// -policy) admitted a cell whose policy never
								// installed an ordered backend: keep the old
								// fail-fast's intent audible.
								fmt.Fprintf(os.Stderr, "shardbench: warning: %s/%s/%s/%s stripes=%d: all %d scans rejected — the policy never installed an ordered backend\n",
									r.Dist, r.Lock, r.Backend, r.Policy, r.Stripes, r.ScansRejected)
							}
							missCol := "-"
							if r.DeadlineAttempts > 0 {
								missCol = fmt.Sprintf("%.2f", 100*r.MissRate)
							}
							policyCol := r.Policy
							if policyCol == "" {
								policyCol = "-"
							}
							fmt.Printf("%-8s %-12s %-10s %-10s %-12s %7d %10d %10.0f %7s %8.1f %8.1f %7.1f %7.3f %6d\n",
								r.Dist, r.Lock, r.Backend, r.ReadPath, policyCol, r.Stripes, r.Ops, r.OpsPerSec, missCol,
								r.P50Micros, r.P99Micros, r.MeanLWSS, r.MeanGini, r.Swaps)
							if r.OptimisticHits > 0 || r.OptimisticFallbacks > 0 {
								fmt.Printf("  optimistic: hits=%d retries=%d fallbacks=%d hit-rate=%.4f lock-acquires=%d\n",
									r.OptimisticHits, r.OptimisticRetries, r.OptimisticFallbacks,
									r.OptimisticHitRate, r.Stats["acquires"])
							}
							if ch := r.Chaos; ch != nil {
								recov := "never"
								if ch.RecoveryMillis >= 0 {
									recov = fmt.Sprintf("%.0fms", ch.RecoveryMillis)
								}
								fmt.Printf("  chaos: miss%% pre=%.2f fault=%.2f post=%.2f  recovery=%s  stalls=%d stall-time=%.0fms reroutes=%d surge-peak=%d\n",
									100*ch.PreMissRate, 100*ch.FaultMissRate, 100*ch.PostMissRate,
									recov, ch.Stalls, ch.StallMillis, ch.Reroutes, ch.SurgePeak)
							}
						}
					}
				}
			}
		}
	}

	if *jsonPath != "" {
		if err := benchfmt.WriteJSON(*jsonPath, rec, *appendJSON); err != nil {
			fmt.Fprintf(os.Stderr, "shardbench: %v\n", err)
			os.Exit(1)
		}
	}
}

// printRegistries renders all four registries' canonical names with
// their Registration.Summary lines, uniformly: the four-registry design
// on one screen — pick your lock, pick your backend, pick the policy
// that re-picks both at runtime, pick the fault that tries to break all
// three.
func printRegistries(w *os.File) {
	section := func(title string, names []string, summary func(string) string) {
		fmt.Fprintln(w, title)
		for _, name := range names {
			fmt.Fprintf(w, "  %-11s %s\n", name, summary(name))
		}
	}
	section("locks (-lock; see lock.New for parameters):", lock.Names(), func(n string) string {
		reg, _ := lock.Lookup(n)
		return reg.Summary
	})
	section("backends (-backend; see store.New for parameters):", store.Names(), func(n string) string {
		reg, _ := store.Lookup(n)
		return reg.Summary
	})
	section("policies (-policy; see policy.New for parameters):", policy.Names(), func(n string) string {
		reg, _ := policy.Lookup(n)
		return reg.Summary
	})
	section("faults (-fault; see fault.New for parameters):", fault.Names(), func(n string) string {
		reg, _ := fault.Lookup(n)
		return reg.Summary
	})
}

type cellConfig struct {
	dist       string
	spec       string
	backend    string
	readPath   string // Get read path; "" = locked
	policy     string // adaptation policy spec; "" = no controller
	adaptEvery time.Duration
	stripes    int
	threads    int
	duration   time.Duration
	keys       int
	readFrac   float64
	zipfS      float64
	scanFrac   float64
	scanSpan   int
	rate       float64
	cancelFrac float64
	deadline   time.Duration
	seed       uint64

	// Chaos timeline; fault == "" disables it.
	fault       string
	faultAfter  time.Duration // Arm this long into the cell
	faultFor    time.Duration // Disarm this long after Arm
	faultSample time.Duration
	faultTarget float64
}

func runCell(c cellConfig) benchfmt.Result {
	// Per-stripe history cap scaled inversely with stripe count: admissions
	// spread across stripes, so this keeps total preallocated history
	// storage (which shard.New allocates up front to keep recording
	// allocation-free inside the critical section) at ~8 MB per cell while
	// still far exceeding any LWSS window.
	hcap := (1 << 20) / c.stripes
	if hcap < 1<<14 {
		hcap = 1 << 14
	}
	m := shard.MustNew(shard.Config{
		Stripes:     c.stripes,
		LockSpec:    c.spec,
		BackendSpec: c.backend,
		Seed:        c.seed,
		Capacity:    c.keys,
		HistoryCap:  hcap,
		ReadPath:    c.readPath,
	})
	// Preload the keyspace so Gets hit and Puts update in place; the
	// measured interval then exercises steady-state traffic, not growth.
	for k := 0; k < c.keys; k++ {
		m.Put(uint64(k), uint64(k))
	}
	// Baseline snapshot after the preload: the cell's reported counters
	// are the measured interval's delta (Snapshot.Sub), so the preload's
	// million-odd Puts no longer pollute the acquires/fast-path numbers.
	baseline := m.Snapshot()

	// With a policy, an adaptation controller runs for the whole
	// measured interval, live-reconfiguring stripes as its policy
	// directs; its swaps land in the swaps column.
	var ctrl *shard.Controller
	if c.policy != "" {
		ctrl = shard.StartController(context.Background(), m, policy.MustNew(c.policy), c.adaptEvery)
	}

	var stop atomic.Bool
	var ops, scans, rejected, attempts, misses atomic.Int64

	// With a fault spec, a fresh Set (fresh injection counters) is built
	// per cell and installed as the map's injector; the chaos supervisor
	// arms/disarms it on the timeline and does the phase accounting.
	var set *fault.Set
	var chaosCh chan *benchfmt.ChaosResult
	if c.fault != "" {
		set = fault.MustNew(c.fault)
		m.SetInjector(set)
		chaosCh = make(chan *benchfmt.ChaosResult, 1)
		go func() { chaosCh <- runChaos(c, m, set, &attempts, &misses, &stop) }()
	}
	// Per-worker latency logs, merged after the run: no shared state on
	// the measurement path.
	lats := make([][]int64, c.threads)
	var wg sync.WaitGroup
	perWorkerRate := c.rate / float64(c.threads)
	for g := 0; g < c.threads; g++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(c.seed)*1315423911 + int64(id)))
			var zipf *rand.Zipf
			if c.dist == "zipf" {
				zipf = rand.NewZipf(rng, c.zipfS, 1, uint64(c.keys-1))
			}
			pick := func() uint64 {
				if zipf != nil {
					return zipf.Uint64()
				}
				return uint64(rng.Intn(c.keys))
			}
			base := shard.WithClientID(context.Background(), id)
			log := make([]int64, 0, 1<<16)
			defer func() { lats[id] = log }()
			// Open loop: a Poisson schedule this worker must keep up with.
			next := time.Now()
			interval := func() time.Duration {
				if perWorkerRate <= 0 {
					return 0
				}
				return time.Duration(rng.ExpFloat64() / perWorkerRate * float64(time.Second))
			}
			for !stop.Load() {
				arrival := time.Now()
				if perWorkerRate > 0 {
					next = next.Add(interval())
					arrival = next
					if !sleepUntil(next, &stop) {
						return
					}
				}
				key := pick()
				if set != nil {
					// Skew storm: an active hotkey fault funnels this
					// request to its key (identity while inactive).
					key = set.Key(key)
				}
				scan := c.scanFrac > 0 && rng.Float64() < c.scanFrac
				read := rng.Float64() < c.readFrac
				issue := func(ctx context.Context) error {
					switch {
					case scan:
						hi := key + uint64(c.scanSpan) - 1
						return m.ScanContext(ctx, key, hi, func(_, _ uint64) bool { return true })
					case read:
						_, _, err := m.GetContext(ctx, key)
						return err
					default:
						_, err := m.PutContext(ctx, key, uint64(id))
						return err
					}
				}
				var err error
				deadlined := c.cancelFrac > 0 && rng.Float64() < c.cancelFrac
				if deadlined {
					// Deadline measured from scheduled arrival: a worker
					// behind schedule starts with the budget already burnt.
					ctx, cancel := context.WithDeadline(base, arrival.Add(c.deadline))
					attempts.Add(1)
					err = issue(ctx)
					cancel()
				} else {
					err = issue(base)
				}
				if err != nil {
					if scan && errors.Is(err, shard.ErrUnordered) {
						// Under a -policy, a scan can race a stripe whose
						// backend is (still, or again) unordered; the
						// rejected demand is the scanaware policy's input
						// signal, not a failure — count it separately and
						// do not charge the deadline-miss column.
						rejected.Add(1)
						if deadlined {
							attempts.Add(-1)
						}
						continue
					}
					if deadlined {
						misses.Add(1)
						continue
					}
					panic(err) // uncancellable point ops cannot fail
				}
				log = append(log, int64(time.Since(arrival)))
				if scan {
					scans.Add(1)
				}
				ops.Add(1)
			}
		}(g)
	}
	time.Sleep(c.duration)
	stop.Store(true)
	wg.Wait()
	if ctrl != nil {
		ctrl.Stop()
	}

	// Collect the chaos report first: the supervisor drains its surge
	// workers on exit, so the closing snapshot sees a quiesced map.
	var chaos *benchfmt.ChaosResult
	if chaosCh != nil {
		chaos = <-chaosCh
	}
	snap := m.Snapshot()
	delta := snap.Sub(baseline)
	r := benchfmt.Result{
		Dist:          c.dist,
		Lock:          c.spec,
		Backend:       c.backend,
		ReadPath:      m.ReadPath(), // canonical form: "locked" for the "" default
		Policy:        c.policy,
		Stripes:       m.Stripes(),
		Threads:       c.threads,
		Duration:      c.duration.Seconds(),
		Ops:           int(ops.Load()),
		OpsPerSec:     float64(ops.Load()) / c.duration.Seconds(),
		Scans:         int(scans.Load()),
		ScansRejected: int(rejected.Load()),
		Swaps:         int(delta.Swaps),
		Chaos:         chaos,
	}
	var merged []int64
	for _, log := range lats {
		merged = append(merged, log...)
	}
	r.P50Micros = benchfmt.PercentileMicros(merged, 0.50)
	r.P99Micros = benchfmt.PercentileMicros(merged, 0.99)
	// Optimistic read-path outcomes for the measured interval. Read with
	// Stats["acquires"]: on a read-heavy cell, hits ≈ Gets and acquires ≈
	// writes is the zero-lock-read acceptance claim in one row.
	r.OptimisticHits = int(delta.OptimisticHits)
	r.OptimisticRetries = int(delta.OptimisticRetries)
	r.OptimisticFallbacks = int(delta.OptimisticFallbacks)
	r.OptimisticHitRate = benchfmt.Rate(r.OptimisticHits, r.OptimisticHits+r.OptimisticFallbacks)
	r.OptimisticFallbackRate = benchfmt.Rate(r.OptimisticFallbacks, r.OptimisticHits+r.OptimisticFallbacks)
	if n := attempts.Load(); n > 0 {
		// Guarded: the rate is computed only from a nonzero attempt count,
		// so the JSON can never carry a NaN (encoding/json rejects them).
		r.DeadlineAttempts = int(n)
		r.DeadlineMisses = int(misses.Load())
		r.MissRate = float64(misses.Load()) / float64(n)
	}
	active := 0
	for _, s := range snap.Stripes {
		if s.Fairness.Admissions == 0 {
			continue
		}
		active++
		r.MeanLWSS += s.Fairness.AvgLWSS
		r.MeanGini += s.Fairness.Gini
		if s.Fairness.AvgLWSS > r.MaxLWSS {
			r.MaxLWSS = s.Fairness.AvgLWSS
		}
		if s.Fairness.Gini > r.MaxGini {
			r.MaxGini = s.Fairness.Gini
		}
	}
	if active > 0 {
		r.MeanLWSS /= float64(active)
		r.MeanGini /= float64(active)
	}
	// CR event counters for the measured interval only (the delta over
	// the post-preload baseline).
	r.Stats = map[string]uint64{
		"acquires":     delta.Lock.Acquires,
		"handoffs":     delta.Lock.Handoffs,
		"culls":        delta.Lock.Culls,
		"reprovisions": delta.Lock.Reprovisions,
		"promotions":   delta.Lock.Promotions,
		"parks":        delta.Lock.Parks,
		"unparks":      delta.Lock.Unparks,
		"fast_path":    delta.Lock.FastPath,
		"slow_path":    delta.Lock.SlowPath,
		"cancels":      delta.Lock.Cancels,
		"abandons":     delta.Lock.Abandons,
	}
	return r
}

// runChaos drives one cell's scripted fault timeline and does its
// accounting. It arms the set c.faultAfter into the cell and disarms it
// c.faultFor later; samples the workers' deadline counters every
// c.faultSample to split the traffic into pre/fault/post phases and to
// detect recovery (the first three consecutive samples whose trailing
// miss rate held at or below c.faultTarget, clocked from Arm); and runs
// the surge pool — while a surge fault is active, ExtraThreads() patient
// (deadline-free) hammerers run on top of the measured workers, which is
// the paper's overthreading collapse injected on demand. The sampler
// reads the workers' own atomic counters, never a map snapshot: a
// monitor acquiring a stormed stripe's lock is exactly the kind of
// patient arrival a culling lock passivates, and the measurement must
// not stall behind the convoy it is measuring. Returns when the cell
// stops, with every surge worker drained.
//
//lockcheck:nosnapshot
func runChaos(c cellConfig, m *shard.Map, set *fault.Set, attempts, misses *atomic.Int64, stop *atomic.Bool) *benchfmt.ChaosResult {
	cr := &benchfmt.ChaosResult{Fault: set.String(), RecoveryMillis: -1}
	var surge []chan struct{}
	var surgeWg sync.WaitGroup
	spawn := func(id int) {
		quit := make(chan struct{})
		surge = append(surge, quit)
		surgeWg.Add(1)
		go func() {
			defer surgeWg.Done()
			rng := rand.New(rand.NewSource(int64(c.seed)*2654435761 + int64(id) + 1))
			for !stop.Load() {
				select {
				case <-quit:
					return
				default:
				}
				m.Put(set.Key(uint64(rng.Intn(c.keys))), uint64(id))
			}
		}()
	}
	resize := func(want int) {
		for len(surge) < want {
			spawn(len(surge))
		}
		for len(surge) > want {
			close(surge[len(surge)-1])
			surge = surge[:len(surge)-1]
		}
	}
	defer surgeWg.Wait()
	defer func() { resize(0) }()

	start := time.Now()
	tick := time.NewTicker(c.faultSample)
	defer tick.Stop()

	const pre, storming, post = 0, 1, 2
	phase := pre
	var phaseA, phaseM int64
	endPhase := func() (int, int) {
		a, mi := attempts.Load(), misses.Load()
		dA, dM := int(a-phaseA), int(mi-phaseM)
		phaseA, phaseM = a, mi
		return dA, dM
	}
	var armedAt, runStart time.Time
	var lastA, lastM int64
	consec := 0
	for !stop.Load() {
		<-tick.C
		now := time.Now()
		if phase == pre && now.Sub(start) >= c.faultAfter {
			cr.PreAttempts, cr.PreMisses = endPhase()
			set.Arm()
			armedAt = now
			phase = storming
			lastA, lastM = attempts.Load(), misses.Load()
			continue
		}
		if phase == storming && now.Sub(armedAt) >= c.faultFor {
			cr.FaultAttempts, cr.FaultMisses = endPhase()
			set.Disarm()
			resize(0)
			phase = post
		}
		if phase == pre {
			continue
		}
		if phase == storming {
			resize(set.ExtraThreads())
		}
		a, mi := attempts.Load(), misses.Load()
		dA, dM := a-lastA, mi-lastM
		lastA, lastM = a, mi
		if cr.RecoveryMillis >= 0 || dA == 0 {
			continue // recovered already, or no deadline evidence this sample
		}
		if float64(dM)/float64(dA) <= c.faultTarget {
			if consec == 0 {
				runStart = now
			}
			if consec++; consec >= 3 {
				cr.RecoveryMillis = float64(runStart.Sub(armedAt).Milliseconds())
			}
		} else {
			consec = 0
		}
	}
	// Close out whatever phase the cell ended in (a timeline validated in
	// main always reaches post, but the accounting holds regardless).
	switch phase {
	case pre:
		cr.PreAttempts, cr.PreMisses = endPhase()
	case storming:
		cr.FaultAttempts, cr.FaultMisses = endPhase()
		set.Disarm()
	case post:
		cr.PostAttempts, cr.PostMisses = endPhase()
	}
	rate := func(misses, attempts int) float64 {
		if attempts == 0 {
			return 0
		}
		return float64(misses) / float64(attempts)
	}
	cr.PreMissRate = rate(cr.PreMisses, cr.PreAttempts)
	cr.FaultMissRate = rate(cr.FaultMisses, cr.FaultAttempts)
	cr.PostMissRate = rate(cr.PostMisses, cr.PostAttempts)
	st := set.Stats()
	cr.Stalls = st.Stalls
	cr.StallMillis = float64(st.StallTime) / float64(time.Millisecond)
	cr.Reroutes = st.Reroutes
	cr.SurgePeak = st.SurgePeak
	return cr
}

// sleepUntil sleeps toward t in short slices, abandoning the wait when
// stop is set. It reports whether the caller should proceed (false =
// stopped). Sliced sleeping keeps a low-rate worker from sleeping through
// the end of the cell: an exponential-tail inter-arrival would otherwise
// run one op past the measured window (inflating OpsPerSec exactly where
// each op matters most) and stall cell teardown until the worker wakes.
func sleepUntil(t time.Time, stop *atomic.Bool) bool {
	const slice = 5 * time.Millisecond
	for {
		if stop.Load() {
			return false
		}
		d := time.Until(t)
		if d <= 0 {
			return true
		}
		if d > slice {
			d = slice
		}
		time.Sleep(d)
	}
}

func splitList(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if part = strings.TrimSpace(part); part != "" {
			out = append(out, part)
		}
	}
	return out
}

func parseInts(s string) ([]int, error) {
	var out []int
	for _, part := range splitList(s) {
		n, err := strconv.Atoi(part)
		if err != nil || n < 1 {
			return nil, fmt.Errorf("bad stripe count %q", part)
		}
		out = append(out, n)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty list")
	}
	return out, nil
}
