// Command shardload is the open-loop remote load generator for shardd:
// Poisson arrivals, zipf or uniform key popularity, a read/write/scan
// mix, per-request deadline distribution with request classes, and
// connection churn — the arrival process the paper's admission story
// needs, generated from outside the server's process so every deadline
// crosses the wire before it reaches a stripe lock.
//
// Open loop means arrivals are scheduled by the rate, not by the
// server's responses: a request that finds the server slow still counts
// its latency from its scheduled arrival time, so queueing delay the
// server causes is charged to the server (no coordinated omission).
// With -rate 0 the generator degrades to a closed loop: each connection
// issues as fast as its responses return.
//
// Cells land in the same benchfmt JSON schema as cmd/shardbench
// (-json/-append), so BENCH_shard.json stays one comparable series
// whether a cell was driven in-process or over the wire. With -fault,
// the generator arms the spec on the server over the FAULT verb at
// -fault-after, disarms it -fault-for later, and reports the same
// chaos phase accounting shardbench reports — the PR 6 chaos timeline,
// end-to-end over the network.
//
// Quickstart against a local shardd:
//
//	shardd -addr 127.0.0.1:7070 -metrics-addr 127.0.0.1:7071 -policy slo &
//	shardload -addr 127.0.0.1:7070 -conns 8 -rate 20000 -duration 10s \
//	    -deadline 2ms -deadline-frac 0.5 -classes 2 -json BENCH_shard.json -append
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/benchfmt"
	"repro/shard"
	"repro/wire"
)

type config struct {
	addr     string
	conns    int
	duration time.Duration
	rate     float64 // total target ops/sec across all connections; 0 = closed loop
	readFrac float64
	scanFrac float64
	scanSpan int
	keys     int
	dist     string
	zipfS    float64
	deadline time.Duration
	dlFrac   float64
	classes  int
	churn    time.Duration
	seed     uint64

	fault       string
	faultAfter  time.Duration
	faultFor    time.Duration
	faultSample time.Duration
	faultTarget float64
}

// counters is the workers' shared accounting; the chaos supervisor
// samples it the same way shardbench's samples its in-process twins.
type counters struct {
	ops      atomic.Int64
	scans    atomic.Int64
	rejected atomic.Int64
	attempts atomic.Int64 // requests sent carrying a deadline
	misses   atomic.Int64 // StatusDeadline replies
	ioErrs   atomic.Int64 // reconnects forced by I/O errors
}

func main() {
	var c config
	flag.StringVar(&c.addr, "addr", "127.0.0.1:7070", "shardd wire address")
	flag.IntVar(&c.conns, "conns", 4, "concurrent connections")
	flag.DurationVar(&c.duration, "duration", 5*time.Second, "measured run length")
	flag.Float64Var(&c.rate, "rate", 0, "total target ops/sec, Poisson arrivals split across connections (0 = closed loop)")
	flag.Float64Var(&c.readFrac, "read-frac", 0.9, "fraction of point ops that are GETs (rest are PUTs)")
	flag.Float64Var(&c.scanFrac, "scan-frac", 0, "fraction of requests that are SCANs (requires an ordered backend on the server)")
	flag.IntVar(&c.scanSpan, "scan-span", 100, "key span of each SCAN")
	flag.IntVar(&c.keys, "keys", 1<<16, "key space size")
	flag.StringVar(&c.dist, "dist", "zipf", "key popularity: zipf or uniform")
	flag.Float64Var(&c.zipfS, "zipf-s", 1.2, "zipf skew (must be > 1 for -dist zipf)")
	flag.DurationVar(&c.deadline, "deadline", 0, "base per-request deadline; each deadlined request draws uniformly from [0.5d, 1.5d] (0 = no deadlines)")
	flag.Float64Var(&c.dlFrac, "deadline-frac", 1.0, "fraction of requests that carry a deadline (with -deadline)")
	flag.IntVar(&c.classes, "classes", 1, "spread deadlined requests across request classes 1..n (patient traffic stays class 0)")
	flag.DurationVar(&c.churn, "churn", 0, "per-connection reconnect cadence (0 = stable connections)")
	flag.Uint64Var(&c.seed, "seed", 1, "workload RNG seed")
	flag.StringVar(&c.fault, "fault", "", "fault set spec to arm on the server over the wire (see fault.New; empty = no chaos)")
	flag.DurationVar(&c.faultAfter, "fault-after", time.Second, "warmup before arming -fault")
	flag.DurationVar(&c.faultFor, "fault-for", 2*time.Second, "how long -fault stays armed")
	flag.DurationVar(&c.faultSample, "fault-sample", 100*time.Millisecond, "chaos miss-rate sample cadence")
	flag.Float64Var(&c.faultTarget, "fault-target", 0.05, "miss rate at or below which the cell counts as recovered")
	jsonPath := flag.String("json", "", "write the benchfmt record to this path")
	appendJSON := flag.Bool("append", false, "append the record to -json as a JSON array instead of overwriting")
	flag.Parse()

	if c.conns <= 0 || c.keys <= 0 || c.duration <= 0 {
		fatalf("need -conns, -keys, -duration > 0")
	}
	if c.classes < 1 || c.classes > shard.NumClasses-1 {
		fatalf("-classes must be in [1, %d]", shard.NumClasses-1)
	}
	if c.dist != "zipf" && c.dist != "uniform" {
		fatalf("-dist must be zipf or uniform")
	}
	if c.dist == "zipf" && c.zipfS <= 1 {
		// rand.NewZipf returns nil for s <= 1; fall back explicitly
		// rather than silently serving uniform keys under a zipf label.
		fatalf("-zipf-s must be > 1 (got %g); use -dist uniform for flat popularity", c.zipfS)
	}
	if c.fault != "" && c.faultAfter+c.faultFor >= c.duration {
		fatalf("-fault timeline (%v + %v) must fit inside -duration %v with room to recover",
			c.faultAfter, c.faultFor, c.duration)
	}

	// One admin connection up front: fail fast if the server is absent,
	// and capture its INFO identity for the record.
	admin, err := wire.Dial(c.addr)
	if err != nil {
		fatalf("dial %s: %v", c.addr, err)
	}
	defer admin.Close()
	if err := admin.Ping(); err != nil {
		fatalf("ping: %v", err)
	}
	infoText, err := admin.Info()
	if err != nil {
		fatalf("info: %v", err)
	}
	info := parseKV(infoText)
	// The pre-run INFO doubles as the optimistic counter baseline: the
	// server's opt_* lines are cumulative, so the cell's numbers are the
	// end-minus-start delta — the same interval accounting shardbench
	// gets from a snapshot delta, read over the wire.
	startInfo := info

	var cnt counters
	var stop atomic.Bool
	lats := make([][]int64, c.conns)
	var wg sync.WaitGroup
	for i := 0; i < c.conns; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			lats[id] = runWorker(c, id, &cnt, &stop)
		}(i)
	}

	var chaosCh chan *benchfmt.ChaosResult
	if c.fault != "" {
		chaosCh = make(chan *benchfmt.ChaosResult, 1)
		go func() { chaosCh <- runChaos(c, admin, &cnt, &stop) }()
	}

	start := time.Now()
	time.Sleep(c.duration)
	stop.Store(true)
	wg.Wait()
	elapsed := time.Since(start)

	var chaos *benchfmt.ChaosResult
	if chaosCh != nil {
		chaos = <-chaosCh
	}
	// INFO again after the run: swaps and live specs reflect anything
	// the server's controller did while we were storming it.
	if txt, err := admin.Info(); err == nil {
		info = parseKV(txt)
	}

	r := benchfmt.Result{
		Dist:          c.dist,
		Lock:          info["lock"],
		Backend:       info["backend"],
		ReadPath:      info["read_path"],
		Policy:        info["policy"],
		Stripes:       atoi(info["stripes"]),
		Threads:       c.conns,
		Duration:      elapsed.Seconds(),
		Ops:           int(cnt.ops.Load()),
		OpsPerSec:     float64(cnt.ops.Load()) / elapsed.Seconds(),
		Scans:         int(cnt.scans.Load()),
		ScansRejected: int(cnt.rejected.Load()),
		Swaps:         atoi(info["swaps"]),
		Chaos:         chaos,
	}
	var merged []int64
	for _, l := range lats {
		merged = append(merged, l...)
	}
	r.P50Micros = benchfmt.PercentileMicros(merged, 0.50)
	r.P99Micros = benchfmt.PercentileMicros(merged, 0.99)
	if n := cnt.attempts.Load(); n > 0 {
		r.DeadlineAttempts = int(n)
		r.DeadlineMisses = int(cnt.misses.Load())
		r.MissRate = benchfmt.Rate(r.DeadlineMisses, r.DeadlineAttempts)
	}
	// Optimistic outcomes for the run: end-minus-start INFO counters
	// (clamped at zero in case the map was reconfigured under us).
	sub := func(key string) int {
		if d := atoi(info[key]) - atoi(startInfo[key]); d > 0 {
			return d
		}
		return 0
	}
	r.OptimisticHits = sub("opt_hits")
	r.OptimisticRetries = sub("opt_retries")
	r.OptimisticFallbacks = sub("opt_fallbacks")
	r.OptimisticHitRate = benchfmt.Rate(r.OptimisticHits, r.OptimisticHits+r.OptimisticFallbacks)
	r.OptimisticFallbackRate = benchfmt.Rate(r.OptimisticFallbacks, r.OptimisticHits+r.OptimisticFallbacks)

	rec := benchfmt.Record{
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		GoVersion:  runtime.Version(),
		Keys:       c.keys,
		ReadFrac:   c.readFrac,
		ScanFrac:   c.scanFrac,
		ZipfS:      c.zipfS,
		Rate:       c.rate,
		Remote: &benchfmt.Remote{
			Addr:      c.addr,
			ConnModel: info["conn_model"],
			Conns:     c.conns,
			Churn:     c.churn.String(),
		},
		Results: []benchfmt.Result{r},
	}
	if c.scanFrac > 0 {
		rec.ScanSpan = c.scanSpan
	}
	if c.deadline > 0 {
		rec.Deadline = c.deadline.String()
	}
	if c.fault != "" {
		rec.Fault = c.fault
		rec.FaultAfter = c.faultAfter.String()
		rec.FaultFor = c.faultFor.String()
		rec.FaultSample = c.faultSample.String()
		rec.FaultTarget = c.faultTarget
	}

	printSummary(r, &cnt)
	if *jsonPath != "" {
		if err := benchfmt.WriteJSON(*jsonPath, rec, *appendJSON); err != nil {
			fatalf("%v", err)
		}
	}
}

// runWorker drives one connection until stop: Poisson-scheduled
// arrivals at rate/conns, synchronous request/response (responses keep
// the wire's in-order contract, so one in flight per connection), churn
// reconnects, and per-op latency measured from the scheduled arrival.
func runWorker(c config, id int, cnt *counters, stop *atomic.Bool) []int64 {
	rng := rand.New(rand.NewSource(int64(c.seed)*1315423911 + int64(id)))
	var zipf *rand.Zipf
	if c.dist == "zipf" {
		zipf = rand.NewZipf(rng, c.zipfS, 1, uint64(c.keys-1))
	}
	key := func() uint64 {
		if zipf != nil {
			return zipf.Uint64()
		}
		return uint64(rng.Intn(c.keys))
	}

	cl, err := wire.Dial(c.addr)
	if err != nil {
		cnt.ioErrs.Add(1)
		return nil
	}
	connectedAt := time.Now()
	reconnect := func() bool {
		cl.Close()
		if stop.Load() {
			return false
		}
		nc, err := wire.Dial(c.addr)
		if err != nil {
			cnt.ioErrs.Add(1)
			return false
		}
		cl = nc
		connectedAt = time.Now()
		return true
	}
	defer func() { cl.Close() }()

	perConnRate := c.rate / float64(c.conns)
	next := time.Now()
	lats := make([]int64, 0, 1<<14)
	seq := 0
	for !stop.Load() {
		if perConnRate > 0 {
			// Exponential inter-arrival: the open-loop Poisson schedule.
			next = next.Add(time.Duration(rng.ExpFloat64() / perConnRate * float64(time.Second)))
			if !sleepUntil(next, stop) {
				break
			}
		} else {
			next = time.Now()
		}
		if c.churn > 0 && time.Since(connectedAt) >= c.churn {
			if !reconnect() {
				break
			}
		}

		var deadline time.Time
		if c.deadline > 0 && rng.Float64() < c.dlFrac {
			d := time.Duration((0.5 + rng.Float64()) * float64(c.deadline))
			deadline = time.Now().Add(d)
			cl.Class = uint8(1 + seq%c.classes)
			cnt.attempts.Add(1)
		} else {
			cl.Class = 0
		}
		seq++

		var err error
		switch p := rng.Float64(); {
		case c.scanFrac > 0 && p < c.scanFrac:
			lo := key()
			_, err = cl.Scan(lo, lo+uint64(c.scanSpan), 0, deadline, func(k, v uint64) bool { return true })
			cnt.scans.Add(1)
			if isStatus(err, wire.ErrUnordered) {
				cnt.rejected.Add(1)
				err = nil
			}
		case rng.Float64() < c.readFrac:
			_, _, err = cl.Get(key(), deadline)
		default:
			_, err = cl.Put(key(), uint64(id)<<32|uint64(seq), deadline)
		}

		switch {
		case err == nil:
		case isStatus(err, wire.ErrDeadline):
			cnt.misses.Add(1)
		case isStatus(err, wire.ErrDraining):
			return lats
		default:
			// I/O failure (or a protocol error): this connection is dead.
			// Reconnect and keep the schedule — an open-loop generator
			// does not stop arriving because one socket broke.
			if !reconnect() {
				return lats
			}
			continue
		}
		cnt.ops.Add(1)
		lats = append(lats, time.Since(next).Nanoseconds())
	}
	return lats
}

// runChaos mirrors shardbench's chaos supervisor over the wire: arm the
// fault set on the server after the warmup, sample the generator-side
// miss rate, disarm, and measure time-to-recovery from fault onset. The
// injected-fault evidence comes back over the FAULT stats verb.
func runChaos(c config, admin *wire.Client, cnt *counters, stop *atomic.Bool) *benchfmt.ChaosResult {
	cr := &benchfmt.ChaosResult{Fault: c.fault, RecoveryMillis: -1}
	start := time.Now()
	tick := time.NewTicker(c.faultSample)
	defer tick.Stop()

	const pre, storming, post = 0, 1, 2
	phase := pre
	var phaseA, phaseM int64
	endPhase := func() (int, int) {
		a, mi := cnt.attempts.Load(), cnt.misses.Load()
		dA, dM := int(a-phaseA), int(mi-phaseM)
		phaseA, phaseM = a, mi
		return dA, dM
	}
	var armedAt, runStart time.Time
	var lastA, lastM int64
	consec := 0
	for !stop.Load() {
		<-tick.C
		now := time.Now()
		if phase == pre && now.Sub(start) >= c.faultAfter {
			cr.PreAttempts, cr.PreMisses = endPhase()
			if err := admin.FaultArm(c.fault); err != nil {
				fatalf("fault arm: %v", err)
			}
			armedAt = now
			phase = storming
			lastA, lastM = cnt.attempts.Load(), cnt.misses.Load()
			continue
		}
		if phase == storming && now.Sub(armedAt) >= c.faultFor {
			cr.FaultAttempts, cr.FaultMisses = endPhase()
			if err := admin.FaultDisarm(); err != nil {
				fatalf("fault disarm: %v", err)
			}
			phase = post
		}
		if phase == pre {
			continue
		}
		a, mi := cnt.attempts.Load(), cnt.misses.Load()
		dA, dM := a-lastA, mi-lastM
		lastA, lastM = a, mi
		if cr.RecoveryMillis >= 0 || dA == 0 {
			continue // recovered already, or no deadline evidence this sample
		}
		if float64(dM)/float64(dA) <= c.faultTarget {
			if consec == 0 {
				runStart = now
			}
			if consec++; consec >= 3 {
				cr.RecoveryMillis = float64(runStart.Sub(armedAt).Milliseconds())
			}
		} else {
			consec = 0
		}
	}
	switch phase {
	case pre:
		cr.PreAttempts, cr.PreMisses = endPhase()
	case storming:
		cr.FaultAttempts, cr.FaultMisses = endPhase()
		admin.FaultDisarm() //nolint:errcheck // already tearing down
	case post:
		cr.PostAttempts, cr.PostMisses = endPhase()
	}
	cr.PreMissRate = benchfmt.Rate(cr.PreMisses, cr.PreAttempts)
	cr.FaultMissRate = benchfmt.Rate(cr.FaultMisses, cr.FaultAttempts)
	cr.PostMissRate = benchfmt.Rate(cr.PostMisses, cr.PostAttempts)
	if txt, err := admin.FaultStats(); err == nil {
		st := parseKV(txt)
		cr.Stalls = uint64(atoi(st["stalls"]))
		cr.StallMillis = float64(atoi(st["stall_ms"]))
		cr.Reroutes = uint64(atoi(st["reroutes"]))
		cr.SurgePeak = atoi(st["surge_peak"])
	}
	return cr
}

// sleepUntil sleeps toward t in short slices, abandoning the wait when
// stop is set (same shape as shardbench's: a long exponential tail must
// not outlive the cell).
func sleepUntil(t time.Time, stop *atomic.Bool) bool {
	const slice = 5 * time.Millisecond
	for {
		if stop.Load() {
			return false
		}
		d := time.Until(t)
		if d <= 0 {
			return true
		}
		if d > slice {
			d = slice
		}
		time.Sleep(d)
	}
}

func isStatus(err error, sentinel *wire.StatusError) bool {
	if err == nil {
		return false
	}
	se, ok := err.(*wire.StatusError)
	return ok && se.Status == sentinel.Status
}

// parseKV parses "key=value" lines (INFO, FAULT stats).
func parseKV(text string) map[string]string {
	out := make(map[string]string)
	for _, line := range strings.Split(text, "\n") {
		if k, v, ok := strings.Cut(strings.TrimSpace(line), "="); ok {
			out[k] = v
		}
	}
	return out
}

func atoi(s string) int {
	n, _ := strconv.Atoi(s)
	return n
}

func printSummary(r benchfmt.Result, cnt *counters) {
	fmt.Printf("shardload: %d ops (%.0f/s), p50 %.0fus p99 %.0fus", r.Ops, r.OpsPerSec, r.P50Micros, r.P99Micros)
	if r.DeadlineAttempts > 0 {
		fmt.Printf(", deadline %d/%d missed (%.2f%%)", r.DeadlineMisses, r.DeadlineAttempts, 100*r.MissRate)
	}
	if n := cnt.ioErrs.Load(); n > 0 {
		fmt.Printf(", %d reconnect errors", n)
	}
	fmt.Println()
	if r.OptimisticHits > 0 || r.OptimisticFallbacks > 0 {
		fmt.Printf("shardload: optimistic (%s) hits %d retries %d fallbacks %d (hit rate %.4f)\n",
			r.ReadPath, r.OptimisticHits, r.OptimisticRetries, r.OptimisticFallbacks, r.OptimisticHitRate)
	}
	if ch := r.Chaos; ch != nil {
		rec := "never"
		if ch.RecoveryMillis >= 0 {
			rec = fmt.Sprintf("%.0fms", ch.RecoveryMillis)
		}
		fmt.Printf("shardload: chaos %s — miss rate pre %.2f%% fault %.2f%% post %.2f%%, recovery %s, stalls %d (%.0fms injected)\n",
			ch.Fault, 100*ch.PreMissRate, 100*ch.FaultMissRate, 100*ch.PostMissRate, rec, ch.Stalls, ch.StallMillis)
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "shardload: "+format+"\n", args...)
	os.Exit(2)
}
