package lock

import (
	"context"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/pad"
	"repro/internal/park"
)

// DefaultPatience is the number of failed acquisition attempts after which
// the LOITER standby thread declares itself impatient and requests direct
// handoff (Appendix A.1: "we impose long-term fairness by detecting that
// the standby thread has waited too long").
const DefaultPatience = 64

// DefaultArrivalSpins is the bounded fast-path arrival spin: how many
// acquisition attempts (with randomized backoff between them) an arriving
// thread makes on the outer lock before reverting to the slow path.
const DefaultArrivalSpins = 32

// WithPatience sets the standby impatience threshold in failed attempts.
func WithPatience(n int) Option {
	return func(c *config) {
		if n < 1 {
			n = 1
		}
		c.patience = n
	}
}

// WithArrivalSpins sets the bounded arrival-phase attempt count.
func WithArrivalSpins(n int) Option {
	return func(c *config) {
		if n < 1 {
			n = 1
		}
		c.arrivalSpins = n
	}
}

// Standby states. The three-way CAS race between the unlock path's direct
// handoff (waiting→granted) and the standby's cancellation
// (waiting→cancelled) is what makes LOITER cancellation safe: exactly one
// wins, so ownership is either conveyed to a standby that will take it, or
// the unlock path observes the resignation and releases the outer word
// normally.
const (
	sbWaiting uint32 = iota
	sbGranted
	sbCancelled
)

// loiterStandby is the record the standby thread publishes so the unlock
// path can wake it (heir presumptive) or grant it the lock directly.
type loiterStandby struct {
	parker    *park.Parker
	state     atomic.Uint32 // sbWaiting / sbGranted / sbCancelled
	impatient atomic.Bool
}

// LOITER ("Locking: Outer-Inner with ThRottling", Appendix A.1) is a
// composite lock: an outer test-and-set lock acquired by a bounded barging
// fast path, and an inner MCS lock forming the slow path. The single
// thread holding the inner lock — the standby — contends for the outer
// lock on behalf of the slow path; everything queued behind it on the
// inner lock is the passive set.
//
// The ACS is the owner, the circulating threads, and the arriving
// fast-path spinners; the standby is "on the cusp", transitional between
// the sets. The composite retains competitive succession (low handover
// latency, preemption tolerance) for the common path while the inner lock
// throttles the flow of threads from the PS into the ACS. An impatient
// standby — one that has failed too many acquisition attempts — receives
// the lock by direct handoff at the next unlock, bounding starvation.
//
// This is the paper's 3-stage waiting policy: spin globally; then enqueue
// and spin locally; then park.
type LOITER struct {
	// outer is the barging-spun lock word; it owns its cache line so the
	// fast-path CAS storm does not invalidate the standby pointer or the
	// holder-only fields.
	//
	//lockcheck:lockword
	outer atomic.Uint32 // 0 free, 1 held
	_     [pad.CacheLineSize - 4]byte

	// standby is written on every slow-path entry/exit and read on every
	// unlock; it gets its own line too.
	standby atomic.Pointer[loiterStandby]
	_       [pad.CacheLineSize - 8]byte

	// inner is the slow-path queue. The standby acquires outer while
	// holding it, the one deliberate lock nesting in this package:
	//
	//lockcheck:lockorder lock.LOITER.inner<lock.LOITER.outer
	inner *MCS
	// slowOwner records whether the current owner came via the slow path
	// and therefore also holds the inner lock. Lock-protected.
	//
	//lockcheck:guardedby outer
	slowOwner bool
	cfg       config
	stats     *core.Stats
}

func init() {
	Register(Registration{
		Name:    "loiter",
		Summary: "LOITER composite lock (App. A.1): outer TAS fast path, inner MCS passive set, standby bridge",
		Build:   func(opts ...Option) Mutex { return NewLOITER(opts...) },
	})
}

// NewLOITER returns an unlocked LOITER lock. The waiting-policy option
// applies to both the inner MCS queue and the standby's wait.
func NewLOITER(opts ...Option) *LOITER {
	cfg := buildConfig(opts)
	return &LOITER{
		inner: NewMCS(
			WithWaitPolicy(cfg.wait),
			WithSpinBudget(cfg.policy.SpinBudget),
			WithStats(!cfg.noStats),
		),
		cfg:   cfg,
		stats: cfg.newStats(),
	}
}

// Lock acquires the lock: bounded barging on the outer lock first, then
// the inner-lock slow path.
//
//lockcheck:acquires l
func (l *LOITER) Lock() {
	if l.outer.CompareAndSwap(0, 1) {
		l.slowOwner = false
		l.stats.Inc2(core.EvFastPath, core.EvAcquires)
		return
	}
	l.lockSlow(nil)
}

// LockContext is Lock with cancellation at every stage: the barging
// arrival phase polls ctx between attempts, the inner-queue wait uses the
// MCS cancellation protocol, and a standby whose ctx expires resigns —
// atomically, against the unlock path's direct handoff — and releases the
// inner lock so the next slow-path waiter is elevated in its place.
//
//lockcheck:acquires l
func (l *LOITER) LockContext(ctx context.Context) error {
	if ctx.Done() == nil {
		l.Lock()
		return nil
	}
	if err := ctx.Err(); err != nil {
		l.stats.Inc(core.EvCancels)
		return err
	}
	if l.outer.CompareAndSwap(0, 1) {
		l.slowOwner = false
		l.stats.Inc2(core.EvFastPath, core.EvAcquires)
		return nil
	}
	return l.lockSlow(ctx)
}

// TryLockFor is TryLock with a patience bound, built on LockContext.
func (l *LOITER) TryLockFor(d time.Duration) bool { return tryLockFor(l, d) }

// lockSlow is the contended path: arrival-phase barging, then the inner
// queue, then standby duty. A nil ctx waits indefinitely. On success the
// caller owns the outer word and, if it came through standby duty, the
// inner lock too — released at Unlock.
//
//lockcheck:acquires l
func (l *LOITER) lockSlow(ctx context.Context) error {
	// Fast path: arrival phase with bounded global spinning and
	// randomized backoff.
	b := newBackoff(nextSeed())
	for a := 1; a < l.cfg.arrivalSpins; a++ {
		for i := 0; l.outer.Load() != 0 && i < maxBackoff; i++ {
			politePause(i)
		}
		if l.outer.CompareAndSwap(0, 1) {
			l.slowOwner = false
			l.stats.Inc2(core.EvFastPath, core.EvAcquires)
			return nil
		}
		if ctx != nil {
			if err := ctx.Err(); err != nil {
				l.stats.Inc(core.EvCancels)
				return err
			}
		}
		b.pause()
	}

	// Slow path: acquire the inner lock and become the standby thread.
	if ctx == nil {
		l.inner.Lock()
	} else if err := l.inner.LockContext(ctx); err != nil {
		l.stats.Inc(core.EvCancels)
		return err
	}
	sb := &loiterStandby{parker: park.NewParker()}
	l.standby.Store(sb)
	attempts := 0
	for {
		if sb.state.Load() == sbGranted {
			// Direct handoff: the outer lock was never released; we own it.
			break
		}
		if l.outer.CompareAndSwap(0, 1) {
			break
		}
		if ctx != nil {
			if err := ctx.Err(); err != nil {
				if sb.state.CompareAndSwap(sbWaiting, sbCancelled) {
					// Resign standby duty: deregister, then elevate the
					// next slow-path waiter by releasing the inner lock.
					l.standby.Store(nil)
					l.inner.Unlock()
					l.stats.Inc2(core.EvCancels, core.EvAbandons)
					return err
				}
				// The direct handoff won the race: ownership already
				// conveyed; take the lock (grant-wins).
				continue
			}
		}
		attempts++
		if attempts > l.cfg.patience {
			sb.impatient.Store(true)
		}
		l.standbyWait(sb, ctx)
	}
	l.standby.Store(nil)
	// On the sbGranted break the outer word was never released — ownership
	// conveyed by direct handoff, invisible to the lockset join.
	//lockcheck:ignore direct handoff conveys l.outer without a CAS on this branch
	l.slowOwner = true
	l.stats.Inc2(core.EvSlowPath, core.EvAcquires)
	return nil
}

// standbyWait waits for the outer lock to change state: a bounded polite
// spin, then (under spin-then-park) parking until the unlock path's
// heir-presumptive unpark — or ctx cancellation, handled by the caller.
func (l *LOITER) standbyWait(sb *loiterStandby, ctx context.Context) {
	var done <-chan struct{}
	if ctx != nil {
		done = ctx.Done()
	}
	budget := l.cfg.policy.SpinBudget
	if l.cfg.wait == WaitSpin {
		budget = 1 << 62 // unbounded
	}
	for i := 0; i < budget; i++ {
		if sb.state.Load() != sbWaiting || l.outer.Load() == 0 {
			return
		}
		if sb.parker.TryConsume() {
			return // unpark raced ahead of our park
		}
		if done != nil && i%ctxCheckEvery == ctxCheckEvery-1 {
			select {
			case <-done:
				return
			default:
			}
		}
		politePause(i)
	}
	l.stats.Inc(core.EvParks)
	sb.parker.ParkContext(ctx)
}

// TryLock acquires the lock if the outer word is free.
//
//lockcheck:acquires l
func (l *LOITER) TryLock() bool {
	if l.outer.CompareAndSwap(0, 1) {
		l.slowOwner = false
		l.stats.Inc2(core.EvFastPath, core.EvAcquires)
		return true
	}
	return false
}

// Unlock releases the lock. A patient standby is woken as heir presumptive
// (competitive succession); an impatient one receives the lock by direct
// handoff without it ever becoming free — unless its cancellation won the
// state race, in which case the release proceeds normally.
//
//lockcheck:cs
//lockcheck:holds l.outer
//lockcheck:releases l
func (l *LOITER) Unlock() {
	if l.outer.Load() != 1 {
		panic("lock: LOITER.Unlock of unlocked mutex")
	}
	wasSlow := l.slowOwner
	sb := l.standby.Load()
	if sb != nil && sb.impatient.Load() &&
		sb.state.CompareAndSwap(sbWaiting, sbGranted) {
		// Anti-starvation direct handoff: ownership conveys; the outer
		// word stays 1.
		sb.parker.Unpark()
		l.stats.Inc3(core.EvPromotions, core.EvHandoffs, core.EvUnparks)
		return
	}
	l.outer.Store(0)
	// Re-read the standby after publishing the release: a slow-path thread
	// may have registered itself between the pre-release read above and the
	// store, and with no wakeup it would park with nobody left to unpark it
	// (a lost-wakeup strand at quiescence). Unpark-before-park is safe —
	// the parker holds the permit — and a standby that misses both reads
	// necessarily observes outer == 0 before parking. A just-cancelled
	// standby may be unparked redundantly; the stale permit is harmless.
	if sb = l.standby.Load(); sb != nil {
		// Wake the heir presumptive so it can re-contend.
		sb.parker.Unpark()
		l.stats.Inc(core.EvUnparks)
	}
	if wasSlow {
		// We came via the slow path and still hold the inner lock;
		// releasing it elevates the next slow waiter to standby.
		//lockcheck:ignore slowOwner==true implies the inner lock is held, a data-dependent fact the lockset cannot carry
		l.inner.Unlock()
	}
}

// Stats returns a snapshot of the lock's event counters. The inner MCS
// queue's own counters are available via InnerStats.
func (l *LOITER) Stats() core.Snapshot { return l.stats.Read() }

// InnerStats returns the inner (slow path) MCS lock's counters.
func (l *LOITER) InnerStats() core.Snapshot { return l.inner.Stats() }

var _ ContextMutex = (*LOITER)(nil)
