package lock

import (
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/pad"
	"repro/internal/park"
)

// DefaultPatience is the number of failed acquisition attempts after which
// the LOITER standby thread declares itself impatient and requests direct
// handoff (Appendix A.1: "we impose long-term fairness by detecting that
// the standby thread has waited too long").
const DefaultPatience = 64

// DefaultArrivalSpins is the bounded fast-path arrival spin: how many
// acquisition attempts (with randomized backoff between them) an arriving
// thread makes on the outer lock before reverting to the slow path.
const DefaultArrivalSpins = 32

// WithPatience sets the standby impatience threshold in failed attempts.
func WithPatience(n int) Option {
	return func(c *config) {
		if n < 1 {
			n = 1
		}
		c.patience = n
	}
}

// WithArrivalSpins sets the bounded arrival-phase attempt count.
func WithArrivalSpins(n int) Option {
	return func(c *config) {
		if n < 1 {
			n = 1
		}
		c.arrivalSpins = n
	}
}

// loiterStandby is the record the standby thread publishes so the unlock
// path can wake it (heir presumptive) or grant it the lock directly.
type loiterStandby struct {
	parker    *park.Parker
	granted   atomic.Bool
	impatient atomic.Bool
}

// LOITER ("Locking: Outer-Inner with ThRottling", Appendix A.1) is a
// composite lock: an outer test-and-set lock acquired by a bounded barging
// fast path, and an inner MCS lock forming the slow path. The single
// thread holding the inner lock — the standby — contends for the outer
// lock on behalf of the slow path; everything queued behind it on the
// inner lock is the passive set.
//
// The ACS is the owner, the circulating threads, and the arriving
// fast-path spinners; the standby is "on the cusp", transitional between
// the sets. The composite retains competitive succession (low handover
// latency, preemption tolerance) for the common path while the inner lock
// throttles the flow of threads from the PS into the ACS. An impatient
// standby — one that has failed too many acquisition attempts — receives
// the lock by direct handoff at the next unlock, bounding starvation.
//
// This is the paper's 3-stage waiting policy: spin globally; then enqueue
// and spin locally; then park.
type LOITER struct {
	// outer is the barging-spun lock word; it owns its cache line so the
	// fast-path CAS storm does not invalidate the standby pointer or the
	// holder-only fields.
	outer atomic.Uint32 // 0 free, 1 held
	_     [pad.CacheLineSize - 4]byte

	// standby is written on every slow-path entry/exit and read on every
	// unlock; it gets its own line too.
	standby atomic.Pointer[loiterStandby]
	_       [pad.CacheLineSize - 8]byte

	inner *MCS
	// slowOwner records whether the current owner came via the slow path
	// and therefore also holds the inner lock. Lock-protected.
	slowOwner bool
	cfg       config
	stats     *core.Stats
}

// NewLOITER returns an unlocked LOITER lock. The waiting-policy option
// applies to both the inner MCS queue and the standby's wait.
func NewLOITER(opts ...Option) *LOITER {
	cfg := buildConfig(opts)
	return &LOITER{
		inner: NewMCS(
			WithWaitPolicy(cfg.wait),
			WithSpinBudget(cfg.policy.SpinBudget),
			WithStats(!cfg.noStats),
		),
		cfg:   cfg,
		stats: cfg.newStats(),
	}
}

// Lock acquires the lock: bounded barging on the outer lock first, then
// the inner-lock slow path.
func (l *LOITER) Lock() {
	// Fast path: arrival phase with bounded global spinning and
	// randomized backoff.
	if l.outer.CompareAndSwap(0, 1) {
		l.slowOwner = false
		l.stats.Inc2(core.EvFastPath, core.EvAcquires)
		return
	}
	b := newBackoff(nextSeed())
	for a := 1; a < l.cfg.arrivalSpins; a++ {
		for i := 0; l.outer.Load() != 0 && i < maxBackoff; i++ {
			politePause(i)
		}
		if l.outer.CompareAndSwap(0, 1) {
			l.slowOwner = false
			l.stats.Inc2(core.EvFastPath, core.EvAcquires)
			return
		}
		b.pause()
	}

	// Slow path: acquire the inner lock and become the standby thread.
	l.inner.Lock()
	sb := &loiterStandby{parker: park.NewParker()}
	l.standby.Store(sb)
	attempts := 0
	for {
		if sb.granted.Load() {
			// Direct handoff: the outer lock was never released; we own it.
			break
		}
		if l.outer.CompareAndSwap(0, 1) {
			break
		}
		attempts++
		if attempts > l.cfg.patience {
			sb.impatient.Store(true)
		}
		l.standbyWait(sb)
	}
	l.standby.Store(nil)
	l.slowOwner = true
	l.stats.Inc2(core.EvSlowPath, core.EvAcquires)
}

// standbyWait waits for the outer lock to change state: a bounded polite
// spin, then (under spin-then-park) parking until the unlock path's
// heir-presumptive unpark.
func (l *LOITER) standbyWait(sb *loiterStandby) {
	budget := l.cfg.policy.SpinBudget
	if l.cfg.wait == WaitSpin {
		budget = 1 << 62 // unbounded
	}
	for i := 0; i < budget; i++ {
		if sb.granted.Load() || l.outer.Load() == 0 {
			return
		}
		if sb.parker.TryConsume() {
			return // unpark raced ahead of our park
		}
		politePause(i)
	}
	l.stats.Inc(core.EvParks)
	sb.parker.Park()
}

// TryLock acquires the lock if the outer word is free.
func (l *LOITER) TryLock() bool {
	if l.outer.CompareAndSwap(0, 1) {
		l.slowOwner = false
		l.stats.Inc2(core.EvFastPath, core.EvAcquires)
		return true
	}
	return false
}

// Unlock releases the lock. A patient standby is woken as heir presumptive
// (competitive succession); an impatient one receives the lock by direct
// handoff without it ever becoming free.
func (l *LOITER) Unlock() {
	if l.outer.Load() != 1 {
		panic("lock: LOITER.Unlock of unlocked mutex")
	}
	wasSlow := l.slowOwner
	sb := l.standby.Load()
	if sb != nil && sb.impatient.Load() {
		// Anti-starvation direct handoff: ownership conveys; the outer
		// word stays 1.
		sb.granted.Store(true)
		sb.parker.Unpark()
		l.stats.Inc3(core.EvPromotions, core.EvHandoffs, core.EvUnparks)
		return
	}
	l.outer.Store(0)
	// Re-read the standby after publishing the release: a slow-path thread
	// may have registered itself between the pre-release read above and the
	// store, and with no wakeup it would park with nobody left to unpark it
	// (a lost-wakeup strand at quiescence). Unpark-before-park is safe —
	// the parker holds the permit — and a standby that misses both reads
	// necessarily observes outer == 0 before parking.
	if sb = l.standby.Load(); sb != nil {
		// Wake the heir presumptive so it can re-contend.
		sb.parker.Unpark()
		l.stats.Inc(core.EvUnparks)
	}
	if wasSlow {
		// We came via the slow path and still hold the inner lock;
		// releasing it elevates the next slow waiter to standby.
		l.inner.Unlock()
	}
}

// Stats returns a snapshot of the lock's event counters. The inner MCS
// queue's own counters are available via InnerStats.
func (l *LOITER) Stats() core.Snapshot { return l.stats.Read() }

// InnerStats returns the inner (slow path) MCS lock's counters.
func (l *LOITER) InnerStats() core.Snapshot { return l.inner.Stats() }

var _ Mutex = (*LOITER)(nil)
