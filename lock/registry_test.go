package lock

import (
	"strings"
	"testing"
)

// TestRegistryNames pins the canonical name set: these are the names
// lockbench, the benchmarks, and the examples rely on resolving.
func TestRegistryNames(t *testing.T) {
	want := []string{
		"clh", "lifocr", "loiter", "mcs-s", "mcs-stp",
		"mcscr-s", "mcscr-stp", "null", "tas", "ticket",
	}
	got := Names()
	if len(got) != len(want) {
		t.Fatalf("Names() = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Names() = %v, want %v", got, want)
		}
	}
}

// TestRegistryRoundTrip: every canonical name must build, satisfy
// ContextMutex and Instrumented, and actually provide a working
// Lock/Unlock. The Names() slice is the single source of truth.
func TestRegistryRoundTrip(t *testing.T) {
	for _, name := range Names() {
		t.Run(name, func(t *testing.T) {
			m, err := New(name)
			if err != nil {
				t.Fatalf("New(%q): %v", name, err)
			}
			if _, ok := m.(ContextMutex); !ok {
				t.Fatalf("New(%q) does not satisfy ContextMutex", name)
			}
			if _, ok := m.(Instrumented); !ok && name != "null" {
				t.Fatalf("New(%q) does not satisfy Instrumented", name)
			}
			m.Lock()
			m.Unlock()
			if !m.TryLock() {
				t.Fatal("TryLock on fresh lock failed")
			}
			m.Unlock()
		})
	}
}

func TestRegistryAliases(t *testing.T) {
	for alias, canonical := range map[string]string{
		"mcs": "mcs-stp", "mcscr": "mcscr-stp", "ttas": "tas",
		"MCSCR": "mcscr-stp", " tas ": "tas", // case/space insensitive
	} {
		r, ok := Lookup(alias)
		if !ok {
			t.Fatalf("Lookup(%q) failed", alias)
		}
		if r.Name != canonical {
			t.Fatalf("Lookup(%q).Name = %q, want %q", alias, r.Name, canonical)
		}
	}
}

// TestSpecParameters verifies that spec parameters reach the lock's
// configuration and that they override programmatic options.
func TestSpecParameters(t *testing.T) {
	m := MustNew("mcscr-stp?fairness=500&spin=128&seed=42")
	l, ok := m.(*MCSCR)
	if !ok {
		t.Fatalf("spec built %T, want *MCSCR", m)
	}
	if l.cfg.policy.FairnessPeriod != 500 || l.cfg.policy.SpinBudget != 128 || l.cfg.policy.Seed != 42 {
		t.Fatalf("spec params not applied: %+v", l.cfg.policy)
	}
	if l.cfg.wait != WaitSpinThenPark {
		t.Fatal("mcscr-stp did not select spin-then-park")
	}

	// Spec overrides programmatic options.
	m = MustNew("mcscr-stp?fairness=7", WithFairnessPeriod(1000))
	if got := m.(*MCSCR).cfg.policy.FairnessPeriod; got != 7 {
		t.Fatalf("spec did not override option: fairness=%d want 7", got)
	}

	// The name's policy suffix overrides a conflicting wait parameter.
	m = MustNew("mcs-s?wait=stp")
	if got := m.(*MCS).cfg.wait; got != WaitSpin {
		t.Fatalf("mcs-s?wait=stp built policy %v, want WaitSpin (name wins)", got)
	}

	// wait= works on unsuffixed names.
	if got := MustNew("clh?wait=s").(*CLH).cfg.wait; got != WaitSpin {
		t.Fatalf("clh?wait=s built policy %v", got)
	}

	// stats=false yields zero snapshots.
	s := MustNew("tas?stats=false").(*TAS)
	s.Lock()
	s.Unlock()
	if s.Stats().Acquires != 0 {
		t.Fatal("stats=false still counted")
	}

	// LOITER knobs parse.
	lo := MustNew("loiter?patience=3&arrivals=2").(*LOITER)
	if lo.cfg.patience != 3 || lo.cfg.arrivalSpins != 2 {
		t.Fatalf("loiter knobs not applied: %+v", lo.cfg)
	}
}

func TestSpecErrors(t *testing.T) {
	for spec, wantSub := range map[string]string{
		"nosuch":              "unknown lock",
		"":                    "unknown lock",
		"mcs-stp?bogus=1":     "unknown parameter",
		"mcs-stp?spin=abc":    "bad value",
		"mcs-stp?spin=-1":     "bad value",
		"mcs-stp?fairness=-1": "bad value",
		"mcs-stp?wait=never":  "bad value",
		"loiter?patience=0":   "bad value",
		"loiter?arrivals=0":   "bad value",
		"tas?stats=perhaps":   "bad value",
		"tas?seed=1&seed=2":   "given 2 times",
		"tas?seed=%zz":        "malformed parameters",
	} {
		m, err := New(spec)
		if err == nil {
			t.Errorf("New(%q) accepted a malformed spec (built %T)", spec, m)
			continue
		}
		if m != nil {
			t.Errorf("New(%q) returned non-nil Mutex alongside error", spec)
		}
		if !strings.Contains(err.Error(), wantSub) {
			t.Errorf("New(%q) error %q does not mention %q", spec, err, wantSub)
		}
	}
	// The unknown-name error must list the known names (discoverability).
	_, err := New("nosuch")
	if !strings.Contains(err.Error(), "mcscr-stp") {
		t.Fatalf("unknown-lock error does not enumerate known locks: %v", err)
	}
}

func TestMustNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustNew of a malformed spec did not panic")
		}
	}()
	//lockcheck:ignore exercising the MustNew panic path with a malformed spec
	MustNew("definitely-not-a-lock")
}

func TestRegisterCollisionPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate Register did not panic")
		}
	}()
	Register(Registration{Name: "tas", Build: func(...Option) Mutex { return NewTAS() }})
}
