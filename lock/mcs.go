package lock

import (
	"sync"
	"sync/atomic"

	"repro/internal/core"
)

// mcsNode is a waiter element on the MCS chain. Nodes are pooled: a node
// is owned by its enqueuing goroutine from Lock until the lock is
// released, and by nobody afterwards. The passive-list fields (prev) are
// used only by MCSCR while a node sits on the explicit passive list, where
// accesses are serialized by the lock itself.
type mcsNode struct {
	waitCell
	next atomic.Pointer[mcsNode]
	prev *mcsNode // passive-list back link (MCSCR only; lock-protected)
	id   int      // optional owner tag for diagnostics
}

var mcsPool = sync.Pool{New: func() any { return new(mcsNode) }}

func newMCSNode() *mcsNode {
	n := mcsPool.Get().(*mcsNode)
	n.reset()
	n.next.Store(nil)
	n.prev = nil
	return n
}

func freeMCSNode(n *mcsNode) {
	mcsPool.Put(n)
}

// MCS is the classic Mellor-Crummey–Scott queue lock (§4 footnote 10):
// strict FIFO admission, direct handoff, local spinning on a per-waiter
// flag. Arriving threads append a node at the tail; the owner's node is
// the implicit head; unlock passes ownership to the next node.
//
// The waiting policy selects MCS-S (polite spin) or MCS-STP
// (spin-then-park). The paper shows MCS-STP interacts badly with direct
// handoff under contention: the longest waiter — next in FIFO order — is
// the one most likely to have parked, so every handover pays an unpark.
type MCS struct {
	tail  atomic.Pointer[mcsNode]
	owner *mcsNode // node of the current holder; lock-protected
	cfg   config
	stats core.Stats
}

// NewMCS returns an unlocked MCS lock. By default it uses spin-then-park
// waiting; use WithWaitPolicy(WaitSpin) for the "-S" variant.
func NewMCS(opts ...Option) *MCS {
	return &MCS{cfg: buildConfig(opts)}
}

// Lock enqueues the caller and waits for direct handoff.
func (l *MCS) Lock() {
	n := newMCSNode()
	pred := l.tail.Swap(n)
	if pred == nil {
		// Uncontended: we are the head and the owner.
		l.owner = n
		l.stats.FastPath.Add(1)
		l.stats.Acquires.Add(1)
		return
	}
	pred.next.Store(n)
	if n.await(l.cfg.wait, l.cfg.policy.SpinBudget) {
		l.stats.Parks.Add(1)
	}
	l.owner = n
	l.stats.SlowPath.Add(1)
	l.stats.Acquires.Add(1)
}

// TryLock acquires the lock only if the chain is empty.
func (l *MCS) TryLock() bool {
	n := newMCSNode()
	if l.tail.CompareAndSwap(nil, n) {
		l.owner = n
		l.stats.FastPath.Add(1)
		l.stats.Acquires.Add(1)
		return true
	}
	freeMCSNode(n)
	return false
}

// Unlock passes ownership to the next waiter, if any.
func (l *MCS) Unlock() {
	n := l.owner
	if n == nil {
		panic("lock: MCS.Unlock of unlocked mutex")
	}
	l.owner = nil
	succ := n.next.Load()
	if succ == nil {
		if l.tail.CompareAndSwap(n, nil) {
			freeMCSNode(n)
			return
		}
		// An arrival is between the tail swap and the next-link store;
		// wait for the link to appear.
		for succ = n.next.Load(); succ == nil; succ = n.next.Load() {
			politePause(1)
		}
	}
	if succ.grant() {
		l.stats.Unparks.Add(1)
	}
	l.stats.Handoffs.Add(1)
	freeMCSNode(n)
}

// Stats returns a snapshot of the lock's event counters.
func (l *MCS) Stats() core.Snapshot { return l.stats.Read() }

var _ Mutex = (*MCS)(nil)
