package lock

import (
	"context"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/pad"
)

// mcsNode is a waiter element on the MCS chain. Nodes are pooled: a node
// is owned by its enqueuing goroutine from Lock until the lock is
// released, and by nobody afterwards. The passive-list fields (prev) are
// used only by MCSCR while a node sits on the explicit passive list, where
// accesses are serialized by the lock itself.
//
// The trailing pad rounds the node up to exactly one cache line. Pooled
// nodes land in the 64-byte size class, whose slots are line-aligned, so a
// waiter spinning on its own wait flag never shares a coherence granule
// with a neighbouring waiter's flag or link being written (local spinning
// stays local). layout_test.go asserts the size.
//
//lockcheck:line=1
type mcsNode struct {
	waitCell // 16 bytes: state word + lazy parker
	next     atomic.Pointer[mcsNode]
	prev     *mcsNode // passive-list back link (MCSCR only; lock-protected)
	id       int      // optional owner tag for diagnostics
	_        [pad.CacheLineSize - 40]byte
}

var mcsPool = sync.Pool{New: func() any { return new(mcsNode) }}

// newMCSNode returns a ready-to-enqueue node. Pool invariant: nodes are
// reset when freed (and sync.Pool's New returns a zeroed node, which is
// the reset state), so the acquisition fast path issues no stores here.
func newMCSNode() *mcsNode {
	return mcsPool.Get().(*mcsNode)
}

// freeMCSNode restores the reset state and recycles the node. The caller
// owns the node exclusively at this point, so the stores cannot race with
// a waiter; doing the cleanup here moves it off the acquisition path.
func freeMCSNode(n *mcsNode) {
	n.state.Store(stateWaiting)
	n.next.Store(nil)
	n.prev = nil
	mcsPool.Put(n)
}

// MCS is the classic Mellor-Crummey–Scott queue lock (§4 footnote 10):
// strict FIFO admission, direct handoff, local spinning on a per-waiter
// flag. Arriving threads append a node at the tail; the owner's node is
// the implicit head; unlock passes ownership to the next node.
//
// The waiting policy selects MCS-S (polite spin) or MCS-STP
// (spin-then-park). The paper shows MCS-STP interacts badly with direct
// handoff under contention: the longest waiter — next in FIFO order — is
// the one most likely to have parked, so every handover pays an unpark.
type MCS struct {
	// tail is the only word every arriving thread writes; it sits alone
	// on its cache line, away from the holder-only fields below.
	tail atomic.Pointer[mcsNode]
	_    [pad.CacheLineSize - 8]byte

	owner *mcsNode // node of the current holder; lock-protected
	cfg   config
	stats *core.Stats
}

// NewMCS returns an unlocked MCS lock. By default it uses spin-then-park
// waiting; use WithWaitPolicy(WaitSpin) for the "-S" variant.
func NewMCS(opts ...Option) *MCS {
	cfg := buildConfig(opts)
	return &MCS{cfg: cfg, stats: cfg.newStats()}
}

func init() {
	Register(Registration{
		Name:    "mcs-stp",
		Aliases: []string{"mcs"},
		Summary: "classic MCS queue lock, spin-then-park waiting",
		Build:   func(opts ...Option) Mutex { return NewMCS(append(opts, WithWaitPolicy(WaitSpinThenPark))...) },
	})
	Register(Registration{
		Name:    "mcs-s",
		Summary: "classic MCS queue lock, unbounded polite spinning",
		Build:   func(opts ...Option) Mutex { return NewMCS(append(opts, WithWaitPolicy(WaitSpin))...) },
	})
}

// Lock enqueues the caller and waits for direct handoff.
func (l *MCS) Lock() { l.lockChain(nil) }

// LockContext is Lock with cancellation: a waiter whose ctx expires
// abandons its chain node (which the next unlock excises) and returns
// ctx.Err(). See ContextMutex for the shared semantics.
func (l *MCS) LockContext(ctx context.Context) error {
	if ctx.Done() == nil {
		return l.lockChain(nil)
	}
	if err := ctx.Err(); err != nil {
		l.stats.Inc(core.EvCancels)
		return err
	}
	return l.lockChain(ctx)
}

// lockChain is the acquisition body shared by Lock and LockContext; a
// nil ctx waits indefinitely and cannot fail.
func (l *MCS) lockChain(ctx context.Context) error {
	n := newMCSNode()
	pred := l.tail.Swap(n)
	if pred == nil {
		// Uncontended: we are the head and the owner.
		l.owner = n
		l.stats.Inc2(core.EvFastPath, core.EvAcquires)
		return nil
	}
	pred.next.Store(n)
	var parked bool
	var err error
	if ctx == nil {
		parked = n.await(l.cfg.wait, l.cfg.policy.SpinBudget)
	} else {
		parked, err = n.awaitCtx(ctx, l.cfg.wait, l.cfg.policy.SpinBudget)
	}
	if err != nil {
		// The node is now stateAbandoned; the unlock path owns it.
		cancelStats(l.stats, parked)
		return err
	}
	l.owner = n
	slowAcquireStats(l.stats, parked)
	return nil
}

// TryLockFor is TryLock with a patience bound, built on LockContext.
func (l *MCS) TryLockFor(d time.Duration) bool { return tryLockFor(l, d) }

// TryLock acquires the lock only if the chain is empty. The failure path
// is allocation-free: a node is drawn from the pool only after the chain
// is observed empty.
func (l *MCS) TryLock() bool {
	if l.tail.Load() != nil {
		return false
	}
	n := newMCSNode()
	if l.tail.CompareAndSwap(nil, n) {
		l.owner = n
		l.stats.Inc2(core.EvFastPath, core.EvAcquires)
		return true
	}
	freeMCSNode(n)
	return false
}

// Unlock passes ownership to the next waiter, if any. Abandoned
// successors (cancelled LockContext waiters) are excised and recycled as
// the walk passes them: each loop iteration either hands off to a live
// waiter, empties the chain, or skips one abandoned node.
//
//lockcheck:cs
func (l *MCS) Unlock() {
	n := l.owner
	if n == nil {
		panic("lock: MCS.Unlock of unlocked mutex")
	}
	l.owner = nil
	for {
		succ := n.next.Load()
		if succ == nil {
			if l.tail.CompareAndSwap(n, nil) {
				freeMCSNode(n)
				return
			}
			// An arrival is between the tail swap and the next-link store;
			// wait for the link to appear.
			for succ = n.next.Load(); succ == nil; succ = n.next.Load() {
				politePause(1)
			}
		}
		if ok, unparked := succ.tryGrant(); ok {
			grantStats(l.stats, unparked)
			freeMCSNode(n)
			return
		}
		// succ abandoned its acquisition: it becomes the departing head
		// (nobody references the old head anymore) and the walk goes on.
		l.stats.Inc(core.EvAbandons)
		freeMCSNode(n)
		n = succ
	}
}

// Stats returns a snapshot of the lock's event counters.
func (l *MCS) Stats() core.Snapshot { return l.stats.Read() }

var _ ContextMutex = (*MCS)(nil)
