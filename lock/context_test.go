package lock

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// contextLocks enumerates the locks under cancellation test via the
// registry (the single source of truth for names); null is excluded
// because it provides no exclusion to verify.
func contextLocks() []string {
	var names []string
	for _, n := range Names() {
		if n != "null" {
			names = append(names, n)
		}
	}
	return names
}

// TestCancelStress is the central cancellation soak: goroutines hammer
// each lock with a mix of plain Lock and LockContext under randomly
// expiring deadlines, asserting
//
//   - mutual exclusion holds throughout (unprotected counter + occupancy),
//   - no acquisition is lost or double-counted: successful acquisitions
//     equal critical-section executions,
//   - Cancels reconciles exactly with the observed error returns,
//   - Abandons never exceeds Cancels (every excised node was cancelled),
//   - the lock remains fully usable after the storm (no stranded waiter,
//     no corrupted chain): a sequential drain completes.
//
// Run with -race in CI (the "Cancel" stage).
func TestCancelStress(t *testing.T) {
	const goroutines = 8
	iters := 400
	if raceEnabled {
		iters = 120
	}
	for _, name := range contextLocks() {
		t.Run(name, func(t *testing.T) {
			m := MustNew(name, WithSeed(1), WithSpinBudget(64)).(ContextMutex)
			var (
				unprotected int // data race if exclusion fails
				inside      atomic.Int32
				maxInside   atomic.Int32
				successes   atomic.Int64
				cancels     atomic.Int64
			)
			cs := func() {
				if v := inside.Add(1); v > maxInside.Load() {
					maxInside.Store(v)
				}
				unprotected++
				inside.Add(-1)
			}
			runWithTimeout(t, 120*time.Second, func() {
				var wg sync.WaitGroup
				for g := 0; g < goroutines; g++ {
					wg.Add(1)
					go func(id int) {
						defer wg.Done()
						rng := uint64(id)*0x9e3779b97f4a7c15 + 1
						next := func() uint64 {
							rng ^= rng << 13
							rng ^= rng >> 7
							rng ^= rng << 17
							return rng
						}
						for i := 0; i < iters; i++ {
							switch next() % 4 {
							case 0: // plain lock
								m.Lock()
								cs()
								m.Unlock()
								successes.Add(1)
							case 1: // uncancellable context
								if err := m.LockContext(context.Background()); err != nil {
									t.Errorf("Background LockContext failed: %v", err)
									return
								}
								cs()
								m.Unlock()
								successes.Add(1)
							default: // racing deadline, 0–40µs
								d := time.Duration(next()%41) * time.Microsecond
								ctx, cancel := context.WithTimeout(context.Background(), d)
								err := m.LockContext(ctx)
								cancel()
								if err != nil {
									if !errors.Is(err, context.DeadlineExceeded) {
										t.Errorf("unexpected LockContext error: %v", err)
										return
									}
									cancels.Add(1)
								} else {
									cs()
									m.Unlock()
									successes.Add(1)
								}
							}
						}
					}(g)
				}
				wg.Wait()
			})
			if got := int64(unprotected); got != successes.Load() {
				t.Errorf("mutual exclusion violated: %d CS executions vs %d successful acquisitions",
					got, successes.Load())
			}
			if maxInside.Load() != 1 {
				t.Errorf("critical section occupancy reached %d", maxInside.Load())
			}
			// Post-storm liveness: the lock must still cycle cleanly.
			runWithTimeout(t, 60*time.Second, func() {
				for i := 0; i < 100; i++ {
					m.Lock()
					m.Unlock()
				}
			})
			snap := m.(Instrumented).Stats()
			if snap.Cancels != uint64(cancels.Load()) {
				t.Errorf("Cancels=%d does not reconcile with %d observed timeouts",
					snap.Cancels, cancels.Load())
			}
			if snap.Abandons > snap.Cancels {
				t.Errorf("Abandons=%d exceeds Cancels=%d", snap.Abandons, snap.Cancels)
			}
			if want := successes.Load(); snap.Acquires != uint64(want) {
				// The drain above adds 100 more.
				if snap.Acquires != uint64(want)+100 {
					t.Errorf("Acquires=%d, want %d (+100 drain)", snap.Acquires, want)
				}
			}
		})
	}
}

// TestCancelParkedWaiter pins the hardest path: a waiter that has fully
// parked must notice cancellation promptly, abandon its slot, and leave
// the lock usable (the abandoned node excised by the next unlock).
func TestCancelParkedWaiter(t *testing.T) {
	for _, name := range contextLocks() {
		t.Run(name, func(t *testing.T) {
			// spin=0 parks (or for spin-free locks, waits) immediately.
			m := MustNew(name + "?spin=0&seed=2").(ContextMutex)
			m.Lock()
			ctx, cancel := context.WithCancel(context.Background())
			errc := make(chan error, 1)
			go func() { errc <- m.LockContext(ctx) }()
			time.Sleep(50 * time.Millisecond) // let the waiter park
			cancel()
			select {
			case err := <-errc:
				if !errors.Is(err, context.Canceled) {
					t.Fatalf("LockContext = %v, want context.Canceled", err)
				}
			case <-time.After(10 * time.Second):
				t.Fatal("parked waiter ignored cancellation")
			}
			m.Unlock() // must excise the abandoned node, not hand off to it
			runWithTimeout(t, 30*time.Second, func() {
				for i := 0; i < 10; i++ {
					m.Lock()
					m.Unlock()
				}
			})
		})
	}
}

// TestCancelChainExcision abandons a waiter in the middle of a real
// queue (holder + 3 waiters), then checks the survivors all acquire.
func TestCancelChainExcision(t *testing.T) {
	for _, name := range contextLocks() {
		t.Run(name, func(t *testing.T) {
			m := MustNew(name + "?spin=0&seed=3").(ContextMutex)
			m.Lock()
			ctx, cancel := context.WithCancel(context.Background())
			var acquired atomic.Int64
			var wg sync.WaitGroup
			errc := make(chan error, 1)
			wg.Add(1)
			go func() { // the doomed middle waiter
				defer wg.Done()
				errc <- m.LockContext(ctx)
			}()
			time.Sleep(20 * time.Millisecond)
			for i := 0; i < 3; i++ {
				wg.Add(1)
				go func() { // survivors
					defer wg.Done()
					m.Lock()
					acquired.Add(1)
					m.Unlock()
				}()
			}
			time.Sleep(20 * time.Millisecond)
			cancel()
			if err := <-errc; err == nil {
				// The doomed waiter may legitimately win a handoff race
				// before noticing cancellation (grant-wins); release.
				acquired.Add(1)
				m.Unlock()
			}
			m.Unlock()
			runWithTimeout(t, 60*time.Second, wg.Wait)
			if got := acquired.Load(); got < 3 {
				t.Fatalf("only %d survivors acquired after excision", got)
			}
		})
	}
}

// TestLockContextPreCancelled: an already-dead context must fail fast,
// count one cancel, and leave no trace in the waiter structures.
func TestLockContextPreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, name := range Names() {
		t.Run(name, func(t *testing.T) {
			m := MustNew(name).(ContextMutex)
			if err := m.LockContext(ctx); !errors.Is(err, context.Canceled) {
				t.Fatalf("LockContext(cancelled) = %v, want context.Canceled", err)
			}
			// The failed attempt must not have disturbed the lock.
			if !m.TryLock() {
				t.Fatal("lock unusable after fail-fast cancellation")
			}
			m.Unlock()
		})
	}
}

// TestLockContextBackground: an uncancellable context is exactly Lock.
func TestLockContextBackground(t *testing.T) {
	for _, name := range Names() {
		t.Run(name, func(t *testing.T) {
			m := MustNew(name).(ContextMutex)
			if err := m.LockContext(context.Background()); err != nil {
				t.Fatalf("Background LockContext: %v", err)
			}
			m.Unlock()
		})
	}
}

func TestTryLockFor(t *testing.T) {
	for _, name := range contextLocks() {
		t.Run(name, func(t *testing.T) {
			m := MustNew(name).(ContextMutex)
			// Free lock: immediate success, even with no budget.
			if !m.TryLockFor(0) {
				t.Fatal("TryLockFor(0) on a free lock failed")
			}
			// Held lock, no budget: immediate failure.
			if m.TryLockFor(0) || m.TryLockFor(-time.Second) {
				t.Fatal("TryLockFor(<=0) on a held lock succeeded")
			}
			// Held lock, short budget: timed failure.
			start := time.Now()
			if m.TryLockFor(20 * time.Millisecond) {
				t.Fatal("TryLockFor acquired a held lock")
			}
			if time.Since(start) > 5*time.Second {
				t.Fatal("TryLockFor overshot its deadline grossly")
			}
			m.Unlock()
			// Contended but released within the budget: success.
			release := make(chan struct{})
			m.Lock()
			done := make(chan bool, 1)
			go func() {
				<-release
				time.Sleep(10 * time.Millisecond)
				m.Unlock()
			}()
			go func() { close(release); done <- m.TryLockFor(30 * time.Second) }()
			select {
			case ok := <-done:
				if !ok {
					t.Fatal("TryLockFor missed a release inside its budget")
				}
				m.Unlock()
			case <-time.After(60 * time.Second):
				t.Fatal("TryLockFor hung")
			}
		})
	}
}

// TestMCSCRCancelOnPassiveList drives a waiter into the passive set and
// cancels it there: the passive-list pops must filter the abandoned node
// and the PS must fully drain afterwards.
func TestMCSCRCancelOnPassiveList(t *testing.T) {
	m := MustNew("mcscr-stp?seed=5&spin=0").(*MCSCR)
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		m.Lock()
		ctx, cancel := context.WithCancel(context.Background())
		errs := make(chan error, 4)
		var wg sync.WaitGroup
		for i := 0; i < 4; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				errs <- m.LockContext(ctx)
			}()
		}
		// Cycle the lock so the unlock path culls surplus waiters to the
		// PS (the culler needs to observe >= 2 chain waiters).
		if !waitUntil(deadline, func() bool { return m.Stats().Culls > 0 || m.PassiveSize() > 0 }) {
			cancel()
			m.Unlock()
			t.Skip("culling never engaged (single-CPU scheduling); covered by TestCancelStress")
		}
		cancel()
		m.Unlock()
		granted := 0
		for i := 0; i < 4; i++ {
			if err := <-errs; err == nil {
				granted++
			}
		}
		// Unlock on behalf of any waiters that won grant-wins races; each
		// unlock also reprovisions/excises from the PS.
		for i := 0; i < granted; i++ {
			m.Unlock()
		}
		wg.Wait()
		// Drain: reprovision pops filter abandoned PS entries.
		runWithTimeout(t, 30*time.Second, func() {
			for m.PassiveSize() > 0 {
				m.Lock()
				m.Unlock()
			}
		})
		if ps := m.PassiveSize(); ps != 0 {
			t.Fatalf("passive set retained %d abandoned entries", ps)
		}
		return // one full round suffices
	}
	t.Fatal("test deadline exhausted")
}
