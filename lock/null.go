package lock

// Null is the degenerate lock whose acquire and release operators return
// immediately (§6.1). It provides no mutual exclusion and is suitable only
// for calibrating harness overhead; "other more sophisticated applications
// will immediately fail with this lock."
type Null struct{}

// NewNull returns a Null lock.
func NewNull() *Null { return &Null{} }

// Lock is a no-op.
func (*Null) Lock() {}

// Unlock is a no-op.
func (*Null) Unlock() {}

// TryLock always succeeds.
func (*Null) TryLock() bool { return true }

var _ Mutex = (*Null)(nil)
