package lock

import (
	"context"
	"time"
)

// Null is the degenerate lock whose acquire and release operators return
// immediately (§6.1). It provides no mutual exclusion and is suitable only
// for calibrating harness overhead; "other more sophisticated applications
// will immediately fail with this lock."
type Null struct{}

// NewNull returns a Null lock.
func NewNull() *Null { return &Null{} }

func init() {
	Register(Registration{
		Name:    "null",
		Summary: "degenerate no-op lock for harness calibration (no mutual exclusion)",
		Build:   func(...Option) Mutex { return NewNull() },
	})
}

// Lock is a no-op.
func (*Null) Lock() {}

// Unlock is a no-op.
//
//lockcheck:cs
func (*Null) Unlock() {}

// TryLock always succeeds.
func (*Null) TryLock() bool { return true }

// LockContext succeeds immediately unless ctx is already done (the
// fail-fast clause of the ContextMutex contract is kept so harness code
// measuring cancellation overhead sees uniform behaviour).
func (*Null) LockContext(ctx context.Context) error { return ctx.Err() }

// TryLockFor always succeeds.
func (*Null) TryLockFor(time.Duration) bool { return true }

var _ ContextMutex = (*Null)(nil)
