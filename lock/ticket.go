package lock

import (
	"context"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/pad"
)

// Ticket is a classic FIFO ticket lock: arriving threads take the next
// ticket and spin globally until the grant counter reaches it (§5.4 notes
// ticket locks as the counter-example of a direct-handoff lock without an
// explicit waiter list). Waiting uses proportional backoff: a thread k
// positions from the head polls less aggressively than the next-in-line.
//
// Ticket locks are strictly FIFO and hence maximally exposed to the
// scalability collapse the paper studies: every circulating thread is
// admitted in turn, so the lock working set equals the thread count.
type Ticket struct {
	next  atomic.Uint64
	_     [pad.CacheLineSize - 8]byte // keep ticket and grant counters apart
	serve atomic.Uint64
	_     [pad.CacheLineSize - 8]byte
	stats *core.Stats
}

// NewTicket returns an unlocked ticket lock.
func NewTicket(opts ...Option) *Ticket {
	cfg := buildConfig(opts)
	return &Ticket{stats: cfg.newStats()}
}

func init() {
	Register(Registration{
		Name:    "ticket",
		Summary: "ticket lock baseline: strict FIFO, global spinning, proportional backoff",
		Build:   func(opts ...Option) Mutex { return NewTicket(opts...) },
	})
}

// Lock takes a ticket and waits for it to be served.
func (l *Ticket) Lock() {
	t := l.next.Add(1) - 1
	for i := 0; ; i++ {
		s := l.serve.Load()
		if s == t {
			break
		}
		// Proportional backoff: poll politely once per position in line.
		for j := 0; j < int(t-s); j++ {
			politePause(j)
		}
		politePause(i)
	}
	l.stats.Inc2(core.EvAcquires, core.EvHandoffs)
}

// LockContext is Lock with cancellation — with a deliberate semantic
// trade: a ticket, once drawn, MUST eventually be served or every later
// ticket stalls forever, so a cancellable acquirer cannot join the FIFO
// line. Instead it polls and draws a ticket only at the moment the ticket
// would be served immediately (serve == next, claimed by CAS). Cancellable
// Ticket acquisition is therefore competitive succession, not FIFO: it can
// be bypassed by plain Lock callers and does not inherit the ticket lock's
// fairness guarantee. See DESIGN.md.
//
//lockcheck:acquires l
func (l *Ticket) LockContext(ctx context.Context) error {
	done := ctx.Done()
	if done == nil {
		l.Lock()
		return nil
	}
	if err := ctx.Err(); err != nil {
		l.stats.Inc(core.EvCancels)
		return err
	}
	if l.TryLock() {
		return nil
	}
	for i := 0; ; i++ {
		s := l.serve.Load()
		if n := l.next.Load(); s == n && l.next.CompareAndSwap(n, n+1) {
			l.stats.Inc2(core.EvAcquires, core.EvSlowPath)
			return nil
		}
		if i%ctxCheckEvery == ctxCheckEvery-1 {
			select {
			case <-done:
				l.stats.Inc(core.EvCancels)
				return ctx.Err()
			default:
			}
		}
		politePause(i)
	}
}

// TryLockFor is TryLock with a patience bound, built on LockContext.
func (l *Ticket) TryLockFor(d time.Duration) bool { return tryLockFor(l, d) }

// TryLock acquires the lock only if no other thread holds or awaits it.
func (l *Ticket) TryLock() bool {
	s := l.serve.Load()
	n := l.next.Load()
	if s != n {
		return false
	}
	if l.next.CompareAndSwap(n, n+1) {
		l.stats.Inc2(core.EvAcquires, core.EvFastPath)
		return true
	}
	return false
}

// Unlock serves the next ticket (direct handoff by counter increment).
//
//lockcheck:cs
func (l *Ticket) Unlock() {
	l.serve.Add(1)
}

// Stats returns a snapshot of the lock's event counters.
func (l *Ticket) Stats() core.Snapshot { return l.stats.Read() }

var _ ContextMutex = (*Ticket)(nil)
