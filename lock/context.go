package lock

import (
	"context"
	"time"
)

// ContextMutex is the context-aware acquisition contract. Every lock in
// this package satisfies it, so any lock built by New can serve request
// paths that carry deadlines or cancellation.
//
// Semantics shared by all implementations:
//
//   - A context that can never be cancelled (ctx.Done() == nil, e.g.
//     context.Background()) makes LockContext exactly Lock: the
//     cancellation machinery is bypassed entirely.
//   - A context that is already done fails fast with ctx.Err() without
//     joining any waiter structure.
//   - Grant-wins: when a handoff races the cancellation, the acquisition
//     succeeds and LockContext returns nil even though ctx is done. The
//     caller that uses `if err := m.LockContext(ctx); err != nil { return
//     err }; defer m.Unlock()` is correct under either outcome.
//   - Exactly one Cancels event is counted per error return (Stats).
//
// What cancellation perturbs, per lock, is documented in DESIGN.md: FIFO
// locks (MCS, CLH) keep arrival order among surviving waiters but a
// cancelled waiter's successors move up; a Ticket lock serves cancellable
// acquirers by competitive succession instead of a ticket; CR locks may
// spend a fairness promotion on a waiter that abandons in the handoff
// window (the unlock path then falls back to a live successor).
type ContextMutex interface {
	Mutex
	// LockContext acquires the lock, abandoning the attempt when ctx is
	// cancelled or its deadline passes. It returns nil once the lock is
	// held and ctx.Err() after a cancelled attempt.
	LockContext(ctx context.Context) error
	// TryLockFor acquires the lock within d and reports whether it did.
	// d <= 0 degenerates to TryLock.
	TryLockFor(d time.Duration) bool
}

// lockContexter is the implementation subset tryLockFor needs; taking the
// narrow interface keeps the helper usable from every lock's TryLockFor
// method without import cycles or generics.
type lockContexter interface {
	TryLock() bool
	LockContext(ctx context.Context) error
}

// tryLockFor is the shared TryLockFor implementation: an immediate
// TryLock, then a deadline-bounded LockContext.
//
//lockcheck:acquires m
func tryLockFor(m lockContexter, d time.Duration) bool {
	if m.TryLock() {
		return true
	}
	if d <= 0 {
		return false
	}
	ctx, cancel := context.WithTimeout(context.Background(), d)
	defer cancel()
	return m.LockContext(ctx) == nil
}
