// Package lock implements the Malthusian lock family from Dave Dice,
// "Malthusian Locks" (EuroSys 2017), together with the classic baselines
// the paper compares against.
//
// Concurrency-restricting (CR) locks — the paper's contribution:
//
//   - MCSCR: classic MCS with an explicit passive list, unlock-time
//     culling, and Bernoulli long-term-fairness promotion (§4).
//   - LIFOCR: an explicit LIFO stack of waiters with direct handoff to the
//     most recently arrived and periodic eldest promotion (Appendix A.2).
//   - LOITER: an outer test-and-set lock with a barging fast path and an
//     inner MCS slow path holding the passive set; at most one "standby"
//     thread bridges the two, with impatience-triggered direct handoff
//     (Appendix A.1).
//
// Baselines:
//
//   - TAS / TTAS with randomized backoff (competitive succession, global
//     spinning, unbounded bypass);
//   - Ticket (FIFO, global spinning);
//   - CLH and MCS (FIFO, local spinning, direct handoff);
//   - Null (degenerate; for harness calibration only).
//
// All locks satisfy sync.Locker — and ContextMutex: acquisition can be
// bounded by a context (LockContext) or a duration (TryLockFor), with a
// cancelled waiter excised from the lock's waiter structures without
// breaking handoff (the per-lock protocols are specified in DESIGN.md
// §3). Queue-based locks allocate their waiter nodes from pools (except
// CLH, which allocates per acquisition: GC reclamation is what keeps its
// TryLock pointer-CAS immune to ABA and its abandoned-node excision
// safe) and are safe for use by any number of goroutines; no per-thread
// registration is required.
//
// # Construction
//
// Locks are usually built from a registry spec — New("mcscr-stp"),
// New("clh?wait=s&spin=1024") — so lock choice and tuning can live in
// configuration; Names lists the registered implementations and Register
// adds new ones. The typed constructors (NewMCSCR, NewTAS, ...) remain
// for callers that want the concrete types.
//
// # Instrumentation
//
// Every lock maintains the paper's CR event counters (acquires, handoffs,
// culls, reprovisions, promotions, parks, unparks, fast/slow path),
// exposed via its Stats method as a core.Snapshot. The counters are
// striped: writes land in one of ~GOMAXPROCS cache-line-padded counter
// sets selected by a cheap per-goroutine hash, so the instrumentation
// itself generates no cross-processor coherence traffic on the hot path.
// WithStats(false) removes even that cost — the lock carries a nil stats
// reference and every counter update compiles down to a single predicted
// branch. Contended lock words and per-waiter flags are cache-line
// isolated (see internal/pad) so local spinning stays local.
//
// # Waiting policies
//
// WaitSpin corresponds to the paper's "-S" variants: polite unbounded
// spinning (the poll loop yields to the Go scheduler periodically, the
// analogue of SPARC RD CCR,G0 politeness). WaitSpinThenPark corresponds to
// "-STP": a bounded spin of Policy.SpinBudget polls followed by parking on
// a per-waiter Parker, mirroring spin-then-park over lwp_park/lwp_unpark.
package lock

import (
	"sync"

	"repro/internal/core"
)

// Mutex is the common contract of every lock in this package. It is
// sync.Locker plus TryLock, which all implementations support.
type Mutex interface {
	sync.Locker
	// TryLock acquires the lock if it is immediately available and
	// reports whether it did.
	TryLock() bool
}

// WaitPolicy selects how a contended waiter waits (§5.1).
type WaitPolicy int

const (
	// WaitSpinThenPark spins for the policy's SpinBudget polls, then
	// parks. The paper's preferred policy for CR locks ("-STP").
	WaitSpinThenPark WaitPolicy = iota
	// WaitSpin spins politely without bound ("-S").
	WaitSpin
)

// String returns the paper's suffix for the policy.
func (w WaitPolicy) String() string {
	switch w {
	case WaitSpin:
		return "S"
	case WaitSpinThenPark:
		return "STP"
	default:
		return "?"
	}
}

// Option configures a lock at construction time.
type Option func(*config)

type config struct {
	policy       core.Policy
	wait         WaitPolicy
	patience     int  // LOITER standby impatience threshold
	arrivalSpins int  // LOITER fast-path attempt bound
	noStats      bool // WithStats(false): skip counter maintenance entirely
}

func defaultConfig() config {
	return config{
		policy:       core.DefaultPolicy(),
		wait:         WaitSpinThenPark,
		patience:     DefaultPatience,
		arrivalSpins: DefaultArrivalSpins,
	}
}

// newStats builds the striped stats for a lock under construction, or nil
// when instrumentation is disabled (nil *core.Stats no-ops every update).
func (c *config) newStats() *core.Stats {
	if c.noStats {
		return nil
	}
	return core.NewStats()
}

func buildConfig(opts []Option) config {
	c := defaultConfig()
	for _, o := range opts {
		o(&c)
	}
	return c
}

// WithWaitPolicy selects the waiting policy (default WaitSpinThenPark).
func WithWaitPolicy(w WaitPolicy) Option {
	return func(c *config) { c.wait = w }
}

// WithFairnessPeriod sets the Bernoulli promotion period k (promote the
// eldest passive thread with probability 1/k per unlock). 0 disables
// long-term fairness enforcement. Default 1000, as in the paper.
func WithFairnessPeriod(k uint64) Option {
	return func(c *config) { c.policy.FairnessPeriod = k }
}

// WithSpinBudget sets the spin-then-park spin budget in poll iterations.
func WithSpinBudget(n int) Option {
	return func(c *config) {
		if n < 0 {
			n = 0
		}
		c.policy.SpinBudget = n
	}
}

// WithSeed seeds the lock-local PRNG used by fairness trials, making runs
// reproducible. Zero (the default) selects a fixed internal seed.
func WithSeed(seed uint64) Option {
	return func(c *config) { c.policy.Seed = seed }
}

// WithStats enables or disables event-counter maintenance (default
// enabled). Disabled, the lock's Stats method returns a zero snapshot and
// the hot paths carry no instrumentation cost beyond one predicted
// nil-check branch per counter site.
func WithStats(enabled bool) Option {
	return func(c *config) { c.noStats = !enabled }
}
