package lock

import "testing"

// New is run at vet time by the speclit analyzer over every constant
// lock spec in the module; it must be total and deterministic so vet's
// verdict on a constant is production's verdict on the same string.
func FuzzNew(f *testing.F) {
	f.Add("mcs-stp")
	f.Add("mcscr-stp?fairness=500&spin=4096&seed=42")
	f.Add("mcscr-spt")
	f.Add("mcs-s?fairness=0")
	f.Add("tas?spin=-1")
	f.Add("MCS-STP ")
	f.Add("mcs-stp?seed=1&seed=2")
	f.Add("mcs-stp?wait=%74rue")
	f.Add("?")
	f.Add("null?stats=false")
	f.Fuzz(func(t *testing.T, s string) {
		m1, err1 := New(s)
		m2, err2 := New(s)
		if (err1 == nil) != (err2 == nil) {
			t.Fatalf("New(%q) is nondeterministic: %v vs %v", s, err1, err2)
		}
		if err1 != nil {
			if m1 != nil {
				t.Fatalf("New(%q) returned both a lock and an error %v", s, err1)
			}
			return
		}
		if m1 == nil || m2 == nil {
			t.Fatalf("New(%q) succeeded with a nil mutex", s)
		}
		// An accepted lock must actually lock.
		m1.Lock()
		m1.Unlock()
	})
}
