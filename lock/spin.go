package lock

import (
	"context"
	"runtime"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/park"
	"repro/internal/xrand"
)

// politeness: how many poll iterations between yields to the scheduler.
// The yield is the goroutine-world analogue of the paper's RD CCR,G0 /
// PAUSE polite-spin instructions — it cedes the pipeline (here: the P) to
// siblings. It is also required for progress when GOMAXPROCS is small.
const politeEvery = 64

// politePause burns one polite poll iteration: i is the running iteration
// counter.
func politePause(i int) {
	if i%politeEvery == politeEvery-1 {
		runtime.Gosched()
	}
}

// waiter states for queue-based locks. The grant protocol is:
//
//	granter:  tryGrant: CAS(waiting→granted) or CAS(parked→granted)
//	          (unparking in the latter case); an abandoned cell is skipped.
//	waiter:   spin while state != granted (budget polls);
//	          then CAS(waiting→parked) and park until granted;
//	          on context cancellation, CAS(waiting|parked→abandoned).
//
// Exactly one of the racing transitions wins: a waiter whose abandon CAS
// fails has been granted (and owns the lock); a granter whose grant CAS
// loop lands on abandoned must excise the node and pick another successor.
// Abandoned is terminal — the cancelled waiter never touches the cell
// again, so whichever path observes it owns the node's reclamation.
const (
	stateWaiting uint32 = iota
	stateGranted
	stateParked
	stateAbandoned
)

// ctxCheckEvery is how many poll iterations separate context checks in
// cancellable spin loops: frequent enough for sub-millisecond reaction,
// sparse enough that the Done-channel poll stays off the common path.
const ctxCheckEvery = 64

// waitCell is the per-waiter flag + parker shared by the queue-based
// locks. It embeds everything a granter touches, so grant/await logic
// lives in one place.
//
// Lifecycle invariant: pooled nodes embedding a waitCell are returned to
// their pool already reset (state == stateWaiting, links cleared), so the
// allocation fast path issues no stores at all — a node fresh from
// sync.Pool's New is zeroed, and zero is the reset state. The parker is
// allocated lazily on the first actual park and survives pool recycling.
type waitCell struct {
	state  atomic.Uint32
	parker *park.Parker
}

// grant marks the cell granted and wakes its waiter if parked. It returns
// true if the waiter had to be unparked (a voluntary-context-switch wake).
// Only CLH may use the unconditional swap: a CLH waiter abandons its own
// node, never its predecessor's, so the cell a CLH unlock grants cannot be
// abandoned. Every other granter must use tryGrant.
//
//lockcheck:cs
func (w *waitCell) grant() bool {
	if w.state.Swap(stateGranted) == stateParked {
		w.parker.Unpark()
		return true
	}
	return false
}

// tryGrant attempts to pass ownership to the cell's waiter. ok reports
// whether the waiter now owns the lock; unparked reports whether it had
// parked and was woken. ok == false means the waiter abandoned the
// acquisition: the caller must excise the node and pick another successor
// (the node is the caller's to reclaim).
//
//lockcheck:cs
func (w *waitCell) tryGrant() (ok, unparked bool) {
	for {
		switch s := w.state.Load(); s {
		case stateWaiting:
			if w.state.CompareAndSwap(stateWaiting, stateGranted) {
				return true, false
			}
		case stateParked:
			if w.state.CompareAndSwap(stateParked, stateGranted) {
				w.parker.Unpark()
				return true, true
			}
		case stateAbandoned:
			return false, false
		default:
			panic("lock: grant of an already-granted waiter")
		}
	}
}

// abandon moves the cell to stateAbandoned on behalf of a cancelled
// waiter, waking a parked inheritor (CLH: the successor parks on its
// predecessor's cell, so the abandoning owner must unpark it). It reports
// whether the abandon won; false means the cell was granted first and the
// caller owns the lock. Used for cells other goroutines wait on; a waiter
// abandoning the cell it itself parks on uses awaitCtx's inline CASes.
func (w *waitCell) abandon() bool {
	for {
		switch s := w.state.Load(); s {
		case stateWaiting:
			if w.state.CompareAndSwap(stateWaiting, stateAbandoned) {
				return true
			}
		case stateParked:
			if w.state.CompareAndSwap(stateParked, stateAbandoned) {
				w.parker.Unpark()
				return true
			}
		case stateGranted:
			return false
		default:
			panic("lock: abandon of an already-abandoned waiter")
		}
	}
}

// await blocks until grant, using the given policy and spin budget.
// It reports whether the waiter parked at least once.
func (w *waitCell) await(policy WaitPolicy, budget int) (parked bool) {
	if policy == WaitSpin {
		for i := 0; w.state.Load() != stateGranted; i++ {
			politePause(i)
		}
		return false
	}
	for i := 0; i < budget; i++ {
		if w.state.Load() == stateGranted {
			return false
		}
		politePause(i)
	}
	// Budget exhausted: advertise that we are parking. The parker must
	// exist before the CAS publishes stateParked — the granter reads
	// w.parker only after observing stateParked, so the CAS's release
	// ordering makes the plain parker store visible to it. If the CAS
	// fails the grant already happened.
	if w.parker == nil {
		w.parker = park.NewParker()
	}
	if !w.state.CompareAndSwap(stateWaiting, stateParked) {
		return false
	}
	for w.state.Load() != stateGranted {
		w.parker.Park() // spurious returns re-check the flag
	}
	return true
}

// awaitCtx is await with cancellation; ctx must be cancellable (callers
// route Done() == nil contexts to await). On err == nil the waiter was
// granted and owns the lock. On err != nil the cell has been atomically
// moved to stateAbandoned: the waiter must NOT free the node — ownership
// of it passes to whichever unlock path excises it — and must not touch
// the cell again. parked reports whether the waiter parked at least once.
//
// Grant-wins: when a grant races the cancellation, the CAS to abandoned
// fails, the waiter keeps the lock, and awaitCtx returns nil even though
// ctx is done. Callers surface that as a successful acquisition — the
// lock must then be unlocked as usual.
func (w *waitCell) awaitCtx(ctx context.Context, policy WaitPolicy, budget int) (parked bool, err error) {
	done := ctx.Done()
	spinOnly := policy == WaitSpin
	for i := 0; spinOnly || i < budget; i++ {
		if w.state.Load() == stateGranted {
			return false, nil
		}
		if i%ctxCheckEvery == ctxCheckEvery-1 {
			select {
			case <-done:
				if w.state.CompareAndSwap(stateWaiting, stateAbandoned) {
					return false, ctx.Err()
				}
				// The CAS can only lose to a grant (we never parked):
				// grant-wins, we own the lock.
				return false, nil
			default:
			}
		}
		politePause(i)
	}
	// Budget exhausted: advertise that we are parking (see await for the
	// parker-visibility argument; identical here).
	if w.parker == nil {
		w.parker = park.NewParker()
	}
	if !w.state.CompareAndSwap(stateWaiting, stateParked) {
		return false, nil // grant already happened
	}
	for {
		w.parker.ParkContext(ctx)
		if w.state.Load() == stateGranted {
			return true, nil
		}
		select {
		case <-done:
			if w.state.CompareAndSwap(stateParked, stateAbandoned) {
				// Our own parker may hold a stale permit; it survives pool
				// recycling as a spurious wakeup, which the park contract
				// already admits.
				return true, ctx.Err()
			}
			return true, nil // grant won the race
		default:
			// Spurious wakeup; park again.
		}
	}
}

// Shared stats accounting for the queue locks, so each event pattern has
// a single point of change.

// grantStats records a completed handoff: a handoff, plus an unpark when
// the successor had parked (a voluntary-context-switch wake).
func grantStats(s *core.Stats, unparked bool) {
	if unparked {
		s.Inc2(core.EvUnparks, core.EvHandoffs)
	} else {
		s.Inc(core.EvHandoffs)
	}
}

// slowAcquireStats records a queued acquisition.
func slowAcquireStats(s *core.Stats, parked bool) {
	if parked {
		s.Inc3(core.EvParks, core.EvSlowPath, core.EvAcquires)
	} else {
		s.Inc2(core.EvSlowPath, core.EvAcquires)
	}
}

// cancelStats records a cancelled acquisition attempt.
func cancelStats(s *core.Stats, parked bool) {
	if parked {
		s.Inc2(core.EvParks, core.EvCancels)
	} else {
		s.Inc(core.EvCancels)
	}
}

// backoff implements randomized exponential backoff for global-spinning
// locks (TAS/TTAS, ticket). Not safe for concurrent use; each acquiring
// call owns one.
type backoff struct {
	rng   xrand.State
	limit int
}

func newBackoff(seed uint64) backoff {
	b := backoff{limit: 4}
	b.rng.Seed(seed)
	return b
}

const maxBackoff = 1024

// pause waits a randomized interval and grows the bound.
func (b *backoff) pause() {
	n := 1 + int(b.rng.Uint64n(uint64(b.limit)))
	for i := 0; i < n; i++ {
		politePause(i)
	}
	if b.limit < maxBackoff {
		b.limit *= 2
	}
	runtime.Gosched()
}

// seedSource hands out distinct seeds to per-call backoff states.
var seedSource atomic.Uint64

func nextSeed() uint64 {
	return seedSource.Add(0x9e3779b97f4a7c15)
}
