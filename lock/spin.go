package lock

import (
	"runtime"
	"sync/atomic"

	"repro/internal/park"
	"repro/internal/xrand"
)

// politeness: how many poll iterations between yields to the scheduler.
// The yield is the goroutine-world analogue of the paper's RD CCR,G0 /
// PAUSE polite-spin instructions — it cedes the pipeline (here: the P) to
// siblings. It is also required for progress when GOMAXPROCS is small.
const politeEvery = 64

// politePause burns one polite poll iteration: i is the running iteration
// counter.
func politePause(i int) {
	if i%politeEvery == politeEvery-1 {
		runtime.Gosched()
	}
}

// waiter states for queue-based locks. The grant protocol is:
//
//	granter:  old := state.Swap(granted); if old == parked { parker.Unpark() }
//	waiter:   spin while state != granted (budget polls);
//	          then CAS(waiting→parked) and park until granted.
//
// A waiter that loses the CAS has already been granted.
const (
	stateWaiting uint32 = iota
	stateGranted
	stateParked
)

// waitCell is the per-waiter flag + parker shared by the queue-based
// locks. It embeds everything a granter touches, so grant/await logic
// lives in one place.
//
// Lifecycle invariant: pooled nodes embedding a waitCell are returned to
// their pool already reset (state == stateWaiting, links cleared), so the
// allocation fast path issues no stores at all — a node fresh from
// sync.Pool's New is zeroed, and zero is the reset state. The parker is
// allocated lazily on the first actual park and survives pool recycling.
type waitCell struct {
	state  atomic.Uint32
	parker *park.Parker
}

// grant marks the cell granted and wakes its waiter if parked. It returns
// true if the waiter had to be unparked (a voluntary-context-switch wake).
func (w *waitCell) grant() bool {
	if w.state.Swap(stateGranted) == stateParked {
		w.parker.Unpark()
		return true
	}
	return false
}

// await blocks until grant, using the given policy and spin budget.
// It reports whether the waiter parked at least once.
func (w *waitCell) await(policy WaitPolicy, budget int) (parked bool) {
	if policy == WaitSpin {
		for i := 0; w.state.Load() != stateGranted; i++ {
			politePause(i)
		}
		return false
	}
	for i := 0; i < budget; i++ {
		if w.state.Load() == stateGranted {
			return false
		}
		politePause(i)
	}
	// Budget exhausted: advertise that we are parking. The parker must
	// exist before the CAS publishes stateParked — the granter reads
	// w.parker only after observing stateParked, so the CAS's release
	// ordering makes the plain parker store visible to it. If the CAS
	// fails the grant already happened.
	if w.parker == nil {
		w.parker = park.NewParker()
	}
	if !w.state.CompareAndSwap(stateWaiting, stateParked) {
		return false
	}
	for w.state.Load() != stateGranted {
		w.parker.Park() // spurious returns re-check the flag
	}
	return true
}

// backoff implements randomized exponential backoff for global-spinning
// locks (TAS/TTAS, ticket). Not safe for concurrent use; each acquiring
// call owns one.
type backoff struct {
	rng   xrand.State
	limit int
}

func newBackoff(seed uint64) backoff {
	b := backoff{limit: 4}
	b.rng.Seed(seed)
	return b
}

const maxBackoff = 1024

// pause waits a randomized interval and grows the bound.
func (b *backoff) pause() {
	n := 1 + int(b.rng.Uint64n(uint64(b.limit)))
	for i := 0; i < n; i++ {
		politePause(i)
	}
	if b.limit < maxBackoff {
		b.limit *= 2
	}
	runtime.Gosched()
}

// seedSource hands out distinct seeds to per-call backoff states.
var seedSource atomic.Uint64

func nextSeed() uint64 {
	return seedSource.Add(0x9e3779b97f4a7c15)
}
