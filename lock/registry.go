package lock

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/spec"
)

// Instrumented is satisfied by every lock that maintains the CR event
// counters; harness code uses it to read Stats from a Mutex built by New.
type Instrumented interface {
	Stats() core.Snapshot
}

// Builder constructs a lock from construction options. For
// policy-suffixed names ("-s"/"-stp") the builder appends its wait policy
// after the caller's options, so the name always wins over a conflicting
// wait= parameter.
type Builder func(opts ...Option) Mutex

// Registration describes one lock implementation to the registry. Each
// lock file self-registers in its init, so the registry — not any
// consumer — is the single enumeration of lock names in the module.
// The machinery (aliases, sorted Names, spec resolution) is the generic
// internal/spec registry; only the Builder shape is lock-specific.
type Registration = spec.Registration[Builder]

var registry = spec.NewRegistry[Builder]("lock", "lock")

// Register adds a lock implementation to the registry. It panics on an
// empty name, a nil builder, or a name/alias collision — registration is
// an init-time act and a collision is a programming error.
func Register(r Registration) {
	if r.Name == "" || r.Build == nil {
		panic("lock: Register with empty name or nil builder")
	}
	registry.Register(r)
}

// Names returns the sorted canonical names of every registered lock.
func Names() []string { return registry.Names() }

// Lookup resolves a name or alias to its Registration.
func Lookup(name string) (Registration, bool) { return registry.Lookup(name) }

// New builds a lock from a spec string. A spec is a registered name,
// optionally followed by URL-style parameters:
//
//	"mcscr-stp"
//	"mcscr-stp?fairness=500&spin=4096&seed=42"
//	"clh?wait=s"
//	"loiter?patience=16&arrivals=8&stats=false"
//
// Parameters (each maps onto the corresponding Option):
//
//	fairness=N   Bernoulli promotion period (0 disables)     WithFairnessPeriod
//	spin=N       spin-then-park poll budget                  WithSpinBudget
//	seed=N       lock-local PRNG seed                        WithSeed
//	wait=s|stp   waiting policy (spin / spin-then-park)      WithWaitPolicy
//	patience=N   LOITER standby impatience threshold         WithPatience
//	arrivals=N   LOITER bounded arrival attempts             WithArrivalSpins
//	stats=BOOL   event-counter maintenance                   WithStats
//
// Spec parameters are applied after opts, so the spec overrides
// programmatic defaults; a policy suffix in the name ("mcs-s") overrides
// even a wait= parameter. Every lock New can build satisfies ContextMutex
// (and Instrumented, though WithStats(false) makes snapshots zero).
// Malformed specs — unknown name, unknown or duplicated parameter, bad
// value — return a descriptive error and a nil Mutex.
func New(spec string, opts ...Option) (Mutex, error) {
	reg, query, err := registry.Resolve(spec)
	if err != nil {
		return nil, err
	}
	specOpts, err := grammar.Parse(spec, query)
	if err != nil {
		return nil, err
	}
	if len(specOpts) > 0 {
		opts = append(append([]Option(nil), opts...), specOpts...)
	}
	return reg.Build(opts...), nil
}

// MustNew is New for tests, examples, and initialization paths where a
// malformed spec is a programming error; it panics instead of returning
// one.
func MustNew(spec string, opts ...Option) Mutex {
	m, err := New(spec, opts...)
	if err != nil {
		panic(err)
	}
	return m
}

// grammar is the lock parameter table (see New's doc comment for the
// key-by-key meaning). The generic machinery rejects unknown and
// duplicated parameters and wraps each parser's error with the spec, key,
// and offending value.
var grammar = spec.NewGrammar[Option]("lock", map[string]spec.ParamFunc[Option]{
	"fairness": func(v string) (Option, error) {
		n, err := spec.Uint(v)
		if err != nil {
			return nil, err
		}
		return WithFairnessPeriod(n), nil
	},
	"spin": func(v string) (Option, error) {
		n, err := spec.NonNegInt(v)
		if err != nil {
			return nil, err
		}
		return WithSpinBudget(n), nil
	},
	"seed": func(v string) (Option, error) {
		n, err := spec.Uint(v)
		if err != nil {
			return nil, err
		}
		return WithSeed(n), nil
	},
	"wait": parseWait,
	"patience": func(v string) (Option, error) {
		n, err := spec.PosInt(v)
		if err != nil {
			return nil, err
		}
		return WithPatience(n), nil
	},
	"arrivals": func(v string) (Option, error) {
		n, err := spec.PosInt(v)
		if err != nil {
			return nil, err
		}
		return WithArrivalSpins(n), nil
	},
	"stats": func(v string) (Option, error) {
		b, err := spec.Bool(v)
		if err != nil {
			return nil, err
		}
		return WithStats(b), nil
	},
})

func parseWait(v string) (Option, error) {
	switch strings.ToLower(v) {
	case "s", "spin":
		return WithWaitPolicy(WaitSpin), nil
	case "stp", "spinpark", "spin-then-park":
		return WithWaitPolicy(WaitSpinThenPark), nil
	}
	return nil, fmt.Errorf("want s or stp")
}
