package lock

import (
	"fmt"
	"net/url"
	"sort"
	"strconv"
	"strings"
	"sync"

	"repro/internal/core"
)

// Instrumented is satisfied by every lock that maintains the CR event
// counters; harness code uses it to read Stats from a Mutex built by New.
type Instrumented interface {
	Stats() core.Snapshot
}

// Builder constructs a lock from construction options.
type Builder func(opts ...Option) Mutex

// Registration describes one lock implementation to the registry. Each
// lock file self-registers in its init, so the registry — not any
// consumer — is the single enumeration of lock names in the module.
type Registration struct {
	// Name is the canonical spec name, lower-case (e.g. "mcscr-stp").
	Name string
	// Aliases resolve in New but are not listed by Names (e.g. "mcscr").
	Aliases []string
	// Summary is a one-line human description for -help style listings.
	Summary string
	// Build constructs the lock. For policy-suffixed names ("-s"/"-stp")
	// the builder appends its wait policy after the caller's options, so
	// the name always wins over a conflicting wait= parameter.
	Build Builder
}

var registry = struct {
	sync.RWMutex
	byName    map[string]Registration // canonical names and aliases
	canonical []string                // sorted canonical names
}{byName: make(map[string]Registration)}

// Register adds a lock implementation to the registry. It panics on an
// empty name, a nil builder, or a name/alias collision — registration is
// an init-time act and a collision is a programming error.
func Register(r Registration) {
	if r.Name == "" || r.Build == nil {
		panic("lock: Register with empty name or nil builder")
	}
	registry.Lock()
	defer registry.Unlock()
	for _, name := range append([]string{r.Name}, r.Aliases...) {
		name = strings.ToLower(name)
		if _, dup := registry.byName[name]; dup {
			panic(fmt.Sprintf("lock: duplicate registration of %q", name))
		}
		registry.byName[name] = r
	}
	registry.canonical = append(registry.canonical, strings.ToLower(r.Name))
	sort.Strings(registry.canonical)
}

// Names returns the sorted canonical names of every registered lock.
func Names() []string {
	registry.RLock()
	defer registry.RUnlock()
	out := make([]string, len(registry.canonical))
	copy(out, registry.canonical)
	return out
}

// Lookup resolves a name or alias to its Registration.
func Lookup(name string) (Registration, bool) {
	registry.RLock()
	defer registry.RUnlock()
	r, ok := registry.byName[strings.ToLower(strings.TrimSpace(name))]
	return r, ok
}

// New builds a lock from a spec string. A spec is a registered name,
// optionally followed by URL-style parameters:
//
//	"mcscr-stp"
//	"mcscr-stp?fairness=500&spin=4096&seed=42"
//	"clh?wait=s"
//	"loiter?patience=16&arrivals=8&stats=false"
//
// Parameters (each maps onto the corresponding Option):
//
//	fairness=N   Bernoulli promotion period (0 disables)     WithFairnessPeriod
//	spin=N       spin-then-park poll budget                  WithSpinBudget
//	seed=N       lock-local PRNG seed                        WithSeed
//	wait=s|stp   waiting policy (spin / spin-then-park)      WithWaitPolicy
//	patience=N   LOITER standby impatience threshold         WithPatience
//	arrivals=N   LOITER bounded arrival attempts             WithArrivalSpins
//	stats=BOOL   event-counter maintenance                   WithStats
//
// Spec parameters are applied after opts, so the spec overrides
// programmatic defaults; a policy suffix in the name ("mcs-s") overrides
// even a wait= parameter. Every lock New can build satisfies ContextMutex
// (and Instrumented, though WithStats(false) makes snapshots zero).
// Malformed specs — unknown name, unknown or duplicated parameter, bad
// value — return a descriptive error and a nil Mutex.
func New(spec string, opts ...Option) (Mutex, error) {
	name, query, hasQuery := strings.Cut(spec, "?")
	reg, ok := Lookup(name)
	if !ok {
		return nil, fmt.Errorf("lock: unknown lock %q in spec %q (known locks: %s)",
			strings.TrimSpace(name), spec, strings.Join(Names(), ", "))
	}
	if hasQuery {
		specOpts, err := parseParams(spec, query)
		if err != nil {
			return nil, err
		}
		opts = append(append([]Option(nil), opts...), specOpts...)
	}
	return reg.Build(opts...), nil
}

// MustNew is New for tests, examples, and initialization paths where a
// malformed spec is a programming error; it panics instead of returning
// one.
func MustNew(spec string, opts ...Option) Mutex {
	m, err := New(spec, opts...)
	if err != nil {
		panic(err)
	}
	return m
}

// specParams enumerates the valid parameter keys, for error messages.
const specParams = "fairness, spin, seed, wait, patience, arrivals, stats"

func parseParams(spec, query string) ([]Option, error) {
	values, err := url.ParseQuery(query)
	if err != nil {
		return nil, fmt.Errorf("lock: spec %q: malformed parameters: %v", spec, err)
	}
	keys := make([]string, 0, len(values))
	for k := range values {
		keys = append(keys, k)
	}
	sort.Strings(keys) // deterministic error selection
	var opts []Option
	for _, k := range keys {
		vs := values[k]
		if len(vs) > 1 {
			return nil, fmt.Errorf("lock: spec %q: parameter %q given %d times", spec, k, len(vs))
		}
		v := vs[0]
		bad := func(err error) error {
			return fmt.Errorf("lock: spec %q: bad value %q for %q: %v", spec, v, k, err)
		}
		switch k {
		case "fairness":
			n, err := strconv.ParseUint(v, 10, 64)
			if err != nil {
				return nil, bad(err)
			}
			opts = append(opts, WithFairnessPeriod(n))
		case "spin":
			n, err := strconv.Atoi(v)
			if err != nil || n < 0 {
				return nil, bad(fmt.Errorf("want a non-negative integer"))
			}
			opts = append(opts, WithSpinBudget(n))
		case "seed":
			n, err := strconv.ParseUint(v, 10, 64)
			if err != nil {
				return nil, bad(err)
			}
			opts = append(opts, WithSeed(n))
		case "wait":
			switch strings.ToLower(v) {
			case "s", "spin":
				opts = append(opts, WithWaitPolicy(WaitSpin))
			case "stp", "spinpark", "spin-then-park":
				opts = append(opts, WithWaitPolicy(WaitSpinThenPark))
			default:
				return nil, bad(fmt.Errorf("want s or stp"))
			}
		case "patience":
			n, err := strconv.Atoi(v)
			if err != nil || n < 1 {
				return nil, bad(fmt.Errorf("want a positive integer"))
			}
			opts = append(opts, WithPatience(n))
		case "arrivals":
			n, err := strconv.Atoi(v)
			if err != nil || n < 1 {
				return nil, bad(fmt.Errorf("want a positive integer"))
			}
			opts = append(opts, WithArrivalSpins(n))
		case "stats":
			b, err := strconv.ParseBool(v)
			if err != nil {
				return nil, bad(err)
			}
			opts = append(opts, WithStats(b))
		default:
			return nil, fmt.Errorf("lock: spec %q: unknown parameter %q (valid: %s)",
				spec, k, specParams)
		}
	}
	return opts, nil
}
