package lock

import (
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/pad"
)

// MCSCR is the paper's Malthusian MCS lock (§4): a classic MCS lock whose
// unlock operator performs concurrency restriction by editing the MCS
// chain.
//
//   - Culling: at unlock time, if there are intermediate nodes between the
//     owner's node and the tail, the lock has surplus waiters. One
//     intermediate node is excised and pushed onto the head of the
//     explicit passive list. Repeated culling converges to the desirable
//     state where at most one ACS member waits at any moment.
//   - Reprovisioning: if the chain is empty except for the owner but the
//     passive list is not, the head of the passive list (the most recently
//     arrived passive thread) is grafted back and granted ownership,
//     keeping the policy work conserving.
//   - Long-term fairness: with probability 1/FairnessPeriod per unlock,
//     the tail of the passive list — the least recently arrived, most
//     starved thread — is grafted immediately after the owner and granted
//     ownership.
//
// All CR machinery lives in the unlock path; the lock (arrival) path is
// unchanged classic MCS. Operations on the passive list occur while the
// lock is held, so the passive list is protected by the lock itself; the
// paper notes this slightly lengthens the critical section but the added
// work is short and constant time.
//
// The ACS is implicit (owner + threads in their non-critical sections +
// the at-most-one waiting thread); the PS is the explicit list.
type MCSCR struct {
	// tail is the word every arriving thread swaps; it lives alone on its
	// cache line so arrivals do not invalidate the holder-only fields.
	tail atomic.Pointer[mcsNode]
	_    [pad.CacheLineSize - 8]byte

	owner *mcsNode // node of current holder; lock-protected

	// Passive set: intrusive doubly-linked list, lock-protected.
	// psHead is the most recently culled thread, psTail the eldest.
	// psSize is written under the lock but read lock-free by monitors
	// (PassiveSize), hence atomic.
	psHead *mcsNode
	psTail *mcsNode
	psSize atomic.Int64

	trial *core.Trial
	cfg   config
	stats *core.Stats
}

// NewMCSCR returns an unlocked Malthusian MCS lock. The default waiting
// policy is spin-then-park (MCSCR-STP); use WithWaitPolicy(WaitSpin) for
// MCSCR-S.
func NewMCSCR(opts ...Option) *MCSCR {
	cfg := buildConfig(opts)
	return &MCSCR{
		cfg:   cfg,
		trial: core.NewTrial(cfg.policy.FairnessPeriod, cfg.policy.Seed),
		stats: cfg.newStats(),
	}
}

// Lock enqueues the caller on the MCS chain and waits for handoff. Absent
// sufficient contention MCSCR behaves precisely like classic MCS.
func (l *MCSCR) Lock() {
	n := newMCSNode()
	pred := l.tail.Swap(n)
	if pred == nil {
		l.owner = n
		l.stats.Inc2(core.EvFastPath, core.EvAcquires)
		return
	}
	pred.next.Store(n)
	parked := n.await(l.cfg.wait, l.cfg.policy.SpinBudget)
	l.owner = n
	if parked {
		l.stats.Inc3(core.EvParks, core.EvSlowPath, core.EvAcquires)
	} else {
		l.stats.Inc2(core.EvSlowPath, core.EvAcquires)
	}
}

// TryLock acquires the lock only if the chain is empty. The failure path
// is allocation-free: a node is drawn from the pool only after the chain
// is observed empty.
func (l *MCSCR) TryLock() bool {
	if l.tail.Load() != nil {
		return false
	}
	n := newMCSNode()
	if l.tail.CompareAndSwap(nil, n) {
		l.owner = n
		l.stats.Inc2(core.EvFastPath, core.EvAcquires)
		return true
	}
	freeMCSNode(n)
	return false
}

// Unlock releases the lock, performing culling, reprovisioning, or a
// fairness promotion as the chain and passive list dictate.
func (l *MCSCR) Unlock() {
	n := l.owner
	if n == nil {
		panic("lock: MCSCR.Unlock of unlocked mutex")
	}
	l.owner = nil

	// Long-term fairness graft: cede ownership to the eldest passive
	// thread on a successful Bernoulli trial.
	if l.psSize.Load() > 0 && l.trial.Promote() {
		t := l.psPopTail()
		l.graftAndGrant(n, t)
		l.stats.Inc(core.EvPromotions)
		return
	}

	succ := n.next.Load()
	if succ == nil {
		// No waiter visible on the chain. Work conservation: pull the
		// most recently arrived passive thread back into the ACS.
		if l.psSize.Load() > 0 {
			t := l.psPopHead()
			if l.tail.CompareAndSwap(n, t) {
				l.finishGrant(t)
				l.stats.Inc(core.EvReprovisions)
				freeMCSNode(n)
				return
			}
			// An arrival raced with us; restore t and hand off to the
			// arriving thread below.
			l.psPushHead(t)
		}
		if l.tail.CompareAndSwap(n, nil) {
			freeMCSNode(n)
			return
		}
		// An arrival swapped the tail but has not linked yet; wait for
		// the link to appear.
		for succ = n.next.Load(); succ == nil; succ = n.next.Load() {
			politePause(1)
		}
	}

	// Culling: if succ is not the tail there are surplus waiters; excise
	// succ — the oldest waiter — into the passive set and hand off to the
	// next in line. One cull per unlock suffices to converge.
	if nn := succ.next.Load(); nn != nil {
		succ.next.Store(nil)
		l.psPushHead(succ)
		l.stats.Inc(core.EvCulls)
		succ = nn
	}
	l.finishGrant(succ)
	freeMCSNode(n)
}

// graftAndGrant inserts t immediately after the departing owner's node n
// and grants it ownership, preserving the rest of the chain.
func (l *MCSCR) graftAndGrant(n, t *mcsNode) {
	succ := n.next.Load()
	if succ == nil {
		if l.tail.CompareAndSwap(n, t) {
			l.finishGrant(t)
			freeMCSNode(n)
			return
		}
		for succ = n.next.Load(); succ == nil; succ = n.next.Load() {
			politePause(1)
		}
	}
	t.next.Store(succ)
	l.finishGrant(t)
	freeMCSNode(n)
}

func (l *MCSCR) finishGrant(succ *mcsNode) {
	if succ.grant() {
		l.stats.Inc2(core.EvUnparks, core.EvHandoffs)
	} else {
		l.stats.Inc(core.EvHandoffs)
	}
}

// Passive-list operations. All run in the unlock path while the lock is
// held; the MCS lock protects the list (§4).

func (l *MCSCR) psPushHead(n *mcsNode) {
	n.prev = nil
	if l.psHead == nil {
		l.psHead, l.psTail = n, n
	} else {
		n.next.Store(l.psHead)
		l.psHead.prev = n
		l.psHead = n
	}
	l.psSize.Add(1)
}

func (l *MCSCR) psPopHead() *mcsNode {
	n := l.psHead
	next := n.next.Load()
	l.psHead = next
	if next == nil {
		l.psTail = nil
	} else {
		next.prev = nil
	}
	n.next.Store(nil)
	n.prev = nil
	l.psSize.Add(-1)
	return n
}

func (l *MCSCR) psPopTail() *mcsNode {
	n := l.psTail
	prev := n.prev
	l.psTail = prev
	if prev == nil {
		l.psHead = nil
	} else {
		prev.next.Store(nil)
	}
	n.next.Store(nil)
	n.prev = nil
	l.psSize.Add(-1)
	return n
}

// PassiveSize reports the current size of the passive set. Safe to call
// concurrently with lock traffic (the counter is atomic); the value is a
// point-in-time observation for monitoring and tests.
func (l *MCSCR) PassiveSize() int { return int(l.psSize.Load()) }

// Stats returns a snapshot of the lock's event counters.
func (l *MCSCR) Stats() core.Snapshot { return l.stats.Read() }

var _ Mutex = (*MCSCR)(nil)
