package lock

import (
	"repro/internal/core"
	"sync/atomic"
)

// MCSCR is the paper's Malthusian MCS lock (§4): a classic MCS lock whose
// unlock operator performs concurrency restriction by editing the MCS
// chain.
//
//   - Culling: at unlock time, if there are intermediate nodes between the
//     owner's node and the tail, the lock has surplus waiters. One
//     intermediate node is excised and pushed onto the head of the
//     explicit passive list. Repeated culling converges to the desirable
//     state where at most one ACS member waits at any moment.
//   - Reprovisioning: if the chain is empty except for the owner but the
//     passive list is not, the head of the passive list (the most recently
//     arrived passive thread) is grafted back and granted ownership,
//     keeping the policy work conserving.
//   - Long-term fairness: with probability 1/FairnessPeriod per unlock,
//     the tail of the passive list — the least recently arrived, most
//     starved thread — is grafted immediately after the owner and granted
//     ownership.
//
// All CR machinery lives in the unlock path; the lock (arrival) path is
// unchanged classic MCS. Operations on the passive list occur while the
// lock is held, so the passive list is protected by the lock itself; the
// paper notes this slightly lengthens the critical section but the added
// work is short and constant time.
//
// The ACS is implicit (owner + threads in their non-critical sections +
// the at-most-one waiting thread); the PS is the explicit list.
type MCSCR struct {
	tail  atomic.Pointer[mcsNode]
	owner *mcsNode // node of current holder; lock-protected

	// Passive set: intrusive doubly-linked list, lock-protected.
	// psHead is the most recently culled thread, psTail the eldest.
	psHead *mcsNode
	psTail *mcsNode
	psSize int

	trial *core.Trial
	cfg   config
	stats core.Stats
}

// NewMCSCR returns an unlocked Malthusian MCS lock. The default waiting
// policy is spin-then-park (MCSCR-STP); use WithWaitPolicy(WaitSpin) for
// MCSCR-S.
func NewMCSCR(opts ...Option) *MCSCR {
	cfg := buildConfig(opts)
	return &MCSCR{
		cfg:   cfg,
		trial: core.NewTrial(cfg.policy.FairnessPeriod, cfg.policy.Seed),
	}
}

// Lock enqueues the caller on the MCS chain and waits for handoff. Absent
// sufficient contention MCSCR behaves precisely like classic MCS.
func (l *MCSCR) Lock() {
	n := newMCSNode()
	pred := l.tail.Swap(n)
	if pred == nil {
		l.owner = n
		l.stats.FastPath.Add(1)
		l.stats.Acquires.Add(1)
		return
	}
	pred.next.Store(n)
	if n.await(l.cfg.wait, l.cfg.policy.SpinBudget) {
		l.stats.Parks.Add(1)
	}
	l.owner = n
	l.stats.SlowPath.Add(1)
	l.stats.Acquires.Add(1)
}

// TryLock acquires the lock only if the chain is empty.
func (l *MCSCR) TryLock() bool {
	n := newMCSNode()
	if l.tail.CompareAndSwap(nil, n) {
		l.owner = n
		l.stats.FastPath.Add(1)
		l.stats.Acquires.Add(1)
		return true
	}
	freeMCSNode(n)
	return false
}

// Unlock releases the lock, performing culling, reprovisioning, or a
// fairness promotion as the chain and passive list dictate.
func (l *MCSCR) Unlock() {
	n := l.owner
	if n == nil {
		panic("lock: MCSCR.Unlock of unlocked mutex")
	}
	l.owner = nil

	// Long-term fairness graft: cede ownership to the eldest passive
	// thread on a successful Bernoulli trial.
	if l.psSize > 0 && l.trial.Promote() {
		t := l.psPopTail()
		l.graftAndGrant(n, t)
		l.stats.Promotions.Add(1)
		return
	}

	succ := n.next.Load()
	if succ == nil {
		// No waiter visible on the chain. Work conservation: pull the
		// most recently arrived passive thread back into the ACS.
		if l.psSize > 0 {
			t := l.psPopHead()
			if l.tail.CompareAndSwap(n, t) {
				l.finishGrant(t)
				l.stats.Reprovisions.Add(1)
				freeMCSNode(n)
				return
			}
			// An arrival raced with us; restore t and hand off to the
			// arriving thread below.
			l.psPushHead(t)
		}
		if l.tail.CompareAndSwap(n, nil) {
			freeMCSNode(n)
			return
		}
		// An arrival swapped the tail but has not linked yet; wait for
		// the link to appear.
		for succ = n.next.Load(); succ == nil; succ = n.next.Load() {
			politePause(1)
		}
	}

	// Culling: if succ is not the tail there are surplus waiters; excise
	// succ — the oldest waiter — into the passive set and hand off to the
	// next in line. One cull per unlock suffices to converge.
	if nn := succ.next.Load(); nn != nil {
		succ.next.Store(nil)
		l.psPushHead(succ)
		l.stats.Culls.Add(1)
		succ = nn
	}
	l.finishGrant(succ)
	freeMCSNode(n)
}

// graftAndGrant inserts t immediately after the departing owner's node n
// and grants it ownership, preserving the rest of the chain.
func (l *MCSCR) graftAndGrant(n, t *mcsNode) {
	succ := n.next.Load()
	if succ == nil {
		if l.tail.CompareAndSwap(n, t) {
			l.finishGrant(t)
			freeMCSNode(n)
			return
		}
		for succ = n.next.Load(); succ == nil; succ = n.next.Load() {
			politePause(1)
		}
	}
	t.next.Store(succ)
	l.finishGrant(t)
	freeMCSNode(n)
}

func (l *MCSCR) finishGrant(succ *mcsNode) {
	if succ.grant() {
		l.stats.Unparks.Add(1)
	}
	l.stats.Handoffs.Add(1)
}

// Passive-list operations. All run in the unlock path while the lock is
// held; the MCS lock protects the list (§4).

func (l *MCSCR) psPushHead(n *mcsNode) {
	n.prev = nil
	if l.psHead == nil {
		l.psHead, l.psTail = n, n
	} else {
		n.next.Store(l.psHead)
		l.psHead.prev = n
		l.psHead = n
	}
	l.psSize++
}

func (l *MCSCR) psPopHead() *mcsNode {
	n := l.psHead
	next := n.next.Load()
	l.psHead = next
	if next == nil {
		l.psTail = nil
	} else {
		next.prev = nil
	}
	n.next.Store(nil)
	n.prev = nil
	l.psSize--
	return n
}

func (l *MCSCR) psPopTail() *mcsNode {
	n := l.psTail
	prev := n.prev
	l.psTail = prev
	if prev == nil {
		l.psHead = nil
	} else {
		prev.next.Store(nil)
	}
	n.next.Store(nil)
	n.prev = nil
	l.psSize--
	return n
}

// PassiveSize reports the current size of the passive set. It is a racy
// read intended for monitoring and tests.
func (l *MCSCR) PassiveSize() int { return l.psSize }

// Stats returns a snapshot of the lock's event counters.
func (l *MCSCR) Stats() core.Snapshot { return l.stats.Read() }

var _ Mutex = (*MCSCR)(nil)
