package lock

import (
	"context"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/pad"
)

// MCSCR is the paper's Malthusian MCS lock (§4): a classic MCS lock whose
// unlock operator performs concurrency restriction by editing the MCS
// chain.
//
//   - Culling: at unlock time, if there are intermediate nodes between the
//     owner's node and the tail, the lock has surplus waiters. One
//     intermediate node is excised and pushed onto the head of the
//     explicit passive list. Repeated culling converges to the desirable
//     state where at most one ACS member waits at any moment.
//   - Reprovisioning: if the chain is empty except for the owner but the
//     passive list is not, the head of the passive list (the most recently
//     arrived passive thread) is grafted back and granted ownership,
//     keeping the policy work conserving.
//   - Long-term fairness: with probability 1/FairnessPeriod per unlock,
//     the tail of the passive list — the least recently arrived, most
//     starved thread — is grafted immediately after the owner and granted
//     ownership.
//
// All CR machinery lives in the unlock path; the lock (arrival) path is
// unchanged classic MCS. Operations on the passive list occur while the
// lock is held, so the passive list is protected by the lock itself; the
// paper notes this slightly lengthens the critical section but the added
// work is short and constant time.
//
// The ACS is implicit (owner + threads in their non-critical sections +
// the at-most-one waiting thread); the PS is the explicit list.
type MCSCR struct {
	// tail is the word every arriving thread swaps; it lives alone on its
	// cache line so arrivals do not invalidate the holder-only fields.
	tail atomic.Pointer[mcsNode]
	_    [pad.CacheLineSize - 8]byte

	owner *mcsNode // node of current holder; lock-protected

	// Passive set: intrusive doubly-linked list, lock-protected.
	// psHead is the most recently culled thread, psTail the eldest.
	// psSize is written under the lock but read lock-free by monitors
	// (PassiveSize), hence atomic.
	psHead *mcsNode
	psTail *mcsNode
	psSize atomic.Int64

	trial *core.Trial
	cfg   config
	stats *core.Stats
}

// NewMCSCR returns an unlocked Malthusian MCS lock. The default waiting
// policy is spin-then-park (MCSCR-STP); use WithWaitPolicy(WaitSpin) for
// MCSCR-S.
func NewMCSCR(opts ...Option) *MCSCR {
	cfg := buildConfig(opts)
	return &MCSCR{
		cfg:   cfg,
		trial: core.NewTrial(cfg.policy.FairnessPeriod, cfg.policy.Seed),
		stats: cfg.newStats(),
	}
}

func init() {
	Register(Registration{
		Name:    "mcscr-stp",
		Aliases: []string{"mcscr"},
		Summary: "Malthusian MCS (§4): culling, reprovisioning, Bernoulli fairness; spin-then-park",
		Build:   func(opts ...Option) Mutex { return NewMCSCR(append(opts, WithWaitPolicy(WaitSpinThenPark))...) },
	})
	Register(Registration{
		Name:    "mcscr-s",
		Summary: "Malthusian MCS (§4) with unbounded polite spinning",
		Build:   func(opts ...Option) Mutex { return NewMCSCR(append(opts, WithWaitPolicy(WaitSpin))...) },
	})
}

// Lock enqueues the caller on the MCS chain and waits for handoff. Absent
// sufficient contention MCSCR behaves precisely like classic MCS.
func (l *MCSCR) Lock() { l.lockChain(nil) }

// LockContext is Lock with cancellation. A cancelled waiter abandons its
// node in place — whether it sits on the MCS chain or has been culled to
// the passive list — and the unlock paths excise it: the chain walk skips
// abandoned successors, and the passive-list pops filter abandoned
// entries before granting. See ContextMutex and DESIGN.md.
func (l *MCSCR) LockContext(ctx context.Context) error {
	if ctx.Done() == nil {
		return l.lockChain(nil)
	}
	if err := ctx.Err(); err != nil {
		l.stats.Inc(core.EvCancels)
		return err
	}
	return l.lockChain(ctx)
}

// lockChain is the acquisition body shared by Lock and LockContext; a
// nil ctx waits indefinitely and cannot fail.
func (l *MCSCR) lockChain(ctx context.Context) error {
	n := newMCSNode()
	pred := l.tail.Swap(n)
	if pred == nil {
		l.owner = n
		l.stats.Inc2(core.EvFastPath, core.EvAcquires)
		return nil
	}
	pred.next.Store(n)
	var parked bool
	var err error
	if ctx == nil {
		parked = n.await(l.cfg.wait, l.cfg.policy.SpinBudget)
	} else {
		parked, err = n.awaitCtx(ctx, l.cfg.wait, l.cfg.policy.SpinBudget)
	}
	if err != nil {
		// The node is now stateAbandoned; an unlock path owns it.
		cancelStats(l.stats, parked)
		return err
	}
	l.owner = n
	slowAcquireStats(l.stats, parked)
	return nil
}

// TryLockFor is TryLock with a patience bound, built on LockContext.
func (l *MCSCR) TryLockFor(d time.Duration) bool { return tryLockFor(l, d) }

// TryLock acquires the lock only if the chain is empty. The failure path
// is allocation-free: a node is drawn from the pool only after the chain
// is observed empty.
func (l *MCSCR) TryLock() bool {
	if l.tail.Load() != nil {
		return false
	}
	n := newMCSNode()
	if l.tail.CompareAndSwap(nil, n) {
		l.owner = n
		l.stats.Inc2(core.EvFastPath, core.EvAcquires)
		return true
	}
	freeMCSNode(n)
	return false
}

// Unlock releases the lock, performing culling, reprovisioning, or a
// fairness promotion as the chain and passive list dictate.
//
//lockcheck:cs
func (l *MCSCR) Unlock() {
	n := l.owner
	if n == nil {
		panic("lock: MCSCR.Unlock of unlocked mutex")
	}
	l.owner = nil

	// Long-term fairness graft: cede ownership to the eldest passive
	// thread on a successful Bernoulli trial. Abandoned entries at the
	// tail of the PS are reclaimed on the way; if the whole PS turns out
	// to be abandoned, fall through to the ordinary release.
	if l.psSize.Load() > 0 && l.trial.Promote() {
		if t := l.psPopLiveTail(); t != nil {
			l.graftAndGrant(n, t)
			l.stats.Inc(core.EvPromotions)
			return
		}
	}
	l.releaseChain(n)
}

// releaseChain hands the lock from the departing head n to the first live
// successor: the ordinary MCS handoff plus the CR edits (culling,
// reprovisioning) and the cancellation edits (excising abandoned nodes).
// Each iteration either completes the release or excises one node.
//
//lockcheck:cs
func (l *MCSCR) releaseChain(n *mcsNode) {
	for {
		succ := n.next.Load()
		if succ == nil {
			// No waiter visible on the chain. Work conservation: pull the
			// most recently arrived live passive thread back into the ACS.
			if l.psSize.Load() > 0 {
				if t := l.psPopLiveHead(); t != nil {
					if l.tail.CompareAndSwap(n, t) {
						freeMCSNode(n)
						if ok, unparked := t.tryGrant(); ok {
							l.stats.Inc(core.EvReprovisions)
							grantStats(l.stats, unparked)
							return
						}
						// t abandoned in the handoff window; it is now the
						// departing head of a (possibly growing) chain.
						l.stats.Inc(core.EvAbandons)
						n = t
						continue
					}
					// An arrival raced with us; restore t and hand off to
					// the arriving thread below.
					l.psPushHead(t)
				}
			}
			if l.tail.CompareAndSwap(n, nil) {
				freeMCSNode(n)
				return
			}
			// An arrival swapped the tail but has not linked yet; wait for
			// the link to appear.
			for succ = n.next.Load(); succ == nil; succ = n.next.Load() {
				politePause(1)
			}
		}

		// Culling: if succ is not the tail there are surplus waiters;
		// excise succ — the oldest waiter — into the passive set (or
		// reclaim it outright if it has already abandoned) and hand off to
		// the next in line. One cull per unlock suffices to converge.
		if nn := succ.next.Load(); nn != nil {
			succ.next.Store(nil)
			if succ.state.Load() == stateAbandoned {
				freeMCSNode(succ)
				l.stats.Inc(core.EvAbandons)
			} else {
				l.psPushHead(succ)
				l.stats.Inc(core.EvCulls)
			}
			succ = nn
		}
		if ok, unparked := succ.tryGrant(); ok {
			grantStats(l.stats, unparked)
			freeMCSNode(n)
			return
		}
		// succ abandoned: it becomes the departing head and the walk
		// continues behind it.
		l.stats.Inc(core.EvAbandons)
		freeMCSNode(n)
		n = succ
	}
}

// graftAndGrant inserts t immediately after the departing owner's node n
// and grants it ownership, preserving the rest of the chain. If t
// abandons in the window between the passive-list pop and the grant, the
// release falls back to the ordinary chain walk with t as departing head.
func (l *MCSCR) graftAndGrant(n, t *mcsNode) {
	succ := n.next.Load()
	if succ == nil {
		if l.tail.CompareAndSwap(n, t) {
			freeMCSNode(n)
			if ok, unparked := t.tryGrant(); ok {
				grantStats(l.stats, unparked)
				return
			}
			l.stats.Inc(core.EvAbandons)
			l.releaseChain(t)
			return
		}
		for succ = n.next.Load(); succ == nil; succ = n.next.Load() {
			politePause(1)
		}
	}
	t.next.Store(succ)
	freeMCSNode(n)
	if ok, unparked := t.tryGrant(); ok {
		grantStats(l.stats, unparked)
		return
	}
	l.stats.Inc(core.EvAbandons)
	l.releaseChain(t)
}

// Passive-list operations. All run in the unlock path while the lock is
// held; the MCS lock protects the list (§4). A waiter parked on the PS
// may abandon (cancelled LockContext) at any moment — only its state word
// changes; the list links stay lock-protected — so the pop paths filter:
// psPopLiveHead/psPopLiveTail reclaim abandoned entries until they find a
// live one.

func (l *MCSCR) psPopLiveHead() *mcsNode { return l.psPopLive(false) }
func (l *MCSCR) psPopLiveTail() *mcsNode { return l.psPopLive(true) }

func (l *MCSCR) psPopLive(fromTail bool) *mcsNode {
	for l.psSize.Load() > 0 {
		var t *mcsNode
		if fromTail {
			t = l.psPopTail()
		} else {
			t = l.psPopHead()
		}
		if t.state.Load() != stateAbandoned {
			return t
		}
		freeMCSNode(t)
		l.stats.Inc(core.EvAbandons)
	}
	return nil
}

func (l *MCSCR) psPushHead(n *mcsNode) {
	n.prev = nil
	if l.psHead == nil {
		l.psHead, l.psTail = n, n
	} else {
		n.next.Store(l.psHead)
		l.psHead.prev = n
		l.psHead = n
	}
	l.psSize.Add(1)
}

func (l *MCSCR) psPopHead() *mcsNode {
	n := l.psHead
	next := n.next.Load()
	l.psHead = next
	if next == nil {
		l.psTail = nil
	} else {
		next.prev = nil
	}
	n.next.Store(nil)
	n.prev = nil
	l.psSize.Add(-1)
	return n
}

func (l *MCSCR) psPopTail() *mcsNode {
	n := l.psTail
	prev := n.prev
	l.psTail = prev
	if prev == nil {
		l.psHead = nil
	} else {
		prev.next.Store(nil)
	}
	n.next.Store(nil)
	n.prev = nil
	l.psSize.Add(-1)
	return n
}

// PassiveSize reports the current size of the passive set. Safe to call
// concurrently with lock traffic (the counter is atomic); the value is a
// point-in-time observation for monitoring and tests.
func (l *MCSCR) PassiveSize() int { return int(l.psSize.Load()) }

// Stats returns a snapshot of the lock's event counters.
func (l *MCSCR) Stats() core.Snapshot { return l.stats.Read() }

var _ ContextMutex = (*MCSCR)(nil)
