package lock

import (
	"testing"
	"unsafe"

	"repro/internal/pad"
)

// These tests pin the memory-layout contract the hot paths rely on: the
// contended word of every lock sits on its own cache line, away from the
// holder-only and configuration fields, and pooled waiter nodes are
// exactly line-sized so they occupy line-aligned size-class slots and
// local spinning never false-shares with a neighbouring node.

const line = uintptr(pad.CacheLineSize)

// assertGap checks that field b starts at least one full cache line after
// field a, so a store to a cannot invalidate b's line.
func assertGap(t *testing.T, what string, a, b uintptr) {
	t.Helper()
	if b < a+line {
		t.Errorf("%s: offsets %d and %d share a cache line (gap %d < %d)",
			what, a, b, b-a, line)
	}
}

func TestNodeSizesAreLineMultiples(t *testing.T) {
	for name, size := range map[string]uintptr{
		"mcsNode":  unsafe.Sizeof(mcsNode{}),
		"clhNode":  unsafe.Sizeof(clhNode{}),
		"lifoNode": unsafe.Sizeof(lifoNode{}),
	} {
		if size%line != 0 || size == 0 {
			t.Errorf("%s size %d: want a non-zero multiple of %d", name, size, line)
		}
	}
	// The nodes should stay single-line: growing past 64 bytes silently
	// moves them to a larger, still aligned size class, but doubles pool
	// memory — fail loudly so it is a deliberate choice.
	if s := unsafe.Sizeof(mcsNode{}); s != line {
		t.Errorf("mcsNode size %d: want exactly %d", s, line)
	}
	if s := unsafe.Sizeof(clhNode{}); s != line {
		t.Errorf("clhNode size %d: want exactly %d", s, line)
	}
	if s := unsafe.Sizeof(lifoNode{}); s != line {
		t.Errorf("lifoNode size %d: want exactly %d", s, line)
	}
}

func TestMCSLayout(t *testing.T) {
	var l MCS
	assertGap(t, "MCS tail/owner", unsafe.Offsetof(l.tail), unsafe.Offsetof(l.owner))
	assertGap(t, "MCS tail/stats", unsafe.Offsetof(l.tail), unsafe.Offsetof(l.stats))
}

func TestMCSCRLayout(t *testing.T) {
	var l MCSCR
	assertGap(t, "MCSCR tail/owner", unsafe.Offsetof(l.tail), unsafe.Offsetof(l.owner))
	assertGap(t, "MCSCR tail/psHead", unsafe.Offsetof(l.tail), unsafe.Offsetof(l.psHead))
	assertGap(t, "MCSCR tail/psSize", unsafe.Offsetof(l.tail), unsafe.Offsetof(l.psSize))
	assertGap(t, "MCSCR tail/stats", unsafe.Offsetof(l.tail), unsafe.Offsetof(l.stats))
}

func TestCLHLayout(t *testing.T) {
	var l CLH
	assertGap(t, "CLH tail/ownerNode", unsafe.Offsetof(l.tail), unsafe.Offsetof(l.ownerNode))
	assertGap(t, "CLH tail/stats", unsafe.Offsetof(l.tail), unsafe.Offsetof(l.stats))
}

func TestTASLayout(t *testing.T) {
	var l TAS
	assertGap(t, "TAS word/stats", unsafe.Offsetof(l.word), unsafe.Offsetof(l.stats))
}

func TestTicketLayout(t *testing.T) {
	var l Ticket
	assertGap(t, "Ticket next/serve", unsafe.Offsetof(l.next), unsafe.Offsetof(l.serve))
	assertGap(t, "Ticket serve/stats", unsafe.Offsetof(l.serve), unsafe.Offsetof(l.stats))
}

func TestLIFOCRLayout(t *testing.T) {
	var l LIFOCR
	assertGap(t, "LIFOCR top/lockedEmpty", unsafe.Offsetof(l.top), unsafe.Offsetof(l.lockedEmpty))
	assertGap(t, "LIFOCR top/trial", unsafe.Offsetof(l.top), unsafe.Offsetof(l.trial))
	assertGap(t, "LIFOCR top/stats", unsafe.Offsetof(l.top), unsafe.Offsetof(l.stats))
}

func TestLOITERLayout(t *testing.T) {
	var l LOITER
	assertGap(t, "LOITER outer/standby", unsafe.Offsetof(l.outer), unsafe.Offsetof(l.standby))
	assertGap(t, "LOITER standby/inner", unsafe.Offsetof(l.standby), unsafe.Offsetof(l.inner))
	assertGap(t, "LOITER outer/stats", unsafe.Offsetof(l.outer), unsafe.Offsetof(l.stats))
}
