package lock

import (
	"context"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/pad"
)

// lifoNode is a stack element for LIFOCR waiters, padded to a full cache
// line so each waiter's spin flag owns its coherence granule.
//
//lockcheck:line=1
type lifoNode struct {
	waitCell
	next *lifoNode // stack link; immutable after push until popped
	_    [pad.CacheLineSize - 24]byte
}

var lifoPool = sync.Pool{New: func() any { return new(lifoNode) }}

// newLifoNode returns a ready-to-push node; pooled nodes are reset at free
// time, so the acquisition path issues no stores here.
func newLifoNode() *lifoNode {
	return lifoPool.Get().(*lifoNode)
}

// freeLifoNode restores the reset state and recycles the node.
func freeLifoNode(n *lifoNode) {
	n.state.Store(stateWaiting)
	n.next = nil
	lifoPool.Put(n)
}

// LIFOCR is the paper's LIFO-CR lock (Appendix A.2): an explicit stack
// ("Treiber style") of waiting threads with direct handoff to the most
// recently arrived waiter. Mostly-LIFO admission is a natural concurrency
// restrictor: the ACS is the owner, the circulating threads, and the top
// of the stack, while threads deeper on the stack form the passive set.
// Long-term fairness comes from a Bernoulli trial that periodically grants
// the eldest waiter — the bottom of the stack — instead of the top.
//
// The stack is multiple-producer single-consumer: only the lock holder
// pops, so the pop path is immune to ABA. LIFO handoff pairs especially
// well with spin-then-park waiting: the thread most likely to be granted
// next is the most recently arrived, which is also the thread most likely
// to still be spinning (§5.1, Appendix A.2).
type LIFOCR struct {
	// top encodes the composite lock word:
	//   nil          — unlocked
	//   &lockedEmpty — locked, no waiters
	//   other        — locked, top of the waiter stack
	// It is the CAS target of every arrival and release, so it sits alone
	// on its cache line. lockedEmpty is address-only (its fields are never
	// accessed), and lifoNode is itself line-sized, so it cannot false-share.
	top atomic.Pointer[lifoNode]
	_   [pad.CacheLineSize - 8]byte

	lockedEmpty lifoNode

	trial *core.Trial // lock-protected (unlock path only)
	cfg   config
	stats *core.Stats
}

func init() {
	Register(Registration{
		Name:    "lifocr",
		Summary: "LIFO-CR stack lock (App. A.2): handoff to the newest waiter, eldest promoted periodically",
		Build:   func(opts ...Option) Mutex { return NewLIFOCR(opts...) },
	})
}

// NewLIFOCR returns an unlocked LIFO-CR lock.
func NewLIFOCR(opts ...Option) *LIFOCR {
	cfg := buildConfig(opts)
	return &LIFOCR{
		cfg:   cfg,
		trial: core.NewTrial(cfg.policy.FairnessPeriod, cfg.policy.Seed),
		stats: cfg.newStats(),
	}
}

// Lock acquires the lock, pushing the caller onto the waiter stack if it
// is held.
func (l *LIFOCR) Lock() { l.lockStack(nil) }

// LockContext is Lock with cancellation. A cancelled waiter abandons its
// stack node in place; the node stays linked (pushes touch only the top,
// and only the holder pops) until the holder's pop or eldest-walk reaches
// it, fails the grant, and reclaims it. See ContextMutex and DESIGN.md.
func (l *LIFOCR) LockContext(ctx context.Context) error {
	if ctx.Done() == nil {
		return l.lockStack(nil)
	}
	if err := ctx.Err(); err != nil {
		l.stats.Inc(core.EvCancels)
		return err
	}
	return l.lockStack(ctx)
}

// lockStack is the acquisition body shared by Lock and LockContext; a
// nil ctx waits indefinitely and cannot fail.
func (l *LIFOCR) lockStack(ctx context.Context) error {
	if l.top.CompareAndSwap(nil, &l.lockedEmpty) {
		l.stats.Inc2(core.EvFastPath, core.EvAcquires)
		return nil
	}
	n := newLifoNode()
	for {
		top := l.top.Load()
		if top == nil {
			// Lock released while we prepared; try to take it.
			if l.top.CompareAndSwap(nil, &l.lockedEmpty) {
				freeLifoNode(n)
				l.stats.Inc2(core.EvFastPath, core.EvAcquires)
				return nil
			}
			continue
		}
		if top == &l.lockedEmpty {
			n.next = nil
		} else {
			n.next = top
		}
		if l.top.CompareAndSwap(top, n) {
			break
		}
	}
	var parked bool
	var err error
	if ctx == nil {
		parked = n.await(l.cfg.wait, l.cfg.policy.SpinBudget)
	} else {
		parked, err = n.awaitCtx(ctx, l.cfg.wait, l.cfg.policy.SpinBudget)
	}
	if err != nil {
		// The node is now stateAbandoned and stays on the stack; the
		// holder reclaims it when a pop reaches it.
		cancelStats(l.stats, parked)
		return err
	}
	// Handoff: the granter popped our node; we own the lock now.
	freeLifoNode(n)
	slowAcquireStats(l.stats, parked)
	return nil
}

// TryLockFor is TryLock with a patience bound, built on LockContext.
func (l *LIFOCR) TryLockFor(d time.Duration) bool { return tryLockFor(l, d) }

// TryLock acquires the lock if it is free.
func (l *LIFOCR) TryLock() bool {
	if l.top.CompareAndSwap(nil, &l.lockedEmpty) {
		l.stats.Inc2(core.EvFastPath, core.EvAcquires)
		return true
	}
	return false
}

// Unlock releases the lock. If waiters exist, ownership passes by direct
// handoff to the top of the stack — or, on a fairness trial, to the bottom.
//
//lockcheck:cs
func (l *LIFOCR) Unlock() {
	for {
		top := l.top.Load()
		switch top {
		case nil:
			panic("lock: LIFOCR.Unlock of unlocked mutex")
		case &l.lockedEmpty:
			if l.top.CompareAndSwap(&l.lockedEmpty, nil) {
				return
			}
			// A waiter pushed itself meanwhile; retry with the new top.
			continue
		}
		// Waiters exist. Fairness trial: grant the eldest (stack bottom)
		// instead of the newest. Only the holder pops, so walking and
		// unlinking interior nodes is safe; new pushes only change the top.
		if top.next != nil && l.trial.Promote() {
			if l.grantEldest(top) {
				l.stats.Inc(core.EvPromotions)
				return
			}
			continue
		}
		// Pop the most recently arrived waiter and hand it the lock. If it
		// abandoned (cancelled LockContext), reclaim the node — we still
		// hold the lock — and retry against the remaining stack.
		var repl *lifoNode
		if top.next == nil {
			repl = &l.lockedEmpty
		} else {
			repl = top.next
		}
		if l.top.CompareAndSwap(top, repl) {
			if ok, unparked := top.tryGrant(); ok {
				grantStats(l.stats, unparked)
				return
			}
			l.stats.Inc(core.EvAbandons)
			freeLifoNode(top)
		}
		// A push raced, or the popped waiter had abandoned; retry.
	}
}

// grantEldest unlinks the bottom-most live node below start and grants
// it, reclaiming abandoned nodes met at the bottom on the way. It returns
// false if the stack below start ran out of interior nodes (every one had
// abandoned); the caller then falls back to the normal pop path. Only the
// holder pops or unlinks, and pushes touch only the top, so walking and
// editing interior links is safe.
func (l *LIFOCR) grantEldest(start *lifoNode) bool {
	for start.next != nil {
		prev := start
		for prev.next.next != nil {
			prev = prev.next
		}
		eldest := prev.next
		prev.next = nil
		if ok, unparked := eldest.tryGrant(); ok {
			grantStats(l.stats, unparked)
			return true
		}
		l.stats.Inc(core.EvAbandons)
		freeLifoNode(eldest)
	}
	return false
}

// Stats returns a snapshot of the lock's event counters.
func (l *LIFOCR) Stats() core.Snapshot { return l.stats.Read() }

var _ ContextMutex = (*LIFOCR)(nil)
