package lock

import (
	"sync"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/pad"
)

// lifoNode is a stack element for LIFOCR waiters, padded to a full cache
// line so each waiter's spin flag owns its coherence granule.
type lifoNode struct {
	waitCell
	next *lifoNode // stack link; immutable after push until popped
	_    [pad.CacheLineSize - 24]byte
}

var lifoPool = sync.Pool{New: func() any { return new(lifoNode) }}

// newLifoNode returns a ready-to-push node; pooled nodes are reset at free
// time, so the acquisition path issues no stores here.
func newLifoNode() *lifoNode {
	return lifoPool.Get().(*lifoNode)
}

// freeLifoNode restores the reset state and recycles the node.
func freeLifoNode(n *lifoNode) {
	n.state.Store(stateWaiting)
	n.next = nil
	lifoPool.Put(n)
}

// LIFOCR is the paper's LIFO-CR lock (Appendix A.2): an explicit stack
// ("Treiber style") of waiting threads with direct handoff to the most
// recently arrived waiter. Mostly-LIFO admission is a natural concurrency
// restrictor: the ACS is the owner, the circulating threads, and the top
// of the stack, while threads deeper on the stack form the passive set.
// Long-term fairness comes from a Bernoulli trial that periodically grants
// the eldest waiter — the bottom of the stack — instead of the top.
//
// The stack is multiple-producer single-consumer: only the lock holder
// pops, so the pop path is immune to ABA. LIFO handoff pairs especially
// well with spin-then-park waiting: the thread most likely to be granted
// next is the most recently arrived, which is also the thread most likely
// to still be spinning (§5.1, Appendix A.2).
type LIFOCR struct {
	// top encodes the composite lock word:
	//   nil          — unlocked
	//   &lockedEmpty — locked, no waiters
	//   other        — locked, top of the waiter stack
	// It is the CAS target of every arrival and release, so it sits alone
	// on its cache line. lockedEmpty is address-only (its fields are never
	// accessed), and lifoNode is itself line-sized, so it cannot false-share.
	top atomic.Pointer[lifoNode]
	_   [pad.CacheLineSize - 8]byte

	lockedEmpty lifoNode

	trial *core.Trial // lock-protected (unlock path only)
	cfg   config
	stats *core.Stats
}

// NewLIFOCR returns an unlocked LIFO-CR lock.
func NewLIFOCR(opts ...Option) *LIFOCR {
	cfg := buildConfig(opts)
	return &LIFOCR{
		cfg:   cfg,
		trial: core.NewTrial(cfg.policy.FairnessPeriod, cfg.policy.Seed),
		stats: cfg.newStats(),
	}
}

// Lock acquires the lock, pushing the caller onto the waiter stack if it
// is held.
func (l *LIFOCR) Lock() {
	if l.top.CompareAndSwap(nil, &l.lockedEmpty) {
		l.stats.Inc2(core.EvFastPath, core.EvAcquires)
		return
	}
	n := newLifoNode()
	for {
		top := l.top.Load()
		if top == nil {
			// Lock released while we prepared; try to take it.
			if l.top.CompareAndSwap(nil, &l.lockedEmpty) {
				freeLifoNode(n)
				l.stats.Inc2(core.EvFastPath, core.EvAcquires)
				return
			}
			continue
		}
		if top == &l.lockedEmpty {
			n.next = nil
		} else {
			n.next = top
		}
		if l.top.CompareAndSwap(top, n) {
			break
		}
	}
	parked := n.await(l.cfg.wait, l.cfg.policy.SpinBudget)
	// Handoff: the granter popped our node; we own the lock now.
	freeLifoNode(n)
	if parked {
		l.stats.Inc3(core.EvParks, core.EvSlowPath, core.EvAcquires)
	} else {
		l.stats.Inc2(core.EvSlowPath, core.EvAcquires)
	}
}

// TryLock acquires the lock if it is free.
func (l *LIFOCR) TryLock() bool {
	if l.top.CompareAndSwap(nil, &l.lockedEmpty) {
		l.stats.Inc2(core.EvFastPath, core.EvAcquires)
		return true
	}
	return false
}

// Unlock releases the lock. If waiters exist, ownership passes by direct
// handoff to the top of the stack — or, on a fairness trial, to the bottom.
func (l *LIFOCR) Unlock() {
	for {
		top := l.top.Load()
		switch top {
		case nil:
			panic("lock: LIFOCR.Unlock of unlocked mutex")
		case &l.lockedEmpty:
			if l.top.CompareAndSwap(&l.lockedEmpty, nil) {
				return
			}
			// A waiter pushed itself meanwhile; retry with the new top.
			continue
		}
		// Waiters exist. Fairness trial: grant the eldest (stack bottom)
		// instead of the newest. Only the holder pops, so walking and
		// unlinking interior nodes is safe; new pushes only change the top.
		if top.next != nil && l.trial.Promote() {
			if l.grantEldest(top) {
				l.stats.Inc(core.EvPromotions)
				return
			}
			continue
		}
		// Pop the most recently arrived waiter and hand it the lock.
		var repl *lifoNode
		if top.next == nil {
			repl = &l.lockedEmpty
		} else {
			repl = top.next
		}
		if l.top.CompareAndSwap(top, repl) {
			l.finishGrant(top)
			return
		}
		// A push raced; retry against the new top.
	}
}

// grantEldest unlinks the bottom-most node at or below start and grants
// it. It returns false if start was popped out from under us (cannot
// happen — only the holder pops — but kept for symmetry with the CAS
// loops). start.next is non-nil on entry, so the bottom is an interior
// node and unlinking it cannot race with pushes, which touch only the top.
func (l *LIFOCR) grantEldest(start *lifoNode) bool {
	prev := start
	for prev.next.next != nil {
		prev = prev.next
	}
	eldest := prev.next
	prev.next = nil
	l.finishGrant(eldest)
	return true
}

func (l *LIFOCR) finishGrant(n *lifoNode) {
	if n.grant() {
		l.stats.Inc2(core.EvUnparks, core.EvHandoffs)
	} else {
		l.stats.Inc(core.EvHandoffs)
	}
}

// Stats returns a snapshot of the lock's event counters.
func (l *LIFOCR) Stats() core.Snapshot { return l.stats.Read() }

var _ Mutex = (*LIFOCR)(nil)
