//go:build race

package lock

// raceEnabled scales down stress-test iteration counts: race
// instrumentation slows spin-heavy code by an order of magnitude,
// especially on hosts with few CPUs.
const raceEnabled = true
