package lock

import (
	"sync"
	"testing"

	"repro/internal/core"
)

// TestWithStatsDisabled drives every lock with instrumentation off: the
// locks must still provide exclusion and report an all-zero snapshot.
func TestWithStatsDisabled(t *testing.T) {
	type statser interface{ Stats() core.Snapshot }
	off := map[string]func() Mutex{
		"TAS":    func() Mutex { return NewTAS(WithStats(false)) },
		"Ticket": func() Mutex { return NewTicket(WithStats(false)) },
		"CLH":    func() Mutex { return NewCLH(WithStats(false)) },
		"MCS":    func() Mutex { return NewMCS(WithStats(false)) },
		"MCSCR":  func() Mutex { return NewMCSCR(WithStats(false), WithSeed(1)) },
		"LIFOCR": func() Mutex { return NewLIFOCR(WithStats(false), WithSeed(1)) },
		"LOITER": func() Mutex { return NewLOITER(WithStats(false), WithSeed(1)) },
	}
	for name, build := range off {
		t.Run(name, func(t *testing.T) {
			m := build()
			var shared int
			runWithTimeout(t, 60e9, func() {
				var wg sync.WaitGroup
				for g := 0; g < 4; g++ {
					wg.Add(1)
					go func() {
						defer wg.Done()
						for i := 0; i < 500; i++ {
							m.Lock()
							shared++
							m.Unlock()
						}
					}()
				}
				wg.Wait()
			})
			if shared != 4*500 {
				t.Fatalf("lost updates with stats disabled: %d", shared)
			}
			if snap := m.(statser).Stats(); snap != (core.Snapshot{}) {
				t.Fatalf("disabled stats reported events: %+v", snap)
			}
		})
	}
	l := NewLOITER(WithStats(false))
	if got := l.InnerStats(); got != (core.Snapshot{}) {
		t.Fatalf("LOITER inner stats not disabled: %+v", got)
	}
}

// TestZeroValueTASUninstrumented pins the contract condvar and semaphore
// rely on: a zero-value TAS is a working, instrumentation-free lock.
func TestZeroValueTASUninstrumented(t *testing.T) {
	var m TAS
	m.Lock()
	if m.TryLock() {
		t.Fatal("TryLock on held zero-value TAS succeeded")
	}
	m.Unlock()
	if snap := m.Stats(); snap != (core.Snapshot{}) {
		t.Fatalf("zero-value TAS counted events: %+v", snap)
	}
}

// TestStatsStriped checks the default-constructed locks carry striped
// stats that sum correctly across goroutines.
func TestStatsStriped(t *testing.T) {
	m := NewMCSCR(WithSeed(2))
	const goroutines, iters = 4, 500
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				m.Lock()
				m.Unlock()
			}
		}()
	}
	wg.Wait()
	s := m.Stats()
	if s.Acquires != goroutines*iters {
		t.Fatalf("acquires=%d want %d", s.Acquires, goroutines*iters)
	}
	if s.FastPath+s.SlowPath != s.Acquires {
		t.Fatalf("fast+slow=%d want %d", s.FastPath+s.SlowPath, s.Acquires)
	}
}
