package lock

import (
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/pad"
)

// TAS is a test-and-set spin lock with competitive succession and global
// spinning (§5.3, §5.4, Appendix A.1). Arriving threads may barge ahead of
// threads that have waited longer: bypass is unbounded and admission order
// is decoupled from arrival order. The polling loop is the polite
// test-and-test-and-set form with randomized exponential backoff, which
// reduces the thundering-herd coherence storm at release.
//
// TAS never hands the lock to a preempted thread (the acquirer is running
// by definition), the property that makes TAS-family locks robust under
// multiprogramming (§7, Appendix A.1).
//
// The zero value is a valid, unlocked, uninstrumented TAS (nil stats);
// packages condvar and semaphore embed it this way as their internal
// latch. NewTAS attaches striped stats unless WithStats(false) is given.
type TAS struct {
	// word is the globally-spun-on lock word; it lives alone on its cache
	// line so waiter polling does not collide with the stats reference.
	word atomic.Uint32
	_    [pad.CacheLineSize - 4]byte

	stats *core.Stats
}

// NewTAS returns an unlocked TAS lock. Options other than WithStats are
// accepted for interface symmetry; TAS has no CR policy knobs.
func NewTAS(opts ...Option) *TAS {
	cfg := buildConfig(opts)
	return &TAS{stats: cfg.newStats()}
}

// Lock acquires the lock, spinning with randomized backoff.
func (l *TAS) Lock() {
	if l.word.CompareAndSwap(0, 1) {
		l.stats.Inc2(core.EvFastPath, core.EvAcquires)
		return
	}
	b := newBackoff(nextSeed())
	for {
		// Test-and-test-and-set: poll with plain loads first so waiting
		// threads share the line in read state instead of ping-ponging it.
		for i := 0; l.word.Load() != 0; i++ {
			politePause(i)
		}
		if l.word.CompareAndSwap(0, 1) {
			l.stats.Inc2(core.EvSlowPath, core.EvAcquires)
			return
		}
		b.pause()
	}
}

// TryLock acquires the lock if it is free.
func (l *TAS) TryLock() bool {
	if l.word.Load() == 0 && l.word.CompareAndSwap(0, 1) {
		l.stats.Inc2(core.EvFastPath, core.EvAcquires)
		return true
	}
	return false
}

// Unlock releases the lock (competitive succession / renouncement: the
// lock is simply made available and the waiters race to claim it).
func (l *TAS) Unlock() {
	if l.word.Swap(0) != 1 {
		panic("lock: TAS.Unlock of unlocked mutex")
	}
}

// Stats returns a snapshot of the lock's event counters.
func (l *TAS) Stats() core.Snapshot { return l.stats.Read() }

var _ Mutex = (*TAS)(nil)
