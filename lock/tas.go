package lock

import (
	"context"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/pad"
)

// TAS is a test-and-set spin lock with competitive succession and global
// spinning (§5.3, §5.4, Appendix A.1). Arriving threads may barge ahead of
// threads that have waited longer: bypass is unbounded and admission order
// is decoupled from arrival order. The polling loop is the polite
// test-and-test-and-set form with randomized exponential backoff, which
// reduces the thundering-herd coherence storm at release.
//
// TAS never hands the lock to a preempted thread (the acquirer is running
// by definition), the property that makes TAS-family locks robust under
// multiprogramming (§7, Appendix A.1).
//
// The zero value is a valid, unlocked, uninstrumented TAS (nil stats);
// packages condvar and semaphore embed it this way as their internal
// latch. NewTAS attaches striped stats unless WithStats(false) is given.
type TAS struct {
	// word is the globally-spun-on lock word; it lives alone on its cache
	// line so waiter polling does not collide with the stats reference.
	//
	//lockcheck:lockword
	word atomic.Uint32
	_    [pad.CacheLineSize - 4]byte

	stats *core.Stats
}

// NewTAS returns an unlocked TAS lock. Options other than WithStats are
// accepted for interface symmetry; TAS has no CR policy knobs.
func NewTAS(opts ...Option) *TAS {
	cfg := buildConfig(opts)
	return &TAS{stats: cfg.newStats()}
}

func init() {
	Register(Registration{
		Name:    "tas",
		Aliases: []string{"ttas"},
		Summary: "test-and-set baseline: barging, global spinning, randomized backoff",
		Build:   func(opts ...Option) Mutex { return NewTAS(opts...) },
	})
}

// Lock acquires the lock, spinning with randomized backoff.
//
//lockcheck:acquires l
func (l *TAS) Lock() {
	if l.word.CompareAndSwap(0, 1) {
		l.stats.Inc2(core.EvFastPath, core.EvAcquires)
		return
	}
	l.lockSlow(nil)
}

// LockContext is Lock with cancellation. TAS waiters hold no queue slot,
// so abandoning is trivial: the polling loop simply stops.
//
//lockcheck:acquires l
func (l *TAS) LockContext(ctx context.Context) error {
	if ctx.Done() == nil {
		l.Lock()
		return nil
	}
	if err := ctx.Err(); err != nil {
		l.stats.Inc(core.EvCancels)
		return err
	}
	if l.word.CompareAndSwap(0, 1) {
		l.stats.Inc2(core.EvFastPath, core.EvAcquires)
		return nil
	}
	return l.lockSlow(ctx)
}

// lockSlow is the contended path shared by Lock and LockContext; a nil
// ctx waits indefinitely. Test-and-test-and-set: poll with plain loads
// first so waiting threads share the line in read state instead of
// ping-ponging it; the poll is bounded per round so the context is
// observed between backoff rounds.
//
//lockcheck:acquires l
func (l *TAS) lockSlow(ctx context.Context) error {
	var done <-chan struct{}
	if ctx != nil {
		done = ctx.Done()
	}
	b := newBackoff(nextSeed())
	for {
		for i := 0; l.word.Load() != 0 && i < maxBackoff; i++ {
			politePause(i)
		}
		if l.word.CompareAndSwap(0, 1) {
			l.stats.Inc2(core.EvSlowPath, core.EvAcquires)
			return nil
		}
		if done != nil {
			select {
			case <-done:
				l.stats.Inc(core.EvCancels)
				return ctx.Err()
			default:
			}
		}
		b.pause()
	}
}

// TryLockFor is TryLock with a patience bound, built on LockContext.
func (l *TAS) TryLockFor(d time.Duration) bool { return tryLockFor(l, d) }

// TryLock acquires the lock if it is free.
//
//lockcheck:acquires l
func (l *TAS) TryLock() bool {
	if l.word.Load() == 0 && l.word.CompareAndSwap(0, 1) {
		l.stats.Inc2(core.EvFastPath, core.EvAcquires)
		return true
	}
	return false
}

// Unlock releases the lock (competitive succession / renouncement: the
// lock is simply made available and the waiters race to claim it).
//
//lockcheck:cs
func (l *TAS) Unlock() {
	if l.word.Swap(0) != 1 {
		panic("lock: TAS.Unlock of unlocked mutex")
	}
}

// Stats returns a snapshot of the lock's event counters.
func (l *TAS) Stats() core.Snapshot { return l.stats.Read() }

var _ ContextMutex = (*TAS)(nil)
