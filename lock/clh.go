package lock

import (
	"sync"
	"sync/atomic"

	"repro/internal/core"
)

// clhNode is a CLH queue element. Unlike MCS, a waiter spins on its
// predecessor's node; the node a thread enqueues is reclaimed by its
// successor.
type clhNode struct {
	waitCell
}

var clhPool = sync.Pool{New: func() any { return new(clhNode) }}

func newCLHNode() *clhNode {
	n := clhPool.Get().(*clhNode)
	n.reset()
	return n
}

// CLH is the Craig–Landin–Hagersten queue lock: strict FIFO, direct
// handoff, local spinning on the predecessor's flag. Included as the
// second classic FIFO baseline (the paper's related work discusses its
// NUMA-hierarchical descendant, HCLH).
type CLH struct {
	tail atomic.Pointer[clhNode]
	// node published by the current owner (granted at unlock) and the
	// predecessor node it will reclaim; both lock-protected.
	ownerNode *clhNode
	ownerPred *clhNode
	cfg       config
	stats     core.Stats
}

// NewCLH returns an unlocked CLH lock.
func NewCLH(opts ...Option) *CLH {
	return &CLH{cfg: buildConfig(opts)}
}

// Lock enqueues the caller and waits on its predecessor's flag. A nil tail
// or a predecessor in granted state means the lock is free.
func (l *CLH) Lock() {
	n := newCLHNode()
	pred := l.tail.Swap(n)
	if pred == nil {
		l.ownerNode, l.ownerPred = n, nil
		l.stats.FastPath.Add(1)
		l.stats.Acquires.Add(1)
		return
	}
	if pred.await(l.cfg.wait, l.cfg.policy.SpinBudget) {
		l.stats.Parks.Add(1)
	}
	l.ownerNode, l.ownerPred = n, pred
	l.stats.SlowPath.Add(1)
	l.stats.Acquires.Add(1)
}

// TryLock acquires the lock only if it is observably free.
func (l *CLH) TryLock() bool {
	t := l.tail.Load()
	if t != nil && t.state.Load() != stateGranted {
		return false
	}
	n := newCLHNode()
	if !l.tail.CompareAndSwap(t, n) {
		clhPool.Put(n)
		return false
	}
	// We displaced a granted (free) node or nil; reclaim the old tail.
	l.ownerNode, l.ownerPred = n, t
	l.stats.FastPath.Add(1)
	l.stats.Acquires.Add(1)
	return true
}

// Unlock grants the owner's node, passing the lock to the successor
// spinning on it (or marking the lock free if none arrives).
func (l *CLH) Unlock() {
	n := l.ownerNode
	if n == nil {
		panic("lock: CLH.Unlock of unlocked mutex")
	}
	pred := l.ownerPred
	l.ownerNode, l.ownerPred = nil, nil
	if n.grant() {
		l.stats.Unparks.Add(1)
	}
	l.stats.Handoffs.Add(1)
	if pred != nil {
		clhPool.Put(pred)
	}
}

// Stats returns a snapshot of the lock's event counters.
func (l *CLH) Stats() core.Snapshot { return l.stats.Read() }

var _ Mutex = (*CLH)(nil)
