package lock

import (
	"context"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/pad"
	"repro/internal/park"
)

// clhNode is a CLH queue element. Unlike MCS, a waiter spins on its
// predecessor's node; once the predecessor is granted and displaced it is
// dropped for the GC. Padded to a full cache line so each waiter's spin
// target occupies its own coherence granule (see layout_test.go).
//
// pred records the node this waiter spins on, published before any
// abandon so a successor that observes stateAbandoned (acquire) can
// inherit the wait: CLH excision is performed by the successor, not the
// unlock path. pred pointers are immutable once set and abandoned states
// are terminal, so at most one live waiter ever walks to a given
// predecessor.
//
//lockcheck:line=1
type clhNode struct {
	waitCell
	pred *clhNode
	_    [pad.CacheLineSize - 24]byte
}

// newCLHNode allocates a fresh node. CLH nodes are deliberately NOT
// pooled: TryLock compare-and-swaps the tail against a previously loaded
// node pointer, and recycling would admit an ABA — the snapshot node could
// be freed, drawn from the pool by another Lock on the same CLH instance,
// and republished as the live tail, letting a stale TryLock CAS succeed
// against a node that now belongs to the current holder (two owners).
// Garbage collection makes the pointer CAS safe: a node cannot be
// reallocated while any goroutine still holds a reference to it — which
// is also what lets a cancelled waiter simply mark its node abandoned and
// leave: the chain of abandoned nodes stays reachable until the inheriting
// successor walks past it, then becomes garbage.
func newCLHNode() *clhNode {
	return new(clhNode)
}

// CLH is the Craig–Landin–Hagersten queue lock: strict FIFO, direct
// handoff, local spinning on the predecessor's flag. Included as the
// second classic FIFO baseline (the paper's related work discusses its
// NUMA-hierarchical descendant, HCLH).
type CLH struct {
	// tail is the arrival word; isolated from the holder-only fields.
	tail atomic.Pointer[clhNode]
	_    [pad.CacheLineSize - 8]byte

	// node published by the current owner (granted at unlock);
	// lock-protected. The displaced predecessor is simply dropped and
	// reclaimed by the GC (see newCLHNode).
	ownerNode *clhNode
	cfg       config
	stats     *core.Stats
}

// NewCLH returns an unlocked CLH lock.
func NewCLH(opts ...Option) *CLH {
	cfg := buildConfig(opts)
	return &CLH{cfg: cfg, stats: cfg.newStats()}
}

func init() {
	Register(Registration{
		Name:    "clh",
		Summary: "CLH queue lock: FIFO, local spinning on the predecessor (wait=s|stp)",
		Build:   func(opts ...Option) Mutex { return NewCLH(opts...) },
	})
}

// Lock enqueues the caller and waits on its predecessor's flag. A nil tail
// or a predecessor in granted state means the lock is free.
func (l *CLH) Lock() {
	n := newCLHNode()
	pred := l.tail.Swap(n)
	if pred == nil {
		l.ownerNode = n
		l.stats.Inc2(core.EvFastPath, core.EvAcquires)
		return
	}
	// n.pred stays nil on the arrival path: a plain-Lock waiter never
	// abandons its node, so no successor will ever read its pred —
	// skipping the store keeps a pointer write barrier off the hot path
	// and keeps granted nodes from retaining their predecessor history
	// for the GC. waitOn's path compression may still set it (inherit);
	// clear that on grant so the invariant — granted nodes hold no
	// predecessor references — survives mixed cancellable traffic.
	parked, _ := l.waitOn(nil, n, pred)
	if n.pred != nil {
		n.pred = nil
	}
	l.ownerNode = n
	slowAcquireStats(l.stats, parked)
}

// LockContext is Lock with cancellation. A cancelled CLH waiter marks its
// own node abandoned and leaves; the excision is lazy and successor-side:
// whoever waits on the abandoned node (a current waiter or a future
// arrival) walks to the node's predecessor and inherits the wait there.
// Until a successor arrives, an abandoned tail makes the lock look held
// to TryLock — the next Lock/LockContext arrival restores it.
//
//lockcheck:acquires l
func (l *CLH) LockContext(ctx context.Context) error {
	if ctx.Done() == nil {
		l.Lock()
		return nil
	}
	if err := ctx.Err(); err != nil {
		l.stats.Inc(core.EvCancels)
		return err
	}
	n := newCLHNode()
	pred := l.tail.Swap(n)
	if pred == nil {
		l.ownerNode = n
		l.stats.Inc2(core.EvFastPath, core.EvAcquires)
		return nil
	}
	// Unlike plain Lock, a cancellable waiter may abandon, so its node
	// must carry the pred pointer successors will inherit.
	n.pred = pred
	parked, err := l.waitOn(ctx, n, pred)
	if err != nil {
		// Abandon our own node so the successor can inherit pred. The
		// grant cannot race here: only we grant our node, at unlock.
		n.abandon()
		cancelStats(l.stats, parked)
		return err
	}
	// Granted: the node can never be abandoned now, so no successor will
	// read n.pred — clear it so granted nodes do not chain-retain their
	// predecessors.
	n.pred = nil
	l.ownerNode = n
	slowAcquireStats(l.stats, parked)
	return nil
}

// TryLockFor is TryLock with a patience bound, built on LockContext.
func (l *CLH) TryLockFor(d time.Duration) bool { return tryLockFor(l, d) }

// waitOn waits for a node on the predecessor chain to be granted,
// inheriting earlier predecessors whenever a cancelled waiter abandons
// the node being watched. ctx may be nil (wait forever). On err != nil
// the caller still owns its node and must abandon it itself.
//
// Each inheritance step path-compresses: the walker republishes its own
// node's pred to the inherited target (retarget), so when the walker
// itself later abandons, its successor resumes at the live frontier
// instead of re-walking the dead prefix — each abandoned node is
// traversed, counted, and unreferenced exactly once. Writing n.pred here
// is safe: a successor reads it only after observing n's abandon CAS,
// which orders after every write below.
//
// A subtlety of inheritance: the abandoning waiter may already have
// published stateParked on the watched cell and allocated its parker. The
// inheritor then parks on that same parker — safe, because the abandoner
// never touches the cell after its abandon CAS, and the CAS's ordering
// publishes the parker allocation.
func (l *CLH) waitOn(ctx context.Context, n, pred *clhNode) (parked bool, err error) {
	var done <-chan struct{}
	if ctx != nil {
		done = ctx.Done()
	}
	spinOnly := l.cfg.wait == WaitSpin
	budget := l.cfg.policy.SpinBudget
	for {
		// Spin phase on the current predecessor.
		for i := 0; spinOnly || i < budget; i++ {
			switch pred.state.Load() {
			case stateGranted:
				return parked, nil
			case stateAbandoned:
				pred = l.inherit(n, pred)
				i = 0
				continue
			}
			if done != nil && i%ctxCheckEvery == ctxCheckEvery-1 {
				select {
				case <-done:
					return parked, ctx.Err()
				default:
				}
			}
			politePause(i)
		}
		// Park phase: publish stateParked on the predecessor's cell (or
		// adopt a parked state left behind by an abandoning waiter). The
		// full switch is required here, not just in the spin phase: with a
		// zero spin budget this is the only place granted or abandoned
		// predecessors are noticed before parking.
		switch s := pred.state.Load(); s {
		case stateGranted:
			return parked, nil
		case stateAbandoned:
			pred = l.inherit(n, pred)
			continue
		case stateWaiting:
			if pred.parker == nil {
				pred.parker = park.NewParker()
			}
			if !pred.state.CompareAndSwap(stateWaiting, stateParked) {
				continue // granted or abandoned; re-examine
			}
		case stateParked:
			// A cancelled predecessor-watcher left the cell parked; its
			// parker is published by the CAS that set the state.
		}
		parked = true
		for {
			pred.parker.ParkContext(ctx)
			switch pred.state.Load() {
			case stateGranted:
				return true, nil
			case stateAbandoned:
				// The waiter that owned this node cancelled and unparked
				// us; inherit its predecessor.
				pred = l.inherit(n, pred)
			default:
				if ctx != nil && ctx.Err() != nil {
					return true, ctx.Err()
				}
				continue // spurious wakeup; park again
			}
			break // re-enter the outer loop on the inherited predecessor
		}
	}
}

// inherit steps waiter n's watch target past the abandoned node pred,
// path-compressing n.pred to the new target (see waitOn).
func (l *CLH) inherit(n, pred *clhNode) *clhNode {
	l.stats.Inc(core.EvAbandons)
	n.pred = pred.pred
	return n.pred
}

// TryLock acquires the lock only if it is observably free. The failure
// path allocates no node until the lock looks free.
func (l *CLH) TryLock() bool {
	t := l.tail.Load()
	if t != nil && t.state.Load() != stateGranted {
		return false
	}
	n := newCLHNode()
	if !l.tail.CompareAndSwap(t, n) {
		return false
	}
	// We displaced a granted (free) node or nil; the old tail is dropped
	// for the GC.
	l.ownerNode = n
	l.stats.Inc2(core.EvFastPath, core.EvAcquires)
	return true
}

// Unlock grants the owner's node, passing the lock to the successor
// spinning on it (or marking the lock free if none arrives). The plain
// grant is safe here: waiters abandon only their own nodes, never the
// node they spin on, so the owner's cell cannot be abandoned.
//
//lockcheck:cs
func (l *CLH) Unlock() {
	n := l.ownerNode
	if n == nil {
		panic("lock: CLH.Unlock of unlocked mutex")
	}
	l.ownerNode = nil
	grantStats(l.stats, n.grant())
}

// Stats returns a snapshot of the lock's event counters.
func (l *CLH) Stats() core.Snapshot { return l.stats.Read() }

var _ ContextMutex = (*CLH)(nil)
