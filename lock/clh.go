package lock

import (
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/pad"
)

// clhNode is a CLH queue element. Unlike MCS, a waiter spins on its
// predecessor's node; once the predecessor is granted and displaced it is
// dropped for the GC. Padded to a full cache line so each waiter's spin
// target occupies its own coherence granule (see layout_test.go).
type clhNode struct {
	waitCell
	_ [pad.CacheLineSize - 16]byte
}

// newCLHNode allocates a fresh node. CLH nodes are deliberately NOT
// pooled: TryLock compare-and-swaps the tail against a previously loaded
// node pointer, and recycling would admit an ABA — the snapshot node could
// be freed, drawn from the pool by another Lock on the same CLH instance,
// and republished as the live tail, letting a stale TryLock CAS succeed
// against a node that now belongs to the current holder (two owners).
// Garbage collection makes the pointer CAS safe: a node cannot be
// reallocated while any goroutine still holds a reference to it.
func newCLHNode() *clhNode {
	return new(clhNode)
}

// CLH is the Craig–Landin–Hagersten queue lock: strict FIFO, direct
// handoff, local spinning on the predecessor's flag. Included as the
// second classic FIFO baseline (the paper's related work discusses its
// NUMA-hierarchical descendant, HCLH).
type CLH struct {
	// tail is the arrival word; isolated from the holder-only fields.
	tail atomic.Pointer[clhNode]
	_    [pad.CacheLineSize - 8]byte

	// node published by the current owner (granted at unlock);
	// lock-protected. The displaced predecessor is simply dropped and
	// reclaimed by the GC (see newCLHNode).
	ownerNode *clhNode
	cfg       config
	stats     *core.Stats
}

// NewCLH returns an unlocked CLH lock.
func NewCLH(opts ...Option) *CLH {
	cfg := buildConfig(opts)
	return &CLH{cfg: cfg, stats: cfg.newStats()}
}

// Lock enqueues the caller and waits on its predecessor's flag. A nil tail
// or a predecessor in granted state means the lock is free.
func (l *CLH) Lock() {
	n := newCLHNode()
	pred := l.tail.Swap(n)
	if pred == nil {
		l.ownerNode = n
		l.stats.Inc2(core.EvFastPath, core.EvAcquires)
		return
	}
	parked := pred.await(l.cfg.wait, l.cfg.policy.SpinBudget)
	l.ownerNode = n
	if parked {
		l.stats.Inc3(core.EvParks, core.EvSlowPath, core.EvAcquires)
	} else {
		l.stats.Inc2(core.EvSlowPath, core.EvAcquires)
	}
}

// TryLock acquires the lock only if it is observably free. The failure
// path allocates no node until the lock looks free.
func (l *CLH) TryLock() bool {
	t := l.tail.Load()
	if t != nil && t.state.Load() != stateGranted {
		return false
	}
	n := newCLHNode()
	if !l.tail.CompareAndSwap(t, n) {
		return false
	}
	// We displaced a granted (free) node or nil; the old tail is dropped
	// for the GC.
	l.ownerNode = n
	l.stats.Inc2(core.EvFastPath, core.EvAcquires)
	return true
}

// Unlock grants the owner's node, passing the lock to the successor
// spinning on it (or marking the lock free if none arrives).
func (l *CLH) Unlock() {
	n := l.ownerNode
	if n == nil {
		panic("lock: CLH.Unlock of unlocked mutex")
	}
	l.ownerNode = nil
	if n.grant() {
		l.stats.Inc2(core.EvUnparks, core.EvHandoffs)
	} else {
		l.stats.Inc(core.EvHandoffs)
	}
}

// Stats returns a snapshot of the lock's event counters.
func (l *CLH) Stats() core.Snapshot { return l.stats.Read() }

var _ Mutex = (*CLH)(nil)
