package lock

import (
	"fmt"
	"os"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestMain(m *testing.M) {
	// The CI host may have a single CPU; raise GOMAXPROCS so goroutines
	// run on several OS threads and real lock contention (queue build-up,
	// parking, barging) actually occurs.
	if runtime.GOMAXPROCS(0) < 4 {
		runtime.GOMAXPROCS(4)
	}
	os.Exit(m.Run())
}

// builders enumerates every real (mutual-exclusion-providing) lock in the
// package under both waiting policies, resolved through the registry so
// the spec grammar itself is exercised by the whole suite.
func builders() map[string]func() Mutex {
	specs := map[string]string{
		"TAS":        "tas",
		"Ticket":     "ticket",
		"CLH-S":      "clh?wait=s",
		"CLH-STP":    "clh?wait=stp",
		"MCS-S":      "mcs-s",
		"MCS-STP":    "mcs-stp",
		"MCSCR-S":    "mcscr-s?seed=1",
		"MCSCR-STP":  "mcscr-stp?seed=1",
		"LIFOCR-S":   "lifocr?wait=s&seed=1",
		"LIFOCR-STP": "lifocr?wait=stp&seed=1",
		"LOITER-S":   "loiter?wait=s&seed=1",
		"LOITER-STP": "loiter?wait=stp&seed=1",
	}
	out := make(map[string]func() Mutex, len(specs))
	for name, spec := range specs {
		out[name] = func() Mutex { return MustNew(spec) }
	}
	return out
}

// runWithTimeout fails the test if fn does not finish in the deadline,
// converting a liveness bug (lost wakeup, stranded waiter) into a test
// failure instead of a hung suite.
func runWithTimeout(t *testing.T, d time.Duration, fn func()) {
	t.Helper()
	done := make(chan struct{})
	go func() {
		defer close(done)
		fn()
	}()
	select {
	case <-done:
	case <-time.After(d):
		t.Fatal("timed out: probable lost wakeup or deadlock")
	}
}

func TestMutualExclusion(t *testing.T) {
	const goroutines = 8
	iters := 2000
	if raceEnabled {
		iters = 200 // spin loops are ~10x slower under the race detector
	}
	for name, build := range builders() {
		t.Run(name, func(t *testing.T) {
			m := build()
			var unprotected int // data race if exclusion fails
			var inside atomic.Int32
			var maxInside atomic.Int32
			runWithTimeout(t, 60*time.Second, func() {
				var wg sync.WaitGroup
				for g := 0; g < goroutines; g++ {
					wg.Add(1)
					go func() {
						defer wg.Done()
						for i := 0; i < iters; i++ {
							m.Lock()
							if v := inside.Add(1); v > maxInside.Load() {
								maxInside.Store(v)
							}
							unprotected++
							inside.Add(-1)
							m.Unlock()
						}
					}()
				}
				wg.Wait()
			})
			if unprotected != goroutines*iters {
				t.Errorf("lost updates: got %d want %d", unprotected, goroutines*iters)
			}
			if maxInside.Load() != 1 {
				t.Errorf("critical section occupancy reached %d", maxInside.Load())
			}
		})
	}
}

func TestTryLock(t *testing.T) {
	for name, build := range builders() {
		t.Run(name, func(t *testing.T) {
			m := build()
			if !m.TryLock() {
				t.Fatal("TryLock on a free lock failed")
			}
			if m.TryLock() {
				t.Fatal("TryLock on a held lock succeeded")
			}
			m.Unlock()
			if !m.TryLock() {
				t.Fatal("TryLock after Unlock failed")
			}
			m.Unlock()
		})
	}
}

func TestLockUnlockSequential(t *testing.T) {
	for name, build := range builders() {
		t.Run(name, func(t *testing.T) {
			m := build()
			for i := 0; i < 1000; i++ {
				m.Lock()
				m.Unlock()
			}
		})
	}
}

func TestHandoffChain(t *testing.T) {
	// Two goroutines strictly alternating through the lock exercises the
	// direct-handoff grant path (the successor is always waiting).
	for name, build := range builders() {
		t.Run(name, func(t *testing.T) {
			m := build()
			iters := 5000
			if raceEnabled {
				iters = 500
			}
			var turn atomic.Int64
			runWithTimeout(t, 60*time.Second, func() {
				var wg sync.WaitGroup
				for g := 0; g < 2; g++ {
					wg.Add(1)
					go func() {
						defer wg.Done()
						for i := 0; i < iters; i++ {
							m.Lock()
							turn.Add(1)
							m.Unlock()
						}
					}()
				}
				wg.Wait()
			})
			if turn.Load() != int64(2*iters) {
				t.Fatalf("turns=%d", turn.Load())
			}
		})
	}
}

func TestNullLock(t *testing.T) {
	n := NewNull()
	n.Lock()
	n.Lock() // Null provides no exclusion; double lock must not block
	if !n.TryLock() {
		t.Fatal("Null.TryLock must always succeed")
	}
	n.Unlock()
	n.Unlock()
}

func TestUnlockOfUnlockedPanics(t *testing.T) {
	cases := map[string]Mutex{
		"TAS":    NewTAS(),
		"MCS":    NewMCS(),
		"MCSCR":  NewMCSCR(),
		"LIFOCR": NewLIFOCR(),
		"CLH":    NewCLH(),
		"LOITER": NewLOITER(),
	}
	for name, m := range cases {
		t.Run(name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatal("Unlock of unlocked mutex did not panic")
				}
			}()
			m.Unlock()
		})
	}
}

// TestLongTermFairness verifies the Bernoulli promotion mechanism: under a
// CR lock with a short fairness period every thread completes work; no
// thread is starved indefinitely.
func TestLongTermFairness(t *testing.T) {
	crLocks := map[string]func() Mutex{
		"MCSCR":  func() Mutex { return NewMCSCR(WithFairnessPeriod(50), WithSeed(7)) },
		"LIFOCR": func() Mutex { return NewLIFOCR(WithFairnessPeriod(50), WithSeed(7)) },
		"LOITER": func() Mutex { return NewLOITER(WithPatience(16), WithSeed(7)) },
	}
	const goroutines = 8
	for name, build := range crLocks {
		t.Run(name, func(t *testing.T) {
			m := build()
			var counts [goroutines]atomic.Int64
			stop := make(chan struct{})
			var wg sync.WaitGroup
			for g := 0; g < goroutines; g++ {
				wg.Add(1)
				go func(id int) {
					defer wg.Done()
					for {
						select {
						case <-stop:
							return
						default:
						}
						m.Lock()
						counts[id].Add(1)
						m.Unlock()
					}
				}(g)
			}
			time.Sleep(500 * time.Millisecond)
			close(stop)
			runWithTimeout(t, 30*time.Second, wg.Wait)
			for g := 0; g < goroutines; g++ {
				if counts[g].Load() == 0 {
					t.Errorf("goroutine %d starved (0 acquisitions)", g)
				}
			}
		})
	}
}

// TestMCSCRQuiescence checks that after all threads finish, the chain and
// the passive set have fully drained: CR must be work conserving, so no
// thread may be left stranded in the PS.
func TestMCSCRQuiescence(t *testing.T) {
	m := NewMCSCR(WithSeed(3))
	runWithTimeout(t, 60*time.Second, func() {
		var wg sync.WaitGroup
		for g := 0; g < 16; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; i < 1000; i++ {
					m.Lock()
					m.Unlock()
				}
			}()
		}
		wg.Wait()
	})
	if ps := m.PassiveSize(); ps != 0 {
		t.Fatalf("passive set not drained: %d threads stranded", ps)
	}
	if tail := m.tail.Load(); tail != nil {
		t.Fatal("MCS chain not empty at quiescence")
	}
	s := m.Stats()
	if s.Acquires != 16*1000 {
		t.Fatalf("acquires=%d want %d", s.Acquires, 16000)
	}
}

// TestMCSCRCullsUnderContention checks the CR mechanism actually engages:
// with many threads circulating, the unlock path must cull surplus waiters
// into the passive set.
func TestMCSCRCullsUnderContention(t *testing.T) {
	m := NewMCSCR(WithSeed(5))
	runWithTimeout(t, 60*time.Second, func() {
		var wg sync.WaitGroup
		for g := 0; g < 8; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; i < 3000; i++ {
					m.Lock()
					// Yield inside the critical section so the other
					// goroutines pile onto the chain and the unlock path
					// sees surplus (intermediate) waiters to cull.
					runtime.Gosched()
					m.Unlock()
				}
			}()
		}
		wg.Wait()
	})
	s := m.Stats()
	if s.Culls == 0 {
		t.Error("no culling under 8-way contention; CR never engaged")
	}
	if s.Reprovisions+s.Promotions == 0 {
		t.Error("threads were culled but never returned to the ACS")
	}
}

// waitUntil polls cond (yielding between polls) until it holds or the
// deadline passes, reporting whether it held.
func waitUntil(deadline time.Time, cond func() bool) bool {
	for !cond() {
		if time.Now().After(deadline) {
			return false
		}
		runtime.Gosched()
	}
	return true
}

// TestLOITERImpatienceHandoff drives the anti-starvation direct handoff
// deterministically. A statistical hammer is unreliable here: once the
// lost-wakeup fix wakes the standby promptly, it usually wins the freed
// lock before turning impatient (especially on few-CPU hosts). Instead
// the test orchestrates the protocol: hold the lock until a waiter
// becomes the parked standby (attempt 1), release and immediately retake
// it so the standby's next attempt fails too (attempt 2 > patience 1 →
// impatient), wait for it to park again, and unlock — the unlock path
// must now convey ownership by direct handoff (a Promotions event).
// Spin budget 0 makes each failed standby attempt park immediately, so
// the LOITER Parks counter is the progress signal. Rounds retry only the
// one racy step (retaking the lock before the woken standby).
func TestLOITERImpatienceHandoff(t *testing.T) {
	m := NewLOITER(WithPatience(1), WithArrivalSpins(1), WithSpinBudget(0))
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		base := m.Stats()
		m.Lock()
		done := make(chan struct{})
		go func() {
			m.Lock()
			m.Unlock()
			close(done)
		}()
		// Standby registered, failed attempt 1 against our hold, parked.
		if !waitUntil(deadline, func() bool { return m.Stats().Parks > base.Parks }) {
			break
		}
		// Snapshot Parks while the standby is still parked and we still
		// hold the lock: the counter cannot move until the release below
		// wakes it, so the snapshot cannot race past the second park.
		parked1 := m.Stats().Parks
		m.Unlock()
		if !m.TryLock() {
			// The woken standby beat us to the lock; no impatience this
			// round. Let it finish and retry.
			<-done
			continue
		}
		// Standby woke, failed attempt 2 (impatient now), parked again.
		ok := waitUntil(deadline, func() bool {
			select {
			case <-done: // standby slipped through after all
				return true
			default:
			}
			return m.Stats().Parks > parked1
		})
		m.Unlock() // must direct-handoff to the parked impatient standby
		if !ok {
			break
		}
		select {
		case <-done:
		case <-time.After(30 * time.Second):
			t.Fatal("standby stranded after impatient handoff")
		}
		if s := m.Stats(); s.Promotions > base.Promotions {
			return // direct handoff observed
		}
		// The standby acquired without the handoff (lost TryLock race
		// resolved late); retry.
	}
	t.Fatalf("impatient standby never received direct handoff: %+v", m.Stats())
}

// TestWorksWithSyncCond demonstrates drop-in compatibility: the locks are
// sync.Lockers, so they compose with the standard library's sync.Cond.
func TestWorksWithSyncCond(t *testing.T) {
	m := NewMCSCR(WithSeed(9))
	c := sync.NewCond(m)
	queue := 0
	var got atomic.Int64
	const items = 200
	var wg sync.WaitGroup
	wg.Add(2)
	go func() { // consumer
		defer wg.Done()
		for i := 0; i < items; i++ {
			m.Lock()
			for queue == 0 {
				c.Wait()
			}
			queue--
			got.Add(1)
			m.Unlock()
		}
	}()
	go func() { // producer
		defer wg.Done()
		for i := 0; i < items; i++ {
			m.Lock()
			queue++
			m.Unlock()
			c.Signal()
		}
	}()
	runWithTimeout(t, 60*time.Second, wg.Wait)
	if got.Load() != items {
		t.Fatalf("consumed %d items, want %d", got.Load(), items)
	}
}

func TestStatsAccounting(t *testing.T) {
	for name, build := range builders() {
		t.Run(name, func(t *testing.T) {
			m := build()
			type statser interface{ Stats() interface{} }
			const ops = 500
			runWithTimeout(t, 60*time.Second, func() {
				var wg sync.WaitGroup
				for g := 0; g < 4; g++ {
					wg.Add(1)
					go func() {
						defer wg.Done()
						for i := 0; i < ops; i++ {
							m.Lock()
							m.Unlock()
						}
					}()
				}
				wg.Wait()
			})
			var acquires uint64
			switch l := m.(type) {
			case *TAS:
				acquires = l.Stats().Acquires
			case *Ticket:
				acquires = l.Stats().Acquires
			case *CLH:
				acquires = l.Stats().Acquires
			case *MCS:
				acquires = l.Stats().Acquires
			case *MCSCR:
				acquires = l.Stats().Acquires
			case *LIFOCR:
				acquires = l.Stats().Acquires
			case *LOITER:
				acquires = l.Stats().Acquires
			default:
				t.Fatalf("no Stats accessor for %T", m)
			}
			if acquires != 4*ops {
				t.Fatalf("acquires=%d want %d", acquires, 4*ops)
			}
		})
	}
}

// TestFairnessPeriodZeroStillLive: disabling the Bernoulli trial must not
// cost liveness — reprovisioning alone has to return passive threads to
// the ACS whenever the chain drains.
func TestFairnessPeriodZeroStillLive(t *testing.T) {
	m := NewMCSCR(WithFairnessPeriod(0), WithSeed(11))
	runWithTimeout(t, 60*time.Second, func() {
		var wg sync.WaitGroup
		for g := 0; g < 8; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; i < 1000; i++ {
					m.Lock()
					m.Unlock()
					// A non-trivial NCS lets the chain drain occasionally
					// so reprovisioning is the only path home for culled
					// threads.
					for j := 0; j < 50; j++ {
						_ = j
					}
				}
			}()
		}
		wg.Wait()
	})
	if ps := m.PassiveSize(); ps != 0 {
		t.Fatalf("passive set not drained with fairness disabled: %d", ps)
	}
}

func TestWaitPolicyString(t *testing.T) {
	if WaitSpin.String() != "S" || WaitSpinThenPark.String() != "STP" {
		t.Fatal("unexpected WaitPolicy strings")
	}
	if WaitPolicy(99).String() != "?" {
		t.Fatal("unknown policy must stringify to ?")
	}
}

func TestOptionsClamp(t *testing.T) {
	c := buildConfig([]Option{WithSpinBudget(-5), WithPatience(0), WithArrivalSpins(0)})
	if c.policy.SpinBudget != 0 {
		t.Fatalf("negative spin budget not clamped: %d", c.policy.SpinBudget)
	}
	if c.patience != 1 || c.arrivalSpins != 1 {
		t.Fatalf("patience/arrivalSpins not clamped: %d %d", c.patience, c.arrivalSpins)
	}
}

// TestManyLocksIndependent ensures per-lock state (pools aside) does not
// leak across instances.
func TestManyLocksIndependent(t *testing.T) {
	locks := make([]*MCSCR, 8)
	for i := range locks {
		locks[i] = NewMCSCR(WithSeed(uint64(i)))
	}
	runWithTimeout(t, 60*time.Second, func() {
		var wg sync.WaitGroup
		for i := range locks {
			for g := 0; g < 3; g++ {
				wg.Add(1)
				go func(m *MCSCR) {
					defer wg.Done()
					for k := 0; k < 500; k++ {
						m.Lock()
						m.Unlock()
					}
				}(locks[i])
			}
		}
		wg.Wait()
	})
	for i, m := range locks {
		if got := m.Stats().Acquires; got != 1500 {
			t.Errorf("lock %d: acquires=%d want 1500", i, got)
		}
	}
}

func ExampleMCSCR() {
	m := NewMCSCR() // drop-in sync.Locker with concurrency restriction
	var shared int
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				m.Lock()
				shared++
				m.Unlock()
			}
		}()
	}
	wg.Wait()
	fmt.Println(shared)
	// Output: 400
}
