package sim

import (
	"repro/internal/core"
	"repro/metrics"
)

// LockKind selects the simulated lock algorithm.
type LockKind uint8

const (
	// KindNull is the degenerate lock (no exclusion; harness calibration).
	KindNull LockKind = iota
	// KindTAS is a test-and-set lock: competitive succession, global
	// spinning/polling, unbounded barging.
	KindTAS
	// KindMCS is classic MCS: strict FIFO, direct handoff.
	KindMCS
	// KindMCSCR is the Malthusian MCS lock: MCS plus culling, an explicit
	// passive set, reprovisioning and Bernoulli fairness promotion (§4).
	KindMCSCR
	// KindLIFO is a pure LIFO lock (most recently arrived waiter first)
	// with Bernoulli eldest promotion — LIFO-CR (Appendix A.2).
	KindLIFO
	// KindMCSCRN is the NUMA-aware Malthusian lock of §9.1 (future
	// work): MCSCR plus a preferred home socket and an explicit remote
	// list. At unlock time, waiters running on other sockets are culled
	// from the chain to the remote list, keeping the ACS homogeneous and
	// reducing lock migrations; periodically a new home socket is
	// selected from the remote list and its threads drained back,
	// conferring long-term fairness.
	KindMCSCRN
)

// String names the kind as the paper does.
func (k LockKind) String() string {
	switch k {
	case KindNull:
		return "null"
	case KindTAS:
		return "TAS"
	case KindMCS:
		return "MCS"
	case KindMCSCR:
		return "MCSCR"
	case KindLIFO:
		return "LIFOCR"
	case KindMCSCRN:
		return "MCSCRN"
	default:
		return "?"
	}
}

// WaitMode selects the waiting policy of a lock, condition variable or
// semaphore (§5.1).
type WaitMode uint8

const (
	// ModeSpin: unbounded polite spinning ("-S").
	ModeSpin WaitMode = iota
	// ModeSTP: spin-then-park with the configured spin budget ("-STP").
	ModeSTP
	// ModePark: park immediately (no spin phase).
	ModePark
)

// String returns the paper's suffix for the mode.
func (m WaitMode) String() string {
	switch m {
	case ModeSpin:
		return "S"
	case ModeSTP:
		return "STP"
	case ModePark:
		return "P"
	default:
		return "?"
	}
}

// LockSpec configures a simulated lock.
type LockSpec struct {
	Kind LockKind
	Mode WaitMode
	// FairnessPeriod is the Bernoulli promotion period for CR locks
	// (default 1000 when zero and the kind is a CR lock; set to
	// NoFairness to disable).
	FairnessPeriod uint64
}

// NoFairness disables long-term fairness promotion in a CR lock.
const NoFairness = ^uint64(0)

// LockStats counts CR events in a simulated lock.
type LockStats struct {
	Acquires         uint64
	Culls            uint64
	Reprovisions     uint64
	Promotions       uint64
	HandoffsToParked uint64 // handoffs that had to wake a parked successor
	LockMigrations   uint64 // ownership handoffs that crossed sockets
	HomeSwitches     uint64 // MCSCRN home-node changes
}

// Lock is a lock living inside the simulated world.
type Lock struct {
	e    *Engine
	kind LockKind
	mode WaitMode

	held  bool
	owner *Thread

	queue   []*Thread // MCS chain (FIFO) or LIFO stack (last index = top)
	passive []*Thread // MCSCR passive set; last index = most recently culled, index 0 = eldest

	// MCSCRN state: preferred NUMA node and the remote-thread list.
	home   int
	remote []*Thread

	lastOwnerSocket int // previous owner's socket, for migration accounting

	trial *core.Trial

	hist  metrics.History
	stats LockStats
}

// NewLock creates a lock in this engine's world.
func (e *Engine) NewLock(spec LockSpec) *Lock {
	period := spec.FairnessPeriod
	switch {
	case period == NoFairness:
		period = 0
	case period == 0:
		period = core.DefaultFairnessPeriod
	}
	l := &Lock{
		e:               e,
		kind:            spec.Kind,
		mode:            spec.Mode,
		lastOwnerSocket: -1,
		trial:           core.NewTrial(period, e.cfg.Seed*7919+uint64(len(e.locks))+1),
	}
	e.locks = append(e.locks, l)
	return l
}

// History returns the admission history recorded since the last metrics
// reset.
func (l *Lock) History() metrics.History { return l.hist }

// Stats returns the lock's event counters.
func (l *Lock) Stats() LockStats { return l.stats }

// PassiveSize returns the current passive-set size (MCSCR).
func (l *Lock) PassiveSize() int { return len(l.passive) }

// QueueLen returns the current waiter-queue length.
func (l *Lock) QueueLen() int { return len(l.queue) }

// Held reports whether the lock is currently held.
func (l *Lock) Held() bool { return l.held }

func (l *Lock) admit(t *Thread) {
	l.held = true
	l.owner = t
	l.hist = append(l.hist, t.ID)
	l.stats.Acquires++
}

// tryAcquireNow attempts an immediate acquisition (arrival fast path).
// For TAS this is barging; for queue locks it succeeds only when the lock
// is free and unqueued.
func (l *Lock) tryAcquireNow(t *Thread) bool {
	if l.kind == KindNull {
		l.hist = append(l.hist, t.ID)
		l.stats.Acquires++
		return true
	}
	if l.held {
		return false
	}
	if l.kind != KindTAS && (len(l.queue) > 0 || len(l.passive) > 0 || len(l.remote) > 0) {
		// Queue locks are FIFO at arrival: joining behind waiters. (A
		// free lock with a non-empty queue is transient in the model —
		// ownership transfers atomically — so this is mostly the passive
		// check for MCSCR/MCSCRN.)
		return false
	}
	l.admit(t)
	if l.e.cfg.Sockets > 1 {
		// Track the owner's socket for migration accounting; barging
		// onto a free lock is not a handoff, so no penalty is charged.
		l.lastOwnerSocket = l.e.SocketOf(t)
	}
	return true
}

// tryBargeFromPoll is the TAS polling acquisition: a spinning waiter
// re-tests the lock word. On success the waiter is dequeued and becomes
// owner; competitive succession means arrivals may have barged first.
func (l *Lock) tryBargeFromPoll(t *Thread) bool {
	if l.held {
		return false
	}
	l.removeWaiter(t)
	l.admit(t)
	t.granted = true
	return true
}

// enqueue adds a waiting thread per the lock's discipline.
func (l *Lock) enqueue(t *Thread) {
	// FIFO locks dequeue from the front; the LIFO lock pops from the
	// back, so a plain append is a stack push there.
	l.queue = append(l.queue, t)
}

func (l *Lock) removeWaiter(t *Thread) {
	for i, w := range l.queue {
		if w == t {
			l.queue = append(l.queue[:i], l.queue[i+1:]...)
			return
		}
	}
}

// release ends t's ownership and performs succession. It returns the
// administrative cost borne by the releasing thread (beyond the base lock
// operation): waking a parked successor costs a kernel call made while the
// lock is conceptually still in handover — the artificial critical-section
// stretch of §5.2.
func (l *Lock) release(t *Thread) Cycles {
	if l.kind == KindNull {
		return 0
	}
	if !l.held || l.owner != t {
		panic("sim: release by non-owner")
	}
	l.owner = nil

	switch l.kind {
	case KindTAS:
		l.held = false
		// Competitive succession: spinning waiters will notice at their
		// next poll; if every waiter is parked, wake one heir presumptive
		// (most recently parked, matching the Solaris mostly-LIFO queue).
		for _, w := range l.queue {
			if w.state == stateSpinning || w.state == stateReady {
				return 0
			}
		}
		if n := len(l.queue); n > 0 {
			heir := l.queue[n-1]
			return l.e.wake(heir) // wakes to retry; granted stays false
		}
		return 0

	case KindMCS:
		if len(l.queue) == 0 {
			l.held = false
			return 0
		}
		succ := l.queue[0]
		l.queue = l.queue[1:]
		return l.grant(succ)

	case KindLIFO:
		if len(l.queue) == 0 {
			l.held = false
			return 0
		}
		// Fairness: occasionally grant the eldest (bottom of stack,
		// which is the front of the slice).
		if len(l.queue) > 1 && l.trial.Promote() {
			succ := l.queue[0]
			l.queue = l.queue[1:]
			l.stats.Promotions++
			return l.grant(succ)
		}
		top := len(l.queue) - 1
		succ := l.queue[top]
		l.queue = l.queue[:top]
		return l.grant(succ)

	case KindMCSCR:
		return l.releaseMCSCR()

	case KindMCSCRN:
		return l.releaseMCSCRN()
	}
	return 0
}

// releaseMCSCR is the §4 unlock path: fairness promotion, reprovisioning,
// culling, then direct handoff.
func (l *Lock) releaseMCSCR() Cycles {
	// Long-term fairness: cede to the eldest passive thread (front of
	// the slice).
	if len(l.passive) > 0 && l.trial.Promote() {
		succ := l.passive[0]
		l.passive = l.passive[1:]
		l.stats.Promotions++
		return l.grant(succ)
	}
	if len(l.queue) == 0 {
		// Work conservation: reprovision the most recently culled thread
		// (back of the slice).
		if len(l.passive) > 0 {
			last := len(l.passive) - 1
			succ := l.passive[last]
			l.passive = l.passive[:last]
			l.stats.Reprovisions++
			return l.grant(succ)
		}
		l.held = false
		return 0
	}
	// Culling: excise the oldest waiter if it is not alone (i.e. there
	// are intermediate nodes between owner and tail).
	if len(l.queue) >= 2 {
		culled := l.queue[0]
		l.queue = l.queue[1:]
		l.passive = append(l.passive, culled)
		l.stats.Culls++
	}
	succ := l.queue[0]
	l.queue = l.queue[1:]
	return l.grant(succ)
}

// releaseMCSCRN is the §9.1 unlock path: like MCSCR, but the culling
// criterion also considers the demographics of the chain — remote threads
// (running on a socket other than the current home) are culled to the
// remote list, and a Bernoulli trial periodically elects a new home node
// from the remote list and drains its threads back into the chain.
func (l *Lock) releaseMCSCRN() Cycles {
	// Long-term fairness: on a successful trial, either promote the
	// eldest local passive thread (as in MCSCR) or elect a new home node
	// from the remote list and drain that node's threads into the chain.
	// Both lots must be served or their occupants starve.
	if (len(l.remote) > 0 || len(l.passive) > 0) && l.trial.Promote() {
		usePassive := len(l.passive) > 0 && (len(l.remote) == 0 || l.trial.Prob(0.5))
		if usePassive {
			succ := l.passive[0]
			l.passive = l.passive[1:]
			l.stats.Promotions++
			return l.grant(succ)
		}
		newHome := l.e.SocketOf(l.remote[0])
		l.home = newHome
		l.stats.HomeSwitches++
		kept := l.remote[:0]
		for _, w := range l.remote {
			if l.e.SocketOf(w) == newHome {
				l.queue = append(l.queue, w)
			} else {
				kept = append(kept, w)
			}
		}
		l.remote = kept
		l.stats.Promotions++
	}
	// Cull remote threads from the head of the chain (the owner
	// "inspects the next threads in the MCS chain and culls remote
	// threads from the main chain to the remote list"), keeping at least
	// one waiter to grant.
	for len(l.queue) >= 2 && l.e.SocketOf(l.queue[0]) != l.home {
		l.remote = append(l.remote, l.queue[0])
		l.queue = l.queue[1:]
		l.stats.Culls++
	}
	// Local surplus culling, as in MCSCR.
	if len(l.queue) >= 2 && l.e.SocketOf(l.queue[0]) == l.home && l.e.SocketOf(l.queue[1]) == l.home {
		l.passive = append(l.passive, l.queue[0])
		l.queue = l.queue[1:]
		l.stats.Culls++
	}
	if len(l.queue) == 0 {
		// Deficit: reprovision from the local passive set first, then
		// from the remote list (switching home to the donor's node).
		if len(l.passive) > 0 {
			last := len(l.passive) - 1
			succ := l.passive[last]
			l.passive = l.passive[:last]
			l.stats.Reprovisions++
			return l.grant(succ)
		}
		if len(l.remote) > 0 {
			last := len(l.remote) - 1
			succ := l.remote[last]
			l.remote = l.remote[:last]
			l.home = l.e.SocketOf(succ)
			l.stats.HomeSwitches++
			l.stats.Reprovisions++
			return l.grant(succ)
		}
		l.held = false
		return 0
	}
	succ := l.queue[0]
	l.queue = l.queue[1:]
	l.home = l.e.SocketOf(succ)
	return l.grant(succ)
}

// RemoteSize reports the current remote-list size (MCSCRN).
func (l *Lock) RemoteSize() int { return len(l.remote) }

// grant conveys ownership to succ (direct handoff) and returns the waker's
// cost. Handoffs that cross sockets pay the remote coherence penalty and
// count as lock migrations.
func (l *Lock) grant(succ *Thread) Cycles {
	l.admit(succ)
	succ.granted = true
	if succ.state == stateParked {
		l.stats.HandoffsToParked++
	}
	var cost Cycles
	if l.e.cfg.Sockets > 1 {
		s := l.e.SocketOf(succ)
		if l.lastOwnerSocket >= 0 && s != l.lastOwnerSocket {
			l.stats.LockMigrations++
			cost += l.e.cfg.RemoteHandoffPenalty
		}
		l.lastOwnerSocket = s
	}
	return cost + l.e.wake(succ)
}
