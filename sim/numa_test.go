package sim

import "testing"

// twoSocketConfig models a T5-2 with both sockets online: 32 cores over
// 2 NUMA nodes.
func twoSocketConfig() Config {
	cfg := DefaultConfig(16)
	cfg.Cores = 8
	cfg.StrandsPerCore = 4
	cfg.Sockets = 2
	cfg.StartStagger = 1_000
	return cfg
}

func TestSocketOfCore(t *testing.T) {
	cfg := twoSocketConfig()
	if cfg.SocketOfCore(0) != 0 || cfg.SocketOfCore(3) != 0 {
		t.Fatal("low cores must be socket 0")
	}
	if cfg.SocketOfCore(4) != 1 || cfg.SocketOfCore(7) != 1 {
		t.Fatal("high cores must be socket 1")
	}
	one := DefaultConfig(16)
	if one.SocketOfCore(15) != 0 {
		t.Fatal("single-socket machine has only socket 0")
	}
}

func runNUMA(t *testing.T, kind LockKind, threads int) (Result, *Lock) {
	t.Helper()
	cfg := twoSocketConfig()
	e := New(cfg)
	l := e.NewLock(LockSpec{Kind: kind, Mode: ModeSTP})
	for i := 0; i < threads; i++ {
		e.Spawn(&circuit{l: l, ncs: 4000, cs: 1500})
	}
	res := e.RunMeasured(2_000_000, 12_000_000)
	if res.Halted {
		t.Fatalf("%v halted", kind)
	}
	return res, l
}

// TestMCSCRNReducesLockMigrations checks §9.1's claim: keeping the ACS
// homogeneous (one home node) reduces lock migrations versus plain MCSCR,
// which ignores demographics.
func TestMCSCRNReducesLockMigrations(t *testing.T) {
	resCR, lcr := runNUMA(t, KindMCSCR, 16)
	resN, ln := runNUMA(t, KindMCSCRN, 16)
	t.Logf("MCSCR : steps=%d migrations=%d", resCR.Steps, lcr.Stats().LockMigrations)
	t.Logf("MCSCRN: steps=%d migrations=%d homeswitches=%d remote=%d",
		resN.Steps, ln.Stats().LockMigrations, ln.Stats().HomeSwitches, ln.RemoteSize())
	crMig := float64(lcr.Stats().LockMigrations) / float64(resCR.Steps)
	nMig := float64(ln.Stats().LockMigrations) / float64(resN.Steps)
	if nMig >= crMig {
		t.Fatalf("MCSCRN migration rate %.3f not below MCSCR %.3f", nMig, crMig)
	}
	if resN.Steps*10 < resCR.Steps*9 {
		t.Fatalf("MCSCRN throughput %d fell well below MCSCR %d", resN.Steps, resCR.Steps)
	}
}

// TestMCSCRNLongTermFairness: home switching must eventually serve both
// sockets' threads.
func TestMCSCRNLongTermFairness(t *testing.T) {
	cfg := twoSocketConfig()
	e := New(cfg)
	l := e.NewLock(LockSpec{Kind: KindMCSCRN, Mode: ModeSTP, FairnessPeriod: 100})
	for i := 0; i < 12; i++ {
		e.Spawn(&circuit{l: l, ncs: 2000, cs: 1500})
	}
	e.RunMeasured(2_000_000, 30_000_000)
	if l.Stats().HomeSwitches == 0 {
		t.Fatal("home node never rotated")
	}
	for _, th := range e.Threads() {
		if th.Steps == 0 {
			t.Fatalf("thread %d starved under MCSCRN", th.ID)
		}
	}
}

// TestMCSCRNQuiescence: with finite work, no thread may be stranded on
// the remote list.
func TestMCSCRNQuiescence(t *testing.T) {
	cfg := twoSocketConfig()
	e := New(cfg)
	l := e.NewLock(LockSpec{Kind: KindMCSCRN, Mode: ModeSTP})
	const iters = 300
	for i := 0; i < 12; i++ {
		n := 0
		e.Spawn(BehaviorFunc(func(t *Thread) Action {
			switch n % 3 {
			case 0:
				n++
				return Action{Kind: ActAcquire, Lock: l}
			case 1:
				n++
				return Action{Kind: ActRelease, Lock: l}
			default:
				n++
				if n/3 >= iters {
					return Action{Kind: ActDone}
				}
				return Action{Kind: ActStep}
			}
		}))
	}
	e.Run(1 << 40)
	for _, th := range e.Threads() {
		if th.State() != "done" {
			t.Fatalf("thread %d stuck (%s); queue=%d passive=%d remote=%d",
				th.ID, th.State(), l.QueueLen(), l.PassiveSize(), l.RemoteSize())
		}
	}
	if l.Held() || l.QueueLen() != 0 || l.PassiveSize() != 0 || l.RemoteSize() != 0 {
		t.Fatal("MCSCRN not quiescent after all threads finished")
	}
}

// TestDispatchPrefersHomeSocket: threads should not ping-pong across
// sockets under light load.
func TestDispatchPrefersHomeSocket(t *testing.T) {
	cfg := twoSocketConfig()
	e := New(cfg)
	_ = e.NewLock(LockSpec{Kind: KindNull})
	th := e.Spawn(BehaviorFunc(func(t *Thread) Action {
		return Action{Kind: ActWork, Dur: 1000}
	}))
	e.Run(2_000_000)
	if got := e.SocketOf(th); got != 0 {
		t.Fatalf("lone thread migrated to socket %d", got)
	}
}
