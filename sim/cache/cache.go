// Package cache models the memory-system resources whose exhaustion
// drives the scalability collapse studied in "Malthusian Locks": a private
// per-core cache, a shared last-level cache (LLC), a per-core data TLB,
// and DRAM-channel congestion.
//
// The model mirrors the paper's own methodology: §6.1 describes "a special
// version of RandArray where we modeled the cache hierarchy of the system
// with a faithful functional software emulation", with cache lines
// "augmented ... with a field that identified which CPU had installed the
// line" so that intrinsic self-misses can be discriminated from extrinsic
// misses caused by sharing. This package is that emulation, used here as
// the primary substrate (the evaluation hardware — a SPARC T5 — is not
// available).
//
// Capacities may be scaled down (Config.Scale) to keep simulations fast;
// workloads scale their footprints by the same factor, preserving the
// footprint/capacity ratios that determine where collapse begins.
package cache

// Latencies in CPU cycles. The absolute values are representative of the
// T5 generation; the experiments depend only on their ordering and rough
// ratios (private ≪ LLC ≪ DRAM, TLB miss ≈ a DRAM access).
const (
	DefaultPrivateHitLat = 3
	DefaultLLCHitLat     = 40
	DefaultDRAMLat       = 300
	DefaultTLBMissLat    = 250
)

// Config describes the modeled hierarchy. All byte capacities are given at
// full (paper) scale and divided by Scale at construction; entry counts
// (TLB) are never scaled, matching how we also do not scale thread counts.
type Config struct {
	Cores int // number of cores (each gets a private cache and TLB)

	LineBytes int // coherence granule (64)
	PageBytes int // page size for the TLB (8192, large pages)

	PrivateBytes int // per-core private (L1+L2) capacity, full scale
	PrivateWays  int
	LLCBytes     int // shared LLC capacity, full scale
	LLCWays      int
	TLBEntries   int // per-core, fully associative

	Scale int // capacity divisor (>=1); workloads scale footprints equally

	PrivateHitLat int64
	LLCHitLat     int64
	DRAMLat       int64
	TLBMissLat    int64
}

// T5Config returns the hierarchy of one SPARC T5 socket as used in §6:
// 16 cores, 8 MB shared L3, 128 KB private L2 per core, 128-entry
// fully-associative per-core DTLB, 8 KB pages.
func T5Config(scale int) Config {
	if scale < 1 {
		scale = 1
	}
	return Config{
		Cores:         16,
		LineBytes:     64,
		PageBytes:     8192,
		PrivateBytes:  128 << 10,
		PrivateWays:   8,
		LLCBytes:      8 << 20,
		LLCWays:       16,
		TLBEntries:    128,
		Scale:         scale,
		PrivateHitLat: DefaultPrivateHitLat,
		LLCHitLat:     DefaultLLCHitLat,
		DRAMLat:       DefaultDRAMLat,
		TLBMissLat:    DefaultTLBMissLat,
	}
}

// Stats aggregates hierarchy event counts.
type Stats struct {
	Accesses       uint64
	PrivateHits    uint64
	LLCHits        uint64
	LLCMisses      uint64
	TLBMisses      uint64
	SelfEvicts     uint64 // LLC line displaced by the CPU that installed it
	ExtrinsicEvict uint64 // LLC line displaced by a different CPU (sharing)
}

// Hierarchy is the full modeled memory system. It is not safe for
// concurrent use; the simulator is single-threaded and deterministic.
type Hierarchy struct {
	cfg  Config
	priv []setAssoc // per core
	llc  setAssoc
	tlb  []tlbLRU // per core

	// DRAM-channel congestion: an EWMA of the LLC miss indicator. As the
	// miss rate rises, misses get more expensive, "making LLC misses even
	// more expensive and compounding a deleterious effect" (§2).
	missEWMA float64

	stats Stats
	tick  int64 // logical access counter used as the LRU clock
}

// New constructs a hierarchy from cfg.
func New(cfg Config) *Hierarchy {
	if cfg.Scale < 1 {
		cfg.Scale = 1
	}
	if cfg.LineBytes == 0 {
		cfg.LineBytes = 64
	}
	if cfg.PageBytes == 0 {
		cfg.PageBytes = 8192
	}
	h := &Hierarchy{cfg: cfg}
	h.priv = make([]setAssoc, cfg.Cores)
	for i := range h.priv {
		h.priv[i] = newSetAssoc(cfg.PrivateBytes/cfg.Scale, cfg.LineBytes, cfg.PrivateWays)
	}
	h.llc = newSetAssoc(cfg.LLCBytes/cfg.Scale, cfg.LineBytes, cfg.LLCWays)
	h.tlb = make([]tlbLRU, cfg.Cores)
	for i := range h.tlb {
		h.tlb[i] = newTLBLRU(cfg.TLBEntries)
	}
	return h
}

// Config returns the (scaled) configuration in effect.
func (h *Hierarchy) Config() Config { return h.cfg }

// Stats returns a copy of the accumulated counters.
func (h *Hierarchy) Stats() Stats { return h.stats }

// ResetStats zeroes the counters without disturbing cache contents; used
// to discard warmup effects.
func (h *Hierarchy) ResetStats() { h.stats = Stats{} }

// LLCLines returns the number of lines the scaled LLC holds.
func (h *Hierarchy) LLCLines() int { return h.llc.sets * h.llc.ways }

// Access performs one memory access by the given CPU on the given core and
// returns its latency in cycles. Write accesses are modeled identically to
// reads for residency purposes (the workloads in the paper avoid
// write-sharing in their access streams; coherence costs on lock metadata
// are charged separately by the lock models).
func (h *Hierarchy) Access(core, cpu int, addr uint64) int64 {
	h.tick++
	h.stats.Accesses++
	var lat int64

	// TLB first: per-core, fully associative.
	page := addr / uint64(h.cfg.PageBytes)
	if !h.tlb[core].touch(page, h.tick) {
		h.stats.TLBMisses++
		lat += h.cfg.TLBMissLat
	}

	line := addr / uint64(h.cfg.LineBytes)
	if h.priv[core].touch(line, int32(cpu), h.tick) {
		h.stats.PrivateHits++
		return lat + h.cfg.PrivateHitLat
	}
	// Private miss: consult the shared LLC.
	if h.llc.touch(line, int32(cpu), h.tick) {
		h.stats.LLCHits++
		h.priv[core].install(line, int32(cpu), h.tick)
		h.missEWMA += (0 - h.missEWMA) / 256
		return lat + h.cfg.LLCHitLat
	}
	// LLC miss: DRAM access with congestion.
	h.stats.LLCMisses++
	h.missEWMA += (1 - h.missEWMA) / 256
	dram := h.cfg.DRAMLat + int64(2*h.missEWMA*float64(h.cfg.DRAMLat))
	evicted, installer := h.llc.install(line, int32(cpu), h.tick)
	if evicted {
		if installer == int32(cpu) {
			h.stats.SelfEvicts++
		} else {
			h.stats.ExtrinsicEvict++
		}
	}
	h.priv[core].install(line, int32(cpu), h.tick)
	return lat + h.cfg.LLCHitLat + dram
}

// setAssoc is a set-associative cache with true-LRU replacement and
// installer tags.
type setAssoc struct {
	sets, ways int
	tags       []uint64 // sets*ways; 0 means empty (line 0 remapped)
	installer  []int32
	lastUse    []int64
}

func newSetAssoc(capacityBytes, lineBytes, ways int) setAssoc {
	lines := capacityBytes / lineBytes
	if lines < ways {
		lines = ways
	}
	sets := lines / ways
	if sets < 1 {
		sets = 1
	}
	n := sets * ways
	return setAssoc{
		sets:      sets,
		ways:      ways,
		tags:      make([]uint64, n),
		installer: make([]int32, n),
		lastUse:   make([]int64, n),
	}
}

// key remaps line 0 so the zero tag can mean "empty".
func cacheKey(line uint64) uint64 { return line + 1 }

// touch looks up the line, refreshing LRU state on a hit. It reports
// whether the line was present.
func (c *setAssoc) touch(line uint64, cpu int32, now int64) bool {
	k := cacheKey(line)
	base := int(line%uint64(c.sets)) * c.ways
	for w := 0; w < c.ways; w++ {
		if c.tags[base+w] == k {
			c.lastUse[base+w] = now
			return true
		}
	}
	return false
}

// install places the line, evicting the LRU way if the set is full. It
// reports whether a valid line was evicted and, if so, who installed it.
func (c *setAssoc) install(line uint64, cpu int32, now int64) (evicted bool, installer int32) {
	k := cacheKey(line)
	base := int(line%uint64(c.sets)) * c.ways
	victim := base
	for w := 0; w < c.ways; w++ {
		i := base + w
		if c.tags[i] == k { // already present (double install); refresh
			c.lastUse[i] = now
			return false, 0
		}
		if c.tags[i] == 0 {
			victim = i
			// Prefer empty ways but keep scanning for a pre-existing copy.
			continue
		}
		if c.tags[victim] != 0 && c.lastUse[i] < c.lastUse[victim] {
			victim = i
		}
	}
	evicted = c.tags[victim] != 0
	installer = c.installer[victim]
	c.tags[victim] = k
	c.installer[victim] = cpu
	c.lastUse[victim] = now
	return evicted, installer
}

// tlbLRU is a fully associative translation cache with exact LRU,
// implemented as a hash map plus an intrusive doubly-linked list so that
// behaviour is deterministic (no map iteration).
type tlbLRU struct {
	capacity int
	entries  map[uint64]*tlbNode
	head     *tlbNode // most recently used
	tail     *tlbNode // least recently used
}

type tlbNode struct {
	page       uint64
	prev, next *tlbNode
}

func newTLBLRU(capacity int) tlbLRU {
	return tlbLRU{capacity: capacity, entries: make(map[uint64]*tlbNode, capacity+1)}
}

// touch records a translation use and reports whether it hit.
func (t *tlbLRU) touch(page uint64, now int64) bool {
	if n, ok := t.entries[page]; ok {
		t.moveToFront(n)
		return true
	}
	n := &tlbNode{page: page}
	t.entries[page] = n
	t.pushFront(n)
	if len(t.entries) > t.capacity {
		lru := t.tail
		t.unlink(lru)
		delete(t.entries, lru.page)
	}
	return false
}

func (t *tlbLRU) pushFront(n *tlbNode) {
	n.next = t.head
	n.prev = nil
	if t.head != nil {
		t.head.prev = n
	}
	t.head = n
	if t.tail == nil {
		t.tail = n
	}
}

func (t *tlbLRU) unlink(n *tlbNode) {
	if n.prev != nil {
		n.prev.next = n.next
	} else {
		t.head = n.next
	}
	if n.next != nil {
		n.next.prev = n.prev
	} else {
		t.tail = n.prev
	}
	n.prev, n.next = nil, nil
}

func (t *tlbLRU) moveToFront(n *tlbNode) {
	if t.head == n {
		return
	}
	t.unlink(n)
	t.pushFront(n)
}
