package cache

import (
	"testing"
	"testing/quick"

	"repro/internal/xrand"
)

func tiny() *Hierarchy {
	cfg := T5Config(1)
	cfg.Cores = 2
	cfg.PrivateBytes = 1 << 10 // 16 lines
	cfg.PrivateWays = 2
	cfg.LLCBytes = 4 << 10 // 64 lines
	cfg.LLCWays = 4
	cfg.TLBEntries = 4
	return New(cfg)
}

func TestHitAfterInstall(t *testing.T) {
	h := tiny()
	cold := h.Access(0, 0, 4096)
	warm := h.Access(0, 0, 4096)
	if cold <= warm {
		t.Fatalf("cold access (%d) must cost more than warm (%d)", cold, warm)
	}
	if warm != DefaultPrivateHitLat {
		t.Fatalf("warm hit latency %d want %d", warm, DefaultPrivateHitLat)
	}
	s := h.Stats()
	if s.LLCMisses != 1 || s.PrivateHits != 1 {
		t.Fatalf("stats: %+v", s)
	}
}

func TestWorkingSetWithinLLCStopsMissing(t *testing.T) {
	h := tiny() // LLC 64 lines
	// A 32-line working set, cycled repeatedly, must stop missing in the
	// LLC after the first pass even though it exceeds the private cache.
	for pass := 0; pass < 5; pass++ {
		for i := 0; i < 32; i++ {
			h.Access(0, 0, uint64(i)*64)
		}
	}
	s := h.Stats()
	if s.LLCMisses != 32 {
		t.Fatalf("LLC misses %d, want exactly one cold pass (32)", s.LLCMisses)
	}
}

func TestWorkingSetBeyondLLCThrashes(t *testing.T) {
	h := tiny() // LLC 64 lines, 4-way, 16 sets
	// A 128-line sequential working set (2x capacity) with LRU and a
	// cyclic scan misses on every access after warmup: the classic LRU
	// pathology the paper's collapse region rests on.
	var misses0 uint64
	for pass := 0; pass < 4; pass++ {
		if pass == 1 {
			misses0 = h.Stats().LLCMisses
		}
		for i := 0; i < 128; i++ {
			h.Access(0, 0, uint64(i)*64)
		}
	}
	s := h.Stats()
	missRate := float64(s.LLCMisses-misses0) / float64(3*128)
	if missRate < 0.95 {
		t.Fatalf("cyclic over-capacity scan should thrash; miss rate %.2f", missRate)
	}
}

func TestExtrinsicDisplacementAttribution(t *testing.T) {
	h := tiny()
	// CPU 0 (core 0) fills the LLC, then CPU 9 (core 1) streams over a
	// distinct over-capacity region: evictions of CPU 0's lines must be
	// counted as extrinsic (sharing-induced).
	for i := 0; i < 64; i++ {
		h.Access(0, 0, uint64(i)*64)
	}
	for i := 0; i < 128; i++ {
		h.Access(1, 9, uint64(1<<20)+uint64(i)*64)
	}
	s := h.Stats()
	if s.ExtrinsicEvict == 0 {
		t.Fatal("no extrinsic displacement recorded")
	}
}

func TestSelfDisplacement(t *testing.T) {
	h := tiny()
	// One CPU streaming over 4x capacity displaces only its own lines.
	for i := 0; i < 512; i++ {
		h.Access(0, 0, uint64(i)*64)
	}
	s := h.Stats()
	if s.ExtrinsicEvict != 0 {
		t.Fatalf("single-CPU stream produced %d extrinsic evictions", s.ExtrinsicEvict)
	}
	if s.SelfEvicts == 0 {
		t.Fatal("over-capacity stream must self-evict")
	}
}

func TestPrivateCachePerCore(t *testing.T) {
	h := tiny()
	h.Access(0, 0, 4096)
	h.Access(1, 8, 4160) // prime core 1's TLB for the page (same 8KB page)
	// Same line from the other core: private miss, LLC hit, TLB warm.
	lat := h.Access(1, 8, 4096)
	if lat != DefaultLLCHitLat {
		t.Fatalf("cross-core access latency %d want LLC hit %d", lat, DefaultLLCHitLat)
	}
}

func TestTLBCapacityAndLRU(t *testing.T) {
	h := tiny() // 4-entry TLB, 8KB pages
	page := func(i int) uint64 { return uint64(i) * 8192 }
	for i := 0; i < 4; i++ {
		h.Access(0, 0, page(i))
	}
	base := h.Stats().TLBMisses
	if base != 4 {
		t.Fatalf("cold TLB misses %d want 4", base)
	}
	// All four pages resident: no further misses.
	for i := 0; i < 4; i++ {
		h.Access(0, 0, page(i))
	}
	if h.Stats().TLBMisses != 4 {
		t.Fatal("TLB missed on resident pages")
	}
	// Touch a 5th page: evicts LRU (page 0).
	h.Access(0, 0, page(4))
	h.Access(0, 0, page(1)) // still resident
	if h.Stats().TLBMisses != 5 {
		t.Fatalf("misses %d want 5", h.Stats().TLBMisses)
	}
	h.Access(0, 0, page(0)) // evicted; must miss
	if h.Stats().TLBMisses != 6 {
		t.Fatalf("misses %d want 6 (LRU eviction of page 0)", h.Stats().TLBMisses)
	}
}

func TestTLBSpanMathOfRingWalker(t *testing.T) {
	// Figure 5's arithmetic: two 50-page NCS rings plus a 50-page CS ring
	// on one core = 150 pages > 128 entries → sustained TLB misses; one
	// NCS ring plus CS = 100 pages ≤ 128 → no misses after warmup.
	cfg := T5Config(1)
	cfg.Cores = 1
	h := New(cfg)
	pages := func(base, n int) {
		for i := 0; i < n; i++ {
			h.Access(0, 0, uint64(base+i)*8192)
		}
	}
	for pass := 0; pass < 3; pass++ {
		pages(0, 50)    // NCS ring A
		pages(1000, 50) // shared CS ring
	}
	warm := h.Stats().TLBMisses
	if warm != 100 {
		t.Fatalf("100-page span should only cold-miss: %d", warm)
	}
	// Second thread's ring joins the same core: span 150 > 128 thrashes.
	before := h.Stats().TLBMisses
	for pass := 0; pass < 3; pass++ {
		pages(0, 50)
		pages(2000, 50) // NCS ring B
		pages(1000, 50)
	}
	if extra := h.Stats().TLBMisses - before; extra < 300 {
		t.Fatalf("150-page span must thrash the 128-entry TLB: %d extra misses", extra)
	}
}

func TestDRAMCongestionRaisesMissCost(t *testing.T) {
	h := tiny()
	// Sustained thrashing should drive the congestion term up, making
	// later misses cost more than the first.
	first := h.Access(0, 0, 0)
	var last int64
	for i := 1; i < 4096; i++ {
		last = h.Access(0, 0, uint64(i)*64*16) // distinct sets, always miss
	}
	if last <= first {
		t.Fatalf("congested miss (%d) should exceed cold miss (%d)", last, first)
	}
}

func TestScaleDividesCapacity(t *testing.T) {
	full := New(T5Config(1))
	scaled := New(T5Config(16))
	if full.LLCLines() != 16*scaled.LLCLines() {
		t.Fatalf("scale 16: lines %d vs %d", full.LLCLines(), scaled.LLCLines())
	}
}

func TestResetStatsKeepsContents(t *testing.T) {
	h := tiny()
	h.Access(0, 0, 4096)
	h.ResetStats()
	if lat := h.Access(0, 0, 4096); lat != DefaultPrivateHitLat {
		t.Fatal("ResetStats must not flush cache contents")
	}
	if h.Stats().Accesses != 1 {
		t.Fatal("stats not reset")
	}
}

func TestDeterminism(t *testing.T) {
	run := func() Stats {
		h := tiny()
		rng := xrand.New(42)
		for i := 0; i < 20000; i++ {
			core := rng.Intn(2)
			h.Access(core, core*8, uint64(rng.Intn(1<<14))*64)
		}
		return h.Stats()
	}
	if run() != run() {
		t.Fatal("identical access streams produced different stats")
	}
}

// TestLRUMatchesModel cross-checks the set-associative array against a
// brute-force model on random streams.
func TestLRUMatchesModel(t *testing.T) {
	f := func(seed uint64) bool {
		c := newSetAssoc(8*64, 64, 4) // 2 sets, 4 ways
		type entry struct {
			line uint64
			use  int64
		}
		model := map[int][]entry{} // set -> entries
		rng := xrand.New(seed)
		for now := int64(1); now <= 400; now++ {
			line := uint64(rng.Intn(32))
			set := int(line % 2)
			// model lookup
			hitModel := false
			for i := range model[set] {
				if model[set][i].line == line {
					model[set][i].use = now
					hitModel = true
					break
				}
			}
			hit := c.touch(line, 0, now)
			if hit != hitModel {
				return false
			}
			if !hit {
				c.install(line, 0, now)
				// model install with LRU eviction
				if len(model[set]) >= 4 {
					lru := 0
					for i := range model[set] {
						if model[set][i].use < model[set][lru].use {
							lru = i
						}
					}
					model[set] = append(model[set][:lru], model[set][lru+1:]...)
				}
				model[set] = append(model[set], entry{line, now})
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkAccess(b *testing.B) {
	h := New(T5Config(16))
	rng := xrand.New(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Access(0, 0, uint64(rng.Intn(1<<16))*64)
	}
}
