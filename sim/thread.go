package sim

import "repro/internal/xrand"

// ActionKind enumerates the primitive operations a simulated thread can
// perform.
type ActionKind uint8

const (
	// ActWork executes Dur cycles of computation plus the memory accesses
	// in Addrs (each charged through the cache hierarchy).
	ActWork ActionKind = iota
	// ActAcquire acquires Lock, waiting per the lock's policy.
	ActAcquire
	// ActRelease releases Lock.
	ActRelease
	// ActWait releases Lock, waits on Cond, and reacquires Lock before
	// continuing (condition-variable wait; callers re-check predicates in
	// their Behavior, as with any condition variable).
	ActWait
	// ActSignal wakes one waiter of Cond.
	ActSignal
	// ActBroadcast wakes all waiters of Cond.
	ActBroadcast
	// ActSemAcquire obtains one permit from Sem, waiting if necessary.
	ActSemAcquire
	// ActSemRelease returns one permit to Sem.
	ActSemRelease
	// ActStep marks the completion of one workload iteration; it takes no
	// simulated time and increments the thread's step counter (the
	// benchmarks' unit of throughput).
	ActStep
	// ActDone terminates the thread.
	ActDone
)

// Action is one primitive operation returned by a Behavior.
type Action struct {
	Kind  ActionKind
	Dur   Cycles   // ActWork: compute cycles
	Addrs []uint64 // ActWork: memory access virtual addresses
	Lock  *Lock
	Cond  *Cond
	Sem   *Sem
}

// Behavior generates the action stream of one simulated thread. Next is
// called whenever the thread is ready for its next operation; the returned
// Action's Addrs slice may be reused across calls (the engine consumes it
// before asking for the next action).
type Behavior interface {
	Next(t *Thread) Action
}

// BehaviorFunc adapts a function to the Behavior interface.
type BehaviorFunc func(t *Thread) Action

// Next implements Behavior.
func (f BehaviorFunc) Next(t *Thread) Action { return f(t) }

// threadState is the scheduler-visible state of a thread.
type threadState uint8

const (
	stateReady    threadState = iota // runnable, waiting for a CPU
	stateRunning                     // on a CPU, executing work
	stateSpinning                    // on a CPU, polling for a lock grant
	stateParked                      // blocked; not dispatchable
	stateDone                        // exited
)

// Thread is one simulated thread.
type Thread struct {
	// ID identifies the thread; lock admission histories record it.
	ID int
	// Rng is a thread-local generator for workload address streams.
	Rng xrand.State

	beh Behavior

	state   threadState
	cpu     int // CPU index while running/spinning; -1 otherwise
	lastCPU int // most recent CPU (wake affinity); -1 before first dispatch
	core    int // last core dispatched on (affinity hint)
	gen     uint64

	quantumStart Cycles

	// Lock-waiting bookkeeping.
	waitLock  *Lock
	waitStart Cycles
	waitMode  WaitMode
	granted   bool
	// syncWait marks a thread blocked on a condition variable or
	// semaphore (it distinguishes "redispatched after preemption while
	// still waiting" from "woken by a signal/permit").
	syncWait bool
	// After a condition wait or signal, the thread must (re)acquire this
	// lock before continuing its behavior.
	reacquire *Lock

	// Statistics.
	Steps     uint64 // completed iterations (ActStep)
	RunCycles Cycles // cycles spent on a CPU running (not spinning)
	SpinCyc   Cycles // cycles spent spinning
	Parks     uint64 // voluntary context switches

	lastOnCPU Cycles // when the thread last got/changed CPU state (for accounting)
}

// State reports a coarse, test-visible classification of the thread state.
func (t *Thread) State() string {
	switch t.state {
	case stateReady:
		return "ready"
	case stateRunning:
		return "running"
	case stateSpinning:
		return "spinning"
	case stateParked:
		return "parked"
	default:
		return "done"
	}
}
