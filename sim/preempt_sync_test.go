package sim

import "testing"

// TestPreemptedCondWaiterIsNotFalselySignaled is the regression test for
// a double-life bug: a condvar waiter spinning in ModeSpin that is
// preempted (ready queue pressure) and later redispatched must resume
// waiting — not treat the redispatch as a signal, reacquire the mutex and
// run while still sitting on the wait list. With many more threads than
// CPUs and spin-mode condvars this previously corrupted lock ownership
// ("release by non-owner").
func TestPreemptedCondWaiterIsNotFalselySignaled(t *testing.T) {
	cfg := smallConfig() // 16 CPUs
	cfg.Quantum = 50_000 // aggressive preemption
	e := New(cfg)
	l := e.NewLock(LockSpec{Kind: KindMCS, Mode: ModeSpin})
	cond := e.NewCond(1.0, ModeSpin)
	slots := 0
	const threads = 48 // 3x CPUs: spinning waiters get preempted
	for i := 0; i < threads; i++ {
		phase := 0
		e.Spawn(BehaviorFunc(func(th *Thread) Action {
			switch phase {
			case 0:
				phase = 1
				return Action{Kind: ActAcquire, Lock: l}
			case 1:
				if slots == 0 {
					return Action{Kind: ActWait, Cond: cond, Lock: l}
				}
				slots--
				phase = 2
				return Action{Kind: ActSignal, Cond: cond}
			case 2:
				phase = 3
				return Action{Kind: ActRelease, Lock: l}
			case 3:
				phase = 4
				slots++ // outside the lock on purpose? no — refill under lock below
				return Action{Kind: ActAcquire, Lock: l}
			case 4:
				phase = 5
				return Action{Kind: ActSignal, Cond: cond}
			default:
				phase = 0
				return Action{Kind: ActRelease, Lock: l}
			}
		}))
	}
	// Prime the slots via one producer-ish thread.
	prime := 0
	e.Spawn(BehaviorFunc(func(th *Thread) Action {
		switch prime {
		case 0:
			prime = 1
			return Action{Kind: ActAcquire, Lock: l}
		case 1:
			slots += 4
			prime = 2
			return Action{Kind: ActBroadcast, Cond: cond}
		case 2:
			prime = 3
			return Action{Kind: ActRelease, Lock: l}
		default:
			prime = 0
			return Action{Kind: ActWork, Dur: 20_000}
		}
	}))
	// The run must neither panic ("release by non-owner") nor halt.
	e.Run(20_000_000)
}

// TestPreemptedSemWaiterKeepsWaiting is the semaphore flavor of the same
// regression.
func TestPreemptedSemWaiterKeepsWaiting(t *testing.T) {
	cfg := smallConfig()
	cfg.Quantum = 50_000
	e := New(cfg)
	_ = e.NewLock(LockSpec{Kind: KindNull})
	s := e.NewSem(2, 1.0, ModeSpin)
	var inside, maxInside int
	const threads = 40
	for i := 0; i < threads; i++ {
		phase := 0
		e.Spawn(BehaviorFunc(func(th *Thread) Action {
			switch phase {
			case 0:
				phase = 1
				return Action{Kind: ActSemAcquire, Sem: s}
			case 1:
				inside++
				if inside > maxInside {
					maxInside = inside
				}
				phase = 2
				return Action{Kind: ActWork, Dur: 30_000}
			case 2:
				inside--
				phase = 3
				return Action{Kind: ActSemRelease, Sem: s}
			default:
				phase = 0
				return Action{Kind: ActStep}
			}
		}))
	}
	e.Run(20_000_000)
	if maxInside > 2 {
		t.Fatalf("%d threads inside a 2-permit semaphore: phantom grants", maxInside)
	}
}
