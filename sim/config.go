// Package sim is a deterministic discrete-event simulator of a multicore
// machine executing lock-based workloads. It is the evaluation substrate
// for this reproduction of "Malthusian Locks" (Dice, EuroSys 2017): the
// paper's experiments ran on a 128-logical-CPU SPARC T5 socket, hardware
// this repository substitutes with a model of the same shape (DESIGN.md
// §2 documents the substitution).
//
// The model captures the resources whose exhaustion the paper studies:
//
//   - logical CPUs (strands) grouped into cores with shared pipelines;
//     running and spinning strands on a core slow each other down, and a
//     lone strand enjoys pipeline fusion;
//   - a shared LLC, per-core private caches and per-core DTLBs (sim/cache);
//   - an OS scheduler with dispatch queues, time-slice preemption, and
//     idle states whose exit latency grows with idle depth;
//   - park/unpark with realistic asymmetric costs (the unpark call is paid
//     by the releasing thread while it still holds the lock — §5.2's
//     handover-latency trap);
//   - a simple power model distinguishing running, politely-spinning and
//     idle strands.
//
// Locks, condition variables and semaphores are modeled inside the
// simulated world (lock.go, sync.go) with the same admission policies as
// the real implementations in the repository's lock, condvar and
// semaphore packages.
package sim

import "repro/sim/cache"

// Cycles counts simulated CPU cycles.
type Cycles = int64

// Config describes the machine and the cost model.
type Config struct {
	Cores            int     // 16 on the T5 (total, across all sockets)
	StrandsPerCore   int     // 8 on the T5 (logical CPUs per core)
	PipelinesPerCore int     // 2 on the T5
	FreqGHz          float64 // 3.6 on the T5; converts cycles to seconds

	// Sockets partitions the cores into NUMA nodes (default 1 — the
	// paper took the T5-2's second socket offline for §6; the MCSCRN
	// future-work experiments of §9.1 use 2). Ownership handoffs that
	// cross sockets ("lock migrations") pay RemoteHandoffPenalty extra
	// coherence latency, and the dispatcher avoids cross-socket thread
	// migration.
	Sockets              int
	RemoteHandoffPenalty Cycles

	// Scheduler.
	Quantum Cycles // preemption time slice

	// Waiting policy costs (§5.1, §5.2).
	SpinBudget       Cycles // spin-then-park spin phase (~20000 cycles in the paper)
	PollPeriod       Cycles // spin poll granularity; also the preemption check interval while spinning
	ParkEnterCost    Cycles // cycles burned entering the parked state
	UnparkCallerCost Cycles // cost paid by the caller of unpark (>9000 on the T5)
	WakeLatency      Cycles // unpark-to-return-from-park latency (~30000 best case)
	HandoffLatency   Cycles // grant to a spinning waiter
	LockOpCost       Cycles // uncontended acquire/release overhead (CAS + fences)

	// Idle-state model: a CPU idle longer reaches deeper sleep states,
	// which cost more to exit (§5.1 "Parking").
	IdleShallow Cycles // idle time below this: shallow state
	IdleDeep    Cycles // idle time above this: deep state
	ExitShallow Cycles
	ExitMid     Cycles
	ExitDeep    Cycles

	// Power model, in watts per strand by activity class. Only the
	// ordering and rough ratios matter; calibrated so Figure 4's ∆Watts
	// column lands in the paper's range.
	WattsRunning  float64
	WattsSpinning float64 // polite spinning (RD CCR,G0 politeness assumed)
	WattsIdle     float64
	WattsDeepIdle float64

	// Turbo/fusion: a lone active strand on a core runs faster (pipeline
	// fusion); a lightly loaded socket runs active strands faster still
	// (thermal headroom → turbo). Factors multiply computed durations,
	// so values < 1 mean "faster".
	FusionFactor float64
	TurboFactor  float64
	// TurboThreshold is the fraction of strands that must be inactive
	// for turbo to engage.
	TurboThreshold float64

	// StartStagger delays thread i's start by i*StartStagger cycles.
	// Real benchmarks create threads sequentially and each thread
	// first-touches its private working set before circulating (~1 ms for
	// the paper's 1 MB arrays), so threads never hit a lock simultaneously
	// en masse. A simultaneous mass arrival can wedge CR locks in a
	// quasi-stable churn regime (every waiter parked, cull/reprovision on
	// every unlock) that the paper's 10-second hardware runs never see;
	// Warmup must cover N*StartStagger before measuring. See DESIGN.md
	// ("two-basin behaviour") and the ablation bench in bench_test.go.
	StartStagger Cycles

	Cache cache.Config

	Seed uint64
}

// DefaultConfig returns the T5-shaped machine with capacities scaled down
// by the given factor (see cache.T5Config). Scale 1 is the paper's
// full-size machine; the experiment harness defaults to a smaller scale so
// sweeps run quickly. Footprint/capacity ratios — and hence curve shapes —
// are scale-invariant; EXPERIMENTS.md includes the ablation demonstrating
// it.
func DefaultConfig(scale int) Config {
	return Config{
		Cores:            16,
		StrandsPerCore:   8,
		PipelinesPerCore: 2,
		FreqGHz:          3.6,

		Sockets:              1,
		RemoteHandoffPenalty: 1_500,

		Quantum: 2_000_000,

		SpinBudget:       25_000,
		PollPeriod:       4_000,
		ParkEnterCost:    3_000,
		UnparkCallerCost: 9_000,
		// Base unpark-to-running latency for a warm CPU. Deliberately
		// below SpinBudget: spin-then-park spins for a context-switch
		// round trip (Karlin/Lim-Agarwal 2-competitiveness), so a
		// just-parked successor must cost about one wake, not more.
		// Idle-state exit penalties (ExitShallow/Mid/Deep) are added on
		// top at dispatch, which is how the paper's ">30000 cycles ...
		// when an idle CPU is available" worst case arises on machines
		// with power management enabled.
		WakeLatency:    9_000,
		HandoffLatency: 300,
		LockOpCost:     60,

		// The paper's runs used "maximum performance mode with power
		// management disabled" (§6), so the default exit penalties are
		// small and flat. Raise them (cmd/simexplore sweeps them) to
		// study the deep-sleep-state interactions of §5.1.
		IdleShallow: 150_000,
		IdleDeep:    1_500_000,
		ExitShallow: 500,
		ExitMid:     1_000,
		ExitDeep:    2_000,

		WattsRunning:  3.4,
		WattsSpinning: 2.7,
		WattsIdle:     0.25,
		WattsDeepIdle: 0.05,

		StartStagger: 1_000_000,

		FusionFactor:   0.85,
		TurboFactor:    0.88,
		TurboThreshold: 0.75,

		Cache: cache.T5Config(scale),
		Seed:  1,
	}
}

// CPUs returns the number of logical CPUs (strands) in the machine.
func (c Config) CPUs() int { return c.Cores * c.StrandsPerCore }

// SocketOfCore maps a core index to its socket.
func (c Config) SocketOfCore(core int) int {
	if c.Sockets <= 1 {
		return 0
	}
	per := c.Cores / c.Sockets
	if per < 1 {
		per = 1
	}
	s := core / per
	if s >= c.Sockets {
		s = c.Sockets - 1
	}
	return s
}

// Seconds converts simulated cycles to seconds at the configured clock.
func (c Config) Seconds(cy Cycles) float64 {
	return float64(cy) / (c.FreqGHz * 1e9)
}
