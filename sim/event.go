package sim

// eventKind enumerates the simulator's event types.
type eventKind uint8

const (
	evSegmentDone eventKind = iota // current work segment completes
	evPoll                         // spinning waiter re-polls (preemption point)
	evParkEnter                    // spin budget exhausted; transition to parked
	evWake                         // unparked thread becomes ready
	evAcquired                     // handoff to a spinning waiter completes
	evTASRetry                     // competitive-succession retry window closes
	evStart                        // thread begins execution
)

// event is a scheduled occurrence. Events are bound to a thread and a
// generation; bumping the thread's generation cancels its in-flight events
// (they are dropped when popped).
type event struct {
	at   Cycles
	seq  uint64 // tie-break: FIFO among simultaneous events
	kind eventKind
	th   *Thread
	gen  uint64
}

// eventHeap is a binary min-heap ordered by (at, seq). Implemented
// directly rather than via container/heap to keep the hot path free of
// interface conversions.
type eventHeap struct {
	a []event
}

func (h *eventHeap) len() int { return len(h.a) }

func (h *eventHeap) push(e event) {
	h.a = append(h.a, e)
	i := len(h.a) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !h.less(i, p) {
			break
		}
		h.a[i], h.a[p] = h.a[p], h.a[i]
		i = p
	}
}

func (h *eventHeap) pop() event {
	top := h.a[0]
	last := len(h.a) - 1
	h.a[0] = h.a[last]
	h.a = h.a[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < last && h.less(l, smallest) {
			smallest = l
		}
		if r < last && h.less(r, smallest) {
			smallest = r
		}
		if smallest == i {
			break
		}
		h.a[i], h.a[smallest] = h.a[smallest], h.a[i]
		i = smallest
	}
	return top
}

func (h *eventHeap) less(i, j int) bool {
	if h.a[i].at != h.a[j].at {
		return h.a[i].at < h.a[j].at
	}
	return h.a[i].seq < h.a[j].seq
}
