package sim

import (
	"fmt"

	"repro/internal/xrand"
	"repro/sim/cache"
)

// cpuState tracks one logical CPU (strand).
type cpuState struct {
	core      int
	th        *Thread // nil when idle
	idleSince Cycles
}

// coreState tracks per-core pipeline load.
type coreState struct {
	running  int // strands executing work
	spinning int // strands busy-waiting
}

// Engine is the simulator instance: a machine plus a set of threads,
// locks and synchronization objects. It is single-threaded and
// deterministic for a fixed configuration and seed.
type Engine struct {
	cfg Config
	now Cycles
	seq uint64

	events  eventHeap
	threads []*Thread
	cpus    []cpuState
	cores   []coreState
	readyQ  []*Thread
	readyAt int // head index into readyQ (amortized ring)

	mem *cache.Hierarchy
	rng xrand.State

	locks []*Lock

	// Power integration (∆W above idle).
	lastAccrue   Cycles
	energy       float64 // watt·cycles above idle
	measureStart Cycles

	halted bool // event heap ran dry (all threads blocked or done)
}

// New constructs an engine for the given machine configuration.
func New(cfg Config) *Engine {
	if cfg.Sockets < 1 {
		cfg.Sockets = 1
	}
	// The memory model allocates one private cache and TLB per core;
	// keep it in lockstep with the machine topology.
	cfg.Cache.Cores = cfg.Cores
	e := &Engine{
		cfg:  cfg,
		mem:  cache.New(cfg.Cache),
		cpus: make([]cpuState, cfg.CPUs()),
	}
	e.cores = make([]coreState, cfg.Cores)
	for i := range e.cpus {
		e.cpus[i].core = i / cfg.StrandsPerCore
		e.cpus[i].idleSince = 0
	}
	e.rng.Seed(cfg.Seed)
	return e
}

// Now returns the current simulated time.
func (e *Engine) Now() Cycles { return e.now }

// Mem exposes the cache hierarchy (for workload-level assertions).
func (e *Engine) Mem() *cache.Hierarchy { return e.mem }

// Config returns the engine's configuration.
func (e *Engine) Config() Config { return e.cfg }

// Spawn adds a thread executing the given behavior. All threads begin at
// time zero (or at the current time if spawned mid-run).
func (e *Engine) Spawn(b Behavior) *Thread {
	t := &Thread{
		ID:      len(e.threads),
		beh:     b,
		cpu:     -1,
		lastCPU: -1,
		core:    -1,
	}
	t.Rng.Seed(e.cfg.Seed*1_000_003 + uint64(t.ID))
	e.threads = append(e.threads, t)
	e.schedule(e.now+Cycles(t.ID)*e.cfg.StartStagger, evStart, t)
	return t
}

// Threads returns the spawned threads.
func (e *Engine) Threads() []*Thread { return e.threads }

// schedule enqueues an event for t at time at, bound to t's current
// generation.
func (e *Engine) schedule(at Cycles, kind eventKind, t *Thread) {
	e.seq++
	e.events.push(event{at: at, seq: e.seq, kind: kind, th: t, gen: t.gen})
}

// Run advances the simulation until the given absolute time.
func (e *Engine) Run(until Cycles) {
	for e.events.len() > 0 {
		ev := e.events.a[0]
		if ev.at > until {
			break
		}
		ev = e.events.pop()
		if ev.gen != ev.th.gen {
			continue // cancelled
		}
		if ev.at > e.now {
			e.now = ev.at
		}
		e.handle(ev)
	}
	if e.events.len() == 0 {
		e.halted = true
	}
	if e.now < until {
		e.now = until
	}
}

// Halted reports whether the event queue ran dry before the end of the
// run — every thread done or blocked, a liveness failure for lock
// workloads that have not finished.
func (e *Engine) Halted() bool { return e.halted }

func (e *Engine) handle(ev event) {
	t := ev.th
	switch ev.kind {
	case evStart:
		e.dispatch(t)
	case evSegmentDone:
		e.accountCPU(t)
		if e.maybePreempt(t) {
			return
		}
		e.proceed(t)
	case evPoll:
		e.pollWaiter(t)
	case evParkEnter:
		e.enterPark(t)
	case evWake:
		// Unparked: become ready and contend for a CPU.
		t.state = stateReady
		e.dispatch(t)
	case evAcquired:
		// Handoff to an on-CPU spinner completed.
		e.afterWake(t)
	case evTASRetry:
		// Unused; competitive succession is modeled through polling.
	}
}

// proceed drives t's behavior forward. t must be running on a CPU.
func (e *Engine) proceed(t *Thread) {
	for {
		a := t.beh.Next(t)
		switch a.Kind {
		case ActStep:
			t.Steps++
			continue
		case ActWork:
			e.beginWork(t, a)
			return
		case ActAcquire:
			if e.acquireLock(t, a.Lock) {
				e.chargeCost(t, e.cfg.LockOpCost)
			}
			return
		case ActRelease:
			cost := a.Lock.release(t)
			e.chargeCost(t, e.cfg.LockOpCost+cost)
			return
		case ActWait:
			e.condWait(t, a.Cond, a.Lock)
			return
		case ActSignal:
			cost := a.Cond.signal()
			e.chargeCost(t, e.cfg.LockOpCost+cost)
			return
		case ActBroadcast:
			cost := a.Cond.broadcast()
			e.chargeCost(t, e.cfg.LockOpCost+cost)
			return
		case ActSemAcquire:
			if a.Sem.acquire(t) {
				e.chargeCost(t, e.cfg.LockOpCost)
			}
			return
		case ActSemRelease:
			cost := a.Sem.release()
			e.chargeCost(t, e.cfg.LockOpCost+cost)
			return
		case ActDone:
			e.finish(t)
			return
		default:
			panic(fmt.Sprintf("sim: unknown action kind %d", a.Kind))
		}
	}
}

// beginWork charges a compute+memory segment and schedules its completion.
func (e *Engine) beginWork(t *Thread, a Action) {
	factor := e.speedFactor(t.core)
	var mem Cycles
	for _, addr := range a.Addrs {
		mem += e.mem.Access(t.core, t.cpu, addr)
	}
	dur := Cycles(float64(a.Dur)*factor) + mem
	// Execution jitter (±5%): real pipelines never repeat a segment in
	// exactly the same cycle count. Without it, closed lock-circulation
	// systems can lock into phase-clustered rotations (all threads
	// arriving simultaneously) that no real machine sustains, which
	// distorts queue-depth statistics.
	if dur > 20 {
		dur += Cycles(t.Rng.Uint64n(uint64(dur)/10)) - dur/20
	}
	if dur < 1 {
		dur = 1
	}
	e.schedule(e.now+dur, evSegmentDone, t)
}

// chargeCost models a fixed-latency operation (lock administration) as a
// short segment.
func (e *Engine) chargeCost(t *Thread, c Cycles) {
	if c < 1 {
		c = 1
	}
	e.schedule(e.now+c, evSegmentDone, t)
}

// speedFactor returns the duration multiplier for compute on the given
// core: pipeline sharing slows strands down; a lone strand gets fusion;
// a lightly loaded socket gets turbo.
func (e *Engine) speedFactor(core int) float64 {
	c := &e.cores[core]
	// Polite spinners still consume a large share of a pipeline's issue
	// slots; §6.3 notes polite spinning "helps reduce the impact of
	// pipeline competition, which would otherwise be far worse" — it
	// reduces, not eliminates.
	weight := float64(c.running) + 0.75*float64(c.spinning)
	pipes := float64(e.cfg.PipelinesPerCore)
	factor := 1.0
	if weight > pipes {
		factor = weight / pipes
	}
	if c.running+c.spinning == 1 {
		factor *= e.cfg.FusionFactor
	}
	if e.activeStrands() < int(float64(e.cfg.CPUs())*(1-e.cfg.TurboThreshold)) {
		factor *= e.cfg.TurboFactor
	}
	return factor
}

func (e *Engine) activeStrands() int {
	n := 0
	for i := range e.cores {
		n += e.cores[i].running + e.cores[i].spinning
	}
	return n
}

// --- Dispatch and CPU management -----------------------------------------

// dispatch places a ready thread on a CPU, or queues it.
func (e *Engine) dispatch(t *Thread) {
	cpu := e.pickCPU(t)
	if cpu < 0 {
		t.state = stateReady
		e.readyQ = append(e.readyQ, t)
		return
	}
	e.placeOn(t, cpu)
}

// pickCPU selects an idle CPU. Like the paper's free-range scheduler it
// balances load across cores ("aggressive intra-node migration to balance
// and disperse the set of ready threads equally over the available cores
// and pipelines"), but a waking thread strongly prefers the CPU it last
// ran on when that CPU is idle and its core is not overloaded — real
// dispatchers exploit both cache affinity and the fact that a
// recently-vacated CPU is in a shallow, cheap-to-exit idle state (§5.1).
// Among balanced candidates, the most recently idled (warmest) CPU wins.
func (e *Engine) pickCPU(t *Thread) int {
	// Inter-socket migration "is relatively expensive and is less
	// frequent" (§6): restrict the search to the thread's home socket
	// when it has any idle strand.
	home := e.SocketOf(t)
	if best := e.pickCPUOn(t, home); best >= 0 {
		return best
	}
	for s := 0; s < e.cfg.Sockets; s++ {
		if s == home {
			continue
		}
		if best := e.pickCPUOn(t, s); best >= 0 {
			return best
		}
	}
	return -1
}

// pickCPUOn picks an idle CPU on the given socket, or -1.
func (e *Engine) pickCPUOn(t *Thread, socket int) int {
	minLoad := 1 << 30
	for c := range e.cores {
		if e.cfg.SocketOfCore(c) != socket {
			continue
		}
		if load := e.cores[c].running + e.cores[c].spinning; load < minLoad {
			minLoad = load
		}
	}
	if last := t.lastCPU; last >= 0 && e.cpus[last].th == nil &&
		e.cfg.SocketOfCore(e.cpus[last].core) == socket {
		c := e.cpus[last].core
		if e.cores[c].running+e.cores[c].spinning <= minLoad+1 {
			return last
		}
	}
	best := -1
	var bestIdle Cycles = -1
	for i := range e.cpus {
		if e.cpus[i].th != nil {
			continue
		}
		c := e.cpus[i].core
		if e.cfg.SocketOfCore(c) != socket {
			continue
		}
		if e.cores[c].running+e.cores[c].spinning != minLoad {
			continue
		}
		if e.cpus[i].idleSince > bestIdle {
			best, bestIdle = i, e.cpus[i].idleSince
		}
	}
	if best < 0 {
		// No idle CPU on a min-load core of this socket (they may be
		// fully occupied by busier strands); any idle strand here will do.
		for i := range e.cpus {
			if e.cpus[i].th == nil && e.cfg.SocketOfCore(e.cpus[i].core) == socket {
				return i
			}
		}
	}
	return best
}

// SocketOf reports the NUMA node a thread is (or was last) running on;
// before first dispatch, threads are spread round-robin.
func (e *Engine) SocketOf(t *Thread) int {
	if t.lastCPU >= 0 {
		return e.cfg.SocketOfCore(e.cpus[t.lastCPU].core)
	}
	if e.cfg.Sockets <= 1 {
		return 0
	}
	return t.ID % e.cfg.Sockets
}

// placeOn assigns t to cpu and resumes it after the CPU's idle-exit
// latency.
func (e *Engine) placeOn(t *Thread, cpu int) {
	e.accrue()
	cs := &e.cpus[cpu]
	exitLat := e.idleExitLatency(e.now - cs.idleSince)
	cs.th = t
	t.cpu = cpu
	t.lastCPU = cpu
	t.core = cs.core
	t.quantumStart = e.now + exitLat
	t.state = stateRunning
	t.lastOnCPU = e.now + exitLat
	e.cores[cs.core].running++
	e.schedule(e.now+exitLat, evAcquiredOrResume, t)
}

// evAcquiredOrResume: reuse evAcquired for "thread (re)starts on CPU".
const evAcquiredOrResume = evAcquired

// idleExitLatency maps how long a CPU has idled to the latency of leaving
// its sleep state (§5.1: "Deeper sleep states, however, take longer to
// enter and exit").
func (e *Engine) idleExitLatency(idle Cycles) Cycles {
	switch {
	case idle < e.cfg.IdleShallow:
		return e.cfg.ExitShallow
	case idle < e.cfg.IdleDeep:
		return e.cfg.ExitMid
	default:
		return e.cfg.ExitDeep
	}
}

// freeCPU releases t's CPU and dispatches the next ready thread onto it.
func (e *Engine) freeCPU(t *Thread) {
	cpu := t.cpu
	if cpu < 0 {
		return
	}
	e.accrue()
	cs := &e.cpus[cpu]
	cs.th = nil
	cs.idleSince = e.now
	switch t.state {
	case stateRunning:
		e.cores[cs.core].running--
	case stateSpinning:
		e.cores[cs.core].spinning--
	}
	t.cpu = -1
	if next := e.popReady(); next != nil {
		e.placeOn(next, cpu)
	}
}

func (e *Engine) popReady() *Thread {
	for e.readyAt < len(e.readyQ) {
		t := e.readyQ[e.readyAt]
		e.readyQ[e.readyAt] = nil
		e.readyAt++
		if e.readyAt > 64 && e.readyAt*2 > len(e.readyQ) {
			e.readyQ = append(e.readyQ[:0], e.readyQ[e.readyAt:]...)
			e.readyAt = 0
		}
		if t != nil {
			return t
		}
	}
	return nil
}

func (e *Engine) readyLen() int { return len(e.readyQ) - e.readyAt }

// maybePreempt preempts t (at a segment or poll boundary) if its quantum
// expired and other threads are waiting for CPUs. Reports whether t was
// preempted.
func (e *Engine) maybePreempt(t *Thread) bool {
	if e.readyLen() == 0 || e.now-t.quantumStart < e.cfg.Quantum {
		return false
	}
	t.gen++ // cancel any pending polls
	e.accountCPU(t)
	e.freeCPU(t) // decrements the counter matching t's current state
	t.state = stateReady
	e.readyQ = append(e.readyQ, t)
	return true
}

// accountCPU charges elapsed on-CPU time to the thread's running or
// spinning counter.
func (e *Engine) accountCPU(t *Thread) {
	if t.cpu < 0 {
		return
	}
	d := e.now - t.lastOnCPU
	if d < 0 {
		d = 0
	}
	if t.state == stateSpinning {
		t.SpinCyc += d
	} else {
		t.RunCycles += d
	}
	t.lastOnCPU = e.now
}

// finish terminates t.
func (e *Engine) finish(t *Thread) {
	e.accountCPU(t)
	t.gen++
	e.freeCPU(t)
	t.state = stateDone
}

// --- Waiting, parking and waking ------------------------------------------

// startWaiting transitions an on-CPU thread into the spinning state for
// the given wait mode and schedules its poll loop.
func (e *Engine) startWaiting(t *Thread, mode WaitMode) {
	e.accrue()
	e.accountCPU(t)
	if t.state == stateRunning && t.cpu >= 0 {
		e.cores[t.core].running--
		e.cores[t.core].spinning++
	}
	t.state = stateSpinning
	t.waitStart = e.now
	t.waitMode = mode
	if mode == ModePark {
		// Immediate parking (no spin phase).
		e.enterPark(t)
		return
	}
	e.schedule(e.now+e.cfg.PollPeriod, evPoll, t)
}

// pollWaiter handles one poll tick of a spinning waiter.
func (e *Engine) pollWaiter(t *Thread) {
	if t.state != stateSpinning {
		return
	}
	// TAS locks acquire by polling (competitive succession).
	if l := t.waitLock; l != nil && l.kind == KindTAS && !t.granted {
		if l.tryBargeFromPoll(t) {
			t.gen++
			e.schedule(e.now+e.cfg.HandoffLatency, evAcquired, t)
			return
		}
	}
	if e.maybePreempt(t) {
		return
	}
	if t.waitMode == ModeSTP && e.now-t.waitStart >= e.cfg.SpinBudget {
		e.enterPark(t)
		return
	}
	e.schedule(e.now+e.cfg.PollPeriod, evPoll, t)
}

// enterPark blocks t, surrendering its CPU (a voluntary context switch).
func (e *Engine) enterPark(t *Thread) {
	t.gen++ // cancel polls
	e.accountCPU(t)
	t.Parks++
	e.freeCPU(t)
	t.state = stateParked
}

// wake delivers a grant or signal to a waiting thread. The caller has
// already recorded what the wakeup means (t.granted / t.reacquire). It
// returns the cost borne by the waker: waking a parked thread requires a
// kernel call (§5.2), a spinning one only a store.
func (e *Engine) wake(t *Thread) Cycles {
	switch t.state {
	case stateSpinning:
		t.gen++
		e.schedule(e.now+e.cfg.HandoffLatency, evAcquired, t)
		return 0
	case stateParked:
		t.gen++
		e.schedule(e.now+e.cfg.WakeLatency, evWake, t)
		return e.cfg.UnparkCallerCost
	case stateReady:
		// Preempted while waiting; it will notice at dispatch.
		return 0
	default:
		// Running: a wake can race with a thread that just resumed (e.g.
		// TAS poll acquisition); nothing to do.
		return 0
	}
}

// afterWake resumes a thread that has just (re)gained a CPU or been
// granted while on one.
func (e *Engine) afterWake(t *Thread) {
	if t.cpu < 0 {
		// Came via evWake→dispatch; placeOn scheduled us, nothing extra.
		panic("sim: afterWake without CPU")
	}
	e.accrue()
	if t.state == stateSpinning {
		e.accountCPU(t)
		e.cores[t.core].spinning--
		e.cores[t.core].running++
		t.state = stateRunning
		t.lastOnCPU = e.now
	} else {
		t.state = stateRunning
	}
	if l := t.waitLock; l != nil {
		if t.granted {
			// Direct handoff completed: we own the lock.
			t.waitLock = nil
			t.granted = false
			e.chargeCost(t, e.cfg.LockOpCost)
			return
		}
		// TAS wake-to-retry, or a preempted spinner redispatched: resume
		// waiting (try immediately first).
		if l.kind == KindTAS && l.tryBargeFromPoll(t) {
			t.waitLock = nil
			e.chargeCost(t, e.cfg.LockOpCost)
			return
		}
		e.startWaiting(t, t.waitMode)
		return
	}
	if t.syncWait {
		if !t.granted {
			// Preempted while waiting on a condvar/semaphore and merely
			// redispatched: no signal has arrived; keep waiting.
			e.startWaiting(t, t.waitMode)
			return
		}
		t.syncWait = false
		t.granted = false
		if l := t.reacquire; l != nil {
			t.reacquire = nil
			if e.acquireLock(t, l) {
				e.chargeCost(t, e.cfg.LockOpCost)
			}
			return
		}
		// Semaphore grant: the permit conveys; continue.
		e.proceed(t)
		return
	}
	// Plain resume (thread start, preemption return).
	e.proceed(t)
}

// acquireLock attempts to take l for t; reports whether it was granted
// immediately. Otherwise t is enqueued and transitions to waiting.
func (e *Engine) acquireLock(t *Thread, l *Lock) bool {
	if l.tryAcquireNow(t) {
		return true
	}
	t.waitLock = l
	t.granted = false
	l.enqueue(t)
	e.startWaiting(t, l.mode)
	return false
}

// condWait implements ActWait: release the mutex, join the wait queue,
// wait, then (on signal) reacquire.
func (e *Engine) condWait(t *Thread, c *Cond, l *Lock) {
	t.reacquire = l
	t.syncWait = true
	t.granted = false
	c.enqueueWaiter(t)
	l.release(t) // may convey the lock onward, with all CR machinery
	e.startWaiting(t, c.mode)
}

// --- Power accounting ------------------------------------------------------

// accrue integrates power since the last accounting instant. Energy is
// accumulated as watt·cycles *above idle*, so the result is directly the
// paper's "∆Watts above idle".
func (e *Engine) accrue() {
	dt := e.now - e.lastAccrue
	if dt <= 0 {
		return
	}
	var running, spinning int
	for i := range e.cores {
		running += e.cores[i].running
		spinning += e.cores[i].spinning
	}
	e.energy += float64(dt) * (float64(running)*(e.cfg.WattsRunning-e.cfg.WattsIdle) +
		float64(spinning)*(e.cfg.WattsSpinning-e.cfg.WattsIdle))
	e.lastAccrue = e.now
}
