package sim

import (
	"testing"

	"repro/metrics"
)

// circuit is the canonical benchmark loop: NCS work; acquire; CS work;
// release; step. Durations in cycles.
type circuit struct {
	l       *Lock
	ncs, cs Cycles
	phase   int
	inCS    bool
}

func (c *circuit) Next(t *Thread) Action {
	switch c.phase {
	case 0:
		c.phase = 1
		return Action{Kind: ActWork, Dur: c.ncs}
	case 1:
		c.phase = 2
		return Action{Kind: ActAcquire, Lock: c.l}
	case 2:
		c.phase = 3
		return Action{Kind: ActWork, Dur: c.cs}
	case 3:
		c.phase = 4
		return Action{Kind: ActRelease, Lock: c.l}
	default:
		c.phase = 0
		return Action{Kind: ActStep}
	}
}

func smallConfig() Config {
	cfg := DefaultConfig(16)
	cfg.Cores = 4
	cfg.StrandsPerCore = 4
	// Engine unit tests exercise mechanisms on short runs; keep the
	// thread-start ramp negligible (workload-level tests use the
	// realistic default).
	cfg.StartStagger = 1_000
	return cfg
}

func runCircuit(t *testing.T, cfg Config, spec LockSpec, threads int, ncs, cs Cycles, dur Cycles) (*Engine, *Lock, Result) {
	t.Helper()
	e := New(cfg)
	l := e.NewLock(spec)
	for i := 0; i < threads; i++ {
		e.Spawn(&circuit{l: l, ncs: ncs, cs: cs})
	}
	res := e.RunMeasured(dur/5, dur)
	return e, l, res
}

func TestSingleThreadProgress(t *testing.T) {
	for _, kind := range []LockKind{KindNull, KindTAS, KindMCS, KindMCSCR, KindLIFO} {
		_, _, res := runCircuit(t, smallConfig(), LockSpec{Kind: kind, Mode: ModeSTP}, 1, 1000, 200, 2_000_000)
		if res.Steps == 0 {
			t.Fatalf("%v: no progress with a single thread", kind)
		}
		if res.Halted {
			t.Fatalf("%v: halted", kind)
		}
	}
}

func TestContendedProgressAllLocks(t *testing.T) {
	for _, kind := range []LockKind{KindTAS, KindMCS, KindMCSCR, KindLIFO} {
		for _, mode := range []WaitMode{ModeSpin, ModeSTP} {
			_, l, res := runCircuit(t, smallConfig(), LockSpec{Kind: kind, Mode: mode}, 12, 2000, 400, 4_000_000)
			if res.Steps == 0 {
				t.Fatalf("%v-%v: no progress under contention", kind, mode)
			}
			if res.Halted {
				t.Fatalf("%v-%v: halted (stranded waiters: queue=%d passive=%d)",
					kind, mode, l.QueueLen(), l.PassiveSize())
			}
		}
	}
}

func TestAdmissionHistoryMatchesSteps(t *testing.T) {
	// Each step is exactly one acquisition, so the admission history
	// length must track total steps (±in-flight iterations).
	_, l, res := runCircuit(t, smallConfig(), LockSpec{Kind: KindMCS, Mode: ModeSTP}, 6, 2000, 400, 4_000_000)
	n := uint64(len(l.History()))
	if n < res.Steps || n > res.Steps+6 {
		t.Fatalf("history %d vs steps %d", n, res.Steps)
	}
}

func TestDeterminism(t *testing.T) {
	run := func() (uint64, float64, uint64) {
		_, l, res := runCircuit(t, smallConfig(), LockSpec{Kind: KindMCSCR, Mode: ModeSTP}, 10, 3000, 500, 3_000_000)
		return res.Steps, res.Fairness.AvgLWSS, uint64(len(l.History()))
	}
	s1, w1, h1 := run()
	s2, w2, h2 := run()
	if s1 != s2 || w1 != w2 || h1 != h2 {
		t.Fatalf("nondeterministic: (%d %f %d) vs (%d %f %d)", s1, w1, h1, s2, w2, h2)
	}
}

func TestMCSIsFIFOFair(t *testing.T) {
	_, l, _ := runCircuit(t, smallConfig(), LockSpec{Kind: KindMCS, Mode: ModeSpin}, 8, 4000, 400, 4_000_000)
	s := metrics.Summarize(l.History(), 100)
	// Strict FIFO over 8 saturating threads: every thread circulates, so
	// the working set is the full population and work is evenly spread.
	if s.AvgLWSS < 7.5 {
		t.Fatalf("MCS AvgLWSS=%v, want ~8 (strict FIFO)", s.AvgLWSS)
	}
	if s.Gini > 0.05 {
		t.Fatalf("MCS Gini=%v, want ~0", s.Gini)
	}
}

func TestMCSCRRestrictsConcurrency(t *testing.T) {
	// The saturation arithmetic of §1: NCS/CS = 5 means ~6 threads
	// saturate the lock; with 16 threads MCSCR should clamp the working
	// set near saturation while MCS circulates all 16.
	cfg := smallConfig()
	_, lcr, _ := runCircuit(t, cfg, LockSpec{Kind: KindMCSCR, Mode: ModeSTP}, 16, 5000, 1000, 8_000_000)
	_, lfifo, _ := runCircuit(t, cfg, LockSpec{Kind: KindMCS, Mode: ModeSpin}, 16, 5000, 1000, 8_000_000)
	cr := metrics.Summarize(lcr.History(), metrics.DefaultWindow)
	fifo := metrics.Summarize(lfifo.History(), metrics.DefaultWindow)
	if fifo.AvgLWSS < 15 {
		t.Fatalf("MCS LWSS=%v want ~16", fifo.AvgLWSS)
	}
	if cr.AvgLWSS > fifo.AvgLWSS/1.5 {
		t.Fatalf("MCSCR LWSS=%v did not restrict vs MCS %v", cr.AvgLWSS, fifo.AvgLWSS)
	}
	if lcr.Stats().Culls == 0 {
		t.Fatal("MCSCR never culled under 16-way saturation")
	}
}

func TestMCSCRLongTermFairness(t *testing.T) {
	// With promotion enabled, every thread must complete steps.
	e, _, res := runCircuit(t, smallConfig(), LockSpec{Kind: KindMCSCR, Mode: ModeSTP, FairnessPeriod: 200}, 12, 3000, 600, 20_000_000)
	if res.Lock.Promotions == 0 {
		t.Fatal("no fairness promotions in a long saturated run")
	}
	for _, th := range e.Threads() {
		if th.Steps == 0 {
			t.Fatalf("thread %d starved", th.ID)
		}
	}
}

func TestMCSCRNoFairnessStarves(t *testing.T) {
	// With promotion disabled and sustained saturation, the passive set
	// should hold threads for the whole run: short-term-unfair by design.
	e, l, _ := runCircuit(t, smallConfig(), LockSpec{Kind: KindMCSCR, Mode: ModeSTP, FairnessPeriod: NoFairness}, 12, 3000, 600, 10_000_000)
	if l.Stats().Promotions != 0 {
		t.Fatal("promotions occurred despite NoFairness")
	}
	starved := 0
	for _, th := range e.Threads() {
		if th.Steps == 0 {
			starved++
		}
	}
	if starved == 0 {
		t.Skip("load did not keep the lock saturated enough to exhibit starvation")
	}
}

func TestWorkConservation(t *testing.T) {
	// At the end of a run the lock must not be idle while threads wait:
	// drain by running until the heap empties with finite workloads.
	cfg := smallConfig()
	e := New(cfg)
	l := e.NewLock(LockSpec{Kind: KindMCSCR, Mode: ModeSTP})
	const iters = 200
	for i := 0; i < 10; i++ {
		n := 0
		e.Spawn(BehaviorFunc(func(t *Thread) Action {
			// acquire/release iters times, then done.
			switch n % 3 {
			case 0:
				n++
				return Action{Kind: ActAcquire, Lock: l}
			case 1:
				n++
				return Action{Kind: ActRelease, Lock: l}
			default:
				n++
				if n/3 >= iters {
					return Action{Kind: ActDone}
				}
				return Action{Kind: ActStep}
			}
		}))
	}
	e.Run(1 << 40)
	for _, th := range e.Threads() {
		if th.State() != "done" {
			t.Fatalf("thread %d stuck in state %s (queue=%d passive=%d held=%v)",
				th.ID, th.State(), l.QueueLen(), l.PassiveSize(), l.Held())
		}
	}
	if l.Held() || l.QueueLen() != 0 || l.PassiveSize() != 0 {
		t.Fatal("lock not quiescent after all threads finished")
	}
}

func TestPreemptionBeyondCPUCount(t *testing.T) {
	// More threads than CPUs: with a FIFO lock everybody must still make
	// progress via time slicing (16 CPUs in smallConfig, 40 threads).
	e, _, res := runCircuit(t, smallConfig(), LockSpec{Kind: KindMCS, Mode: ModeSTP}, 40, 20_000, 200, 30_000_000)
	if res.Halted {
		t.Fatal("halted")
	}
	progressed := 0
	for _, th := range e.Threads() {
		if th.Steps > 0 {
			progressed++
		}
	}
	if progressed != 40 {
		t.Fatalf("only %d/40 threads progressed under multiprogramming", progressed)
	}
}

func TestTASStarvesParkedWaiters(t *testing.T) {
	// §5.3: TAS admits "unbounded bypass with potentially indefinite
	// starvation": once a waiter parks, a steady flow of barging arrivals
	// can keep it parked. The model reproduces the hazard: under heavy
	// multiprogramming some TAS-STP threads may complete no work, while
	// aggregate throughput stays high.
	e, _, res := runCircuit(t, smallConfig(), LockSpec{Kind: KindTAS, Mode: ModeSTP}, 40, 20_000, 200, 30_000_000)
	if res.Steps == 0 {
		t.Fatal("no aggregate progress at all")
	}
	progressed := 0
	for _, th := range e.Threads() {
		if th.Steps > 0 {
			progressed++
		}
	}
	if progressed < 16 {
		t.Fatalf("TAS collapsed entirely: only %d/40 progressed", progressed)
	}
	t.Logf("TAS-STP: %d/40 threads progressed (bypass/starvation expected)", progressed)
}

func TestSpinnersOccupyCPUs(t *testing.T) {
	// MCS-S waiters spin: CPU utilization should be near the thread
	// count. MCS-STP waiters park: utilization should be far lower.
	_, _, spin := runCircuit(t, smallConfig(), LockSpec{Kind: KindMCS, Mode: ModeSpin}, 12, 1000, 4000, 8_000_000)
	_, _, stp := runCircuit(t, smallConfig(), LockSpec{Kind: KindMCS, Mode: ModeSTP}, 12, 1000, 4000, 8_000_000)
	if spin.CPUUtil < 10 {
		t.Fatalf("MCS-S utilization %.1f, want ~12 (spinners hold CPUs)", spin.CPUUtil)
	}
	if stp.CPUUtil > spin.CPUUtil/1.5 {
		t.Fatalf("MCS-STP utilization %.1f not far below MCS-S %.1f", stp.CPUUtil, spin.CPUUtil)
	}
	if stp.VoluntaryCtxSwitches == 0 {
		t.Fatal("MCS-STP produced no voluntary context switches")
	}
	if spin.VoluntaryCtxSwitches != 0 {
		t.Fatal("MCS-S should never park")
	}
	if spin.DeltaWatts <= stp.DeltaWatts {
		t.Fatalf("spinning (%.0fW) should cost more power than parking (%.0fW)",
			spin.DeltaWatts, stp.DeltaWatts)
	}
}

func TestHandoffToParkedIsCounted(t *testing.T) {
	// MCS-STP under saturation with a long queue: successors exhaust
	// their spin budget, so handoffs should routinely hit parked threads
	// (§5.1's FIFO/STP pathology).
	_, l, _ := runCircuit(t, smallConfig(), LockSpec{Kind: KindMCS, Mode: ModeSTP}, 12, 1000, 4000, 8_000_000)
	if l.Stats().HandoffsToParked == 0 {
		t.Fatal("no handoffs to parked successors under MCS-STP saturation")
	}
}

func TestNullLockScalesWithCPUs(t *testing.T) {
	// Null lock, pure compute: throughput should scale roughly with
	// thread count until CPUs saturate.
	_, _, one := runCircuit(t, smallConfig(), LockSpec{Kind: KindNull}, 1, 4000, 0, 4_000_000)
	_, _, eight := runCircuit(t, smallConfig(), LockSpec{Kind: KindNull}, 8, 4000, 0, 4_000_000)
	if eight.Steps < one.Steps*4 {
		t.Fatalf("8 threads: %d steps vs 1 thread %d; expected ~8x", eight.Steps, one.Steps)
	}
}

func TestCondVarPingPong(t *testing.T) {
	// One producer, one consumer over a 1-slot mailbox.
	cfg := smallConfig()
	e := New(cfg)
	l := e.NewLock(LockSpec{Kind: KindMCS, Mode: ModeSTP})
	full := e.NewCond(1.0, ModeSTP)
	empty := e.NewCond(1.0, ModeSTP)
	slot := 0
	prodPhase, consPhase := 0, 0
	e.Spawn(BehaviorFunc(func(t *Thread) Action { // producer
		switch prodPhase {
		case 0:
			prodPhase = 1
			return Action{Kind: ActAcquire, Lock: l}
		case 1:
			if slot == 1 {
				return Action{Kind: ActWait, Cond: empty, Lock: l}
			}
			slot = 1
			prodPhase = 2
			return Action{Kind: ActSignal, Cond: full}
		case 2:
			prodPhase = 3
			return Action{Kind: ActRelease, Lock: l}
		default:
			prodPhase = 0
			return Action{Kind: ActStep}
		}
	}))
	e.Spawn(BehaviorFunc(func(t *Thread) Action { // consumer
		switch consPhase {
		case 0:
			consPhase = 1
			return Action{Kind: ActAcquire, Lock: l}
		case 1:
			if slot == 0 {
				return Action{Kind: ActWait, Cond: full, Lock: l}
			}
			slot = 0
			consPhase = 2
			return Action{Kind: ActSignal, Cond: empty}
		case 2:
			consPhase = 3
			return Action{Kind: ActRelease, Lock: l}
		default:
			consPhase = 0
			return Action{Kind: ActStep}
		}
	}))
	res := e.RunMeasured(1_000_000, 5_000_000)
	if res.Halted {
		t.Fatal("ping-pong deadlocked")
	}
	if res.Steps < 100 {
		t.Fatalf("only %d messages conveyed", res.Steps)
	}
}

func TestSemaphoreConveysPermits(t *testing.T) {
	cfg := smallConfig()
	e := New(cfg)
	_ = e.NewLock(LockSpec{Kind: KindNull}) // primary lock slot for Collect
	s := e.NewSem(3, 1.0, ModeSTP)
	for i := 0; i < 8; i++ {
		phase := 0
		e.Spawn(BehaviorFunc(func(t *Thread) Action {
			switch phase {
			case 0:
				phase = 1
				return Action{Kind: ActSemAcquire, Sem: s}
			case 1:
				phase = 2
				return Action{Kind: ActWork, Dur: 2000}
			case 2:
				phase = 3
				return Action{Kind: ActSemRelease, Sem: s}
			default:
				phase = 0
				return Action{Kind: ActStep}
			}
		}))
	}
	res := e.RunMeasured(500_000, 3_000_000)
	if res.Halted {
		t.Fatal("semaphore workload deadlocked")
	}
	if res.Steps < 100 {
		t.Fatalf("steps=%d", res.Steps)
	}
	if s.Count() < 0 || s.Count() > 3 {
		t.Fatalf("permit count out of range: %d", s.Count())
	}
}

func TestMemoryPressureSlowsThroughput(t *testing.T) {
	// Identical compute, but one variant touches an over-LLC footprint:
	// cache misses must reduce throughput.
	run := func(footLines int) uint64 {
		cfg := smallConfig()
		e := New(cfg)
		l := e.NewLock(LockSpec{Kind: KindMCS, Mode: ModeSpin})
		for i := 0; i < 4; i++ {
			id := i
			phase := 0
			addrs := make([]uint64, 32)
			e.Spawn(BehaviorFunc(func(t *Thread) Action {
				switch phase {
				case 0:
					phase = 1
					for j := range addrs {
						line := t.Rng.Intn(footLines)
						addrs[j] = uint64(id)<<32 | uint64(line*64)
					}
					return Action{Kind: ActWork, Dur: 500, Addrs: addrs}
				case 1:
					phase = 2
					return Action{Kind: ActAcquire, Lock: l}
				case 2:
					phase = 3
					return Action{Kind: ActRelease, Lock: l}
				default:
					phase = 0
					return Action{Kind: ActStep}
				}
			}))
		}
		return e.RunMeasured(1_000_000, 5_000_000).Steps
	}
	small := run(64)     // fits private cache
	large := run(100000) // far beyond LLC
	if large*2 > small {
		t.Fatalf("over-capacity footprint should at least halve throughput: small=%d large=%d", small, large)
	}
}

func TestCollectBeforeResetIsSane(t *testing.T) {
	e := New(smallConfig())
	_ = e.NewLock(LockSpec{Kind: KindNull})
	res := e.Collect()
	if res.Steps != 0 || res.Cycles <= 0 {
		t.Fatalf("empty engine collect: %+v", res)
	}
}
