package sim

import (
	"testing"

	"repro/metrics"
)

// TestLIFOCRCompetitiveWithMCSCR checks Appendix A.2's claim: "Both
// LIFO-CR and LOITER offer performance competitive with MCSCR." We run
// the canonical circuit under saturation and require LIFO-CR within 25%
// of MCSCR and clearly ahead of strict-FIFO MCS.
func TestLIFOCRCompetitiveWithMCSCR(t *testing.T) {
	run := func(kind LockKind) (uint64, metrics.Summary) {
		cfg := smallConfig()
		e := New(cfg)
		l := e.NewLock(LockSpec{Kind: kind, Mode: ModeSTP})
		for i := 0; i < 16; i++ {
			e.Spawn(&circuit{l: l, ncs: 5000, cs: 2000})
		}
		res := e.RunMeasured(2_000_000, 10_000_000)
		return res.Steps, res.Fairness
	}
	mcscr, fcr := run(KindMCSCR)
	lifo, flifo := run(KindLIFO)
	mcs, _ := run(KindMCS)
	t.Logf("MCSCR=%d (LWSS %.1f) LIFOCR=%d (LWSS %.1f) MCS=%d",
		mcscr, fcr.AvgLWSS, lifo, flifo.AvgLWSS, mcs)
	if lifo*4 < mcscr*3 {
		t.Fatalf("LIFO-CR (%d) not competitive with MCSCR (%d)", lifo, mcscr)
	}
	if flifo.AvgLWSS > 12 {
		t.Fatalf("LIFO-CR LWSS=%.1f: LIFO admission should restrict concurrency", flifo.AvgLWSS)
	}
}

// TestLIFOCRAdmissionIsMostlyLIFO verifies the stack discipline: the most
// recently arrived waiter is admitted next, giving a small MTTR relative
// to FIFO's (which equals the thread count).
func TestLIFOCRAdmissionIsMostlyLIFO(t *testing.T) {
	cfg := smallConfig()
	e := New(cfg)
	l := e.NewLock(LockSpec{Kind: KindLIFO, Mode: ModeSpin})
	for i := 0; i < 12; i++ {
		e.Spawn(&circuit{l: l, ncs: 2000, cs: 2000})
	}
	res := e.RunMeasured(2_000_000, 8_000_000)
	if res.Fairness.MTTR >= 8 {
		t.Fatalf("LIFO-CR MTTR=%.1f; expected far below the 12-thread FIFO value", res.Fairness.MTTR)
	}
}

// TestLIFOCRFairnessPromotions checks the eldest-waiter Bernoulli
// promotion keeps every thread progressing.
func TestLIFOCRFairnessPromotions(t *testing.T) {
	cfg := smallConfig()
	e := New(cfg)
	l := e.NewLock(LockSpec{Kind: KindLIFO, Mode: ModeSTP, FairnessPeriod: 100})
	for i := 0; i < 12; i++ {
		e.Spawn(&circuit{l: l, ncs: 1000, cs: 2000})
	}
	e.RunMeasured(2_000_000, 20_000_000)
	if l.Stats().Promotions == 0 {
		t.Fatal("no eldest promotions under saturation")
	}
	for _, th := range e.Threads() {
		if th.Steps == 0 {
			t.Fatalf("thread %d starved under LIFO-CR with fairness enabled", th.ID)
		}
	}
}
