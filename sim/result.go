package sim

import (
	"fmt"

	"repro/metrics"
	"repro/sim/cache"
)

// Result summarizes a measurement interval, mirroring the rows the paper
// reports in Figure 4.
type Result struct {
	Cycles  Cycles  // measured interval length
	Seconds float64 // interval in seconds at the configured clock

	Steps       uint64  // workload iterations completed
	StepsPerSec float64 // aggregate throughput

	Lock     LockStats       // primary lock's CR counters
	Fairness metrics.Summary // LWSS / MTTR / Gini / RSTDDEV of the primary lock

	VoluntaryCtxSwitches uint64  // parks across all threads
	CPUUtil              float64 // mean busy strands (running + spinning), in "CPUs"
	RunUtil              float64 // mean running strands (excludes spinning)
	DeltaWatts           float64 // average power above all-idle

	CacheStats cache.Stats

	Halted bool // the run deadlocked / drained early
}

// String renders the result compactly.
func (r Result) String() string {
	return fmt.Sprintf("steps=%d (%.0f/s) LWSS=%.1f MTTR=%.1f Gini=%.3f vctx=%d util=%.1fx L3miss=%d ∆W=%.0f",
		r.Steps, r.StepsPerSec, r.Fairness.AvgLWSS, r.Fairness.MTTR, r.Fairness.Gini,
		r.VoluntaryCtxSwitches, r.CPUUtil, r.CacheStats.LLCMisses, r.DeltaWatts)
}

// ResetMetrics zeroes every measured quantity — thread counters, lock
// histories and stats, cache stats, energy — without disturbing system
// state. Call it at the end of warmup.
func (e *Engine) ResetMetrics() {
	e.accrue()
	e.energy = 0
	e.measureStart = e.now
	e.mem.ResetStats()
	for _, t := range e.threads {
		t.Steps = 0
		t.RunCycles = 0
		t.SpinCyc = 0
		t.Parks = 0
		if t.cpu >= 0 {
			// Re-baseline on-CPU accounting so pre-reset residency is
			// not charged into the measured interval.
			t.lastOnCPU = e.now
		}
	}
	for _, l := range e.locks {
		l.hist = l.hist[:0]
		l.stats = LockStats{}
	}
}

// Collect builds a Result for the interval since the last ResetMetrics.
// The primary lock is the first one created (engines with several locks
// can inspect the others via their own accessors).
func (e *Engine) Collect() Result {
	e.accrue()
	interval := e.now - e.measureStart
	if interval <= 0 {
		interval = 1
	}
	r := Result{
		Cycles:  interval,
		Seconds: e.cfg.Seconds(interval),
		Halted:  e.halted,
	}
	var run, spin Cycles
	for _, t := range e.threads {
		// Charge in-flight on-CPU time so utilization does not depend on
		// event alignment.
		e.accountCPU(t)
		r.Steps += t.Steps
		r.VoluntaryCtxSwitches += t.Parks
		run += t.RunCycles
		spin += t.SpinCyc
	}
	r.StepsPerSec = float64(r.Steps) / r.Seconds
	r.RunUtil = float64(run) / float64(interval)
	r.CPUUtil = float64(run+spin) / float64(interval)
	r.DeltaWatts = e.energy / float64(interval)
	r.CacheStats = e.mem.Stats()
	if len(e.locks) > 0 {
		r.Lock = e.locks[0].stats
		r.Fairness = metrics.Summarize(e.locks[0].hist, metrics.DefaultWindow)
	}
	return r
}

// RunMeasured is the standard fixed-time-report-work harness: run a
// warmup, reset metrics, run the measurement interval, and collect.
func (e *Engine) RunMeasured(warmup, measure Cycles) Result {
	e.Run(warmup)
	e.ResetMetrics()
	e.Run(warmup + measure)
	return e.Collect()
}

// RunStandard runs RunMeasured with the standard warmup: every thread has
// started (StartStagger) and the system has had a settling interval, as
// in the paper's fixed-time-report-work methodology where measurement
// begins only after all threads are up.
func (e *Engine) RunStandard(measure Cycles) Result {
	warm := Cycles(len(e.threads))*e.cfg.StartStagger + 4_000_000
	return e.RunMeasured(warm, measure)
}
