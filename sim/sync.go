package sim

import "repro/internal/core"

// Cond is a condition variable living in the simulated world, with a
// policy-controlled wait queue: appendProb 1 is strict FIFO, 0 is pure
// LIFO, and 1/1000 is the paper's mostly-LIFO CR policy (§6.10).
type Cond struct {
	e          *Engine
	mode       WaitMode
	appendProb float64
	waiters    []*Thread // index 0 = head (next to be signaled)
	trial      *core.Trial

	Signals uint64 // signals that woke a waiter
	Empty   uint64 // signals with no waiter
}

// NewCond creates a condition variable. mode selects how waiters wait
// (the paper's condvar experiments use unbounded spinning; production
// condvars park).
func (e *Engine) NewCond(appendProb float64, mode WaitMode) *Cond {
	return &Cond{
		e:          e,
		mode:       mode,
		appendProb: appendProb,
		trial:      core.NewTrial(0, e.cfg.Seed*104729+uint64(len(e.threads))+3),
	}
}

func (c *Cond) enqueueWaiter(t *Thread) {
	if len(c.waiters) == 0 || c.trial.Prob(c.appendProb) {
		c.waiters = append(c.waiters, t) // append at tail (FIFO-style)
		return
	}
	// Prepend at head (LIFO-style: CR admission).
	c.waiters = append(c.waiters, nil)
	copy(c.waiters[1:], c.waiters)
	c.waiters[0] = t
}

// signal wakes the head waiter; returns the waker's cost.
func (c *Cond) signal() Cycles {
	if len(c.waiters) == 0 {
		c.Empty++
		return 0
	}
	w := c.waiters[0]
	c.waiters = c.waiters[1:]
	c.Signals++
	w.granted = true // signaled; afterWake will reacquire w.reacquire
	return c.e.wake(w)
}

// broadcast wakes every waiter; returns the waker's cost.
func (c *Cond) broadcast() Cycles {
	var cost Cycles
	for _, w := range c.waiters {
		w.granted = true
		cost += c.e.wake(w)
		c.Signals++
	}
	c.waiters = c.waiters[:0]
	return cost
}

// Len reports the current number of waiters.
func (c *Cond) Len() int { return len(c.waiters) }

// Sem is a counting semaphore in the simulated world with
// policy-controlled waiter admission (§6.11).
type Sem struct {
	e          *Engine
	mode       WaitMode
	appendProb float64
	count      int
	waiters    []*Thread
	trial      *core.Trial
}

// NewSem creates a semaphore with n initial permits.
func (e *Engine) NewSem(n int, appendProb float64, mode WaitMode) *Sem {
	return &Sem{
		e:          e,
		mode:       mode,
		appendProb: appendProb,
		count:      n,
		trial:      core.NewTrial(0, e.cfg.Seed*130363+uint64(len(e.threads))+5),
	}
}

// acquire takes a permit for t; reports whether it was immediate.
func (s *Sem) acquire(t *Thread) bool {
	if s.count > 0 && len(s.waiters) == 0 {
		s.count--
		return true
	}
	if len(s.waiters) == 0 || s.trial.Prob(s.appendProb) {
		s.waiters = append(s.waiters, t)
	} else {
		s.waiters = append(s.waiters, nil)
		copy(s.waiters[1:], s.waiters)
		s.waiters[0] = t
	}
	t.granted = false
	t.syncWait = true
	s.e.startWaiting(t, s.mode)
	return false
}

// release returns a permit, handing it directly to the head waiter if one
// exists; returns the waker's cost.
func (s *Sem) release() Cycles {
	if len(s.waiters) > 0 {
		w := s.waiters[0]
		s.waiters = s.waiters[1:]
		w.granted = true
		return s.e.wake(w)
	}
	s.count++
	return 0
}

// Count reports available permits.
func (s *Sem) Count() int { return s.count }
