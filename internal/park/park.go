// Package park provides the park/unpark facility (§5.1 "Parking") used by
// the waiting policies of the Malthusian locks.
//
// The semantics mirror Solaris lwp_park/lwp_unpark and the restricted-range
// semaphore described in the paper:
//
//   - Park blocks the caller until a permit is available, then consumes it.
//   - Unpark deposits at most one pending permit ("unpark before park"
//     returns immediately from the next Park).
//   - Spurious returns from Park are permitted; callers must re-check the
//     condition they wait for. ParkTimeout always admits spurious returns.
//
// On this substrate a "thread" is a goroutine; parking surrenders the
// goroutine to the Go scheduler rather than a CPU to the kernel, but the
// contract — and hence the lock algorithms layered above — is identical.
package park

import (
	"context"
	"sync/atomic"
	"time"
)

// Parker is a one-permit binary semaphore bound to a single waiting thread.
// Many threads may call Unpark; only the owner may call Park. Construct
// with NewParker.
type Parker struct {
	// state: 0 neutral, 1 permit pending.
	state atomic.Int32
	gate  chan struct{}
}

// NewParker returns a Parker with no permit pending.
func NewParker() *Parker {
	return &Parker{gate: make(chan struct{}, 1)}
}

// Park blocks until a permit is available and consumes it.
func (p *Parker) Park() {
	for {
		if p.state.CompareAndSwap(1, 0) {
			return
		}
		<-p.gate
		// Loop: the gate token may be stale (a prior permit was consumed
		// by TryConsume before we drained the gate), which surfaces as a
		// spurious wakeup permitted by the park contract.
	}
}

// ParkTimeout blocks until a permit is available or d elapses. It reports
// whether a permit was consumed. Timed waiting underlies the standby
// thread's periodic polling in the LOITER lock (Appendix A.1).
func (p *Parker) ParkTimeout(d time.Duration) bool {
	if p.state.CompareAndSwap(1, 0) {
		return true
	}
	if d <= 0 {
		return false
	}
	timer := time.NewTimer(d)
	defer timer.Stop()
	for {
		select {
		case <-p.gate:
			if p.state.CompareAndSwap(1, 0) {
				return true
			}
		case <-timer.C:
			// One more chance: a permit may have raced with the timer.
			return p.state.CompareAndSwap(1, 0)
		}
	}
}

// ParkContext blocks until a permit is available or ctx is done, and
// reports whether a permit was consumed. A nil ctx, or one that can never
// be cancelled (Done() == nil), degenerates to Park. Like ParkTimeout it
// admits spurious returns only through the ctx path: a false return means
// ctx is done. Cancellable parking is what lets a queued lock waiter
// abandon its slot (see package lock's cancellation protocol).
func (p *Parker) ParkContext(ctx context.Context) bool {
	if p.state.CompareAndSwap(1, 0) {
		return true
	}
	var done <-chan struct{}
	if ctx != nil {
		done = ctx.Done()
	}
	if done == nil {
		p.Park()
		return true
	}
	for {
		select {
		case <-p.gate:
			if p.state.CompareAndSwap(1, 0) {
				return true
			}
			// Stale gate token; keep waiting.
		case <-done:
			// One more chance: a permit may have raced with cancellation.
			return p.state.CompareAndSwap(1, 0)
		}
	}
}

// Unpark makes one permit available, waking the owner if it is parked.
// Redundant unparks collapse into a single pending permit, exactly like the
// optimized implementations described in §5.1.
func (p *Parker) Unpark() {
	if p.state.Swap(1) == 1 {
		return // permit already pending; nothing to signal
	}
	select {
	case p.gate <- struct{}{}:
	default:
		// A wakeup token is already queued; the owner will observe
		// state==1 when it drains the gate.
	}
}

// TryConsume consumes a pending permit without blocking and reports whether
// one was pending. Used by spin-then-park loops to poll for an unpark while
// still spinning.
func (p *Parker) TryConsume() bool {
	return p.state.CompareAndSwap(1, 0)
}
