package park

import (
	"context"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestUnparkBeforePark(t *testing.T) {
	p := NewParker()
	p.Unpark()
	done := make(chan struct{})
	go func() {
		p.Park() // must consume the pending permit without blocking
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("Park blocked despite pending permit")
	}
}

func TestParkThenUnpark(t *testing.T) {
	p := NewParker()
	done := make(chan struct{})
	go func() {
		p.Park()
		close(done)
	}()
	// Give the goroutine a chance to actually park.
	time.Sleep(10 * time.Millisecond)
	select {
	case <-done:
		t.Fatal("Park returned without a permit")
	default:
	}
	p.Unpark()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("Unpark did not wake the parked goroutine")
	}
}

func TestRedundantUnparksCollapse(t *testing.T) {
	p := NewParker()
	for i := 0; i < 10; i++ {
		p.Unpark()
	}
	p.Park() // consumes the single pending permit
	if got := p.TryConsume(); got {
		t.Fatal("redundant unparks deposited more than one permit")
	}
}

func TestParkTimeoutExpires(t *testing.T) {
	p := NewParker()
	start := time.Now()
	if p.ParkTimeout(20 * time.Millisecond) {
		t.Fatal("ParkTimeout reported a permit that was never granted")
	}
	if time.Since(start) < 15*time.Millisecond {
		t.Fatal("ParkTimeout returned too early")
	}
}

func TestParkTimeoutZeroAndNegative(t *testing.T) {
	p := NewParker()
	if p.ParkTimeout(0) {
		t.Fatal("ParkTimeout(0) must not consume a permit that does not exist")
	}
	if p.ParkTimeout(-time.Second) {
		t.Fatal("negative timeout must behave like zero")
	}
	p.Unpark()
	if !p.ParkTimeout(0) {
		t.Fatal("ParkTimeout(0) must consume a pending permit")
	}
}

func TestParkTimeoutConsumesLatePermit(t *testing.T) {
	p := NewParker()
	go func() {
		time.Sleep(10 * time.Millisecond)
		p.Unpark()
	}()
	if !p.ParkTimeout(2 * time.Second) {
		t.Fatal("ParkTimeout missed a permit granted before the deadline")
	}
}

func TestTryConsume(t *testing.T) {
	p := NewParker()
	if p.TryConsume() {
		t.Fatal("TryConsume invented a permit")
	}
	p.Unpark()
	if !p.TryConsume() {
		t.Fatal("TryConsume missed a pending permit")
	}
	if p.TryConsume() {
		t.Fatal("TryConsume double-consumed")
	}
}

// TestHandoffPingPong drives many park/unpark round trips between two
// goroutines, the pattern a direct-handoff lock generates under saturation.
func TestHandoffPingPong(t *testing.T) {
	const rounds = 10_000
	a, b := NewParker(), NewParker()
	var turns atomic.Int64
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := 0; i < rounds; i++ {
			a.Park()
			turns.Add(1)
			b.Unpark()
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < rounds; i++ {
			a.Unpark()
			b.Park()
		}
	}()
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatalf("ping-pong deadlocked after %d turns", turns.Load())
	}
	if turns.Load() != rounds {
		t.Fatalf("lost wakeups: %d turns, want %d", turns.Load(), rounds)
	}
}

// TestManyUnparkers checks that concurrent unparkers never lose the permit
// entirely (no stranded waiter), the failure mode the gate channel guards
// against.
func TestManyUnparkers(t *testing.T) {
	p := NewParker()
	const waits = 200
	for i := 0; i < waits; i++ {
		var wg sync.WaitGroup
		for u := 0; u < 4; u++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				p.Unpark()
			}()
		}
		p.Park()
		wg.Wait()
		// Drain any extra permit so the next round starts neutral.
		p.TryConsume()
		for {
			select {
			case <-p.gate:
				continue
			default:
			}
			break
		}
		p.state.Store(0)
	}
}

func BenchmarkUncontendedParkUnpark(b *testing.B) {
	p := NewParker()
	for i := 0; i < b.N; i++ {
		p.Unpark()
		p.Park()
	}
}

func TestParkContextPermit(t *testing.T) {
	p := NewParker()
	p.Unpark()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	if !p.ParkContext(ctx) {
		t.Fatal("ParkContext missed the pending permit")
	}
}

func TestParkContextCancel(t *testing.T) {
	p := NewParker()
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan bool, 1)
	go func() { done <- p.ParkContext(ctx) }()
	time.Sleep(10 * time.Millisecond)
	select {
	case <-done:
		t.Fatal("ParkContext returned without permit or cancellation")
	default:
	}
	cancel()
	select {
	case got := <-done:
		if got {
			t.Fatal("cancelled ParkContext reported a consumed permit")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("ParkContext ignored cancellation")
	}
}

// TestParkContextPermitBeatsCancel: a permit racing with cancellation must
// not be lost — either the permit is consumed (true) or it stays pending
// for the next Park.
func TestParkContextPermitBeatsCancel(t *testing.T) {
	p := NewParker()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	p.Unpark()
	if !p.ParkContext(ctx) {
		// Permit must still be pending.
		if !p.TryConsume() {
			t.Fatal("permit lost across a cancelled ParkContext")
		}
	}
}

// TestParkContextNil: a nil context (and a never-cancellable one)
// degenerates to plain Park.
func TestParkContextNil(t *testing.T) {
	p := NewParker()
	done := make(chan struct{})
	go func() {
		if !p.ParkContext(nil) {
			t.Error("nil-ctx ParkContext returned false")
		}
		if !p.ParkContext(context.Background()) {
			t.Error("Background-ctx ParkContext returned false")
		}
		close(done)
	}()
	time.Sleep(10 * time.Millisecond)
	p.Unpark()
	time.Sleep(10 * time.Millisecond)
	p.Unpark()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("ParkContext without cancellation did not behave like Park")
	}
}
