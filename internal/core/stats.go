package core

import (
	"runtime"
	"sync/atomic"
	"unsafe"
)

// Event identifies one of the CR event counters a lock maintains. Events
// index into a stats stripe; the set mirrors the fields of Snapshot.
type Event uint32

const (
	EvAcquires     Event = iota // successful lock acquisitions
	EvHandoffs                  // direct handoffs to a waiting successor
	EvCulls                     // ACS→PS transfers (culling)
	EvReprovisions              // PS→ACS transfers to preserve work conservation
	EvPromotions                // PS→ownership fairness grafts (Bernoulli)
	EvParks                     // voluntary context switches: waiter parked
	EvUnparks                   // wakeups issued to parked waiters
	EvFastPath                  // uncontended / barging acquisitions
	EvSlowPath                  // acquisitions that queued
	EvCancels                   // acquisitions abandoned (context cancelled / deadline)
	EvAbandons                  // abandoned waiter nodes excised by other paths

	numEvents
)

// stripeBytes is the footprint of one stripe: two cache lines, so adjacent
// stripes never share a line even under the adjacent-line prefetcher.
const stripeBytes = 128

// stripe holds one full set of event counters on its own pair of cache
// lines. Writers hash to a stripe; Read sums across all of them.
//
//lockcheck:line=2
type stripe struct {
	c [numEvents]atomic.Uint64
	_ [stripeBytes - (uintptr(numEvents) * 8)]byte
}

// Stats counts the CR events of a lock, striped across cache-line-padded
// counter sets so concurrent writers on different processors do not fight
// over a single hot line. A nil *Stats is valid and counts nothing: every
// method no-ops, which is the WithStats(false) zero-instrumentation mode.
//
// Writers pick a stripe by a cheap per-goroutine hash (derived from the
// goroutine's stack address), so each circulating goroutine tends to dirty
// only its own stripe. Read sums the stripes into a Snapshot.
type Stats struct {
	stripes []stripe
	mask    uint32
}

// NewStats returns striped stats sized to the host's true write
// parallelism — min(GOMAXPROCS, NumCPU), rounded up to a power of two.
// GOMAXPROCS alone overcounts on oversubscribed hosts (more Ps than
// CPUs), where extra stripes cost cache footprint with no concurrent
// writers to separate.
func NewStats() *Stats {
	n := runtime.GOMAXPROCS(0)
	if c := runtime.NumCPU(); c < n {
		n = c
	}
	return NewStatsStripes(n)
}

// NewStatsStripes returns stats with at least n stripes, rounded up to a
// power of two (minimum 1).
func NewStatsStripes(n int) *Stats {
	if n < 1 {
		n = 1
	}
	p := 1
	for p < n {
		p <<= 1
	}
	return &Stats{stripes: make([]stripe, p), mask: uint32(p - 1)}
}

// Stripes reports the number of counter stripes (a power of two).
func (s *Stats) Stripes() int {
	if s == nil {
		return 0
	}
	return len(s.stripes)
}

// stripeFor picks the caller's stripe. Goroutine stacks are distinct
// allocations at least 2 KiB apart, so the address of a stack variable,
// coarsened to 1 KiB granularity and mixed by a Fibonacci hash, is a cheap
// per-goroutine identifier — no atomics, no TLS, no runtime hooks. Stripe
// choice only spreads contention; correctness never depends on stability.
func (s *Stats) stripeFor() *stripe {
	if s.mask == 0 {
		// Single stripe (single-CPU host): skip the hash entirely.
		return &s.stripes[0]
	}
	var probe byte
	h := uint32(uintptr(unsafe.Pointer(&probe))>>10) * 0x9E3779B1
	return &s.stripes[(h>>16)&s.mask]
}

// Inc adds one to event e. Nil-safe; the nil fast path is a single
// predictable branch.
func (s *Stats) Inc(e Event) {
	if s == nil {
		return
	}
	s.stripeFor().c[e].Add(1)
}

// Inc2 adds one to two events with a single stripe lookup.
func (s *Stats) Inc2(a, b Event) {
	if s == nil {
		return
	}
	st := s.stripeFor()
	st.c[a].Add(1)
	st.c[b].Add(1)
}

// Inc3 adds one to three events with a single stripe lookup.
func (s *Stats) Inc3(a, b, c Event) {
	if s == nil {
		return
	}
	st := s.stripeFor()
	st.c[a].Add(1)
	st.c[b].Add(1)
	st.c[c].Add(1)
}

// Snapshot is a plain-value summary of Stats.
type Snapshot struct {
	Acquires     uint64
	Handoffs     uint64
	Culls        uint64
	Reprovisions uint64
	Promotions   uint64
	Parks        uint64
	Unparks      uint64
	FastPath     uint64
	SlowPath     uint64

	// Cancels counts acquisition attempts that returned with a context
	// error: exactly one per failed LockContext/TryLockFor call.
	Cancels uint64
	// Abandons counts abandoned waiter nodes excised by someone other
	// than the cancelled waiter itself: the unlock path's chain walk,
	// passive-list pops, a CLH successor inheriting a dead predecessor,
	// or a LOITER standby resignation. Distinct from Cancels because a
	// cancelled TAS/Ticket waiter leaves no node behind, and a node
	// abandoned at quiescence may not be excised until later traffic.
	Abandons uint64
}

// Add returns the field-wise sum of s and o. Aggregators (the sharded
// store's Snapshot, multi-lock reports) use it to roll per-lock snapshots
// up into totals.
func (s Snapshot) Add(o Snapshot) Snapshot {
	return Snapshot{
		Acquires:     s.Acquires + o.Acquires,
		Handoffs:     s.Handoffs + o.Handoffs,
		Culls:        s.Culls + o.Culls,
		Reprovisions: s.Reprovisions + o.Reprovisions,
		Promotions:   s.Promotions + o.Promotions,
		Parks:        s.Parks + o.Parks,
		Unparks:      s.Unparks + o.Unparks,
		FastPath:     s.FastPath + o.FastPath,
		SlowPath:     s.SlowPath + o.SlowPath,
		Cancels:      s.Cancels + o.Cancels,
		Abandons:     s.Abandons + o.Abandons,
	}
}

// SatSub returns a - b saturating at zero: the module-wide rule for
// differencing monotonic counters, so a mis-paired snapshot pair reads
// as idle instead of wrapping to 2^64.
func SatSub(a, b uint64) uint64 {
	if a < b {
		return 0
	}
	return a - b
}

// Sub returns the field-wise difference s - o, saturating at zero per
// field. Controllers and benches use it to turn two successive snapshots
// of a monotonic counter set into per-interval rates; saturation (rather
// than wraparound) keeps a rate readable even if the caller pairs
// snapshots from different sources by mistake.
func (s Snapshot) Sub(o Snapshot) Snapshot {
	sub := SatSub
	return Snapshot{
		Acquires:     sub(s.Acquires, o.Acquires),
		Handoffs:     sub(s.Handoffs, o.Handoffs),
		Culls:        sub(s.Culls, o.Culls),
		Reprovisions: sub(s.Reprovisions, o.Reprovisions),
		Promotions:   sub(s.Promotions, o.Promotions),
		Parks:        sub(s.Parks, o.Parks),
		Unparks:      sub(s.Unparks, o.Unparks),
		FastPath:     sub(s.FastPath, o.FastPath),
		SlowPath:     sub(s.SlowPath, o.SlowPath),
		Cancels:      sub(s.Cancels, o.Cancels),
		Abandons:     sub(s.Abandons, o.Abandons),
	}
}

// Read sums the stripes into a consistent-enough snapshot for reporting.
// Individual counters are read atomically; cross-counter skew is
// acceptable for the monitoring purposes they serve. Read of a nil *Stats
// returns a zero Snapshot.
func (s *Stats) Read() Snapshot {
	var sum [numEvents]uint64
	if s != nil {
		for i := range s.stripes {
			st := &s.stripes[i]
			for e := range sum {
				sum[e] += st.c[e].Load()
			}
		}
	}
	return Snapshot{
		Acquires:     sum[EvAcquires],
		Handoffs:     sum[EvHandoffs],
		Culls:        sum[EvCulls],
		Reprovisions: sum[EvReprovisions],
		Promotions:   sum[EvPromotions],
		Parks:        sum[EvParks],
		Unparks:      sum[EvUnparks],
		FastPath:     sum[EvFastPath],
		SlowPath:     sum[EvSlowPath],
		Cancels:      sum[EvCancels],
		Abandons:     sum[EvAbandons],
	}
}
