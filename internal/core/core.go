// Package core holds the concurrency-restriction (CR) engine shared by the
// Malthusian lock variants in package lock: the admission policy knobs, the
// Bernoulli long-term-fairness trial, and the statistics the paper reports.
//
// The paper's CR discipline (§1, §4):
//
//   - Partition threads circulating over a contended lock into the active
//     circulating set (ACS) and the passive set (PS).
//   - At unlock time, surplus waiters (more than one) are culled from the
//     ACS into the PS ("culling").
//   - The admission policy must stay work conserving: a deficit in the ACS
//     promptly reprovisions from the PS ("reprovisioning").
//   - Long-term fairness is restored by a Bernoulli trial: on average once
//     every FairnessPeriod unlocks, ownership is ceded to the eldest
//     member of the PS ("promotion").
package core

import (
	"repro/internal/xrand"
)

// DefaultFairnessPeriod is the paper's promotion rate: "Statistically, we
// cede ownership to the tail of the PS ... on average once every 1000
// unlock operations."
const DefaultFairnessPeriod = 1000

// DefaultSpinBudget is the bounded spin phase of spin-then-park waiting,
// in poll iterations. The paper uses ~20000 cycles, an empirical estimate
// of a context-switch round trip; on the goroutine substrate a poll
// iteration is a load plus an occasional yield, and this count plays the
// same role.
const DefaultSpinBudget = 4096

// Policy carries the tunables of a CR lock. The paper stresses parameter
// parsimony: the ACS size is never a tunable — it emerges from culling —
// and the only knobs are the fairness period and the spin budget.
type Policy struct {
	// FairnessPeriod k makes each unlock promote the eldest passive
	// thread with probability 1/k. 0 disables promotion (pure CR, unfair
	// long-term); 1 promotes on every unlock (degenerates toward FIFO).
	FairnessPeriod uint64

	// SpinBudget is the number of poll iterations a waiter spins before
	// parking under spin-then-park waiting. Ignored by pure-spin waiters.
	SpinBudget int

	// Seed seeds the lock-local xor-shift generator used for Bernoulli
	// trials. Zero selects a fixed default so behaviour is reproducible.
	Seed uint64
}

// DefaultPolicy returns the paper's defaults.
func DefaultPolicy() Policy {
	return Policy{FairnessPeriod: DefaultFairnessPeriod, SpinBudget: DefaultSpinBudget}
}

// Trial is the lock-local Bernoulli fairness trial. It is deliberately not
// synchronized: every CR lock calls it only from its unlock path while the
// lock is still held, which serializes access — the same protection the
// paper uses for the passive list itself.
type Trial struct {
	rng    xrand.State
	period uint64
}

// NewTrial returns a Trial with the given period and seed.
func NewTrial(period, seed uint64) *Trial {
	t := &Trial{period: period}
	t.rng.Seed(seed)
	return t
}

// Promote reports whether this unlock should cede ownership to the eldest
// passive thread.
func (t *Trial) Promote() bool {
	return t.rng.Bernoulli(t.period)
}

// Prob reports true with probability p; used by the mostly-LIFO condition
// variable and semaphore admission policies (append vs prepend).
func (t *Trial) Prob(p float64) bool {
	return t.rng.Prob(p)
}

// The event counters a lock maintains (Stats, Snapshot, Event) live in
// stats.go: a striped, cache-line-padded subsystem so the measurement
// machinery itself stays invisible to the coherence fabric.
