package core

import (
	"sync"
	"testing"
	"unsafe"
)

// TestStatsStripeSum hammers every event from many goroutines and checks
// that Read sums the stripes to the exact totals, with concurrent
// snapshots staying monotone.
func TestStatsStripeSum(t *testing.T) {
	s := NewStatsStripes(8)
	const (
		goroutines = 8
		iters      = 10_000
	)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				s.Inc(EvCulls)
				s.Inc2(EvFastPath, EvAcquires)
				s.Inc3(EvPromotions, EvHandoffs, EvUnparks)
				s.Inc2(EvCancels, EvAbandons)
			}
		}()
	}
	done := make(chan struct{})
	go func() {
		// Concurrent snapshots must be safe (values monotone).
		var last uint64
		for i := 0; i < 1000; i++ {
			snap := s.Read()
			if snap.Acquires < last {
				t.Error("acquires went backwards")
				break
			}
			last = snap.Acquires
		}
		close(done)
	}()
	wg.Wait()
	<-done
	snap := s.Read()
	total := uint64(goroutines * iters)
	if snap.Culls != total || snap.Acquires != total || snap.FastPath != total ||
		snap.Promotions != total || snap.Handoffs != total || snap.Unparks != total ||
		snap.Cancels != total || snap.Abandons != total {
		t.Fatalf("stripe sums wrong: %+v want %d each", snap, total)
	}
	if snap.Parks != 0 || snap.SlowPath != 0 || snap.Reprovisions != 0 {
		t.Fatalf("untouched counters nonzero: %+v", snap)
	}
}

// TestStatsDisabled verifies the nil-stats zero-instrumentation mode:
// every method on a nil *Stats is a safe no-op.
func TestStatsDisabled(t *testing.T) {
	var s *Stats
	s.Inc(EvAcquires)
	s.Inc2(EvFastPath, EvAcquires)
	s.Inc3(EvPromotions, EvHandoffs, EvUnparks)
	if got := s.Read(); got != (Snapshot{}) {
		t.Fatalf("nil stats read %+v, want zero", got)
	}
	if s.Stripes() != 0 {
		t.Fatalf("nil stats stripes %d, want 0", s.Stripes())
	}
}

func TestStatsStripeCount(t *testing.T) {
	for n, want := range map[int]int{-3: 1, 0: 1, 1: 1, 2: 2, 3: 4, 5: 8, 8: 8, 9: 16} {
		if got := NewStatsStripes(n).Stripes(); got != want {
			t.Errorf("NewStatsStripes(%d).Stripes() = %d, want %d", n, got, want)
		}
	}
	if got := NewStats().Stripes(); got < 1 || got&(got-1) != 0 {
		t.Fatalf("NewStats stripes %d: want power of two >= 1", got)
	}
}

// TestStripeLayout asserts each stripe occupies whole cache lines so two
// stripes never share a coherence granule.
func TestStripeLayout(t *testing.T) {
	if sz := unsafe.Sizeof(stripe{}); sz != stripeBytes {
		t.Fatalf("stripe size %d, want %d", sz, stripeBytes)
	}
	if stripeBytes%64 != 0 {
		t.Fatalf("stripe size %d not a multiple of the cache line", stripeBytes)
	}
	s := NewStatsStripes(4)
	a := uintptr(unsafe.Pointer(&s.stripes[0]))
	b := uintptr(unsafe.Pointer(&s.stripes[1]))
	if b-a != stripeBytes {
		t.Fatalf("adjacent stripes %d bytes apart, want %d", b-a, stripeBytes)
	}
}

// TestStripeSpread checks that distinct goroutines do not all collapse
// onto one stripe. With GOMAXPROCS goroutines and stack-address hashing
// the distribution need not be uniform, only non-degenerate; this guards
// against a broken hash that maps everything to stripe 0.
func TestStripeSpread(t *testing.T) {
	// Works even on a single P: stripe choice hashes goroutine stack
	// addresses, which are distinct regardless of parallelism.
	s := NewStatsStripes(64)
	const goroutines = 64
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			s.Inc(EvAcquires)
		}()
	}
	wg.Wait()
	used := 0
	for i := range s.stripes {
		if s.stripes[i].c[EvAcquires].Load() != 0 {
			used++
		}
	}
	if used < 2 {
		t.Fatalf("%d goroutines hit only %d stripe(s): hash degenerate", goroutines, used)
	}
	if got := s.Read().Acquires; got != goroutines {
		t.Fatalf("sum %d want %d", got, goroutines)
	}
}

func TestSnapshotSub(t *testing.T) {
	a := Snapshot{Acquires: 10, Parks: 7, Cancels: 3, Abandons: 2, FastPath: 6, SlowPath: 4}
	b := Snapshot{Acquires: 4, Parks: 2, Cancels: 1, Abandons: 5, FastPath: 1, SlowPath: 1}
	d := a.Sub(b)
	if d.Acquires != 6 || d.Parks != 5 || d.Cancels != 2 || d.FastPath != 5 || d.SlowPath != 3 {
		t.Fatalf("Sub = %+v", d)
	}
	// Saturating, never wrapping: a field that went "backwards" reads 0.
	if d.Abandons != 0 {
		t.Fatalf("Sub saturated Abandons = %d want 0", d.Abandons)
	}
	if z := a.Sub(a); z != (Snapshot{}) {
		t.Fatalf("x.Sub(x) = %+v want zero", z)
	}
	// Sub inverts Add for monotonic pairs.
	if got := a.Add(b).Sub(b); got != a {
		t.Fatalf("Add then Sub = %+v want %+v", got, a)
	}
}
