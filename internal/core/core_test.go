package core

import (
	"math"
	"testing"
)

func TestDefaultPolicy(t *testing.T) {
	p := DefaultPolicy()
	if p.FairnessPeriod != 1000 {
		t.Fatalf("fairness period %d, want the paper's 1000", p.FairnessPeriod)
	}
	if p.SpinBudget <= 0 {
		t.Fatal("spin budget must be positive")
	}
}

func TestTrialPromoteRate(t *testing.T) {
	tr := NewTrial(1000, 42)
	const draws = 500_000
	hits := 0
	for i := 0; i < draws; i++ {
		if tr.Promote() {
			hits++
		}
	}
	want := float64(draws) / 1000
	if math.Abs(float64(hits)-want) > 6*math.Sqrt(want) {
		t.Fatalf("promotion rate: %d hits over %d draws, want ~%.0f", hits, draws, want)
	}
}

func TestTrialDisabled(t *testing.T) {
	tr := NewTrial(0, 1)
	for i := 0; i < 10_000; i++ {
		if tr.Promote() {
			t.Fatal("period 0 must never promote")
		}
	}
}

func TestTrialAlways(t *testing.T) {
	tr := NewTrial(1, 1)
	for i := 0; i < 100; i++ {
		if !tr.Promote() {
			t.Fatal("period 1 must always promote")
		}
	}
}

func TestTrialProb(t *testing.T) {
	tr := NewTrial(0, 9)
	hits := 0
	const draws = 200_000
	for i := 0; i < draws; i++ {
		if tr.Prob(0.001) {
			hits++
		}
	}
	if hits < 100 || hits > 400 {
		t.Fatalf("Prob(0.001): %d hits over %d draws", hits, draws)
	}
}

// Stats tests (striping, disabled mode, layout) live in stats_test.go.
