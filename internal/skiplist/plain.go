package skiplist

import "repro/internal/xrand"

// Plain is the service-grade variant of List: the same probabilistic
// tower structure, minus the simulator instrumentation (no Touch
// callback, no virtual addresses), following the hashmap.Plain
// precedent. Each traversal step is a bare pointer chase, which matters
// when the list sits inside a lock-guarded stripe on a real request path
// (package shard via package store).
//
// Beyond the List operations it serves the ordered-read contract a
// store backend needs: Put reports whether the key was new, and Min /
// Scan / Range expose the key order the tower structure maintains
// anyway.
//
// Like List, Plain is not safe for concurrent use: the caller's lock —
// in the sharded store, the stripe's registry-built lock — provides
// mutual exclusion.
type Plain struct {
	head   plainNode
	height int
	size   int
	rng    xrand.State
}

type plainNode struct {
	key, val uint64
	next     [maxHeight]*plainNode
	height   int
}

// NewPlain returns an empty list whose tower heights are drawn from a
// generator seeded with seed (deterministic structure for a given insert
// sequence).
func NewPlain(seed uint64) *Plain {
	l := &Plain{height: 1}
	l.head.height = maxHeight
	l.rng.Seed(seed)
	return l
}

// Len returns the number of keys present.
func (l *Plain) Len() int { return l.size }

// findGE locates the first node with key >= key and fills prev with the
// predecessors at each level.
func (l *Plain) findGE(key uint64, prev *[maxHeight]*plainNode) *plainNode {
	x := &l.head
	for lvl := l.height - 1; lvl >= 0; lvl-- {
		for x.next[lvl] != nil && x.next[lvl].key < key {
			x = x.next[lvl]
		}
		if prev != nil {
			prev[lvl] = x
		}
	}
	return x.next[0]
}

// Get returns the value for key and whether it was present.
func (l *Plain) Get(key uint64) (uint64, bool) {
	n := l.findGE(key, nil)
	if n != nil && n.key == key {
		return n.val, true
	}
	return 0, false
}

// Put inserts or updates key. It reports whether the key was new.
func (l *Plain) Put(key, val uint64) bool {
	var prev [maxHeight]*plainNode
	n := l.findGE(key, &prev)
	if n != nil && n.key == key {
		n.val = val
		return false
	}
	h := 1
	for h < maxHeight && l.rng.Bernoulli(4) {
		h++
	}
	if h > l.height {
		for lvl := l.height; lvl < h; lvl++ {
			prev[lvl] = &l.head
		}
		l.height = h
	}
	nn := &plainNode{key: key, val: val, height: h}
	for lvl := 0; lvl < h; lvl++ {
		nn.next[lvl] = prev[lvl].next[lvl]
		prev[lvl].next[lvl] = nn
	}
	l.size++
	return true
}

// Delete removes key; it reports whether the key was present.
func (l *Plain) Delete(key uint64) bool {
	var prev [maxHeight]*plainNode
	n := l.findGE(key, &prev)
	if n == nil || n.key != key {
		return false
	}
	for lvl := 0; lvl < n.height; lvl++ {
		if prev[lvl].next[lvl] == n {
			prev[lvl].next[lvl] = n.next[lvl]
		}
	}
	l.size--
	return true
}

// Min returns the smallest key, or ok=false when empty.
func (l *Plain) Min() (key uint64, ok bool) {
	n := l.head.next[0]
	if n == nil {
		return 0, false
	}
	return n.key, true
}

// Scan calls fn for every pair with lo <= key <= hi, in ascending key
// order, until fn returns false. Bounds are inclusive, so the full
// domain is Scan(0, ^uint64(0), fn). The list must not be mutated during
// the walk.
func (l *Plain) Scan(lo, hi uint64, fn func(key, val uint64) bool) {
	for n := l.findGE(lo, nil); n != nil && n.key <= hi; n = n.next[0] {
		if !fn(n.key, n.val) {
			return
		}
	}
}

// Range calls fn for every key/value pair until fn returns false. Unlike
// a hash table's Range, the iteration order is ascending key order.
func (l *Plain) Range(fn func(key, val uint64) bool) {
	l.Scan(0, ^uint64(0), fn)
}

// CheckInvariants verifies level-0 strict ordering, the size count, and
// that each higher level is a subsequence of level 0. For tests.
func (l *Plain) CheckInvariants() bool {
	seen := map[uint64]bool{}
	n := 0
	for x := l.head.next[0]; x != nil; x = x.next[0] {
		if x.next[0] != nil && x.next[0].key <= x.key {
			return false
		}
		seen[x.key] = true
		n++
	}
	if n != l.size {
		return false
	}
	for lvl := 1; lvl < l.height; lvl++ {
		prev := uint64(0)
		first := true
		for x := l.head.next[lvl]; x != nil; x = x.next[lvl] {
			if !seen[x.key] {
				return false
			}
			if !first && x.key <= prev {
				return false
			}
			prev, first = x.key, false
		}
	}
	return true
}
