package skiplist

import (
	"math/rand"
	"testing"
)

func TestPlainOrderedOps(t *testing.T) {
	l := NewPlain(7)
	rng := rand.New(rand.NewSource(1))
	present := map[uint64]uint64{}
	for i := 0; i < 5000; i++ {
		k := uint64(rng.Intn(2000))
		switch rng.Intn(3) {
		case 0, 1:
			v := rng.Uint64()
			_, had := present[k]
			if fresh := l.Put(k, v); fresh == had {
				t.Fatalf("Put(%d) fresh=%v, had=%v", k, fresh, had)
			}
			present[k] = v
		case 2:
			_, had := present[k]
			if got := l.Delete(k); got != had {
				t.Fatalf("Delete(%d)=%v, had=%v", k, got, had)
			}
			delete(present, k)
		}
	}
	if l.Len() != len(present) {
		t.Fatalf("Len=%d want %d", l.Len(), len(present))
	}
	if !l.CheckInvariants() {
		t.Fatal("invariants violated")
	}
	// Scan yields ascending keys with the model's values.
	var last uint64
	first := true
	n := 0
	l.Scan(0, ^uint64(0), func(k, v uint64) bool {
		if !first && k <= last {
			t.Fatalf("Scan not ascending: %d after %d", k, last)
		}
		if present[k] != v {
			t.Fatalf("Scan yielded %d=%d, want %d", k, v, present[k])
		}
		last, first = k, false
		n++
		return true
	})
	if n != len(present) {
		t.Fatalf("Scan yielded %d pairs want %d", n, len(present))
	}
	// Min agrees with the first scanned key.
	if k, ok := l.Min(); len(present) > 0 && (!ok || func() bool {
		seen := false
		l.Scan(0, ^uint64(0), func(sk, _ uint64) bool { seen = sk == k; return false })
		return !seen
	}()) {
		t.Fatalf("Min=%d,%v disagrees with Scan head", k, ok)
	}
}

// TestPlainDeterministicTowers: two lists with the same seed and insert
// sequence are structurally identical — the property WithSeed exists for.
func TestPlainDeterministicTowers(t *testing.T) {
	a, b := NewPlain(42), NewPlain(42)
	for i := uint64(0); i < 500; i++ {
		k := (i * 2654435761) % 1000
		a.Put(k, i)
		b.Put(k, i)
	}
	if a.height != b.height {
		t.Fatalf("heights diverge: %d vs %d", a.height, b.height)
	}
	for lvl := 0; lvl < a.height; lvl++ {
		x, y := a.head.next[lvl], b.head.next[lvl]
		for x != nil && y != nil {
			if x.key != y.key {
				t.Fatalf("level %d diverges: %d vs %d", lvl, x.key, y.key)
			}
			x, y = x.next[lvl], y.next[lvl]
		}
		if x != nil || y != nil {
			t.Fatalf("level %d lengths diverge", lvl)
		}
	}
}

func TestPlainScanBounds(t *testing.T) {
	l := NewPlain(1)
	for _, k := range []uint64{0, 5, 10, 15, ^uint64(0)} {
		l.Put(k, k)
	}
	collect := func(lo, hi uint64) []uint64 {
		var out []uint64
		l.Scan(lo, hi, func(k, _ uint64) bool { out = append(out, k); return true })
		return out
	}
	for _, tc := range []struct {
		lo, hi uint64
		want   []uint64
	}{
		{5, 10, []uint64{5, 10}},               // inclusive both ends
		{6, 9, nil},                            // empty interior
		{0, 0, []uint64{0}},                    // key 0 reachable
		{16, ^uint64(0), []uint64{^uint64(0)}}, // inclusive max key
		{0, ^uint64(0), []uint64{0, 5, 10, 15, ^uint64(0)}},
	} {
		got := collect(tc.lo, tc.hi)
		if len(got) != len(tc.want) {
			t.Fatalf("Scan[%d,%d] = %v want %v", tc.lo, tc.hi, got, tc.want)
		}
		for i := range tc.want {
			if got[i] != tc.want[i] {
				t.Fatalf("Scan[%d,%d] = %v want %v", tc.lo, tc.hi, got, tc.want)
			}
		}
	}
}
