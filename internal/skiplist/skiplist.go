// Package skiplist implements an ordered map over a probabilistic skip
// list, standing in for the leveldb memtable in the kvstore workload
// (§6.5). Node visits are reported through the Touch callback so the
// simulator charges the structure's pointer-chasing footprint.
package skiplist

import "repro/internal/xrand"

const maxHeight = 12

type node struct {
	key, val uint64
	addr     uint64
	next     [maxHeight]*node
	height   int
}

// List is a skip list mapping uint64 keys to uint64 values. Not safe for
// concurrent use; callers serialize with a lock.
type List struct {
	head   node
	height int
	size   int
	rng    xrand.State

	// NextAddr supplies virtual addresses for new nodes; Touch receives
	// each visited node's address.
	NextAddr func() uint64
	Touch    func(addr uint64)
}

// New returns an empty list seeded deterministically.
func New(seed uint64) *List {
	l := &List{height: 1}
	l.head.height = maxHeight
	l.rng.Seed(seed)
	return l
}

// Len returns the number of keys.
func (l *List) Len() int { return l.size }

func (l *List) touch(n *node) {
	if l.Touch != nil && n != nil && n != &l.head {
		l.Touch(n.addr)
	}
}

func (l *List) randomHeight() int {
	h := 1
	for h < maxHeight && l.rng.Bernoulli(4) {
		h++
	}
	return h
}

// findGE locates the first node with key >= key and fills prev with the
// predecessors at each level.
func (l *List) findGE(key uint64, prev *[maxHeight]*node) *node {
	x := &l.head
	for lvl := l.height - 1; lvl >= 0; lvl-- {
		for x.next[lvl] != nil && x.next[lvl].key < key {
			x = x.next[lvl]
			l.touch(x)
		}
		if prev != nil {
			prev[lvl] = x
		}
	}
	n := x.next[0]
	l.touch(n)
	return n
}

// Get returns the value for key and whether it is present.
func (l *List) Get(key uint64) (uint64, bool) {
	n := l.findGE(key, nil)
	if n != nil && n.key == key {
		return n.val, true
	}
	return 0, false
}

// Put inserts or updates key.
func (l *List) Put(key, val uint64) {
	var prev [maxHeight]*node
	n := l.findGE(key, &prev)
	if n != nil && n.key == key {
		n.val = val
		return
	}
	h := l.randomHeight()
	if h > l.height {
		for lvl := l.height; lvl < h; lvl++ {
			prev[lvl] = &l.head
		}
		l.height = h
	}
	nn := &node{key: key, val: val, height: h}
	if l.NextAddr != nil {
		nn.addr = l.NextAddr()
	}
	l.touch(nn)
	for lvl := 0; lvl < h; lvl++ {
		nn.next[lvl] = prev[lvl].next[lvl]
		prev[lvl].next[lvl] = nn
	}
	l.size++
}

// Delete removes key, reporting whether it was present.
func (l *List) Delete(key uint64) bool {
	var prev [maxHeight]*node
	n := l.findGE(key, &prev)
	if n == nil || n.key != key {
		return false
	}
	for lvl := 0; lvl < n.height; lvl++ {
		if prev[lvl].next[lvl] == n {
			prev[lvl].next[lvl] = n.next[lvl]
		}
	}
	l.size--
	return true
}

// Min returns the smallest key, or ok=false when empty.
func (l *List) Min() (key uint64, ok bool) {
	n := l.head.next[0]
	if n == nil {
		return 0, false
	}
	return n.key, true
}

// CheckInvariants verifies level-0 ordering and that each higher level is
// a subsequence of level 0. For tests.
func (l *List) CheckInvariants() bool {
	// Level 0 sorted strictly ascending.
	seen := map[uint64]bool{}
	for x := l.head.next[0]; x != nil; x = x.next[0] {
		if x.next[0] != nil && x.next[0].key <= x.key {
			return false
		}
		seen[x.key] = true
	}
	for lvl := 1; lvl < l.height; lvl++ {
		prev := uint64(0)
		first := true
		for x := l.head.next[lvl]; x != nil; x = x.next[lvl] {
			if !seen[x.key] {
				return false
			}
			if !first && x.key <= prev {
				return false
			}
			prev, first = x.key, false
		}
	}
	return true
}
