package skiplist

import (
	"testing"
	"testing/quick"

	"repro/internal/xrand"
)

func TestPutGetDelete(t *testing.T) {
	l := New(1)
	for i := uint64(1); i <= 200; i++ {
		l.Put(i*3, i)
	}
	if l.Len() != 200 {
		t.Fatalf("Len=%d", l.Len())
	}
	for i := uint64(1); i <= 200; i++ {
		v, ok := l.Get(i * 3)
		if !ok || v != i {
			t.Fatalf("Get(%d)=(%d,%v)", i*3, v, ok)
		}
	}
	if _, ok := l.Get(4); ok {
		t.Fatal("phantom key")
	}
	if !l.Delete(6) || l.Delete(6) {
		t.Fatal("delete semantics wrong")
	}
	if _, ok := l.Get(6); ok {
		t.Fatal("deleted key still present")
	}
}

func TestUpdateInPlace(t *testing.T) {
	l := New(2)
	l.Put(7, 1)
	l.Put(7, 2)
	if l.Len() != 1 {
		t.Fatalf("Len=%d", l.Len())
	}
	if v, _ := l.Get(7); v != 2 {
		t.Fatalf("v=%d", v)
	}
}

func TestMin(t *testing.T) {
	l := New(3)
	if _, ok := l.Min(); ok {
		t.Fatal("Min on empty list")
	}
	l.Put(50, 1)
	l.Put(10, 1)
	l.Put(90, 1)
	if k, ok := l.Min(); !ok || k != 10 {
		t.Fatalf("Min=%d,%v", k, ok)
	}
}

func TestInvariantsUnderRandomOps(t *testing.T) {
	f := func(seed uint64) bool {
		rng := xrand.New(seed)
		l := New(seed ^ 0xabcd)
		model := map[uint64]uint64{}
		for op := 0; op < 500; op++ {
			k := uint64(rng.Intn(200)) + 1
			switch rng.Intn(3) {
			case 0, 1:
				v := rng.Next()
				l.Put(k, v)
				model[k] = v
			case 2:
				got := l.Delete(k)
				_, want := model[k]
				if got != want {
					return false
				}
				delete(model, k)
			}
		}
		if !l.CheckInvariants() || l.Len() != len(model) {
			return false
		}
		for k, v := range model {
			got, ok := l.Get(k)
			if !ok || got != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestTouchReportsPath(t *testing.T) {
	l := New(5)
	next := uint64(0)
	l.NextAddr = func() uint64 { next += 64; return next }
	for i := uint64(1); i <= 1024; i++ {
		l.Put(i, i)
	}
	visits := 0
	l.Touch = func(uint64) { visits++ }
	l.Get(1000)
	if visits == 0 || visits > 64 {
		t.Fatalf("Get visited %d nodes; want a short skip path", visits)
	}
}

func TestDeterministicHeights(t *testing.T) {
	a, b := New(9), New(9)
	for i := uint64(1); i <= 100; i++ {
		a.Put(i, i)
		b.Put(i, i)
	}
	if a.height != b.height {
		t.Fatalf("same seed, different heights: %d vs %d", a.height, b.height)
	}
}
