package spec

import (
	"strings"
	"testing"
	"time"
)

// The spec grammar is the contract between the runtime registries and
// the speclit analyzer (which links and runs these same parsers at vet
// time): both must accept and reject exactly the same strings, so the
// parsers must be total — any input, even adversarial, produces a value
// or an error, never a panic — and deterministic, so vet's verdict on a
// constant is production's verdict on the same string.

func fuzzGrammar() *Grammar[string] {
	return NewGrammar("fuzz", map[string]ParamFunc[string]{
		"seed": func(v string) (string, error) { _, err := Uint(v); return "seed", err },
		"spin": func(v string) (string, error) { _, err := PosInt(v); return "spin", err },
		"wait": func(v string) (string, error) { _, err := Bool(v); return "wait", err },
		"hold": func(v string) (string, error) { _, err := Dur(v); return "hold", err },
		"p":    func(v string) (string, error) { _, err := Frac(v); return "p", err },
	})
}

func FuzzGrammarParse(f *testing.F) {
	// Duplicate keys, URL-escape edge cases, and plain typos.
	f.Add("x?seed=1", "seed=1")
	f.Add("x?seed=1&seed=2", "seed=1&seed=2")
	f.Add("x", "seed=%31")
	f.Add("x", "se%65d=1")
	f.Add("x", "hold=1ms&p=0.5")
	f.Add("x", "hold=%")
	f.Add("x", "a=1;b=2")
	f.Add("x", "=1&=2")
	f.Add("x", "seed")
	f.Add("x", "p=NaN")
	f.Add("x", "spin=+1")
	f.Add("x", "wait=TRUE&wait=false")
	g := fuzzGrammar()
	f.Fuzz(func(t *testing.T, spec, query string) {
		opts1, err1 := g.Parse(spec, query)
		opts2, err2 := g.Parse(spec, query)
		if (err1 == nil) != (err2 == nil) || len(opts1) != len(opts2) {
			t.Fatalf("Parse(%q, %q) is nondeterministic: (%v, %v) then (%v, %v)",
				spec, query, opts1, err1, opts2, err2)
		}
		if err1 != nil {
			if err2 == nil || err1.Error() != err2.Error() {
				t.Fatalf("Parse(%q, %q) error is nondeterministic: %q vs %q", spec, query, err1, err2)
			}
			return
		}
		// A successful parse processed each given key at most once.
		seen := make(map[string]bool, len(opts1))
		for _, k := range opts1 {
			if seen[k] {
				t.Fatalf("Parse(%q, %q) applied parameter %q twice", spec, query, k)
			}
			seen[k] = true
		}
	})
}

func FuzzRegistryResolve(f *testing.F) {
	f.Add("mcs")
	f.Add("MCS ")
	f.Add(" tas?spin=100")
	f.Add("mcs?")
	f.Add("?seed=1")
	f.Add("mcs??a=1")
	f.Add("a+b")
	f.Add("%6dcs")
	r := NewRegistry[int]("fuzz", "thing")
	r.Register(Registration[int]{Name: "mcs", Aliases: []string{"mcs-default"}, Build: 1})
	r.Register(Registration[int]{Name: "tas", Build: 2})
	f.Fuzz(func(t *testing.T, spec string) {
		reg, query, err := r.Resolve(spec)
		if err != nil {
			if !strings.Contains(err.Error(), "unknown thing") {
				t.Fatalf("Resolve(%q): unexpected error shape: %v", spec, err)
			}
			return
		}
		if reg.Build == 0 {
			t.Fatalf("Resolve(%q) succeeded with a zero registration", spec)
		}
		// The name half really resolved: strip the query and re-resolve.
		if _, ok := r.Lookup(strings.TrimSuffix(spec, "?"+query)); !ok && query != "" {
			name, _, _ := strings.Cut(spec, "?")
			if _, ok := r.Lookup(name); !ok {
				t.Fatalf("Resolve(%q) succeeded but Lookup of its name half failed", spec)
			}
		}
	})
}

// FuzzValueParsers hammers the shared typed parsers directly: they back
// every family's "bad value" errors and must never panic or accept
// garbage silently.
func FuzzValueParsers(f *testing.F) {
	f.Add("1")
	f.Add("-1")
	f.Add("1e309")
	f.Add("NaN")
	f.Add("-0")
	f.Add("1ms")
	f.Add("-1ms")
	f.Add("9223372036854775808")
	f.Add("0x10")
	f.Add("inf")
	f.Fuzz(func(t *testing.T, v string) {
		if n, err := NonNegInt(v); err == nil && n < 0 {
			t.Fatalf("NonNegInt(%q) = %d", v, n)
		}
		if n, err := PosInt(v); err == nil && n < 1 {
			t.Fatalf("PosInt(%q) = %d", v, n)
		}
		if d, err := Dur(v); err == nil && d < 0 {
			t.Fatalf("Dur(%q) = %v", v, time.Duration(d))
		}
		if fr, err := Frac(v); err == nil && (fr < 0 || fr > 1) {
			t.Fatalf("Frac(%q) = %v", v, fr)
		}
		Uint(v)
		Bool(v)
	})
}
