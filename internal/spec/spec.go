// Package spec implements the registry-and-spec-grammar machinery shared
// by the module's pluggable families: the lock registry (package lock),
// the stripe-backend registry (package store), and the adaptation-policy
// registry (package policy). A family exposes its
// implementations as self-registering names, and consumers select one
// with a spec string — a registered name optionally followed by URL-style
// parameters:
//
//	mcscr-stp?fairness=500&spin=4096&seed=42
//	skiplist?seed=7
//
// The package deliberately carries no domain knowledge. A Registry[B] is
// generic over the family's builder type B and handles name/alias
// resolution (case- and surrounding-space-insensitive), enumeration, and
// collision panics; a Grammar[O] is generic over the family's option type
// O and handles query parsing — duplicate-parameter rejection,
// deterministic error selection, per-key typed parsing — producing the
// descriptive errors both families promise ("unknown parameter … (valid:
// …)", "bad value … for …"). Error prefixes name the owning package and
// its noun ("lock: unknown lock …", "store: unknown backend …"), so a
// message still reads as coming from the family the user addressed.
package spec

import (
	"fmt"
	"math"
	"net/url"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// Registration describes one implementation to a Registry. Each
// implementation file self-registers in its init, so the registry — not
// any consumer — is the single enumeration of names in the family.
type Registration[B any] struct {
	// Name is the canonical spec name, lower-case (e.g. "mcscr-stp").
	Name string
	// Aliases resolve in Lookup but are not listed by Names.
	Aliases []string
	// Summary is a one-line human description for -list style listings.
	Summary string
	// Build constructs the implementation. Its shape is the family's
	// business; the registry only stores it.
	Build B
}

// Registry resolves names and aliases to Registrations. The zero value is
// not usable; construct with NewRegistry.
type Registry[B any] struct {
	pkg, noun string

	mu        sync.RWMutex
	byName    map[string]Registration[B] // canonical names and aliases
	canonical []string                   // sorted canonical names
}

// NewRegistry returns an empty registry whose error messages are prefixed
// with pkg and describe entries as nouns (e.g. NewRegistry("lock", "lock"),
// NewRegistry("store", "backend")).
func NewRegistry[B any](pkg, noun string) *Registry[B] {
	return &Registry[B]{pkg: pkg, noun: noun, byName: make(map[string]Registration[B])}
}

// Register adds an implementation. It panics on an empty name or a
// name/alias collision — registration is an init-time act and a collision
// is a programming error. Validating the builder (e.g. non-nil) is the
// family's job, since B's zero value is not inspectable here.
func (r *Registry[B]) Register(reg Registration[B]) {
	if reg.Name == "" {
		panic(fmt.Sprintf("%s: Register with empty name", r.pkg))
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, name := range append([]string{reg.Name}, reg.Aliases...) {
		name = strings.ToLower(name)
		if _, dup := r.byName[name]; dup {
			panic(fmt.Sprintf("%s: duplicate registration of %q", r.pkg, name))
		}
		r.byName[name] = reg
	}
	r.canonical = append(r.canonical, strings.ToLower(reg.Name))
	sort.Strings(r.canonical)
}

// Names returns the sorted canonical names of every registered entry.
func (r *Registry[B]) Names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, len(r.canonical))
	copy(out, r.canonical)
	return out
}

// Lookup resolves a name or alias to its Registration.
func (r *Registry[B]) Lookup(name string) (Registration[B], bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	reg, ok := r.byName[strings.ToLower(strings.TrimSpace(name))]
	return reg, ok
}

// Resolve splits a spec into its name and optional query and resolves the
// name. The unknown-name error enumerates the known names, so a typo's
// error message doubles as discovery.
func (r *Registry[B]) Resolve(spec string) (reg Registration[B], query string, err error) {
	name, query, _ := strings.Cut(spec, "?")
	reg, ok := r.Lookup(name)
	if !ok {
		return reg, "", fmt.Errorf("%s: unknown %s %q in spec %q (known %s: %s)",
			r.pkg, r.noun, strings.TrimSpace(name), spec, plural(r.noun), strings.Join(r.Names(), ", "))
	}
	return reg, query, nil
}

// plural renders a family noun's plural for error messages: "lock" →
// "locks", "backend" → "backends", "policy" → "policies".
func plural(noun string) string {
	if strings.HasSuffix(noun, "y") {
		return noun[:len(noun)-1] + "ies"
	}
	return noun + "s"
}

// ParamFunc parses one parameter's value into a family option. The error
// needs no location context — Grammar.Parse wraps it with the spec, key,
// and offending value.
type ParamFunc[O any] func(value string) (O, error)

// Grammar is a family's parameter table: the valid keys and, per key, the
// typed parse into the family's option type.
type Grammar[O any] struct {
	pkg    string
	params map[string]ParamFunc[O]
	valid  string // sorted key enumeration, for error messages
}

// NewGrammar builds a grammar from a parameter table. Error messages are
// prefixed with pkg, matching the family's registry.
func NewGrammar[O any](pkg string, params map[string]ParamFunc[O]) *Grammar[O] {
	keys := make([]string, 0, len(params))
	for k := range params {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return &Grammar[O]{pkg: pkg, params: params, valid: strings.Join(keys, ", ")}
}

// Parse parses a spec's query string ("key=val&key=val") into options.
// spec is the full original spec, quoted in errors so the user sees the
// string they actually wrote. Keys are processed in sorted order, so the
// error reported for a multiply-malformed spec is deterministic. A
// parameter given twice is rejected rather than silently last-wins.
func (g *Grammar[O]) Parse(spec, query string) ([]O, error) {
	if query == "" {
		return nil, nil
	}
	values, err := url.ParseQuery(query)
	if err != nil {
		return nil, fmt.Errorf("%s: spec %q: malformed parameters: %v", g.pkg, spec, err)
	}
	keys := make([]string, 0, len(values))
	for k := range values {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var opts []O
	for _, k := range keys {
		vs := values[k]
		if len(vs) > 1 {
			return nil, fmt.Errorf("%s: spec %q: parameter %q given %d times", g.pkg, spec, k, len(vs))
		}
		parse, ok := g.params[k]
		if !ok {
			return nil, fmt.Errorf("%s: spec %q: unknown parameter %q (valid: %s)",
				g.pkg, spec, k, g.valid)
		}
		opt, err := parse(vs[0])
		if err != nil {
			return nil, fmt.Errorf("%s: spec %q: bad value %q for %q: %v", g.pkg, spec, vs[0], k, err)
		}
		opts = append(opts, opt)
	}
	return opts, nil
}

// Valid returns the sorted comma-separated parameter keys (for docs and
// -list output).
func (g *Grammar[O]) Valid() string { return g.valid }

// Typed value parsers shared by the families' parameter tables, so "bad
// value" errors read the same whichever registry produced them.

// Uint parses a base-10 uint64.
func Uint(v string) (uint64, error) { return strconv.ParseUint(v, 10, 64) }

// NonNegInt parses an int >= 0.
func NonNegInt(v string) (int, error) {
	n, err := strconv.Atoi(v)
	if err != nil || n < 0 {
		return 0, fmt.Errorf("want a non-negative integer")
	}
	return n, nil
}

// PosInt parses an int >= 1.
func PosInt(v string) (int, error) {
	n, err := strconv.Atoi(v)
	if err != nil || n < 1 {
		return 0, fmt.Errorf("want a positive integer")
	}
	return n, nil
}

// Bool parses a strconv-style boolean.
func Bool(v string) (bool, error) { return strconv.ParseBool(v) }

// Dur parses a non-negative time.Duration ("1ms", "2s", "500us").
// Negative durations are rejected: every duration parameter in the
// module's families (fault windows, stall holds) is a length of time,
// and a negative length silently disabling a fault would make a typo'd
// chaos run read as a clean pass.
func Dur(v string) (time.Duration, error) {
	d, err := time.ParseDuration(v)
	if err != nil {
		return 0, fmt.Errorf("want a duration like 1ms or 2s")
	}
	if d < 0 {
		return 0, fmt.Errorf("want a non-negative duration")
	}
	return d, nil
}

// Frac parses a float in [0, 1] (a fraction of traffic, a probability).
// NaN and out-of-range values are rejected with the same error, so a
// family's "bad value" message stays self-explanatory.
func Frac(v string) (float64, error) {
	f, err := strconv.ParseFloat(v, 64)
	if err != nil || math.IsNaN(f) || f < 0 || f > 1 {
		return 0, fmt.Errorf("want a fraction in [0, 1]")
	}
	return f, nil
}
