package spec

import (
	"strings"
	"testing"
)

// The families instantiate the machinery with func-typed builders and
// options; a plain string builder and int option keep these tests about
// the machinery itself.
func newTestRegistry() *Registry[string] {
	r := NewRegistry[string]("fam", "widget")
	r.Register(Registration[string]{Name: "beta", Aliases: []string{"b"}, Summary: "second", Build: "B"})
	r.Register(Registration[string]{Name: "alpha", Summary: "first", Build: "A"})
	return r
}

func TestRegistryNamesSortedCanonical(t *testing.T) {
	r := newTestRegistry()
	got := r.Names()
	if len(got) != 2 || got[0] != "alpha" || got[1] != "beta" {
		t.Fatalf("Names() = %v, want [alpha beta] (sorted, aliases excluded)", got)
	}
}

func TestRegistryLookup(t *testing.T) {
	r := newTestRegistry()
	for in, want := range map[string]string{
		"alpha": "A", "beta": "B", "b": "B", "BETA": "B", " alpha ": "A",
	} {
		reg, ok := r.Lookup(in)
		if !ok || reg.Build != want {
			t.Fatalf("Lookup(%q) = %+v,%v want Build=%q", in, reg, ok, want)
		}
	}
	if _, ok := r.Lookup("gamma"); ok {
		t.Fatal("Lookup of an unregistered name succeeded")
	}
}

func TestRegistryResolve(t *testing.T) {
	r := newTestRegistry()
	reg, query, err := r.Resolve("beta?k=1&j=2")
	if err != nil || reg.Name != "beta" || query != "k=1&j=2" {
		t.Fatalf("Resolve = %+v,%q,%v", reg, query, err)
	}
	if _, _, err := r.Resolve("alpha"); err != nil {
		t.Fatalf("Resolve without query: %v", err)
	}
	_, _, err = r.Resolve("gamma?k=1")
	if err == nil {
		t.Fatal("Resolve of an unknown name succeeded")
	}
	// The error names the family's package and noun and enumerates the
	// known names — the message doubles as discovery.
	for _, sub := range []string{"fam: unknown widget", `"gamma"`, "known widgets: alpha, beta"} {
		if !strings.Contains(err.Error(), sub) {
			t.Errorf("Resolve error %q does not mention %q", err, sub)
		}
	}
}

func TestRegistryCollisionPanics(t *testing.T) {
	r := newTestRegistry()
	for _, name := range []string{"alpha", "ALPHA", "b"} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Register(%q) did not panic on collision", name)
				}
			}()
			r.Register(Registration[string]{Name: name, Build: "X"})
		}()
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("Register with empty name did not panic")
			}
		}()
		r.Register(Registration[string]{Build: "X"})
	}()
}

func newTestGrammar() *Grammar[int] {
	return NewGrammar[int]("fam", map[string]ParamFunc[int]{
		"n": func(v string) (int, error) { return NonNegInt(v) },
		"p": func(v string) (int, error) { return PosInt(v) },
	})
}

func TestGrammarParse(t *testing.T) {
	g := newTestGrammar()
	opts, err := g.Parse("alpha?n=3&p=1", "n=3&p=1")
	if err != nil || len(opts) != 2 {
		t.Fatalf("Parse = %v,%v", opts, err)
	}
	// Keys are processed in sorted order, so option order is n then p.
	if opts[0] != 3 || opts[1] != 1 {
		t.Fatalf("Parse options = %v want [3 1]", opts)
	}
	if opts, err := g.Parse("alpha", ""); err != nil || opts != nil {
		t.Fatalf("Parse of empty query = %v,%v", opts, err)
	}
	if g.Valid() != "n, p" {
		t.Fatalf("Valid() = %q", g.Valid())
	}
}

func TestGrammarErrors(t *testing.T) {
	g := newTestGrammar()
	for query, wantSub := range map[string]string{
		"z=1":     `unknown parameter "z" (valid: n, p)`,
		"n=x":     `bad value "x" for "n": want a non-negative integer`,
		"n=-1":    "bad value",
		"p=0":     "want a positive integer",
		"n=1&n=2": `parameter "n" given 2 times`,
		"n=%zz":   "malformed parameters",
	} {
		_, err := g.Parse("alpha?"+query, query)
		if err == nil {
			t.Errorf("Parse(%q) accepted a malformed query", query)
			continue
		}
		if !strings.Contains(err.Error(), wantSub) {
			t.Errorf("Parse(%q) error %q does not mention %q", query, err, wantSub)
		}
		// Every error quotes the full original spec.
		if !strings.Contains(err.Error(), `"alpha?`+query+`"`) {
			t.Errorf("Parse(%q) error %q does not quote the spec", query, err)
		}
	}
	// With two bad keys the reported one is deterministic (sorted order).
	_, err := g.Parse("alpha?z=1&a=1", "z=1&a=1")
	if err == nil || !strings.Contains(err.Error(), `unknown parameter "a"`) {
		t.Errorf("multi-error selection not deterministic: %v", err)
	}
}

func TestValueParsers(t *testing.T) {
	if n, err := Uint("42"); err != nil || n != 42 {
		t.Fatalf("Uint = %d,%v", n, err)
	}
	if _, err := Uint("-1"); err == nil {
		t.Fatal("Uint accepted a negative")
	}
	if b, err := Bool("true"); err != nil || !b {
		t.Fatalf("Bool = %v,%v", b, err)
	}
	if _, err := Bool("perhaps"); err == nil {
		t.Fatal("Bool accepted garbage")
	}
	if n, err := NonNegInt("0"); err != nil || n != 0 {
		t.Fatalf("NonNegInt(0) = %d,%v", n, err)
	}
	if n, err := PosInt("1"); err != nil || n != 1 {
		t.Fatalf("PosInt(1) = %d,%v", n, err)
	}
}

func TestFrac(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want float64
	}{
		{"0", 0}, {"1", 1}, {"0.5", 0.5}, {"0.25", 0.25},
	} {
		got, err := Frac(tc.in)
		if err != nil || got != tc.want {
			t.Fatalf("Frac(%q) = %v, %v want %v", tc.in, got, err, tc.want)
		}
	}
	for _, bad := range []string{"", "x", "-0.1", "1.5", "NaN", "+Inf", "-Inf"} {
		if _, err := Frac(bad); err == nil {
			t.Fatalf("Frac(%q) accepted", bad)
		}
	}
}

func TestPlural(t *testing.T) {
	for _, tc := range []struct{ in, want string }{
		{"lock", "locks"}, {"backend", "backends"}, {"policy", "policies"},
	} {
		if got := plural(tc.in); got != tc.want {
			t.Fatalf("plural(%q) = %q want %q", tc.in, got, tc.want)
		}
	}
}
