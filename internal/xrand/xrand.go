// Package xrand implements the thread-local Marsaglia xor-shift
// pseudo-random number generators the paper uses for Bernoulli fairness
// trials (§4) and for workload address streams (§6).
//
// The generators are deliberately tiny, allocation-free and not safe for
// concurrent use: each simulated or real thread owns one instance, exactly
// as in the paper ("We use a thread-local Marsaglia xor-shift pseudo-random
// number generator to implement Bernoulli trials").
package xrand

// State is a 64-bit xor-shift generator (Marsaglia 2003, "Xorshift RNGs",
// triple 13/7/17).
type State struct {
	x uint64
}

// New returns a generator seeded from seed. A zero seed is remapped to a
// fixed odd constant because the all-zero state is a fixed point of
// xor-shift.
func New(seed uint64) *State {
	s := &State{}
	s.Seed(seed)
	return s
}

// Seed resets the generator state. Zero is remapped to a nonzero constant.
func (s *State) Seed(seed uint64) {
	// Scramble with splitmix64 so that small consecutive seeds (thread
	// ids) give decorrelated streams.
	z := seed + 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	if z == 0 {
		z = 0x2545f4914f6cdd1d
	}
	s.x = z
}

// Next returns the next 64-bit value.
func (s *State) Next() uint64 {
	x := s.x
	x ^= x << 13
	x ^= x >> 7
	x ^= x << 17
	s.x = x
	return x
}

// Uint32 returns the next 32-bit value.
func (s *State) Uint32() uint32 { return uint32(s.Next() >> 32) }

// Uint64n returns a value uniform in [0, n). n must be > 0.
func (s *State) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("xrand: Uint64n with n == 0")
	}
	// Multiply-shift reduction; bias is negligible for the modest n used
	// by the workloads and irrelevant to the lock algorithms, which only
	// need "about 1-in-k" Bernoulli trials.
	hi, _ := mul64(s.Next(), n)
	return hi
}

// Intn returns a value uniform in [0, n). n must be > 0.
func (s *State) Intn(n int) int {
	if n <= 0 {
		panic("xrand: Intn with n <= 0")
	}
	return int(s.Uint64n(uint64(n)))
}

// Bernoulli reports true with probability 1/k. k <= 1 always reports true;
// k == 0 reports false (probability zero, "never").
//
// The paper cedes ownership to the tail of the passive set "on average once
// every 1000 unlock operations"; that is Bernoulli(1000).
func (s *State) Bernoulli(k uint64) bool {
	if k == 0 {
		return false
	}
	if k == 1 {
		return true
	}
	return s.Uint64n(k) == 0
}

// Prob reports true with probability p (clamped to [0,1]).
func (s *State) Prob(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	const den = 1 << 32
	return s.Uint64n(den) < uint64(p*den)
}

// Float64 returns a value uniform in [0, 1).
func (s *State) Float64() float64 {
	return float64(s.Next()>>11) / (1 << 53)
}

// mul64 returns the 128-bit product of a and b as (hi, lo). Implemented
// locally so the package stays dependency-free (math/bits would also work;
// this mirrors it exactly).
func mul64(a, b uint64) (hi, lo uint64) {
	const mask32 = 1<<32 - 1
	a0, a1 := a&mask32, a>>32
	b0, b1 := b&mask32, b>>32
	t := a1*b0 + (a0*b0)>>32
	w1 := t & mask32
	w2 := t >> 32
	w1 += a0 * b1
	hi = a1*b1 + w2 + (w1 >> 32)
	lo = a * b
	return hi, lo
}
