package xrand

import (
	"math"
	"testing"
	"testing/quick"
)

func TestZeroSeedIsNotFixedPoint(t *testing.T) {
	s := New(0)
	a, b := s.Next(), s.Next()
	if a == 0 || b == 0 {
		t.Fatalf("zero state leaked: %d %d", a, b)
	}
	if a == b {
		t.Fatalf("generator stuck at %d", a)
	}
}

func TestDistinctSeedsDecorrelate(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 1000; i++ {
		if a.Next() == b.Next() {
			same++
		}
	}
	if same != 0 {
		t.Fatalf("adjacent seeds produced %d identical draws", same)
	}
}

func TestSeedIsDeterministic(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 100; i++ {
		if x, y := a.Next(), b.Next(); x != y {
			t.Fatalf("draw %d diverged: %d vs %d", i, x, y)
		}
	}
}

func TestUint64nRange(t *testing.T) {
	f := func(seed uint64, n uint64) bool {
		if n == 0 {
			n = 1
		}
		s := New(seed)
		for i := 0; i < 50; i++ {
			if s.Uint64n(n) >= n {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestIntnRange(t *testing.T) {
	s := New(7)
	for i := 0; i < 1000; i++ {
		if v := s.Intn(13); v < 0 || v >= 13 {
			t.Fatalf("Intn(13) = %d", v)
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestBernoulliEdgeCases(t *testing.T) {
	s := New(9)
	for i := 0; i < 100; i++ {
		if !s.Bernoulli(1) {
			t.Fatal("Bernoulli(1) must always hold")
		}
		if s.Bernoulli(0) {
			t.Fatal("Bernoulli(0) must never hold")
		}
	}
}

func TestBernoulliRate(t *testing.T) {
	// 1-in-1000 trials over 1e6 draws should land near 1000 successes.
	// This is the paper's fairness-graft probability, so its calibration
	// matters: a badly biased generator would distort the
	// fairness/throughput trade-off.
	s := New(123)
	const draws = 1_000_000
	hits := 0
	for i := 0; i < draws; i++ {
		if s.Bernoulli(1000) {
			hits++
		}
	}
	want := float64(draws) / 1000
	if math.Abs(float64(hits)-want) > 5*math.Sqrt(want) {
		t.Fatalf("Bernoulli(1000): %d hits over %d draws, want ~%.0f", hits, draws, want)
	}
}

func TestProbEdges(t *testing.T) {
	s := New(5)
	if s.Prob(0) || s.Prob(-1) {
		t.Fatal("Prob(<=0) must be false")
	}
	if !s.Prob(1) || !s.Prob(2) {
		t.Fatal("Prob(>=1) must be true")
	}
}

func TestProbRate(t *testing.T) {
	s := New(17)
	const draws = 200_000
	hits := 0
	for i := 0; i < draws; i++ {
		if s.Prob(0.9) {
			hits++
		}
	}
	got := float64(hits) / draws
	if math.Abs(got-0.9) > 0.01 {
		t.Fatalf("Prob(0.9) observed rate %.4f", got)
	}
}

func TestFloat64Range(t *testing.T) {
	f := func(seed uint64) bool {
		s := New(seed)
		for i := 0; i < 100; i++ {
			v := s.Float64()
			if v < 0 || v >= 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestUniformityChiSquare(t *testing.T) {
	// Coarse 16-bucket chi-square over Intn; guards against a transposed
	// shift constant silently skewing workload address streams.
	s := New(99)
	const buckets, draws = 16, 160_000
	var count [buckets]int
	for i := 0; i < draws; i++ {
		count[s.Intn(buckets)]++
	}
	expected := float64(draws) / buckets
	chi2 := 0.0
	for _, c := range count {
		d := float64(c) - expected
		chi2 += d * d / expected
	}
	// 15 degrees of freedom; 0.999 quantile ≈ 37.7.
	if chi2 > 37.7 {
		t.Fatalf("chi-square %.1f too large; counts %v", chi2, count)
	}
}

func TestMul64MatchesBig(t *testing.T) {
	f := func(a, b uint64) bool {
		hi, lo := mul64(a, b)
		// Verify against the schoolbook 32-bit decomposition computed a
		// second, independent way.
		a0, a1 := a&0xffffffff, a>>32
		b0, b1 := b&0xffffffff, b>>32
		lo2 := a * b
		mid := a1*b0 + ((a0 * b0) >> 32)
		carry := mid >> 32
		mid = mid&0xffffffff + a0*b1
		hi2 := a1*b1 + carry + mid>>32
		return hi == hi2 && lo == lo2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkNext(b *testing.B) {
	s := New(1)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink ^= s.Next()
	}
	_ = sink
}

func BenchmarkBernoulli1000(b *testing.B) {
	s := New(1)
	n := 0
	for i := 0; i < b.N; i++ {
		if s.Bernoulli(1000) {
			n++
		}
	}
	_ = n
}
