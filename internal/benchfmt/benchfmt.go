// Package benchfmt is the BENCH_shard.json cell schema, shared by
// cmd/shardbench (in-process cells) and cmd/shardload (remote cells
// over the wire). The schema used to live as untyped literals inside
// shardbench's main package; it is a contract — CI's python validators
// and every cross-PR comparison parse it — so it lives here once, and
// both emitters stay one comparable series.
//
// The zero-value rule throughout: rates are 0 (never NaN — encoding/json
// rejects NaN), omitempty fields vanish when a cell did not exercise
// that dimension, and RecoveryMillis is -1 for "never recovered".
package benchfmt

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"sort"
)

// Result is one benchmark cell: a (dist, lock, backend, policy,
// stripes, threads) point with its throughput, latency, deadline, and
// fairness columns.
type Result struct {
	Dist     string  `json:"dist"`
	Lock     string  `json:"lock"`
	Backend  string  `json:"backend"`
	Policy   string  `json:"policy,omitempty"`
	Stripes  int     `json:"stripes"`
	Threads  int     `json:"threads"`
	Duration float64 `json:"duration_sec"`

	// ReadPath is the Get path the cell ran ("locked" or
	// "optimistic[?retries=N]"); omitted by emitters that predate the
	// dimension, which is the same as "locked".
	ReadPath string `json:"read_path,omitempty"`

	Ops       int     `json:"ops"`
	OpsPerSec float64 `json:"ops_per_sec"`
	Scans     int     `json:"scans,omitempty"`

	// ScansRejected counts scan requests refused with ErrUnordered —
	// possible only under a policy, where a stripe's backend can be (or
	// become) unordered mid-cell; the rejected demand is exactly what
	// the scanaware policy feeds on.
	ScansRejected int `json:"scans_rejected,omitempty"`

	// Swaps is the live reconfigurations applied by the adaptation
	// controller during the cell (0 without a policy, and for policies
	// that saw no reason).
	Swaps int `json:"swaps"`

	// Latency percentiles over completed requests, in microseconds,
	// measured from (scheduled) arrival to completion.
	P50Micros float64 `json:"p50_us"`
	P99Micros float64 `json:"p99_us"`

	// Deadline traffic: requests that carried one, how many missed (the
	// stripe was not reached in time), and the miss rate. MissRate is 0
	// when no request carried a deadline.
	DeadlineAttempts int     `json:"deadline_attempts,omitempty"`
	DeadlineMisses   int     `json:"deadline_misses,omitempty"`
	MissRate         float64 `json:"miss_rate,omitempty"`

	// Per-stripe fairness, aggregated: the mean/max of each stripe's
	// AvgLWSS and Gini over its admission history. Max is the collapse
	// detector — a single collapsed stripe vanishes from a mean.
	MeanLWSS float64 `json:"mean_lwss"`
	MaxLWSS  float64 `json:"max_lwss"`
	MeanGini float64 `json:"mean_gini"`
	MaxGini  float64 `json:"max_gini"`

	// Optimistic read-path outcomes for the cell's interval (zero, and
	// omitted, on the locked path): hits are Gets served without a
	// stripe-lock acquire, fallbacks the ones whose retry budget ran
	// out. HitRate is hits/(hits+fallbacks), FallbackRate the
	// complement; both 0 (never NaN) when the path saw no traffic.
	// shardbench reads them from a snapshot delta, shardload from INFO
	// counter deltas — one comparable series either way.
	OptimisticHits         int     `json:"optimistic_hits,omitempty"`
	OptimisticRetries      int     `json:"optimistic_retries,omitempty"`
	OptimisticFallbacks    int     `json:"optimistic_fallbacks,omitempty"`
	OptimisticHitRate      float64 `json:"optimistic_hit_rate,omitempty"`
	OptimisticFallbackRate float64 `json:"optimistic_fallback_rate,omitempty"`

	// Stats is the rolled-up CR event counters across all stripe locks.
	Stats map[string]uint64 `json:"stats,omitempty"`

	// Chaos carries the scripted-fault phases when the cell ran under a
	// fault; nil otherwise.
	Chaos *ChaosResult `json:"chaos,omitempty"`
}

// ChaosResult is one cell's scripted-fault accounting: the deadline
// traffic split at the Arm/Disarm boundaries, time-to-recovery measured
// from fault onset, and the injected-fault evidence (a chaos run whose
// faults never fired proves nothing).
type ChaosResult struct {
	Fault string `json:"fault"`

	// Deadline traffic per phase: before Arm, between Arm and Disarm,
	// and after Disarm. Rates are 0 when the phase saw no deadline
	// traffic (never NaN).
	PreAttempts   int     `json:"pre_attempts"`
	PreMisses     int     `json:"pre_misses"`
	PreMissRate   float64 `json:"pre_miss_rate"`
	FaultAttempts int     `json:"fault_attempts"`
	FaultMisses   int     `json:"fault_misses"`
	FaultMissRate float64 `json:"fault_miss_rate"`
	PostAttempts  int     `json:"post_attempts"`
	PostMisses    int     `json:"post_misses"`
	PostMissRate  float64 `json:"post_miss_rate"`

	// RecoveryMillis is the time from fault onset (Arm) until the
	// trailing per-sample miss rate first held at or below the target
	// for three consecutive samples; -1 if the cell never recovered. A
	// frozen (static) cell can only recover after Disarm; an adaptive
	// one can recover mid-fault — this column is the difference, in ms.
	RecoveryMillis float64 `json:"recovery_ms"`

	// What the fault set actually injected during the cell.
	Stalls      uint64  `json:"stalls,omitempty"`
	StallMillis float64 `json:"stall_ms,omitempty"`
	Reroutes    uint64  `json:"reroutes,omitempty"`
	SurgePeak   int     `json:"surge_peak,omitempty"`
}

// Record is the top-level JSON document: the workload parameters shared
// by every cell in the run, plus the cells.
type Record struct {
	GOMAXPROCS int     `json:"gomaxprocs"`
	NumCPU     int     `json:"num_cpu"`
	GoVersion  string  `json:"go_version"`
	Keys       int     `json:"keys"`
	ReadFrac   float64 `json:"read_frac"`
	ScanFrac   float64 `json:"scan_frac,omitempty"`
	ScanSpan   int     `json:"scan_span,omitempty"`
	ZipfS      float64 `json:"zipf_s"`
	Rate       float64 `json:"rate,omitempty"`
	CancelFrac float64 `json:"cancel_frac,omitempty"`
	Deadline   string  `json:"deadline,omitempty"`
	Adapt      string  `json:"adapt_interval,omitempty"`

	// Chaos timeline parameters, present when a fault is configured.
	Fault       string  `json:"fault,omitempty"`
	FaultAfter  string  `json:"fault_after,omitempty"`
	FaultFor    string  `json:"fault_for,omitempty"`
	FaultSample string  `json:"fault_sample,omitempty"`
	FaultTarget float64 `json:"fault_target,omitempty"`

	// Remote describes the serving side when the cells were driven over
	// the wire (cmd/shardload); nil for in-process cells.
	Remote *Remote `json:"remote,omitempty"`

	Results []Result `json:"results"`
}

// Remote describes the server side of a wire-driven run: where the
// requests went and how the server was handling connections — the
// dimensions an in-process cell does not have.
type Remote struct {
	Addr      string `json:"addr"`
	ConnModel string `json:"conn_model,omitempty"`
	Conns     int    `json:"conns"`
	// Churn is the connection churn cadence ("0s" = stable connections).
	Churn string `json:"churn,omitempty"`
}

// WriteJSON writes rec to path. In append mode an existing document is
// promoted to an array ([old, new]) or extended if it already is one —
// the mechanism that lets one BENCH file accumulate a comparable series
// across runs and PRs.
func WriteJSON(path string, rec Record, appendMode bool) error {
	buf, err := json.MarshalIndent(rec, "", "  ")
	if err != nil {
		return fmt.Errorf("marshal: %w", err)
	}
	if appendMode {
		if old, err := os.ReadFile(path); err == nil && len(bytes.TrimSpace(old)) > 0 {
			prior := bytes.TrimSpace(old)
			var arr []json.RawMessage
			if prior[0] == '[' {
				if err := json.Unmarshal(prior, &arr); err != nil {
					return fmt.Errorf("-append: existing %s is not valid JSON: %w", path, err)
				}
			} else {
				arr = []json.RawMessage{prior}
			}
			arr = append(arr, buf)
			if buf, err = json.MarshalIndent(arr, "", "  "); err != nil {
				return fmt.Errorf("marshal: %w", err)
			}
		}
	}
	return os.WriteFile(path, append(buf, '\n'), 0o644)
}

// PercentileMicros returns the q-quantile of ns (nanosecond samples) in
// microseconds, using the nearest-rank estimate both emitters have
// always used. It sorts ns in place.
func PercentileMicros(ns []int64, q float64) float64 {
	if len(ns) == 0 {
		return 0
	}
	sort.Slice(ns, func(i, j int) bool { return ns[i] < ns[j] })
	idx := int(q*float64(len(ns)-1) + 0.5)
	return float64(ns[idx]) / 1e3
}

// Rate returns misses/attempts, 0 when attempts is 0 — the everywhere
// rule that keeps NaN out of the JSON.
func Rate(misses, attempts int) float64 {
	if attempts == 0 {
		return 0
	}
	return float64(misses) / float64(attempts)
}
