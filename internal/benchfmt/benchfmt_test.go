package benchfmt

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

// TestWriteJSONAppendPromotion pins the accumulation contract: a fresh
// write is a single document, the first append promotes it to a
// two-element array, later appends extend the array, and a corrupt
// existing file fails loudly instead of being overwritten.
func TestWriteJSONAppendPromotion(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bench.json")
	rec := func(keys int) Record {
		return Record{Keys: keys, Results: []Result{{Dist: "zipf", Ops: keys}}}
	}

	if err := WriteJSON(path, rec(1), false); err != nil {
		t.Fatal(err)
	}
	var single Record
	mustParse(t, path, &single)
	if single.Keys != 1 {
		t.Fatalf("single doc keys = %d", single.Keys)
	}

	if err := WriteJSON(path, rec(2), true); err != nil {
		t.Fatal(err)
	}
	var arr []Record
	mustParse(t, path, &arr)
	if len(arr) != 2 || arr[0].Keys != 1 || arr[1].Keys != 2 {
		t.Fatalf("promotion: %+v", arr)
	}

	if err := WriteJSON(path, rec(3), true); err != nil {
		t.Fatal(err)
	}
	mustParse(t, path, &arr)
	if len(arr) != 3 || arr[2].Keys != 3 {
		t.Fatalf("extension: %+v", arr)
	}

	// Append to an empty file degrades to a plain write.
	empty := filepath.Join(t.TempDir(), "empty.json")
	if err := os.WriteFile(empty, []byte("  \n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := WriteJSON(empty, rec(9), true); err != nil {
		t.Fatal(err)
	}
	mustParse(t, empty, &single)
	if single.Keys != 9 {
		t.Fatalf("empty-file append: %+v", single)
	}

	// Corrupt existing content must error, not be clobbered.
	bad := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(bad, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := WriteJSON(bad, rec(1), true); err == nil {
		t.Fatal("append over corrupt JSON did not error")
	}
}

// TestSchemaTags pins the wire-visible JSON keys both emitters share.
func TestSchemaTags(t *testing.T) {
	r := Result{Dist: "zipf", Lock: "tas", Backend: "hashmap", Stripes: 4, Threads: 2,
		DeadlineAttempts: 10, DeadlineMisses: 2, MissRate: 0.2,
		Chaos: &ChaosResult{Fault: "stall", RecoveryMillis: -1}}
	buf, err := json.Marshal(Record{Results: []Result{r}, Remote: &Remote{Addr: "x", Conns: 2}})
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{
		`"results"`, `"dist"`, `"lock"`, `"backend"`, `"stripes"`, `"threads"`,
		`"duration_sec"`, `"ops"`, `"ops_per_sec"`, `"p50_us"`, `"p99_us"`,
		`"deadline_attempts"`, `"deadline_misses"`, `"miss_rate"`,
		`"mean_lwss"`, `"max_lwss"`, `"mean_gini"`, `"max_gini"`,
		`"chaos"`, `"fault"`, `"recovery_ms"`, `"remote"`, `"addr"`, `"conns"`,
	} {
		if !bytes.Contains(buf, []byte(key)) {
			t.Fatalf("marshalled record missing %s:\n%s", key, buf)
		}
	}
}

func TestPercentileAndRate(t *testing.T) {
	if got := PercentileMicros(nil, 0.99); got != 0 {
		t.Fatalf("empty percentile = %g", got)
	}
	ns := []int64{1000, 2000, 3000, 4000, 5000}
	if got := PercentileMicros(ns, 0.5); got != 3 {
		t.Fatalf("p50 = %g, want 3", got)
	}
	if got := Rate(0, 0); got != 0 {
		t.Fatalf("0/0 rate = %g", got)
	}
	if got := Rate(1, 4); got != 0.25 {
		t.Fatalf("rate = %g", got)
	}
}

func mustParse(t *testing.T, path string, into any) {
	t.Helper()
	buf, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(buf, into); err != nil {
		t.Fatalf("%s: %v\n%s", path, err, buf)
	}
}
