package analysis

import (
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"log"
	"os"
	"path/filepath"
	"strings"
)

// This file implements the driver protocol spoken by `go vet -vettool=`
// (the same contract x/tools' unitchecker fulfils):
//
//	tool -V=full      print an identity line for build caching
//	tool -flags       print the tool's flags as JSON
//	tool [flags] x.cfg  analyze the single compilation unit described
//	                    by the JSON config file, exit 1 on findings
//
// plus, as a convenience when the last argument is not a .cfg file, the
// standalone whole-module mode in standalone.go.

// vetConfig mirrors the JSON written by cmd/go for each vet action.
// Field names are the protocol; do not rename.
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ModulePath                string
	ModuleVersion             string
	ImportMap                 map[string]string // import path → canonical package path
	PackageFile               map[string]string // package path → export data file
	Standard                  map[string]bool
	PackageVetx               map[string]string // package path → fact file from a prior unit
	VetxOnly                  bool              // only facts are wanted (dependency run)
	VetxOutput                string            // where to write this unit's facts
	SucceedOnTypecheckFailure bool
}

var jsonOut = flag.Bool("json", false, "emit findings as JSON (per the vet driver protocol)")

// Main is the entry point shared by cmd/lockcheck: it dispatches between
// the three protocol verbs and the standalone package-pattern mode.
func Main(analyzers ...*Analyzer) {
	progname := filepath.Base(os.Args[0])
	log.SetFlags(0)
	log.SetPrefix(progname + ": ")

	printflags := flag.Bool("flags", false, "print analyzer flags in JSON (vet driver protocol)")
	flag.Var(versionFlag{}, "V", "print version and exit (vet driver protocol; only -V=full is supported)")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, `%[1]s checks this module's concurrency invariants.

Usage:
	%[1]s [packages]      analyze packages (default ./...)
	%[1]s help            list analyzers
	go vet -vettool=$(command -v %[1]s) ./...   run under the go build system

Analyzers:
`, progname)
		for _, a := range analyzers {
			fmt.Fprintf(os.Stderr, "\t%-10s %s\n", a.Name, firstLine(a.Doc))
		}
		os.Exit(2)
	}
	flag.Parse()

	if *printflags {
		// Tell cmd/go which flags this tool accepts.
		type jsonFlag struct {
			Name  string
			Bool  bool
			Usage string
		}
		out, _ := json.Marshal([]jsonFlag{
			{Name: "json", Bool: true, Usage: "emit JSON output"},
		})
		fmt.Println(string(out))
		os.Exit(0)
	}

	args := flag.Args()
	if len(args) == 1 && args[0] == "help" {
		fmt.Printf("%s: static verification of this module's concurrency invariants\n\n", progname)
		for _, a := range analyzers {
			fmt.Printf("# %s\n\n%s\n\n", a.Name, strings.TrimSpace(a.Doc))
		}
		os.Exit(0)
	}
	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		runVetUnit(args[0], analyzers)
		return
	}
	runStandalone(args, analyzers)
}

// versionFlag implements the -V=full identity handshake cmd/go uses to
// fingerprint the tool for its build cache: the line must read
// "<path> version devel ... buildID=<contenthash>".
type versionFlag struct{}

func (versionFlag) IsBoolFlag() bool { return true }
func (versionFlag) String() string   { return "" }
func (versionFlag) Set(s string) error {
	if s != "full" {
		log.Fatalf("unsupported flag value: -V=%s (use -V=full)", s)
	}
	prog, err := os.Executable()
	if err != nil {
		log.Fatal(err)
	}
	f, err := os.Open(prog)
	if err != nil {
		log.Fatal(err)
	}
	h := sha256.New()
	if _, err := io.Copy(h, f); err != nil {
		log.Fatal(err)
	}
	f.Close()
	fmt.Printf("%s version devel comments-go-here buildID=%02x\n", prog, string(h.Sum(nil)))
	os.Exit(0)
	return nil
}

// runVetUnit analyzes the single unit described by a cmd/go vet config.
func runVetUnit(configFile string, analyzers []*Analyzer) {
	data, err := os.ReadFile(configFile)
	if err != nil {
		log.Fatal(err)
	}
	cfg := new(vetConfig)
	if err := json.Unmarshal(data, cfg); err != nil {
		log.Fatalf("cannot decode JSON config file %s: %v", configFile, err)
	}
	if len(cfg.GoFiles) == 0 {
		log.Fatalf("package has no files: %s", cfg.ImportPath)
	}

	fset := token.NewFileSet()
	parsed, err := parseFiles(fset, cfg.GoFiles)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			os.Exit(0) // the compiler will report it
		}
		log.Fatal(err)
	}

	compiler := cfg.Compiler
	if compiler == "" {
		compiler = "gc"
	}
	imp := newExportImporter(fset, compiler, cfg.ImportMap, cfg.PackageFile)

	factsIn := make(Facts)
	for _, vetx := range cfg.PackageVetx {
		f, err := readFactsFile(vetx)
		if err != nil {
			log.Fatalf("reading facts: %v", err)
		}
		factsIn.Merge(f)
	}

	res, err := CheckUnit(Unit{
		Fset:                fset,
		Files:               parsed,
		Path:                cfg.ImportPath,
		Importer:            imp,
		Sizes:               types.SizesFor(compiler, build.Default.GOARCH),
		GoVersion:           cfg.GoVersion,
		FactsIn:             factsIn,
		ReportUnusedIgnores: true,
	}, analyzers)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			os.Exit(0)
		}
		log.Fatal(err)
	}

	if cfg.VetxOutput != "" {
		if err := writeFactsFile(cfg.VetxOutput, res.FactsOut); err != nil {
			log.Fatalf("failed to export analysis facts: %v", err)
		}
	}

	if cfg.VetxOnly {
		os.Exit(0)
	}
	exitCode := 0
	if *jsonOut {
		printJSONDiagnostics(os.Stdout, fset, cfg.ID, res.Diagnostics)
	} else {
		for _, d := range res.Diagnostics {
			fmt.Fprintf(os.Stderr, "%s: %s\n", fset.Position(d.Pos), d.Message)
			exitCode = 1
		}
	}
	os.Exit(exitCode)
}

// printJSONDiagnostics emits the {pkgID: {analyzer: [{posn, message}]}}
// tree `go vet -json` consumers expect.
func printJSONDiagnostics(w io.Writer, fset *token.FileSet, id string, diags []UnitDiagnostic) {
	type jsonDiag struct {
		Posn    string `json:"posn"`
		Message string `json:"message"`
	}
	byAnalyzer := make(map[string][]jsonDiag)
	for _, d := range diags {
		byAnalyzer[d.Analyzer] = append(byAnalyzer[d.Analyzer], jsonDiag{
			Posn:    fset.Position(d.Pos).String(),
			Message: d.Message,
		})
	}
	tree := map[string]map[string][]jsonDiag{id: byAnalyzer}
	out, _ := json.MarshalIndent(tree, "", "\t")
	fmt.Fprintf(w, "%s\n", out)
}

// parseFiles parses the unit's Go files with comments (the directives
// live there).
func parseFiles(fset *token.FileSet, names []string) ([]*ast.File, error) {
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	return files, nil
}

// newExportImporter builds the standard two-step vet importer: resolve
// the source import path through ImportMap (vendoring, test variants),
// then read the compiler's export data for the canonical path. The
// underlying gc importer caches packages in fset-scoped state.
func newExportImporter(fset *token.FileSet, compiler string, importMap, packageFile map[string]string) types.Importer {
	compilerImporter := importer.ForCompiler(fset, compiler, func(path string) (io.ReadCloser, error) {
		file, ok := packageFile[path]
		if !ok {
			return nil, fmt.Errorf("no package file for %q", path)
		}
		return os.Open(file)
	})
	return importerFunc(func(importPath string) (*types.Package, error) {
		path, ok := importMap[importPath]
		if !ok {
			path = importPath // identity outside the map
		}
		if path == "unsafe" {
			return types.Unsafe, nil
		}
		return compilerImporter.Import(path)
	})
}

type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }

// Fact files are JSON — tiny, deterministic (encoding/json sorts map
// keys), and content-cacheable by cmd/go.

func readFactsFile(path string) (Facts, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	if len(data) == 0 {
		return Facts{}, nil
	}
	var f Facts
	if err := json.Unmarshal(data, &f); err != nil {
		return nil, fmt.Errorf("%s: %v", path, err)
	}
	return f, nil
}

func writeFactsFile(path string, f Facts) error {
	data, err := json.Marshal(f)
	if err != nil {
		return err
	}
	return os.WriteFile(path, data, 0o666)
}

func firstLine(s string) string {
	s = strings.TrimSpace(s)
	if i := strings.IndexByte(s, '\n'); i >= 0 {
		s = s[:i]
	}
	return s
}
