// Package sup is the suppression and directive-hygiene fixture, run
// with the full analyzer suite (unused-ignore reporting on, as the
// drivers run it).
package sup

import "sync/atomic"

var word uint64

func bump() {
	atomic.AddUint64(&word, 1)
}

// justified: a trailing directive with a reason silences the finding on
// its own line.
func read() uint64 {
	return word //lockcheck:ignore fixture demonstrates a justified suppression
}

// standalone: a directive alone on a line suppresses the line below.
func standalone() uint64 {
	//lockcheck:ignore fixture demonstrates the standalone-line form
	return word
}

// a reasonless directive suppresses — and is itself a finding.
func reasonless() {
	word = 0 //lockcheck:ignore
	// want `//lockcheck:ignore requires a reason`
}

// a directive with nothing to suppress is stale and must go.
func stale() uint64 {
	//lockcheck:ignore stale: the plain read this once excused is gone
	// want `unused //lockcheck:ignore directive`
	return atomic.LoadUint64(&word)
}

// an unsuppressed violation still fires with the suite running.
func unsuppressed() uint64 {
	return word // want `plain read of atomically accessed package variable word`
}
