// Package analysis is a self-contained, stdlib-only implementation of
// the golang.org/x/tools/go/analysis model, sized to this module's
// needs. It exists because the repo's concurrency invariants — which
// struct fields are atomic, which spec strings parse, which structs are
// cache-line padded, what a critical section may call — are stateable
// but were enforced only by -race luck and reviewer memory. The six
// analyzers under internal/analysis/... encode them; cmd/lockcheck is
// the multichecker binary that runs them, either standalone
// ("lockcheck ./...") or as a `go vet -vettool=` backend (unit.go
// implements the vet driver protocol exactly as cmd/go speaks it).
//
// The API deliberately mirrors x/tools: an Analyzer has a Name, a Doc,
// and a Run(*Pass); a Pass carries the type-checked package and a
// Report callback. If the real dependency ever lands in the build
// image, the analyzers port by swapping the import path. Only the fact
// mechanism is simplified: facts are flat string key/value pairs scoped
// per analyzer, merged transitively across package boundaries (see
// check.go), which is all atomicmix needs.
//
// # Directives
//
// The suite shares one comment-directive grammar, scanned like //go:
// pragmas (no space after //):
//
//	//lockcheck:ignore <reason>   suppress findings on this line (or,
//	                              when the comment stands alone, the
//	                              following line); the reason is required
//	//lockcheck:cs                function body is a critical section /
//	                              injector hook: hotpath denies blocking
//	                              and allocating calls in it
//	//lockcheck:nosnapshot        function is a sampler/monitor path:
//	                              hotpath denies Map.Snapshot-class
//	                              patient calls in it
//	//lockcheck:line[=N]          struct must be exactly N cache lines
//	                              (unadorned: any non-zero whole number
//	                              of lines); checked by padalign
//	//lockcheck:guardedby <g>     field may only be touched with guard g
//	                              provably held: g is a sibling field
//	                              ("mu"), a pkg.Type.field lock class, or
//	                              "external" (declaring type's methods
//	                              only); checked by guardedby
//	//lockcheck:lockword          field (an atomic integer) IS a lock:
//	                              CompareAndSwap(0,·) acquires on the
//	                              success branch, Store(0) releases
//	//lockcheck:holds <path>      function contract: the named lock is
//	                              held on entry (receiver-relative path,
//	                              a parameter name, or a lock class)
//	//lockcheck:acquires <path>   function contract: returns holding the
//	                              lock ("return[N].sel" names a lock
//	                              reached through a result)
//	//lockcheck:releases <path>   function contract: releases the lock
//	//lockcheck:optimistic        function is a seqlock-validated
//	                              optimistic section: guardedby requires
//	                              the empty lockset throughout
//	//lockcheck:lockorder A<B     free-standing pin: lock class A is
//	                              acquired before B by design; lockorder
//	                              injects the edge so a reversed
//	                              acquisition anywhere closes a cycle
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// An Analyzer describes one static check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and fact files.
	Name string
	// Doc is the one-paragraph description printed by `lockcheck help`.
	Doc string
	// Run applies the analyzer to one package.
	Run func(*Pass) error
}

// A Pass provides one analyzer with one type-checked package and the
// channels to report findings and exchange facts.
type Pass struct {
	Analyzer   *Analyzer
	Fset       *token.FileSet
	Files      []*ast.File
	Pkg        *types.Package
	TypesInfo  *types.Info
	TypesSizes types.Sizes

	// Report records a finding. The checker applies //lockcheck:ignore
	// suppression after the analyzer returns, so Run need not know
	// about directives.
	Report func(Diagnostic)

	// ExportFact publishes a key/value visible to passes over packages
	// that (transitively) import this one. Keys are namespaced per
	// analyzer by the checker.
	ExportFact func(key, value string)

	// ImportedFacts returns the merged facts exported by this
	// analyzer's passes over the package's transitive dependencies.
	ImportedFacts func() map[string]string
}

// A Diagnostic is one finding at one position.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// Reportf is a convenience wrapper over Report.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// directivePrefix is the comment prefix shared by every lockcheck
// pragma. Like //go: directives there is no space after the slashes.
const directivePrefix = "//lockcheck:"

// Directive extracts a lockcheck pragma of the given name ("cs",
// "nosnapshot", "line", "ignore") from a comment group. It returns the
// directive's argument text (what follows the name, trimmed; for
// "line=2" style the "=2") and whether the directive is present.
func Directive(doc *ast.CommentGroup, name string) (arg string, ok bool) {
	if doc == nil {
		return "", false
	}
	for _, c := range doc.List {
		if a, found := directiveIn(c.Text, name); found {
			return a, true
		}
	}
	return "", false
}

// Directives extracts every occurrence of the named pragma from a
// comment group, in order. Contract directives (holds, acquires,
// releases) may legitimately repeat on one declaration.
func Directives(doc *ast.CommentGroup, name string) []string {
	if doc == nil {
		return nil
	}
	var out []string
	for _, c := range doc.List {
		if a, found := directiveIn(c.Text, name); found {
			out = append(out, a)
		}
	}
	return out
}

// directiveIn matches one comment's text against one directive name.
func directiveIn(text, name string) (arg string, ok bool) {
	if !strings.HasPrefix(text, directivePrefix) {
		return "", false
	}
	rest := text[len(directivePrefix):]
	if !strings.HasPrefix(rest, name) {
		return "", false
	}
	rest = rest[len(name):]
	// The name must end here, at '=', or at whitespace — "cs" must not
	// match "csx".
	if rest != "" && rest[0] != '=' && rest[0] != ' ' && rest[0] != '\t' {
		return "", false
	}
	return strings.TrimSpace(rest), true
}

// FuncDirective reports whether a function declaration carries the
// named directive in its doc comment.
func FuncDirective(fd *ast.FuncDecl, name string) bool {
	_, ok := Directive(fd.Doc, name)
	return ok
}

// ignoreDirective is one //lockcheck:ignore occurrence.
type ignoreDirective struct {
	pos    token.Pos
	line   int
	reason string
	used   bool
}

// suppressions indexes every //lockcheck:ignore directive in a package
// by file and line, so the checker can drop findings the code has
// explicitly — and with a stated reason — accepted.
type suppressions struct {
	byFileLine map[string]map[int]*ignoreDirective
	all        []*ignoreDirective
}

// collectSuppressions scans all comments of the package's files.
func collectSuppressions(fset *token.FileSet, files []*ast.File) *suppressions {
	s := &suppressions{byFileLine: make(map[string]map[int]*ignoreDirective)}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				reason, ok := directiveIn(c.Text, "ignore")
				if !ok {
					continue
				}
				p := fset.Position(c.Pos())
				d := &ignoreDirective{pos: c.Pos(), line: p.Line, reason: reason}
				m := s.byFileLine[p.Filename]
				if m == nil {
					m = make(map[int]*ignoreDirective)
					s.byFileLine[p.Filename] = m
				}
				m[p.Line] = d
				s.all = append(s.all, d)
			}
		}
	}
	return s
}

// suppressed reports whether a finding at pos is covered by an ignore
// directive: one trailing the same line, or one standing alone on the
// line above.
func (s *suppressions) suppressed(fset *token.FileSet, pos token.Pos) bool {
	p := fset.Position(pos)
	m := s.byFileLine[p.Filename]
	if m == nil {
		return false
	}
	for _, line := range [2]int{p.Line, p.Line - 1} {
		if d := m[line]; d != nil {
			d.used = true
			return true
		}
	}
	return false
}
