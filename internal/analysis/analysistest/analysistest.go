// Package analysistest runs an analyzer over small fixture packages and
// checks its findings against // want comments, in the style of
// golang.org/x/tools/go/analysis/analysistest (stdlib-only, like the
// framework it tests).
//
// Fixtures live under the analyzer's testdata/src/<pkg>/ directory. The
// harness copies every package under src into a throwaway module named
// "test" (fixtures import siblings as "test/<pkg>", which is how the
// cross-package fact flow is exercised) that requires and replaces the
// repro module itself, so fixtures may import repro/lock and friends —
// speclit's validators need the real registries. `go list -export` in
// the throwaway module supplies the type information; CheckPatterns
// does the rest.
//
// Expectations are trailing comments:
//
//	psSize int // want `plain read of atomically accessed field`
//	x = 1      // want "plain write" "second finding on this line"
//
// Each string is a regular expression (quoted or backquoted) matched
// against the analyzer's message; every diagnostic must match a want on
// its line and every want must be matched — the fixture corpus is exact
// in both directions, so false positives fail the suite as loudly as
// false negatives.
package analysistest

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"repro/internal/analysis"
)

// TestData returns the absolute path of the calling test's testdata
// directory.
func TestData() string {
	p, err := filepath.Abs("testdata")
	if err != nil {
		panic(err)
	}
	return p
}

// Run checks one analyzer against the fixture packages named pkgs
// (paths under dir/src). Unused-ignore hygiene is off: a fixture
// directive aimed at another analyzer must not misfire here.
func Run(t *testing.T, dir string, a *analysis.Analyzer, pkgs ...string) {
	t.Helper()
	run(t, dir, []*analysis.Analyzer{a}, false, pkgs)
}

// RunSuite checks the full analyzer suite — with unused-//lockcheck:ignore
// reporting on, as the drivers run it — against the fixture packages.
// Suppression and directive-hygiene fixtures use this form.
func RunSuite(t *testing.T, dir string, analyzers []*analysis.Analyzer, pkgs ...string) {
	t.Helper()
	run(t, dir, analyzers, true, pkgs)
}

func run(t *testing.T, dir string, analyzers []*analysis.Analyzer, reportUnused bool, pkgs []string) {
	t.Helper()
	if len(pkgs) == 0 {
		t.Fatal("analysistest: no fixture packages named")
	}

	mod := t.TempDir()
	writeTestModule(t, mod, dir)

	var patterns []string
	named := make(map[string]bool, len(pkgs))
	for _, p := range pkgs {
		patterns = append(patterns, "./"+p)
		named[p] = true
	}
	// Fixtures may import sibling packages that are not themselves under
	// test; go list pulls those in as deps and CheckPatterns orders them
	// first, so facts flow exactly as they do in the real drivers.
	results, fset, err := analysis.CheckPatterns(mod, patterns, analyzers, reportUnused)
	if err != nil {
		t.Fatal(err)
	}

	wants := collectWants(t, mod, pkgs)

	for _, pr := range results {
		rel := strings.TrimPrefix(pr.Path, "test/")
		for _, d := range pr.Diagnostics {
			p := fset.Position(d.Pos)
			if !named[rel] {
				t.Errorf("%s: unexpected diagnostic in dependency package %s: %s", p, pr.Path, d.Message)
				continue
			}
			if !wants.match(p.Filename, p.Line, d.Message) {
				t.Errorf("%s: unexpected diagnostic: %s (%s)", p, d.Message, d.Analyzer)
			}
		}
	}
	wants.reportUnmatched(t)
}

// writeTestModule copies dir/src/* into mod and writes a go.mod that
// requires the enclosing repro module by a replace directive.
func writeTestModule(t *testing.T, mod, dir string) {
	t.Helper()
	src := filepath.Join(dir, "src")
	if err := copyTree(src, mod); err != nil {
		t.Fatalf("copying fixtures: %v", err)
	}
	repoRoot, err := findRepoRoot(dir)
	if err != nil {
		t.Fatal(err)
	}
	gomod := fmt.Sprintf("module test\n\ngo 1.24\n\nrequire repro v0.0.0\n\nreplace repro => %s\n", repoRoot)
	if err := os.WriteFile(filepath.Join(mod, "go.mod"), []byte(gomod), 0o666); err != nil {
		t.Fatal(err)
	}
}

// findRepoRoot walks up from dir to the directory holding the repro
// go.mod.
func findRepoRoot(dir string) (string, error) {
	d, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if data, err := os.ReadFile(filepath.Join(d, "go.mod")); err == nil &&
			strings.HasPrefix(strings.TrimSpace(string(data)), "module repro") {
			return d, nil
		}
		parent := filepath.Dir(d)
		if parent == d {
			return "", fmt.Errorf("analysistest: no repro go.mod above %s", dir)
		}
		d = parent
	}
}

func copyTree(src, dst string) error {
	return filepath.WalkDir(src, func(path string, e os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		rel, err := filepath.Rel(src, path)
		if err != nil {
			return err
		}
		target := filepath.Join(dst, rel)
		if e.IsDir() {
			return os.MkdirAll(target, 0o777)
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		return os.WriteFile(target, data, 0o666)
	})
}

// wantSet indexes // want expectations by file and line.
type wantSet struct {
	byFileLine map[string]map[int][]*want
}

type want struct {
	file    string
	line    int
	re      *regexp.Regexp
	raw     string
	matched bool
}

// wantRE matches one trailing expectation comment; the strings after it
// are parsed by wantPatterns.
var (
	wantRE        = regexp.MustCompile(`//\s*want\s+(.*)$`)
	wantAloneRE   = regexp.MustCompile(`^//\s*want\s`)
	wantPatternRE = regexp.MustCompile("^\\s*(\"(?:[^\"\\\\]|\\\\.)*\"|`[^`]*`)")
)

// collectWants scans every fixture .go file of the named packages.
func collectWants(t *testing.T, mod string, pkgs []string) *wantSet {
	t.Helper()
	ws := &wantSet{byFileLine: make(map[string]map[int][]*want)}
	for _, pkg := range pkgs {
		pkgDir := filepath.Join(mod, filepath.FromSlash(pkg))
		entries, err := os.ReadDir(pkgDir)
		if err != nil {
			t.Fatalf("fixture package %s: %v", pkg, err)
		}
		for _, e := range entries {
			if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
				continue
			}
			file := filepath.Join(pkgDir, e.Name())
			data, err := os.ReadFile(file)
			if err != nil {
				t.Fatal(err)
			}
			for i, lineText := range strings.Split(string(data), "\n") {
				m := wantRE.FindStringSubmatch(lineText)
				if m == nil {
					continue
				}
				// A want standing alone on its own line targets the line
				// above — for diagnostics that land on comment lines
				// (directive hygiene), which cannot carry a trailing want.
				target := i + 1
				if wantAloneRE.MatchString(strings.TrimSpace(lineText)) {
					target = i
				}
				for _, raw := range wantPatterns(t, file, i+1, m[1]) {
					w := &want{file: file, line: target, raw: raw}
					re, err := regexp.Compile(raw)
					if err != nil {
						t.Fatalf("%s:%d: bad want pattern %q: %v", file, i+1, raw, err)
					}
					w.re = re
					lines := ws.byFileLine[file]
					if lines == nil {
						lines = make(map[int][]*want)
						ws.byFileLine[file] = lines
					}
					lines[target] = append(lines[target], w)
				}
			}
		}
	}
	return ws
}

// wantPatterns splits the text after "want" into its quoted patterns.
func wantPatterns(t *testing.T, file string, line int, text string) []string {
	t.Helper()
	var out []string
	for {
		text = strings.TrimSpace(text)
		if text == "" {
			return out
		}
		m := wantPatternRE.FindStringSubmatch(text)
		if m == nil {
			t.Fatalf("%s:%d: malformed want expectation near %q (patterns must be quoted or backquoted)", file, line, text)
		}
		tok := m[1]
		var pat string
		if tok[0] == '`' {
			pat = tok[1 : len(tok)-1]
		} else {
			var err error
			pat, err = strconv.Unquote(tok)
			if err != nil {
				t.Fatalf("%s:%d: bad want string %s: %v", file, line, tok, err)
			}
		}
		out = append(out, pat)
		text = text[len(m[0]):]
	}
}

// match consumes the first unmatched want on the diagnostic's line whose
// pattern matches the message.
func (ws *wantSet) match(file string, line int, message string) bool {
	for _, w := range ws.byFileLine[file][line] {
		if !w.matched && w.re.MatchString(message) {
			w.matched = true
			return true
		}
	}
	return false
}

// reportUnmatched fails the test for every expectation no diagnostic
// satisfied.
func (ws *wantSet) reportUnmatched(t *testing.T) {
	t.Helper()
	for _, lines := range ws.byFileLine {
		for _, ww := range lines {
			for _, w := range ww {
				if !w.matched {
					t.Errorf("%s:%d: no diagnostic matched want %q", w.file, w.line, w.raw)
				}
			}
		}
	}
}
