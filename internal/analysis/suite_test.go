package analysis_test

import (
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/atomicmix"
	"repro/internal/analysis/hotpath"
	"repro/internal/analysis/padalign"
	"repro/internal/analysis/speclit"
)

// TestSuppression runs the full suite the way the drivers do — with
// unused-//lockcheck:ignore reporting on — over the suppression and
// directive-hygiene fixture.
func TestSuppression(t *testing.T) {
	analysistest.RunSuite(t, analysistest.TestData(), []*analysis.Analyzer{
		atomicmix.Analyzer,
		speclit.Analyzer,
		padalign.Analyzer,
		hotpath.Analyzer,
	}, "sup")
}
