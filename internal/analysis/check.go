package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// Facts is the serialized fact store: analyzer name → key → value.
// Values are human-readable (a position string, typically); keys must be
// stable across builds (the analyzers derive them from declaration
// positions, which both source and export data preserve).
type Facts map[string]map[string]string

// Merge folds other into f (creating buckets as needed). Later values
// win, which is irrelevant in practice: a key is derived from one
// declaration site, so every writer stores an equivalent value.
func (f Facts) Merge(other Facts) {
	for an, kv := range other {
		bucket := f[an]
		if bucket == nil {
			bucket = make(map[string]string, len(kv))
			f[an] = bucket
		}
		for k, v := range kv {
			bucket[k] = v
		}
	}
}

// Unit describes one package ready to be checked: parsed files plus
// everything the type checker needs.
type Unit struct {
	Fset      *token.FileSet
	Files     []*ast.File
	Path      string // package path given to the type checker
	Importer  types.Importer
	Sizes     types.Sizes
	GoVersion string // e.g. "go1.24"; empty means unconstrained

	// FactsIn is the merged fact store of the unit's transitive
	// dependencies (only module-internal packages export facts).
	FactsIn Facts

	// ReportUnusedIgnores adds a finding for every //lockcheck:ignore
	// directive no diagnostic landed on. Only meaningful when the whole
	// analyzer suite runs at once (the drivers); single-analyzer runs
	// (analysistest) would misreport directives aimed at other
	// analyzers.
	ReportUnusedIgnores bool
}

// UnitDiagnostic is a Diagnostic tagged with the analyzer that found it.
type UnitDiagnostic struct {
	Analyzer string
	Pos      token.Pos
	Message  string
}

// UnitResult is the outcome of checking one package.
type UnitResult struct {
	Pkg         *types.Package
	Diagnostics []UnitDiagnostic // suppression-filtered, position-sorted
	FactsOut    Facts            // FactsIn plus everything exported here
}

// CheckUnit type-checks one package and runs the analyzers over it.
// A type-check failure is returned as an error (the drivers decide
// whether that is fatal; `go vet` asks for silence via
// SucceedOnTypecheckFailure because the compiler will report it).
func CheckUnit(u Unit, analyzers []*Analyzer) (UnitResult, error) {
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Instances:  make(map[*ast.Ident]types.Instance),
		Scopes:     make(map[ast.Node]*types.Scope),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	tc := &types.Config{
		Importer:  u.Importer,
		Sizes:     u.Sizes,
		GoVersion: u.GoVersion,
	}
	pkg, err := tc.Check(u.Path, u.Fset, u.Files, info)
	if err != nil {
		return UnitResult{}, err
	}

	factsOut := make(Facts)
	factsOut.Merge(u.FactsIn)

	sup := collectSuppressions(u.Fset, u.Files)

	var diags []UnitDiagnostic
	for _, a := range analyzers {
		a := a
		imported := u.FactsIn[a.Name]
		if imported == nil {
			imported = map[string]string{}
		}
		pass := &Pass{
			Analyzer:   a,
			Fset:       u.Fset,
			Files:      u.Files,
			Pkg:        pkg,
			TypesInfo:  info,
			TypesSizes: u.Sizes,
			Report: func(d Diagnostic) {
				if sup.suppressed(u.Fset, d.Pos) {
					return
				}
				diags = append(diags, UnitDiagnostic{Analyzer: a.Name, Pos: d.Pos, Message: d.Message})
			},
			ExportFact: func(key, value string) {
				bucket := factsOut[a.Name]
				if bucket == nil {
					bucket = make(map[string]string)
					factsOut[a.Name] = bucket
				}
				bucket[key] = value
			},
			ImportedFacts: func() map[string]string { return imported },
		}
		if err := a.Run(pass); err != nil {
			return UnitResult{}, fmt.Errorf("analyzer %s: %v", a.Name, err)
		}
	}

	// Directive hygiene: an ignore without a reason is itself a
	// finding (the reason is the audit trail the suppression policy
	// demands), and — when the whole suite ran — so is an ignore that
	// suppressed nothing: it documents a violation that no longer
	// exists and must not linger to silence a future one.
	for _, d := range sup.all {
		if d.used && d.reason == "" {
			diags = append(diags, UnitDiagnostic{
				Analyzer: "lockcheck",
				Pos:      d.pos,
				Message:  "//lockcheck:ignore requires a reason (//lockcheck:ignore <why this is safe>)",
			})
		}
		if u.ReportUnusedIgnores && !d.used {
			diags = append(diags, UnitDiagnostic{
				Analyzer: "lockcheck",
				Pos:      d.pos,
				Message:  "unused //lockcheck:ignore directive (nothing to suppress here; delete it)",
			})
		}
	}

	sort.SliceStable(diags, func(i, j int) bool {
		pi, pj := u.Fset.Position(diags[i].Pos), u.Fset.Position(diags[j].Pos)
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		if pi.Line != pj.Line {
			return pi.Line < pj.Line
		}
		return pi.Column < pj.Column
	})

	return UnitResult{Pkg: pkg, Diagnostics: diags, FactsOut: factsOut}, nil
}
