package speclit_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/speclit"
)

func TestSpecLit(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), speclit.Analyzer, "sp")
}
