// Package speclit validates constant spec strings against the live
// registries at analysis time. The module's four spec families — locks
// ("mcscr-stp?fairness=500"), store backends ("skiplist?seed=7"),
// adaptation policies ("slo?target=0.1&hot=mcscr-stp"), and fault sets
// ("stall?p=1&hold=1ms+surge?threads=64") — are parsed at runtime, so a
// typo'd spec in a composite literal or a New call is a production
// error waiting on the code path that builds it. This analyzer links
// the real packages and runs the real parsers over every constant spec
// it can see, so `go vet` fails where production would.
//
// Checked sites:
//
//   - lock.New / lock.MustNew / store.New / store.MustNew /
//     policy.New / policy.MustNew / fault.New / fault.MustNew
//     (first argument)
//   - shard.Config composite literals (LockSpec, BackendSpec fields;
//     empty means "use the default" and is fine)
//   - (*shard.Map).Reconfigure (lockSpec and backendSpec arguments;
//     empty means "keep current" and is fine)
//
// Only untyped/typed string constants are checked — a spec computed at
// runtime is the runtime parser's problem. In _test.go files only the
// Must* forms are checked: tests legitimately feed bad specs to New to
// exercise error paths, but a Must* call panics on them, so a bad
// constant there is a bug in any file.
//
// Because the validators are the runtime parsers themselves, the
// analyzer and the runtime cannot disagree; the fuzz suites over
// internal/spec and the family constructors keep those parsers total.
package speclit

import (
	"go/ast"
	"go/constant"
	"go/types"
	"strings"

	"repro/fault"
	"repro/internal/analysis"
	"repro/lock"
	"repro/policy"
	"repro/store"
)

// Analyzer validates constant registry specs at vet time.
var Analyzer = &analysis.Analyzer{
	Name: "speclit",
	Doc: `validate constant lock/store/policy/fault spec strings against the live registries

A constant spec that the runtime parser would reject ("mcscr-spt?fairness=500")
fails vet instead of production. The validators are the runtime parsers
themselves, so the two cannot disagree.`,
	Run: run,
}

// validator runs the real family parser over a candidate spec.
type validator func(spec string) error

var (
	validateLock    validator = func(s string) error { _, err := lock.New(s); return err }
	validateBackend validator = func(s string) error { _, err := store.New(s); return err }
	validatePolicy  validator = func(s string) error { _, err := policy.New(s); return err }
	validateFault   validator = func(s string) error { _, err := fault.New(s); return err }
)

// funcTargets maps a package-level function's full name to the spec
// validator for its first argument. Must* forms are also checked in
// test files (mustOnly selects which).
type funcTarget struct {
	validate validator
	mustOnly bool // a Must* form: panics at runtime, so checked even in tests
}

var funcTargets = map[string]funcTarget{
	"repro/lock.New":       {validateLock, false},
	"repro/lock.MustNew":   {validateLock, true},
	"repro/store.New":      {validateBackend, false},
	"repro/store.MustNew":  {validateBackend, true},
	"repro/policy.New":     {validatePolicy, false},
	"repro/policy.MustNew": {validatePolicy, true},
	"repro/fault.New":      {validateFault, false},
	"repro/fault.MustNew":  {validateFault, true},
}

// reconfigureArgs maps (*shard.Map).Reconfigure's spec arguments to
// validators; empty constants mean "keep the current spec".
var reconfigureArgs = []struct {
	index    int
	validate validator
}{
	{1, validateLock},
	{2, validateBackend},
}

// configFields maps shard.Config spec-string fields to validators;
// empty constants mean "use the default".
var configFields = map[string]validator{
	"LockSpec":    validateLock,
	"BackendSpec": validateBackend,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		inTest := strings.HasSuffix(pass.Fset.Position(f.Pos()).Filename, "_test.go")
		ast.Inspect(f, func(n ast.Node) bool {
			switch e := n.(type) {
			case *ast.CallExpr:
				checkCall(pass, e, inTest)
			case *ast.CompositeLit:
				if !inTest {
					checkConfigLit(pass, e)
				}
			}
			return true
		})
	}
	return nil
}

// checkCall validates constant specs flowing into the registered
// constructor functions and (*shard.Map).Reconfigure.
func checkCall(pass *analysis.Pass, call *ast.CallExpr, inTest bool) {
	fn := calleeFunc(pass, call)
	if fn == nil || fn.Pkg() == nil {
		return
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return
	}

	if sig.Recv() == nil {
		target, ok := funcTargets[fn.Pkg().Path()+"."+fn.Name()]
		if !ok {
			return
		}
		if inTest && !target.mustOnly {
			// Tests feed deliberately bad specs to New to exercise the
			// error paths; only the panicking Must* forms are checked
			// there.
			return
		}
		if len(call.Args) > 0 {
			if s, lit, ok := constString(pass, call.Args[0]); ok {
				if err := target.validate(s); err != nil {
					pass.Reportf(lit.Pos(), "invalid spec constant: %v", err)
				}
			}
		}
		return
	}

	// Methods: (*shard.Map).Reconfigure. Like New, it returns its
	// error, so tests may feed it bad specs deliberately.
	if inTest || fn.Name() != "Reconfigure" || !isShardMapRecv(sig.Recv().Type()) {
		return
	}
	for _, at := range reconfigureArgs {
		if at.index >= len(call.Args) {
			continue
		}
		s, lit, ok := constString(pass, call.Args[at.index])
		if !ok || s == "" { // empty = keep current spec
			continue
		}
		if err := at.validate(s); err != nil {
			pass.Reportf(lit.Pos(), "invalid spec constant: %v", err)
		}
	}
}

// checkConfigLit validates the spec-string fields of shard.Config
// composite literals, keyed or positional.
func checkConfigLit(pass *analysis.Pass, lit *ast.CompositeLit) {
	tv, ok := pass.TypesInfo.Types[lit]
	if !ok {
		return
	}
	named, ok := derefNamed(tv.Type)
	if !ok || named.Obj().Pkg() == nil ||
		named.Obj().Pkg().Path() != "repro/shard" || named.Obj().Name() != "Config" {
		return
	}
	st, ok := named.Underlying().(*types.Struct)
	if !ok {
		return
	}
	for i, elt := range lit.Elts {
		var fieldName string
		var value ast.Expr
		if kv, ok := elt.(*ast.KeyValueExpr); ok {
			key, ok := kv.Key.(*ast.Ident)
			if !ok {
				continue
			}
			fieldName, value = key.Name, kv.Value
		} else if i < st.NumFields() {
			fieldName, value = st.Field(i).Name(), elt
		} else {
			continue
		}
		validate, ok := configFields[fieldName]
		if !ok {
			continue
		}
		s, vlit, ok := constString(pass, value)
		if !ok || s == "" { // empty = family default
			continue
		}
		if err := validate(s); err != nil {
			pass.Reportf(vlit.Pos(), "invalid spec constant: %v", err)
		}
	}
}

// calleeFunc resolves a call's static callee, if any.
func calleeFunc(pass *analysis.Pass, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := pass.TypesInfo.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := pass.TypesInfo.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}

// constString extracts a compile-time string constant from an
// expression (a literal, a named constant, or a constant concatenation).
func constString(pass *analysis.Pass, e ast.Expr) (string, ast.Expr, bool) {
	tv, ok := pass.TypesInfo.Types[e]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return "", nil, false
	}
	return constant.StringVal(tv.Value), e, true
}

// isShardMapRecv reports whether t is shard.Map or *shard.Map.
func isShardMapRecv(t types.Type) bool {
	named, ok := derefNamed(t)
	return ok && named.Obj().Pkg() != nil &&
		named.Obj().Pkg().Path() == "repro/shard" && named.Obj().Name() == "Map"
}

// derefNamed strips one pointer level and returns the named type.
func derefNamed(t types.Type) (*types.Named, bool) {
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	return named, ok
}
