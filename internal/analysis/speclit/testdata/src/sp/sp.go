// Package sp is the speclit fixture: constant specs good and bad at
// every checked site. The bad ones are real typos of the repo's own
// spec vocabulary ("mcscr-spt" for "mcscr-stp"), validated against the
// live registries the analyzer links.
package sp

import (
	"repro/fault"
	"repro/lock"
	"repro/policy"
	"repro/shard"
	"repro/store"
)

var (
	goodLock, _  = lock.New("mcs-s")
	typoLock, _  = lock.New("mcscr-spt?fairness=500") // want `invalid spec constant`
	badParam, _  = lock.New("mcs-s?bogus=1")          // want `invalid spec constant`
	mustLock     = lock.MustNew("mcscr-stp?fairness=500")
	badMust      = lock.MustNew("mcscr-stp?fairness=oops") // want `invalid spec constant`
	goodStore, _ = store.New("skiplist?seed=7")
	badStore, _  = store.New("skplist") // want `invalid spec constant`
	goodPol, _   = policy.New("static")
	badPol, _    = policy.New("no-such-policy") // want `invalid spec constant`
	goodFault, _ = fault.New("stall?p=1+surge?threads=4")
	badFault, _  = fault.New("stall?p=1+unknownfault") // want `invalid spec constant`
)

// Composed specs: a named constant or constant concatenation is still a
// compile-time constant, so it is checked too.
const base = "mcscr-stp"

var composed, _ = lock.New(base + "?fairness=nope") // want `invalid spec constant`

var goodCfg = shard.Config{
	Stripes:     4,
	LockSpec:    "tas",
	BackendSpec: "hashmap",
}

var badCfg = shard.Config{
	LockSpec:    "tas?spin=maybe", // want `invalid spec constant`
	BackendSpec: "rbtree?bogus=1", // want `invalid spec constant`
}

// The zero Config means "all defaults" — no findings.
var defaultCfg = shard.Config{}

func reconfigure(m *shard.Map) {
	_ = m.Reconfigure(0, "mcs-stp", "skiplist")
	_ = m.Reconfigure(0, "", "")                // empty = keep current
	_ = m.Reconfigure(0, "mcs-spt", "skiplist") // want `invalid spec constant`
	_ = m.Reconfigure(0, "mcs-stp", "sklist")   // want `invalid spec constant`
}

// Runtime-computed specs are the runtime parser's problem; no findings.
func dynamic(spec string) {
	_, _ = lock.New(spec)
	_, _ = store.New(spec)
}
