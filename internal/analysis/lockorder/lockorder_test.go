package lockorder_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/lockorder"
)

// lo closes a cycle with two direct edges; locall routes one direction
// through a callee's may-acquire summary; pin reverses a declared
// order, so the pin edge itself closes the cycle; lodep/lo2 split the
// cycle across a package boundary — lodep's edge arrives in lo2 as a
// fact (lodep is named so its unit runs first and exports), and the
// report lands in lo2, the package with the closing edge.
func TestLockOrder(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), lockorder.Analyzer,
		"lo", "locall", "pin", "lodep", "lo2")
}
