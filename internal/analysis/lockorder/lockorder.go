// Package lockorder builds the module's global lock-acquisition-order
// graph and reports cycles — the static face of deadlock freedom. From
// the shared lockset dataflow it records, per function, every edge
// "lock of class A was held while a lock of class B was acquired";
// call sites contribute the may-acquire summary of the callee (itself
// a fixpoint over the package's call graph, with callees in other
// packages folded in through facts). Edges and summaries export as
// facts along the import graph, so the cycle check each package runs
// sees the whole program below it; a cycle is reported exactly once,
// in the package contributing its closing edge.
//
// //lockcheck:lockorder A<B pins declare the intended hierarchy. A pin
// is injected into the graph as the edge A→B, so code acquiring in the
// reverse order closes a cycle and is flagged even before a second
// real edge exists.
//
// Instance blindness is deliberate: edges connect classes
// (declaration sites), not objects, so hand-over-hand acquisition of
// two locks of the same class is invisible here (the A≠B filter) —
// that pattern needs a runtime rank check, not a static graph.
package lockorder

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"repro/internal/analysis"
	"repro/internal/analysis/lockset"
)

// Analyzer reports lock-acquisition-order cycles across the module.
var Analyzer = &analysis.Analyzer{
	Name: "lockorder",
	Doc: `report cycles in the global lock acquisition order graph

Every acquisition of a lock while another is held contributes a
held→acquired edge between lock classes (declaration sites); calls
contribute the callee's transitive may-acquire summary. Edges merge
across packages via facts, and any cycle in the merged graph — a
potential deadlock — is reported where its closing edge is defined.
//lockcheck:lockorder A<B pins the intended order as a graph edge, so
a reversed acquisition is flagged immediately.`,
	Run: run,
}

func run(pass *analysis.Pass) error {
	// guardedby owns the malformed-directive diagnostics.
	info := lockset.Collect(pass, false)

	var decls []*ast.FuncDecl
	fns := make(map[*ast.FuncDecl]*types.Func)
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				if fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func); ok {
					decls = append(decls, fd)
					fns[fd] = fn
				}
			}
		}
	}

	// Pass 1: per-function direct acquire classes and callees, then a
	// fixpoint folding callee summaries (local ones live, imported ones
	// from facts) into transitive may-acquire summaries.
	imported := info.ImportedWithPrefix(lockset.SummaryPrefix)
	type fnData struct {
		classes map[string]bool
		callees []*types.Func
	}
	data := make(map[*types.Func]*fnData, len(decls))
	for _, fd := range decls {
		d := &fnData{classes: make(map[string]bool)}
		lockset.Analyze(info, fd, lockset.Hooks{
			Acquire: func(pos token.Pos, lock lockset.LockRef, held lockset.Held) {
				if lock.Class != "" {
					d.classes[lock.Class] = true
				}
			},
			Call: func(call *ast.CallExpr, callee *types.Func, held lockset.Held) {
				d.callees = append(d.callees, callee)
			},
		})
		data[fns[fd]] = d
	}
	summaryOf := func(fn *types.Func) map[string]bool {
		if d, ok := data[fn]; ok {
			return d.classes
		}
		enc, ok := imported[summaryKey(pass.Fset, fn)]
		if !ok {
			return nil
		}
		out := make(map[string]bool)
		for _, c := range strings.Split(enc, ",") {
			out[c] = true
		}
		return out
	}
	for changed := true; changed; {
		changed = false
		for _, fd := range decls {
			d := data[fns[fd]]
			for _, callee := range d.callees {
				for c := range summaryOf(callee) {
					if !d.classes[c] {
						d.classes[c] = true
						changed = true
					}
				}
			}
		}
	}
	for _, fd := range decls {
		fn := fns[fd]
		if cs := data[fn].classes; len(cs) > 0 {
			pass.ExportFact(lockset.SummaryPrefix+summaryKey(pass.Fset, fn), joinSorted(cs))
		}
	}

	// Pass 2: emit held→acquired edges, direct and through calls.
	localEdges := make(map[[2]string]token.Pos)
	addEdge := func(from, to string, pos token.Pos) {
		if from == "" || to == "" || from == to {
			return
		}
		if _, ok := localEdges[[2]string{from, to}]; !ok {
			localEdges[[2]string{from, to}] = pos
		}
	}
	for _, fd := range decls {
		lockset.Analyze(info, fd, lockset.Hooks{
			Acquire: func(pos token.Pos, lock lockset.LockRef, held lockset.Held) {
				for _, h := range held.Refs() {
					addEdge(h.Class, lock.Class, pos)
				}
			},
			Call: func(call *ast.CallExpr, callee *types.Func, held lockset.Held) {
				if held.Empty() {
					return
				}
				for c := range summaryOf(callee) {
					for _, h := range held.Refs() {
						addEdge(h.Class, c, call.Pos())
					}
				}
			},
		})
	}
	for e, pos := range localEdges {
		pass.ExportFact(lockset.EdgePrefix+e[0]+"->"+e[1], pass.Fset.Position(pos).String())
	}

	// Merge: imported edges, local edges, and pins (a pin IS the
	// intended edge; a real edge in the reverse direction then closes a
	// reportable cycle).
	prov := make(map[[2]string]string) // edge → where it came from
	adj := make(map[string][]string)
	addMerged := func(from, to, where string) {
		e := [2]string{from, to}
		if _, ok := prov[e]; ok {
			return
		}
		prov[e] = where
		adj[from] = append(adj[from], to)
	}
	for k, where := range info.ImportedWithPrefix(lockset.EdgePrefix) {
		if from, to, ok := strings.Cut(k, "->"); ok {
			addMerged(from, to, where)
		}
	}
	for _, p := range info.AllPins() {
		where := "pinned"
		if p.Pos != token.NoPos {
			where = "pinned at " + pass.Fset.Position(p.Pos).String()
		}
		addMerged(p.Before, p.After, where)
	}
	for e, pos := range localEdges {
		addMerged(e[0], e[1], pass.Fset.Position(pos).String())
	}
	for n := range adj {
		sort.Strings(adj[n])
	}

	// Report each cycle closed by a LOCAL contribution (edge or pin
	// declared here): shortest return path as the witness. Packages
	// that only import the cycle stay silent — the cycle is owned where
	// its last edge was written.
	type localClosing struct {
		edge [2]string
		pos  token.Pos
	}
	var closings []localClosing
	for e, pos := range localEdges {
		closings = append(closings, localClosing{e, pos})
	}
	for _, p := range info.Pins {
		closings = append(closings, localClosing{[2]string{p.Before, p.After}, p.Pos})
	}
	sort.Slice(closings, func(i, j int) bool {
		if closings[i].edge[0] != closings[j].edge[0] {
			return closings[i].edge[0] < closings[j].edge[0]
		}
		return closings[i].edge[1] < closings[j].edge[1]
	})
	seenCycle := make(map[string]bool)
	for _, cl := range closings {
		path := shortestPath(adj, cl.edge[1], cl.edge[0])
		if path == nil {
			continue
		}
		// path runs edge[1] ... edge[0]; drop its terminal node — the
		// cycle wraps back to edge[0], it must not appear twice or the
		// rotation dedup sees two distinct cycles.
		cycle := append([]string{cl.edge[0]}, path[:len(path)-1]...)
		canon := canonicalCycle(cycle)
		if seenCycle[canon] {
			continue
		}
		seenCycle[canon] = true
		var detail []string
		for i := 0; i < len(cycle); i++ {
			from, to := cycle[i], cycle[(i+1)%len(cycle)]
			detail = append(detail, fmt.Sprintf("%s→%s (%s)", from, to, prov[[2]string{from, to}]))
		}
		pass.Reportf(cl.pos, "lock order cycle: %s → %s; %s",
			strings.Join(cycle, " → "), cycle[0], strings.Join(detail, "; "))
	}
	return nil
}

// shortestPath BFSes from → to over the merged graph, returning the
// node sequence after from (ending in to), or nil.
func shortestPath(adj map[string][]string, from, to string) []string {
	type qe struct {
		node string
		path []string
	}
	seen := map[string]bool{from: true}
	queue := []qe{{from, []string{from}}}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		if cur.node == to {
			return cur.path
		}
		for _, next := range adj[cur.node] {
			if !seen[next] {
				seen[next] = true
				queue = append(queue, qe{next, append(append([]string{}, cur.path...), next)})
			}
		}
	}
	return nil
}

// canonicalCycle rotates a cycle to start at its least node, giving a
// rotation-independent identity.
func canonicalCycle(cycle []string) string {
	best := 0
	for i := range cycle {
		if cycle[i] < cycle[best] {
			best = i
		}
	}
	out := make([]string, 0, len(cycle))
	out = append(out, cycle[best:]...)
	out = append(out, cycle[:best]...)
	return strings.Join(out, "→")
}

func summaryKey(fset *token.FileSet, fn *types.Func) string {
	pkg := ""
	if fn.Pkg() != nil {
		pkg = fn.Pkg().Path()
	}
	p := fset.Position(fn.Pos())
	base := p.Filename
	if i := strings.LastIndexByte(base, '/'); i >= 0 {
		base = base[i+1:]
	}
	return fmt.Sprintf("%s:%s@%s:%d", pkg, fn.Name(), base, p.Line)
}

func joinSorted(set map[string]bool) string {
	out := make([]string, 0, len(set))
	for c := range set {
		out = append(out, c)
	}
	sort.Strings(out)
	return strings.Join(out, ",")
}
