// Package lodep contributes one half of a cross-package cycle: the
// edge lodep.R.Mu→lodep.S.Mu exports as a fact. Alone it is acyclic,
// so this package stays silent; package lo2 closes the cycle.
package lodep

import "sync"

type R struct{ Mu sync.Mutex }

type S struct{ Mu sync.Mutex }

func RS(r *R, s *S) {
	r.Mu.Lock()
	s.Mu.Lock()
	s.Mu.Unlock()
	r.Mu.Unlock()
}
