// Package lo2 closes the cycle lodep started: its local edge
// lodep.S.Mu→lodep.R.Mu meets the imported lodep.R.Mu→lodep.S.Mu
// fact, and the cycle is reported here — the package contributing the
// closing edge — not in lodep.
package lo2

import "test/lodep"

func SR(r *lodep.R, s *lodep.S) {
	s.Mu.Lock()
	r.Mu.Lock() // want `lock order cycle: lodep\.S\.Mu → lodep\.R\.Mu → lodep\.S\.Mu`
	r.Mu.Unlock()
	s.Mu.Unlock()
}
