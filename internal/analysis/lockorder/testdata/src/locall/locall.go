// Package locall routes one direction of a cycle through a call: AB
// never acquires B's lock directly, but calling lockB while holding
// A's lock contributes the edge via the callee's may-acquire summary.
package locall

import "sync"

type A struct{ mu sync.Mutex }

type B struct{ mu sync.Mutex }

func lockB(b *B) { b.mu.Lock() }

func unlockB(b *B) { b.mu.Unlock() }

func AB(a *A, b *B) {
	a.mu.Lock()
	lockB(b) // want `lock order cycle: locall\.A\.mu → locall\.B\.mu → locall\.A\.mu`
	unlockB(b)
	a.mu.Unlock()
}

func BA(a *A, b *B) {
	b.mu.Lock()
	a.mu.Lock()
	a.mu.Unlock()
	b.mu.Unlock()
}
