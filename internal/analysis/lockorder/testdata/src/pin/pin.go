// Package pin declares the intended order A.mu before B.mu; the code
// acquires the other way around. The pin is itself an edge, so the
// reversed acquisition closes a cycle with only one real edge in the
// program — the report lands on the pin, the declaration the code
// contradicts.
package pin

import "sync"

type A struct {
	//lockcheck:lockorder pin.A.mu<pin.B.mu
	// want `lock order cycle: pin\.A\.mu → pin\.B\.mu → pin\.A\.mu`
	mu sync.Mutex
}

type B struct{ mu sync.Mutex }

func BA(a *A, b *B) {
	b.mu.Lock()
	a.mu.Lock()
	a.mu.Unlock()
	b.mu.Unlock()
}
