// Package lo closes a two-lock cycle with its own edges: PQ
// contributes lo.P.mu→lo.Q.mu and QP the reverse. The cycle is
// reported exactly once, at the lexicographically least closing edge —
// the acquisition inside PQ.
package lo

import "sync"

type P struct{ mu sync.Mutex }

type Q struct{ mu sync.Mutex }

func PQ(p *P, q *Q) {
	p.mu.Lock()
	q.mu.Lock() // want `lock order cycle: lo\.P\.mu → lo\.Q\.mu → lo\.P\.mu`
	q.mu.Unlock()
	p.mu.Unlock()
}

func QP(p *P, q *Q) {
	q.mu.Lock()
	p.mu.Lock()
	p.mu.Unlock()
	q.mu.Unlock()
}

// Solo nests two locks one way only: an edge, not a cycle. R and S are
// not entangled with P and Q, so this stays silent.
type R struct{ mu sync.Mutex }

type S struct{ mu sync.Mutex }

func Solo(r *R, s *S) {
	r.mu.Lock()
	s.mu.Lock()
	s.mu.Unlock()
	r.mu.Unlock()
}
