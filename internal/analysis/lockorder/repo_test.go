package lockorder_test

import (
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/guardedby"
	"repro/internal/analysis/lockorder"
	"repro/internal/analysis/lockset"
)

// TestRepoGraph checks the module's own lock-order graph: every edge
// and pin the analyzers export over the real codebase, merged, must be
// acyclic — this IS the repo's deadlock-freedom argument — and must
// contain the one nesting the design intends, the LOITER standby
// acquiring the outer word while holding the inner lock.
func TestRepoGraph(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and checks the whole module")
	}
	repoRoot, err := filepath.Abs(filepath.Join("..", "..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	// Unused-ignore hygiene is off: ignores aimed at the four analyzers
	// not running here must not misfire. The drivers run it with the
	// full suite.
	results, fset, err := analysis.CheckPatterns(repoRoot, []string{"./..."},
		[]*analysis.Analyzer{guardedby.Analyzer, lockorder.Analyzer}, false)
	if err != nil {
		t.Fatal(err)
	}

	edges := make(map[string][]string) // class → acquired-later classes
	provenance := make(map[string]string)
	addEdge := func(from, to, where string) {
		key := from + "->" + to
		if _, ok := provenance[key]; ok {
			return
		}
		provenance[key] = where
		edges[from] = append(edges[from], to)
	}
	for _, pr := range results {
		for _, d := range pr.Diagnostics {
			t.Errorf("%s: %s (%s)", fset.Position(d.Pos), d.Message, d.Analyzer)
		}
		for k, where := range pr.Facts["lockorder"] {
			if e, ok := strings.CutPrefix(k, lockset.EdgePrefix); ok {
				if from, to, ok := strings.Cut(e, "->"); ok {
					addEdge(from, to, where)
				}
			}
			if p, ok := strings.CutPrefix(k, "p:"); ok {
				if before, after, ok := strings.Cut(p, "<"); ok {
					addEdge(before, after, where)
				}
			}
		}
	}
	if len(edges) == 0 {
		t.Fatal("no lock-order edges found: the analyzer saw none of the module's nestings")
	}

	if _, ok := provenance["lock.LOITER.inner->lock.LOITER.outer"]; !ok {
		var got []string
		for k := range provenance {
			got = append(got, k)
		}
		t.Fatalf("graph is missing LOITER's standby nesting lock.LOITER.inner->lock.LOITER.outer; have %v", got)
	}

	// Acyclicity by 3-color DFS.
	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := make(map[string]int)
	var visit func(n string, trail []string)
	visit = func(n string, trail []string) {
		color[n] = gray
		for _, m := range edges[n] {
			switch color[m] {
			case gray:
				t.Fatalf("lock-order cycle: %s -> %s (trail %v)", n, m, append(trail, n, m))
			case white:
				visit(m, append(trail, n))
			}
		}
		color[n] = black
	}
	for n := range edges {
		if color[n] == white {
			visit(n, nil)
		}
	}

	t.Logf("lock-order graph: %d edges, acyclic", len(provenance))
	for k, where := range provenance {
		t.Logf("  %s (%s)", k, where)
	}
}
