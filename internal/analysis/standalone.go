package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/build"
	"go/token"
	"go/types"
	"io"
	"log"
	"os"
	"os/exec"
	"sort"
)

// Standalone mode: `lockcheck ./...` (or any package patterns) without
// the go vet harness. It shells out to `go list -export -deps -json` for
// file lists and compiler export data — the same artifacts cmd/go would
// hand a vet tool — then checks the matched module packages in
// dependency order, threading facts in memory. Test files are only
// analyzed under `go vet -vettool=` (which synthesizes test variants);
// standalone mode covers the non-test build, which is what pre-commit
// runs want to be fast.

// listPackage is the subset of `go list -json` output the driver needs.
type listPackage struct {
	ImportPath string
	Dir        string
	GoFiles    []string
	Standard   bool
	DepOnly    bool
	Export     string
	Imports    []string
	Module     *struct {
		Path      string
		GoVersion string
	}
}

func runStandalone(patterns []string, analyzers []*Analyzer) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	results, fset, err := CheckPatterns(".", patterns, analyzers, true)
	if err != nil {
		log.Fatal(err)
	}
	exitCode := 0
	if *jsonOut {
		// Machine-readable variant for CI: a flat array, one object per
		// finding, ordered as checked (dependencies first, positions
		// within a package ascending). Empty runs print "[]".
		type jsonFinding struct {
			File     string `json:"file"`
			Line     int    `json:"line"`
			Col      int    `json:"col"`
			Analyzer string `json:"analyzer"`
			Message  string `json:"message"`
		}
		findings := []jsonFinding{}
		for _, pr := range results {
			for _, d := range pr.Diagnostics {
				p := fset.Position(d.Pos)
				findings = append(findings, jsonFinding{
					File:     p.Filename,
					Line:     p.Line,
					Col:      p.Column,
					Analyzer: d.Analyzer,
					Message:  d.Message,
				})
				exitCode = 1
			}
		}
		out, err := json.MarshalIndent(findings, "", "\t")
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(string(out))
	} else {
		for _, pr := range results {
			for _, d := range pr.Diagnostics {
				fmt.Fprintf(os.Stderr, "%s: %s (%s)\n", fset.Position(d.Pos), d.Message, d.Analyzer)
				exitCode = 1
			}
		}
	}
	os.Exit(exitCode)
}

// PackageResult is one checked package's findings, in check order
// (dependencies before dependents), along with the facts its unit
// exported — the raw material of whole-module assertions like "the
// lock-order graph contains this edge" (see lockorder's tests).
type PackageResult struct {
	Path        string
	Diagnostics []UnitDiagnostic
	Facts       Facts
}

// CheckPatterns loads the packages matching patterns in dir (via
// `go list -export`), checks the matched module packages in dependency
// order with facts threaded in memory, and returns their findings. It is
// the engine behind both standalone mode and the analysistest harness.
func CheckPatterns(dir string, patterns []string, analyzers []*Analyzer, reportUnusedIgnores bool) ([]PackageResult, *token.FileSet, error) {
	pkgs, err := goList(dir, patterns)
	if err != nil {
		return nil, nil, err
	}

	exports := make(map[string]string, len(pkgs))
	byPath := make(map[string]*listPackage, len(pkgs))
	for _, p := range pkgs {
		byPath[p.ImportPath] = p
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
	}

	fset := token.NewFileSet()
	imp := newExportImporter(fset, "gc", nil, exports)
	sizes := types.SizesFor("gc", build.Default.GOARCH)

	// Check the matched (non-DepOnly) non-standard packages in
	// dependency order so facts flow importee → importer.
	var roots []*listPackage
	for _, p := range pkgs {
		if !p.DepOnly && !p.Standard {
			roots = append(roots, p)
		}
	}
	order := topoOrder(roots, byPath)

	facts := make(map[string]Facts) // package path → exported facts
	var results []PackageResult
	for _, p := range order {
		var fileNames []string
		for _, f := range p.GoFiles {
			fileNames = append(fileNames, join(p.Dir, f))
		}
		if len(fileNames) == 0 {
			continue
		}
		files, err := parseFiles(fset, fileNames)
		if err != nil {
			return nil, nil, err
		}
		factsIn := make(Facts)
		for _, dep := range p.Imports {
			factsIn.Merge(facts[dep])
		}
		goVersion := ""
		if p.Module != nil && p.Module.GoVersion != "" {
			goVersion = "go" + p.Module.GoVersion
		}
		res, err := CheckUnit(Unit{
			Fset:                fset,
			Files:               files,
			Path:                p.ImportPath,
			Importer:            imp,
			Sizes:               sizes,
			GoVersion:           goVersion,
			FactsIn:             factsIn,
			ReportUnusedIgnores: reportUnusedIgnores,
		}, analyzers)
		if err != nil {
			return nil, nil, fmt.Errorf("%s: %v", p.ImportPath, err)
		}
		facts[p.ImportPath] = res.FactsOut
		results = append(results, PackageResult{Path: p.ImportPath, Diagnostics: res.Diagnostics, Facts: res.FactsOut})
	}
	return results, fset, nil
}

// goList runs `go list -export -deps -json` over the patterns. -export
// makes the build system produce the compiler export data the importer
// reads; -deps pulls in the standard-library closure.
func goList(dir string, patterns []string) ([]*listPackage, error) {
	args := append([]string{
		"list", "-export", "-deps",
		"-json=ImportPath,Dir,GoFiles,Standard,DepOnly,Export,Imports,Module",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go list: %v\n%s", err, stderr.String())
	}
	var pkgs []*listPackage
	dec := json.NewDecoder(&stdout)
	for {
		p := new(listPackage)
		if err := dec.Decode(p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("decoding go list output: %v", err)
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// topoOrder sorts the root packages so every root appears after any
// root it (transitively) imports. Non-root dependencies contribute no
// facts in standalone mode (they are either std or not matched), so
// ordering only among roots is sufficient.
func topoOrder(roots []*listPackage, byPath map[string]*listPackage) []*listPackage {
	rootSet := make(map[string]bool, len(roots))
	for _, p := range roots {
		rootSet[p.ImportPath] = true
	}
	sort.Slice(roots, func(i, j int) bool { return roots[i].ImportPath < roots[j].ImportPath })

	var order []*listPackage
	state := make(map[string]int) // 0 unvisited, 1 visiting, 2 done
	var visit func(path string)
	visit = func(path string) {
		if state[path] != 0 {
			return
		}
		state[path] = 1
		p := byPath[path]
		if p != nil {
			for _, dep := range p.Imports {
				if rootSet[dep] {
					visit(dep)
				}
			}
			if rootSet[path] {
				order = append(order, p)
			}
		}
		state[path] = 2
	}
	for _, p := range roots {
		visit(p.ImportPath)
	}
	return order
}

func join(dir, file string) string {
	if len(file) > 0 && (file[0] == '/' || file[0] == '\\') {
		return file
	}
	return dir + string(os.PathSeparator) + file
}
