package cfg

import (
	"go/ast"
	"go/parser"
	"go/token"
	"testing"
)

// FuzzNew feeds arbitrary source text through the parser into the CFG
// builder. The builder must never panic, and for every function that
// parses, the block partition invariant must hold — including for the
// label/goto/fallthrough tangles the fuzzer is good at inventing.
// Malformed programs that still produce a partial AST (the parser
// recovers) are the interesting half of the corpus: the builder sees
// shapes gofmt would never write.
func FuzzNew(f *testing.F) {
	seeds := []string{
		`package p
func f() { x := 1; _ = x }`,
		`package p
func f(c bool) { if c { return }; for i := 0; i < 3; i++ { continue } }`,
		`package p
func f() {
a:
	for {
		switch 1 {
		case 1:
			fallthrough
		case 2:
			break a
		default:
			continue a
		}
	}
}`,
		`package p
func f(ch chan int) {
	select {
	case v := <-ch:
		_ = v
	default:
	}
	goto end
end:
}`,
		`package p
func f() {
	defer func() { recover() }()
	for range []int{1, 2} {
		defer println()
	}
}`,
		`package p
func f(v any) {
	switch v.(type) {
	case int:
		goto l
	}
l:
	return
}`,
		// Pathological-but-legal: break with no loop is a parse error Go
		// rejects late; the builder must survive what the parser yields.
		`package p
func f() { break; continue; fallthrough }`,
		`package p
func f() { goto missing }`,
		`package p
func f() { select {} }`,
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		fset := token.NewFileSet()
		file, err := parser.ParseFile(fset, "fuzz.go", src, parser.ParseComments|parser.SkipObjectResolution)
		if file == nil {
			return // nothing parsed at all
		}
		_ = err // partial ASTs are in scope
		for _, d := range file.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			g := New(fd.Body) // must not panic
			// Partition invariant: every atomic statement in exactly one
			// block, exactly once.
			want := atomicStmts(fd.Body)
			seen := make(map[ast.Node]int)
			for _, b := range g.Blocks {
				for _, n := range b.Nodes {
					if _, isStmt := n.(ast.Stmt); isStmt {
						seen[n]++
					}
				}
			}
			for n, c := range seen {
				if c != 1 {
					t.Fatalf("%s: statement %T in %d blocks", fset.Position(n.Pos()), n, c)
				}
				if !want[n] {
					t.Fatalf("%s: non-atomic node %T placed as statement", fset.Position(n.Pos()), n)
				}
			}
			for n := range want {
				if seen[n] == 0 {
					t.Fatalf("%s: statement %T missing from all blocks", fset.Position(n.Pos()), n)
				}
			}
		}
	})
}
