package cfg

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// buildFirst parses src and builds the CFG of its first function.
func buildFirst(t *testing.T, src string) (*Graph, *token.FileSet) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "x.go", src, parser.ParseComments|parser.SkipObjectResolution)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	for _, d := range f.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok {
			return New(fd.Body), fset
		}
	}
	t.Fatal("no function in source")
	return nil, nil
}

// atomicStmts collects every atomic statement under root, skipping
// nested function literals (they are separate CFGs).
func atomicStmts(root ast.Node) map[ast.Node]bool {
	out := make(map[ast.Node]bool)
	ast.Inspect(root, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		switch n.(type) {
		case *ast.AssignStmt, *ast.ExprStmt, *ast.IncDecStmt, *ast.SendStmt,
			*ast.DeclStmt, *ast.ReturnStmt, *ast.BranchStmt, *ast.DeferStmt,
			*ast.GoStmt, *ast.EmptyStmt, *ast.BadStmt:
			out[n] = true
		}
		return true
	})
	return out
}

// checkPartition asserts the package invariant: every atomic statement
// of body appears in exactly one block, exactly once, and no block
// holds a node that is not an atomic statement or expression of body.
func checkPartition(t *testing.T, fset *token.FileSet, g *Graph, body *ast.BlockStmt) {
	t.Helper()
	want := atomicStmts(body)
	seen := make(map[ast.Node]int)
	for _, b := range g.Blocks {
		for _, n := range b.Nodes {
			if _, isStmt := n.(ast.Stmt); isStmt {
				seen[n]++
			}
		}
	}
	for n, count := range seen {
		if !want[n] {
			t.Errorf("%s: block holds non-atomic statement %T", fset.Position(n.Pos()), n)
		}
		if count != 1 {
			t.Errorf("%s: statement %T appears in %d blocks", fset.Position(n.Pos()), n, count)
		}
	}
	for n := range want {
		if seen[n] == 0 {
			t.Errorf("%s: atomic statement %T missing from every block", fset.Position(n.Pos()), n)
		}
	}
}

func TestPartitionShapes(t *testing.T) {
	cases := map[string]string{
		"linear": `package p
func f() { x := 1; x++; _ = x }`,
		"ifElse": `package p
func f(c bool) int { if c { return 1 } else { return 2 } }`,
		"ifInit": `package p
func f() { if err := g(); err != nil { return }; h() }
func g() error { return nil }
func h() {}`,
		"forFull": `package p
func f() { for i := 0; i < 10; i++ { if i == 3 { continue }; if i == 5 { break } } }`,
		"forever": `package p
func f() { for { g() } }
func g() {}`,
		"rangeLoop": `package p
func f(xs []int) int { s := 0; for _, x := range xs { s += x }; return s }`,
		"switchFallthrough": `package p
func f(x int) int {
	switch x {
	case 1:
		x++
		fallthrough
	case 2:
		x += 2
	default:
		x = 0
	}
	return x
}`,
		"typeSwitch": `package p
func f(v any) int {
	switch y := v.(type) {
	case int:
		return y
	case string:
		return len(y)
	}
	return 0
}`,
		"selectArms": `package p
func f(a, b chan int) int {
	select {
	case x := <-a:
		return x
	case b <- 1:
		return 1
	default:
		return 0
	}
}`,
		"gotoLoop": `package p
func f() {
	i := 0
loop:
	i++
	if i < 10 {
		goto loop
	}
}`,
		"labeledBreak": `package p
func f(m [][]int) int {
outer:
	for _, row := range m {
		for _, v := range row {
			if v == 0 {
				break outer
			}
			if v == 1 {
				continue outer
			}
		}
	}
	return 0
}`,
		"deferred": `package p
func f() {
	defer g()
	if h() {
		defer g()
		return
	}
	g()
}
func g() {}
func h() bool { return false }`,
		"deadCode": `package p
func f() int {
	return 1
	g()
	return 2
}
func g() {}`,
		"emptySelect": `package p
func f() { select {} }`,
	}
	for name, src := range cases {
		t.Run(name, func(t *testing.T) {
			fset := token.NewFileSet()
			f, err := parser.ParseFile(fset, "x.go", src, parser.SkipObjectResolution)
			if err != nil {
				t.Fatalf("parse: %v", err)
			}
			for _, d := range f.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok {
					continue
				}
				g := New(fd.Body)
				checkPartition(t, fset, g, fd.Body)
			}
		})
	}
}

func TestBranchPolarity(t *testing.T) {
	g, _ := buildFirst(t, `package p
func f(c bool) int {
	x := 0
	if c {
		x = 1
	} else {
		x = 2
	}
	return x
}`)
	// Find the block with a condition and check the true branch holds
	// the x = 1 assignment.
	var cond *Block
	for _, b := range g.Blocks {
		if b.Cond != nil {
			cond = b
			break
		}
	}
	if cond == nil {
		t.Fatal("no conditional block built for if/else")
	}
	if len(cond.Succs) != 2 {
		t.Fatalf("conditional block has %d successors, want 2", len(cond.Succs))
	}
	find := func(b *Block) string {
		for _, n := range b.Nodes {
			if as, ok := n.(*ast.AssignStmt); ok {
				if lit, ok := as.Rhs[0].(*ast.BasicLit); ok {
					return lit.Value
				}
			}
		}
		return ""
	}
	if got := find(cond.Succs[0]); got != "1" {
		t.Errorf("true successor assigns %q, want 1", got)
	}
	if got := find(cond.Succs[1]); got != "2" {
		t.Errorf("false successor assigns %q, want 2", got)
	}
}

func TestLoopBackEdge(t *testing.T) {
	g, _ := buildFirst(t, `package p
func f() {
	for i := 0; i < 3; i++ {
		_ = i
	}
}`)
	// The condition block must be reachable from one of its own
	// successors (the back edge through body and post).
	var head *Block
	for _, b := range g.Blocks {
		if b.Cond != nil {
			head = b
			break
		}
	}
	if head == nil {
		t.Fatal("no loop head with a condition")
	}
	if !reaches(head.Succs[0], head, make(map[*Block]bool)) {
		t.Error("loop body does not reach the head (no back edge)")
	}
}

func TestDefersCollected(t *testing.T) {
	g, _ := buildFirst(t, `package p
func f(c bool) {
	defer a()
	if c {
		defer b()
	}
	defer d()
}
func a() {}
func b() {}
func d() {}`)
	if len(g.Defers) != 3 {
		t.Fatalf("collected %d defers, want 3", len(g.Defers))
	}
	// Source order.
	for i := 1; i < len(g.Defers); i++ {
		if g.Defers[i].Pos() <= g.Defers[i-1].Pos() {
			t.Error("defers not in source order")
		}
	}
}

func TestReturnsReachExit(t *testing.T) {
	g, _ := buildFirst(t, `package p
func f(c bool) int {
	if c {
		return 1
	}
	return 2
}`)
	// Every block holding a return must have Exit as a successor.
	for _, b := range g.Blocks {
		for _, n := range b.Nodes {
			if _, ok := n.(*ast.ReturnStmt); ok {
				found := false
				for _, s := range b.Succs {
					if s == g.Exit {
						found = true
					}
				}
				if !found {
					t.Errorf("block %d returns but does not edge to Exit", b.Index)
				}
			}
		}
	}
}

func reaches(from, to *Block, seen map[*Block]bool) bool {
	if from == to {
		return true
	}
	if seen[from] {
		return false
	}
	seen[from] = true
	for _, s := range from.Succs {
		if reaches(s, to, seen) {
			return true
		}
	}
	return false
}

// TestRepoCorpus drives the builder over every function of this
// repository's own source tree: it must never panic and the
// one-block-per-statement partition must hold for real code.
func TestRepoCorpus(t *testing.T) {
	root := repoRoot(t)
	files := 0
	funcs := 0
	err := filepath.WalkDir(root, func(path string, e os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if e.IsDir() {
			name := e.Name()
			if name == "testdata" || name == ".git" {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") {
			return nil
		}
		fset := token.NewFileSet()
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return fmt.Errorf("%s: %v", path, err)
		}
		files++
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			funcs++
			g := New(fd.Body)
			checkPartition(t, fset, g, fd.Body)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if files == 0 || funcs == 0 {
		t.Fatalf("corpus walked %d files, %d functions — repo root misdetected?", files, funcs)
	}
	t.Logf("checked %d functions across %d files", funcs, files)
}

func repoRoot(t *testing.T) string {
	t.Helper()
	dir, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	for {
		if data, err := os.ReadFile(filepath.Join(dir, "go.mod")); err == nil &&
			strings.HasPrefix(strings.TrimSpace(string(data)), "module repro") {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			t.Fatal("no repro go.mod above the test directory")
		}
		dir = parent
	}
}
