// Package cfg builds intraprocedural control-flow graphs over go/ast,
// with no dependency outside the standard library (the build image has
// no golang.org/x/tools; this continues the internal/analysis
// precedent). It exists to give the lockset analyzers (guardedby,
// lockorder) a flow-sensitive substrate: a function body becomes basic
// blocks whose edges carry branch polarity, so an analysis can learn
// different facts on the two sides of `if mu.TryLock()` or
// `if err := mu.LockContext(ctx); err != nil`.
//
// The builder handles if/else chains, for and range loops, switch and
// type-switch (including fallthrough), select, goto, and labeled
// break/continue. Compound statements are decomposed: a Block's Nodes
// hold only "atomic" statements (assignments, expression statements,
// returns, ...) plus the bare expressions a compound statement
// evaluates in that block (a switch tag, a range operand). Branch
// conditions are not in Nodes; they live on Block.Cond so clients can
// interpret them per edge.
//
// Defer statements appear in their registration block like any other
// statement and are additionally collected, in source order, on
// Graph.Defers: deferred calls run at function exit in LIFO order, and
// clients that model them (the guardedby lockset applies deferred
// unlocks at each exit) lower them against the synthetic Exit block.
//
// Unreachable code is still placed in blocks (with no predecessors), so
// every atomic statement of the function appears in exactly one block —
// the invariant the package's property test enforces.
package cfg

import (
	"go/ast"
	"go/token"
)

// A Block is a maximal straight-line sequence of atomic statements.
type Block struct {
	// Index is the block's position in Graph.Blocks (creation order;
	// Entry is 0).
	Index int

	// Nodes are the atomic statements and evaluated expressions of the
	// block, in execution order. Statements are ast.Stmt; a compound
	// statement contributes the expressions it evaluates here (switch
	// tags, range operands, case expressions) as bare ast.Expr.
	Nodes []ast.Node

	// Cond, when non-nil, is the condition the block branches on:
	// Succs[0] is the true edge, Succs[1] the false edge. A nil Cond
	// with multiple successors is a nondeterministic branch (range
	// head, switch with no tag information retained, select).
	Cond ast.Expr

	// Succs are the successor blocks. Empty for the Exit block and for
	// blocks ending the function without fallthrough.
	Succs []*Block
}

// A Graph is one function body's control-flow graph.
type Graph struct {
	// Entry is the block control enters at the top of the body.
	Entry *Block
	// Exit is a synthetic empty block: every return statement and the
	// fall-off-the-end path lead here. Deferred calls conceptually run
	// on the edges into Exit.
	Exit *Block
	// Blocks is every block, Entry first, in creation order.
	Blocks []*Block
	// Defers collects the function's defer statements in source order.
	// They also appear as Nodes in their registration blocks.
	Defers []*ast.DeferStmt
}

// New builds the CFG of one function body. A nil body (declaration
// without body) yields a graph whose Entry links straight to Exit.
func New(body *ast.BlockStmt) *Graph {
	b := &builder{g: &Graph{}}
	b.g.Entry = b.newBlock()
	b.g.Exit = b.newBlock()
	b.cur = b.g.Entry
	if body != nil {
		b.stmt(body)
	}
	b.jump(b.g.Exit)
	return b.g
}

// loopScope is one enclosing breakable/continuable construct.
type loopScope struct {
	label   string // non-empty when the construct is labeled
	breakTo *Block
	contTo  *Block // nil for switch/select (continue passes through)
}

type builder struct {
	g   *Graph
	cur *Block

	scopes []loopScope
	labels map[string]*Block // goto targets, created on demand

	// pendingLabel is the label wrapping the statement about to be
	// built, so loops/switches register labeled break/continue targets.
	pendingLabel string

	// nextCase is the following case clause's body block while building
	// a switch clause (the fallthrough target).
	nextCase *Block
}

func (b *builder) newBlock() *Block {
	blk := &Block{Index: len(b.g.Blocks)}
	b.g.Blocks = append(b.g.Blocks, blk)
	return blk
}

func (b *builder) link(from, to *Block) {
	from.Succs = append(from.Succs, to)
}

// jump ends the current block with an unconditional edge to target and
// leaves the builder in a fresh (initially unreachable) block.
func (b *builder) jump(target *Block) {
	b.link(b.cur, target)
	b.cur = b.newBlock()
}

// branch ends the current block with a two-way branch on cond.
func (b *builder) branch(cond ast.Expr, onTrue, onFalse *Block) {
	b.cur.Cond = cond
	b.link(b.cur, onTrue)
	b.link(b.cur, onFalse)
}

func (b *builder) labelBlock(name string) *Block {
	if b.labels == nil {
		b.labels = make(map[string]*Block)
	}
	if blk, ok := b.labels[name]; ok {
		return blk
	}
	blk := b.newBlock()
	b.labels[name] = blk
	return blk
}

// findBreak returns the break target for the given label ("" = nearest).
func (b *builder) findBreak(label string) *Block {
	for i := len(b.scopes) - 1; i >= 0; i-- {
		s := b.scopes[i]
		if label == "" || s.label == label {
			return s.breakTo
		}
	}
	return nil
}

// findContinue returns the continue target for the given label.
func (b *builder) findContinue(label string) *Block {
	for i := len(b.scopes) - 1; i >= 0; i-- {
		s := b.scopes[i]
		if s.contTo == nil {
			continue // switch/select: continue belongs to an outer loop
		}
		if label == "" || s.label == label {
			return s.contTo
		}
	}
	return nil
}

// takeLabel consumes the pending label for the construct being built.
func (b *builder) takeLabel() string {
	l := b.pendingLabel
	b.pendingLabel = ""
	return l
}

// stmt builds one statement into the graph.
func (b *builder) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case nil:
	case *ast.BlockStmt:
		for _, st := range s.List {
			b.stmt(st)
		}
	case *ast.LabeledStmt:
		// The label is a goto target; control also falls into it.
		lb := b.labelBlock(s.Label.Name)
		b.link(b.cur, lb)
		b.cur = lb
		b.pendingLabel = s.Label.Name
		b.stmt(s.Stmt)
		b.pendingLabel = ""
	case *ast.IfStmt:
		b.ifStmt(s)
	case *ast.ForStmt:
		b.forStmt(s)
	case *ast.RangeStmt:
		b.rangeStmt(s)
	case *ast.SwitchStmt:
		b.takeLabelledSwitch(s.Init, s.Tag, s.Body, nil)
	case *ast.TypeSwitchStmt:
		b.takeLabelledSwitch(s.Init, nil, s.Body, s.Assign)
	case *ast.SelectStmt:
		b.selectStmt(s)
	case *ast.BranchStmt:
		b.branchStmt(s)
	case *ast.ReturnStmt:
		b.cur.Nodes = append(b.cur.Nodes, s)
		b.jump(b.g.Exit)
	case *ast.DeferStmt:
		b.cur.Nodes = append(b.cur.Nodes, s)
		b.g.Defers = append(b.g.Defers, s)
	default:
		// Atomic statements: assignments, expression statements,
		// declarations, sends, inc/dec, go, empty.
		b.cur.Nodes = append(b.cur.Nodes, s)
	}
}

func (b *builder) ifStmt(s *ast.IfStmt) {
	b.takeLabel() // a labeled if only matters for goto, already handled
	if s.Init != nil {
		b.stmt(s.Init)
	}
	thenB := b.newBlock()
	after := b.newBlock()
	elseTarget := after
	var elseB *Block
	if s.Else != nil {
		elseB = b.newBlock()
		elseTarget = elseB
	}
	b.branch(s.Cond, thenB, elseTarget)

	b.cur = thenB
	b.stmt(s.Body)
	b.link(b.cur, after)

	if s.Else != nil {
		b.cur = elseB
		b.stmt(s.Else)
		b.link(b.cur, after)
	}
	b.cur = after
}

func (b *builder) forStmt(s *ast.ForStmt) {
	label := b.takeLabel()
	if s.Init != nil {
		b.stmt(s.Init)
	}
	head := b.newBlock()
	body := b.newBlock()
	after := b.newBlock()
	// The continue target is the post-statement block when there is a
	// post statement, else the head.
	contTo := head
	var post *Block
	if s.Post != nil {
		post = b.newBlock()
		contTo = post
	}
	b.link(b.cur, head)
	b.cur = head
	if s.Cond != nil {
		b.branch(s.Cond, body, after)
	} else {
		// for {}: the only way out is break/return/goto.
		b.link(b.cur, body)
	}

	b.scopes = append(b.scopes, loopScope{label: label, breakTo: after, contTo: contTo})
	b.cur = body
	b.stmt(s.Body)
	b.scopes = b.scopes[:len(b.scopes)-1]

	if post != nil {
		b.link(b.cur, post)
		b.cur = post
		b.stmt(s.Post)
	}
	b.link(b.cur, head)
	b.cur = after
}

func (b *builder) rangeStmt(s *ast.RangeStmt) {
	label := b.takeLabel()
	head := b.newBlock()
	body := b.newBlock()
	after := b.newBlock()
	b.link(b.cur, head)
	b.cur = head
	// The range operand is evaluated at the head; iteration count is
	// unknown, so the head branches nondeterministically.
	b.cur.Nodes = append(b.cur.Nodes, s.X)
	b.link(b.cur, body)
	b.link(b.cur, after)

	b.scopes = append(b.scopes, loopScope{label: label, breakTo: after, contTo: head})
	b.cur = body
	b.stmt(s.Body)
	b.scopes = b.scopes[:len(b.scopes)-1]
	b.link(b.cur, head)
	b.cur = after
}

// takeLabelledSwitch builds switch and type-switch statements. assign
// is the type-switch's `x := y.(type)` statement, nil for plain switch.
func (b *builder) takeLabelledSwitch(init ast.Stmt, tag ast.Expr, body *ast.BlockStmt, assign ast.Stmt) {
	label := b.takeLabel()
	if init != nil {
		b.stmt(init)
	}
	if tag != nil {
		b.cur.Nodes = append(b.cur.Nodes, tag)
	}
	if assign != nil {
		b.cur.Nodes = append(b.cur.Nodes, assign)
	}
	head := b.cur
	after := b.newBlock()

	// Create every clause's block first so fallthrough can look ahead.
	var clauses []*ast.CaseClause
	var blocks []*Block
	hasDefault := false
	for _, st := range body.List {
		cc, ok := st.(*ast.CaseClause)
		if !ok {
			// Only a partial AST from parser error recovery puts
			// non-clause statements here; keep them accounted for.
			b.stmt(st)
			continue
		}
		clauses = append(clauses, cc)
		blocks = append(blocks, b.newBlock())
		if cc.List == nil {
			hasDefault = true
		}
		// Case expressions are evaluated against the tag in the head.
		for _, e := range cc.List {
			head.Nodes = append(head.Nodes, e)
		}
	}
	for _, blk := range blocks {
		b.link(head, blk)
	}
	if !hasDefault {
		b.link(head, after)
	}

	b.scopes = append(b.scopes, loopScope{label: label, breakTo: after})
	for i, cc := range clauses {
		b.cur = blocks[i]
		if i+1 < len(blocks) {
			b.nextCase = blocks[i+1]
		} else {
			b.nextCase = nil
		}
		for _, st := range cc.Body {
			b.stmt(st)
		}
		b.nextCase = nil
		b.link(b.cur, after)
	}
	b.scopes = b.scopes[:len(b.scopes)-1]
	b.cur = after
}

func (b *builder) selectStmt(s *ast.SelectStmt) {
	label := b.takeLabel()
	head := b.cur
	after := b.newBlock()

	var arms []*Block
	var clauses []*ast.CommClause
	for _, st := range s.Body.List {
		cc, ok := st.(*ast.CommClause)
		if !ok {
			b.stmt(st) // parser error recovery; see takeLabelledSwitch
			continue
		}
		clauses = append(clauses, cc)
		arms = append(arms, b.newBlock())
	}
	for _, arm := range arms {
		b.link(head, arm)
	}
	// A select with no arms blocks forever: head gets no successors
	// (beyond its arms) and the after block is unreachable.

	b.scopes = append(b.scopes, loopScope{label: label, breakTo: after})
	for i, cc := range clauses {
		b.cur = arms[i]
		if cc.Comm != nil {
			b.stmt(cc.Comm)
		}
		for _, st := range cc.Body {
			b.stmt(st)
		}
		b.link(b.cur, after)
	}
	b.scopes = b.scopes[:len(b.scopes)-1]
	b.cur = after
}

func (b *builder) branchStmt(s *ast.BranchStmt) {
	b.cur.Nodes = append(b.cur.Nodes, s)
	label := ""
	if s.Label != nil {
		label = s.Label.Name
	}
	switch s.Tok {
	case token.BREAK:
		if t := b.findBreak(label); t != nil {
			b.jump(t)
			return
		}
	case token.CONTINUE:
		if t := b.findContinue(label); t != nil {
			b.jump(t)
			return
		}
	case token.GOTO:
		if s.Label != nil {
			b.jump(b.labelBlock(s.Label.Name))
			return
		}
	case token.FALLTHROUGH:
		if b.nextCase != nil {
			b.jump(b.nextCase)
			return
		}
	}
	// Malformed (break outside loop, dangling fallthrough): sever the
	// path rather than guess.
	b.cur = b.newBlock()
}
