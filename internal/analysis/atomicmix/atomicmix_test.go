package atomicmix_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/atomicmix"
)

// Package b imports package a, so this exercises the exported-fact path:
// a's atomic declarations are rediscovered in b through the fact store,
// not the source.
func TestAtomicMix(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), atomicmix.Analyzer, "a", "b")
}
