// Package b exercises the cross-package fact flow: package a declared
// Counter and Var atomic; plain access from an importer is the modular
// case a per-package analysis would miss.
package b

import (
	"sync/atomic"

	"test/a"
)

func BadField(t *a.T) uint64 {
	return t.Counter // want `plain read of atomically accessed field a\.Counter`
}

func BadVar() uint64 {
	return a.Var // want `plain read of atomically accessed package variable Var`
}

func BadVarWrite() {
	a.Var = 9 // want `plain write to atomically accessed package variable Var`
}

func Good(t *a.T) uint64 {
	t.Inc()
	a.Bump()
	return atomic.LoadUint64(&a.Var)
}
