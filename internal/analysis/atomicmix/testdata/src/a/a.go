// Package a is the atomicmix fixture: a broken twin of the repo's
// addressed-atomic style (core.Stats stripes, the old lockbench sink).
package a

import "sync/atomic"

// T mixes an addressed atomic counter with plain fields.
type T struct {
	Counter uint64
	Other   int
}

// Inc establishes Counter's atomicity.
func (t *T) Inc() {
	atomic.AddUint64(&t.Counter, 1)
}

func (t *T) BadRead() uint64 {
	return t.Counter // want `plain read of atomically accessed field a\.Counter`
}

func (t *T) BadWrite() {
	t.Counter = 0 // want `plain write to atomically accessed field a\.Counter`
}

func (t *T) BadInc() {
	t.Counter++ // want `plain increment of atomically accessed field a\.Counter`
}

func (t *T) BadEscape() *uint64 {
	return &t.Counter // want `address of atomically accessed field a\.Counter escapes`
}

func (t *T) GoodLoad() uint64 {
	return atomic.LoadUint64(&t.Counter)
}

func (t *T) GoodCAS() bool {
	return atomic.CompareAndSwapUint64((&t.Counter), 0, 1) // parens around the address are fine
}

// NewT uses keyed composite-literal initialization — the
// pre-publication idiom, exempt by design.
func NewT() *T {
	return &T{Counter: 0, Other: 1}
}

// Other is never atomic: plain access everywhere, no findings.
func (t *T) Untracked() int {
	t.Other++
	return t.Other
}

// Var is the package-level twin of the old lockbench sink.
var Var uint64

// Bump establishes Var's atomicity.
func Bump() {
	atomic.StoreUint64(&Var, 1)
}

func BadVar() uint64 {
	return Var // want `plain read of atomically accessed package variable Var`
}

func BadVarWrite() {
	Var = 7 // want `plain write to atomically accessed package variable Var`
}

// typed is the preferred fix: a typed atomic makes plain access
// unrepresentable, so there is nothing for the analyzer to say.
var typed atomic.Uint64

func Typed() uint64 {
	typed.Add(1)
	return typed.Load()
}

// plainOnly never meets sync/atomic; plain access is fine.
var plainOnly uint64

func PlainOnly() uint64 {
	plainOnly++
	return plainOnly
}
