// Package atomicmix reports mixed atomic and plain access to the same
// memory — the bug class of the MCSCR.psSize data race this repo shipped
// and fixed: a field updated through sync/atomic in one path and read
// with a plain load in another compiles silently, usually survives
// -race (the racy interleaving must actually run), and corrupts
// counters or, worse, protocol state in production.
//
// A struct field or package-level variable whose address flows into a
// sync/atomic call anywhere in the module is "atomic": every other
// access to it must also go through sync/atomic. Plain reads, plain
// writes, and escaping addresses are reported. Two accesses are exempt
// by design:
//
//   - keyed composite-literal initialization (the object is not yet
//     published, so a plain store is the idiom), and
//   - the address-of expression inside a sync/atomic call itself.
//
// The preferred fix is not a suppression but a typed atomic
// (atomic.Uint64 and friends), which makes plain access unrepresentable;
// the analyzer exists for the addressed style the typed API cannot
// always replace (striped arrays, C-layout-matching structs).
//
// Atomicity is exported as a fact keyed by the declaration site, so a
// package that plainly accesses a field its dependency treats
// atomically is caught too (the analysis is modular, importee before
// importer — the direction spec-registry code actually shares state).
package atomicmix

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"strings"

	"repro/internal/analysis"
)

// Analyzer detects mixed atomic/plain access to fields and variables.
var Analyzer = &analysis.Analyzer{
	Name: "atomicmix",
	Doc: `report plain access to memory that sync/atomic also touches

A field or package-level variable accessed through sync/atomic anywhere
in the module must be accessed through sync/atomic everywhere (keyed
composite-literal initialization excepted). Prefer typed atomics
(atomic.Uint64) where possible; suppress deliberate mixed access with
//lockcheck:ignore <reason>.`,
	Run: run,
}

// atomicAddrFuncs are the sync/atomic package functions whose first
// argument is the address of the word they operate on.
var atomicAddrFuncs = map[string]bool{
	"AddInt32": true, "AddInt64": true, "AddUint32": true, "AddUint64": true, "AddUintptr": true,
	"AndInt32": true, "AndInt64": true, "AndUint32": true, "AndUint64": true, "AndUintptr": true,
	"OrInt32": true, "OrInt64": true, "OrUint32": true, "OrUint64": true, "OrUintptr": true,
	"CompareAndSwapInt32": true, "CompareAndSwapInt64": true, "CompareAndSwapUint32": true,
	"CompareAndSwapUint64": true, "CompareAndSwapUintptr": true, "CompareAndSwapPointer": true,
	"LoadInt32": true, "LoadInt64": true, "LoadUint32": true, "LoadUint64": true,
	"LoadUintptr": true, "LoadPointer": true,
	"StoreInt32": true, "StoreInt64": true, "StoreUint32": true, "StoreUint64": true,
	"StoreUintptr": true, "StorePointer": true,
	"SwapInt32": true, "SwapInt64": true, "SwapUint32": true, "SwapUint64": true,
	"SwapUintptr": true, "SwapPointer": true,
}

func run(pass *analysis.Pass) error {
	// Phase A: find every var whose address feeds a sync/atomic call in
	// this package, and index the imported facts for cross-package hits.
	local := make(map[*types.Var]string) // object → position of one atomic use
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if !isAtomicAddrCall(pass, call) {
				return true
			}
			if v := addrTarget(pass, call.Args[0]); v != nil {
				if _, seen := local[v]; !seen {
					local[v] = pass.Fset.Position(call.Pos()).String()
				}
			}
			return true
		})
	}

	imported := pass.ImportedFacts()

	// Export the local discoveries so importers see them.
	for v, where := range local {
		pass.ExportFact(objKey(pass.Fset, v), where)
	}

	// atomicAt reports whether v is atomic and where that was
	// established, checking local discoveries first, then facts.
	atomicAt := func(v *types.Var) (string, bool) {
		if where, ok := local[v]; ok {
			return where, true
		}
		if !isField(v) && !isPkgVar(v) {
			return "", false
		}
		where, ok := imported[objKey(pass.Fset, v)]
		return where, ok
	}

	// Phase B: every other use of an atomic var is a finding unless it
	// sits in an allowed context.
	for _, f := range pass.Files {
		var stack []ast.Node
		ast.Inspect(f, func(n ast.Node) bool {
			if n == nil {
				stack = stack[:len(stack)-1]
				return true
			}
			switch e := n.(type) {
			case *ast.SelectorExpr:
				if sel := pass.TypesInfo.Selections[e]; sel != nil {
					if v, ok := sel.Obj().(*types.Var); ok && v.IsField() {
						if where, atomic := atomicAt(v); atomic {
							checkUse(pass, stack, e, v, where)
						}
					}
				} else if v, ok := pass.TypesInfo.Uses[e.Sel].(*types.Var); ok && isPkgVar(v) {
					// Qualified identifier: otherpkg.Var.
					if where, atomic := atomicAt(v); atomic {
						checkUse(pass, stack, e, v, where)
					}
				}
			case *ast.Ident:
				// Skip the Sel half of a selector (handled above) and
				// declaration sites.
				if len(stack) > 0 {
					if s, ok := stack[len(stack)-1].(*ast.SelectorExpr); ok && s.Sel == e {
						break
					}
				}
				v, ok := pass.TypesInfo.Uses[e].(*types.Var)
				if !ok {
					break
				}
				if where, atomic := atomicAt(v); atomic {
					checkUse(pass, stack, e, v, where)
				}
			}
			stack = append(stack, n)
			return true
		})
	}
	return nil
}

// checkUse reports expr unless it appears in an allowed context: as the
// &-operand of a sync/atomic call, or as a keyed composite-literal
// field (initialization before publication).
func checkUse(pass *analysis.Pass, stack []ast.Node, expr ast.Expr, v *types.Var, where string) {
	// Climb out of enclosing parens.
	i := len(stack) - 1
	child := ast.Node(expr)
	for i >= 0 {
		if p, ok := stack[i].(*ast.ParenExpr); ok {
			child = p
			i--
			continue
		}
		break
	}
	if i >= 0 {
		switch parent := stack[i].(type) {
		case *ast.UnaryExpr:
			if parent.Op == token.AND && insideAtomicCall(pass, stack[:i], parent) {
				return
			}
			pass.Reportf(expr.Pos(), "address of %s escapes a sync/atomic call (atomic access at %s)",
				describe(v), where)
			return
		case *ast.KeyValueExpr:
			if parent.Key == child {
				// Keyed struct literal: T{field: v}. (Map literals
				// cannot key on a field selector, so Key==expr implies
				// a struct literal.)
				return
			}
		case *ast.SelectorExpr:
			if parent.Sel == child {
				// expr is the package half of pkg.Var — not an access.
				return
			}
		case *ast.AssignStmt:
			for _, lhs := range parent.Lhs {
				if lhs == child {
					pass.Reportf(expr.Pos(), "plain write to %s (atomic access at %s)", describe(v), where)
					return
				}
			}
		case *ast.IncDecStmt:
			if parent.X == child {
				pass.Reportf(expr.Pos(), "plain %s of %s (atomic access at %s)",
					map[token.Token]string{token.INC: "increment", token.DEC: "decrement"}[parent.Tok],
					describe(v), where)
				return
			}
		}
	}
	pass.Reportf(expr.Pos(), "plain read of %s (atomic access at %s)", describe(v), where)
}

// insideAtomicCall reports whether addr (an &x expression) is an
// argument of a sync/atomic address-taking call. Only parens may sit
// between the two.
func insideAtomicCall(pass *analysis.Pass, stack []ast.Node, addr ast.Expr) bool {
	i := len(stack) - 1
	child := ast.Node(addr)
	for i >= 0 {
		if p, ok := stack[i].(*ast.ParenExpr); ok {
			child = p
			i--
			continue
		}
		break
	}
	if i < 0 {
		return false
	}
	call, ok := stack[i].(*ast.CallExpr)
	if !ok || !isAtomicAddrCall(pass, call) {
		return false
	}
	return len(call.Args) > 0 && call.Args[0] == child
}

// isAtomicAddrCall reports whether call invokes one of sync/atomic's
// address-taking functions.
func isAtomicAddrCall(pass *analysis.Pass, call *ast.CallExpr) bool {
	fun := call.Fun
	for {
		if p, ok := fun.(*ast.ParenExpr); ok {
			fun = p.X
			continue
		}
		break
	}
	sel, ok := fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil {
		return false
	}
	return fn.Pkg().Path() == "sync/atomic" &&
		fn.Type().(*types.Signature).Recv() == nil &&
		atomicAddrFuncs[fn.Name()] && len(call.Args) > 0
}

// addrTarget resolves the &x argument of an atomic call to the tracked
// variable: a struct field or a package-level var. Local variables are
// out of scope (their sharing is function-local and better caught by
// -race).
func addrTarget(pass *analysis.Pass, arg ast.Expr) *types.Var {
	u, ok := ast.Unparen(arg).(*ast.UnaryExpr)
	if !ok || u.Op != token.AND {
		return nil
	}
	switch x := ast.Unparen(u.X).(type) {
	case *ast.SelectorExpr:
		if sel := pass.TypesInfo.Selections[x]; sel != nil {
			if v, ok := sel.Obj().(*types.Var); ok && v.IsField() {
				return v
			}
			return nil
		}
		// Qualified identifier: otherpkg.Var.
		if v, ok := pass.TypesInfo.Uses[x.Sel].(*types.Var); ok && isPkgVar(v) {
			return v
		}
	case *ast.Ident:
		if v, ok := pass.TypesInfo.Uses[x].(*types.Var); ok && isPkgVar(v) {
			return v
		}
	case *ast.IndexExpr:
		// &arr[i] — element atomicity is per-index; out of scope.
	}
	return nil
}

func isField(v *types.Var) bool { return v.IsField() }

// isPkgVar reports whether v is declared at package scope.
func isPkgVar(v *types.Var) bool {
	return !v.IsField() && v.Pkg() != nil && v.Parent() == v.Pkg().Scope()
}

// objKey is the build-stable identity of a var used in fact files: the
// declaring package, name, and declaration file:line (positions survive
// the round trip through compiler export data, so the importing side
// computes the same key).
func objKey(fset *token.FileSet, v *types.Var) string {
	pkg := ""
	if v.Pkg() != nil {
		pkg = v.Pkg().Path()
	}
	p := fset.Position(v.Pos())
	return fmt.Sprintf("%s:%s@%s:%d", pkg, v.Name(), filepath.Base(p.Filename), p.Line)
}

// describe renders a var for diagnostics: "field psSize of lock.MCSCR"
// or "package variable sink".
func describe(v *types.Var) string {
	if !v.IsField() {
		return fmt.Sprintf("atomically accessed package variable %s", v.Name())
	}
	pkg := ""
	if v.Pkg() != nil {
		if i := strings.LastIndexByte(v.Pkg().Path(), '/'); i >= 0 {
			pkg = v.Pkg().Path()[i+1:] + "."
		} else {
			pkg = v.Pkg().Path() + "."
		}
	}
	return fmt.Sprintf("atomically accessed field %s%s", pkg, v.Name())
}
