// Package gbdep declares a guarded field for package gb2 to misuse:
// gb2 never sees this source, only the guard fact the analyzer exports,
// which is exactly how the real packages see each other.
package gbdep

import "sync"

// D is the dependency's guarded struct.
type D struct {
	Mu sync.Mutex
	//lockcheck:guardedby Mu
	N int
}

// Bump runs with the caller's lock, per its declared precondition.
//
//lockcheck:holds d.Mu
func (d *D) Bump() { d.N++ }
