// Package gb is the guardedby fixture corpus: every Bad site pins its
// diagnostic with a want, and every Good twin — the same shape with
// the guard provably held — must stay silent. The twins are the
// false-positive regression suite: a lockset change that breaks
// TryLock branches, defers, early returns, select arms, or local
// aliasing fails here before it floods the real packages.
package gb

import "sync"

// T is the guarded struct under test: n is guarded by its sibling mu,
// ext may only be touched by methods of T.
type T struct {
	mu sync.Mutex
	//lockcheck:guardedby mu
	n int
	//lockcheck:guardedby external
	ext int
}

// New writes the guarded field with no lock held: the object is fresh,
// unreachable by any other goroutine, so this must not fire.
func New(n int) *T {
	t := &T{}
	t.n = n
	return t
}

func (t *T) Plain() {
	t.mu.Lock()
	t.n++
	t.mu.Unlock()
}

func (t *T) PlainBad() {
	t.n++ // want `access to n \(guardedby mu\) without holding`
}

// TryBranches: the success branch holds the lock, the failure branch
// does not — the lockset must split at the condition.
func (t *T) TryBranches() {
	if t.mu.TryLock() {
		t.n = 1
		t.mu.Unlock()
	} else {
		t.n = 2 // want `access to n \(guardedby mu\) without holding`
	}
}

// TryNegated guards with a negated TryLock: the fall-through is the
// success branch.
func (t *T) TryNegated() {
	if !t.mu.TryLock() {
		return
	}
	t.n++
	t.mu.Unlock()
}

// DeferUnlock: the deferred release is lowered at every exit, so both
// returns leave with an empty lockset and the accesses between are
// covered.
func (t *T) DeferUnlock() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.n > 3 {
		return t.n
	}
	t.n = 0
	return 0
}

// EarlyReturn releases on both paths; no leak, no miss.
func (t *T) EarlyReturn(c bool) {
	t.mu.Lock()
	if c {
		t.mu.Unlock()
		return
	}
	t.n++
	t.mu.Unlock()
}

// EarlyUnlockBad unlocks on only one path: after the join the lock is
// no longer must-held, so the access and the second unlock both fire.
func (t *T) EarlyUnlockBad(c bool) {
	t.mu.Lock()
	if c {
		t.mu.Unlock()
	}
	t.n++         // want `access to n \(guardedby mu\) without holding`
	t.mu.Unlock() // want `unlock of .* but no lock of it is held on this path`
}

// SelectArms: the lock is held across every arm.
func (t *T) SelectArms(ch chan int) {
	t.mu.Lock()
	select {
	case <-ch:
		t.n++
	default:
		t.n--
	}
	t.mu.Unlock()
}

// SelectArmBad locks in one arm only; the default arm is bare.
func (t *T) SelectArmBad(ch chan int) {
	select {
	case v := <-ch:
		t.mu.Lock()
		t.n = v
		t.mu.Unlock()
	default:
		t.n = 0 // want `access to n \(guardedby mu\) without holding`
	}
}

// Alias acquires the guard through a local alias; the resolver must
// see through the &-binding or every helper that hoists a lock into a
// variable becomes a false positive.
func (t *T) Alias() {
	mu := &t.mu
	mu.Lock()
	t.n++
	mu.Unlock()
}

func (t *T) UnlockBad() {
	t.mu.Unlock() // want `unlock of .* but no lock of it is held on this path`
}

func (t *T) LeakBad() bool {
	t.mu.Lock()
	return t.n > 0 // want `returns still holding`
}

// bump declares its precondition; the body is checked as if mu were
// held on entry.
//
//lockcheck:holds t.mu
func (t *T) bump() { t.n++ }

// lockN declares that it returns holding mu, which both suppresses the
// leak report here and seeds the caller's lockset.
//
//lockcheck:acquires t.mu
func (t *T) lockN() { t.mu.Lock() }

func (t *T) UseContract() {
	t.lockN()
	t.n++
	t.bump()
	t.mu.Unlock()
}

// tryN is a conditional-acquire contract: bool result + acquires means
// callers hold mu only on the true branch.
//
//lockcheck:acquires t.mu
func (t *T) tryN() bool { return t.mu.TryLock() }

func (t *T) UseTry() {
	if t.tryN() {
		t.n++
		t.mu.Unlock()
	}
}

// Optimistic sections must run under the empty lockset.
//
//lockcheck:optimistic
func (t *T) OptBad() {
	t.mu.Lock() // want `optimistic section acquires`
	t.mu.Unlock()
}

func (t *T) Ext() { t.ext++ }

func Poke(t *T) {
	t.ext++ // want `guardedby external: only methods of test/gb\.T`
}

// Ignored shows an in-scope //lockcheck:ignore silencing a true miss.
func (t *T) Ignored() {
	//lockcheck:ignore fixture: suppression must silence the guard miss
	t.n++
}
