// Package gb2 accesses gbdep's guarded field across the package
// boundary: the guard annotation arrives as a fact, not as source.
package gb2

import "test/gbdep"

func Good(d *gbdep.D) {
	d.Mu.Lock()
	d.N++
	d.Bump()
	d.Mu.Unlock()
}

func Bad(d *gbdep.D) {
	d.N++ // want `access to N \(guardedby Mu\) without holding`
}
