package guardedby_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/guardedby"
)

// Package gb is the single-package corpus (true-positive sites paired
// with silent twins); gb2 imports gbdep — named here so its unit runs
// and exports facts — and sees its guard annotations only through
// them, never the source.
func TestGuardedBy(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), guardedby.Analyzer, "gb", "gbdep", "gb2")
}
