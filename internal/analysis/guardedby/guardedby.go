// Package guardedby enforces //lockcheck:guardedby field annotations
// with a flow-sensitive lockset: every read or write of a guarded
// field must happen while the dataflow proves the guard held on every
// path to the access. The lockset (internal/analysis/lockset) tracks
// Lock/Unlock pairs, TryLock success branches, LockContext nil-error
// branches, lockword CAS/Store protocols, declared holds/acquires/
// releases contracts, and defer lowering; guards and contracts export
// as facts, so a package touching a dependency's guarded field is
// checked against the annotation it cannot see in source.
//
// Beyond guard misses the analyzer reports three protocol breaks:
// an unlock on a path where no matching lock is held, a function
// returning with a lock it acquired (unless its contract says it
// acquires), and any lock acquisition inside a //lockcheck:optimistic
// function — optimistic sections validate with a seqlock and must hold
// the empty lockset by definition.
package guardedby

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"repro/internal/analysis"
	"repro/internal/analysis/lockset"
)

// Analyzer enforces guardedby annotations and lock protocol hygiene.
var Analyzer = &analysis.Analyzer{
	Name: "guardedby",
	Doc: `check //lockcheck:guardedby fields against a flow-sensitive lockset

A field annotated //lockcheck:guardedby <guard> may only be accessed
while the guard is provably held: <guard> is a sibling field (same
object), a pkg.Type.field class (any held lock of the class), or
"external" (methods of the declaring type only). The lockset follows
TryLock success branches, LockContext nil-error branches, lockword
CAS(0,·)/Store(0) protocols, holds/acquires/releases contracts, and
deferred unlocks. Also reported: unlock without a held lock, returning
with an undeclared lock held (both production code only — tests break
the ownership protocol on purpose), and acquiring inside
//lockcheck:optimistic sections.`,
	Run: run,
}

func run(pass *analysis.Pass) error {
	// guardedby owns directive-syntax reporting (lockorder collects the
	// same annotations silently, so malformations surface once).
	info := lockset.Collect(pass, true)
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkFunc(pass, info, fd)
		}
	}
	return nil
}

func checkFunc(pass *analysis.Pass, info *lockset.Info, fd *ast.FuncDecl) {
	optimistic := analysis.FuncDirective(fd, "optimistic")
	fn, _ := pass.TypesInfo.Defs[fd.Name].(*types.Func)
	contract := info.ContractFor(fn)
	returnsHolding := contract != nil && len(contract.Acquires) > 0

	// Tests intentionally break the ownership protocol: double-unlock
	// panic paths, locks handed between goroutines, semaphore permits
	// released that were never acquired. Guarded-field misses stay
	// checked in tests — a test reaching past the latch is a real bug —
	// but the two protocol reports are production-code-only, the same
	// carve-out speclit makes for MustNew error-path tests.
	inTest := strings.HasSuffix(pass.Fset.Position(fd.Pos()).Filename, "_test.go")

	// Multi-exit functions would otherwise repeat the same leak per
	// return statement.
	leakReported := make(map[string]bool)

	hooks := lockset.Hooks{
		Access: func(expr *ast.SelectorExpr, field *types.Var, base lockset.Path, baseOK bool, held lockset.Held) {
			g, ok := info.GuardFor(field)
			if !ok {
				return
			}
			switch g.Kind {
			case lockset.GuardExternal:
				if !methodOf(fn, g.Owner) {
					pass.Reportf(expr.Sel.Pos(),
						"field %s is guardedby external: only methods of %s may touch it",
						field.Name(), g.Owner)
				}
			case lockset.GuardRel:
				if baseOK {
					req := base.Extend(g.Rel...)
					if !held.Has(req) {
						pass.Reportf(expr.Sel.Pos(),
							"access to %s (guardedby %s) without holding %s",
							field.Name(), g, req)
					}
				} else if !held.HasClass(g.Class) {
					pass.Reportf(expr.Sel.Pos(),
						"access to %s (guardedby %s) without a held %s lock",
						field.Name(), g, g.Class)
				}
			case lockset.GuardClass:
				if !held.HasClass(g.Class) {
					pass.Reportf(expr.Sel.Pos(),
						"access to %s (guardedby %s) without a held %s lock",
						field.Name(), g, g.Class)
				}
			}
		},
		Acquire: func(pos token.Pos, lock lockset.LockRef, held lockset.Held) {
			if optimistic {
				pass.Reportf(pos,
					"optimistic section acquires %s: //lockcheck:optimistic requires the empty lockset",
					lock)
			}
		},
		Release: func(pos token.Pos, lock lockset.LockRef, wasHeld, deferred bool) {
			// Deferred releases are lowered at every exit, including
			// paths where a conditionally registered defer never ran;
			// only direct unlocks are position-precise enough to report.
			if !wasHeld && !deferred && !inTest {
				pass.Reportf(pos, "unlock of %s but no lock of it is held on this path", lock)
			}
		},
		Exit: func(pos token.Pos, leaked []lockset.LockRef) {
			if returnsHolding || inTest {
				return // declared: //lockcheck:acquires, callers inherit
			}
			for _, ref := range leaked {
				k := ref.String()
				if leakReported[k] {
					continue
				}
				leakReported[k] = true
				pass.Reportf(pos,
					"returns still holding %s (declare //lockcheck:acquires or release it)", ref)
			}
		},
	}
	lockset.Analyze(info, fd, hooks)
}

func methodOf(fn *types.Func, owner string) bool {
	if fn == nil {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	named := namedRecv(sig.Recv().Type())
	if named == nil || named.Obj().Pkg() == nil {
		return false
	}
	return named.Obj().Pkg().Path()+"."+named.Obj().Name() == owner
}

func namedRecv(t types.Type) *types.Named {
	t = types.Unalias(t)
	if ptr, ok := t.(*types.Pointer); ok {
		t = types.Unalias(ptr.Elem())
	}
	named, _ := t.(*types.Named)
	return named
}
