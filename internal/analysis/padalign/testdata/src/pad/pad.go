// Package pad is the fixture stand-in for repro/internal/pad (which,
// being internal, is not importable from the fixture module). The
// analyzer keys pad-typed fields on the package name.
package pad

// CacheLineSize mirrors repro/internal/pad.CacheLineSize.
const CacheLineSize = 64

// CacheLine is a full line of padding.
type CacheLine [CacheLineSize]byte
