// Package pd is the padalign fixture: broken twins of lock/mcs.go's
// pooled node and internal/core/stats.go's counter stripe, with the pad
// arithmetic deliberately drifted — the exact failure the analyzer
// exists to catch (a field added without updating the
// "CacheLineSize - N" subtraction). Offsets assume the gc sizes model
// on a 64-bit target, as the repo's layout tests already do.
package pd

import (
	"sync/atomic"

	"test/pad"
)

// GoodNode is the healthy shape: 24 bytes of payload, pad to the line.
//
//lockcheck:line=1
type GoodNode struct {
	state atomic.Uint32
	_     [4]byte
	next  *GoodNode
	id    uint64
	_     [pad.CacheLineSize - 24]byte
}

// DriftNode grew a field without updating the pad arithmetic.
//
//lockcheck:line=1
type DriftNode struct { // want `DriftNode is 72 bytes, want exactly 64`
	state atomic.Uint32
	_     [4]byte
	next  *DriftNode
	id    uint64
	extra uint64
	_     [pad.CacheLineSize - 24]byte // want `ends at offset 72, not on a 64-byte cache-line boundary`
}

// ShortPad pads, but not to a boundary: the neighbour still shares the
// line.
type ShortPad struct {
	hot uint64
	_   [48]byte // want `ends at offset 56, not on a 64-byte cache-line boundary`
}

// GoodStripe is the two-line counter stripe shape.
//
//lockcheck:line=2
type GoodStripe struct {
	c [11]atomic.Uint64
	_ [128 - 11*8]byte
}

// OddStripe claims two lines but is three.
//
//lockcheck:line=2
type OddStripe struct { // want `OddStripe is 192 bytes, want exactly 128`
	c [23]atomic.Uint64
	_ [192 - 23*8]byte
}

// AnyLines only requires a whole number of lines.
//
//lockcheck:line
type AnyLines struct {
	buf [2 * pad.CacheLineSize]byte
}

// Ragged is annotated but not line-sized at all.
//
//lockcheck:line
type Ragged struct { // want `Ragged is 24 bytes, want a non-zero multiple of the 64-byte cache line`
	a, b, c uint64
}

// BadArg has a malformed directive argument.
//
//lockcheck:line=zero
type BadArg struct { // want `bad //lockcheck:line directive on BadArg`
	a uint64
}

// Unpadded structs without the directive are out of scope entirely, and
// small blank arrays are word-alignment fillers, not line pads.
type Unpadded struct {
	a uint32
	_ [4]byte
	b byte
}

// padTyped uses a repro/internal/pad type as the padding field; it is
// under pad discipline even without a blank [N]byte field. A CacheLine
// that does not end on a boundary cannot be isolating anything.
type padTyped struct {
	hot uint32
	pad pad.CacheLine // want `ends at offset 68, not on a 64-byte cache-line boundary`
	n   uint64
}
