// Package padalign verifies the cache-line layout discipline that
// internal/pad documents and lock/layout_test.go asserts for one
// package — generalized to every package in the module, computed from
// types.Sizes instead of unsafe.Offsetof in hand-written tests.
//
// Two invariants, two triggers:
//
//  1. Any struct that contains a padding field — a blank field of
//     [N]byte type with N >= 8 (smaller blank arrays are word-alignment
//     fillers, not line pads), or a field of a repro/internal/pad type —
//     is under pad discipline automatically. Every such padding field must end
//     exactly on a cache-line boundary: that is what makes the next
//     field start a fresh line, which is the entire point of the pad.
//     Padding that stops short (the classic failure: a field is added
//     or resized and the N in "[CacheLineSize - N]byte" is not
//     updated) silently re-introduces the false sharing the struct was
//     shaped to avoid.
//
//  2. A struct annotated //lockcheck:line=N must be exactly N cache
//     lines in total (unadorned //lockcheck:line: any non-zero whole
//     number of lines). This is the pooled-node size-class contract:
//     a 64-byte object lands in the 64-byte allocation class, whose
//     slots are line-aligned, so a waiter's spin flag never shares a
//     coherence granule with a neighbouring node. Growing past a line
//     boundary is sometimes a deliberate trade (it doubles pool
//     memory) — the annotation makes it a loud one.
//
// The line size is repro/internal/pad.CacheLineSize; the analyzer links
// the real constant so the two cannot drift.
package padalign

import (
	"go/ast"
	"go/token"
	"go/types"
	"strconv"
	"strings"

	"repro/internal/analysis"
	"repro/internal/pad"
)

// Analyzer verifies cache-line padding and size-class layout contracts.
var Analyzer = &analysis.Analyzer{
	Name: "padalign",
	Doc: `verify cache-line padding discipline with types.Sizes

Structs containing padding fields (blank [N]byte fields with N >= 8, or
repro/internal/pad types) must place each pad so it ends exactly on a
cache-line boundary; structs annotated //lockcheck:line=N must be
exactly N cache lines in total.`,
	Run: run,
}

const line = int64(pad.CacheLineSize)

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				// Generic struct layouts depend on the instantiation;
				// out of scope.
				if ts.TypeParams != nil {
					continue
				}
				st, ok := ts.Type.(*ast.StructType)
				if !ok {
					continue
				}
				doc := ts.Doc
				if doc == nil {
					doc = gd.Doc
				}
				checkStruct(pass, ts, st, doc)
			}
		}
	}
	return nil
}

func checkStruct(pass *analysis.Pass, ts *ast.TypeSpec, st *ast.StructType, doc *ast.CommentGroup) {
	obj := pass.TypesInfo.Defs[ts.Name]
	if obj == nil {
		return
	}
	styp, ok := obj.Type().Underlying().(*types.Struct)
	if !ok {
		return
	}

	lineArg, hasLineDirective := analysis.Directive(doc, "line")

	// Locate padding fields in source order; the type checker's field
	// order matches the AST's (flattened over multi-name field decls).
	fields := make([]*types.Var, styp.NumFields())
	for i := range fields {
		fields[i] = styp.Field(i)
	}
	padded := padFieldIndexes(pass, st, fields)
	if len(padded) == 0 && !hasLineDirective {
		return
	}

	offsets := pass.TypesSizes.Offsetsof(fields)

	for _, pi := range padded {
		fieldSize := pass.TypesSizes.Sizeof(fields[pi.index].Type())
		if fieldSize == 0 {
			pass.Reportf(pi.pos, "zero-sized padding field in %s pads nothing", ts.Name.Name)
			continue
		}
		end := offsets[pi.index] + fieldSize
		if end%line != 0 {
			pass.Reportf(pi.pos,
				"padding field in %s ends at offset %d, not on a %d-byte cache-line boundary; the next field shares a line with the one this pad was meant to isolate",
				ts.Name.Name, end, line)
		}
	}

	if hasLineDirective {
		want, err := parseLineArg(lineArg)
		if err != "" {
			pass.Reportf(ts.Pos(), "bad //lockcheck:line directive on %s: %s", ts.Name.Name, err)
			return
		}
		total := pass.TypesSizes.Sizeof(obj.Type())
		switch {
		case want > 0 && total != want*line:
			pass.Reportf(ts.Pos(),
				"%s is %d bytes, want exactly %d (%d cache line(s)); a size-class drift silently doubles pool memory or re-introduces false sharing",
				ts.Name.Name, total, want*line, want)
		case want == 0 && (total == 0 || total%line != 0):
			pass.Reportf(ts.Pos(),
				"%s is %d bytes, want a non-zero multiple of the %d-byte cache line",
				ts.Name.Name, total, line)
		}
	}
}

// padField pairs a flattened field index with its source position.
type padField struct {
	index int
	pos   token.Pos
}

// padFieldIndexes returns the flattened indexes of padding fields: a
// blank field of [N]byte type at least a word wide (smaller blank
// arrays are alignment fillers, exempt — though a drifted pad that
// shrinks below a word still trips the //lockcheck:line total-size
// check), or any field of a pad-package type.
func padFieldIndexes(pass *analysis.Pass, st *ast.StructType, fields []*types.Var) []padField {
	var out []padField
	i := 0
	for _, f := range st.Fields.List {
		n := len(f.Names)
		if n == 0 {
			n = 1 // embedded field
		}
		for j := 0; j < n; j++ {
			fv := fields[i]
			blank := len(f.Names) > 0 && f.Names[j].Name == "_"
			if (blank && isByteArray(fv.Type()) && pass.TypesSizes.Sizeof(fv.Type()) >= 8) ||
				isPadType(fv.Type()) {
				out = append(out, padField{index: i, pos: f.Pos()})
			}
			i++
		}
	}
	return out
}

// isByteArray reports whether t is [N]byte (possibly via a named type).
func isByteArray(t types.Type) bool {
	arr, ok := t.Underlying().(*types.Array)
	if !ok {
		return false
	}
	b, ok := arr.Elem().Underlying().(*types.Basic)
	return ok && b.Kind() == types.Uint8
}

// isPadType reports whether t is declared in a package named "pad" —
// repro/internal/pad in this module (the name, not the full path, so
// fixture modules can supply their own pad package; nothing else in the
// build is called pad).
func isPadType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	p := named.Obj().Pkg()
	return p != nil && p.Name() == "pad"
}

// parseLineArg parses the directive argument: "" (any multiple) or
// "=N" (exactly N lines).
func parseLineArg(arg string) (int64, string) {
	if arg == "" {
		return 0, ""
	}
	if !strings.HasPrefix(arg, "=") {
		return 0, "want //lockcheck:line or //lockcheck:line=N"
	}
	n, err := strconv.ParseInt(strings.TrimSpace(arg[1:]), 10, 32)
	if err != nil || n <= 0 {
		return 0, "N must be a positive integer count of cache lines"
	}
	return n, ""
}
