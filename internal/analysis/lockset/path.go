// Package lockset is the shared substrate of the flow-sensitive
// analyzers (guardedby, lockorder): canonical lock identities, the
// //lockcheck: guard/contract annotation model with cross-package fact
// encoding, and a must-lockset dataflow over internal/analysis/cfg
// graphs that understands Lock/Unlock, TryLock success branches,
// LockContext nil-error branches, lockword CAS/Store protocols, and
// defer lowering.
//
// A lock is identified two ways at once:
//
//   - a Path — a chain of field selections rooted at a variable
//     (l.outer, d.mu, s.pool), with single-assignment local aliases
//     substituted so `mu := &s.mu; mu.Lock()` and `s.mu.Unlock()` name
//     the same lock. Paths are exact within one function: holding
//     a.mu says nothing about b.mu.
//   - a Class — the global name of the lock's declaration site
//     ("shard.descriptor.mu", "semaphore.Semaphore"), used where exact
//     identity cannot cross a boundary: lock-order edges, class-form
//     guards, and accesses whose base expression is not a plain path.
package lockset

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// A Path is one lock's identity inside one function: a root variable
// plus a chain of field names selected from it.
type Path struct {
	Root *types.Var
	Sel  []string
}

// Key is the path's identity within one function analysis. Root
// positions are unique per object in a run, which is all the dataflow
// needs (keys never cross a function boundary).
func (p Path) Key() string {
	if len(p.Sel) == 0 {
		return fmt.Sprintf("%s@%d", p.Root.Name(), p.Root.Pos())
	}
	return fmt.Sprintf("%s@%d.%s", p.Root.Name(), p.Root.Pos(), strings.Join(p.Sel, "."))
}

// String renders the path for diagnostics: "d.mu", "l.outer".
func (p Path) String() string {
	if len(p.Sel) == 0 {
		return p.Root.Name()
	}
	return p.Root.Name() + "." + strings.Join(p.Sel, ".")
}

// Extend returns the path with extra selection segments appended.
func (p Path) Extend(segs ...string) Path {
	sel := make([]string, 0, len(p.Sel)+len(segs))
	sel = append(sel, p.Sel...)
	sel = append(sel, segs...)
	return Path{Root: p.Root, Sel: sel}
}

// Class computes the path's global class name, or "" when the path has
// none. A field-terminated path is classed by its declaring struct:
// "shard.descriptor.mu". A bare variable is classed by its named type:
// "semaphore.Semaphore" — except for the stdlib sync types, whose
// instances are too many and too unrelated for a shared global name to
// mean anything in a lock-order graph.
func (p Path) Class() string {
	if len(p.Sel) == 0 {
		named := namedOf(p.Root.Type())
		if named == nil || named.Obj().Pkg() == nil {
			return ""
		}
		pkg := named.Obj().Pkg()
		if pkg.Path() == "sync" || pkg.Path() == "sync/atomic" {
			return ""
		}
		return pkgShort(pkg) + "." + named.Obj().Name()
	}
	t := p.Root.Type()
	class := ""
	for _, fname := range p.Sel {
		named := namedOf(t)
		st := structOf(t)
		if st == nil {
			return ""
		}
		f := fieldByName(st, fname)
		if f == nil {
			return ""
		}
		if named != nil && named.Obj().Pkg() != nil {
			class = pkgShort(named.Obj().Pkg()) + "." + named.Obj().Name() + "." + fname
		} else {
			class = ""
		}
		t = f.Type()
	}
	return class
}

// FieldClass names a field by its declaring struct ("shard.descriptor.mu"),
// or "" when the field is not declared on a named struct of a named
// package. This is the class an access through a non-path base (a call
// result, a map index) is checked against.
func FieldClass(field *types.Var) string {
	owner := fieldOwner(field)
	if owner == nil || owner.Obj().Pkg() == nil {
		return ""
	}
	return pkgShort(owner.Obj().Pkg()) + "." + owner.Obj().Name() + "." + field.Name()
}

// fieldOwner finds the named struct type declaring the field, by
// scanning the field's package scope (go/types gives no back-pointer).
func fieldOwner(field *types.Var) *types.Named {
	pkg := field.Pkg()
	if pkg == nil {
		return nil
	}
	scope := pkg.Scope()
	for _, name := range scope.Names() {
		tn, ok := scope.Lookup(name).(*types.TypeName)
		if !ok {
			continue
		}
		named, ok := types.Unalias(tn.Type()).(*types.Named)
		if !ok {
			continue
		}
		st, ok := named.Underlying().(*types.Struct)
		if !ok {
			continue
		}
		for i := 0; i < st.NumFields(); i++ {
			if st.Field(i) == field {
				return named
			}
		}
	}
	return nil
}

// namedOf unwraps pointers and aliases to the named type, if any.
func namedOf(t types.Type) *types.Named {
	t = types.Unalias(t)
	if ptr, ok := t.(*types.Pointer); ok {
		t = types.Unalias(ptr.Elem())
	}
	named, _ := t.(*types.Named)
	return named
}

// structOf unwraps pointers/named/aliases to the struct type, if any.
func structOf(t types.Type) *types.Struct {
	t = types.Unalias(t)
	if ptr, ok := t.(*types.Pointer); ok {
		t = types.Unalias(ptr.Elem())
	}
	st, _ := t.Underlying().(*types.Struct)
	return st
}

func fieldByName(st *types.Struct, name string) *types.Var {
	for i := 0; i < st.NumFields(); i++ {
		if st.Field(i).Name() == name {
			return st.Field(i)
		}
	}
	return nil
}

func pkgShort(pkg *types.Package) string {
	path := pkg.Path()
	if i := strings.LastIndexByte(path, '/'); i >= 0 {
		return path[i+1:]
	}
	return path
}

// resolver canonicalizes expressions to Paths within one function,
// looking through a precomputed single-assignment alias map.
type resolver struct {
	info     *types.Info
	aliases  map[*types.Var]ast.Expr // single-assignment local → its defining expr
	inFlight map[*types.Var]bool     // cycle guard during alias resolution
}

// pathOf resolves an expression to a canonical lock path. It follows
// parens, &x (a lock and its address are the same lock), *x, chains of
// field selections (including promoted fields, via the selection
// index), qualified package variables, and single-assignment local
// aliases. Anything else — calls, index expressions, literals — has no
// path.
func (r *resolver) pathOf(e ast.Expr) (Path, bool) {
	switch e := e.(type) {
	case *ast.ParenExpr:
		return r.pathOf(e.X)
	case *ast.UnaryExpr:
		if e.Op == token.AND {
			return r.pathOf(e.X)
		}
	case *ast.StarExpr:
		return r.pathOf(e.X)
	case *ast.Ident:
		v, ok := r.info.Uses[e].(*types.Var)
		if !ok {
			if v, ok = r.info.Defs[e].(*types.Var); !ok {
				return Path{}, false
			}
		}
		if def, isAlias := r.aliases[v]; isAlias && !r.inFlight[v] {
			if r.inFlight == nil {
				r.inFlight = make(map[*types.Var]bool)
			}
			r.inFlight[v] = true
			p, ok := r.pathOf(def)
			delete(r.inFlight, v)
			if ok {
				return p, true
			}
		}
		return Path{Root: v}, true
	case *ast.SelectorExpr:
		if sel := r.info.Selections[e]; sel != nil {
			if sel.Kind() != types.FieldVal {
				return Path{}, false
			}
			base, ok := r.pathOf(e.X)
			if !ok {
				return Path{}, false
			}
			// Walk the selection index so promoted (embedded) fields
			// contribute every hop's name.
			t := sel.Recv()
			segs := make([]string, 0, len(sel.Index()))
			for _, idx := range sel.Index() {
				st := structOf(t)
				if st == nil || idx >= st.NumFields() {
					return Path{}, false
				}
				f := st.Field(idx)
				segs = append(segs, f.Name())
				t = f.Type()
			}
			return base.Extend(segs...), true
		}
		// Qualified identifier: otherpkg.Var.
		if v, ok := r.info.Uses[e.Sel].(*types.Var); ok && !v.IsField() {
			return Path{Root: v}, true
		}
	}
	return Path{}, false
}

// collectAliases scans a function body for single-assignment locals
// whose initializer is (the address of) another expression — the
// "guard aliased through a local" pattern. A variable assigned more
// than once, or captured for writing, is its own root.
func collectAliases(info *types.Info, body *ast.BlockStmt) map[*types.Var]ast.Expr {
	def := make(map[*types.Var]ast.Expr)
	writes := make(map[*types.Var]int)
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for i, lhs := range n.Lhs {
				id, ok := ast.Unparen(lhs).(*ast.Ident)
				if !ok {
					continue
				}
				var v *types.Var
				if d, ok := info.Defs[id].(*types.Var); ok {
					v = d
				} else if u, ok := info.Uses[id].(*types.Var); ok {
					v = u
				}
				if v == nil {
					continue
				}
				writes[v]++
				if len(n.Rhs) == len(n.Lhs) {
					def[v] = n.Rhs[i]
				} else {
					def[v] = nil // multi-value unpacking: not an alias
				}
			}
		case *ast.ValueSpec:
			for i, name := range n.Names {
				v, ok := info.Defs[name].(*types.Var)
				if !ok {
					continue
				}
				writes[v]++
				if i < len(n.Values) && len(n.Values) == len(n.Names) {
					def[v] = n.Values[i]
				} else {
					def[v] = nil
				}
			}
		case *ast.RangeStmt:
			for _, lhs := range []ast.Expr{n.Key, n.Value} {
				if lhs == nil {
					continue
				}
				if id, ok := ast.Unparen(lhs).(*ast.Ident); ok {
					if v, ok := info.Defs[id].(*types.Var); ok {
						writes[v]++
						def[v] = nil
					} else if v, ok := info.Uses[id].(*types.Var); ok {
						writes[v]++
						def[v] = nil
					}
				}
			}
		}
		return true
	})
	out := make(map[*types.Var]ast.Expr)
	for v, e := range def {
		if e == nil || writes[v] != 1 {
			continue
		}
		// Only alias-shaped initializers: &path, path, *path. A call
		// result is a fresh value, not an alias of an existing lock.
		if aliasShaped(e) {
			out[v] = e
		}
	}
	return out
}

// aliasShaped reports whether e syntactically denotes an existing
// location (so copying it aliases a lock) rather than producing a new
// value.
func aliasShaped(e ast.Expr) bool {
	switch e := e.(type) {
	case *ast.ParenExpr:
		return aliasShaped(e.X)
	case *ast.UnaryExpr:
		return e.Op == token.AND && aliasShaped(e.X)
	case *ast.StarExpr:
		return aliasShaped(e.X)
	case *ast.Ident:
		return true
	case *ast.SelectorExpr:
		return aliasShaped(e.X)
	}
	return false
}
