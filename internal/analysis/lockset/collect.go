package lockset

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"repro/internal/analysis"
)

// GuardKind distinguishes the three guard declaration forms.
type GuardKind int

const (
	// GuardRel names a sibling lock relative to the same base object:
	// `//lockcheck:guardedby mu` on descriptor.table means d.table needs
	// d.mu, for the same d.
	GuardRel GuardKind = iota
	// GuardClass names a lock class: any held lock of that class
	// satisfies the guard (used when guard and field live on different
	// objects, e.g. a waiter node guarded by its queue's lock).
	GuardClass
	// GuardExternal means the field may only be touched from methods of
	// its declaring type — outside packages must go through the API.
	GuardExternal
)

// A GuardSpec is one field's parsed //lockcheck:guardedby annotation.
type GuardSpec struct {
	Kind  GuardKind
	Rel   []string // GuardRel: sibling path segments
	Class string   // GuardClass: the class; GuardRel: derived class of the sibling (fallback for pathless bases)
	Owner string   // declaring type, "pkgpath.Type" (external check, diagnostics)
}

func (g GuardSpec) String() string {
	switch g.Kind {
	case GuardRel:
		return strings.Join(g.Rel, ".")
	case GuardClass:
		return g.Class
	default:
		return "external"
	}
}

// Role says which function operand a contract path hangs off.
type Role int

const (
	RoleRecv  Role = iota
	RoleArg        // Index = flattened parameter index
	RoleRet        // Index = result index
	RoleClass      // Class carries a literal class name (holds only)
)

// A ContractPath is one operand-relative lock in a holds/acquires/
// releases contract: recv.outer, arg0, ret0.mu.
type ContractPath struct {
	Role  Role
	Index int
	Sel   []string
	Class string
}

// A Contract is a function's declared lock protocol. Acquire
// conditionality is not stored: it derives from the signature at each
// call site (an error result → held iff nil; a bool result → held iff
// true; otherwise unconditional).
type Contract struct {
	Holds    []ContractPath
	Acquires []ContractPath
	Releases []ContractPath
}

// A Pin is one //lockcheck:lockorder A<B directive: the intended
// acquisition order, injected into the lock-order graph as an A→B edge
// so a real edge B→A surfaces as a cycle.
type Pin struct {
	Before, After string
	Pos           token.Pos
}

// Info is everything Collect learns about one package plus its
// imported facts: which fields are guarded, which atomic words are
// lock words, which functions carry contracts, and the order pins.
type Info struct {
	Pass *analysis.Pass

	Guards    map[*types.Var]GuardSpec
	Lockwords map[*types.Var]bool
	Contracts map[*types.Func]*Contract
	Pins      []Pin

	imported      map[string]string
	contractCache map[*types.Func]*Contract
}

// Fact key prefixes. One namespace per analyzer (the checker scopes
// them), so guardedby and lockorder each export the full set they need.
const (
	factGuard    = "g:" // field objKey → encoded GuardSpec
	factLockword = "w:" // field objKey → "1"
	factContract = "c:" // func objKey → encoded Contract
	factPin      = "p:" // "A<B" → position
	factEdge     = "e:" // "A->B" → position (lockorder only)
	factSummary  = "s:" // func objKey → comma-joined acquired classes (lockorder only)
)

// Collect scans the package for lockset annotations, exports them as
// facts, and indexes the imported ones. When report is true, malformed
// directives are diagnosed (exactly one analyzer should pass true, or
// the same complaint appears twice).
func Collect(pass *analysis.Pass, report bool) *Info {
	info := &Info{
		Pass:          pass,
		Guards:        make(map[*types.Var]GuardSpec),
		Lockwords:     make(map[*types.Var]bool),
		Contracts:     make(map[*types.Func]*Contract),
		imported:      pass.ImportedFacts(),
		contractCache: make(map[*types.Func]*Contract),
	}
	bad := func(pos token.Pos, format string, args ...any) {
		if report {
			pass.Reportf(pos, format, args...)
		}
	}

	for _, f := range pass.Files {
		// Struct field annotations need the enclosing type's name.
		for _, decl := range f.Decls {
			switch decl := decl.(type) {
			case *ast.GenDecl:
				for _, spec := range decl.Specs {
					ts, ok := spec.(*ast.TypeSpec)
					if !ok {
						continue
					}
					st, ok := ts.Type.(*ast.StructType)
					if !ok {
						continue
					}
					info.collectStruct(ts, st, bad)
				}
			case *ast.FuncDecl:
				info.collectContract(decl, bad)
			}
		}
		// Pins are free-standing comments.
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				arg, ok := analysis.Directive(&ast.CommentGroup{List: []*ast.Comment{c}}, "lockorder")
				if !ok {
					continue
				}
				before, after, found := strings.Cut(arg, "<")
				before, after = strings.TrimSpace(before), strings.TrimSpace(after)
				if !found || before == "" || after == "" {
					bad(c.Pos(), "malformed //lockcheck:lockorder directive: want A<B, got %q", arg)
					continue
				}
				info.Pins = append(info.Pins, Pin{Before: before, After: after, Pos: c.Pos()})
			}
		}
	}

	// Export everything for importers.
	for v, g := range info.Guards {
		pass.ExportFact(factGuard+objKey(pass.Fset, v), encodeGuard(g))
	}
	for v := range info.Lockwords {
		pass.ExportFact(factLockword+objKey(pass.Fset, v), "1")
	}
	for fn, c := range info.Contracts {
		pass.ExportFact(factContract+funcKey(pass.Fset, fn), encodeContract(c))
	}
	for _, p := range info.Pins {
		pass.ExportFact(factPin+p.Before+"<"+p.After, pass.Fset.Position(p.Pos).String())
	}
	return info
}

// collectStruct parses guardedby/lockword annotations on the fields of
// one named struct type.
func (info *Info) collectStruct(ts *ast.TypeSpec, st *ast.StructType, bad func(token.Pos, string, ...any)) {
	owner := ""
	if info.Pass.Pkg != nil {
		owner = info.Pass.Pkg.Path() + "." + ts.Name.Name
	}
	for _, field := range st.Fields.List {
		doc := field.Doc
		if doc == nil {
			doc = field.Comment
		}
		arg, hasGuard := analysis.Directive(doc, "guardedby")
		_, hasWord := analysis.Directive(doc, "lockword")
		if !hasGuard && !hasWord {
			continue
		}
		for _, name := range field.Names {
			v, ok := info.Pass.TypesInfo.Defs[name].(*types.Var)
			if !ok {
				continue
			}
			if hasWord {
				info.Lockwords[v] = true
			}
			if !hasGuard {
				continue
			}
			spec, err := parseGuard(arg, owner, info.Pass, ts)
			if err != "" {
				bad(field.Pos(), "malformed //lockcheck:guardedby on %s: %s", name.Name, err)
				continue
			}
			info.Guards[v] = spec
		}
	}
}

// parseGuard interprets one guardedby argument. Three forms:
//
//	guardedby external              only methods of the declaring type
//	guardedby mu                    sibling path on the same base object
//	guardedby pkg.Type.field        any held lock of that class
//
// The class form is recognized by containing a dot; a sibling path may
// itself be dotted only via nested structs, which the repo does not
// use, so the ambiguity is resolved in favor of classes.
func parseGuard(arg, owner string, pass *analysis.Pass, ts *ast.TypeSpec) (GuardSpec, string) {
	arg = strings.TrimSpace(arg)
	if arg == "" {
		return GuardSpec{}, "missing guard (want a sibling field, a pkg.Type.field class, or external)"
	}
	if arg == "external" {
		return GuardSpec{Kind: GuardExternal, Owner: owner}, ""
	}
	if strings.Contains(arg, ".") {
		return GuardSpec{Kind: GuardClass, Class: arg, Owner: owner}, ""
	}
	// Sibling form: derive the guard's own class for accesses whose
	// base is not a resolvable path.
	spec := GuardSpec{Kind: GuardRel, Rel: []string{arg}, Owner: owner}
	if tn, ok := pass.TypesInfo.Defs[ts.Name].(*types.TypeName); ok {
		if named, ok := types.Unalias(tn.Type()).(*types.Named); ok {
			if st, ok := named.Underlying().(*types.Struct); ok {
				if f := fieldByName(st, arg); f != nil {
					spec.Class = pkgShort(named.Obj().Pkg()) + "." + named.Obj().Name() + "." + arg
				} else {
					return GuardSpec{}, fmt.Sprintf("no sibling field %q on %s", arg, ts.Name.Name)
				}
			}
		}
	}
	return spec, ""
}

// collectContract parses holds/acquires/releases directives on one
// function declaration.
func (info *Info) collectContract(fd *ast.FuncDecl, bad func(token.Pos, string, ...any)) {
	holds := analysis.Directives(fd.Doc, "holds")
	acquires := analysis.Directives(fd.Doc, "acquires")
	releases := analysis.Directives(fd.Doc, "releases")
	if len(holds)+len(acquires)+len(releases) == 0 {
		return
	}
	fn, ok := info.Pass.TypesInfo.Defs[fd.Name].(*types.Func)
	if !ok {
		return
	}
	c := &Contract{}
	parse := func(args []string, dst *[]ContractPath, classOK bool) {
		for _, a := range args {
			cp, err := parseContractPath(a, fd, classOK)
			if err != "" {
				bad(fd.Pos(), "malformed //lockcheck:%s directive %q on %s: %s",
					map[bool]string{true: "holds", false: "acquires/releases"}[classOK], a, fd.Name.Name, err)
				continue
			}
			*dst = append(*dst, cp)
		}
	}
	parse(holds, &c.Holds, true)
	parse(acquires, &c.Acquires, false)
	parse(releases, &c.Releases, false)
	info.Contracts[fn] = c
}

// parseContractPath resolves a directive path like "l.outer", "s",
// "return.mu", or (holds only) "pkg.Type.field" against the function's
// operands.
func parseContractPath(arg string, fd *ast.FuncDecl, classOK bool) (ContractPath, string) {
	segs := strings.Split(strings.TrimSpace(arg), ".")
	if len(segs) == 0 || segs[0] == "" {
		return ContractPath{}, "empty path"
	}
	root, rest := segs[0], segs[1:]

	if root == "return" || strings.HasPrefix(root, "return") {
		idx := 0
		if n := strings.TrimPrefix(root, "return"); n != "" {
			var err error
			if idx, err = strconv.Atoi(n); err != nil {
				return ContractPath{}, fmt.Sprintf("bad result index in %q", root)
			}
		}
		return ContractPath{Role: RoleRet, Index: idx, Sel: rest}, ""
	}
	if fd.Recv != nil && len(fd.Recv.List) == 1 && len(fd.Recv.List[0].Names) == 1 &&
		fd.Recv.List[0].Names[0].Name == root {
		return ContractPath{Role: RoleRecv, Sel: rest}, ""
	}
	idx := 0
	if fd.Type.Params != nil {
		for _, p := range fd.Type.Params.List {
			if len(p.Names) == 0 {
				idx++
				continue
			}
			for _, n := range p.Names {
				if n.Name == root {
					return ContractPath{Role: RoleArg, Index: idx, Sel: rest}, ""
				}
				idx++
			}
		}
	}
	if classOK && len(segs) > 1 {
		return ContractPath{Role: RoleClass, Class: arg}, ""
	}
	return ContractPath{}, fmt.Sprintf("%q names neither the receiver, a parameter, nor return[N]", root)
}

// --- fact encoding -------------------------------------------------

func encodeGuard(g GuardSpec) string {
	switch g.Kind {
	case GuardRel:
		return "rel|" + strings.Join(g.Rel, ".") + "|" + g.Class + "|" + g.Owner
	case GuardClass:
		return "class|" + g.Class + "||" + g.Owner
	default:
		return "external|||" + g.Owner
	}
}

func decodeGuard(s string) (GuardSpec, bool) {
	parts := strings.SplitN(s, "|", 4)
	if len(parts) != 4 {
		return GuardSpec{}, false
	}
	switch parts[0] {
	case "rel":
		return GuardSpec{Kind: GuardRel, Rel: strings.Split(parts[1], "."), Class: parts[2], Owner: parts[3]}, true
	case "class":
		return GuardSpec{Kind: GuardClass, Class: parts[1], Owner: parts[3]}, true
	case "external":
		return GuardSpec{Kind: GuardExternal, Owner: parts[3]}, true
	}
	return GuardSpec{}, false
}

func encodeContractPath(cp ContractPath) string {
	var root string
	switch cp.Role {
	case RoleRecv:
		root = "recv"
	case RoleArg:
		root = fmt.Sprintf("arg%d", cp.Index)
	case RoleRet:
		root = fmt.Sprintf("ret%d", cp.Index)
	case RoleClass:
		return "class=" + cp.Class
	}
	if len(cp.Sel) == 0 {
		return root
	}
	return root + "." + strings.Join(cp.Sel, ".")
}

func decodeContractPath(s string) (ContractPath, bool) {
	if class, ok := strings.CutPrefix(s, "class="); ok {
		return ContractPath{Role: RoleClass, Class: class}, true
	}
	segs := strings.Split(s, ".")
	root, rest := segs[0], segs[1:]
	switch {
	case root == "recv":
		return ContractPath{Role: RoleRecv, Sel: rest}, true
	case strings.HasPrefix(root, "arg"):
		idx, err := strconv.Atoi(root[3:])
		if err != nil {
			return ContractPath{}, false
		}
		return ContractPath{Role: RoleArg, Index: idx, Sel: rest}, true
	case strings.HasPrefix(root, "ret"):
		idx, err := strconv.Atoi(root[3:])
		if err != nil {
			return ContractPath{}, false
		}
		return ContractPath{Role: RoleRet, Index: idx, Sel: rest}, true
	}
	return ContractPath{}, false
}

func encodeContract(c *Contract) string {
	enc := func(cps []ContractPath) string {
		parts := make([]string, len(cps))
		for i, cp := range cps {
			parts[i] = encodeContractPath(cp)
		}
		return strings.Join(parts, ",")
	}
	return "h=" + enc(c.Holds) + ";a=" + enc(c.Acquires) + ";r=" + enc(c.Releases)
}

func decodeContract(s string) *Contract {
	c := &Contract{}
	for _, group := range strings.Split(s, ";") {
		key, val, ok := strings.Cut(group, "=")
		if !ok || val == "" {
			continue
		}
		var dst *[]ContractPath
		switch key {
		case "h":
			dst = &c.Holds
		case "a":
			dst = &c.Acquires
		case "r":
			dst = &c.Releases
		default:
			continue
		}
		for _, part := range strings.Split(val, ",") {
			if cp, ok := decodeContractPath(part); ok {
				*dst = append(*dst, cp)
			}
		}
	}
	return c
}

// --- lookups (local first, then imported facts) --------------------

// GuardFor returns the guard annotation on a field, whether declared in
// this package or imported as a fact.
func (info *Info) GuardFor(field *types.Var) (GuardSpec, bool) {
	if g, ok := info.Guards[field]; ok {
		return g, true
	}
	if enc, ok := info.imported[factGuard+objKey(info.Pass.Fset, field)]; ok {
		return decodeGuard(enc)
	}
	return GuardSpec{}, false
}

// IsLockword reports whether the field carries //lockcheck:lockword.
func (info *Info) IsLockword(field *types.Var) bool {
	if info.Lockwords[field] {
		return true
	}
	_, ok := info.imported[factLockword+objKey(info.Pass.Fset, field)]
	return ok
}

// ContractFor returns a function's declared contract, local or
// imported, or nil.
func (info *Info) ContractFor(fn *types.Func) *Contract {
	if fn == nil {
		return nil
	}
	if c, ok := info.Contracts[fn]; ok {
		return c
	}
	if c, ok := info.contractCache[fn]; ok {
		return c
	}
	var c *Contract
	if enc, ok := info.imported[factContract+funcKey(info.Pass.Fset, fn)]; ok {
		c = decodeContract(enc)
	}
	info.contractCache[fn] = c
	return c
}

// AllPins returns the package's pins merged with imported ones, sorted.
func (info *Info) AllPins() []Pin {
	seen := make(map[string]bool)
	var out []Pin
	for _, p := range info.Pins {
		seen[p.Before+"<"+p.After] = true
		out = append(out, p)
	}
	for k := range info.imported {
		spec, ok := strings.CutPrefix(k, factPin)
		if !ok {
			continue
		}
		before, after, found := strings.Cut(spec, "<")
		if !found || seen[spec] {
			continue
		}
		seen[spec] = true
		out = append(out, Pin{Before: before, After: after})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Before != out[j].Before {
			return out[i].Before < out[j].Before
		}
		return out[i].After < out[j].After
	})
	return out
}

// ImportedWithPrefix returns the imported fact entries under one of the
// exported prefixes, key-stripped. lockorder uses it for edges and
// summaries.
func (info *Info) ImportedWithPrefix(prefix string) map[string]string {
	out := make(map[string]string)
	for k, v := range info.imported {
		if rest, ok := strings.CutPrefix(k, prefix); ok {
			out[rest] = v
		}
	}
	return out
}

// EdgePrefix and SummaryPrefix expose the fact prefixes lockorder
// exports under (guardedby never writes them).
const (
	EdgePrefix    = factEdge
	SummaryPrefix = factSummary
)

// objKey is the build-stable identity of an object in fact files:
// package path, name, and declaration file:line. Positions survive the
// round trip through export data, so importers compute the same key.
func objKey(fset *token.FileSet, v types.Object) string {
	pkg := ""
	if v.Pkg() != nil {
		pkg = v.Pkg().Path()
	}
	p := fset.Position(v.Pos())
	return fmt.Sprintf("%s:%s@%s:%d", pkg, v.Name(), filepath.Base(p.Filename), p.Line)
}

// funcKey is objKey for functions (methods with the same name differ by
// declaration line).
func funcKey(fset *token.FileSet, fn *types.Func) string {
	return objKey(fset, fn)
}
