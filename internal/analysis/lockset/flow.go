package lockset

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"repro/internal/analysis/cfg"
)

// A LockRef is one held (or about-to-be-held) lock: its path within
// the current function, its global class (possibly ""), and where it
// was acquired. A class-only ref (Path.Root == nil) stands for "some
// lock of this class" — entry holds declared by class, or acquisitions
// whose base expression is not a resolvable path.
type LockRef struct {
	Path  Path
	Class string
	Pos   token.Pos
}

func (l LockRef) key() string {
	if l.Path.Root == nil {
		return "class:" + l.Class
	}
	return l.Path.Key()
}

// String renders the lock for diagnostics, preferring the in-function
// path.
func (l LockRef) String() string {
	if l.Path.Root != nil {
		return l.Path.String()
	}
	return l.Class
}

// Held is the read-only view of the lockset hooks receive. It is only
// valid for the duration of the hook call.
type Held struct{ m map[string]LockRef }

// Empty reports whether no lock is held.
func (h Held) Empty() bool { return len(h.m) == 0 }

// Has reports whether exactly this path is held.
func (h Held) Has(p Path) bool {
	_, ok := h.m[p.Key()]
	return ok
}

// HasClass reports whether any held lock has the given class.
func (h Held) HasClass(class string) bool {
	if class == "" {
		return false
	}
	for _, ref := range h.m {
		if ref.Class == class {
			return true
		}
	}
	return false
}

// Refs returns the held locks, sorted by identity for determinism.
func (h Held) Refs() []LockRef {
	out := make([]LockRef, 0, len(h.m))
	keys := make([]string, 0, len(h.m))
	for k := range h.m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		out = append(out, h.m[k])
	}
	return out
}

// Hooks are the analyzer-facing callbacks. All fire during a single
// replay pass over the converged dataflow, so each syntactic event
// fires once per control-flow context that reaches it.
type Hooks struct {
	// Access fires for every field selection outside fresh-object
	// initialization windows. base is the canonical path of the
	// selection's operand when it has one (baseOK).
	Access func(expr *ast.SelectorExpr, field *types.Var, base Path, baseOK bool, held Held)
	// Acquire fires when a lock is added to the lockset; held is the
	// set at that instant, the acquired lock excluded.
	Acquire func(pos token.Pos, lock LockRef, held Held)
	// Release fires when a release is applied. wasHeld is false for an
	// unlock on a path where the dataflow saw no matching lock;
	// deferred marks releases lowered from defer statements at exits.
	Release func(pos token.Pos, lock LockRef, wasHeld, deferred bool)
	// Call fires for every call with a resolved callee (after Access
	// walks, before the call's own lock effects are applied).
	Call func(call *ast.CallExpr, callee *types.Func, held Held)
	// Exit fires per function exit with the locks still held there,
	// entry-held locks (the caller's) excluded.
	Exit func(pos token.Pos, leaked []LockRef)
}

// condKind classifies how a call's acquisition is conditioned on its
// result.
type condKind int

const (
	condNone   condKind = iota // unconditional
	condBool                   // held iff the bool result is true
	condErrNil                 // held iff the error result is nil
)

// pendRec is a conditional acquisition bound to the local variable
// holding the deciding result, waiting for a branch to consume it.
type pendRec struct {
	kind  condKind
	locks []LockRef
}

// state is one program point's dataflow fact: the must-held lockset
// plus pending conditional acquisitions.
type state struct {
	held map[string]LockRef
	pend map[*types.Var]pendRec
}

func newState() *state {
	return &state{held: map[string]LockRef{}, pend: map[*types.Var]pendRec{}}
}

func (s *state) clone() *state {
	c := &state{held: make(map[string]LockRef, len(s.held)), pend: make(map[*types.Var]pendRec, len(s.pend))}
	for k, v := range s.held {
		c.held[k] = v
	}
	for k, v := range s.pend {
		c.pend[k] = v
	}
	return c
}

// join intersects two states (must-analysis: a lock is held at a join
// only if held on every path into it).
func join(a, b *state) *state {
	j := newState()
	for k, v := range a.held {
		if _, ok := b.held[k]; ok {
			j.held[k] = v
		}
	}
	for v, pa := range a.pend {
		if pb, ok := b.pend[v]; ok && pa.kind == pb.kind && sameLocks(pa.locks, pb.locks) {
			j.pend[v] = pa
		}
	}
	return j
}

func sameLocks(a, b []LockRef) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].key() != b[i].key() {
			return false
		}
	}
	return true
}

func (s *state) equal(o *state) bool {
	if len(s.held) != len(o.held) || len(s.pend) != len(o.pend) {
		return false
	}
	for k := range s.held {
		if _, ok := o.held[k]; !ok {
			return false
		}
	}
	for v, p := range s.pend {
		op, ok := o.pend[v]
		if !ok || op.kind != p.kind || !sameLocks(op.locks, p.locks) {
			return false
		}
	}
	return true
}

// effects is the classification of one call expression.
type effects struct {
	acquires []LockRef    // paths known at the call site
	retAcq   []retAcquire // result-rooted acquisitions (need LHS binding)
	releases []LockRef
	cond     condKind
	condIdx  int // result index carrying the bool/error condition
}

type retAcquire struct {
	index int
	sel   []string
}

// bindMode says what happens to a call's results.
type bindMode int

const (
	bindNone    bindMode = iota // value context: conditional acquires unknowable, skipped
	bindDiscard                 // statement context, results dropped: apply unconditionally
	bindAssign                  // assignment: bind conditions/results to LHS variables
)

// fnAnalysis is the per-function-declaration engine state.
type fnAnalysis struct {
	info  *Info
	res   *resolver
	fresh map[*types.Var]token.Pos // fresh local → publication pos (NoPos: never published)
	hooks *Hooks                   // nil during fixpoint, set during replay
	lits  *[]litWork               // sink for function literals found during replay
}

type litWork struct {
	lit   *ast.FuncLit
	entry *state
}

// Analyze runs the lockset dataflow over one function declaration and
// fires the hooks against the converged states. Function literals are
// analyzed too, inheriting the lockset of their creation point (right
// for the synchronous-callback idiom — Range under a lock; permissive
// for literals that escape into goroutines).
func Analyze(info *Info, fd *ast.FuncDecl, hooks Hooks) {
	if fd.Body == nil {
		return
	}
	a := &fnAnalysis{
		info:  info,
		res:   &resolver{info: info.Pass.TypesInfo, aliases: collectAliases(info.Pass.TypesInfo, fd.Body)},
		fresh: collectFresh(info.Pass.TypesInfo, fd.Body),
	}
	entry := newState()
	for _, ref := range EntryHolds(info, fd) {
		entry.held[ref.key()] = ref
	}
	a.analyzeBody(fd.Body, entry, &hooks)
}

// EntryHolds resolves a function's //lockcheck:holds contract against
// its receiver and parameters: the locks the dataflow assumes held on
// entry (and exempts from exit-leak reporting).
func EntryHolds(info *Info, fd *ast.FuncDecl) []LockRef {
	fn, ok := info.Pass.TypesInfo.Defs[fd.Name].(*types.Func)
	if !ok {
		return nil
	}
	c := info.ContractFor(fn)
	if c == nil {
		return nil
	}
	var out []LockRef
	for _, cp := range c.Holds {
		switch cp.Role {
		case RoleRecv:
			if v := recvVar(info.Pass.TypesInfo, fd); v != nil {
				p := Path{Root: v, Sel: cp.Sel}
				out = append(out, LockRef{Path: p, Class: p.Class(), Pos: fd.Pos()})
			}
		case RoleArg:
			if v := paramVar(info.Pass.TypesInfo, fd, cp.Index); v != nil {
				p := Path{Root: v, Sel: cp.Sel}
				out = append(out, LockRef{Path: p, Class: p.Class(), Pos: fd.Pos()})
			}
		case RoleClass:
			out = append(out, LockRef{Class: cp.Class, Pos: fd.Pos()})
		}
	}
	return out
}

func recvVar(info *types.Info, fd *ast.FuncDecl) *types.Var {
	if fd.Recv == nil || len(fd.Recv.List) != 1 || len(fd.Recv.List[0].Names) != 1 {
		return nil
	}
	v, _ := info.Defs[fd.Recv.List[0].Names[0]].(*types.Var)
	return v
}

func paramVar(info *types.Info, fd *ast.FuncDecl, index int) *types.Var {
	i := 0
	if fd.Type.Params == nil {
		return nil
	}
	for _, f := range fd.Type.Params.List {
		for _, n := range f.Names {
			if i == index {
				v, _ := info.Defs[n].(*types.Var)
				return v
			}
			i++
		}
		if len(f.Names) == 0 {
			i++
		}
	}
	return nil
}

// analyzeBody fixpoints one body, replays it with hooks, then recurses
// into the function literals it created.
func (a *fnAnalysis) analyzeBody(body *ast.BlockStmt, entry *state, hooks *Hooks) {
	g := cfg.New(body)
	in := make([]*state, len(g.Blocks))
	in[g.Entry.Index] = entry.clone()
	entryKeys := make(map[string]bool, len(entry.held))
	for k := range entry.held {
		entryKeys[k] = true
	}

	// Fixpoint, hooks off.
	a.hooks = nil
	work := []*cfg.Block{g.Entry}
	for len(work) > 0 {
		b := work[len(work)-1]
		work = work[:len(work)-1]
		for _, edge := range a.transfer(g, b, in[b.Index]) {
			succ, st := edge.to, edge.st
			if succ == g.Exit {
				continue // Exit holds nothing to propagate
			}
			if in[succ.Index] == nil {
				in[succ.Index] = st
				work = append(work, succ)
			} else if j := join(in[succ.Index], st); !j.equal(in[succ.Index]) {
				in[succ.Index] = j
				work = append(work, succ)
			}
		}
	}

	// Replay, hooks on, collecting literals.
	var lits []litWork
	a.hooks = hooks
	a.lits = &lits
	for _, b := range g.Blocks {
		if in[b.Index] == nil {
			continue // unreachable: no diagnostics from dead code
		}
		for _, edge := range a.transfer(g, b, in[b.Index]) {
			if edge.to != g.Exit {
				continue
			}
			a.applyDefers(g, b, edge.st)
			if hooks.Exit != nil {
				var leaked []LockRef
				for _, ref := range (Held{m: edge.st.held}).Refs() {
					if !entryKeys[ref.key()] {
						leaked = append(leaked, ref)
					}
				}
				if len(leaked) > 0 {
					hooks.Exit(exitPos(b, body), leaked)
				}
			}
		}
	}
	a.hooks = nil
	a.lits = nil

	for _, lw := range lits {
		a.analyzeBody(lw.lit.Body, lw.entry, hooks)
	}
}

// exitPos picks the reporting position for an exit edge: the return
// statement when the block ends in one, else the body's closing brace.
func exitPos(b *cfg.Block, body *ast.BlockStmt) token.Pos {
	if len(b.Nodes) > 0 {
		if r, ok := b.Nodes[len(b.Nodes)-1].(*ast.ReturnStmt); ok {
			return r.Pos()
		}
	}
	return body.End() - 1
}

// outEdge is one (successor, out-state) pair of a block transfer.
type outEdge struct {
	to *cfg.Block
	st *state
}

// transfer interprets one block against an in-state and yields the
// per-edge out-states (branch polarity applied on conditions).
func (a *fnAnalysis) transfer(g *cfg.Graph, b *cfg.Block, in *state) []outEdge {
	st := in.clone()
	for _, n := range b.Nodes {
		a.node(n, st)
	}
	var out []outEdge
	if b.Cond != nil && len(b.Succs) == 2 {
		a.exprWalk(b.Cond, st)
		for i, succ := range b.Succs {
			es := st.clone()
			a.applyCond(b.Cond, es, i == 0)
			out = append(out, outEdge{to: succ, st: es})
		}
		return out
	}
	for i, succ := range b.Succs {
		es := st
		if i > 0 {
			es = st.clone()
		}
		out = append(out, outEdge{to: succ, st: es})
	}
	return out
}

// node interprets one atomic statement or evaluated expression.
func (a *fnAnalysis) node(n ast.Node, st *state) {
	switch n := n.(type) {
	case *ast.AssignStmt:
		a.assign(n, st)
	case *ast.ExprStmt:
		if call, ok := ast.Unparen(n.X).(*ast.CallExpr); ok {
			a.callExpr(call, st, bindDiscard, nil)
		} else {
			a.exprWalk(n.X, st)
		}
	case *ast.ReturnStmt:
		for _, r := range n.Results {
			a.exprWalk(r, st)
		}
	case *ast.DeferStmt:
		a.registrationWalk(n.Call, st)
	case *ast.GoStmt:
		a.registrationWalk(n.Call, st)
	case *ast.IncDecStmt:
		a.exprWalk(n.X, st)
	case *ast.SendStmt:
		a.exprWalk(n.Chan, st)
		a.exprWalk(n.Value, st)
	case *ast.DeclStmt:
		if gd, ok := n.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				if len(vs.Values) == 1 {
					if call, ok := ast.Unparen(vs.Values[0]).(*ast.CallExpr); ok {
						lhs := make([]ast.Expr, len(vs.Names))
						for i, name := range vs.Names {
							lhs[i] = name
						}
						a.callExpr(call, st, bindAssign, lhs)
						continue
					}
				}
				for _, v := range vs.Values {
					a.exprWalk(v, st)
				}
			}
		}
	case *ast.BranchStmt, *ast.EmptyStmt, *ast.BadStmt, *ast.LabeledStmt:
	case ast.Expr:
		a.exprWalk(n, st)
	}
}

// assign interprets an assignment: invalidate state tied to the
// overwritten variables, walk the RHS (binding call results), then
// walk non-ident LHS for write accesses.
func (a *fnAnalysis) assign(s *ast.AssignStmt, st *state) {
	for _, lhs := range s.Lhs {
		if v := a.identVar(lhs); v != nil {
			a.invalidate(v, st)
		}
	}
	if len(s.Rhs) == 1 {
		if call, ok := ast.Unparen(s.Rhs[0]).(*ast.CallExpr); ok {
			a.callExpr(call, st, bindAssign, s.Lhs)
		} else {
			a.exprWalk(s.Rhs[0], st)
		}
	} else {
		for _, r := range s.Rhs {
			a.exprWalk(r, st)
		}
	}
	for _, lhs := range s.Lhs {
		if a.identVar(lhs) == nil {
			a.exprWalk(lhs, st)
		}
	}
}

// invalidate drops state that names an overwritten variable: pending
// conditions bound to it, pending locks rooted at it, and held locks
// rooted at it (the path now denotes a different lock).
func (a *fnAnalysis) invalidate(v *types.Var, st *state) {
	delete(st.pend, v)
	for pv, p := range st.pend {
		for _, l := range p.locks {
			if l.Path.Root == v {
				delete(st.pend, pv)
				break
			}
		}
	}
	for k, ref := range st.held {
		if ref.Path.Root == v {
			delete(st.held, k)
		}
	}
}

func (a *fnAnalysis) identVar(e ast.Expr) *types.Var {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return nil
	}
	if v, ok := a.info.Pass.TypesInfo.Defs[id].(*types.Var); ok {
		return v
	}
	if v, ok := a.info.Pass.TypesInfo.Uses[id].(*types.Var); ok {
		return v
	}
	return nil
}

// exprWalk visits an expression in value context: fires Access hooks
// for field selections, applies unconditional call effects, and skips
// conditional acquires (their result is consumed by an expression the
// dataflow does not model).
func (a *fnAnalysis) exprWalk(e ast.Expr, st *state) {
	switch e := e.(type) {
	case nil, *ast.BasicLit, *ast.Ident, *ast.BadExpr,
		*ast.ArrayType, *ast.MapType, *ast.ChanType, *ast.StructType,
		*ast.InterfaceType, *ast.FuncType:
	case *ast.ParenExpr:
		a.exprWalk(e.X, st)
	case *ast.SelectorExpr:
		a.selector(e, st)
	case *ast.CallExpr:
		a.callExpr(e, st, bindNone, nil)
	case *ast.UnaryExpr:
		a.exprWalk(e.X, st)
	case *ast.StarExpr:
		a.exprWalk(e.X, st)
	case *ast.BinaryExpr:
		a.exprWalk(e.X, st)
		a.exprWalk(e.Y, st)
	case *ast.KeyValueExpr:
		a.exprWalk(e.Key, st)
		a.exprWalk(e.Value, st)
	case *ast.CompositeLit:
		for _, el := range e.Elts {
			a.exprWalk(el, st)
		}
	case *ast.IndexExpr:
		a.exprWalk(e.X, st)
		a.exprWalk(e.Index, st)
	case *ast.IndexListExpr:
		a.exprWalk(e.X, st)
		for _, idx := range e.Indices {
			a.exprWalk(idx, st)
		}
	case *ast.SliceExpr:
		a.exprWalk(e.X, st)
		a.exprWalk(e.Low, st)
		a.exprWalk(e.High, st)
		a.exprWalk(e.Max, st)
	case *ast.TypeAssertExpr:
		a.exprWalk(e.X, st)
	case *ast.Ellipsis:
		a.exprWalk(e.Elt, st)
	case *ast.FuncLit:
		if a.lits != nil {
			*a.lits = append(*a.lits, litWork{lit: e, entry: &state{
				held: Held{m: st.held}.snapshot(), pend: map[*types.Var]pendRec{},
			}})
		}
	}
}

func (h Held) snapshot() map[string]LockRef {
	m := make(map[string]LockRef, len(h.m))
	for k, v := range h.m {
		m[k] = v
	}
	return m
}

// selector fires the Access hook for a field selection, then walks the
// operand (so d.a.b fires for both b and a).
func (a *fnAnalysis) selector(e *ast.SelectorExpr, st *state) {
	if sel := a.info.Pass.TypesInfo.Selections[e]; sel != nil && sel.Kind() == types.FieldVal {
		if field, ok := sel.Obj().(*types.Var); ok {
			base, baseOK := a.res.pathOf(e.X)
			exempt := baseOK && a.isFreshAt(base.Root, e.Pos())
			if !exempt && a.hooks != nil && a.hooks.Access != nil {
				a.hooks.Access(e, field, base, baseOK, Held{m: st.held})
			}
		}
	}
	a.exprWalk(e.X, st)
}

func (a *fnAnalysis) isFreshAt(root *types.Var, pos token.Pos) bool {
	if root == nil {
		return false
	}
	pub, ok := a.fresh[root]
	if !ok {
		return false
	}
	return pub == token.NoPos || pos < pub
}

// registrationWalk visits a defer/go call's operands for accesses (they
// are evaluated at registration) without applying the call's lock
// effects (it runs elsewhere/later).
func (a *fnAnalysis) registrationWalk(call *ast.CallExpr, st *state) {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.SelectorExpr:
		a.exprWalk(fun.X, st)
	case *ast.FuncLit:
		a.exprWalk(fun, st) // snapshot; the body inherits this point's lockset
	default:
		a.exprWalk(call.Fun, st)
	}
	for _, arg := range call.Args {
		a.exprWalk(arg, st)
	}
}

// callExpr walks a call's operands and applies its lock effects
// according to the binding mode.
func (a *fnAnalysis) callExpr(call *ast.CallExpr, st *state, mode bindMode, lhs []ast.Expr) {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.SelectorExpr:
		a.exprWalk(fun.X, st)
	default:
		a.exprWalk(call.Fun, st)
	}
	for _, arg := range call.Args {
		a.exprWalk(arg, st)
	}

	callee := a.calleeOf(call)
	if callee != nil && a.hooks != nil && a.hooks.Call != nil {
		a.hooks.Call(call, callee, Held{m: st.held})
	}

	eff := a.classify(call, lhs)
	for _, rel := range eff.releases {
		a.release(st, rel, call.Pos(), false)
	}
	if len(eff.acquires) == 0 && len(eff.retAcq) == 0 {
		return
	}

	locks := append([]LockRef(nil), eff.acquires...)
	if mode == bindAssign {
		for _, ra := range eff.retAcq {
			if ra.index < len(lhs) {
				if v := a.identVar(lhs[ra.index]); v != nil && v.Name() != "_" {
					p := Path{Root: v, Sel: ra.sel}
					locks = append(locks, LockRef{Path: p, Class: p.Class(), Pos: call.Pos()})
				}
			}
		}
	}
	if len(locks) == 0 {
		return
	}

	switch eff.cond {
	case condNone:
		for _, l := range locks {
			a.acquire(st, l)
		}
	case condBool, condErrNil:
		switch mode {
		case bindNone:
			// Result consumed by an enclosing expression the dataflow
			// does not model (returned, combined): leave the state
			// alone. Branch conditions are handled in applyCond.
		case bindDiscard:
			// Result thrown away: the code proceeds as if it succeeded.
			for _, l := range locks {
				a.acquire(st, l)
			}
		case bindAssign:
			if eff.condIdx < len(lhs) {
				if v := a.identVar(lhs[eff.condIdx]); v != nil && v.Name() != "_" {
					st.pend[v] = pendRec{kind: eff.cond, locks: locks}
					return
				}
			}
			// Condition discarded into _ or an unnameable place.
			for _, l := range locks {
				a.acquire(st, l)
			}
		}
	}
}

func (a *fnAnalysis) acquire(st *state, l LockRef) {
	if a.hooks != nil && a.hooks.Acquire != nil {
		a.hooks.Acquire(l.Pos, l, Held{m: st.held})
	}
	st.held[l.key()] = l
}

func (a *fnAnalysis) release(st *state, l LockRef, pos token.Pos, deferred bool) {
	key := l.key()
	_, was := st.held[key]
	if !was && l.Path.Root == nil && l.Class != "" {
		// Class-only release: drop one held lock of the class if any.
		for k, ref := range st.held {
			if ref.Class == l.Class {
				key, was = k, true
				break
			}
		}
	}
	delete(st.held, key)
	if a.hooks != nil && a.hooks.Release != nil {
		a.hooks.Release(pos, l, was, deferred)
	}
}

func (a *fnAnalysis) calleeOf(call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.SelectorExpr:
		fn, _ := a.info.Pass.TypesInfo.Uses[fun.Sel].(*types.Func)
		return fn
	case *ast.Ident:
		fn, _ := a.info.Pass.TypesInfo.Uses[fun].(*types.Func)
		return fn
	}
	return nil
}

// acquireNames and releaseNames drive the no-annotation-needed
// heuristic for lock-shaped methods. Conditionality derives from the
// result: none → unconditional, bool → success branch, error → nil
// branch.
var acquireNames = map[string]bool{
	"Lock": true, "RLock": true, "TryLock": true, "TryRLock": true,
	"LockContext": true, "TryLockFor": true,
	"Acquire": true, "AcquireContext": true, "TryAcquire": true,
	"AcquireFor": true, "AcquireTimeout": true,
}

var releaseNames = map[string]bool{
	"Unlock": true, "RUnlock": true, "Release": true,
}

// classify determines a call's lock effects: an explicit contract wins;
// otherwise lockword protocols on annotated atomic fields; otherwise
// the method-name heuristic.
func (a *fnAnalysis) classify(call *ast.CallExpr, lhs []ast.Expr) effects {
	callee := a.calleeOf(call)
	if callee == nil {
		return effects{}
	}
	if c := a.info.ContractFor(callee); c != nil {
		return a.contractEffects(c, call, callee)
	}
	if eff, ok := a.lockwordEffects(call, callee); ok {
		return eff
	}
	sig, _ := callee.Type().(*types.Signature)
	if sig == nil || sig.Recv() == nil {
		return effects{}
	}
	name := callee.Name()
	if !acquireNames[name] && !releaseNames[name] {
		return effects{}
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return effects{}
	}
	var ref LockRef
	if p, ok := a.res.pathOf(sel.X); ok {
		ref = LockRef{Path: p, Class: p.Class(), Pos: call.Pos()}
	} else if class := a.classOfExpr(sel.X); class != "" {
		ref = LockRef{Class: class, Pos: call.Pos()}
	} else {
		return effects{}
	}
	if releaseNames[name] {
		if sig.Params().Len() == 0 && sig.Results().Len() == 0 {
			return effects{releases: []LockRef{ref}}
		}
		return effects{}
	}
	cond, idx := condOf(sig)
	return effects{acquires: []LockRef{ref}, cond: cond, condIdx: idx}
}

// classOfExpr names the class of an expression that is a field
// selection but not a resolvable path (base is a call result, say).
func (a *fnAnalysis) classOfExpr(e ast.Expr) string {
	sel, ok := ast.Unparen(e).(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	s := a.info.Pass.TypesInfo.Selections[sel]
	if s == nil || s.Kind() != types.FieldVal {
		return ""
	}
	field, ok := s.Obj().(*types.Var)
	if !ok {
		return ""
	}
	return FieldClass(field)
}

// condOf derives acquisition conditionality from a signature's results.
func condOf(sig *types.Signature) (condKind, int) {
	res := sig.Results()
	for i := 0; i < res.Len(); i++ {
		if isErrorType(res.At(i).Type()) {
			return condErrNil, i
		}
	}
	for i := 0; i < res.Len(); i++ {
		if basic, ok := types.Unalias(res.At(i).Type()).(*types.Basic); ok && basic.Kind() == types.Bool {
			return condBool, i
		}
	}
	return condNone, 0
}

var errorType = types.Universe.Lookup("error").Type()

func isErrorType(t types.Type) bool { return types.Identical(t, errorType) }

// contractEffects resolves a callee's declared contract at a call site.
func (a *fnAnalysis) contractEffects(c *Contract, call *ast.CallExpr, callee *types.Func) effects {
	sig, _ := callee.Type().(*types.Signature)
	var eff effects
	if sig != nil {
		eff.cond, eff.condIdx = condOf(sig)
	}
	resolve := func(cp ContractPath) (LockRef, bool) {
		switch cp.Role {
		case RoleRecv:
			sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
			if !ok {
				return LockRef{}, false
			}
			if p, ok := a.res.pathOf(sel.X); ok {
				p = p.Extend(cp.Sel...)
				return LockRef{Path: p, Class: p.Class(), Pos: call.Pos()}, true
			}
		case RoleArg:
			if cp.Index < len(call.Args) {
				if p, ok := a.res.pathOf(call.Args[cp.Index]); ok {
					p = p.Extend(cp.Sel...)
					return LockRef{Path: p, Class: p.Class(), Pos: call.Pos()}, true
				}
			}
		}
		return LockRef{}, false
	}
	for _, cp := range c.Acquires {
		if cp.Role == RoleRet {
			eff.retAcq = append(eff.retAcq, retAcquire{index: cp.Index, sel: cp.Sel})
			continue
		}
		if ref, ok := resolve(cp); ok {
			eff.acquires = append(eff.acquires, ref)
		}
	}
	for _, cp := range c.Releases {
		if ref, ok := resolve(cp); ok {
			eff.releases = append(eff.releases, ref)
		}
	}
	if len(eff.acquires) == 0 && len(eff.retAcq) == 0 {
		eff.cond = condNone
	}
	return eff
}

// lockwordEffects recognizes the lock-word protocol on fields marked
// //lockcheck:lockword: CompareAndSwap(0, x) acquires on the true
// branch; Store(0) releases.
func (a *fnAnalysis) lockwordEffects(call *ast.CallExpr, callee *types.Func) (effects, bool) {
	if callee.Pkg() == nil || callee.Pkg().Path() != "sync/atomic" {
		return effects{}, false
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return effects{}, false
	}
	field := a.fieldVarOf(sel.X)
	if field == nil || !a.info.IsLockword(field) {
		return effects{}, false
	}
	p, pOK := a.res.pathOf(sel.X)
	var ref LockRef
	if pOK {
		ref = LockRef{Path: p, Class: p.Class(), Pos: call.Pos()}
	} else {
		ref = LockRef{Class: FieldClass(field), Pos: call.Pos()}
	}
	switch callee.Name() {
	case "CompareAndSwap":
		if len(call.Args) == 2 && isZeroLit(call.Args[0]) {
			return effects{acquires: []LockRef{ref}, cond: condBool}, true
		}
	case "Store":
		if len(call.Args) == 1 && isZeroLit(call.Args[0]) {
			return effects{releases: []LockRef{ref}}, true
		}
	}
	return effects{}, false
}

// fieldVarOf resolves the field object an expression selects, looking
// through parens, &, *, and local aliases.
func (a *fnAnalysis) fieldVarOf(e ast.Expr) *types.Var {
	switch e := e.(type) {
	case *ast.ParenExpr:
		return a.fieldVarOf(e.X)
	case *ast.UnaryExpr:
		if e.Op == token.AND {
			return a.fieldVarOf(e.X)
		}
	case *ast.StarExpr:
		return a.fieldVarOf(e.X)
	case *ast.SelectorExpr:
		if sel := a.info.Pass.TypesInfo.Selections[e]; sel != nil && sel.Kind() == types.FieldVal {
			v, _ := sel.Obj().(*types.Var)
			return v
		}
	case *ast.Ident:
		if v, ok := a.info.Pass.TypesInfo.Uses[e].(*types.Var); ok {
			if def, isAlias := a.res.aliases[v]; isAlias {
				return a.fieldVarOf(def)
			}
		}
	}
	return nil
}

func isZeroLit(e ast.Expr) bool {
	lit, ok := ast.Unparen(e).(*ast.BasicLit)
	return ok && lit.Value == "0"
}

// applyCond refines the state along one polarity of a branch
// condition: TryLock/CAS success branches, `err != nil` checks against
// pending LockContext results, and bool flags bound to TryLock results.
func (a *fnAnalysis) applyCond(cond ast.Expr, st *state, branch bool) {
	cond = ast.Unparen(cond)
	for {
		u, ok := cond.(*ast.UnaryExpr)
		if !ok || u.Op != token.NOT {
			break
		}
		cond = ast.Unparen(u.X)
		branch = !branch
	}
	switch c := cond.(type) {
	case *ast.CallExpr:
		eff := a.classify(c, nil)
		if eff.cond == condBool && branch {
			for _, l := range eff.acquires {
				a.acquire(st, l)
			}
		}
	case *ast.Ident:
		v, _ := a.info.Pass.TypesInfo.Uses[c].(*types.Var)
		if v == nil {
			return
		}
		if p, ok := st.pend[v]; ok && p.kind == condBool {
			if branch {
				for _, l := range p.locks {
					a.acquire(st, l)
				}
			}
			delete(st.pend, v)
		}
	case *ast.BinaryExpr:
		if c.Op != token.EQL && c.Op != token.NEQ {
			return
		}
		var other ast.Expr
		if isNilIdent(c.Y) {
			other = ast.Unparen(c.X)
		} else if isNilIdent(c.X) {
			other = ast.Unparen(c.Y)
		} else {
			return
		}
		// The branch where the error IS nil: true branch of ==, false
		// branch of !=.
		nilBranch := branch == (c.Op == token.EQL)
		switch o := other.(type) {
		case *ast.Ident:
			v, _ := a.info.Pass.TypesInfo.Uses[o].(*types.Var)
			if v == nil {
				return
			}
			if p, ok := st.pend[v]; ok && p.kind == condErrNil {
				if nilBranch {
					for _, l := range p.locks {
						a.acquire(st, l)
					}
				}
				delete(st.pend, v)
			}
		case *ast.CallExpr:
			eff := a.classify(o, nil)
			if eff.cond == condErrNil && nilBranch {
				for _, l := range eff.acquires {
					a.acquire(st, l)
				}
			}
		}
	}
}

func isNilIdent(e ast.Expr) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	return ok && id.Name == "nil"
}

// applyDefers lowers the function's deferred calls onto one exit edge:
// every defer registered before this exit runs, in reverse order, and
// only its releases are modeled (a defer that acquires affects nothing
// the caller can see). A deferred func literal contributes the
// releases of its top-level call statements — the
// `defer func() { mu.Unlock() }()` idiom.
func (a *fnAnalysis) applyDefers(g *cfg.Graph, from *cfg.Block, st *state) {
	var retPos token.Pos
	if len(from.Nodes) > 0 {
		if r, ok := from.Nodes[len(from.Nodes)-1].(*ast.ReturnStmt); ok {
			retPos = r.Pos()
		}
	}
	for i := len(g.Defers) - 1; i >= 0; i-- {
		d := g.Defers[i]
		if retPos != token.NoPos && d.Pos() >= retPos {
			continue // registered after (below) this return: never ran on this path
		}
		a.deferredReleases(d.Call, st)
	}
}

func (a *fnAnalysis) deferredReleases(call *ast.CallExpr, st *state) {
	if lit, ok := ast.Unparen(call.Fun).(*ast.FuncLit); ok {
		for _, s := range lit.Body.List {
			es, ok := s.(*ast.ExprStmt)
			if !ok {
				continue
			}
			if inner, ok := ast.Unparen(es.X).(*ast.CallExpr); ok {
				a.deferredReleases(inner, st)
			}
		}
		return
	}
	eff := a.classify(call, nil)
	for _, rel := range eff.releases {
		a.release(st, rel, call.Pos(), true)
	}
}

// DescribeLocks joins lock names for diagnostics.
func DescribeLocks(refs []LockRef) string {
	parts := make([]string, len(refs))
	for i, r := range refs {
		parts[i] = r.String()
	}
	return strings.Join(parts, ", ")
}
