package lockset

import (
	"go/ast"
	"go/token"
	"go/types"
)

// collectFresh finds locals initialized from a composite literal —
// objects this function created and has not yet published. Accesses to
// a fresh object's guarded fields before its publication point need no
// guard: no other goroutine can reach the object (the Reconfigure
// idiom: build the new descriptor, fill it in, then Store it).
//
// Publication is the first position where the variable itself (or its
// address) flows somewhere other than a field selection: a call
// argument, a return value, an assignment's right side, a composite
// literal element, a channel send. Selecting fields and calling
// methods through a selector do not publish; nor does a closure
// capturing the variable (the closure inherits the creation-point
// view; the tracked store is still the publication).
//
// The result maps each fresh local to its earliest publication
// position, token.NoPos when it is never published.
func collectFresh(info *types.Info, body *ast.BlockStmt) map[*types.Var]token.Pos {
	candidates := make(map[*types.Var]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if n.Tok != token.DEFINE || len(n.Lhs) != 1 || len(n.Rhs) != 1 {
				return true
			}
			id, ok := n.Lhs[0].(*ast.Ident)
			if !ok {
				return true
			}
			v, ok := info.Defs[id].(*types.Var)
			if !ok {
				return true
			}
			if isCompositeInit(n.Rhs[0]) {
				candidates[v] = true
			}
		case *ast.ValueSpec:
			if len(n.Names) == 1 && len(n.Values) == 1 && isCompositeInit(n.Values[0]) {
				if v, ok := info.Defs[n.Names[0]].(*types.Var); ok {
					candidates[v] = true
				}
			}
		}
		return true
	})
	if len(candidates) == 0 {
		return nil
	}

	fresh := make(map[*types.Var]token.Pos, len(candidates))
	for v := range candidates {
		fresh[v] = token.NoPos
	}
	var stack []ast.Node
	ast.Inspect(body, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		if id, ok := n.(*ast.Ident); ok {
			if v, ok := info.Uses[id].(*types.Var); ok && candidates[v] {
				if escapes(stack, id) {
					if cur, ok := fresh[v]; ok && (cur == token.NoPos || id.Pos() < cur) {
						fresh[v] = id.Pos()
					}
				}
			}
		}
		stack = append(stack, n)
		return true
	})
	return fresh
}

func isCompositeInit(e ast.Expr) bool {
	e = ast.Unparen(e)
	if u, ok := e.(*ast.UnaryExpr); ok && u.Op == token.AND {
		e = ast.Unparen(u.X)
	}
	_, ok := e.(*ast.CompositeLit)
	return ok
}

// escapes reports whether the identifier use, in its syntactic
// context, publishes the object. Climbing out of parens, & and *:
// only a field/method selection keeps the object private.
func escapes(stack []ast.Node, id *ast.Ident) bool {
	child := ast.Node(id)
	for i := len(stack) - 1; i >= 0; i-- {
		switch p := stack[i].(type) {
		case *ast.ParenExpr, *ast.StarExpr:
			child = p
			continue
		case *ast.UnaryExpr:
			if p.Op == token.AND {
				child = p
				continue
			}
			return true
		case *ast.SelectorExpr:
			// v.field / v.Method(): not a publication.
			return p.X != child
		case *ast.AssignStmt:
			// Writing INTO the object (v.f = x has a SelectorExpr parent,
			// handled above); v on an RHS, or reassigned, publishes.
			return true
		default:
			return true
		}
	}
	return true
}
