// Package hotpath enforces three annotation-driven call budgets.
//
// //lockcheck:cs marks a function that runs inside a lock's critical
// section or on a lock's handoff path. The paper's whole argument is
// that critical-section length sets the contention floor: one stray
// time.Now (a vDSO call, but still ~20ns and a serialization point) or
// fmt.Sprintf (allocates, may trigger GC assist) inside Unlock's
// admission-ordering walk costs every waiter, not just the caller.
// Such a function must not directly:
//
//   - call time.Now, time.Since, time.Sleep, time.After, time.Tick,
//     time.NewTimer, or time.NewTicker;
//   - call anything in fmt, log, or os (I/O and allocation);
//   - use the print/println builtins (they take runtime locks);
//   - send on, receive from, or make a channel, or select (parking on
//     a channel inside a critical section is a convoy generator);
//   - start a goroutine (scheduler entanglement), or defer a function
//     literal (the deferred closure runs while the lock is still held
//     and allocates its frame on the defer chain).
//
// //lockcheck:nosnapshot marks steady-state control-plane code —
// samplers, controllers, chaos loops — that must observe the map
// without stopping it. Map.Snapshot and the Scan family are "patient"
// operations: they quiesce stripes and are priced for occasional
// debugging or reconfiguration, not for a 100ms control loop. Such a
// function must not directly call Snapshot, SnapshotContext, Scan,
// ScanContext, ScanChunked, or ScanChunkedContext on repro/shard.Map,
// nor repro/metrics.Summarize over a full history (it copies the
// history under the recorder lock). The blessed alternative is the
// Map.SnapshotLite sampling read path. ScanChunkedStats is in the
// patient family with the rest of the scans it wraps.
//
// //lockcheck:optimistic marks a validated lock-free read section —
// the seqlock read path (package optimistic) and the backend probes it
// calls. The whole point of the path is that a Get takes zero locks
// and cannot block, and that it races writers by design, with the
// stamp validation (not mutual exclusion) supplying correctness. Such
// a function must not directly:
//
//   - call a lock-acquisition method (Lock, LockContext, TryLock,
//     TryLockFor, RLock, TryRLock, Acquire, AcquireContext, AcquireFor,
//     AcquireTimeout — on any receiver: one lock acquire and the
//     "wait-free read" claim, and its counters, are fiction);
//   - block: channel send/receive/select, goroutine launch, or
//     time.Sleep/After/Tick/NewTimer/NewTicker/AfterFunc;
//   - plainly store to shared state (assignment or ++/-- whose target
//     reaches beyond the frame: a package-level variable, or anything
//     through a pointer, slice, or map). A racing plain store is
//     exactly the torn write the seqlock cannot validate away; shared
//     mutation in a read section must go through sync/atomic (method
//     calls, which this check does not flag) or move behind the lock.
//     Writes to locals — including fields of local struct values and
//     elements of local arrays — stay in the frame and are fine.
//
// Only direct calls are checked: an interface-typed call site resolves
// to nothing at vet time, and pretending otherwise would make the
// check flaky. The repo's discipline is that hot paths call concrete
// code; the annotation makes that auditable. Function literals nested
// in an annotated function inherit its budget (they run in the same
// dynamic extent unless launched by `go`, which is itself denied in cs
// functions).
package hotpath

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/analysis"
)

// Analyzer enforces //lockcheck:cs and //lockcheck:nosnapshot budgets.
var Analyzer = &analysis.Analyzer{
	Name: "hotpath",
	Doc: `enforce //lockcheck:cs, //lockcheck:nosnapshot, and //lockcheck:optimistic call budgets

A //lockcheck:cs function (critical-section or lock-handoff code) must
not call time/fmt/log/os functions, touch channels, start goroutines,
or defer closures. A //lockcheck:nosnapshot function (steady-state
control-plane code) must not call the patient Snapshot/Scan family on
shard.Map or metrics.Summarize. A //lockcheck:optimistic function (a
validated lock-free read section) must not acquire locks, block, or
plainly store to shared state.`,
	Run: run,
}

// csDeniedTime lists the time package functions denied in cs functions.
// (time.Duration methods and constants are fine — they are arithmetic.)
var csDeniedTime = map[string]bool{
	"Now": true, "Since": true, "Until": true, "Sleep": true,
	"After": true, "Tick": true, "NewTimer": true, "NewTicker": true,
	"AfterFunc": true,
}

// csDeniedPkgs are packages no cs function may call into at all.
var csDeniedPkgs = map[string]string{
	"fmt": "formats and allocates",
	"log": "locks and writes",
	"os":  "performs I/O",
}

// patientMethods are the shard.Map methods priced for patience, not
// steady-state sampling.
var patientMethods = map[string]bool{
	"Snapshot": true, "SnapshotContext": true,
	"Scan": true, "ScanContext": true,
	"ScanChunked": true, "ScanChunkedContext": true, "ScanChunkedStats": true,
}

// optDeniedLockMethods are the repo's lock-acquisition method names (the
// core.Locker family, sync locks, and the semaphore), denied on any
// receiver inside an optimistic read section.
var optDeniedLockMethods = map[string]bool{
	"Lock": true, "LockContext": true, "TryLock": true, "TryLockFor": true,
	"RLock": true, "TryRLock": true,
	"Acquire": true, "AcquireContext": true, "AcquireFor": true, "AcquireTimeout": true,
}

// optDeniedTime are the time functions that block or enlist the runtime
// timer machinery; clock reads (Now, Since) are allowed — the read path
// itself is measured.
var optDeniedTime = map[string]bool{
	"Sleep": true, "After": true, "Tick": true,
	"NewTimer": true, "NewTicker": true, "AfterFunc": true,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if _, ok := analysis.Directive(fd.Doc, "cs"); ok {
				checkCS(pass, fd)
			}
			if _, ok := analysis.Directive(fd.Doc, "nosnapshot"); ok {
				checkNoSnapshot(pass, fd)
			}
			if _, ok := analysis.Directive(fd.Doc, "optimistic"); ok {
				checkOptimistic(pass, fd)
			}
		}
	}
	return nil
}

// checkCS walks a //lockcheck:cs function body (including nested
// function literals) for blocking or allocating constructs.
func checkCS(pass *analysis.Pass, fd *ast.FuncDecl) {
	name := fd.Name.Name
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.CallExpr:
			checkCSCall(pass, name, s)
		case *ast.SendStmt:
			pass.Reportf(s.Pos(), "channel send in critical-section function %s parks waiters behind the scheduler", name)
		case *ast.UnaryExpr:
			if s.Op.String() == "<-" {
				pass.Reportf(s.Pos(), "channel receive in critical-section function %s parks waiters behind the scheduler", name)
			}
		case *ast.SelectStmt:
			pass.Reportf(s.Pos(), "select in critical-section function %s parks waiters behind the scheduler", name)
		case *ast.GoStmt:
			pass.Reportf(s.Pos(), "goroutine launch in critical-section function %s entangles the handoff path with the scheduler", name)
		case *ast.DeferStmt:
			if _, isLit := ast.Unparen(s.Call.Fun).(*ast.FuncLit); isLit {
				pass.Reportf(s.Pos(), "deferred closure in critical-section function %s allocates and runs while the lock is held", name)
			}
		}
		return true
	})
}

// checkCSCall classifies one call inside a cs function.
func checkCSCall(pass *analysis.Pass, name string, call *ast.CallExpr) {
	fun := ast.Unparen(call.Fun)

	// print/println builtins.
	if id, ok := fun.(*ast.Ident); ok {
		if b, ok := pass.TypesInfo.Uses[id].(*types.Builtin); ok {
			switch b.Name() {
			case "print", "println":
				pass.Reportf(call.Pos(), "%s builtin in critical-section function %s takes runtime locks", b.Name(), name)
			case "make":
				if len(call.Args) > 0 && isChanType(pass, call.Args[0]) {
					pass.Reportf(call.Pos(), "channel allocation in critical-section function %s", name)
				}
			}
			return
		}
	}

	sel, ok := fun.(*ast.SelectorExpr)
	if !ok {
		return
	}
	fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil {
		return
	}
	switch path := fn.Pkg().Path(); {
	case path == "time" && csDeniedTime[fn.Name()]:
		pass.Reportf(call.Pos(), "time.%s in critical-section function %s extends the critical section for every waiter; hoist it outside the lock", fn.Name(), name)
	default:
		if why, denied := csDeniedPkgs[path]; denied {
			pass.Reportf(call.Pos(), "%s.%s in critical-section function %s %s while the lock is held", path, fn.Name(), name, why)
		}
	}
}

// checkNoSnapshot walks a //lockcheck:nosnapshot function body for
// patient map operations.
func checkNoSnapshot(pass *analysis.Pass, fd *ast.FuncDecl) {
	name := fd.Name.Name
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok {
			return true
		}
		fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
		if !ok || fn.Pkg() == nil {
			return true
		}
		sig, ok := fn.Type().(*types.Signature)
		if !ok {
			return true
		}
		if sig.Recv() != nil {
			if patientMethods[fn.Name()] && isShardMap(sig.Recv().Type()) {
				pass.Reportf(call.Pos(),
					"(*shard.Map).%s in //lockcheck:nosnapshot function %s quiesces stripes; steady-state paths must use the lite sample path",
					fn.Name(), name)
			}
			return true
		}
		if fn.Pkg().Path() == "repro/metrics" && fn.Name() == "Summarize" {
			pass.Reportf(call.Pos(),
				"metrics.Summarize in //lockcheck:nosnapshot function %s copies history under the recorder lock; sample incrementally instead",
				name)
		}
		return true
	})
}

// checkOptimistic walks a //lockcheck:optimistic function body
// (including nested function literals) for lock acquisitions, blocking
// constructs, and plain stores to shared state.
func checkOptimistic(pass *analysis.Pass, fd *ast.FuncDecl) {
	name := fd.Name.Name
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.CallExpr:
			checkOptCall(pass, name, s)
		case *ast.SendStmt:
			pass.Reportf(s.Pos(), "channel send in optimistic read section %s can block; the validated read path must stay wait-free", name)
		case *ast.UnaryExpr:
			if s.Op == token.ARROW {
				pass.Reportf(s.Pos(), "channel receive in optimistic read section %s can block; the validated read path must stay wait-free", name)
			}
		case *ast.SelectStmt:
			pass.Reportf(s.Pos(), "select in optimistic read section %s can block; the validated read path must stay wait-free", name)
		case *ast.GoStmt:
			pass.Reportf(s.Pos(), "goroutine launch in optimistic read section %s entangles the lock-free path with the scheduler", name)
		case *ast.AssignStmt:
			if s.Tok != token.DEFINE {
				for _, lhs := range s.Lhs {
					checkOptStore(pass, fd, name, lhs)
				}
			}
		case *ast.IncDecStmt:
			checkOptStore(pass, fd, name, s.X)
		}
		return true
	})
}

// checkOptCall classifies one call inside an optimistic read section:
// lock-acquisition methods and blocking time functions are denied.
func checkOptCall(pass *analysis.Pass, name string, call *ast.CallExpr) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return
	}
	fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil {
		return
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return
	}
	if sig.Recv() != nil && optDeniedLockMethods[fn.Name()] {
		pass.Reportf(call.Pos(), "%s call in optimistic read section %s acquires a lock; the validated read path must take zero locks (fall back through the caller instead)", fn.Name(), name)
		return
	}
	if sig.Recv() == nil && fn.Pkg().Path() == "time" && optDeniedTime[fn.Name()] {
		pass.Reportf(call.Pos(), "time.%s in optimistic read section %s blocks; the validated read path must stay wait-free", fn.Name(), name)
	}
}

// checkOptStore reports a plain (non-atomic) store whose target reaches
// shared state: the assignment races concurrent readers/writers in a
// way the seqlock cannot validate away. It walks the LHS toward its
// root; any pointer-deref, slice, or map step — or a root identifier
// not local to the annotated function — makes the target shared.
// Fields of local struct values and elements of local arrays stay in
// the frame and pass.
func checkOptStore(pass *analysis.Pass, fd *ast.FuncDecl, name string, lhs ast.Expr) {
	e := ast.Unparen(lhs)
	for {
		switch x := e.(type) {
		case *ast.Ident:
			if x.Name == "_" {
				return
			}
			obj := pass.TypesInfo.ObjectOf(x)
			if obj != nil && obj.Pos() >= fd.Pos() && obj.Pos() <= fd.End() {
				return // declared in this function (param or body): frame-private
			}
			pass.Reportf(lhs.Pos(), "plain store to shared state (%s) in optimistic read section %s races the writers it reads past; use sync/atomic or move the write behind the lock", x.Name, name)
			return
		case *ast.SelectorExpr:
			if tv, ok := pass.TypesInfo.Types[x.X]; ok {
				if _, isPtr := tv.Type.Underlying().(*types.Pointer); isPtr {
					pass.Reportf(lhs.Pos(), "plain store through a pointer in optimistic read section %s races the writers it reads past; use sync/atomic or move the write behind the lock", name)
					return
				}
			}
			e = ast.Unparen(x.X)
		case *ast.IndexExpr:
			if tv, ok := pass.TypesInfo.Types[x.X]; ok {
				switch tv.Type.Underlying().(type) {
				case *types.Slice, *types.Map, *types.Pointer:
					pass.Reportf(lhs.Pos(), "plain store through a slice or map in optimistic read section %s races the writers it reads past; use sync/atomic or move the write behind the lock", name)
					return
				}
			}
			e = ast.Unparen(x.X)
		case *ast.StarExpr:
			pass.Reportf(lhs.Pos(), "plain store through a pointer in optimistic read section %s races the writers it reads past; use sync/atomic or move the write behind the lock", name)
			return
		default:
			return
		}
	}
}

// isChanType reports whether the expression denotes a channel type
// (the first argument of make).
func isChanType(pass *analysis.Pass, e ast.Expr) bool {
	tv, ok := pass.TypesInfo.Types[e]
	if !ok || !tv.IsType() {
		return false
	}
	_, isChan := tv.Type.Underlying().(*types.Chan)
	return isChan
}

// isShardMap reports whether t is shard.Map or *shard.Map.
func isShardMap(t types.Type) bool {
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "repro/shard" && obj.Name() == "Map"
}
