// Package hp is the hotpath fixture: annotated twins of the repo's
// Unlock paths and control loops with the budget violations the
// analyzer denies, plus clean shapes that must stay silent.
package hp

import (
	"fmt"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"repro/metrics"
	"repro/shard"
)

var word atomic.Uint64

// unlock is the healthy critical-section shape: atomics, arithmetic,
// calls into un-denied code.
//
//lockcheck:cs
func unlock() {
	word.Add(1)
	helper()
}

func helper() { word.Store(0) }

// badUnlock commits every sin at once.
//
//lockcheck:cs
func badUnlock(ch chan int, d time.Duration) {
	t := time.Now()          // want `time\.Now in critical-section function badUnlock`
	time.Sleep(d)            // want `time\.Sleep in critical-section function badUnlock`
	fmt.Println(t)           // want `fmt\.Println in critical-section function badUnlock`
	os.Getenv("HOME")        // want `os\.Getenv in critical-section function badUnlock`
	println("held")          // want `println builtin in critical-section function badUnlock`
	ch <- 1                  // want `channel send in critical-section function badUnlock`
	<-ch                     // want `channel receive in critical-section function badUnlock`
	_ = make(chan int)       // want `channel allocation in critical-section function badUnlock`
	go helper()              // want `goroutine launch in critical-section function badUnlock`
	defer func() { _ = t }() // want `deferred closure in critical-section function badUnlock`
	select {                 // want `select in critical-section function badUnlock`
	default:
	}
}

// nested violations inside a function literal still run in the critical
// section's dynamic extent.
//
//lockcheck:cs
func nestedCS() {
	f := func() {
		time.Now() // want `time\.Now in critical-section function nestedCS`
	}
	f()
}

// durations are arithmetic, not clock reads; make of a non-channel and
// a deferred named function (no closure allocation) are fine.
//
//lockcheck:cs
func cleanCS(d time.Duration) int {
	defer helper()
	buf := make([]byte, 0, int(d.Nanoseconds()))
	return len(buf)
}

// unannotated functions may do anything.
func notCS() {
	time.Now()
	fmt.Println("fine")
}

// sampler is the healthy control-loop shape: no patient calls.
//
//lockcheck:nosnapshot
func sampler(m *shard.Map) (uint64, bool) {
	return m.Get(42)
}

// badSampler calls the patient family.
//
//lockcheck:nosnapshot
func badSampler(m *shard.Map, h metrics.History) {
	m.Snapshot()                                                        // want `\(\*shard\.Map\)\.Snapshot in //lockcheck:nosnapshot function badSampler`
	_ = m.Scan(0, 10, func(k, v uint64) bool { return true })           // want `\(\*shard\.Map\)\.Scan in //lockcheck:nosnapshot function badSampler`
	_ = m.ScanChunked(0, 10, 4, func(k, v uint64) bool { return true }) // want `\(\*shard\.Map\)\.ScanChunked in //lockcheck:nosnapshot function badSampler`
	metrics.Summarize(h, 8)                                             // want `metrics\.Summarize in //lockcheck:nosnapshot function badSampler`
}

// snapshots are fine outside the annotation.
func patient(m *shard.Map) shard.Snapshot {
	return m.Snapshot()
}

var sharedWord uint64
var sharedSlice = make([]uint64, 8)
var sharedMap = map[uint64]uint64{}

type box struct{ v uint64 }

var sharedBox box

// goodOptimistic is the healthy validated-read shape: loads from
// anywhere, atomics for shared effects, plain stores only to frame
// state (locals, fields of local struct values, local array elements).
//
//lockcheck:optimistic
func goodOptimistic(p *box) uint64 {
	var local uint64
	local = sharedWord // loads are the whole point
	local++
	var b box
	b.v = local // field of a local value: frame-private
	var arr [2]uint64
	arr[0] = b.v // local array element: frame-private
	word.Add(1)  // shared effects go through sync/atomic
	_ = p.v
	_, _ = time.Now(), arr
	return b.v
}

// badOptimistic takes a lock, blocks, and stores to shared state.
//
//lockcheck:optimistic
func badOptimistic(mu *sync.Mutex, rw *sync.RWMutex, ch chan int, p *box, d time.Duration) {
	mu.Lock()     // want `Lock call in optimistic read section badOptimistic`
	mu.TryLock()  // want `TryLock call in optimistic read section badOptimistic`
	rw.RLock()    // want `RLock call in optimistic read section badOptimistic`
	time.Sleep(d) // want `time\.Sleep in optimistic read section badOptimistic`
	ch <- 1       // want `channel send in optimistic read section badOptimistic`
	<-ch          // want `channel receive in optimistic read section badOptimistic`
	go helper()   // want `goroutine launch in optimistic read section badOptimistic`
	select {      // want `select in optimistic read section badOptimistic`
	default:
	}
	sharedWord = 1     // want `plain store to shared state \(sharedWord\) in optimistic read section badOptimistic`
	sharedWord++       // want `plain store to shared state \(sharedWord\) in optimistic read section badOptimistic`
	sharedBox.v = 2    // want `plain store to shared state \(sharedBox\) in optimistic read section badOptimistic`
	p.v = 3            // want `plain store through a pointer in optimistic read section badOptimistic`
	sharedSlice[0] = 4 // want `plain store through a slice or map in optimistic read section badOptimistic`
	sharedMap[1] = 5   // want `plain store through a slice or map in optimistic read section badOptimistic`
	*(&sharedWord) = 6 // want `plain store through a pointer in optimistic read section badOptimistic`
}

// nested literals inherit the optimistic budget.
//
//lockcheck:optimistic
func nestedOptimistic() {
	f := func() {
		sharedWord = 7 // want `plain store to shared state \(sharedWord\) in optimistic read section nestedOptimistic`
	}
	f()
}

// the patient family grew ScanChunkedStats; nosnapshot covers it too.
//
//lockcheck:nosnapshot
func badStatsSampler(m *shard.Map) {
	m.ScanChunkedStats(nil, 0, 10, 4, func(k, v uint64) bool { return true }) // want `\(\*shard\.Map\)\.ScanChunkedStats in //lockcheck:nosnapshot function badStatsSampler`
}
