// Package deque implements a growable ring-buffer double-ended queue of
// uint64 values, standing in for C++ std::deque in the producer-consumer
// (§6.7) and buffer-pool (§6.11) benchmarks.
package deque

// Deque is a double-ended queue. The zero value is ready to use.
type Deque struct {
	buf        []uint64
	head, size int
}

// Len returns the number of elements.
func (d *Deque) Len() int { return d.size }

func (d *Deque) grow() {
	n := len(d.buf) * 2
	if n == 0 {
		n = 8
	}
	nb := make([]uint64, n)
	for i := 0; i < d.size; i++ {
		nb[i] = d.buf[(d.head+i)%len(d.buf)]
	}
	d.buf = nb
	d.head = 0
}

// PushBack appends v at the back.
func (d *Deque) PushBack(v uint64) {
	if d.size == len(d.buf) {
		d.grow()
	}
	d.buf[(d.head+d.size)%len(d.buf)] = v
	d.size++
}

// PushFront prepends v at the front.
func (d *Deque) PushFront(v uint64) {
	if d.size == len(d.buf) {
		d.grow()
	}
	d.head = (d.head - 1 + len(d.buf)) % len(d.buf)
	d.buf[d.head] = v
	d.size++
}

// PopFront removes and returns the front element; ok is false when empty.
func (d *Deque) PopFront() (v uint64, ok bool) {
	if d.size == 0 {
		return 0, false
	}
	v = d.buf[d.head]
	d.head = (d.head + 1) % len(d.buf)
	d.size--
	return v, true
}

// PopBack removes and returns the back element; ok is false when empty.
func (d *Deque) PopBack() (v uint64, ok bool) {
	if d.size == 0 {
		return 0, false
	}
	d.size--
	return d.buf[(d.head+d.size)%len(d.buf)], true
}

// Front returns the front element without removing it.
func (d *Deque) Front() (v uint64, ok bool) {
	if d.size == 0 {
		return 0, false
	}
	return d.buf[d.head], true
}
