package deque

import (
	"testing"
	"testing/quick"

	"repro/internal/xrand"
)

func TestFIFO(t *testing.T) {
	var d Deque
	for i := uint64(0); i < 100; i++ {
		d.PushBack(i)
	}
	for i := uint64(0); i < 100; i++ {
		v, ok := d.PopFront()
		if !ok || v != i {
			t.Fatalf("PopFront=(%d,%v) want %d", v, ok, i)
		}
	}
	if _, ok := d.PopFront(); ok {
		t.Fatal("pop from empty succeeded")
	}
}

func TestLIFO(t *testing.T) {
	var d Deque
	for i := uint64(0); i < 100; i++ {
		d.PushBack(i)
	}
	for i := uint64(99); ; i-- {
		v, ok := d.PopBack()
		if !ok || v != i {
			t.Fatalf("PopBack=(%d,%v) want %d", v, ok, i)
		}
		if i == 0 {
			break
		}
	}
}

func TestPushFront(t *testing.T) {
	var d Deque
	d.PushFront(2)
	d.PushFront(1)
	d.PushBack(3)
	want := []uint64{1, 2, 3}
	for _, w := range want {
		if v, _ := d.PopFront(); v != w {
			t.Fatalf("got %d want %d", v, w)
		}
	}
}

func TestFront(t *testing.T) {
	var d Deque
	if _, ok := d.Front(); ok {
		t.Fatal("Front of empty")
	}
	d.PushBack(9)
	if v, ok := d.Front(); !ok || v != 9 {
		t.Fatalf("Front=(%d,%v)", v, ok)
	}
	if d.Len() != 1 {
		t.Fatal("Front must not pop")
	}
}

// TestAgainstSliceModel drives random operations against a slice model.
func TestAgainstSliceModel(t *testing.T) {
	f := func(seed uint64) bool {
		rng := xrand.New(seed)
		var d Deque
		var model []uint64
		for op := 0; op < 1000; op++ {
			switch rng.Intn(4) {
			case 0:
				v := rng.Next()
				d.PushBack(v)
				model = append(model, v)
			case 1:
				v := rng.Next()
				d.PushFront(v)
				model = append([]uint64{v}, model...)
			case 2:
				v, ok := d.PopFront()
				if ok != (len(model) > 0) {
					return false
				}
				if ok {
					if v != model[0] {
						return false
					}
					model = model[1:]
				}
			case 3:
				v, ok := d.PopBack()
				if ok != (len(model) > 0) {
					return false
				}
				if ok {
					if v != model[len(model)-1] {
						return false
					}
					model = model[:len(model)-1]
				}
			}
			if d.Len() != len(model) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
