package rbtree

import (
	"math/rand"
	"testing"
)

func TestPlainOrderedOps(t *testing.T) {
	tr := NewPlain()
	rng := rand.New(rand.NewSource(1))
	present := map[uint64]uint64{}
	for i := 0; i < 5000; i++ {
		k := uint64(rng.Intn(2000))
		switch rng.Intn(3) {
		case 0, 1:
			v := rng.Uint64()
			_, had := present[k]
			if fresh := tr.Put(k, v); fresh == had {
				t.Fatalf("Put(%d) fresh=%v, had=%v", k, fresh, had)
			}
			present[k] = v
		case 2:
			_, had := present[k]
			if got := tr.Delete(k); got != had {
				t.Fatalf("Delete(%d)=%v, had=%v", k, got, had)
			}
			delete(present, k)
		}
		if i%512 == 0 && !tr.CheckInvariants() {
			t.Fatalf("invariants violated at op %d", i)
		}
	}
	if tr.Len() != len(present) {
		t.Fatalf("Len=%d want %d", tr.Len(), len(present))
	}
	if !tr.CheckInvariants() {
		t.Fatal("final invariants violated")
	}
	var last uint64
	first := true
	n := 0
	tr.Range(func(k, v uint64) bool {
		if !first && k <= last {
			t.Fatalf("Range not ascending: %d after %d", k, last)
		}
		if present[k] != v {
			t.Fatalf("Range yielded %d=%d, want %d", k, v, present[k])
		}
		last, first = k, false
		n++
		return true
	})
	if n != len(present) {
		t.Fatalf("Range yielded %d pairs want %d", n, len(present))
	}
}

func TestPlainScanBounds(t *testing.T) {
	tr := NewPlain()
	for _, k := range []uint64{0, 5, 10, 15, ^uint64(0)} {
		tr.Put(k, k*2)
	}
	collect := func(lo, hi uint64) []uint64 {
		var out []uint64
		tr.Scan(lo, hi, func(k, _ uint64) bool { out = append(out, k); return true })
		return out
	}
	for _, tc := range []struct {
		lo, hi uint64
		want   []uint64
	}{
		{5, 10, []uint64{5, 10}},
		{6, 9, nil},
		{0, 0, []uint64{0}},
		{16, ^uint64(0), []uint64{^uint64(0)}},
		{0, ^uint64(0), []uint64{0, 5, 10, 15, ^uint64(0)}},
	} {
		got := collect(tc.lo, tc.hi)
		if len(got) != len(tc.want) {
			t.Fatalf("Scan[%d,%d] = %v want %v", tc.lo, tc.hi, got, tc.want)
		}
		for i := range tc.want {
			if got[i] != tc.want[i] {
				t.Fatalf("Scan[%d,%d] = %v want %v", tc.lo, tc.hi, got, tc.want)
			}
		}
	}
	// Early stop.
	n := 0
	tr.Scan(0, ^uint64(0), func(_, _ uint64) bool { n++; return false })
	if n != 1 {
		t.Fatalf("Scan visited %d pairs after immediate stop", n)
	}
	if k, ok := tr.Min(); !ok || k != 0 {
		t.Fatalf("Min=%d,%v want 0,true", k, ok)
	}
}
