// Package rbtree implements a left-leaning red-black tree mapping uint64
// keys to uint64 values. It stands in for C++ std::map — "implemented via
// a red-black tree" — inside the LRUCache benchmark (§6.9), which ports
// CEPH's SimpleLRU.
//
// Each node carries a synthetic virtual address drawn from a caller-
// supplied bump allocator, and every node visited by an operation is
// reported through the Touch callback, so the simulator charges the real
// pointer-chasing footprint of the tree: the paper's point is precisely
// that a sequence of short lookups eventually touches the whole structure
// ("the CS may be short in average duration but wide").
package rbtree

const (
	red   = true
	black = false
)

type node struct {
	key, val    uint64
	addr        uint64
	left, right *node
	color       bool
}

// Tree is a left-leaning red-black tree. Not safe for concurrent use.
type Tree struct {
	root *node
	size int

	// NextAddr supplies the virtual address for each new node (e.g. a
	// bump pointer into a shared region). Nil means addresses are 0.
	NextAddr func() uint64
	// Touch, if non-nil, receives the address of every node visited.
	Touch func(addr uint64)
}

// New returns an empty tree.
func New() *Tree { return &Tree{} }

// Len returns the number of keys.
func (t *Tree) Len() int { return t.size }

func (t *Tree) touch(n *node) {
	if t.Touch != nil && n != nil {
		t.Touch(n.addr)
	}
}

func isRed(n *node) bool { return n != nil && n.color == red }

func (t *Tree) rotateLeft(h *node) *node {
	x := h.right
	h.right = x.left
	x.left = h
	x.color = h.color
	h.color = red
	return x
}

func (t *Tree) rotateRight(h *node) *node {
	x := h.left
	h.left = x.right
	x.right = h
	x.color = h.color
	h.color = red
	return x
}

func flipColors(h *node) {
	h.color = !h.color
	h.left.color = !h.left.color
	h.right.color = !h.right.color
}

// Get returns the value for key and whether it was present.
func (t *Tree) Get(key uint64) (uint64, bool) {
	n := t.root
	for n != nil {
		t.touch(n)
		switch {
		case key < n.key:
			n = n.left
		case key > n.key:
			n = n.right
		default:
			return n.val, true
		}
	}
	return 0, false
}

// Put inserts or updates key.
func (t *Tree) Put(key, val uint64) {
	t.root = t.insert(t.root, key, val)
	t.root.color = black
}

func (t *Tree) insert(h *node, key, val uint64) *node {
	if h == nil {
		t.size++
		n := &node{key: key, val: val, color: red}
		if t.NextAddr != nil {
			n.addr = t.NextAddr()
		}
		t.touch(n)
		return n
	}
	t.touch(h)
	switch {
	case key < h.key:
		h.left = t.insert(h.left, key, val)
	case key > h.key:
		h.right = t.insert(h.right, key, val)
	default:
		h.val = val
	}
	if isRed(h.right) && !isRed(h.left) {
		h = t.rotateLeft(h)
	}
	if isRed(h.left) && isRed(h.left.left) {
		h = t.rotateRight(h)
	}
	if isRed(h.left) && isRed(h.right) {
		flipColors(h)
	}
	return h
}

// Delete removes key; it reports whether the key was present.
func (t *Tree) Delete(key uint64) bool {
	if _, ok := t.Get(key); !ok {
		return false
	}
	if !isRed(t.root.left) && !isRed(t.root.right) {
		t.root.color = red
	}
	t.root = t.delete(t.root, key)
	if t.root != nil {
		t.root.color = black
	}
	t.size--
	return true
}

func moveRedLeft(t *Tree, h *node) *node {
	flipColors(h)
	if isRed(h.right.left) {
		h.right = t.rotateRight(h.right)
		h = t.rotateLeft(h)
		flipColors(h)
	}
	return h
}

func moveRedRight(t *Tree, h *node) *node {
	flipColors(h)
	if isRed(h.left.left) {
		h = t.rotateRight(h)
		flipColors(h)
	}
	return h
}

func fixUp(t *Tree, h *node) *node {
	if isRed(h.right) {
		h = t.rotateLeft(h)
	}
	if isRed(h.left) && isRed(h.left.left) {
		h = t.rotateRight(h)
	}
	if isRed(h.left) && isRed(h.right) {
		flipColors(h)
	}
	return h
}

func minNode(h *node) *node {
	for h.left != nil {
		h = h.left
	}
	return h
}

func (t *Tree) deleteMin(h *node) *node {
	if h.left == nil {
		return nil
	}
	if !isRed(h.left) && !isRed(h.left.left) {
		h = moveRedLeft(t, h)
	}
	h.left = t.deleteMin(h.left)
	return fixUp(t, h)
}

func (t *Tree) delete(h *node, key uint64) *node {
	t.touch(h)
	if key < h.key {
		if !isRed(h.left) && !isRed(h.left.left) {
			h = moveRedLeft(t, h)
		}
		h.left = t.delete(h.left, key)
	} else {
		if isRed(h.left) {
			h = t.rotateRight(h)
		}
		if key == h.key && h.right == nil {
			return nil
		}
		if !isRed(h.right) && !isRed(h.right.left) {
			h = moveRedRight(t, h)
		}
		if key == h.key {
			m := minNode(h.right)
			t.touch(m)
			h.key, h.val, h.addr = m.key, m.val, m.addr
			h.right = t.deleteMin(h.right)
		} else {
			h.right = t.delete(h.right, key)
		}
	}
	return fixUp(t, h)
}

// CheckInvariants verifies BST order, no red right links, no double red
// left links, and uniform black height. For tests.
func (t *Tree) CheckInvariants() bool {
	if isRed(t.root) {
		return false
	}
	bh := -1
	var walk func(n *node, min, max uint64, blacks int) bool
	walk = func(n *node, min, max uint64, blacks int) bool {
		if n == nil {
			if bh == -1 {
				bh = blacks
			}
			return bh == blacks
		}
		if n.key < min || n.key > max {
			return false
		}
		if isRed(n.right) {
			return false
		}
		if isRed(n) && isRed(n.left) {
			return false
		}
		if !isRed(n) {
			blacks++
		}
		lmax := n.key
		if lmax > 0 {
			lmax--
		}
		return walk(n.left, min, lmax, blacks) && walk(n.right, n.key+1, max, blacks)
	}
	return walk(t.root, 0, ^uint64(0), 0)
}
