package rbtree

import (
	"testing"
	"testing/quick"

	"repro/internal/xrand"
)

func TestPutGet(t *testing.T) {
	tr := New()
	for i := uint64(1); i <= 100; i++ {
		tr.Put(i, i*10)
	}
	if tr.Len() != 100 {
		t.Fatalf("Len=%d", tr.Len())
	}
	for i := uint64(1); i <= 100; i++ {
		v, ok := tr.Get(i)
		if !ok || v != i*10 {
			t.Fatalf("Get(%d)=(%d,%v)", i, v, ok)
		}
	}
	if _, ok := tr.Get(1000); ok {
		t.Fatal("phantom key")
	}
}

func TestPutOverwrites(t *testing.T) {
	tr := New()
	tr.Put(5, 1)
	tr.Put(5, 2)
	if tr.Len() != 1 {
		t.Fatalf("Len=%d", tr.Len())
	}
	if v, _ := tr.Get(5); v != 2 {
		t.Fatalf("v=%d", v)
	}
}

func TestDelete(t *testing.T) {
	tr := New()
	for i := uint64(1); i <= 50; i++ {
		tr.Put(i, i)
	}
	for i := uint64(1); i <= 50; i += 2 {
		if !tr.Delete(i) {
			t.Fatalf("Delete(%d) missed", i)
		}
	}
	if tr.Delete(1) {
		t.Fatal("double delete succeeded")
	}
	if tr.Len() != 25 {
		t.Fatalf("Len=%d", tr.Len())
	}
	for i := uint64(1); i <= 50; i++ {
		_, ok := tr.Get(i)
		if want := i%2 == 0; ok != want {
			t.Fatalf("Get(%d)=%v want %v", i, ok, want)
		}
	}
	if !tr.CheckInvariants() {
		t.Fatal("invariants violated after deletes")
	}
}

func TestInvariantsUnderRandomOps(t *testing.T) {
	f := func(seed uint64) bool {
		rng := xrand.New(seed)
		tr := New()
		model := map[uint64]uint64{}
		for op := 0; op < 400; op++ {
			k := uint64(rng.Intn(100)) + 1
			switch rng.Intn(3) {
			case 0, 1:
				v := rng.Next()
				tr.Put(k, v)
				model[k] = v
			case 2:
				got := tr.Delete(k)
				_, want := model[k]
				if got != want {
					return false
				}
				delete(model, k)
			}
			if !tr.CheckInvariants() {
				return false
			}
			if tr.Len() != len(model) {
				return false
			}
		}
		for k, v := range model {
			got, ok := tr.Get(k)
			if !ok || got != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestTouchAndAddresses(t *testing.T) {
	tr := New()
	next := uint64(0x1000)
	tr.NextAddr = func() uint64 { next += 64; return next }
	visits := 0
	tr.Touch = func(addr uint64) {
		if addr < 0x1000 {
			t.Fatalf("bad node address %#x", addr)
		}
		visits++
	}
	for i := uint64(1); i <= 64; i++ {
		tr.Put(i, i)
	}
	visits = 0
	tr.Get(64)
	if visits == 0 || visits > 16 {
		t.Fatalf("Get visited %d nodes; expected a root-to-leaf path", visits)
	}
}

func TestLogarithmicDepth(t *testing.T) {
	tr := New()
	tr.Touch = func(uint64) {}
	for i := uint64(1); i <= 4096; i++ {
		tr.Put(i, i)
	}
	depth := 0
	tr.Touch = func(uint64) { depth++ }
	tr.Get(4096)
	// 2*log2(4097) ≈ 24 is the LLRB bound.
	if depth > 26 {
		t.Fatalf("search path %d nodes for 4096 keys; tree unbalanced", depth)
	}
}
