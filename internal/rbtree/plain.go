package rbtree

// Plain is the service-grade variant of Tree: the same left-leaning
// red-black tree, minus the simulator instrumentation (no Touch callback,
// no virtual addresses), following the hashmap.Plain precedent. Each
// descent step is a bare pointer chase, which matters when the tree sits
// inside a lock-guarded stripe on a real request path (package shard via
// package store).
//
// Beyond the Tree operations it serves the ordered-read contract a store
// backend needs: Put reports whether the key was new, and Min / Scan /
// Range expose the key order the tree maintains anyway.
//
// Like Tree, Plain is not safe for concurrent use: the caller's lock —
// in the sharded store, the stripe's registry-built lock — provides
// mutual exclusion.
type Plain struct {
	root *pnode
	size int
}

type pnode struct {
	key, val    uint64
	left, right *pnode
	color       bool
}

// NewPlain returns an empty tree.
func NewPlain() *Plain { return &Plain{} }

// Len returns the number of keys.
func (t *Plain) Len() int { return t.size }

func pIsRed(n *pnode) bool { return n != nil && n.color == red }

func pRotateLeft(h *pnode) *pnode {
	x := h.right
	h.right = x.left
	x.left = h
	x.color = h.color
	h.color = red
	return x
}

func pRotateRight(h *pnode) *pnode {
	x := h.left
	h.left = x.right
	x.right = h
	x.color = h.color
	h.color = red
	return x
}

func pFlipColors(h *pnode) {
	h.color = !h.color
	h.left.color = !h.left.color
	h.right.color = !h.right.color
}

// Get returns the value for key and whether it was present.
func (t *Plain) Get(key uint64) (uint64, bool) {
	n := t.root
	for n != nil {
		switch {
		case key < n.key:
			n = n.left
		case key > n.key:
			n = n.right
		default:
			return n.val, true
		}
	}
	return 0, false
}

// Put inserts or updates key. It reports whether the key was new.
func (t *Plain) Put(key, val uint64) bool {
	before := t.size
	t.root = t.insert(t.root, key, val)
	t.root.color = black
	return t.size != before
}

func (t *Plain) insert(h *pnode, key, val uint64) *pnode {
	if h == nil {
		t.size++
		return &pnode{key: key, val: val, color: red}
	}
	switch {
	case key < h.key:
		h.left = t.insert(h.left, key, val)
	case key > h.key:
		h.right = t.insert(h.right, key, val)
	default:
		h.val = val
	}
	if pIsRed(h.right) && !pIsRed(h.left) {
		h = pRotateLeft(h)
	}
	if pIsRed(h.left) && pIsRed(h.left.left) {
		h = pRotateRight(h)
	}
	if pIsRed(h.left) && pIsRed(h.right) {
		pFlipColors(h)
	}
	return h
}

// Delete removes key; it reports whether the key was present.
func (t *Plain) Delete(key uint64) bool {
	if _, ok := t.Get(key); !ok {
		return false
	}
	if !pIsRed(t.root.left) && !pIsRed(t.root.right) {
		t.root.color = red
	}
	t.root = t.delete(t.root, key)
	if t.root != nil {
		t.root.color = black
	}
	t.size--
	return true
}

func pMoveRedLeft(h *pnode) *pnode {
	pFlipColors(h)
	if pIsRed(h.right.left) {
		h.right = pRotateRight(h.right)
		h = pRotateLeft(h)
		pFlipColors(h)
	}
	return h
}

func pMoveRedRight(h *pnode) *pnode {
	pFlipColors(h)
	if pIsRed(h.left.left) {
		h = pRotateRight(h)
		pFlipColors(h)
	}
	return h
}

func pFixUp(h *pnode) *pnode {
	if pIsRed(h.right) {
		h = pRotateLeft(h)
	}
	if pIsRed(h.left) && pIsRed(h.left.left) {
		h = pRotateRight(h)
	}
	if pIsRed(h.left) && pIsRed(h.right) {
		pFlipColors(h)
	}
	return h
}

func pMinNode(h *pnode) *pnode {
	for h.left != nil {
		h = h.left
	}
	return h
}

func (t *Plain) deleteMin(h *pnode) *pnode {
	if h.left == nil {
		return nil
	}
	if !pIsRed(h.left) && !pIsRed(h.left.left) {
		h = pMoveRedLeft(h)
	}
	h.left = t.deleteMin(h.left)
	return pFixUp(h)
}

func (t *Plain) delete(h *pnode, key uint64) *pnode {
	if key < h.key {
		if !pIsRed(h.left) && !pIsRed(h.left.left) {
			h = pMoveRedLeft(h)
		}
		h.left = t.delete(h.left, key)
	} else {
		if pIsRed(h.left) {
			h = pRotateRight(h)
		}
		if key == h.key && h.right == nil {
			return nil
		}
		if !pIsRed(h.right) && !pIsRed(h.right.left) {
			h = pMoveRedRight(h)
		}
		if key == h.key {
			m := pMinNode(h.right)
			h.key, h.val = m.key, m.val
			h.right = t.deleteMin(h.right)
		} else {
			h.right = t.delete(h.right, key)
		}
	}
	return pFixUp(h)
}

// Min returns the smallest key, or ok=false when empty.
func (t *Plain) Min() (key uint64, ok bool) {
	if t.root == nil {
		return 0, false
	}
	return pMinNode(t.root).key, true
}

// Scan calls fn for every pair with lo <= key <= hi, in ascending key
// order, until fn returns false. Bounds are inclusive, so the full
// domain is Scan(0, ^uint64(0), fn). The tree must not be mutated during
// the walk.
func (t *Plain) Scan(lo, hi uint64, fn func(key, val uint64) bool) {
	t.scan(t.root, lo, hi, fn)
}

// scan is a bounded in-order traversal; it reports whether to keep going
// (fn has not returned false).
func (t *Plain) scan(n *pnode, lo, hi uint64, fn func(key, val uint64) bool) bool {
	if n == nil {
		return true
	}
	if lo < n.key {
		if !t.scan(n.left, lo, hi, fn) {
			return false
		}
	}
	if lo <= n.key && n.key <= hi {
		if !fn(n.key, n.val) {
			return false
		}
	}
	if hi > n.key {
		return t.scan(n.right, lo, hi, fn)
	}
	return true
}

// Range calls fn for every key/value pair until fn returns false. Unlike
// a hash table's Range, the iteration order is ascending key order.
func (t *Plain) Range(fn func(key, val uint64) bool) {
	t.Scan(0, ^uint64(0), fn)
}

// CheckInvariants verifies BST order, no red right links, no double red
// left links, uniform black height, and the size count. For tests.
func (t *Plain) CheckInvariants() bool {
	if pIsRed(t.root) {
		return false
	}
	bh := -1
	n := 0
	var walk func(x *pnode, min, max uint64, blacks int) bool
	walk = func(x *pnode, min, max uint64, blacks int) bool {
		if x == nil {
			if bh == -1 {
				bh = blacks
			}
			return bh == blacks
		}
		n++
		if x.key < min || x.key > max {
			return false
		}
		if pIsRed(x.right) {
			return false
		}
		if pIsRed(x) && pIsRed(x.left) {
			return false
		}
		if !pIsRed(x) {
			blacks++
		}
		lmax := x.key
		if lmax > 0 {
			lmax--
		}
		return walk(x.left, min, lmax, blacks) && walk(x.right, x.key+1, max, blacks)
	}
	return walk(t.root, 0, ^uint64(0), 0) && n == t.size
}
