package splay

import (
	"testing"
	"testing/quick"

	"repro/internal/xrand"
)

func TestAllocGrowsArena(t *testing.T) {
	a := New(1<<20, 1<<20)
	p1 := a.Alloc(100)
	p2 := a.Alloc(100)
	if p1 == 0 || p2 == 0 {
		t.Fatal("allocation failed")
	}
	if p1 == p2 {
		t.Fatal("distinct allocations share an address")
	}
}

func TestFreeThenReuse(t *testing.T) {
	a := New(0, 1<<20)
	p := a.Alloc(128)
	a.Free(p, 128)
	q := a.Alloc(128)
	if q != p {
		t.Fatalf("freed block not reused: got %#x want %#x", q, p)
	}
}

func TestBestFitPrefersSmallest(t *testing.T) {
	a := New(0, 1<<20)
	big := a.Alloc(1024)
	small := a.Alloc(128)
	a.Alloc(64) // guard so blocks are not at the brk
	a.Free(big, 1024)
	a.Free(small, 128)
	got := a.Alloc(100)
	if got != small {
		t.Fatalf("best fit chose %#x, want the 128-byte block %#x", got, small)
	}
}

func TestSplitLeavesRemainder(t *testing.T) {
	a := New(0, 1<<20)
	p := a.Alloc(1024)
	a.Alloc(64)
	a.Free(p, 1024)
	q := a.Alloc(512)
	if q != p {
		t.Fatalf("split should reuse the block start: %#x vs %#x", q, p)
	}
	r := a.Alloc(448) // remainder (1024-512 = 512, minus alignment) must satisfy this
	if r != p+512 {
		t.Fatalf("remainder not reused: got %#x want %#x", r, p+512)
	}
}

func TestExhaustion(t *testing.T) {
	a := New(1<<20, 256)
	if a.Alloc(128) == 0 {
		t.Fatal("first alloc failed")
	}
	if a.Alloc(128) == 0 {
		t.Fatal("second alloc failed")
	}
	if a.Alloc(64) != 0 {
		t.Fatal("exhausted arena still allocated")
	}
}

func TestZeroSize(t *testing.T) {
	a := New(0, 1<<16)
	p := a.Alloc(0)
	q := a.Alloc(0)
	if p == q {
		t.Fatal("zero-size allocations must still be distinct")
	}
}

func TestTouchReportsTraffic(t *testing.T) {
	a := New(0, 1<<20)
	touched := 0
	a.Touch = func(uint64) { touched++ }
	ptrs := make([]uint64, 50)
	for i := range ptrs {
		ptrs[i] = a.Alloc(uint64(64 + i*64))
	}
	for i, p := range ptrs {
		a.Free(p, uint64(64+i*64))
	}
	for i := range ptrs {
		a.Alloc(uint64(64 + i*64))
	}
	if touched == 0 {
		t.Fatal("no metadata traffic reported")
	}
}

// TestRandomizedAgainstModel drives random alloc/free traffic and checks
// no two live blocks overlap and the BST invariant holds throughout.
func TestRandomizedAgainstModel(t *testing.T) {
	f := func(seed uint64) bool {
		rng := xrand.New(seed)
		a := New(0, 1<<24)
		type blk struct{ addr, size uint64 }
		var live []blk
		for op := 0; op < 500; op++ {
			if len(live) == 0 || rng.Intn(2) == 0 {
				size := uint64(rng.Intn(2000) + 1)
				p := a.Alloc(size)
				if p == 0 {
					return false // arena is big enough that this is a bug
				}
				rounded := (size + 63) &^ 63
				for _, b := range live {
					if p < b.addr+b.size && b.addr < p+rounded {
						return false // overlap
					}
				}
				live = append(live, blk{p, rounded})
			} else {
				i := rng.Intn(len(live))
				a.Free(live[i].addr, live[i].size)
				live = append(live[:i], live[i+1:]...)
			}
			if !a.check() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestFreeBlocksCount(t *testing.T) {
	a := New(0, 1<<20)
	p1 := a.Alloc(64)
	p2 := a.Alloc(64)
	p3 := a.Alloc(64)
	a.Free(p1, 64)
	a.Free(p2, 64)
	a.Free(p3, 64)
	if got := a.FreeBlocks(); got != 3 {
		t.Fatalf("FreeBlocks=%d want 3", got)
	}
}
