// Package splay implements a splay-tree arena allocator, standing in for
// the default Solaris libc malloc the paper uses in §6.4: "the default
// Solaris libc memory allocator, which is implemented as a splay tree
// protected by a central mutex. While not scalable, this allocator yields
// a dense heap and small footprint and thus remains the default."
//
// The allocator manages a virtual arena: Alloc returns addresses, not
// memory. Free blocks live in a splay tree keyed by (size, addr) for
// best-fit allocation. Every tree node visited during an operation is
// reported through the Touch callback so the simulator can charge the
// memory traffic of the allocator's own metadata — which is exactly the
// footprint whose cache residency the mmicro benchmark stresses.
package splay

// node is a free block; it lives (conceptually) in the block's header, so
// its address equals the block address.
type node struct {
	addr, size  uint64
	left, right *node
}

// Allocator is a best-fit arena allocator over a splay tree of free
// blocks. Not safe for concurrent use: callers serialize with a lock (the
// point of the benchmark).
type Allocator struct {
	root *node
	brk  uint64 // arena bump pointer
	end  uint64

	// Touch, if non-nil, receives the address of every tree node visited.
	Touch func(addr uint64)

	frees, allocs, grows uint64
}

// New returns an allocator over an arena starting at base with the given
// capacity in bytes. Address 0 is reserved (Alloc returns 0 for failure),
// so a zero base is bumped by one line.
func New(base, capacity uint64) *Allocator {
	a := &Allocator{brk: base, end: base + capacity}
	if a.brk == 0 {
		a.brk = 64
	}
	return a
}

func (a *Allocator) touch(n *node) {
	if a.Touch != nil && n != nil {
		a.Touch(n.addr)
	}
}

// less orders free blocks by (size, addr).
func less(s1, a1, s2, a2 uint64) bool {
	if s1 != s2 {
		return s1 < s2
	}
	return a1 < a2
}

// splay performs a top-down splay of the tree rooted at t for key
// (size, addr), reporting every visited node.
func (a *Allocator) splay(t *node, size, addr uint64) *node {
	if t == nil {
		return nil
	}
	var header node
	l, r := &header, &header
	for {
		a.touch(t)
		if less(size, addr, t.size, t.addr) {
			if t.left == nil {
				break
			}
			a.touch(t.left)
			if less(size, addr, t.left.size, t.left.addr) {
				// Rotate right.
				y := t.left
				t.left = y.right
				y.right = t
				t = y
				if t.left == nil {
					break
				}
			}
			r.left = t
			r = t
			t = t.left
		} else if less(t.size, t.addr, size, addr) {
			if t.right == nil {
				break
			}
			a.touch(t.right)
			if less(t.right.size, t.right.addr, size, addr) {
				// Rotate left.
				y := t.right
				t.right = y.left
				y.left = t
				t = y
				if t.right == nil {
					break
				}
			}
			l.right = t
			l = t
			t = t.right
		} else {
			break
		}
	}
	l.right = t.left
	r.left = t.right
	t.left = header.right
	t.right = header.left
	return t
}

// insert adds a free block.
func (a *Allocator) insert(addr, size uint64) {
	n := &node{addr: addr, size: size}
	a.touch(n)
	if a.root == nil {
		a.root = n
		return
	}
	a.root = a.splay(a.root, size, addr)
	if less(size, addr, a.root.size, a.root.addr) {
		n.left = a.root.left
		n.right = a.root
		a.root.left = nil
	} else {
		n.right = a.root.right
		n.left = a.root
		a.root.right = nil
	}
	a.root = n
}

// removeBestFit extracts the smallest free block with size >= want, or
// nil.
func (a *Allocator) removeBestFit(want uint64) *node {
	if a.root == nil {
		return nil
	}
	// Splay for (want, 0): the root lands on a neighbor of the boundary.
	a.root = a.splay(a.root, want, 0)
	t := a.root
	if t.size < want {
		// Best fit is the minimum of the right subtree.
		if t.right == nil {
			return nil
		}
		t.right = a.splay(t.right, 0, 0) // splay minimum to subtree root
		best := t.right
		t.right = best.right
		best.right = nil
		return best
	}
	// Root fits; unlink it.
	if t.left == nil {
		a.root = t.right
	} else {
		l := a.splay(t.left, ^uint64(0), ^uint64(0)) // max of left subtree
		l.right = t.right
		a.root = l
	}
	t.left, t.right = nil, nil
	return t
}

// Alloc returns the address of a block of the given size, or 0 if the
// arena is exhausted. Oversized best-fit blocks are split.
func (a *Allocator) Alloc(size uint64) uint64 {
	if size == 0 {
		size = 1
	}
	size = (size + 63) &^ 63 // line-align, mimicking malloc rounding
	a.allocs++
	if n := a.removeBestFit(size); n != nil {
		if n.size > size {
			a.insert(n.addr+size, n.size-size)
		}
		return n.addr
	}
	// Grow the arena.
	if a.brk+size > a.end {
		return 0
	}
	a.grows++
	addr := a.brk
	a.brk += size
	return addr
}

// Free returns a block to the tree. The caller supplies the size (the
// benchmarks track it; a real allocator reads the header, which the Touch
// callback models as the insert touches the node).
func (a *Allocator) Free(addr, size uint64) {
	if size == 0 {
		size = 1
	}
	size = (size + 63) &^ 63
	a.frees++
	a.insert(addr, size)
}

// FreeBlocks counts free blocks (O(n); for tests).
func (a *Allocator) FreeBlocks() int {
	var walk func(*node) int
	walk = func(n *node) int {
		if n == nil {
			return 0
		}
		return 1 + walk(n.left) + walk(n.right)
	}
	return walk(a.root)
}

// check verifies the BST invariant; used by tests.
func (a *Allocator) check() bool {
	var walk func(n *node, okMin func(s, ad uint64) bool, okMax func(s, ad uint64) bool) bool
	walk = func(n *node, okMin, okMax func(s, ad uint64) bool) bool {
		if n == nil {
			return true
		}
		if !okMin(n.size, n.addr) || !okMax(n.size, n.addr) {
			return false
		}
		return walk(n.left, okMin, func(s, ad uint64) bool { return less(s, ad, n.size, n.addr) }) &&
			walk(n.right, func(s, ad uint64) bool { return less(n.size, n.addr, s, ad) }, okMax)
	}
	always := func(uint64, uint64) bool { return true }
	return walk(a.root, always, always)
}
