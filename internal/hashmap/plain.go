package hashmap

// Plain is the service-grade variant of Map: the same open-addressing
// linear-probe table with backward-shift deletion, minus the simulator
// instrumentation (no Touch callback, no virtual base address). Each probe
// is therefore a bare array access, which matters when the table sits
// inside a lock-guarded stripe on a real request path (package shard).
//
// Unlike Map, key 0 is held out-of-band rather than remapped: Map's
// 0 → ^uint64(0) remap makes keys 0 and MaxUint64 collide, which its
// workload generators never produce but a public KV API must tolerate.
// Plain therefore supports the full uint64 key domain.
//
// Like Map, Plain is not safe for concurrent use: the caller's lock — in
// the sharded store, the stripe's registry-built lock — provides mutual
// exclusion.
type Plain struct {
	keys    []uint64 // 0 = empty slot; key 0 itself lives out-of-band
	vals    []uint64
	size    int
	mask    uint64
	hasZero bool // key 0 present
	zeroVal uint64
}

// NewPlain returns a table pre-sized for capacity elements (rounded up to
// a power of two with slack for the probe load factor).
func NewPlain(capacity int) *Plain {
	n := 16
	for n < capacity*2 {
		n *= 2
	}
	return &Plain{
		keys: make([]uint64, n),
		vals: make([]uint64, n),
		mask: uint64(n - 1),
	}
}

// Mix is the table's 64-bit finalizer hash (Murmur3 fmix64), exported so
// that layered structures (the shard router) can derive their placement
// from the same mixer: the shard index takes the high bits, the slot
// index the low bits, so stripe routing never degrades in-stripe probing.
func Mix(k uint64) uint64 { return mix(k) }

// Len returns the number of keys present.
func (m *Plain) Len() int {
	n := m.size
	if m.hasZero {
		n++
	}
	return n
}

// Slots returns the table's slot count.
func (m *Plain) Slots() int { return len(m.keys) }

// Get returns the value for key and whether it was present.
func (m *Plain) Get(key uint64) (uint64, bool) {
	if key == 0 {
		if m.hasZero {
			return m.zeroVal, true
		}
		return 0, false
	}
	slot := mix(key) & m.mask
	for {
		switch m.keys[slot] {
		case 0:
			return 0, false
		case key:
			return m.vals[slot], true
		}
		slot = (slot + 1) & m.mask
	}
}

// Put inserts or updates key. It reports whether the key was new.
func (m *Plain) Put(key, val uint64) bool {
	if key == 0 {
		fresh := !m.hasZero
		m.hasZero, m.zeroVal = true, val
		return fresh
	}
	if m.size*4 >= len(m.keys)*3 {
		m.grow()
	}
	slot := mix(key) & m.mask
	for {
		switch m.keys[slot] {
		case 0:
			m.keys[slot] = key
			m.vals[slot] = val
			m.size++
			return true
		case key:
			m.vals[slot] = val
			return false
		}
		slot = (slot + 1) & m.mask
	}
}

// Delete removes key with backward-shift deletion; reports presence.
func (m *Plain) Delete(key uint64) bool {
	if key == 0 {
		present := m.hasZero
		m.hasZero, m.zeroVal = false, 0
		return present
	}
	slot := mix(key) & m.mask
	for {
		switch m.keys[slot] {
		case 0:
			return false
		case key:
			m.backshift(slot)
			m.size--
			return true
		}
		slot = (slot + 1) & m.mask
	}
}

// Range calls fn for every key/value pair until fn returns false. The
// iteration order is key 0 first (if present), then the table's slot
// order, i.e. unspecified. The table must not be mutated during the walk.
func (m *Plain) Range(fn func(key, val uint64) bool) {
	if m.hasZero && !fn(0, m.zeroVal) {
		return
	}
	for slot, k := range m.keys {
		if k == 0 {
			continue
		}
		if !fn(k, m.vals[slot]) {
			return
		}
	}
}

func (m *Plain) backshift(hole uint64) {
	for {
		m.keys[hole] = 0
		next := (hole + 1) & m.mask
		for {
			k := m.keys[next]
			if k == 0 {
				return
			}
			home := mix(k) & m.mask
			if inCycle(home, hole, next) {
				m.keys[hole] = k
				m.vals[hole] = m.vals[next]
				hole = next
				break
			}
			next = (next + 1) & m.mask
		}
	}
}

func (m *Plain) grow() {
	oldKeys, oldVals := m.keys, m.vals
	n := len(oldKeys) * 2
	m.keys = make([]uint64, n)
	m.vals = make([]uint64, n)
	m.mask = uint64(n - 1)
	m.size = 0
	for i, k := range oldKeys {
		if k != 0 {
			m.putRaw(k, oldVals[i])
		}
	}
}

func (m *Plain) putRaw(k, val uint64) {
	slot := mix(k) & m.mask
	for m.keys[slot] != 0 {
		slot = (slot + 1) & m.mask
	}
	m.keys[slot] = k
	m.vals[slot] = val
	m.size++
}
