package hashmap

import "sync/atomic"

// Plain is the service-grade variant of Map: the same open-addressing
// linear-probe table with backward-shift deletion, minus the simulator
// instrumentation (no Touch callback, no virtual base address).
//
// Unlike Map, key 0 is held out-of-band rather than remapped: Map's
// 0 → ^uint64(0) remap makes keys 0 and MaxUint64 collide, which its
// workload generators never produce but a public KV API must tolerate.
// Plain therefore supports the full uint64 key domain.
//
// Like Map, Plain is not safe for general concurrent use: the caller's
// lock — in the sharded store, the stripe's registry-built lock —
// provides mutual exclusion between mutators. What Plain does support,
// beyond the locked contract, is *torn-read-safe* concurrent readers:
// the slot arrays live behind an atomically published table pointer and
// every slot that a concurrent reader may observe is accessed with
// atomic loads and stores. GetOptimistic may therefore run with no lock
// at all, concurrently with a mutator. Its result can be stale or torn —
// a probe across a half-finished backward shift can miss a present key —
// which is exactly the contract the seqlock read path needs: the caller
// validates the stripe's version stamp afterwards and discards any read
// that overlapped a write section. What the atomics guarantee is only
// that such a read is *safe*: no data race, no fault, no garbage beyond
// a value the table held at some point.
type Plain struct {
	tab  atomic.Pointer[ptab]
	size int // keys in tab; mutator-side only, guarded by the caller's lock

	// Key 0 lives out-of-band (0 marks an empty slot), as an
	// atomically readable pair. A torn hasZero/zeroVal combination is
	// possible for a concurrent reader and is covered by validation.
	hasZero atomic.Bool
	zeroVal atomic.Uint64
}

// ptab is one immutable-shape slot array generation: the arrays and mask
// never change after publication (grow publishes a new ptab), only the
// slot contents do, and those only via atomic stores.
type ptab struct {
	keys []uint64 // 0 = empty slot
	vals []uint64
	mask uint64
}

// NewPlain returns a table pre-sized for capacity elements (rounded up to
// a power of two with slack for the probe load factor).
func NewPlain(capacity int) *Plain {
	n := 16
	for n < capacity*2 {
		n *= 2
	}
	m := &Plain{}
	m.tab.Store(&ptab{
		keys: make([]uint64, n),
		vals: make([]uint64, n),
		mask: uint64(n - 1),
	})
	return m
}

// Mix is the table's 64-bit finalizer hash (Murmur3 fmix64), exported so
// that layered structures (the shard router) can derive their placement
// from the same mixer: the shard index takes the high bits, the slot
// index the low bits, so stripe routing never degrades in-stripe probing.
func Mix(k uint64) uint64 { return mix(k) }

// Len returns the number of keys present.
func (m *Plain) Len() int {
	n := m.size
	if m.hasZero.Load() {
		n++
	}
	return n
}

// Slots returns the table's slot count.
func (m *Plain) Slots() int { return len(m.tab.Load().keys) }

// Get returns the value for key and whether it was present. Callers
// hold the stripe lock, so no mutator is concurrent and plain loads
// through the published table are exact.
func (m *Plain) Get(key uint64) (uint64, bool) {
	if key == 0 {
		if m.hasZero.Load() {
			return m.zeroVal.Load(), true
		}
		return 0, false
	}
	t := m.tab.Load()
	slot := mix(key) & t.mask
	for {
		switch t.keys[slot] {
		case 0:
			return 0, false
		case key:
			return t.vals[slot], true
		}
		slot = (slot + 1) & t.mask
	}
}

// GetOptimistic returns the value for key using only atomic loads, with
// no lock and no mutual exclusion against a concurrent mutator. The
// probe is bounded by the slot count, so a torn view of a backward
// shift (transiently cycle-shaped occupancy) terminates rather than
// spinning. A racing delete's backshift can even pair a matched key
// with a neighboring entry's value mid-move — the weakest "mixed
// versions" outcome the OptimisticReader contract allows. See the type
// comment for the staleness contract: the caller must validate the
// stripe's version stamp and discard torn results.
//
//lockcheck:optimistic
func (m *Plain) GetOptimistic(key uint64) (uint64, bool) {
	if key == 0 {
		if m.hasZero.Load() {
			return m.zeroVal.Load(), true
		}
		return 0, false
	}
	t := m.tab.Load()
	slot := mix(key) & t.mask
	for range t.keys {
		switch atomic.LoadUint64(&t.keys[slot]) {
		case 0:
			return 0, false
		case key:
			return atomic.LoadUint64(&t.vals[slot]), true
		}
		slot = (slot + 1) & t.mask
	}
	return 0, false
}

// Put inserts or updates key. It reports whether the key was new.
func (m *Plain) Put(key, val uint64) bool {
	if key == 0 {
		fresh := !m.hasZero.Load()
		// Value first: a concurrent reader that observes hasZero
		// observes a value key 0 held at some point.
		m.zeroVal.Store(val)
		m.hasZero.Store(true)
		return fresh
	}
	t := m.tab.Load()
	if m.size*4 >= len(t.keys)*3 {
		t = m.grow(t)
	}
	slot := mix(key) & t.mask
	for {
		switch atomic.LoadUint64(&t.keys[slot]) {
		case 0:
			// Value before key: a concurrent reader that matches the
			// key loads the value the key was inserted with, never the
			// slot's stale residue.
			atomic.StoreUint64(&t.vals[slot], val)
			atomic.StoreUint64(&t.keys[slot], key)
			m.size++
			return true
		case key:
			atomic.StoreUint64(&t.vals[slot], val)
			return false
		}
		slot = (slot + 1) & t.mask
	}
}

// Delete removes key with backward-shift deletion; reports presence.
func (m *Plain) Delete(key uint64) bool {
	if key == 0 {
		present := m.hasZero.Load()
		m.hasZero.Store(false)
		m.zeroVal.Store(0)
		return present
	}
	t := m.tab.Load()
	slot := mix(key) & t.mask
	for {
		switch atomic.LoadUint64(&t.keys[slot]) {
		case 0:
			return false
		case key:
			m.backshift(t, slot)
			m.size--
			return true
		}
		slot = (slot + 1) & t.mask
	}
}

// Range calls fn for every key/value pair until fn returns false. The
// iteration order is key 0 first (if present), then the table's slot
// order, i.e. unspecified. The table must not be mutated during the walk.
func (m *Plain) Range(fn func(key, val uint64) bool) {
	if m.hasZero.Load() && !fn(0, m.zeroVal.Load()) {
		return
	}
	t := m.tab.Load()
	for slot, k := range t.keys {
		if k == 0 {
			continue
		}
		if !fn(k, t.vals[slot]) {
			return
		}
	}
}

func (m *Plain) backshift(t *ptab, hole uint64) {
	for {
		atomic.StoreUint64(&t.keys[hole], 0)
		next := (hole + 1) & t.mask
		for {
			k := t.keys[next]
			if k == 0 {
				return
			}
			home := mix(k) & t.mask
			if inCycle(home, hole, next) {
				// Value first, then key, then the vacated slot is
				// cleared on the next outer iteration: a concurrent
				// probe may see the moving key at zero, one, or both
				// positions — torn, but never outside the table's
				// value history for that key.
				atomic.StoreUint64(&t.vals[hole], t.vals[next])
				atomic.StoreUint64(&t.keys[hole], k)
				hole = next
				break
			}
			next = (next + 1) & t.mask
		}
	}
}

// grow builds a doubled table with plain stores (unpublished memory) and
// atomically publishes it. Concurrent readers that loaded the old table
// keep probing a frozen generation — the mutator never writes the old
// arrays again — and readers that load the new pointer see fully
// initialized arrays via the publication ordering.
func (m *Plain) grow(t *ptab) *ptab {
	n := len(t.keys) * 2
	nt := &ptab{
		keys: make([]uint64, n),
		vals: make([]uint64, n),
		mask: uint64(n - 1),
	}
	m.size = 0
	for i, k := range t.keys {
		if k != 0 {
			m.putRaw(nt, k, t.vals[i])
		}
	}
	m.tab.Store(nt)
	return nt
}

func (m *Plain) putRaw(t *ptab, k, val uint64) {
	slot := mix(k) & t.mask
	for t.keys[slot] != 0 {
		slot = (slot + 1) & t.mask
	}
	t.keys[slot] = k
	t.vals[slot] = val
	m.size++
}
