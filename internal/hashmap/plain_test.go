package hashmap

import (
	"math/rand"
	"testing"
)

func TestPlainBasic(t *testing.T) {
	m := NewPlain(8)
	if m.Len() != 0 {
		t.Fatalf("empty Len=%d", m.Len())
	}
	if !m.Put(1, 100) || !m.Put(2, 200) || !m.Put(0, 7) {
		t.Fatal("fresh Put reported existing key")
	}
	if m.Put(1, 101) {
		t.Fatal("update reported new key")
	}
	if v, ok := m.Get(1); !ok || v != 101 {
		t.Fatalf("Get(1)=%d,%v want 101,true", v, ok)
	}
	if v, ok := m.Get(0); !ok || v != 7 {
		t.Fatalf("Get(0)=%d,%v want 7,true", v, ok)
	}
	if _, ok := m.Get(3); ok {
		t.Fatal("Get(3) found a missing key")
	}
	if !m.Delete(2) || m.Delete(2) {
		t.Fatal("Delete(2) wrong presence report")
	}
	if m.Len() != 2 {
		t.Fatalf("Len=%d want 2", m.Len())
	}
}

func TestPlainAgainstMapModel(t *testing.T) {
	// Randomized differential test against Go's map, including growth and
	// backward-shift deletion under clustered keys.
	m := NewPlain(0)
	ref := make(map[uint64]uint64)
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 20000; i++ {
		key := uint64(rng.Intn(512)) // dense keyspace to force probe clusters
		switch rng.Intn(3) {
		case 0, 1:
			val := rng.Uint64()
			wantNew := func() bool { _, ok := ref[key]; return !ok }()
			if got := m.Put(key, val); got != wantNew {
				t.Fatalf("Put(%d) new=%v want %v", key, got, wantNew)
			}
			ref[key] = val
		case 2:
			_, want := ref[key]
			if got := m.Delete(key); got != want {
				t.Fatalf("Delete(%d)=%v want %v", key, got, want)
			}
			delete(ref, key)
		}
		if m.Len() != len(ref) {
			t.Fatalf("Len=%d want %d", m.Len(), len(ref))
		}
	}
	for k, v := range ref {
		if got, ok := m.Get(k); !ok || got != v {
			t.Fatalf("Get(%d)=%d,%v want %d,true", k, got, ok, v)
		}
	}
}

func TestPlainZeroAndMaxKeysDistinct(t *testing.T) {
	// Regression: Map's ikey remap makes keys 0 and MaxUint64 collide;
	// Plain holds key 0 out-of-band so the full uint64 domain works.
	m := NewPlain(4)
	if !m.Put(0, 1) || !m.Put(^uint64(0), 2) {
		t.Fatal("fresh Put reported existing key")
	}
	if m.Len() != 2 {
		t.Fatalf("Len=%d want 2", m.Len())
	}
	if v, ok := m.Get(0); !ok || v != 1 {
		t.Fatalf("Get(0)=%d,%v want 1,true", v, ok)
	}
	if v, ok := m.Get(^uint64(0)); !ok || v != 2 {
		t.Fatalf("Get(MaxUint64)=%d,%v want 2,true", v, ok)
	}
	seen := map[uint64]uint64{}
	m.Range(func(k, v uint64) bool { seen[k] = v; return true })
	if len(seen) != 2 || seen[0] != 1 || seen[^uint64(0)] != 2 {
		t.Fatalf("Range saw %v", seen)
	}
	if !m.Delete(0) {
		t.Fatal("Delete(0) missed")
	}
	if v, ok := m.Get(^uint64(0)); !ok || v != 2 {
		t.Fatalf("Delete(0) disturbed MaxUint64: %d,%v", v, ok)
	}
	if _, ok := m.Get(0); ok {
		t.Fatal("Get(0) found a deleted key")
	}
}

func TestPlainRange(t *testing.T) {
	m := NewPlain(4)
	want := map[uint64]uint64{0: 5, 1: 10, 7: 70, 1 << 40: 99}
	for k, v := range want {
		m.Put(k, v)
	}
	got := make(map[uint64]uint64)
	m.Range(func(k, v uint64) bool {
		got[k] = v
		return true
	})
	if len(got) != len(want) {
		t.Fatalf("Range visited %d pairs want %d", len(got), len(want))
	}
	for k, v := range want {
		if got[k] != v {
			t.Fatalf("Range saw %d=%d want %d", k, got[k], v)
		}
	}
	// Early stop.
	n := 0
	m.Range(func(_, _ uint64) bool { n++; return false })
	if n != 1 {
		t.Fatalf("Range after false visited %d pairs", n)
	}
}
