package hashmap

import (
	"math/rand"
	"sync"
	"testing"
)

func TestPlainBasic(t *testing.T) {
	m := NewPlain(8)
	if m.Len() != 0 {
		t.Fatalf("empty Len=%d", m.Len())
	}
	if !m.Put(1, 100) || !m.Put(2, 200) || !m.Put(0, 7) {
		t.Fatal("fresh Put reported existing key")
	}
	if m.Put(1, 101) {
		t.Fatal("update reported new key")
	}
	if v, ok := m.Get(1); !ok || v != 101 {
		t.Fatalf("Get(1)=%d,%v want 101,true", v, ok)
	}
	if v, ok := m.Get(0); !ok || v != 7 {
		t.Fatalf("Get(0)=%d,%v want 7,true", v, ok)
	}
	if _, ok := m.Get(3); ok {
		t.Fatal("Get(3) found a missing key")
	}
	if !m.Delete(2) || m.Delete(2) {
		t.Fatal("Delete(2) wrong presence report")
	}
	if m.Len() != 2 {
		t.Fatalf("Len=%d want 2", m.Len())
	}
}

func TestPlainAgainstMapModel(t *testing.T) {
	// Randomized differential test against Go's map, including growth and
	// backward-shift deletion under clustered keys.
	m := NewPlain(0)
	ref := make(map[uint64]uint64)
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 20000; i++ {
		key := uint64(rng.Intn(512)) // dense keyspace to force probe clusters
		switch rng.Intn(3) {
		case 0, 1:
			val := rng.Uint64()
			wantNew := func() bool { _, ok := ref[key]; return !ok }()
			if got := m.Put(key, val); got != wantNew {
				t.Fatalf("Put(%d) new=%v want %v", key, got, wantNew)
			}
			ref[key] = val
		case 2:
			_, want := ref[key]
			if got := m.Delete(key); got != want {
				t.Fatalf("Delete(%d)=%v want %v", key, got, want)
			}
			delete(ref, key)
		}
		if m.Len() != len(ref) {
			t.Fatalf("Len=%d want %d", m.Len(), len(ref))
		}
	}
	for k, v := range ref {
		if got, ok := m.Get(k); !ok || got != v {
			t.Fatalf("Get(%d)=%d,%v want %d,true", k, got, ok, v)
		}
	}
}

func TestPlainZeroAndMaxKeysDistinct(t *testing.T) {
	// Regression: Map's ikey remap makes keys 0 and MaxUint64 collide;
	// Plain holds key 0 out-of-band so the full uint64 domain works.
	m := NewPlain(4)
	if !m.Put(0, 1) || !m.Put(^uint64(0), 2) {
		t.Fatal("fresh Put reported existing key")
	}
	if m.Len() != 2 {
		t.Fatalf("Len=%d want 2", m.Len())
	}
	if v, ok := m.Get(0); !ok || v != 1 {
		t.Fatalf("Get(0)=%d,%v want 1,true", v, ok)
	}
	if v, ok := m.Get(^uint64(0)); !ok || v != 2 {
		t.Fatalf("Get(MaxUint64)=%d,%v want 2,true", v, ok)
	}
	seen := map[uint64]uint64{}
	m.Range(func(k, v uint64) bool { seen[k] = v; return true })
	if len(seen) != 2 || seen[0] != 1 || seen[^uint64(0)] != 2 {
		t.Fatalf("Range saw %v", seen)
	}
	if !m.Delete(0) {
		t.Fatal("Delete(0) missed")
	}
	if v, ok := m.Get(^uint64(0)); !ok || v != 2 {
		t.Fatalf("Delete(0) disturbed MaxUint64: %d,%v", v, ok)
	}
	if _, ok := m.Get(0); ok {
		t.Fatal("Get(0) found a deleted key")
	}
}

func TestPlainRange(t *testing.T) {
	m := NewPlain(4)
	want := map[uint64]uint64{0: 5, 1: 10, 7: 70, 1 << 40: 99}
	for k, v := range want {
		m.Put(k, v)
	}
	got := make(map[uint64]uint64)
	m.Range(func(k, v uint64) bool {
		got[k] = v
		return true
	})
	if len(got) != len(want) {
		t.Fatalf("Range visited %d pairs want %d", len(got), len(want))
	}
	for k, v := range want {
		if got[k] != v {
			t.Fatalf("Range saw %d=%d want %d", k, got[k], v)
		}
	}
	// Early stop.
	n := 0
	m.Range(func(_, _ uint64) bool { n++; return false })
	if n != 1 {
		t.Fatalf("Range after false visited %d pairs", n)
	}
}

func TestPlainGetOptimisticQuiescent(t *testing.T) {
	// With no concurrent mutator the weak read is exact: same answers as
	// Get across growth, deletion clusters, and the out-of-band zero key.
	m := NewPlain(0)
	ref := make(map[uint64]uint64)
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 20000; i++ {
		key := uint64(rng.Intn(512))
		if rng.Intn(8) == 0 {
			key = 0
		}
		if rng.Intn(3) == 2 {
			m.Delete(key)
			delete(ref, key)
		} else {
			val := rng.Uint64()
			m.Put(key, val)
			ref[key] = val
		}
		probe := uint64(rng.Intn(512))
		wantV, want := ref[probe]
		if v, ok := m.GetOptimistic(probe); ok != want || (ok && v != wantV) {
			t.Fatalf("op %d: GetOptimistic(%d)=%d,%v want %d,%v", i, probe, v, ok, wantV, want)
		}
	}
}

func TestPlainGetOptimisticConcurrent(t *testing.T) {
	// Put-only concurrency under the race detector: with no deletes, a
	// slot's key never changes once published (value is stored before
	// the key, and later Puts of the same key only rewrite the value;
	// grows freeze the old generation), so even the lock-free read
	// keeps per-slot pair integrity — any value returned for key k is
	// one k actually held (k or k+1 here).
	m := NewPlain(0)
	const keys = 512
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for {
				select {
				case <-stop:
					return
				default:
				}
				k := uint64(rng.Intn(keys))
				if v, ok := m.GetOptimistic(k); ok && v != k && v != k+1 {
					panic("GetOptimistic returned a value the key never held")
				}
			}
		}(int64(r))
	}
	rng := rand.New(rand.NewSource(99))
	for i := 0; i < 200000; i++ {
		k := uint64(rng.Intn(keys))
		if rng.Intn(3) == 0 {
			m.Put(k, k)
		} else {
			m.Put(k, k+1)
		}
	}
	close(stop)
	wg.Wait()
}

func TestPlainGetOptimisticChurn(t *testing.T) {
	// Full churn — puts, deletes, grows, backshifts — under the race
	// detector. Here the contract is only the weak one: a delete's
	// backshift moves entries between slots value-then-key, so a racing
	// reader can transiently pair a key with a neighboring entry's
	// value ("mixed versions", which the seqlock stamp above discards).
	// The assertions are the safety floor: no race report, no fault,
	// bounded probes, and any value returned is from the written domain.
	m := NewPlain(0)
	const keys = 512
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for {
				select {
				case <-stop:
					return
				default:
				}
				k := uint64(rng.Intn(keys))
				if v, ok := m.GetOptimistic(k); ok && v > keys {
					panic("GetOptimistic returned a value nothing ever held")
				}
			}
		}(int64(r))
	}
	rng := rand.New(rand.NewSource(99))
	for i := 0; i < 200000; i++ {
		k := uint64(rng.Intn(keys))
		switch rng.Intn(4) {
		case 0:
			m.Delete(k)
		case 1:
			m.Put(k, k)
		default:
			m.Put(k, k+1)
		}
	}
	close(stop)
	wg.Wait()
}
