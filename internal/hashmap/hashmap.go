// Package hashmap implements an open-addressing hash table mapping uint64
// keys to uint64 values, standing in for C++ std::unordered_map in the
// keymap benchmark (§6.8) and for the in-memory hash database of the
// Kyoto Cabinet stand-in (§6.6). Slot probes are reported through the
// Touch callback so the simulator charges the table's memory footprint —
// for a large pre-sized table this is the dominant CS footprint, exactly
// the property keymap exploits.
package hashmap

// Map is a linear-probing hash table with tombstone-free deletion
// (backward-shift). Not safe for concurrent use.
type Map struct {
	keys  []uint64 // 0 = empty (key 0 is remapped internally)
	vals  []uint64
	size  int
	mask  uint64
	base  uint64 // virtual address of slot 0
	Touch func(addr uint64)
}

// New returns a map pre-sized for capacity elements (rounded up to a
// power of two with slack), with slot addresses starting at base.
func New(capacity int, base uint64) *Map {
	n := 16
	for n < capacity*2 {
		n *= 2
	}
	return &Map{
		keys: make([]uint64, n),
		vals: make([]uint64, n),
		mask: uint64(n - 1),
		base: base,
	}
}

// Len returns the number of keys present.
func (m *Map) Len() int { return m.size }

// Slots returns the table's slot count.
func (m *Map) Slots() int { return len(m.keys) }

func (m *Map) touch(slot uint64) {
	if m.Touch != nil {
		// Each slot is 16 bytes (key + value).
		m.Touch(m.base + slot*16)
	}
}

func mix(k uint64) uint64 {
	k ^= k >> 33
	k *= 0xff51afd7ed558ccd
	k ^= k >> 33
	k *= 0xc4ceb9fe1a85ec53
	k ^= k >> 33
	return k
}

// ikey remaps key 0 so the zero slot value can mean "empty".
func ikey(key uint64) uint64 {
	if key == 0 {
		return ^uint64(0)
	}
	return key
}

// Get returns the value for key and whether it was present.
func (m *Map) Get(key uint64) (uint64, bool) {
	k := ikey(key)
	slot := mix(k) & m.mask
	for {
		m.touch(slot)
		switch m.keys[slot] {
		case 0:
			return 0, false
		case k:
			return m.vals[slot], true
		}
		slot = (slot + 1) & m.mask
	}
}

// Put inserts or updates key. It reports whether the key was new.
func (m *Map) Put(key, val uint64) bool {
	if m.size*4 >= len(m.keys)*3 {
		m.grow()
	}
	k := ikey(key)
	slot := mix(k) & m.mask
	for {
		m.touch(slot)
		switch m.keys[slot] {
		case 0:
			m.keys[slot] = k
			m.vals[slot] = val
			m.size++
			return true
		case k:
			m.vals[slot] = val
			return false
		}
		slot = (slot + 1) & m.mask
	}
}

// Delete removes key with backward-shift deletion; reports presence.
func (m *Map) Delete(key uint64) bool {
	k := ikey(key)
	slot := mix(k) & m.mask
	for {
		m.touch(slot)
		switch m.keys[slot] {
		case 0:
			return false
		case k:
			m.backshift(slot)
			m.size--
			return true
		}
		slot = (slot + 1) & m.mask
	}
}

func (m *Map) backshift(hole uint64) {
	for {
		m.keys[hole] = 0
		next := (hole + 1) & m.mask
		for {
			m.touch(next)
			k := m.keys[next]
			if k == 0 {
				return
			}
			home := mix(k) & m.mask
			// Can k move into the hole? Only if its home position does
			// not lie strictly between hole (exclusive) and next.
			if inCycle(home, hole, next) {
				m.keys[hole] = k
				m.vals[hole] = m.vals[next]
				hole = next
				break
			}
			next = (next + 1) & m.mask
		}
	}
}

// inCycle reports whether home <= hole < cur in circular order, i.e. the
// element at cur may legally relocate to hole.
func inCycle(home, hole, cur uint64) bool {
	if home <= cur {
		return home <= hole && hole < cur
	}
	return home <= hole || hole < cur
}

func (m *Map) grow() {
	oldKeys, oldVals := m.keys, m.vals
	n := len(oldKeys) * 2
	m.keys = make([]uint64, n)
	m.vals = make([]uint64, n)
	m.mask = uint64(n - 1)
	m.size = 0
	touch := m.Touch
	m.Touch = nil // rehash traffic not charged (rare; amortized)
	for i, k := range oldKeys {
		if k != 0 {
			m.putRaw(k, oldVals[i])
		}
	}
	m.Touch = touch
}

func (m *Map) putRaw(k, val uint64) {
	slot := mix(k) & m.mask
	for m.keys[slot] != 0 {
		slot = (slot + 1) & m.mask
	}
	m.keys[slot] = k
	m.vals[slot] = val
	m.size++
}
