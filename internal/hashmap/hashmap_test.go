package hashmap

import (
	"testing"
	"testing/quick"

	"repro/internal/xrand"
)

func TestPutGetDelete(t *testing.T) {
	m := New(100, 0x10000)
	for i := uint64(0); i < 100; i++ { // includes key 0 (remapped internally)
		if !m.Put(i, i*2) {
			t.Fatalf("Put(%d) claimed update on fresh key", i)
		}
	}
	if m.Len() != 100 {
		t.Fatalf("Len=%d", m.Len())
	}
	for i := uint64(0); i < 100; i++ {
		v, ok := m.Get(i)
		if !ok || v != i*2 {
			t.Fatalf("Get(%d)=(%d,%v)", i, v, ok)
		}
	}
	for i := uint64(0); i < 100; i += 2 {
		if !m.Delete(i) {
			t.Fatalf("Delete(%d) missed", i)
		}
	}
	if m.Len() != 50 {
		t.Fatalf("Len=%d", m.Len())
	}
	for i := uint64(0); i < 100; i++ {
		_, ok := m.Get(i)
		if want := i%2 == 1; ok != want {
			t.Fatalf("Get(%d)=%v want %v", i, ok, want)
		}
	}
}

func TestPutUpdate(t *testing.T) {
	m := New(10, 0)
	m.Put(7, 1)
	if m.Put(7, 2) {
		t.Fatal("update reported as insert")
	}
	if v, _ := m.Get(7); v != 2 {
		t.Fatalf("v=%d", v)
	}
	if m.Len() != 1 {
		t.Fatalf("Len=%d", m.Len())
	}
}

func TestGrowth(t *testing.T) {
	m := New(4, 0)
	slots := m.Slots()
	for i := uint64(1); i <= 1000; i++ {
		m.Put(i, i)
	}
	if m.Slots() <= slots {
		t.Fatal("table did not grow")
	}
	for i := uint64(1); i <= 1000; i++ {
		if v, ok := m.Get(i); !ok || v != i {
			t.Fatalf("lost key %d after growth", i)
		}
	}
}

func TestBackshiftAgainstModel(t *testing.T) {
	// Backward-shift deletion is the subtle part; drive it hard against a
	// Go map model with a small table to force probe chains.
	f := func(seed uint64) bool {
		rng := xrand.New(seed)
		m := New(8, 0)
		model := map[uint64]uint64{}
		for op := 0; op < 600; op++ {
			k := uint64(rng.Intn(40))
			switch rng.Intn(3) {
			case 0, 1:
				v := rng.Next()
				gotNew := m.Put(k, v)
				_, had := model[k]
				if gotNew == had {
					return false
				}
				model[k] = v
			case 2:
				got := m.Delete(k)
				_, want := model[k]
				if got != want {
					return false
				}
				delete(model, k)
			}
			if m.Len() != len(model) {
				return false
			}
		}
		for k, v := range model {
			got, ok := m.Get(k)
			if !ok || got != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestTouchAddresses(t *testing.T) {
	m := New(1000, 0x4000)
	var addrs []uint64
	m.Touch = func(a uint64) { addrs = append(addrs, a) }
	m.Put(42, 1)
	if len(addrs) == 0 {
		t.Fatal("no probe traffic reported")
	}
	for _, a := range addrs {
		if a < 0x4000 || a >= 0x4000+uint64(m.Slots())*16 {
			t.Fatalf("probe address %#x outside table", a)
		}
	}
}
