package pad

import (
	"testing"
	"unsafe"
)

func TestPadded64Size(t *testing.T) {
	if s := unsafe.Sizeof(Padded64{}); s != CacheLineSize {
		t.Fatalf("Padded64 is %d bytes, want %d", s, CacheLineSize)
	}
}

func TestPadded32Size(t *testing.T) {
	if s := unsafe.Sizeof(Padded32{}); s != CacheLineSize {
		t.Fatalf("Padded32 is %d bytes, want %d", s, CacheLineSize)
	}
}

func TestCacheLineSize(t *testing.T) {
	if s := unsafe.Sizeof(CacheLine{}); s != CacheLineSize {
		t.Fatalf("CacheLine is %d bytes, want %d", s, CacheLineSize)
	}
}
