// Package pad provides cache-line padding helpers used to avoid false
// sharing between hot lock fields.
//
// The Malthusian lock algorithms place frequently written fields (the MCS
// tail, the TAS word, per-waiter flags) on their own cache lines so that
// coherence traffic on one field does not invalidate its neighbours.
//
// Two idioms are used throughout package lock:
//
//   - Intra-struct isolation: a trailing anonymous [CacheLineSize - n]byte
//     after an n-byte contended field pushes the next field onto a fresh
//     line (asserted by lock/layout_test.go with unsafe.Offsetof).
//   - Size-class alignment for pooled nodes: a heap object whose size is
//     exactly CacheLineSize lands in the 64-byte allocation size class,
//     whose slots are line-aligned, so padding a waiter node to exactly
//     one line guarantees its spin flag never shares a coherence granule
//     with a neighbouring node — without any explicit aligned allocation.
package pad

// CacheLineSize is the assumed coherence granule in bytes. 64 is correct
// for x86-64 and for the SPARC T5 L3 studied in the paper.
const CacheLineSize = 64

// CacheLine is a full line of padding. Embed between fields that must not
// share a line.
type CacheLine [CacheLineSize]byte

// Padded64 is a uint64 alone on its cache line.
type Padded64 struct {
	Value uint64
	_     [CacheLineSize - 8]byte
}

// Padded32 is a uint32 alone on its cache line.
type Padded32 struct {
	Value uint32
	_     [CacheLineSize - 4]byte
}
