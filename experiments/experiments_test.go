package experiments

import (
	"strings"
	"testing"
)

func quickOpts() Options {
	return Options{Quick: true, Threads: []int{1, 5, 32}, Measure: 6_000_000}
}

func TestFig1Shape(t *testing.T) {
	fig := Fig1(Options{})
	if len(fig.Series) != 2 {
		t.Fatal("figure 1 needs two curves")
	}
	without, with := fig.Series[0], fig.Series[1]
	last := len(without.Points) - 1
	if with.Points[last].Y <= without.Points[last].Y {
		t.Fatal("CR curve must dominate at high thread counts")
	}
	if with.Points[0].Y != without.Points[0].Y {
		t.Fatal("curves must coincide at one thread")
	}
}

func TestFig2Table(t *testing.T) {
	s := Fig2()
	for _, want := range []string{"Succession", "Competitive", "Direct handoff", "barging", "FIFO"} {
		if !strings.Contains(s, want) {
			t.Fatalf("figure 2 table missing %q", want)
		}
	}
}

func TestFig3QuickShape(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation sweep")
	}
	fig := Fig3(quickOpts())
	if len(fig.Series) != 5 {
		t.Fatalf("figure 3 has %d series, want 5", len(fig.Series))
	}
	y := func(label string, x float64) float64 {
		for _, s := range fig.Series {
			if s.Label != label {
				continue
			}
			for _, p := range s.Points {
				if p.X == x {
					return p.Y
				}
			}
		}
		t.Fatalf("missing point %s@%v", label, x)
		return 0
	}
	// At 32 threads the CR-STP form dominates both MCS forms.
	if y("MCSCR-STP", 32) <= y("MCS-S", 32) || y("MCSCR-STP", 32) <= y("MCS-STP", 32) {
		t.Fatalf("MCSCR-STP=%g must beat MCS-S=%g and MCS-STP=%g at 32T",
			y("MCSCR-STP", 32), y("MCS-S", 32), y("MCS-STP", 32))
	}
	// Single thread: all real locks within 10%.
	base := y("MCS-S", 1)
	for _, l := range []string{"MCS-STP", "MCSCR-S", "MCSCR-STP"} {
		if d := y(l, 1) / base; d < 0.9 || d > 1.1 {
			t.Fatalf("%s single-thread ratio %v", l, d)
		}
	}
	// TSV renders all series and points.
	tsv := fig.TSV()
	if !strings.Contains(tsv, "MCSCR-STP") || !strings.Contains(tsv, "\n32\t") {
		t.Fatalf("bad TSV:\n%s", tsv)
	}
}

func TestFig4Rows(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation sweep")
	}
	rows := Fig4(Options{Measure: 8_000_000})
	if len(rows) != 4 {
		t.Fatalf("%d rows", len(rows))
	}
	byLock := map[string]Fig4Row{}
	for _, r := range rows {
		byLock[r.Lock] = r
	}
	mcsS, crSTP := byLock["MCS-S"], byLock["MCSCR-STP"]
	if crSTP.Throughput <= mcsS.Throughput {
		t.Fatalf("throughput: CR %.3g <= MCS-S %.3g", crSTP.Throughput, mcsS.Throughput)
	}
	if crSTP.AvgLWSS >= mcsS.AvgLWSS/2 {
		t.Fatalf("LWSS: CR %.1f vs MCS-S %.1f", crSTP.AvgLWSS, mcsS.AvgLWSS)
	}
	if crSTP.MTTR >= mcsS.MTTR {
		t.Fatal("CR MTTR must be below FIFO MTTR")
	}
	if crSTP.Gini <= mcsS.Gini {
		t.Fatal("CR must be short-term unfairer than FIFO")
	}
	if crSTP.L3Misses*10 >= mcsS.L3Misses {
		t.Fatalf("L3: CR %d vs MCS-S %d (want >=10x reduction)", crSTP.L3Misses, mcsS.L3Misses)
	}
	if crSTP.CPUUtil >= mcsS.CPUUtil/2 {
		t.Fatalf("CPU util: CR %.1f vs MCS-S %.1f", crSTP.CPUUtil, mcsS.CPUUtil)
	}
	if crSTP.DeltaWatts >= mcsS.DeltaWatts {
		t.Fatal("CR-STP must draw less power than spinning MCS")
	}
	if s := Fig4TSV(rows); !strings.Contains(s, "Average LWSS") {
		t.Fatal("bad table")
	}
}

func TestOptionsDefaults(t *testing.T) {
	o := Options{}.withDefaults()
	if o.Scale != 16 || o.Measure != 12_000_000 || len(o.Threads) == 0 || o.Seed != 1 {
		t.Fatalf("bad defaults: %+v", o)
	}
	q := Options{Quick: true}.withDefaults()
	if len(q.Threads) >= len(o.Threads) {
		t.Fatal("quick sweep not smaller")
	}
}
