// Package experiments regenerates every table and figure of the paper's
// evaluation (§6) on the simulated machine. Each FigN function sweeps the
// paper's parameter space and returns a Figure whose series carry the same
// quantities the paper plots; cmd/figures renders them as TSV, and
// bench_test.go wraps each in a testing.B benchmark.
//
// Absolute values are simulator values; EXPERIMENTS.md records the
// paper-vs-measured comparison and the shape criteria each figure must
// meet.
package experiments

import (
	"fmt"
	"sort"
	"strings"

	"repro/metrics"
	"repro/model"
	"repro/sim"
	"repro/workloads"
)

// Options controls an experiment run.
type Options struct {
	// Scale divides cache capacities and workload footprints (see
	// DESIGN.md). Default 16.
	Scale int
	// Measure is the measurement interval in simulated cycles. Default
	// 12M (≈3.3 ms at 3.6 GHz); the paper uses 10 s wall-clock but the
	// workloads reach steady state well within a millisecond.
	Measure sim.Cycles
	// Threads is the sweep; default is the paper's log-style 1..256.
	Threads []int
	// Quick trims the sweep to a handful of points (tests, benches).
	Quick bool
	Seed  uint64
}

func (o Options) withDefaults() Options {
	if o.Scale <= 0 {
		o.Scale = 16
	}
	if o.Measure <= 0 {
		o.Measure = 12_000_000
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if len(o.Threads) == 0 {
		if o.Quick {
			o.Threads = []int{1, 5, 16, 32, 64}
		} else {
			o.Threads = []int{1, 2, 3, 5, 8, 12, 16, 24, 32, 48, 64, 96, 128, 160, 224, 256}
		}
	}
	return o
}

// Point is one measured sweep point.
type Point struct {
	X      float64
	Y      float64
	Detail sim.Result
}

// Series is one curve of a figure.
type Series struct {
	Label  string
	Points []Point
}

// Figure is a regenerated figure: a set of series over a common x-axis.
type Figure struct {
	ID     string
	Title  string
	XLabel string
	YLabel string
	Series []Series
}

// TSV renders the figure as tab-separated values with one row per x and
// one column per series, suitable for plotting.
func (f Figure) TSV() string {
	var b strings.Builder
	fmt.Fprintf(&b, "# %s: %s\n", f.ID, f.Title)
	fmt.Fprintf(&b, "%s", f.XLabel)
	for _, s := range f.Series {
		fmt.Fprintf(&b, "\t%s", s.Label)
	}
	b.WriteByte('\n')
	xs := map[float64]bool{}
	for _, s := range f.Series {
		for _, p := range s.Points {
			xs[p.X] = true
		}
	}
	sorted := make([]float64, 0, len(xs))
	for x := range xs {
		sorted = append(sorted, x)
	}
	sort.Float64s(sorted)
	for _, x := range sorted {
		fmt.Fprintf(&b, "%g", x)
		for _, s := range f.Series {
			y := ""
			for _, p := range s.Points {
				if p.X == x {
					y = fmt.Sprintf("%g", p.Y)
					break
				}
			}
			fmt.Fprintf(&b, "\t%s", y)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// lockSet is the four-lock comparison used by most figures.
type lockCfg struct {
	label string
	spec  sim.LockSpec
}

func standardLocks() []lockCfg {
	return []lockCfg{
		{"MCS-S", sim.LockSpec{Kind: sim.KindMCS, Mode: sim.ModeSpin}},
		{"MCS-STP", sim.LockSpec{Kind: sim.KindMCS, Mode: sim.ModeSTP}},
		{"MCSCR-S", sim.LockSpec{Kind: sim.KindMCSCR, Mode: sim.ModeSpin}},
		{"MCSCR-STP", sim.LockSpec{Kind: sim.KindMCSCR, Mode: sim.ModeSTP}},
	}
}

// buildFunc wires a workload onto an engine for n threads over lock l.
type buildFunc func(e *sim.Engine, l *sim.Lock, n int)

// sweep runs the standard lock set over the thread sweep.
func sweep(o Options, id, title, ylabel string, largePages bool, locks []lockCfg, build buildFunc) Figure {
	o = o.withDefaults()
	fig := Figure{ID: id, Title: title, XLabel: "threads", YLabel: ylabel}
	for _, lc := range locks {
		s := Series{Label: lc.label}
		for _, n := range o.Threads {
			res := runOne(o, lc.spec, n, largePages, build)
			s.Points = append(s.Points, Point{
				X:      float64(n),
				Y:      res.StepsPerSec,
				Detail: res,
			})
		}
		fig.Series = append(fig.Series, s)
	}
	return fig
}

func runOne(o Options, spec sim.LockSpec, n int, largePages bool, build buildFunc) sim.Result {
	cfg := sim.DefaultConfig(o.Scale)
	cfg.Seed = o.Seed
	if largePages {
		workloads.ConfigureLargePages(&cfg)
	}
	e := sim.New(cfg)
	l := e.NewLock(spec)
	build(e, l, n)
	return e.RunStandard(o.Measure)
}

// Fig1 regenerates Figure 1 (idealized CR impact) from the closed-form
// model.
func Fig1(o Options) Figure {
	p := model.Example()
	threads, without, with := p.Curves(32)
	fig := Figure{
		ID:     "fig1",
		Title:  "Impact of Concurrency Restriction (idealized model; CS=1, NCS=5)",
		XLabel: "threads",
		YLabel: "throughput (iterations/unit time)",
		Series: []Series{{Label: "Without CR"}, {Label: "With CR"}},
	}
	for i, n := range threads {
		fig.Series[0].Points = append(fig.Series[0].Points, Point{X: float64(n), Y: without[i]})
		fig.Series[1].Points = append(fig.Series[1].Points, Point{X: float64(n), Y: with[i]})
	}
	return fig
}

// Fig2 renders the TAS-versus-MCS property comparison (Figure 2), a
// static taxonomy.
func Fig2() string {
	rows := [][3]string{
		{"Property", "TAS", "MCS"},
		{"Succession", "Competitive", "Direct handoff"},
		{"Able to use spin-then-park waiting", "No", "Yes"},
		{"Polite local spinning (minimal coherence traffic)", "No", "Yes"},
		{"Low contention performance (latency)", "Preferred", "Inferior to TAS"},
		{"High contention performance (throughput)", "Inferior to MCS", "Preferred"},
		{"Performance under preemption", "Preferred", "Lock-waiter preemption"},
		{"Fairness", "Unbounded unfairness (barging)", "Fair (FIFO)"},
		{"Requires back-off tuning", "Yes", "No"},
	}
	var b strings.Builder
	for _, r := range rows {
		fmt.Fprintf(&b, "%-50s\t%-30s\t%s\n", r[0], r[1], r[2])
	}
	return b.String()
}

// Fig3 regenerates Figure 3: RandArray aggregate throughput, five locks.
func Fig3(o Options) Figure {
	locks := append(standardLocks(), lockCfg{"null", sim.LockSpec{Kind: sim.KindNull}})
	return sweep(o, "fig3", "Random Access Array (§6.1)", "steps/sec", true, locks,
		func(e *sim.Engine, l *sim.Lock, n int) {
			workloads.BuildRandArray(e, l, n, workloads.DefaultRandArray())
		})
}

// Fig4Row is one column of Figure 4's in-depth table.
type Fig4Row struct {
	Lock                 string
	Throughput           float64
	AvgLWSS              float64
	MTTR                 float64
	Gini                 float64
	RSTDDEV              float64
	VoluntaryCtxSwitches uint64
	CPUUtil              float64
	L3Misses             uint64
	DeltaWatts           float64
}

// Fig4 regenerates Figure 4: in-depth RandArray measurements at 32
// threads.
func Fig4(o Options) []Fig4Row {
	o = o.withDefaults()
	var rows []Fig4Row
	for _, lc := range standardLocks() {
		res := runOne(o, lc.spec, 32, true, func(e *sim.Engine, l *sim.Lock, n int) {
			workloads.BuildRandArray(e, l, n, workloads.DefaultRandArray())
		})
		rows = append(rows, Fig4Row{
			Lock:                 lc.label,
			Throughput:           res.StepsPerSec,
			AvgLWSS:              res.Fairness.AvgLWSS,
			MTTR:                 res.Fairness.MTTR,
			Gini:                 res.Fairness.Gini,
			RSTDDEV:              res.Fairness.RSTDDEV,
			VoluntaryCtxSwitches: res.VoluntaryCtxSwitches,
			CPUUtil:              res.CPUUtil,
			L3Misses:             res.CacheStats.LLCMisses,
			DeltaWatts:           res.DeltaWatts,
		})
	}
	return rows
}

// Fig4TSV renders the Figure 4 table.
func Fig4TSV(rows []Fig4Row) string {
	var b strings.Builder
	b.WriteString("Locks")
	for _, r := range rows {
		fmt.Fprintf(&b, "\t%s", r.Lock)
	}
	b.WriteByte('\n')
	line := func(name string, f func(Fig4Row) string) {
		b.WriteString(name)
		for _, r := range rows {
			fmt.Fprintf(&b, "\t%s", f(r))
		}
		b.WriteByte('\n')
	}
	line("Throughput (steps/sec)", func(r Fig4Row) string { return fmt.Sprintf("%.3g", r.Throughput) })
	line("Average LWSS (threads)", func(r Fig4Row) string { return fmt.Sprintf("%.1f", r.AvgLWSS) })
	line("MTTR (admissions)", func(r Fig4Row) string { return fmt.Sprintf("%.1f", r.MTTR) })
	line("Gini Coefficient", func(r Fig4Row) string { return fmt.Sprintf("%.3f", r.Gini) })
	line("RSTDDEV", func(r Fig4Row) string { return fmt.Sprintf("%.3f", r.RSTDDEV) })
	line("Voluntary Context Switches", func(r Fig4Row) string { return fmt.Sprintf("%d", r.VoluntaryCtxSwitches) })
	line("CPU Utilization (CPUs)", func(r Fig4Row) string { return fmt.Sprintf("%.1fx", r.CPUUtil) })
	line("L3 Misses", func(r Fig4Row) string { return fmt.Sprintf("%d", r.L3Misses) })
	line("∆ Watts above idle", func(r Fig4Row) string { return fmt.Sprintf("%.0f", r.DeltaWatts) })
	return b.String()
}

// Fig5 regenerates Figure 5: RingWalker core-level DTLB pressure.
func Fig5(o Options) Figure {
	return sweep(o, "fig5", "Core-level DTLB Pressure (§6.2)", "steps/sec", false, standardLocks(),
		func(e *sim.Engine, l *sim.Lock, n int) {
			workloads.BuildRingWalker(e, l, n, workloads.DefaultRingWalker())
		})
}

// Fig6 regenerates Figure 6: libslock stress_latency (pipeline-bound).
func Fig6(o Options) Figure {
	return sweep(o, "fig6", "libslock stress_latency (§6.3)", "lock acquires/sec", false, standardLocks(),
		func(e *sim.Engine, l *sim.Lock, n int) {
			workloads.BuildStressLatency(e, l, n, workloads.DefaultStressLatency())
		})
}

// Fig7 regenerates Figure 7: mmicro malloc-free pairs over the splay
// allocator.
func Fig7(o Options) Figure {
	oo := o.withDefaults()
	return sweep(o, "fig7", "mmicro malloc-free scalability (§6.4)", "malloc-free pairs/sec", true, standardLocks(),
		func(e *sim.Engine, l *sim.Lock, n int) {
			workloads.BuildMmicro(e, l, n, workloads.DefaultMmicro(oo.Scale))
		})
}

// Fig8 regenerates Figure 8: the leveldb readwhilewriting stand-in.
func Fig8(o Options) Figure {
	return sweep(o, "fig8", "kvstore readwhilewriting (§6.5, leveldb stand-in)", "ops/sec", true, standardLocks(),
		func(e *sim.Engine, l *sim.Lock, n int) {
			workloads.BuildKVStore(e, l, n, workloads.DefaultKVStore())
		})
}

// Fig9 regenerates Figure 9: the Kyoto Cabinet kccachetest stand-in.
func Fig9(o Options) Figure {
	return sweep(o, "fig9", "hashdb cache test (§6.6, Kyoto Cabinet stand-in)", "ops/sec", true, standardLocks(),
		func(e *sim.Engine, l *sim.Lock, n int) {
			workloads.BuildHashDB(e, l, n, workloads.DefaultHashDB())
		})
}

// Fig10 regenerates Figure 10: producer-consumer with 3 consumers,
// varying producers.
func Fig10(o Options) Figure {
	return sweep(o, "fig10", "producer-consumer, 3 consumers (§6.7)", "messages/sec", false, standardLocks(),
		func(e *sim.Engine, l *sim.Lock, n int) {
			workloads.BuildProdCons(e, l, n, workloads.DefaultProdCons(), 1.0, sim.ModeSTP)
		})
}

// Fig11 regenerates Figure 11: keymap.
func Fig11(o Options) Figure {
	return sweep(o, "fig11", "keymap (§6.8)", "ops/sec", true, standardLocks(),
		func(e *sim.Engine, l *sim.Lock, n int) {
			workloads.BuildKeymap(e, l, n, workloads.DefaultKeymap())
		})
}

// Fig12 regenerates Figure 12: LRUCache over CEPH SimpleLRU.
func Fig12(o Options) Figure {
	return sweep(o, "fig12", "LRUCache (§6.9, CEPH SimpleLRU)", "ops/sec", true, standardLocks(),
		func(e *sim.Engine, l *sim.Lock, n int) {
			workloads.BuildLRUCache(e, l, n, workloads.DefaultLRUCache())
		})
}

// Fig13 regenerates Figure 13: the perl-style interpreter, FIFO versus
// mostly-LIFO condition-variable admission.
func Fig13(o Options) Figure {
	o = o.withDefaults()
	fig := Figure{ID: "fig13", Title: "RandArray transliterated to an interpreter (§6.10)",
		XLabel: "threads", YLabel: "iterations/sec"}
	for _, pc := range []struct {
		label string
		p     float64
	}{{"FIFO", 1.0}, {"Mostly-LIFO", 1.0 / 1000}} {
		s := Series{Label: pc.label}
		for _, n := range o.Threads {
			cfg := sim.DefaultConfig(o.Scale)
			cfg.Seed = o.Seed
			workloads.ConfigureLargePages(&cfg)
			e := sim.New(cfg)
			_ = e.NewLock(sim.LockSpec{Kind: sim.KindNull}) // primary metrics slot
			workloads.BuildInterp(e, n, workloads.DefaultInterp(), pc.p)
			res := e.RunStandard(o.Measure)
			s.Points = append(s.Points, Point{X: float64(n), Y: res.StepsPerSec, Detail: res})
		}
		fig.Series = append(fig.Series, s)
	}
	return fig
}

// Fig14 regenerates Figure 14: the buffer pool, sweeping the condvar
// append probability.
func Fig14(o Options) Figure {
	o = o.withDefaults()
	fig := Figure{ID: "fig14", Title: "Buffer Pool append-probability sweep (§6.11)",
		XLabel: "threads", YLabel: "iterations/sec"}
	probs := []struct {
		label string
		p     float64
	}{
		{"Append=1/1", 1.0},
		{"Append=1/10", 0.1},
		{"Append=1/50", 0.02},
		{"Append=1/100", 0.01},
		{"Append=1/1000", 0.001},
		{"Append=0", 0},
	}
	if o.Quick {
		probs = probs[:3]
	}
	for _, pc := range probs {
		s := Series{Label: pc.label}
		for _, n := range o.Threads {
			res := runOne(o, sim.LockSpec{Kind: sim.KindMCS, Mode: sim.ModeSpin}, n, true,
				func(e *sim.Engine, l *sim.Lock, n int) {
					workloads.BuildBufferPool(e, l, n, workloads.DefaultBufferPool(), pc.p)
				})
			s.Points = append(s.Points, Point{X: float64(n), Y: res.StepsPerSec, Detail: res})
		}
		fig.Series = append(fig.Series, s)
	}
	return fig
}

// FairnessSummary extracts the fairness summary of a run's primary lock.
func FairnessSummary(res sim.Result) metrics.Summary { return res.Fairness }
