package experiments

import (
	"repro/sim"
	"repro/workloads"
)

// FigNUMA is an extension experiment beyond the paper's evaluation: the
// §9.1 future-work NUMA-aware Malthusian lock (MCSCRN) on a two-socket
// T5-2-shaped machine, compared against plain MCSCR and MCS. The paper
// reports "early experiments with NUMA-aware CR show that MCSCRN performs
// as well as or better than CPTLTKTD, the best known cohort lock"; here
// we verify the mechanism it credits — reduced lock migrations from a
// demographically homogeneous ACS.
func FigNUMA(o Options) Figure {
	o = o.withDefaults()
	fig := Figure{ID: "numa", Title: "MCSCRN on a 2-socket machine (§9.1 extension)",
		XLabel: "threads", YLabel: "steps/sec"}
	locks := []lockCfg{
		{"MCS-STP", sim.LockSpec{Kind: sim.KindMCS, Mode: sim.ModeSTP}},
		{"MCSCR-STP", sim.LockSpec{Kind: sim.KindMCSCR, Mode: sim.ModeSTP}},
		{"MCSCRN-STP", sim.LockSpec{Kind: sim.KindMCSCRN, Mode: sim.ModeSTP}},
	}
	for _, lc := range locks {
		s := Series{Label: lc.label}
		for _, n := range o.Threads {
			cfg := sim.DefaultConfig(o.Scale)
			cfg.Seed = o.Seed
			// Bring the T5-2's second socket online: 32 cores over 2
			// NUMA nodes (the base evaluation kept it offline).
			cfg.Cores = 32
			cfg.Sockets = 2
			workloads.ConfigureLargePages(&cfg)
			e := sim.New(cfg)
			l := e.NewLock(lc.spec)
			workloads.BuildRandArray(e, l, n, workloads.DefaultRandArray())
			res := e.RunStandard(o.Measure)
			s.Points = append(s.Points, Point{X: float64(n), Y: res.StepsPerSec, Detail: res})
		}
		fig.Series = append(fig.Series, s)
	}
	return fig
}

// MigrationRates extracts per-acquisition lock-migration rates from a
// FigNUMA result for reporting.
func MigrationRates(fig Figure) map[string]float64 {
	out := make(map[string]float64, len(fig.Series))
	for _, s := range fig.Series {
		if len(s.Points) == 0 {
			continue
		}
		p := s.Points[len(s.Points)-1]
		if p.Detail.Lock.Acquires > 0 {
			out[s.Label] = float64(p.Detail.Lock.LockMigrations) / float64(p.Detail.Lock.Acquires)
		}
	}
	return out
}
