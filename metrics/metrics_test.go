package metrics

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/xrand"
)

func almostEq(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestLWSSDistinct(t *testing.T) {
	cases := []struct {
		h    History
		want int
	}{
		{History{}, 0},
		{History{1}, 1},
		{History{1, 1, 1}, 1},
		{History{1, 2, 3}, 3},
		{History{1, 2, 1, 2}, 2},
	}
	for _, c := range cases {
		if got := LWSS(c.h); got != c.want {
			t.Errorf("LWSS(%v)=%d want %d", c.h, got, c.want)
		}
	}
}

func TestAvgLWSSPaperExample(t *testing.T) {
	// §1: admission order A B C A B C D A E; LWSS for period 0-5 is 3.
	h := History{0, 1, 2, 0, 1, 2, 3, 0, 4}
	if got := LWSS(h[0:6]); got != 3 {
		t.Fatalf("paper example LWSS=%d want 3", got)
	}
}

func TestAvgLWSSWindowing(t *testing.T) {
	// Two abutting windows of 4: {1,2,3,4} (LWSS 4) and {1,1,1,1} (LWSS 1).
	h := History{1, 2, 3, 4, 1, 1, 1, 1}
	if got := AvgLWSS(h, 4); !almostEq(got, 2.5) {
		t.Fatalf("AvgLWSS=%v want 2.5", got)
	}
}

func TestAvgLWSSDropsShortTail(t *testing.T) {
	// Window 4 with a 1-element tail: tail is shorter than window/2 and a
	// full window exists, so it is dropped.
	h := History{1, 2, 3, 4, 9}
	if got := AvgLWSS(h, 4); !almostEq(got, 4) {
		t.Fatalf("AvgLWSS=%v want 4 (tail dropped)", got)
	}
}

func TestAvgLWSSEmptyAndPanic(t *testing.T) {
	if got := AvgLWSS(nil, 10); got != 0 {
		t.Fatalf("empty history AvgLWSS=%v", got)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("AvgLWSS with window 0 must panic")
		}
	}()
	AvgLWSS(History{1}, 0)
}

func TestAvgLWSSBounds(t *testing.T) {
	// Property: 1 <= AvgLWSS <= min(window, #distinct) for non-empty
	// histories.
	f := func(seed uint64, n uint8, threads uint8) bool {
		if n == 0 {
			n = 1
		}
		nt := int(threads%16) + 1
		rng := xrand.New(seed)
		h := make(History, int(n))
		for i := range h {
			h[i] = rng.Intn(nt)
		}
		got := AvgLWSS(h, 8)
		return got >= 1 && got <= float64(min(8, nt))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTTRs(t *testing.T) {
	// Thread 1 at 0 and 2 (TTR 2); thread 2 at 1 and 3 (TTR 2).
	h := History{1, 2, 1, 2}
	got := TTRs(h)
	if len(got) != 2 || got[0] != 2 || got[1] != 2 {
		t.Fatalf("TTRs=%v", got)
	}
}

func TestMTTRCyclic(t *testing.T) {
	// Perfect round-robin over n threads has every TTR equal to n.
	for _, n := range []int{2, 3, 5, 8} {
		h := make(History, n*10)
		for i := range h {
			h[i] = i % n
		}
		if got := MTTR(h); !almostEq(got, float64(n)) {
			t.Fatalf("n=%d MTTR=%v", n, got)
		}
	}
}

func TestMTTRGreedy(t *testing.T) {
	// One thread monopolizes: every reacquire is immediate.
	h := History{7, 7, 7, 7, 7}
	if got := MTTR(h); !almostEq(got, 1) {
		t.Fatalf("MTTR=%v want 1", got)
	}
}

func TestMTTRNoReacquire(t *testing.T) {
	if got := MTTR(History{1, 2, 3}); got != 0 {
		t.Fatalf("MTTR=%v want 0", got)
	}
}

func TestMTTREvenMedian(t *testing.T) {
	// TTRs {1,3}: median 2.
	h := History{5, 5, 9, 9, 9} // TTR(5)=1 at idx1; TTR(9)=1,1 → {1,1,1}? recompute
	_ = h
	// Construct explicitly: history 1,1,2,3,2 → TTRs: 1 (thread1), 2
	// (thread2 at 2 and 4). Median of {1,2} = 1.5.
	h2 := History{1, 1, 2, 3, 2}
	if got := MTTR(h2); !almostEq(got, 1.5) {
		t.Fatalf("MTTR=%v want 1.5", got)
	}
}

func TestGiniUniformIsZero(t *testing.T) {
	f := func(v uint16, n uint8) bool {
		m := int(n%20) + 1
		vs := make([]float64, m)
		for i := range vs {
			vs[i] = float64(v) + 1
		}
		return almostEq(Gini(vs), 0)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestGiniRange(t *testing.T) {
	f := func(seed uint64, n uint8) bool {
		m := int(n%20) + 2
		rng := xrand.New(seed)
		vs := make([]float64, m)
		for i := range vs {
			vs[i] = float64(rng.Intn(1000))
		}
		g := Gini(vs)
		return g >= 0 && g <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestGiniMaximalUnfairness(t *testing.T) {
	// One thread does all the work among n: G = (n-1)/n → 1 as n grows.
	vs := make([]float64, 10)
	vs[0] = 100
	if got, want := Gini(vs), 0.9; !almostEq(got, want) {
		t.Fatalf("Gini=%v want %v", got, want)
	}
}

func TestGiniScaleInvariant(t *testing.T) {
	f := func(seed uint64) bool {
		rng := xrand.New(seed)
		vs := make([]float64, 12)
		ws := make([]float64, 12)
		for i := range vs {
			vs[i] = float64(rng.Intn(100) + 1)
			ws[i] = vs[i] * 7
		}
		return almostEq(Gini(vs), Gini(ws))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestGiniEdgeCases(t *testing.T) {
	if Gini(nil) != 0 {
		t.Fatal("Gini(nil) != 0")
	}
	if Gini([]float64{0, 0, 0}) != 0 {
		t.Fatal("Gini(zeros) != 0")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("negative value must panic")
		}
	}()
	Gini([]float64{1, -1})
}

func TestRSTDDEV(t *testing.T) {
	if got := RSTDDEV([]float64{5, 5, 5, 5}); !almostEq(got, 0) {
		t.Fatalf("uniform RSTDDEV=%v", got)
	}
	// {2, 4}: mean 3, population stddev 1 → 1/3.
	if got := RSTDDEV([]float64{2, 4}); !almostEq(got, 1.0/3) {
		t.Fatalf("RSTDDEV=%v want 1/3", got)
	}
	if got := RSTDDEV(nil); got != 0 {
		t.Fatalf("RSTDDEV(nil)=%v", got)
	}
	if got := RSTDDEV([]float64{0, 0}); got != 0 {
		t.Fatalf("RSTDDEV(zeros)=%v", got)
	}
}

func TestCounts(t *testing.T) {
	h := History{1, 2, 1, 1, 3}
	c := Counts(h)
	if c[1] != 3 || c[2] != 1 || c[3] != 1 || len(c) != 3 {
		t.Fatalf("Counts=%v", c)
	}
}

func TestRecorder(t *testing.T) {
	r := NewRecorder(16)
	for i := 0; i < 10; i++ {
		r.Record(i % 3)
	}
	if r.Len() != 10 {
		t.Fatalf("Len=%d", r.Len())
	}
	if LWSS(r.History()) != 3 {
		t.Fatalf("recorded LWSS=%d", LWSS(r.History()))
	}
	r.Reset()
	if r.Len() != 0 {
		t.Fatal("Reset did not clear")
	}
}

func TestRecorderSnapshotSurvivesReset(t *testing.T) {
	r := NewRecorder(4)
	for _, id := range []int{1, 2, 1} {
		r.Record(id)
	}
	snap := r.Snapshot()
	alias := r.History()
	r.Reset()
	for i := 0; i < 3; i++ {
		r.Record(9) // refills the storage the alias points into
	}
	want := History{1, 2, 1}
	for i, id := range want {
		if snap[i] != id {
			t.Fatalf("Snapshot[%d]=%d after Reset, want %d", i, snap[i], id)
		}
	}
	// The documented hazard: the aliasing History was overwritten in place.
	if len(alias) == 3 && alias[0] == 9 && snap[0] == 1 {
		return
	}
	t.Fatalf("aliasing contract changed: alias=%v snap=%v", alias, snap)
}

func TestSummarizeFIFOVersusCR(t *testing.T) {
	// A synthetic FIFO history over 32 threads vs a CR history where only
	// 5 circulate with rare promotion. The summary must rank them the way
	// Figure 4 does: CR has far smaller LWSS and MTTR, slightly larger
	// Gini.
	const threads, rounds = 32, 1000
	fifo := make(History, 0, threads*rounds)
	for r := 0; r < rounds; r++ {
		for th := 0; th < threads; th++ {
			fifo = append(fifo, th)
		}
	}
	rng := xrand.New(1)
	cr := make(History, 0, threads*rounds)
	acs := []int{0, 1, 2, 3, 4}
	nextOutside := 5
	for len(cr) < threads*rounds {
		for _, th := range acs {
			cr = append(cr, th)
		}
		if rng.Bernoulli(200) {
			// Promote an outsider into the ACS, displacing one member.
			acs[rng.Intn(len(acs))] = nextOutside
			nextOutside = (nextOutside + 1) % threads
		}
	}
	sf := Summarize(fifo, DefaultWindow)
	sc := Summarize(cr, DefaultWindow)
	if !almostEq(sf.AvgLWSS, threads) {
		t.Fatalf("FIFO AvgLWSS=%v want %d", sf.AvgLWSS, threads)
	}
	if !almostEq(sf.MTTR, threads) {
		t.Fatalf("FIFO MTTR=%v want %d", sf.MTTR, threads)
	}
	if !almostEq(sf.Gini, 0) || !almostEq(sf.RSTDDEV, 0) {
		t.Fatalf("FIFO should be perfectly fair: %+v", sf)
	}
	if sc.AvgLWSS > 8 {
		t.Fatalf("CR AvgLWSS=%v, expected near ACS size 5", sc.AvgLWSS)
	}
	if sc.MTTR > 6 {
		t.Fatalf("CR MTTR=%v, expected near 5", sc.MTTR)
	}
	if sc.Gini <= sf.Gini {
		t.Fatalf("CR Gini (%v) should exceed FIFO Gini (%v)", sc.Gini, sf.Gini)
	}
	if s := sc.String(); s == "" {
		t.Fatal("empty summary string")
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func TestRecentLWSS(t *testing.T) {
	if got := RecentLWSS(nil, 4); got != 0 {
		t.Fatalf("RecentLWSS(empty) = %d", got)
	}
	// Old diversity, recent collapse: 4 distinct ids early, then a long
	// run of one id. The trailing window sees only the collapsed set.
	h := History{1, 2, 3, 4, 9, 9, 9, 9, 9, 9}
	if got := RecentLWSS(h, 4); got != 1 {
		t.Fatalf("RecentLWSS(window 4) = %d want 1", got)
	}
	if got := RecentLWSS(h, 100); got != 5 {
		t.Fatalf("RecentLWSS(window > len) = %d want 5", got)
	}
	if got := LWSS(h); got != 5 {
		t.Fatalf("LWSS = %d want 5", got)
	}
	s := Summarize(h, 4)
	if s.RecentLWSS != 1 {
		t.Fatalf("Summarize.RecentLWSS = %v want 1", s.RecentLWSS)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("RecentLWSS(window 0) did not panic")
		}
	}()
	RecentLWSS(h, 0)
}

// TestRecentDistinctOracle drives the Recorder's incremental trailing
// distinct count against the standalone RecentLWSS walk as a
// differential oracle: after every Record the two must agree exactly,
// over a stream engineered to churn ids in and out of the window.
func TestRecentDistinctOracle(t *testing.T) {
	for _, window := range []int{1, 2, 7, 64} {
		r := NewRecorderWindow(4096, window)
		// Deterministic mixed stream: runs of one id, bursts of distinct
		// ids, and revisits — the cases where eviction accounting breaks.
		id, x := 0, uint64(12345)
		for i := 0; i < 3000; i++ {
			x ^= x << 13
			x ^= x >> 7
			x ^= x << 17
			switch x % 4 {
			case 0:
				id = int(x % 5) // tight reuse set
			case 1:
				id = i // fresh id
			case 2:
				// keep the previous id: a run
			case 3:
				id = int(x % 97) // wide reuse set
			}
			r.Record(id)
			want := RecentLWSS(r.History(), window)
			if got := r.RecentDistinct(); got != want {
				t.Fatalf("window %d, step %d: RecentDistinct = %d, oracle RecentLWSS = %d", window, i, got, want)
			}
		}
		// Reset starts the count over with the history.
		r.Reset()
		if got := r.RecentDistinct(); got != 0 {
			t.Fatalf("window %d: RecentDistinct after Reset = %d", window, got)
		}
		r.Record(1)
		r.Record(1)
		r.Record(2)
		if got := r.RecentDistinct(); got != RecentLWSS(r.History(), window) {
			t.Fatalf("window %d: post-Reset RecentDistinct = %d", window, got)
		}
	}
}

// TestNewRecorderDefaultWindow: NewRecorder's trailing count uses
// DefaultWindow, and a non-positive explicit window panics like
// RecentLWSS does.
func TestNewRecorderDefaultWindow(t *testing.T) {
	r := NewRecorder(8)
	for i := 0; i < 5; i++ {
		r.Record(i)
	}
	if got := r.RecentDistinct(); got != 5 {
		t.Fatalf("RecentDistinct = %d want 5", got)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("NewRecorderWindow(n, 0) did not panic")
		}
	}()
	NewRecorderWindow(8, 0)
}
