// Package metrics implements the fairness and locality instruments defined
// in §1 and §6 of "Malthusian Locks":
//
//   - the lock working set size (LWSS): the number of distinct threads that
//     acquired a lock within a window of the admission history, averaged
//     over disjoint abutting windows (short-term fairness, in threads);
//   - the median time to reacquire (MTTR): at each admission, the number of
//     admissions since the acquiring thread last held the lock, analogous
//     to reuse distance in memory management;
//   - the Gini coefficient over per-thread completed work (long-term
//     fairness; 0 is ideally fair, 1 maximally unfair);
//   - the relative standard deviation (RSTDDEV) of per-thread work.
//
// Histories are sequences of thread identifiers in admission (ordinal
// acquisition) order. The package is agnostic about where a history comes
// from: the real lock harness records one inside the critical section, and
// the simulator records one per simulated lock.
package metrics

import (
	"fmt"
	"math"
	"sort"
)

// DefaultWindow is the LWSS window used throughout the paper: "In this
// paper we use a window size of 1000 acquisitions, well above the maximum
// number of participating threads."
const DefaultWindow = 1000

// History is an admission history: element i is the id of the thread that
// performed the i-th lock acquisition.
type History []int

// Recorder accumulates an admission history. It is not synchronized: the
// paper's protocol is to record inside the critical section, where the lock
// itself serializes appends.
//
// Alongside the history the Recorder maintains the trailing-window
// distinct-thread count incrementally (see RecentDistinct): each Record
// charges O(1) expected map work instead of the O(window) walk the
// standalone RecentLWSS pays, so a controller can read the live working
// set on every poll without rescanning history.
type Recorder struct {
	//lockcheck:guardedby external
	history History
	//lockcheck:guardedby external
	window int

	// counts holds per-id occurrence counts within the trailing window
	// (entries are deleted at zero, so the map never outgrows the window);
	// distinct is the number of nonzero entries — RecentLWSS(history,
	// window), maintained incrementally.
	//lockcheck:guardedby external
	counts map[int]int
	//lockcheck:guardedby external
	distinct int
}

// NewRecorder returns a Recorder with capacity pre-sized for n admissions
// and the trailing distinct count over DefaultWindow.
func NewRecorder(n int) *Recorder {
	return NewRecorderWindow(n, DefaultWindow)
}

// NewRecorderWindow is NewRecorder with an explicit trailing window for
// RecentDistinct. It panics when window <= 0, like RecentLWSS.
func NewRecorderWindow(n, window int) *Recorder {
	if window <= 0 {
		panic(fmt.Sprintf("metrics: Recorder window %d <= 0", window))
	}
	return &Recorder{
		history: make(History, 0, n),
		window:  window,
		counts:  make(map[int]int, 64),
	}
}

// Record appends one admission by thread id.
//
//lockcheck:cs
func (r *Recorder) Record(id int) {
	r.history = append(r.history, id)
	if r.counts[id]++; r.counts[id] == 1 {
		r.distinct++
	}
	if len(r.history) > r.window {
		// The admission that just fell out of the trailing window.
		old := r.history[len(r.history)-1-r.window]
		if r.counts[old]--; r.counts[old] == 0 {
			r.distinct--
			delete(r.counts, old)
		}
	}
}

// RecentDistinct returns the number of distinct thread ids in the trailing
// window of the history: identical to RecentLWSS(History(), window) for
// the window the Recorder was built with, but O(1) — the count is
// maintained incrementally by Record. Like every history-derived
// instrument it freezes when the owner stops recording.
func (r *Recorder) RecentDistinct() int { return r.distinct }

// History returns the recorded admission history.
//
// Ownership rule: the returned slice aliases the recorder's storage and is
// valid only until the next Reset — Reset truncates the storage in place,
// so a held History would silently fill with the admissions recorded
// afterwards. Callers that keep a history across Reset (or hand it to
// another goroutine) must use Snapshot instead.
func (r *Recorder) History() History { return r.history }

// Snapshot returns an independent copy of the admission history, safe to
// hold across Reset and to read while the recorder keeps recording under
// its owner's lock.
func (r *Recorder) Snapshot() History {
	h := make(History, len(r.history))
	copy(h, r.history)
	return h
}

// Len returns the number of recorded admissions.
func (r *Recorder) Len() int { return len(r.history) }

// Reset discards the recorded history but keeps the capacity. It
// invalidates every slice previously returned by History (see the
// ownership rule there); Snapshot copies are unaffected. The trailing
// distinct count starts over with the history.
func (r *Recorder) Reset() {
	r.history = r.history[:0]
	r.counts = make(map[int]int, 64)
	r.distinct = 0
}

// LWSS returns the lock working set size of h: the number of distinct
// thread ids present.
func LWSS(h History) int {
	seen := make(map[int]struct{}, 64)
	for _, id := range h {
		seen[id] = struct{}{}
	}
	return len(seen)
}

// AvgLWSS partitions h into disjoint abutting windows of the given size,
// computes the LWSS of each, and returns the mean. A trailing partial
// window shorter than size/2 is dropped so that a short tail cannot skew
// the average downward; longer tails participate scaled as-is, matching
// how the paper treats fixed-time runs. AvgLWSS of an empty history is 0.
func AvgLWSS(h History, window int) float64 {
	if window <= 0 {
		panic(fmt.Sprintf("metrics: AvgLWSS window %d <= 0", window))
	}
	if len(h) == 0 {
		return 0
	}
	var sum float64
	n := 0
	for start := 0; start < len(h); start += window {
		end := start + window
		if end > len(h) {
			end = len(h)
			if end-start < window/2 && n > 0 {
				break
			}
		}
		sum += float64(LWSS(h[start:end]))
		n++
	}
	return sum / float64(n)
}

// RecentLWSS returns the LWSS of the trailing window of h: the working
// set of the most recent min(window, len(h)) admissions. Where AvgLWSS
// averages over the whole history (a long-lived lock's past dilutes its
// present), RecentLWSS is the live demand signal an adaptive controller
// wants: how many distinct threads are circulating *now*. It is 0 for an
// empty history, and — like every history-derived instrument — frozen
// once a capped recorder stops recording.
func RecentLWSS(h History, window int) int {
	if window <= 0 {
		panic(fmt.Sprintf("metrics: RecentLWSS window %d <= 0", window))
	}
	if len(h) > window {
		h = h[len(h)-window:]
	}
	return LWSS(h)
}

// TTRs returns the time-to-reacquire sequence of h: for every admission by
// a thread that has acquired before, the number of admissions since its
// previous acquisition. First-time acquisitions contribute nothing.
//
// A thread that reacquires on the very next admission has TTR 1; under a
// perfectly cyclic schedule over n threads every TTR is n.
func TTRs(h History) []int {
	last := make(map[int]int, 64)
	ttrs := make([]int, 0, len(h))
	for i, id := range h {
		if prev, ok := last[id]; ok {
			ttrs = append(ttrs, i-prev)
		}
		last[id] = i
	}
	return ttrs
}

// MTTR returns the median time to reacquire over the entire history, or 0
// if no thread ever reacquired.
func MTTR(h History) float64 {
	ttrs := TTRs(h)
	if len(ttrs) == 0 {
		return 0
	}
	sort.Ints(ttrs)
	mid := len(ttrs) / 2
	if len(ttrs)%2 == 1 {
		return float64(ttrs[mid])
	}
	return float64(ttrs[mid-1]+ttrs[mid]) / 2
}

// Counts returns the per-thread admission counts of h keyed by thread id.
func Counts(h History) map[int]int {
	c := make(map[int]int, 64)
	for _, id := range h {
		c[id]++
	}
	return c
}

// countValues extracts the work distribution as a slice.
func countValues(h History) []float64 {
	c := Counts(h)
	vs := make([]float64, 0, len(c))
	for _, v := range c {
		vs = append(vs, float64(v))
	}
	return vs
}

// Gini returns the Gini coefficient of the values: 0 when all are equal
// (ideally fair), approaching 1 as one participant dominates. Negative
// values are rejected; an empty or all-zero set yields 0.
func Gini(values []float64) float64 {
	n := len(values)
	if n == 0 {
		return 0
	}
	vs := make([]float64, n)
	copy(vs, values)
	sort.Float64s(vs)
	var cum, total float64
	for i, v := range vs {
		if v < 0 {
			panic("metrics: Gini of negative value")
		}
		// Weighted rank sum form: sum_i (2i - n + 1) * v_i (0-based).
		cum += float64(2*i-n+1) * v
		total += v
	}
	if total == 0 {
		return 0
	}
	return cum / (float64(n) * total)
}

// GiniHistory returns the Gini coefficient of per-thread work completed in
// h, counting only threads that appear. Callers that need to include
// never-admitted threads (total starvation) should use Gini over an
// explicit distribution with zeros.
func GiniHistory(h History) float64 {
	return Gini(countValues(h))
}

// RSTDDEV returns the relative standard deviation (population standard
// deviation divided by mean) of the values, or 0 when the mean is 0.
func RSTDDEV(values []float64) float64 {
	if len(values) == 0 {
		return 0
	}
	var sum float64
	for _, v := range values {
		sum += v
	}
	mean := sum / float64(len(values))
	if mean == 0 {
		return 0
	}
	var ss float64
	for _, v := range values {
		d := v - mean
		ss += d * d
	}
	return math.Sqrt(ss/float64(len(values))) / mean
}

// RSTDDEVHistory returns RSTDDEV of per-thread work completed in h.
func RSTDDEVHistory(h History) float64 {
	return RSTDDEV(countValues(h))
}

// Summary bundles the fairness statistics the paper reports per run
// (Figure 4 rows).
type Summary struct {
	Admissions int
	AvgLWSS    float64
	// RecentLWSS is the working set of the trailing window only — the
	// live demand signal adaptive controllers key on (see RecentLWSS).
	RecentLWSS float64
	MTTR       float64
	Gini       float64
	RSTDDEV    float64
}

// Summarize computes the standard summary over h with the given LWSS
// window (use DefaultWindow for the paper's 1000).
func Summarize(h History, window int) Summary {
	return Summary{
		Admissions: len(h),
		AvgLWSS:    AvgLWSS(h, window),
		RecentLWSS: float64(RecentLWSS(h, window)),
		MTTR:       MTTR(h),
		Gini:       GiniHistory(h),
		RSTDDEV:    RSTDDEVHistory(h),
	}
}

// String renders the summary in Figure-4 style.
func (s Summary) String() string {
	return fmt.Sprintf("admissions=%d avgLWSS=%.1f MTTR=%.1f Gini=%.3f RSTDDEV=%.3f",
		s.Admissions, s.AvgLWSS, s.MTTR, s.Gini, s.RSTDDEV)
}
