package workloads

import (
	"repro/internal/deque"
	"repro/sim"
)

// BufferPoolParams configures the §6.11 Buffer Pool benchmark: a central
// blocking pool of 5 one-megabyte buffers built from a pthread mutex, a
// NotEmpty condition variable and a deque of buffer pointers, with LIFO
// allocation. Each thread loops: take a buffer (waiting if none);
// exchange 500 random locations between the buffer and a private buffer;
// return the buffer; update 5000 random locations in the private buffer.
//
// The figure sweeps the condition variable's append probability P: P=1 is
// FIFO, P=0 pure LIFO; "a mostly-prepend policy (say, 1/1000) yields most
// of the throughput advantage of pure LIFO, but preserves long-term
// fairness."
type BufferPoolParams struct {
	Buffers         int // 5
	BufferBytes     int // 1 MB full scale, divided by cache scale
	ExchangeTouches int // 500
	PrivateTouches  int // 5000
}

// DefaultBufferPool returns the paper's parameters.
func DefaultBufferPool() BufferPoolParams {
	return BufferPoolParams{Buffers: 5, BufferBytes: 1 << 20, ExchangeTouches: 500, PrivateTouches: 5000}
}

type poolThread struct {
	l        *sim.Lock
	notEmpty *sim.Cond
	pool     *deque.Deque
	p        BufferPoolParams
	span     int
	priv     uint64

	phase int
	buf   uint64
	addrs []uint64
}

func (pt *poolThread) Next(t *sim.Thread) sim.Action {
	switch pt.phase {
	case 0: // allocate a buffer from the pool
		pt.phase = 1
		return sim.Action{Kind: sim.ActAcquire, Lock: pt.l}
	case 1:
		if pt.pool.Len() == 0 {
			return sim.Action{Kind: sim.ActWait, Cond: pt.notEmpty, Lock: pt.l}
		}
		// LIFO allocation policy: most recently returned buffer first.
		pt.buf, _ = pt.pool.PopBack()
		pt.phase = 2
		return sim.Action{Kind: sim.ActRelease, Lock: pt.l}
	case 2: // exchange 500 random locations buffer <-> private
		pt.phase = 3
		pt.addrs = pt.addrs[:0]
		for k := 0; k < pt.p.ExchangeTouches; k++ {
			pt.addrs = append(pt.addrs, randIn(t, pt.buf, pt.span))
			pt.addrs = append(pt.addrs, randIn(t, pt.priv, pt.span))
		}
		return sim.Action{Kind: sim.ActWork, Dur: sim.Cycles(pt.p.ExchangeTouches) * 8, Addrs: pt.addrs}
	case 3: // return the buffer
		pt.phase = 4
		return sim.Action{Kind: sim.ActAcquire, Lock: pt.l}
	case 4:
		pt.pool.PushBack(pt.buf)
		pt.phase = 5
		return sim.Action{Kind: sim.ActSignal, Cond: pt.notEmpty}
	case 5:
		pt.phase = 6
		return sim.Action{Kind: sim.ActRelease, Lock: pt.l}
	case 6: // private update phase
		pt.phase = 7
		pt.addrs = pt.addrs[:0]
		for k := 0; k < pt.p.PrivateTouches; k++ {
			pt.addrs = append(pt.addrs, randIn(t, pt.priv, pt.span))
		}
		return sim.Action{Kind: sim.ActWork, Dur: sim.Cycles(pt.p.PrivateTouches) * 4, Addrs: pt.addrs}
	default:
		pt.phase = 0
		return sim.Action{Kind: sim.ActStep}
	}
}

// BuildBufferPool spawns n threads over a pool whose NotEmpty condition
// variable appends with probability condAppendProb. Both the mutex and
// the condvar use unbounded spinning, as in the paper's Figure 14 runs.
func BuildBufferPool(e *sim.Engine, l *sim.Lock, n int, p BufferPoolParams, condAppendProb float64) {
	scale := e.Config().Cache.Scale
	span := p.BufferBytes / scale
	if span < 4096 {
		span = 4096
	}
	// Scale the per-iteration touch counts with the buffer so an
	// iteration covers a similar fraction of the buffer at any scale.
	pp := p
	pp.ExchangeTouches = p.ExchangeTouches / scale
	if pp.ExchangeTouches < 32 {
		pp.ExchangeTouches = 32
	}
	pp.PrivateTouches = p.PrivateTouches / scale
	if pp.PrivateTouches < 64 {
		pp.PrivateTouches = 64
	}
	pool := &deque.Deque{}
	for b := 0; b < p.Buffers; b++ {
		pool.PushBack(sharedBase + uint64(b+1)*(uint64(span)+4096))
	}
	notEmpty := e.NewCond(condAppendProb, sim.ModeSpin)
	for i := 0; i < n; i++ {
		e.Spawn(&poolThread{
			l:        l,
			notEmpty: notEmpty,
			pool:     pool,
			p:        pp,
			span:     span,
			priv:     PrivateBase(i),
		})
	}
}
