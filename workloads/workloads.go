// Package workloads implements the benchmarks of the paper's evaluation
// (§6) as simulator behaviors: randarray (Fig 3/4), ringwalker (Fig 5),
// stresslatency (Fig 6), mmicro (Fig 7), kvstore (Fig 8), hashdb (Fig 9),
// prodcons (Fig 10), keymap (Fig 11), lrucache (Fig 12), interp (Fig 13)
// and bufferpool (Fig 14).
//
// Each workload constructs per-thread behaviors over a shared sim.Engine
// plus any software substrate it needs (allocator, trees, queues). The
// common shape is the paper's circulation loop: execute a non-critical
// section, acquire a central lock, execute a critical section, release,
// repeat. Address streams are synthesized over disjoint virtual regions:
// thread-private regions for NCS data and a shared region for CS data, so
// the cache model sees exactly the paper's footprints.
package workloads

import (
	"repro/internal/xrand"
	"repro/sim"
)

// Virtual address space layout. Regions are disjoint by construction.
const (
	sharedBase  = uint64(1) << 60 // CS (shared) data
	privateStep = uint64(1) << 32 // per-thread NCS regions
)

// PrivateBase returns the base address of thread id's private region.
func PrivateBase(id int) uint64 { return privateStep * uint64(id+1) }

// Circuit is the canonical lock-circulation behavior: NCS work, acquire,
// CS work, release, step. The NCS and CS callbacks fill in the work for
// each iteration; either may be nil for "no work".
type Circuit struct {
	Lock *sim.Lock
	// NCS and CS return compute cycles and fill addrs (reusing the
	// provided buffer) with the memory accesses of this iteration.
	NCS func(t *sim.Thread, addrs []uint64) (sim.Cycles, []uint64)
	CS  func(t *sim.Thread, addrs []uint64) (sim.Cycles, []uint64)

	phase int
	buf   []uint64
}

// Next implements sim.Behavior.
func (c *Circuit) Next(t *sim.Thread) sim.Action {
	switch c.phase {
	case 0: // non-critical section
		c.phase = 1
		if c.NCS == nil {
			return sim.Action{Kind: sim.ActStep} // degenerate; keeps moving
		}
		dur, addrs := c.NCS(t, c.buf[:0])
		c.buf = addrs[:0]
		return sim.Action{Kind: sim.ActWork, Dur: dur, Addrs: addrs}
	case 1:
		c.phase = 2
		return sim.Action{Kind: sim.ActAcquire, Lock: c.Lock}
	case 2: // critical section
		c.phase = 3
		if c.CS == nil {
			return sim.Action{Kind: sim.ActWork, Dur: 1}
		}
		dur, addrs := c.CS(t, c.buf[:0])
		c.buf = addrs[:0]
		return sim.Action{Kind: sim.ActWork, Dur: dur, Addrs: addrs}
	case 3:
		c.phase = 4
		return sim.Action{Kind: sim.ActRelease, Lock: c.Lock}
	default:
		c.phase = 0
		return sim.Action{Kind: sim.ActStep}
	}
}

// randIn returns a uniformly random cache-line-aligned address within
// [base, base+span).
func randIn(t *sim.Thread, base uint64, spanBytes int) uint64 {
	line := t.Rng.Intn(spanBytes / 64)
	return base + uint64(line)*64
}

// newWorkloadRng returns a workload-construction generator derived from
// the engine seed, keeping workload layout deterministic per run.
func newWorkloadRng(e *sim.Engine, salt uint64) *xrand.State {
	return xrand.New(e.Config().Seed*2654435761 + salt)
}
