package workloads

import (
	"testing"

	"repro/sim"
)

// runRA runs RandArray at the given thread count and lock spec on the
// full 128-CPU machine at cache scale 16.
func runRA(threads int, spec sim.LockSpec) sim.Result {
	cfg := sim.DefaultConfig(16)
	ConfigureLargePages(&cfg)
	e := sim.New(cfg)
	l := e.NewLock(spec)
	BuildRandArray(e, l, threads, DefaultRandArray())
	return e.RunStandard(12_000_000)
}

func TestRandArrayShape(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation sweep")
	}
	mcsS := sim.LockSpec{Kind: sim.KindMCS, Mode: sim.ModeSpin}
	mcsSTP := sim.LockSpec{Kind: sim.KindMCS, Mode: sim.ModeSTP}
	crS := sim.LockSpec{Kind: sim.KindMCSCR, Mode: sim.ModeSpin}
	crSTP := sim.LockSpec{Kind: sim.KindMCSCR, Mode: sim.ModeSTP}

	// Single thread: all locks within a few percent (CR does no harm
	// absent contention).
	base := runRA(1, mcsS).Steps
	for name, spec := range map[string]sim.LockSpec{"MCS-STP": mcsSTP, "MCSCR-S": crS, "MCSCR-STP": crSTP} {
		got := runRA(1, spec).Steps
		lo, hi := base*95/100, base*105/100
		if got < lo || got > hi {
			t.Errorf("%s single-thread steps=%d, MCS-S=%d (must match)", name, got, base)
		}
	}

	// 32 threads: the Fig 3/4 regime. MCS forms thrash the LLC; CR forms
	// restrict and win.
	resMCS := runRA(32, mcsS)
	resMCSSTP := runRA(32, mcsSTP)
	resCR := runRA(32, crSTP)
	t.Logf("32T MCS-S:     %v", resMCS)
	t.Logf("32T MCS-STP:   %v", resMCSSTP)
	t.Logf("32T MCSCR-STP: %v", resCR)

	if resCR.Steps < resMCS.Steps*3/2 {
		t.Errorf("MCSCR-STP (%d) should beat MCS-S (%d) clearly at 32 threads", resCR.Steps, resMCS.Steps)
	}
	if resMCS.Steps < resMCSSTP.Steps {
		t.Errorf("MCS-S (%d) should beat MCS-STP (%d) at 32 threads (paper Fig 4)", resMCS.Steps, resMCSSTP.Steps)
	}
	// Figure 4 fairness rows: FIFO LWSS ≈ 32, CR LWSS near saturation.
	if resMCS.Fairness.AvgLWSS < 30 {
		t.Errorf("MCS-S LWSS=%v want ~32", resMCS.Fairness.AvgLWSS)
	}
	if resCR.Fairness.AvgLWSS > 12 {
		t.Errorf("MCSCR-STP LWSS=%v want near saturation (~5)", resCR.Fairness.AvgLWSS)
	}
	if resCR.Fairness.Gini <= resMCS.Fairness.Gini {
		t.Errorf("CR should be short-term unfairer: Gini %v vs %v", resCR.Fairness.Gini, resMCS.Fairness.Gini)
	}
	// CR reduces L3 misses by a large factor (paper: 11M vs 152K).
	if resCR.CacheStats.LLCMisses*4 > resMCS.CacheStats.LLCMisses {
		t.Errorf("CR L3 misses %d not far below MCS-S %d",
			resCR.CacheStats.LLCMisses, resMCS.CacheStats.LLCMisses)
	}
	// CR-STP consumes far less CPU and power.
	if resCR.CPUUtil > resMCS.CPUUtil/2 {
		t.Errorf("MCSCR-STP util %.1f not well below MCS-S %.1f", resCR.CPUUtil, resMCS.CPUUtil)
	}
	if resCR.DeltaWatts >= resMCS.DeltaWatts {
		t.Errorf("MCSCR-STP watts %.0f not below MCS-S %.0f", resCR.DeltaWatts, resMCS.DeltaWatts)
	}
}
