package workloads

import "repro/sim"

// StressLatencyParams configures the §6.3 libslock stress_latency
// benchmark: a cycle-bound loop with no memory accesses in either
// section, isolating competition for core pipelines. The paper's command
// line is -a 200 (CS delay iterations) and -p 5000 (NCS delay
// iterations).
type StressLatencyParams struct {
	CSLoops       int        // 200
	NCSLoops      int        // 5000
	CyclesPerLoop sim.Cycles // delay-loop iteration cost
}

// DefaultStressLatency returns the paper's parameters.
func DefaultStressLatency() StressLatencyParams {
	return StressLatencyParams{CSLoops: 200, NCSLoops: 5000, CyclesPerLoop: 4}
}

// BuildStressLatency spawns n threads running the delay-loop circuit.
// "Very few distinct locations are accessed": no memory traffic at all,
// so the only collapse mode is pipeline (and eventually CPU) competition,
// with the main inflection where spinning waiters start sharing cores
// with working threads.
func BuildStressLatency(e *sim.Engine, l *sim.Lock, n int, p StressLatencyParams) {
	for i := 0; i < n; i++ {
		e.Spawn(&Circuit{
			Lock: l,
			NCS: func(t *sim.Thread, addrs []uint64) (sim.Cycles, []uint64) {
				return sim.Cycles(p.NCSLoops) * p.CyclesPerLoop, addrs
			},
			CS: func(t *sim.Thread, addrs []uint64) (sim.Cycles, []uint64) {
				return sim.Cycles(p.CSLoops) * p.CyclesPerLoop, addrs
			},
		})
	}
}
