package workloads

import (
	"repro/internal/deque"
	"repro/sim"
)

// ProdConsParams configures the §6.7 producer-consumer benchmark from the
// COZ package: a bounded blocking queue built from one mutex, two
// condition variables (not-empty, not-full) and a deque. The benchmark
// fixes the consumer count and varies producers, "modeling an environment
// with 3 server threads and a variable number of clients". A step is one
// message consumed.
//
// Under a FIFO lock producers suffer futile acquisitions (acquire, find
// the queue full, block on the condvar, reacquire later): 3 lock
// acquisitions per message. Under a CR lock the system enters the "fast
// flow" mode with 2 acquisitions per message and waiting concentrated on
// the mutex rather than the condition variables.
type ProdConsParams struct {
	Consumers int // 3
	Bound     int // queue capacity (10000 in the paper; scale-divided)
	WorkNCS   sim.Cycles
}

// DefaultProdCons returns the paper's parameters.
func DefaultProdCons() ProdConsParams {
	return ProdConsParams{Consumers: 3, Bound: 10_000, WorkNCS: 1500}
}

type producer struct {
	l        *sim.Lock
	notFull  *sim.Cond
	notEmpty *sim.Cond
	q        *deque.Deque
	bound    int
	ncs      sim.Cycles
	phase    int
}

func (p *producer) Next(t *sim.Thread) sim.Action {
	switch p.phase {
	case 0:
		p.phase = 1
		return sim.Action{Kind: sim.ActWork, Dur: p.ncs}
	case 1:
		p.phase = 2
		return sim.Action{Kind: sim.ActAcquire, Lock: p.l}
	case 2:
		if p.q.Len() >= p.bound {
			// Futile acquisition: wait until not full (re-checks on
			// wake, as condvar discipline requires).
			return sim.Action{Kind: sim.ActWait, Cond: p.notFull, Lock: p.l}
		}
		p.q.PushBack(t.Rng.Next())
		p.phase = 3
		return sim.Action{Kind: sim.ActWork, Dur: 150} // queue insert cost
	case 3:
		p.phase = 4
		return sim.Action{Kind: sim.ActSignal, Cond: p.notEmpty}
	default:
		p.phase = 0
		return sim.Action{Kind: sim.ActRelease, Lock: p.l}
	}
}

type consumer struct {
	l        *sim.Lock
	notFull  *sim.Cond
	notEmpty *sim.Cond
	q        *deque.Deque
	phase    int
}

func (c *consumer) Next(t *sim.Thread) sim.Action {
	switch c.phase {
	case 0:
		c.phase = 1
		return sim.Action{Kind: sim.ActAcquire, Lock: c.l}
	case 1:
		if c.q.Len() == 0 {
			return sim.Action{Kind: sim.ActWait, Cond: c.notEmpty, Lock: c.l}
		}
		c.q.PopFront()
		c.phase = 2
		return sim.Action{Kind: sim.ActWork, Dur: 150}
	case 2:
		c.phase = 3
		return sim.Action{Kind: sim.ActSignal, Cond: c.notFull}
	case 3:
		c.phase = 4
		return sim.Action{Kind: sim.ActRelease, Lock: c.l}
	default:
		c.phase = 0
		return sim.Action{Kind: sim.ActStep} // one message conveyed
	}
}

// BuildProdCons spawns the fixed consumers plus `producers` producer
// threads. condAppendProb controls the condition variables' admission
// policy (1 = FIFO as in the paper's baseline runs).
func BuildProdCons(e *sim.Engine, l *sim.Lock, producers int, p ProdConsParams, condAppendProb float64, condMode sim.WaitMode) *deque.Deque {
	scale := e.Config().Cache.Scale
	bound := p.Bound / scale
	if bound < 64 {
		bound = 64
	}
	q := &deque.Deque{}
	notFull := e.NewCond(condAppendProb, condMode)
	notEmpty := e.NewCond(condAppendProb, condMode)
	for i := 0; i < p.Consumers; i++ {
		e.Spawn(&consumer{l: l, notFull: notFull, notEmpty: notEmpty, q: q})
	}
	for i := 0; i < producers; i++ {
		e.Spawn(&producer{l: l, notFull: notFull, notEmpty: notEmpty, q: q, bound: bound, ncs: p.WorkNCS})
	}
	return q
}
