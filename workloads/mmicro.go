package workloads

import (
	"repro/internal/splay"
	"repro/sim"
)

// MmicroParams configures the §6.4 malloc scalability benchmark over the
// splay-tree arena allocator (the Solaris libc design: a splay tree
// protected by a central mutex). Each thread loops: allocate and zero
// Blocks blocks of BlockBytes, then free them all. Every malloc and free
// acquires the central lock; the splay tree's own metadata traffic is the
// CS footprint, and the zeroing of freshly allocated blocks is the NCS
// footprint.
type MmicroParams struct {
	Blocks     int // allocations per episode (1000 in the paper)
	BlockBytes int // 1000 in the paper
	OpCycles   sim.Cycles
}

// DefaultMmicro returns the paper's parameters, with the episode length
// divided by the cache scale so the heap footprint keeps its ratio to the
// LLC.
func DefaultMmicro(scale int) MmicroParams {
	blocks := 1000 / scale
	if blocks < 8 {
		blocks = 8
	}
	return MmicroParams{Blocks: blocks, BlockBytes: 1000, OpCycles: 300}
}

// mmicroThread is one thread's episode state machine: allocate phase,
// then free phase, one lock acquisition per operation.
type mmicroThread struct {
	l     *sim.Lock
	a     *splay.Allocator
	p     MmicroParams
	touch *[]uint64

	phase   int // 0 ncs-ish gap, 1 acquire, 2 cs-op, 3 release, 4 use/step
	idx     int
	freeing bool
	ptrs    []uint64
	buf     []uint64
}

func (m *mmicroThread) Next(t *sim.Thread) sim.Action {
	switch m.phase {
	case 0:
		m.phase = 1
		return sim.Action{Kind: sim.ActAcquire, Lock: m.l}
	case 1:
		// Critical section: perform the allocator operation now; the
		// splay tree reports every metadata line it touches.
		m.phase = 2
		*m.touch = (*m.touch)[:0]
		if !m.freeing {
			p := m.a.Alloc(uint64(m.p.BlockBytes))
			if p == 0 {
				// Arena exhausted (should not happen; sized generously).
				// Restart the episode by freeing what we have.
				m.freeing = true
				m.idx = 0
				m.phase = 3
				return sim.Action{Kind: sim.ActRelease, Lock: m.l}
			}
			m.ptrs[m.idx] = p
		} else {
			m.a.Free(m.ptrs[m.idx], uint64(m.p.BlockBytes))
		}
		m.buf = append(m.buf[:0], *m.touch...)
		return sim.Action{Kind: sim.ActWork, Dur: m.p.OpCycles, Addrs: m.buf}
	case 2:
		m.phase = 3
		return sim.Action{Kind: sim.ActRelease, Lock: m.l}
	case 3:
		if !m.freeing {
			// NCS: zero the freshly allocated block (write traffic over
			// its lines).
			m.phase = 4
			p := m.ptrs[m.idx]
			m.buf = m.buf[:0]
			for off := 0; off < m.p.BlockBytes; off += 64 {
				m.buf = append(m.buf, p+uint64(off))
			}
			return sim.Action{Kind: sim.ActWork, Dur: 100, Addrs: m.buf}
		}
		// A free completes one malloc-free pair.
		m.phase = 4
		return sim.Action{Kind: sim.ActStep}
	default:
		m.idx++
		if m.idx >= m.p.Blocks {
			m.idx = 0
			m.freeing = !m.freeing
		}
		m.phase = 0
		return sim.Action{Kind: sim.ActWork, Dur: 50} // inter-op gap
	}
}

// BuildMmicro spawns n allocator-hammering threads over one shared arena
// protected by l. It returns the allocator for inspection.
func BuildMmicro(e *sim.Engine, l *sim.Lock, n int, p MmicroParams) *splay.Allocator {
	arenaNeed := uint64(2*n*p.Blocks*(p.BlockBytes+64)) + 1<<20
	a := splay.New(sharedBase, arenaNeed)
	touch := make([]uint64, 0, 256)
	a.Touch = func(addr uint64) { touch = append(touch, addr) }
	for i := 0; i < n; i++ {
		e.Spawn(&mmicroThread{
			l:     l,
			a:     a,
			p:     p,
			touch: &touch,
			ptrs:  make([]uint64, p.Blocks),
		})
	}
	return a
}
