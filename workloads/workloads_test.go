package workloads

import (
	"testing"

	"repro/sim"
)

func t5(scale int) sim.Config { return sim.DefaultConfig(scale) }

func mcsSTP() sim.LockSpec   { return sim.LockSpec{Kind: sim.KindMCS, Mode: sim.ModeSTP} }
func mcsS() sim.LockSpec     { return sim.LockSpec{Kind: sim.KindMCS, Mode: sim.ModeSpin} }
func mcscrSTP() sim.LockSpec { return sim.LockSpec{Kind: sim.KindMCSCR, Mode: sim.ModeSTP} }

// checkProgress runs the engine and requires forward progress.
func checkProgress(t *testing.T, e *sim.Engine, warm, meas sim.Cycles) sim.Result {
	t.Helper()
	_ = warm
	res := e.RunStandard(meas)
	if res.Halted {
		t.Fatal("workload halted (deadlock or drained event queue)")
	}
	if res.Steps == 0 {
		t.Fatal("no steps completed")
	}
	return res
}

func TestRingWalkerProgress(t *testing.T) {
	cfg := t5(16)
	e := sim.New(cfg)
	l := e.NewLock(mcsSTP())
	BuildRingWalker(e, l, 8, DefaultRingWalker())
	checkProgress(t, e, 1_000_000, 5_000_000)
}

func TestRingWalkerTLBPressureShape(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation sweep")
	}
	// Figure 5: the MCS forms hit DTLB thrash when two circulating
	// threads share a core (span 150 pages > 128 entries); CR keeps the
	// active set small enough to avoid it. Compare per-step TLB misses at
	// 32 threads (16 cores => 2 threads/core for the FIFO lock).
	run := func(spec sim.LockSpec) (uint64, uint64) {
		cfg := t5(16)
		e := sim.New(cfg)
		l := e.NewLock(spec)
		BuildRingWalker(e, l, 32, DefaultRingWalker())
		res := e.RunStandard(9_000_000)
		return res.CacheStats.TLBMisses, res.Steps
	}
	fifoMiss, fifoSteps := run(mcsS())
	crMiss, crSteps := run(mcscrSTP())
	fifoRate := float64(fifoMiss) / float64(fifoSteps)
	crRate := float64(crMiss) / float64(crSteps)
	if crRate*2 > fifoRate {
		t.Fatalf("CR per-step TLB miss rate %.2f not well below FIFO %.2f", crRate, fifoRate)
	}
	if crSteps < fifoSteps {
		t.Fatalf("CR steps %d below FIFO %d despite TLB relief", crSteps, fifoSteps)
	}
}

func TestStressLatencyPipelineShape(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation sweep")
	}
	// Figure 6 is cycle-bound: beyond 16 threads (one per core), spinning
	// waiters compete with workers for pipelines. MCSCR-STP parks its
	// passive set and should win at 64 threads.
	run := func(spec sim.LockSpec, n int) uint64 {
		cfg := t5(16)
		e := sim.New(cfg)
		l := e.NewLock(spec)
		BuildStressLatency(e, l, n, DefaultStressLatency())
		return e.RunStandard(8_000_000).Steps
	}
	if fifo, cr := run(mcsS(), 64), run(mcscrSTP(), 64); cr <= fifo {
		t.Fatalf("at 64 threads MCSCR-STP (%d) should beat MCS-S (%d)", cr, fifo)
	}
}

func TestMmicroProgressAndReuse(t *testing.T) {
	cfg := t5(16)
	ConfigureLargePages(&cfg)
	e := sim.New(cfg)
	l := e.NewLock(mcsSTP())
	a := BuildMmicro(e, l, 6, DefaultMmicro(16))
	checkProgress(t, e, 2_000_000, 8_000_000)
	if a.FreeBlocks() < 0 {
		t.Fatal("allocator corrupted")
	}
}

func TestKVStoreProgress(t *testing.T) {
	cfg := t5(16)
	ConfigureLargePages(&cfg)
	e := sim.New(cfg)
	l := e.NewLock(mcsSTP())
	mem := BuildKVStore(e, l, 8, DefaultKVStore())
	checkProgress(t, e, 1_000_000, 6_000_000)
	if !mem.CheckInvariants() {
		t.Fatal("memtable invariants violated after concurrent traffic")
	}
}

func TestHashDBProgress(t *testing.T) {
	cfg := t5(16)
	ConfigureLargePages(&cfg)
	e := sim.New(cfg)
	l := e.NewLock(mcsSTP())
	db := BuildHashDB(e, l, 8, DefaultHashDB())
	checkProgress(t, e, 1_000_000, 6_000_000)
	if db.Len() == 0 {
		t.Fatal("database emptied unexpectedly")
	}
}

func TestKeymapProgress(t *testing.T) {
	cfg := t5(16)
	ConfigureLargePages(&cfg)
	e := sim.New(cfg)
	l := e.NewLock(mcsSTP())
	BuildKeymap(e, l, 8, DefaultKeymap())
	checkProgress(t, e, 1_000_000, 6_000_000)
}

func TestProdConsConveysMessages(t *testing.T) {
	cfg := t5(16)
	e := sim.New(cfg)
	l := e.NewLock(mcsSTP())
	q := BuildProdCons(e, l, 8, DefaultProdCons(), 1.0, sim.ModeSTP)
	res := checkProgress(t, e, 2_000_000, 8_000_000)
	if q.Len() < 0 {
		t.Fatal("queue corrupted")
	}
	if res.Steps < 100 {
		t.Fatalf("only %d messages", res.Steps)
	}
}

func TestProdConsFastFlowShape(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation sweep")
	}
	// §6.7: CR locks enter "fast flow" (2 lock acquisitions/message vs
	// 3); with many producers the CR configuration should convey at least
	// as many messages.
	run := func(spec sim.LockSpec) uint64 {
		cfg := t5(16)
		e := sim.New(cfg)
		l := e.NewLock(spec)
		BuildProdCons(e, l, 48, DefaultProdCons(), 1.0, sim.ModeSTP)
		return e.RunStandard(9_000_000).Steps
	}
	fifo := run(mcsS())
	cr := run(mcscrSTP())
	if cr*10 < fifo*9 { // allow 10% noise, but CR must not collapse
		t.Fatalf("CR prodcons %d well below FIFO %d", cr, fifo)
	}
}

func TestLRUCacheSoftwareMissShape(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation sweep")
	}
	// §6.9: CR reduces the *software* LRU miss rate — fewer distinct
	// keysets competing for cache occupancy in a window.
	run := func(spec sim.LockSpec) (*SimpleLRU, uint64) {
		cfg := t5(16)
		ConfigureLargePages(&cfg)
		e := sim.New(cfg)
		l := e.NewLock(spec)
		c := BuildLRUCache(e, l, 32, DefaultLRUCache())
		res := e.RunStandard(9_000_000)
		return c, res.Steps
	}
	fifoCache, fifoSteps := run(mcsS())
	crCache, crSteps := run(mcscrSTP())
	fifoMiss := float64(fifoCache.Misses) / float64(fifoCache.Hits+fifoCache.Misses)
	crMiss := float64(crCache.Misses) / float64(crCache.Hits+crCache.Misses)
	t.Logf("software LRU miss rate: FIFO %.3f (steps %d) CR %.3f (steps %d)",
		fifoMiss, fifoSteps, crMiss, crSteps)
	if crMiss >= fifoMiss {
		t.Fatalf("CR software miss rate %.3f not below FIFO %.3f", crMiss, fifoMiss)
	}
	if fifoCache.OtherDisplace == 0 {
		t.Fatal("FIFO run recorded no cross-thread displacement")
	}
}

func TestInterpProgressAndCRBenefit(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation sweep")
	}
	// Figure 13: mostly-LIFO condvar admission should beat FIFO around
	// mid thread counts; throughput is far below RandArray (interpreter).
	run := func(appendProb float64, n int) uint64 {
		cfg := t5(16)
		ConfigureLargePages(&cfg)
		e := sim.New(cfg)
		_ = e.NewLock(sim.LockSpec{Kind: sim.KindNull}) // primary slot
		BuildInterp(e, n, DefaultInterp(), appendProb)
		return e.RunStandard(12_000_000).Steps
	}
	fifo := run(1.0, 16)
	lifo := run(1.0/1000, 16)
	if fifo == 0 || lifo == 0 {
		t.Fatal("interp made no progress")
	}
	if lifo < fifo {
		t.Fatalf("mostly-LIFO (%d) below FIFO (%d) at 16 threads", lifo, fifo)
	}
}

func TestBufferPoolPolicySweepShape(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation sweep")
	}
	// Figure 14: pure prepend (P=0) best; mostly-prepend (1/1000) close;
	// FIFO (P=1) worst.
	run := func(appendProb float64) uint64 {
		cfg := t5(16)
		ConfigureLargePages(&cfg)
		e := sim.New(cfg)
		l := e.NewLock(sim.LockSpec{Kind: sim.KindMCS, Mode: sim.ModeSpin})
		BuildBufferPool(e, l, 32, DefaultBufferPool(), appendProb)
		return e.RunStandard(9_000_000).Steps
	}
	fifo := run(1.0)
	mostly := run(1.0 / 1000)
	lifo := run(0.0)
	t.Logf("bufferpool steps: FIFO=%d mostly-LIFO=%d LIFO=%d", fifo, mostly, lifo)
	if lifo < fifo {
		t.Fatalf("LIFO (%d) should not lose to FIFO (%d)", lifo, fifo)
	}
	if mostly*10 < lifo*8 {
		t.Fatalf("mostly-LIFO (%d) should capture most of pure LIFO's benefit (%d)", mostly, lifo)
	}
}

func TestWorkloadDeterminism(t *testing.T) {
	run := func() uint64 {
		cfg := t5(16)
		ConfigureLargePages(&cfg)
		e := sim.New(cfg)
		l := e.NewLock(mcscrSTP())
		BuildKeymap(e, l, 12, DefaultKeymap())
		return e.RunStandard(4_000_000).Steps
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("nondeterministic workload: %d vs %d", a, b)
	}
}
