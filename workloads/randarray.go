package workloads

import "repro/sim"

// RandArrayParams configures the §6.1 Random Access Array microbenchmark.
//
// Paper parameters (full scale): each thread loops over an NCS of 400
// uniformly random fetches from a thread-private 1 MB array of 256 K
// 32-bit integers, then a CS of 100 random fetches from a shared 1 MB
// array. Arrays reside on large pages "to avoid DTLB concerns"; random
// indexes defeat hardware prefetching (which the cache model does not
// implement anyway). The ideal speedup is 5x.
type RandArrayParams struct {
	// ArrayBytes is the full-scale array size (1 MB in the paper). It is
	// divided by the engine's cache Scale so footprint/LLC ratios match
	// the paper at any scale.
	ArrayBytes int
	// NCSAccesses and CSAccesses are the loop trip counts (400 and 100).
	NCSAccesses int
	CSAccesses  int
	// PerAccessCycles models the non-memory work of one loop iteration
	// (index generation and bookkeeping).
	PerAccessCycles sim.Cycles
}

// DefaultRandArray returns the paper's parameters.
func DefaultRandArray() RandArrayParams {
	return RandArrayParams{
		ArrayBytes:      1 << 20,
		NCSAccesses:     400,
		CSAccesses:      100,
		PerAccessCycles: 25,
	}
}

// BuildRandArray spawns n threads running the RandArray loop over the
// given lock. The engine's cache page size should be large (the arrays
// live on large pages); use ConfigureLargePages before building.
func BuildRandArray(e *sim.Engine, l *sim.Lock, n int, p RandArrayParams) {
	scale := e.Config().Cache.Scale
	span := p.ArrayBytes / scale
	if span < 4096 {
		span = 4096
	}
	for i := 0; i < n; i++ {
		priv := PrivateBase(i)
		e.Spawn(&Circuit{
			Lock: l,
			NCS: func(t *sim.Thread, addrs []uint64) (sim.Cycles, []uint64) {
				for k := 0; k < p.NCSAccesses; k++ {
					addrs = append(addrs, randIn(t, priv, span))
				}
				return sim.Cycles(p.NCSAccesses) * p.PerAccessCycles, addrs
			},
			CS: func(t *sim.Thread, addrs []uint64) (sim.Cycles, []uint64) {
				for k := 0; k < p.CSAccesses; k++ {
					addrs = append(addrs, randIn(t, sharedBase, span))
				}
				return sim.Cycles(p.CSAccesses) * p.PerAccessCycles, addrs
			},
		})
	}
}

// ConfigureLargePages sets the TLB page size so that multi-megabyte
// arrays span only a handful of pages, modeling the paper's use of large
// pages for array-based workloads.
func ConfigureLargePages(cfg *sim.Config) {
	cfg.Cache.PageBytes = 4 << 20
}
