package workloads

import (
	"repro/internal/skiplist"
	"repro/sim"
)

// KVStoreParams configures the §6.5 leveldb readwhilewriting stand-in: a
// skiplist memtable behind one central database lock, one writer thread
// and n-1 reader threads (see DESIGN.md for the substitution rationale —
// the contention structure matches leveldb's central mutex).
type KVStoreParams struct {
	// Keys is the full-scale preloaded key count (divided by cache scale).
	Keys int
	// ReaderNCS / WriterNCS: private-region accesses between operations.
	NCSAccesses int
	// PrivateBytes is the full-scale per-thread private footprint.
	PrivateBytes int
	OpCycles     sim.Cycles
}

// DefaultKVStore returns representative parameters: a 100k-key memtable
// and 1 MB private working sets (both scaled).
func DefaultKVStore() KVStoreParams {
	return KVStoreParams{
		Keys:         100_000,
		NCSAccesses:  150,
		PrivateBytes: 1 << 20,
		OpCycles:     600,
	}
}

// BuildKVStore spawns one writer and n-1 readers over a shared memtable.
// It returns the memtable for inspection.
func BuildKVStore(e *sim.Engine, l *sim.Lock, n int, p KVStoreParams) *skiplist.List {
	scale := e.Config().Cache.Scale
	keys := p.Keys / scale
	if keys < 1000 {
		keys = 1000
	}
	span := p.PrivateBytes / scale
	if span < 4096 {
		span = 4096
	}

	mem := skiplist.New(e.Config().Seed + 17)
	nextAddr := sharedBase
	mem.NextAddr = func() uint64 { nextAddr += 128; return nextAddr }
	for i := 0; i < keys; i++ {
		mem.Put(uint64(i)+1, uint64(i))
	}
	touch := make([]uint64, 0, 128)
	mem.Touch = func(addr uint64) { touch = append(touch, addr) }

	for i := 0; i < n; i++ {
		writer := i == 0
		priv := PrivateBase(i)
		e.Spawn(&Circuit{
			Lock: l,
			NCS: func(t *sim.Thread, addrs []uint64) (sim.Cycles, []uint64) {
				for k := 0; k < p.NCSAccesses; k++ {
					addrs = append(addrs, randIn(t, priv, span))
				}
				return sim.Cycles(p.NCSAccesses) * 20, addrs
			},
			CS: func(t *sim.Thread, addrs []uint64) (sim.Cycles, []uint64) {
				touch = touch[:0]
				key := uint64(t.Rng.Intn(keys)) + 1
				if writer {
					mem.Put(key, t.Rng.Next())
				} else {
					mem.Get(key)
				}
				addrs = append(addrs, touch...)
				return p.OpCycles, addrs
			},
		})
	}
	return mem
}
