package workloads

import (
	"repro/internal/hashmap"
	"repro/sim"
)

// KeymapParams configures the §6.8 keymap benchmark: the NCS advances a
// thread-local PRNG 1000 times (compute only, tiny footprint); the CS
// updates a shared pre-populated map, drawing keys from a 1000-element
// thread-local keyset with probability P = 0.9, otherwise minting a new
// random key into the keyset first. Keymap "models server threads with
// short-lived session connections and moderate temporal key reuse...
// There is little or no inter-thread CS access locality."
type KeymapParams struct {
	MapKeys    int     // 10,000,000 full scale; divided by cache scale
	KeysetSize int     // 1000
	ReuseProb  float64 // 0.9
	NCSSpins   int     // 1000 PRNG advances
}

// DefaultKeymap returns the paper's parameters.
func DefaultKeymap() KeymapParams {
	return KeymapParams{MapKeys: 10_000_000, KeysetSize: 1000, ReuseProb: 0.9, NCSSpins: 1000}
}

// BuildKeymap spawns n threads updating a shared map.
func BuildKeymap(e *sim.Engine, l *sim.Lock, n int, p KeymapParams) *hashmap.Map {
	scale := e.Config().Cache.Scale
	keys := p.MapKeys / scale
	if keys < 10_000 {
		keys = 10_000
	}
	m := hashmap.New(keys, sharedBase)
	// "To reduce allocation and deallocation during the measurement
	// interval, we initialize all keys in the map prior to spawning."
	for i := 0; i < keys; i++ {
		m.Put(uint64(i)+1, 0)
	}
	touch := make([]uint64, 0, 64)
	m.Touch = func(addr uint64) { touch = append(touch, addr) }

	init := newWorkloadRng(e, 0x99)
	for i := 0; i < n; i++ {
		keyset := make([]uint64, p.KeysetSize)
		for k := range keyset {
			keyset[k] = uint64(init.Intn(keys)) + 1
		}
		priv := PrivateBase(i)
		e.Spawn(&Circuit{
			Lock: l,
			NCS: func(t *sim.Thread, addrs []uint64) (sim.Cycles, []uint64) {
				// PRNG advances: pure compute, ~6 cycles each.
				return sim.Cycles(p.NCSSpins) * 6, addrs
			},
			CS: func(t *sim.Thread, addrs []uint64) (sim.Cycles, []uint64) {
				touch = touch[:0]
				idx := t.Rng.Intn(len(keyset))
				// The keyset itself is thread-local data touched in the CS.
				addrs = append(addrs, priv+uint64(idx)*8)
				if !t.Rng.Prob(p.ReuseProb) {
					keyset[idx] = uint64(t.Rng.Intn(keys)) + 1
				}
				m.Put(keyset[idx], t.Rng.Next())
				addrs = append(addrs, touch...)
				return 400, addrs
			},
		})
	}
	return m
}
