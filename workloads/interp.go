package workloads

import "repro/sim"

// InterpParams configures the §6.10 perl benchmark: RandArray
// transliterated to an interpreted language. Perl's lock construct is a
// pthread mutex, a condition variable and an owner field; waiting happens
// on the condition variable, the mutex itself is rarely contended, and so
// "CR on the mutex would provide no benefit for such a design. Instead,
// we apply CR via the condition variable."
//
// The interpreter is modeled by a large per-step cycle cost (bytecode
// dispatch dominates; absolute rates are "far below that of RandArray").
type InterpParams struct {
	ArrayElems    int        // 50000 in the paper
	ElemBytes     int        // a perl integer is an SV of ~24 bytes, not 4
	NCSAccesses   int        // 400
	CSAccesses    int        // 100
	InterpPerStep sim.Cycles // interpreter overhead per loop step
}

// DefaultInterp returns the paper's parameters.
func DefaultInterp() InterpParams {
	return InterpParams{ArrayElems: 50_000, ElemBytes: 24, NCSAccesses: 400, CSAccesses: 100, InterpPerStep: 500}
}

// perlLock is the perl lock construct: mutex + condvar + owner flag.
type perlLock struct {
	mu    *sim.Lock
	cv    *sim.Cond
	owner int // -1 free; owner thread id otherwise (guarded by mu)
}

// interpThread runs the transliterated RandArray loop over a perlLock.
type interpThread struct {
	pl    *perlLock
	p     InterpParams
	span  int
	priv  uint64
	phase int
	buf   []uint64
}

func (it *interpThread) Next(t *sim.Thread) sim.Action {
	switch it.phase {
	case 0: // NCS over the private array
		it.phase = 1
		it.buf = it.buf[:0]
		for k := 0; k < it.p.NCSAccesses; k++ {
			it.buf = append(it.buf, randIn(t, it.priv, it.span))
		}
		return sim.Action{Kind: sim.ActWork,
			Dur: sim.Cycles(it.p.NCSAccesses) * it.p.InterpPerStep, Addrs: it.buf}
	case 1: // perl lock(): acquire mutex
		it.phase = 2
		return sim.Action{Kind: sim.ActAcquire, Lock: it.pl.mu}
	case 2: // while owned by someone else, wait on the condvar
		if it.pl.owner >= 0 {
			return sim.Action{Kind: sim.ActWait, Cond: it.pl.cv, Lock: it.pl.mu}
		}
		it.pl.owner = t.ID
		it.phase = 3
		return sim.Action{Kind: sim.ActRelease, Lock: it.pl.mu}
	case 3: // CS over the shared array (perl lock held via owner field)
		it.phase = 4
		it.buf = it.buf[:0]
		for k := 0; k < it.p.CSAccesses; k++ {
			it.buf = append(it.buf, randIn(t, sharedBase, it.span))
		}
		return sim.Action{Kind: sim.ActWork,
			Dur: sim.Cycles(it.p.CSAccesses) * it.p.InterpPerStep, Addrs: it.buf}
	case 4: // perl unlock(): acquire mutex, clear owner, signal, release
		it.phase = 5
		return sim.Action{Kind: sim.ActAcquire, Lock: it.pl.mu}
	case 5:
		it.pl.owner = -1
		it.phase = 6
		return sim.Action{Kind: sim.ActSignal, Cond: it.pl.cv}
	case 6:
		it.phase = 7
		return sim.Action{Kind: sim.ActRelease, Lock: it.pl.mu}
	default:
		it.phase = 0
		return sim.Action{Kind: sim.ActStep}
	}
}

// BuildInterp spawns n interpreter threads sharing one perl lock whose
// condition variable uses the given append probability (1 = FIFO,
// 1/1000 = mostly-LIFO CR). The mutex is classic MCS, as in the paper;
// the experiment uses unbounded spinning.
func BuildInterp(e *sim.Engine, n int, p InterpParams, condAppendProb float64) {
	scale := e.Config().Cache.Scale
	span := p.ArrayElems * p.ElemBytes / scale
	if span < 4096 {
		span = 4096
	}
	pl := &perlLock{
		mu:    e.NewLock(sim.LockSpec{Kind: sim.KindMCS, Mode: sim.ModeSpin}),
		cv:    e.NewCond(condAppendProb, sim.ModeSpin),
		owner: -1,
	}
	for i := 0; i < n; i++ {
		e.Spawn(&interpThread{pl: pl, p: p, span: span, priv: PrivateBase(i)})
	}
}
