package workloads

import (
	"repro/internal/rbtree"
	"repro/sim"
)

// SimpleLRU ports the CEPH SimpleLRU class used in §6.9: "a C++ std::map
// — implemented via a red-black tree — protected by a single mutex",
// plus a doubly-linked recency list. On a miss the key itself is
// installed as the value; capacity is enforced by trimming the list tail.
//
// Every entry remembers which thread installed it, so the cache exposes
// the self- vs other-displacement discrimination the paper notes is
// trivial to collect here ("In LRUCache it is trivial to collect
// displacement statistics and discern self-displacement of cache elements
// versus displacement caused by other threads, which reflects destructive
// interference.").
type SimpleLRU struct {
	tree     *rbtree.Tree
	capacity int

	entries    []lruEntry
	free       []int
	head, tail int // recency list; -1 when empty

	touch    *[]uint64
	addrBase uint64

	// Stats.
	Hits, Misses  uint64
	SelfDisplace  uint64 // trimmed entry was installed by the requester
	OtherDisplace uint64 // trimmed entry was installed by another thread
}

type lruEntry struct {
	key        uint64
	inserter   int
	prev, next int
	addr       uint64
}

// NewSimpleLRU creates a cache bounded to capacity entries.
func NewSimpleLRU(capacity int, base uint64) *SimpleLRU {
	c := &SimpleLRU{
		tree:     rbtree.New(),
		capacity: capacity,
		head:     -1,
		tail:     -1,
		addrBase: base,
	}
	buf := make([]uint64, 0, 128)
	c.touch = &buf
	next := base
	c.tree.NextAddr = func() uint64 { next += 96; return next }
	c.tree.Touch = func(addr uint64) { *c.touch = append(*c.touch, addr) }
	return c
}

func (c *SimpleLRU) touchEntry(i int) {
	*c.touch = append(*c.touch, c.entries[i].addr)
}

func (c *SimpleLRU) unlink(i int) {
	e := &c.entries[i]
	if e.prev >= 0 {
		c.entries[e.prev].next = e.next
	} else {
		c.head = e.next
	}
	if e.next >= 0 {
		c.entries[e.next].prev = e.prev
	} else {
		c.tail = e.prev
	}
	e.prev, e.next = -1, -1
}

func (c *SimpleLRU) pushFront(i int) {
	e := &c.entries[i]
	e.prev, e.next = -1, c.head
	if c.head >= 0 {
		c.entries[c.head].prev = i
	}
	c.head = i
	if c.tail < 0 {
		c.tail = i
	}
}

// Lookup performs one cached access by thread id. It returns whether the
// key hit, and appends all touched virtual addresses to addrs.
func (c *SimpleLRU) Lookup(id int, key uint64, addrs []uint64) (bool, []uint64) {
	*c.touch = (*c.touch)[:0]
	idx, ok := c.tree.Get(key + 1)
	if ok {
		c.Hits++
		i := int(idx)
		c.touchEntry(i)
		// Move to front of the recency list.
		c.unlink(i)
		c.pushFront(i)
	} else {
		c.Misses++
		// Install key→key ("on a cache miss we simply install the key
		// itself as the value").
		var i int
		if n := len(c.free); n > 0 {
			i = c.free[n-1]
			c.free = c.free[:n-1]
		} else {
			c.entries = append(c.entries, lruEntry{})
			i = len(c.entries) - 1
			c.entries[i].addr = c.addrBase + uint64(i)*64 + 32
		}
		c.entries[i] = lruEntry{key: key, inserter: id, prev: -1, next: -1, addr: c.entries[i].addr}
		c.tree.Put(key+1, uint64(i))
		c.pushFront(i)
		c.touchEntry(i)
		// Trim beyond capacity.
		if c.tree.Len() > c.capacity {
			victim := c.tail
			c.touchEntry(victim)
			c.unlink(victim)
			c.tree.Delete(c.entries[victim].key + 1)
			if c.entries[victim].inserter == id {
				c.SelfDisplace++
			} else {
				c.OtherDisplace++
			}
			c.free = append(c.free, victim)
		}
	}
	return ok, append(addrs, *c.touch...)
}

// Len returns the number of cached entries.
func (c *SimpleLRU) Len() int { return c.tree.Len() }

// LRUCacheParams configures the §6.9 LRUCache benchmark: like keymap, but
// the CS performs lookups on the shared software LRU cache. "Threads in
// LRUCache compete for occupancy in the software LRU cache" — the cache
// is "conceptually equivalent to a small shared hardware cache having
// perfect (ideal) associativity", so CR lowers its miss rate.
type LRUCacheParams struct {
	Capacity   int     // 10000
	KeyRange   int     // 1,000,000
	KeysetSize int     // 1000
	ReuseProb  float64 // replacement probability is 1-ReuseProb = 0.01
	NCSSpins   int
}

// DefaultLRUCache returns the paper's parameters.
func DefaultLRUCache() LRUCacheParams {
	return LRUCacheParams{Capacity: 10_000, KeyRange: 1_000_000, KeysetSize: 1000, ReuseProb: 0.99, NCSSpins: 1000}
}

// BuildLRUCache spawns n threads doing SimpleLRU lookups under l. The
// cache capacity is scaled with the engine's cache scale (it plays the
// role of a shared cache); key range scales identically so hit ratios are
// preserved.
func BuildLRUCache(e *sim.Engine, l *sim.Lock, n int, p LRUCacheParams) *SimpleLRU {
	scale := e.Config().Cache.Scale
	capacity := p.Capacity / scale
	if capacity < 256 {
		capacity = 256
	}
	keyRange := p.KeyRange / scale
	if keyRange < capacity*4 {
		keyRange = capacity * 4
	}
	cache := NewSimpleLRU(capacity, sharedBase)
	init := newWorkloadRng(e, 0x12c)
	for i := 0; i < n; i++ {
		id := i
		keyset := make([]uint64, p.KeysetSize)
		for k := range keyset {
			keyset[k] = uint64(init.Intn(keyRange))
		}
		priv := PrivateBase(i)
		e.Spawn(&Circuit{
			Lock: l,
			NCS: func(t *sim.Thread, addrs []uint64) (sim.Cycles, []uint64) {
				return sim.Cycles(p.NCSSpins) * 6, addrs
			},
			CS: func(t *sim.Thread, addrs []uint64) (sim.Cycles, []uint64) {
				idx := t.Rng.Intn(len(keyset))
				addrs = append(addrs, priv+uint64(idx)*8)
				if !t.Rng.Prob(p.ReuseProb) {
					keyset[idx] = uint64(t.Rng.Intn(keyRange))
				}
				_, addrs = cache.Lookup(id, keyset[idx], addrs)
				return 500, addrs
			},
		})
	}
	return cache
}
