package workloads

import (
	"repro/internal/hashmap"
	"repro/sim"
)

// HashDBParams configures the §6.6 Kyoto Cabinet kccachetest stand-in: an
// in-memory hash database protected by a single mutex, exercised with a
// fixed key range (the paper fixes 10 M keys so scaling is comparable
// across thread counts).
type HashDBParams struct {
	Keys         int     // full-scale key range (10M), divided by cache scale
	WriteFrac    float64 // fraction of operations that store
	NCSAccesses  int     // private accesses between operations
	PrivateBytes int
	OpCycles     sim.Cycles
}

// DefaultHashDB returns the paper-shaped parameters.
func DefaultHashDB() HashDBParams {
	return HashDBParams{
		Keys:         10_000_000,
		WriteFrac:    0.2,
		NCSAccesses:  100,
		PrivateBytes: 1 << 20,
		OpCycles:     500,
	}
}

// BuildHashDB spawns n threads over a shared preloaded hash database.
func BuildHashDB(e *sim.Engine, l *sim.Lock, n int, p HashDBParams) *hashmap.Map {
	scale := e.Config().Cache.Scale
	keys := p.Keys / scale
	if keys < 10_000 {
		keys = 10_000
	}
	span := p.PrivateBytes / scale
	if span < 4096 {
		span = 4096
	}
	db := hashmap.New(keys, sharedBase)
	for i := 0; i < keys; i++ {
		db.Put(uint64(i)+1, uint64(i))
	}
	touch := make([]uint64, 0, 64)
	db.Touch = func(addr uint64) { touch = append(touch, addr) }

	for i := 0; i < n; i++ {
		priv := PrivateBase(i)
		e.Spawn(&Circuit{
			Lock: l,
			NCS: func(t *sim.Thread, addrs []uint64) (sim.Cycles, []uint64) {
				for k := 0; k < p.NCSAccesses; k++ {
					addrs = append(addrs, randIn(t, priv, span))
				}
				return sim.Cycles(p.NCSAccesses) * 20, addrs
			},
			CS: func(t *sim.Thread, addrs []uint64) (sim.Cycles, []uint64) {
				touch = touch[:0]
				key := uint64(t.Rng.Intn(keys)) + 1
				if t.Rng.Prob(p.WriteFrac) {
					db.Put(key, t.Rng.Next())
				} else {
					db.Get(key)
				}
				addrs = append(addrs, touch...)
				return p.OpCycles, addrs
			},
		})
	}
	return db
}
