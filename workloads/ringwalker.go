package workloads

import "repro/sim"

// RingWalkerParams configures the §6.2 core-level DTLB pressure
// benchmark. Each thread owns a private circularly linked list of
// Elements nodes, each 8 KB long on its own page; the NCS walks
// NCSSteps private elements (resuming where the previous iteration
// stopped), the CS advances CSSteps elements around a shared ring.
//
// The arithmetic of Figure 5: with 128 TLB entries per core, one thread's
// ring (50 pages) plus the shared ring (50 pages) fits; two threads on
// one core bring the span to 150 pages and the TLB thrashes.
type RingWalkerParams struct {
	Elements      int        // ring length (50)
	ElementBytes  int        // 8192: one page per element
	NCSSteps      int        // 50
	CSSteps       int        // 10
	PerStepCycles sim.Cycles // non-memory cost per element visit
}

// DefaultRingWalker returns the paper's parameters.
func DefaultRingWalker() RingWalkerParams {
	return RingWalkerParams{
		Elements:      50,
		ElementBytes:  8192,
		NCSSteps:      50,
		CSSteps:       10,
		PerStepCycles: 20,
	}
}

// ringState carries the walker positions; the shared ring position lives
// in the workload (it is CS data, mutated under the lock).
type ringState struct {
	privatePos int
	sharedPos  *int
	offsets    []uint64 // per-element random page offsets ("colored")
}

// BuildRingWalker spawns n threads walking private and shared rings.
// Rings are NOT scaled: DTLB entries are a count, not a byte capacity,
// and the paper's inflection arithmetic depends on the exact page spans.
func BuildRingWalker(e *sim.Engine, l *sim.Lock, n int, p RingWalkerParams) {
	sharedPos := 0
	// Random intra-page offsets to avoid cache index conflicts, as in the
	// paper ("the offsets of elements within their respective pages were
	// randomly colored").
	offsets := make([]uint64, p.Elements*(n+1))
	seedRng := newWorkloadRng(e, 0x51)
	for i := range offsets {
		offsets[i] = uint64(seedRng.Intn(p.ElementBytes/64)) * 64
	}
	elemAddr := func(base uint64, ring, idx int) uint64 {
		return base + uint64(idx)*uint64(p.ElementBytes) + offsets[(ring*p.Elements+idx)%len(offsets)]
	}
	for i := 0; i < n; i++ {
		st := &ringState{sharedPos: &sharedPos, offsets: offsets}
		priv := PrivateBase(i)
		ring := i + 1
		e.Spawn(&Circuit{
			Lock: l,
			NCS: func(t *sim.Thread, addrs []uint64) (sim.Cycles, []uint64) {
				for k := 0; k < p.NCSSteps; k++ {
					st.privatePos = (st.privatePos + 1) % p.Elements
					addrs = append(addrs, elemAddr(priv, ring, st.privatePos))
				}
				return sim.Cycles(p.NCSSteps) * p.PerStepCycles, addrs
			},
			CS: func(t *sim.Thread, addrs []uint64) (sim.Cycles, []uint64) {
				for k := 0; k < p.CSSteps; k++ {
					*st.sharedPos = (*st.sharedPos + 1) % p.Elements
					addrs = append(addrs, elemAddr(sharedBase, 0, *st.sharedPos))
				}
				return sim.Cycles(p.CSSteps) * p.PerStepCycles, addrs
			},
		})
	}
}
