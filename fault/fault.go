// Package fault implements injectable faults for the sharded store: the
// pathological conditions "Malthusian Locks" (EuroSys 2017) argues an
// admission policy must survive — critical-section stalls, thread-count
// surges (the paper's overthreading collapse), and hot-key skew storms —
// reproducible on demand instead of waited for.
//
// It is the fourth consumer of the internal/spec registry machinery,
// after locks, backends, and policies: each fault self-registers from its
// own file's init, and consumers select one with a spec string. Faults
// compose with "+", so a chaos timeline is itself one spec:
//
//	f, err := fault.New("stall?p=0.5&hold=2ms")
//	f, err := fault.New("surge?threads=32&after=1s&for=2s")
//	f := fault.MustNew("stall?p=1&hold=1ms&stripe=3+hotkey?frac=0.8&after=500ms")
//
// Every fault takes an activation window: after=D delays onset and for=D
// bounds duration, both measured from Arm (a Set that is never armed
// injects nothing — construction is side-effect free). The zero window
// is "always", so a bare "stall?p=1&hold=1ms" storms from Arm to Disarm.
//
// A Set is the composition: it implements every injection hook, fanning
// each to the faults that care. The hooks are consumed at two layers:
//
//   - InCS is the data-plane hook — shard.Map calls it inside a stripe's
//     critical section on every point operation when an injector is
//     installed (Map.SetInjector), so a stall lengthens the critical
//     section exactly where the paper's convoy dynamics punish it.
//   - Key and ExtraThreads are harness hooks — a load generator
//     (cmd/shardbench's worker pool) reroutes keys through Key for skew
//     storms and sizes its worker pool by ExtraThreads for surges.
//
// All hooks are safe for concurrent use and cheap while no fault is in
// its window (an atomic load and a clock read). Stats reports what was
// actually injected, so a chaos run can assert its faults fired.
package fault

import (
	"fmt"
	"strings"
	"sync/atomic"
	"time"

	"repro/internal/spec"
)

// Defaults for fault parameters.
const (
	// DefaultStallHold is the critical-section stall length when a
	// "stall" spec omits hold=.
	DefaultStallHold = time.Millisecond
	// DefaultSurgeThreads is the extra worker count when a "surge" spec
	// omits threads=.
	DefaultSurgeThreads = 16
	// DefaultHotKey is the key "hotkey" reroutes traffic to when the
	// spec omits key=.
	DefaultHotKey = 0
)

// Fault is one injectable pathology. Implementations embed window for
// the after=/for= activation gate and count what they inject; hooks they
// do not participate in are no-ops (a surge never stalls a critical
// section). All methods must be safe for concurrent use.
type Fault interface {
	// InCS runs inside stripe's critical section (the data-plane hook).
	InCS(stripe int)
	// Key possibly rewrites a request's key (the skew-storm hook).
	Key(key uint64) uint64
	// ExtraThreads reports how many surplus workers the harness should
	// run right now (the overthreading hook); 0 when inactive.
	ExtraThreads() int
	// active reports whether the fault is inside its window. The Set
	// uses it for Active; arm starts the window clock.
	active() bool
	arm()
	disarm()
	// stats folds this fault's injection counters into s.
	stats(s *Stats)
}

// Stats counts what a Set actually injected — the evidence a chaos run
// asserts on (a fault that never fired proves nothing).
type Stats struct {
	// Stalls is the number of critical-section stalls injected, and
	// StallTime their summed length.
	Stalls    uint64
	StallTime time.Duration
	// Reroutes is the number of requests redirected to the hot key.
	Reroutes uint64
	// SurgePeak is the widest surplus worker count any surge requested.
	SurgePeak int
}

// Total is the total number of injected events: the "did anything
// actually fire" scalar for smoke assertions.
func (s Stats) Total() uint64 { return s.Stalls + s.Reroutes + uint64(s.SurgePeak) }

// Set is a composition of faults built from a "+"-joined spec. The zero
// value injects nothing; construct with New. A Set satisfies the
// shard.Injector contract (InCS) and the harness hooks (Key,
// ExtraThreads) at once, so one value wires a whole timeline.
type Set struct {
	faults []Fault
	specs  []string
	armed  atomic.Bool
}

// window is the shared activation gate: a fault is active between
// after and after+dur (dur 0 = unbounded) measured from arm time. The
// zero window is active whenever armed.
type window struct {
	after, dur time.Duration
	start      atomic.Int64 // arm time, ns; 0 = disarmed
}

func (w *window) arm()    { w.start.Store(time.Now().UnixNano()) }
func (w *window) disarm() { w.start.Store(0) }

func (w *window) active() bool {
	start := w.start.Load()
	if start == 0 {
		return false
	}
	el := time.Duration(time.Now().UnixNano() - start)
	if el < w.after {
		return false
	}
	return w.dur == 0 || el < w.after+w.dur
}

// New builds a fault set from a spec: one or more registered fault names,
// each with optional URL-style parameters, joined with "+":
//
//	"stall?p=0.5&hold=2ms"
//	"surge?threads=32&after=1s&for=2s"
//	"stall?p=1&hold=1ms&stripe=3+hotkey?frac=0.8&after=500ms"
//
// Parameters common to every fault:
//
//	after=D   activation delay from Arm (default 0: immediate)
//	for=D     active duration (default 0: until Disarm)
//
// Per-fault parameters are documented on the fault (stall: p=, hold=,
// stripe=; surge: threads=; hotkey: frac=, key=). Malformed specs —
// unknown name, unknown or duplicated parameter, bad value, an empty "+"
// segment — return a descriptive error and a nil Set.
func New(s string) (*Set, error) {
	parts := strings.Split(s, "+")
	set := &Set{}
	for _, part := range parts {
		part = strings.TrimSpace(part)
		if part == "" {
			return nil, fmt.Errorf("fault: empty fault in composed spec %q", s)
		}
		reg, query, err := registry.Resolve(part)
		if err != nil {
			return nil, err
		}
		f, err := reg.Build(part, query)
		if err != nil {
			return nil, err
		}
		set.faults = append(set.faults, f)
		set.specs = append(set.specs, part)
	}
	return set, nil
}

// MustNew is New for tests and initialization paths where a malformed
// spec is a programming error; it panics instead of returning one.
func MustNew(s string) *Set {
	set, err := New(s)
	if err != nil {
		panic(err)
	}
	return set
}

// Arm starts every fault's activation clock: after= and for= windows
// measure from now. Arming an armed set restarts the clocks.
func (s *Set) Arm() {
	for _, f := range s.faults {
		f.arm()
	}
	s.armed.Store(true)
}

// Disarm stops all injection immediately, whatever the windows say.
// A disarmed set can be re-armed.
func (s *Set) Disarm() {
	for _, f := range s.faults {
		f.disarm()
	}
	s.armed.Store(false)
}

// Active reports whether any fault is currently inside its activation
// window — the phase signal a chaos harness samples to split a run into
// pre-fault, fault, and recovery.
func (s *Set) Active() bool {
	if s == nil || !s.armed.Load() {
		return false
	}
	for _, f := range s.faults {
		if f.active() {
			return true
		}
	}
	return false
}

// InCS fans the critical-section hook to every fault. It satisfies the
// shard.Injector contract; install with Map.SetInjector.
//
//lockcheck:cs
func (s *Set) InCS(stripe int) {
	for _, f := range s.faults {
		f.InCS(stripe)
	}
}

// Key routes a request's key through every fault's rewrite in spec
// order (in practice at most one hotkey rewrites it).
func (s *Set) Key(key uint64) uint64 {
	for _, f := range s.faults {
		key = f.Key(key)
	}
	return key
}

// ExtraThreads reports the surplus worker count the harness should run
// right now: the widest of the active surges.
func (s *Set) ExtraThreads() int {
	n := 0
	for _, f := range s.faults {
		if t := f.ExtraThreads(); t > n {
			n = t
		}
	}
	return n
}

// Stats folds every fault's injection counters into one report.
func (s *Set) Stats() Stats {
	var out Stats
	for _, f := range s.faults {
		f.stats(&out)
	}
	return out
}

// String returns the composed spec the set was built from.
func (s *Set) String() string { return strings.Join(s.specs, "+") }

// Builder constructs one fault from its full spec (for error messages)
// and its query string. Unlike the other families' builders it parses
// its own query: fault parameters are per-fault (a surge has no p=), so
// there is no shared option type for a package-level grammar to produce.
type Builder func(fullSpec, query string) (Fault, error)

// Registration describes one fault implementation to the registry; the
// machinery is the same generic internal/spec registry the lock,
// backend, and policy families use.
type Registration = spec.Registration[Builder]

var registry = spec.NewRegistry[Builder]("fault", "fault")

// Register adds a fault implementation to the registry. It panics on an
// empty name, a nil builder, or a name/alias collision — registration is
// an init-time act and a collision is a programming error.
func Register(r Registration) {
	if r.Name == "" || r.Build == nil {
		panic("fault: Register with empty name or nil builder")
	}
	registry.Register(r)
}

// Names returns the sorted canonical names of every registered fault.
func Names() []string { return registry.Names() }

// Lookup resolves a name or alias to its Registration.
func Lookup(name string) (Registration, bool) { return registry.Lookup(name) }
