package fault

import (
	"sync/atomic"

	"repro/internal/spec"
)

func init() {
	Register(Registration{
		Name:    "hotkey",
		Summary: "skew storm: reroutes frac of requests to one key (key=); window after=/for=",
		Build:   buildHotkey,
	})
}

// hotkey injects a skew storm: while active, each request's key is
// rewritten to the hot key with probability frac, collapsing the
// keyspace onto one stripe no matter what distribution the workload was
// built with. Where zipf skew is a property of the traffic, a hotkey
// storm is an *event* — a viral object, a retry stampede — and the
// interesting question is whether the owning stripe's admission policy
// absorbs it. The harness applies the rewrite before routing
// (Set.Key), so the storm lands on whichever stripe owns key=.
type hotkey struct {
	window
	frac float64
	key  uint64

	coin     coin
	reroutes atomic.Uint64
}

//lockcheck:cs
func (f *hotkey) InCS(int) {}

func (f *hotkey) Key(key uint64) uint64 {
	if !f.active() || !f.coin.hit() {
		return key
	}
	f.reroutes.Add(1)
	return f.key
}

func (f *hotkey) ExtraThreads() int { return 0 }

func (f *hotkey) stats(s *Stats) { s.Reroutes += f.reroutes.Load() }

type hotkeyOpt func(*hotkey)

var hotkeyGrammar = spec.NewGrammar[hotkeyOpt]("fault", map[string]spec.ParamFunc[hotkeyOpt]{
	"frac": func(v string) (hotkeyOpt, error) {
		p, err := spec.Frac(v)
		if err != nil {
			return nil, err
		}
		return func(f *hotkey) { f.frac = p }, nil
	},
	"key": func(v string) (hotkeyOpt, error) {
		k, err := spec.Uint(v)
		if err != nil {
			return nil, err
		}
		return func(f *hotkey) { f.key = k }, nil
	},
	"after": func(v string) (hotkeyOpt, error) {
		d, err := spec.Dur(v)
		if err != nil {
			return nil, err
		}
		return func(f *hotkey) { f.after = d }, nil
	},
	"for": func(v string) (hotkeyOpt, error) {
		d, err := spec.Dur(v)
		if err != nil {
			return nil, err
		}
		return func(f *hotkey) { f.dur = d }, nil
	},
})

func buildHotkey(fullSpec, query string) (Fault, error) {
	f := &hotkey{frac: 1, key: DefaultHotKey}
	opts, err := hotkeyGrammar.Parse(fullSpec, query)
	if err != nil {
		return nil, err
	}
	for _, o := range opts {
		o(f)
	}
	f.coin.set(f.frac)
	return f, nil
}
