package fault

import (
	"math"
	"sync/atomic"
	"time"

	"repro/internal/spec"
)

func init() {
	Register(Registration{
		Name:    "stall",
		Summary: "stalls inside the stripe critical section: p=/hold=/stripe=; window after=/for=",
		Build:   buildStall,
	})
}

// stall lengthens a stripe's critical section: with probability p, an
// operation that holds the stripe lock sleeps hold before releasing.
// This is the paper's convoy scenario made injectable — a long critical
// section is cheap for the holder and ruinous for the queue, and how
// ruinous depends entirely on the admission policy: a FIFO queue charges
// every waiter the full convoy, a culling policy charges a small active
// set. stripe= targets one stripe (the hot-stripe storm); by default
// every stripe stalls.
type stall struct {
	window
	p      float64
	hold   time.Duration
	stripe int // -1 = every stripe

	coin   coin
	stalls atomic.Uint64
}

//lockcheck:cs
func (f *stall) InCS(stripe int) {
	if !f.active() {
		return
	}
	if f.stripe >= 0 && stripe != f.stripe {
		return
	}
	if !f.coin.hit() {
		return
	}
	f.stalls.Add(1)
	//lockcheck:ignore the stall fault exists to lengthen the critical section
	time.Sleep(f.hold)
}

func (f *stall) Key(key uint64) uint64 { return key }
func (f *stall) ExtraThreads() int     { return 0 }

func (f *stall) stats(s *Stats) {
	n := f.stalls.Load()
	s.Stalls += n
	s.StallTime += time.Duration(n) * f.hold
}

type stallOpt func(*stall)

var stallGrammar = spec.NewGrammar[stallOpt]("fault", map[string]spec.ParamFunc[stallOpt]{
	"p": func(v string) (stallOpt, error) {
		p, err := spec.Frac(v)
		if err != nil {
			return nil, err
		}
		return func(f *stall) { f.p = p }, nil
	},
	"hold": func(v string) (stallOpt, error) {
		d, err := spec.Dur(v)
		if err != nil {
			return nil, err
		}
		return func(f *stall) { f.hold = d }, nil
	},
	"stripe": func(v string) (stallOpt, error) {
		n, err := spec.NonNegInt(v)
		if err != nil {
			return nil, err
		}
		return func(f *stall) { f.stripe = n }, nil
	},
	"after": func(v string) (stallOpt, error) {
		d, err := spec.Dur(v)
		if err != nil {
			return nil, err
		}
		return func(f *stall) { f.after = d }, nil
	},
	"for": func(v string) (stallOpt, error) {
		d, err := spec.Dur(v)
		if err != nil {
			return nil, err
		}
		return func(f *stall) { f.dur = d }, nil
	},
})

func buildStall(fullSpec, query string) (Fault, error) {
	f := &stall{p: 1, hold: DefaultStallHold, stripe: -1}
	opts, err := stallGrammar.Parse(fullSpec, query)
	if err != nil {
		return nil, err
	}
	for _, o := range opts {
		o(f)
	}
	f.coin.set(f.p)
	return f, nil
}

// coin is a lock-free Bernoulli source shared by faults that inject
// probabilistically from many goroutines at once: an atomic counter run
// through a 64-bit finalizer, compared against p scaled to the uint64
// domain. It is deliberately not a per-goroutine PRNG — fault injection
// needs the right *rate*, not statistical independence per caller, and
// one contended counter is the cheapest thing that survives arbitrary
// concurrency.
type coin struct {
	n         atomic.Uint64
	threshold uint64
	always    bool
}

func (c *coin) set(p float64) {
	c.always = p >= 1
	c.threshold = uint64(p * math.MaxUint64)
}

func (c *coin) hit() bool {
	if c.always {
		return true
	}
	if c.threshold == 0 {
		return false
	}
	// SplitMix64 finalizer over the counter: uniform enough for a rate.
	x := c.n.Add(1) * 0x9e3779b97f4a7c15
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x < c.threshold
}
