package fault

import (
	"strings"
	"testing"
	"time"
)

func TestRegistry(t *testing.T) {
	names := Names()
	for _, want := range []string{"hotkey", "stall", "surge"} {
		found := false
		for _, n := range names {
			if n == want {
				found = true
			}
		}
		if !found {
			t.Fatalf("Names() = %v, missing %q", names, want)
		}
	}
	if _, ok := Lookup("stall"); !ok {
		t.Fatal("stall did not resolve")
	}
	for _, good := range []string{
		"stall",
		"stall?p=0.5&hold=2ms&stripe=3",
		"surge?threads=32&after=1s&for=2s",
		"hotkey?frac=0.8&key=42",
		"stall?p=1&hold=1ms+hotkey?frac=0.5",
		" stall + surge ", // segments are trimmed
	} {
		if _, err := New(good); err != nil {
			t.Fatalf("New(%q): %v", good, err)
		}
	}
	for _, bad := range []struct{ spec, frag string }{
		{"no-such-fault", "unknown fault"},
		{"stall?bogus=1", "unknown parameter"},
		{"stall?p=1.5", "bad value"},
		{"stall?hold=-1ms", "bad value"},
		{"stall?hold=fast", "bad value"},
		{"surge?threads=0", "bad value"},
		{"hotkey?frac=x", "bad value"},
		{"stall?p=0.5&p=0.6", "given 2 times"},
		{"stall++surge", "empty fault"},
		{"", "empty fault"},
	} {
		_, err := New(bad.spec)
		if err == nil {
			t.Fatalf("New(%q) accepted", bad.spec)
		}
		if !strings.Contains(err.Error(), bad.frag) {
			t.Fatalf("New(%q) error %q missing %q", bad.spec, err, bad.frag)
		}
	}
}

func TestString(t *testing.T) {
	spec := "stall?p=1&hold=1ms+hotkey?frac=0.5"
	if got := MustNew(spec).String(); got != spec {
		t.Fatalf("String() = %q want %q", got, spec)
	}
}

// TestArmGate: an unarmed set injects nothing, an armed one does, and
// Disarm stops injection immediately.
func TestArmGate(t *testing.T) {
	s := MustNew("stall?p=1&hold=0s+hotkey?frac=1&key=7+surge?threads=4")
	if s.Active() {
		t.Fatal("active before Arm")
	}
	if got := s.Key(100); got != 100 {
		t.Fatalf("unarmed Key(100) = %d", got)
	}
	if got := s.ExtraThreads(); got != 0 {
		t.Fatalf("unarmed ExtraThreads = %d", got)
	}
	s.InCS(0)
	if st := s.Stats(); st.Total() != 0 {
		t.Fatalf("unarmed set injected: %+v", st)
	}

	s.Arm()
	if !s.Active() {
		t.Fatal("not active after Arm")
	}
	if got := s.Key(100); got != 7 {
		t.Fatalf("armed Key(100) = %d want 7", got)
	}
	if got := s.ExtraThreads(); got != 4 {
		t.Fatalf("armed ExtraThreads = %d want 4", got)
	}
	s.InCS(0)
	st := s.Stats()
	if st.Stalls != 1 || st.Reroutes != 1 || st.SurgePeak != 4 {
		t.Fatalf("armed stats = %+v", st)
	}

	s.Disarm()
	if s.Active() {
		t.Fatal("active after Disarm")
	}
	s.InCS(0)
	if got := s.Key(100); got != 100 {
		t.Fatalf("disarmed Key(100) = %d", got)
	}
	if got := s.Stats(); got.Stalls != 1 {
		t.Fatalf("disarmed set kept stalling: %+v", got)
	}
}

// TestWindow: after= delays onset and for= bounds duration, both
// measured from Arm.
func TestWindow(t *testing.T) {
	s := MustNew("surge?threads=8&after=50ms&for=50ms")
	s.Arm()
	if s.ExtraThreads() != 0 {
		t.Fatal("active before after= elapsed")
	}
	deadline := time.Now().Add(5 * time.Second)
	for s.ExtraThreads() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("never entered the window")
		}
		time.Sleep(time.Millisecond)
	}
	for s.ExtraThreads() != 0 {
		if time.Now().After(deadline) {
			t.Fatal("never left the window")
		}
		time.Sleep(time.Millisecond)
	}
	if s.Stats().SurgePeak != 8 {
		t.Fatalf("surge never recorded firing: %+v", s.Stats())
	}
}

// TestStallTargetsStripe: stripe= confines the stall to one stripe.
func TestStallTargetsStripe(t *testing.T) {
	s := MustNew("stall?p=1&hold=0s&stripe=3")
	s.Arm()
	s.InCS(0)
	s.InCS(2)
	if got := s.Stats().Stalls; got != 0 {
		t.Fatalf("stalled %d times on untargeted stripes", got)
	}
	s.InCS(3)
	if got := s.Stats().Stalls; got != 1 {
		t.Fatalf("Stalls = %d want 1", got)
	}
}

// TestStallHoldLengthensCS: the injected sleep is observable wall time.
func TestStallHoldLengthensCS(t *testing.T) {
	s := MustNew("stall?p=1&hold=20ms")
	s.Arm()
	start := time.Now()
	s.InCS(0)
	if el := time.Since(start); el < 15*time.Millisecond {
		t.Fatalf("InCS returned after %v, want >= ~20ms", el)
	}
	st := s.Stats()
	if st.Stalls != 1 || st.StallTime != 20*time.Millisecond {
		t.Fatalf("stats = %+v", st)
	}
}

// TestCoinRate: the shared Bernoulli source hits near p over many trials.
func TestCoinRate(t *testing.T) {
	var c coin
	c.set(0.3)
	const trials = 100000
	hits := 0
	for i := 0; i < trials; i++ {
		if c.hit() {
			hits++
		}
	}
	rate := float64(hits) / trials
	if rate < 0.27 || rate > 0.33 {
		t.Fatalf("coin rate %.3f want ~0.30", rate)
	}
	c.set(0)
	if c.hit() {
		t.Fatal("p=0 coin hit")
	}
	c.set(1)
	if !c.hit() {
		t.Fatal("p=1 coin missed")
	}
}

// TestHotkeyFrac: frac=F reroutes about that share of keys.
func TestHotkeyFrac(t *testing.T) {
	s := MustNew("hotkey?frac=0.5&key=9")
	s.Arm()
	const trials = 100000
	rerouted := 0
	for i := 0; i < trials; i++ {
		if s.Key(uint64(i+1000)) == 9 {
			rerouted++
		}
	}
	rate := float64(rerouted) / trials
	if rate < 0.45 || rate > 0.55 {
		t.Fatalf("reroute rate %.3f want ~0.50", rate)
	}
	if got := s.Stats().Reroutes; got != uint64(rerouted) {
		t.Fatalf("Reroutes = %d want %d", got, rerouted)
	}
}

// TestRearm: a disarmed set can be armed again and its windows restart.
func TestRearm(t *testing.T) {
	s := MustNew("surge?threads=2")
	s.Arm()
	if s.ExtraThreads() != 2 {
		t.Fatal("not active after first Arm")
	}
	s.Disarm()
	if s.ExtraThreads() != 0 {
		t.Fatal("active after Disarm")
	}
	s.Arm()
	if s.ExtraThreads() != 2 {
		t.Fatal("not active after re-Arm")
	}
}
