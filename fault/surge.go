package fault

import (
	"sync/atomic"

	"repro/internal/spec"
)

func init() {
	Register(Registration{
		Name:    "surge",
		Summary: "thread-count surge (the paper's overthreading collapse): threads=; window after=/for=",
		Build:   buildSurge,
	})
}

// surge reproduces the paper's overthreading scenario: the thread count
// jumps by threads for the activation window. The fault itself only
// *requests* the surplus — the harness (cmd/shardbench's worker pool)
// polls ExtraThreads and runs that many extra closed-loop workers while
// the window is open, then drains them. Surplus demand is exactly what a
// Malthusian policy exists to survive: a FIFO lock hands the critical
// section to descheduled threads and collapses; a culling lock
// passivates the surplus and keeps the active set near the hardware.
type surge struct {
	window
	threads int

	fired atomic.Bool // ever observed active by the harness
}

//lockcheck:cs
func (f *surge) InCS(int) {}

func (f *surge) Key(key uint64) uint64 { return key }

func (f *surge) ExtraThreads() int {
	if !f.active() {
		return 0
	}
	f.fired.Store(true)
	return f.threads
}

func (f *surge) stats(s *Stats) {
	if f.fired.Load() && f.threads > s.SurgePeak {
		s.SurgePeak = f.threads
	}
}

type surgeOpt func(*surge)

var surgeGrammar = spec.NewGrammar[surgeOpt]("fault", map[string]spec.ParamFunc[surgeOpt]{
	"threads": func(v string) (surgeOpt, error) {
		n, err := spec.PosInt(v)
		if err != nil {
			return nil, err
		}
		return func(f *surge) { f.threads = n }, nil
	},
	"after": func(v string) (surgeOpt, error) {
		d, err := spec.Dur(v)
		if err != nil {
			return nil, err
		}
		return func(f *surge) { f.after = d }, nil
	},
	"for": func(v string) (surgeOpt, error) {
		d, err := spec.Dur(v)
		if err != nil {
			return nil, err
		}
		return func(f *surge) { f.dur = d }, nil
	},
})

func buildSurge(fullSpec, query string) (Fault, error) {
	f := &surge{threads: DefaultSurgeThreads}
	opts, err := surgeGrammar.Parse(fullSpec, query)
	if err != nil {
		return nil, err
	}
	for _, o := range opts {
		o(f)
	}
	return f, nil
}
