package fault

import "testing"

// New is run at vet time by the speclit analyzer over every constant
// fault spec in the module, so it must be total (no panic on any input)
// and deterministic, and a Set it accepts must round-trip through its
// own String — the composed "+" grammar included.
func FuzzNew(f *testing.F) {
	f.Add("stall?p=1&hold=1ms")
	f.Add("stall?p=1+surge?threads=4")
	f.Add("stall+stall")
	f.Add("+stall")
	f.Add("stall+")
	f.Add("++")
	f.Add("hotkey?frac=0.5&key=9+surge?threads=2&after=1ms&for=1ms")
	f.Add("stall?p=%31")
	f.Add("stall?p=1&p=1")
	f.Add("surge?threads=0")
	f.Add(" stall ? p = 1 ")
	f.Fuzz(func(t *testing.T, s string) {
		set1, err1 := New(s)
		set2, err2 := New(s)
		if (err1 == nil) != (err2 == nil) {
			t.Fatalf("New(%q) is nondeterministic: %v vs %v", s, err1, err2)
		}
		if err1 != nil {
			if set1 != nil {
				t.Fatalf("New(%q) returned both a set and an error %v", s, err1)
			}
			return
		}
		if set1.String() != set2.String() {
			t.Fatalf("New(%q): unstable String: %q vs %q", s, set1.String(), set2.String())
		}
		// Round-trip: the canonical rendering must itself be a valid spec
		// describing the same composition.
		rt, err := New(set1.String())
		if err != nil {
			t.Fatalf("New(%q).String() = %q does not re-parse: %v", s, set1.String(), err)
		}
		if rt.String() != set1.String() {
			t.Fatalf("New(%q) round-trip drifted: %q vs %q", s, set1.String(), rt.String())
		}
	})
}
