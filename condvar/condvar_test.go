package condvar

import (
	"context"
	"errors"
	"os"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/lock"
)

func TestMain(m *testing.M) {
	if runtime.GOMAXPROCS(0) < 4 {
		runtime.GOMAXPROCS(4)
	}
	os.Exit(m.Run())
}

func policies() map[string]float64 {
	return map[string]float64{"FIFO": FIFO, "MostlyLIFO": MostlyLIFO, "LIFO": LIFO}
}

func TestSignalWakesOne(t *testing.T) {
	for name, p := range policies() {
		t.Run(name, func(t *testing.T) {
			var mu sync.Mutex
			c := New(&mu, p, 1)
			ready := false
			done := make(chan struct{})
			go func() {
				mu.Lock()
				for !ready {
					c.Wait()
				}
				mu.Unlock()
				close(done)
			}()
			time.Sleep(10 * time.Millisecond)
			mu.Lock()
			ready = true
			mu.Unlock()
			c.Signal()
			select {
			case <-done:
			case <-time.After(5 * time.Second):
				t.Fatal("Signal did not wake the waiter")
			}
		})
	}
}

func TestBroadcastWakesAll(t *testing.T) {
	for name, p := range policies() {
		t.Run(name, func(t *testing.T) {
			var mu sync.Mutex
			c := New(&mu, p, 1)
			const n = 8
			ready := false
			var woke atomic.Int32
			var wg sync.WaitGroup
			for i := 0; i < n; i++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					mu.Lock()
					for !ready {
						c.Wait()
					}
					mu.Unlock()
					woke.Add(1)
				}()
			}
			time.Sleep(20 * time.Millisecond)
			mu.Lock()
			ready = true
			mu.Unlock()
			c.Broadcast()
			doneCh := make(chan struct{})
			go func() { wg.Wait(); close(doneCh) }()
			select {
			case <-doneCh:
			case <-time.After(10 * time.Second):
				t.Fatalf("Broadcast woke only %d of %d", woke.Load(), n)
			}
		})
	}
}

func TestSignalWithNoWaitersIsNoop(t *testing.T) {
	var mu sync.Mutex
	c := NewFIFO(&mu)
	c.Signal()
	c.Broadcast()
	if c.Len() != 0 {
		t.Fatal("phantom waiters")
	}
}

func TestFIFOOrder(t *testing.T) {
	// Waiters enqueued one at a time under FIFO must be signaled in
	// arrival order.
	var mu sync.Mutex
	c := NewFIFO(&mu)
	const n = 6
	order := make(chan int, n)
	for i := 0; i < n; i++ {
		i := i
		released := make(chan struct{})
		go func() {
			mu.Lock()
			close(released)
			c.Wait()
			order <- i
			mu.Unlock()
		}()
		<-released
		// Wait until the goroutine is actually queued.
		for c.Len() != i+1 {
			runtime.Gosched()
		}
	}
	for i := 0; i < n; i++ {
		c.Signal()
		got := <-order
		if got != i {
			t.Fatalf("signal %d woke waiter %d", i, got)
		}
	}
}

func TestLIFOOrder(t *testing.T) {
	// Pure LIFO must wake the most recently arrived waiter first.
	var mu sync.Mutex
	c := New(&mu, LIFO, 1)
	const n = 6
	order := make(chan int, n)
	for i := 0; i < n; i++ {
		i := i
		go func() {
			mu.Lock()
			c.Wait()
			order <- i
			mu.Unlock()
		}()
		for c.Len() != i+1 {
			runtime.Gosched()
		}
	}
	for i := n - 1; i >= 0; i-- {
		c.Signal()
		got := <-order
		if got != i {
			t.Fatalf("expected LIFO wake of %d, got %d", i, got)
		}
	}
}

func TestMostlyLIFOAdmissionBias(t *testing.T) {
	// Structural check on the queue discipline itself: enqueue many
	// waiters under mostly-LIFO; the overwhelming majority must have been
	// prepended. We inspect by draining with Signal and observing order
	// is mostly reverse-arrival.
	var mu sync.Mutex
	c := New(&mu, MostlyLIFO, 42)
	const n = 40
	order := make(chan int, n)
	for i := 0; i < n; i++ {
		i := i
		go func() {
			mu.Lock()
			c.Wait()
			order <- i
			mu.Unlock()
		}()
		for c.Len() != i+1 {
			runtime.Gosched()
		}
	}
	inversions := 0
	prev := n
	for i := 0; i < n; i++ {
		c.Signal()
		got := <-order
		if got > prev {
			inversions++
		}
		prev = got
	}
	// Perfect LIFO has 0 inversions; allow a few from the 1/1000 appends
	// (expected ~0 at n=40, tolerate noise).
	if inversions > 3 {
		t.Fatalf("%d inversions; admission not mostly-LIFO", inversions)
	}
}

func TestWaitTimeoutExpires(t *testing.T) {
	var mu sync.Mutex
	c := NewFIFO(&mu)
	mu.Lock()
	start := time.Now()
	if c.WaitTimeout(30 * time.Millisecond) {
		t.Fatal("WaitTimeout reported a signal that never came")
	}
	mu.Unlock()
	if time.Since(start) < 25*time.Millisecond {
		t.Fatal("returned before the deadline")
	}
	if c.Len() != 0 {
		t.Fatal("timed-out waiter left on the queue")
	}
}

func TestWaitTimeoutSignaled(t *testing.T) {
	var mu sync.Mutex
	c := NewFIFO(&mu)
	go func() {
		time.Sleep(10 * time.Millisecond)
		c.Signal()
	}()
	mu.Lock()
	ok := c.WaitTimeout(5 * time.Second)
	mu.Unlock()
	if !ok {
		t.Fatal("missed the signal")
	}
}

func TestProducerConsumerWithMalthusianLock(t *testing.T) {
	// §6.7-style bounded queue: Malthusian mutex + two CR condvars.
	m := lock.NewMCSCR(lock.WithSeed(3))
	notEmpty := NewMostlyLIFO(m)
	notFull := NewMostlyLIFO(m)
	const capacity, items, producers = 16, 500, 4
	queue := 0
	var produced, consumed atomic.Int64
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < items; i++ {
				m.Lock()
				for queue == capacity {
					notFull.Wait()
				}
				queue++
				produced.Add(1)
				m.Unlock()
				notEmpty.Signal()
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for consumed.Load() < producers*items {
			m.Lock()
			for queue == 0 {
				notEmpty.Wait()
			}
			queue--
			consumed.Add(1)
			m.Unlock()
			notFull.Signal()
		}
	}()
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(60 * time.Second):
		t.Fatalf("stalled: produced=%d consumed=%d queue=%d",
			produced.Load(), consumed.Load(), queue)
	}
	if consumed.Load() != producers*items {
		t.Fatalf("consumed %d want %d", consumed.Load(), producers*items)
	}
}

func TestWaitContextCancel(t *testing.T) {
	var mu sync.Mutex
	c := NewFIFO(&mu)
	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() {
		mu.Lock()
		err := c.WaitContext(ctx)
		mu.Unlock() // L must be reacquired even on the error path
		errc <- err
	}()
	time.Sleep(20 * time.Millisecond)
	if c.Len() != 1 {
		t.Fatal("waiter not enqueued")
	}
	cancel()
	select {
	case err := <-errc:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("WaitContext = %v, want context.Canceled", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("WaitContext ignored cancellation")
	}
	if c.Len() != 0 {
		t.Fatal("cancelled waiter left on the queue")
	}
	// A later Signal must not be consumed by the departed waiter.
	c.Signal()
}

func TestWaitContextSignaled(t *testing.T) {
	m := lock.MustNew("mcscr-stp?seed=11") // works with registry locks too
	c := NewMostlyLIFO(m)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	go func() {
		time.Sleep(10 * time.Millisecond)
		c.Signal()
	}()
	m.Lock()
	err := c.WaitContext(ctx)
	m.Unlock()
	if err != nil {
		t.Fatalf("signaled WaitContext returned %v", err)
	}
}

// TestWaitContextCancelStress: many waiters, racing signals and
// cancellations; every waiter must return exactly once, signaled waiters
// with nil, and the queue must drain.
func TestWaitContextCancelStress(t *testing.T) {
	m := lock.MustNew("mcscr-stp?seed=13")
	c := NewMostlyLIFO(m)
	const waiters = 32
	ctx, cancel := context.WithCancel(context.Background())
	var signaled, cancelled atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			m.Lock()
			err := c.WaitContext(ctx)
			m.Unlock()
			if err != nil {
				cancelled.Add(1)
			} else {
				signaled.Add(1)
			}
		}()
	}
	for c.Len() < waiters {
		runtime.Gosched()
	}
	for i := 0; i < waiters/2; i++ {
		c.Signal()
	}
	cancel()
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(60 * time.Second):
		t.Fatalf("stalled: signaled=%d cancelled=%d len=%d",
			signaled.Load(), cancelled.Load(), c.Len())
	}
	if got := signaled.Load() + cancelled.Load(); got != waiters {
		t.Fatalf("%d waiters returned, want %d", got, waiters)
	}
	// At least the pre-cancel signals must have been consumed as signals
	// (a signal that raced the cancel may legitimately land either way
	// for post-cancel stragglers, but these were issued first).
	if signaled.Load() < waiters/2 {
		t.Fatalf("only %d signaled, want >= %d", signaled.Load(), waiters/2)
	}
	if c.Len() != 0 {
		t.Fatalf("queue retained %d waiters", c.Len())
	}
}
