// Package condvar implements a condition variable whose wait-queue
// admission order is a policy: strict FIFO (the conventional, "fair"
// discipline) or mostly-LIFO, which provides concurrency restriction.
//
// The paper (§6.10, §6.11) applies CR to condition variables by biasing
// where the wait operator enqueues the caller: "With probability 999/1000
// we prepend to the head, and 1 out of 1000 wait operations will append at
// the tail, providing eventual long-term fairness." Signal always dequeues
// from the head, so prepend-biased admission wakes the most recently
// arrived — warmest, most-likely-still-spinning — waiter, while the rare
// append bounds starvation of the eldest.
//
// The condition variable works with any sync.Locker, including the locks
// in package lock and sync.Mutex itself.
package condvar

import (
	"context"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/park"
	"repro/lock"
)

// AppendProbability values for the standard policies.
const (
	// FIFO appends every waiter at the tail: strict arrival order.
	FIFO = 1.0
	// MostlyLIFO appends 1 in 1000 waiters, prepending the rest: the
	// paper's CR policy.
	MostlyLIFO = 1.0 / 1000
	// LIFO always prepends; maximal restriction, no long-term fairness
	// (the discipline of Facebook folly's LifoSem, discussed in §6.11).
	LIFO = 0.0
)

type waiter struct {
	parker *park.Parker
	//lockcheck:guardedby condvar.Cond.mu
	next *waiter
	//lockcheck:guardedby condvar.Cond.mu
	prev *waiter
	// signaled is guarded by the owning Cond's internal lock.
	//
	//lockcheck:guardedby condvar.Cond.mu
	signaled bool
}

// Cond is a condition variable with a policy-controlled wait queue.
type Cond struct {
	// L is held by callers of Wait, as with sync.Cond.
	L sync.Locker

	// mu guards the wait list and trial. The zero-value TAS carries no
	// stats reference, so this internal latch is instrumentation-free:
	// enqueue/dequeue pay no striped-counter updates on the signal path.
	mu lock.TAS
	//lockcheck:guardedby mu
	head *waiter
	//lockcheck:guardedby mu
	tail *waiter
	//lockcheck:guardedby mu
	size       int
	appendProb float64
	//lockcheck:guardedby mu
	trial *core.Trial
}

// New returns a condition variable using the given lock and append
// probability (1 = FIFO, 0 = LIFO, 1/1000 = the paper's mostly-LIFO).
func New(l sync.Locker, appendProb float64, seed uint64) *Cond {
	return &Cond{L: l, appendProb: appendProb, trial: core.NewTrial(0, seed)}
}

// NewFIFO returns a strict-FIFO condition variable, the discipline of the
// paper's baseline runs ("unless otherwise stated, all condition variables
// used in this paper provide strict FIFO ordering").
func NewFIFO(l sync.Locker) *Cond { return New(l, FIFO, 0) }

// NewMostlyLIFO returns a CR condition variable with the paper's
// 1-in-1000 append policy.
func NewMostlyLIFO(l sync.Locker) *Cond { return New(l, MostlyLIFO, 0) }

// Wait atomically releases c.L and suspends the caller until Signal or
// Broadcast selects it, then reacquires c.L before returning. As with
// sync.Cond, callers must re-check their predicate in a loop.
//
//lockcheck:holds c.L
func (c *Cond) Wait() {
	w := &waiter{parker: park.NewParker()}
	c.enqueue(w)
	c.L.Unlock()
	for {
		w.parker.Park()
		c.mu.Lock()
		done := w.signaled
		c.mu.Unlock()
		if done {
			break
		}
		// Spurious permit; keep waiting.
	}
	c.L.Lock()
}

// WaitTimeout is Wait with a deadline. It reports whether the caller was
// signaled (true) or timed out (false). c.L is reacquired in either case.
//
//lockcheck:holds c.L
func (c *Cond) WaitTimeout(d time.Duration) bool {
	w := &waiter{parker: park.NewParker()}
	c.enqueue(w)
	c.L.Unlock()
	deadline := time.Now().Add(d)
	signaled := false
	for {
		remain := time.Until(deadline)
		if !w.parker.ParkTimeout(remain) {
			// Timed out: remove ourselves unless a signal raced in.
			c.mu.Lock()
			if w.signaled {
				signaled = true
			} else {
				c.unlink(w)
			}
			c.mu.Unlock()
			break
		}
		c.mu.Lock()
		done := w.signaled
		c.mu.Unlock()
		if done {
			signaled = true
			break
		}
	}
	c.L.Lock()
	return signaled
}

// WaitContext is Wait with cancellation: it returns nil when the caller
// was signaled and ctx.Err() when ctx ended first, unlinking the waiter
// so a later Signal is not consumed by a departed goroutine. As with
// Wait, c.L is reacquired unconditionally before returning — the caller
// still holds the lock on the error path and must release it. A signal
// that races the cancellation wins: WaitContext returns nil and the
// signal is consumed. An uncancellable ctx degenerates to Wait.
//
//lockcheck:holds c.L
func (c *Cond) WaitContext(ctx context.Context) error {
	if ctx.Done() == nil {
		c.Wait()
		return nil
	}
	if err := ctx.Err(); err != nil {
		// Fail fast without enqueuing or cycling c.L, matching the
		// ContextMutex contract (the caller keeps holding c.L).
		return err
	}
	w := &waiter{parker: park.NewParker()}
	c.enqueue(w)
	c.L.Unlock()
	var err error
	for {
		consumed := w.parker.ParkContext(ctx)
		c.mu.Lock()
		if w.signaled {
			c.mu.Unlock()
			break
		}
		if !consumed && ctx.Err() != nil {
			// Cancelled, and no signal raced in (we hold mu, so signaled
			// is authoritative): withdraw from the queue.
			c.unlink(w)
			c.mu.Unlock()
			err = ctx.Err()
			break
		}
		c.mu.Unlock()
		// Spurious permit; keep waiting.
	}
	c.L.Lock()
	return err
}

// Signal wakes the waiter at the head of the queue, if any. It may be
// called with or without holding c.L.
func (c *Cond) Signal() {
	c.mu.Lock()
	w := c.popHead()
	if w != nil {
		w.signaled = true
	}
	c.mu.Unlock()
	if w != nil {
		w.parker.Unpark()
	}
}

// Broadcast wakes every current waiter.
func (c *Cond) Broadcast() {
	c.mu.Lock()
	head := c.head
	for w := head; w != nil; w = w.next {
		w.signaled = true
	}
	c.head, c.tail, c.size = nil, nil, 0
	c.mu.Unlock()
	// The list was detached above while mu was held; no enqueue/unlink
	// can reach these nodes any more, so the lock-free walk is private.
	//lockcheck:ignore detached under mu; the walked list is no longer reachable from the Cond
	for w := head; w != nil; w = w.next {
		w.parker.Unpark()
	}
}

// Len reports the current number of waiters (racy; for monitoring).
func (c *Cond) Len() int {
	c.mu.Lock()
	n := c.size
	c.mu.Unlock()
	return n
}

func (c *Cond) enqueue(w *waiter) {
	c.mu.Lock()
	if c.head == nil {
		c.head, c.tail = w, w
	} else if c.trial.Prob(c.appendProb) {
		// Append at the tail: FIFO-style admission for this waiter.
		w.prev = c.tail
		c.tail.next = w
		c.tail = w
	} else {
		// Prepend at the head: LIFO-style admission (CR).
		w.next = c.head
		c.head.prev = w
		c.head = w
	}
	c.size++
	c.mu.Unlock()
}

//lockcheck:holds c.mu
func (c *Cond) popHead() *waiter {
	w := c.head
	if w == nil {
		return nil
	}
	c.head = w.next
	if c.head == nil {
		c.tail = nil
	} else {
		c.head.prev = nil
	}
	w.next, w.prev = nil, nil
	c.size--
	return w
}

// unlink removes w from the queue; w must be on it.
//
//lockcheck:holds c.mu
func (c *Cond) unlink(w *waiter) {
	if w.prev != nil {
		w.prev.next = w.next
	} else {
		c.head = w.next
	}
	if w.next != nil {
		w.next.prev = w.prev
	} else {
		c.tail = w.prev
	}
	w.next, w.prev = nil, nil
	c.size--
}
