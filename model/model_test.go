package model

import (
	"testing"
	"testing/quick"
)

func TestSaturationExample(t *testing.T) {
	// §1: CS 1µs, NCS 5µs → saturation (Amdahl peak) at 6 threads.
	p := Example()
	if got := p.Saturation(); got != 6 {
		t.Fatalf("Saturation=%d want 6", got)
	}
}

func TestThroughputGrowsToSaturation(t *testing.T) {
	p := Example()
	for n := 1; n < p.Saturation(); n++ {
		if p.Throughput(n+1) <= p.Throughput(n) {
			t.Fatalf("throughput not increasing at n=%d", n)
		}
	}
}

func TestCollapseBeyondSaturation(t *testing.T) {
	p := Example()
	sat := p.Saturation()
	if p.Throughput(sat+10) >= p.Throughput(sat) {
		t.Fatal("no collapse beyond saturation")
	}
	if p.ThroughputCR(sat+10) != p.ThroughputCR(sat) {
		t.Fatal("CR curve must plateau at saturation")
	}
}

func TestCRNeverWorse(t *testing.T) {
	// "Performance diode — only improves; never degrades."
	f := func(cs, ncs, k uint8, n uint8) bool {
		p := Params{
			CS:                float64(cs%20) + 1,
			NCS:               float64(ncs % 100),
			CollapsePerThread: float64(k%50) / 100,
		}
		threads := int(n%64) + 1
		return p.ThroughputCR(threads) >= p.Throughput(threads)-1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCRMatchesBelowSaturation(t *testing.T) {
	// §2: "when the thread count is less than saturation, CR ... does not
	// impact performance ... providing neither harm nor benefit."
	p := Example()
	for n := 1; n <= p.Saturation(); n++ {
		if p.Throughput(n) != p.ThroughputCR(n) {
			t.Fatalf("CR altered sub-saturation throughput at n=%d", n)
		}
	}
}

func TestPeakBelowSaturation(t *testing.T) {
	p := Example()
	p.PeakThreads = 4
	if p.Throughput(4) <= p.Throughput(3) {
		t.Fatal("growth should continue to the peak")
	}
	if p.Throughput(5) >= p.Throughput(4) {
		t.Fatal("collapse should start at the architectural peak, before saturation")
	}
}

func TestCurvesShape(t *testing.T) {
	p := Example()
	threads, without, with := p.Curves(64)
	if len(threads) != 64 || len(without) != 64 || len(with) != 64 {
		t.Fatal("wrong lengths")
	}
	// The gap at 64 threads should be large and in CR's favor.
	if with[63] < 2*without[63] {
		t.Fatalf("expected a wide CR gap at 64 threads: %v vs %v", with[63], without[63])
	}
}

func TestDegenerate(t *testing.T) {
	if (Params{}).Throughput(0) != 0 {
		t.Fatal("zero threads must yield zero throughput")
	}
	if (Params{CS: 0, NCS: 1}).Saturation() != 1 {
		t.Fatal("zero CS should saturate at 1")
	}
}
