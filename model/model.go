// Package model provides the closed-form idealized throughput model
// behind Figure 1 of "Malthusian Locks": aggregate throughput versus
// thread count for a lock-circulation workload, with and without
// concurrency restriction.
//
// The model follows §1/§2: below saturation, throughput grows with the
// number of circulating threads; at saturation (N* = 1 + NCS/CS under an
// ideal lock) the critical section is continuously occupied and
// throughput is dictated solely by the CS duration; beyond saturation,
// each surplus circulating thread competes for shared resources and
// inflates the effective CS duration, producing the concave
// scalability-collapse curve. CR clamps the circulating set at
// saturation, holding throughput at the plateau.
package model

// Params describes the idealized workload and machine.
type Params struct {
	CS  float64 // critical section duration (µs or cycles, any unit)
	NCS float64 // non-critical section duration (same unit)
	// CollapsePerThread is the fractional CS inflation contributed by
	// each circulating thread beyond saturation (resource competition:
	// LLC decay, pipeline sharing...). 0 disables collapse.
	CollapsePerThread float64
	// PeakThreads optionally caps the useful concurrency below
	// saturation ("the thread count for peak will always be less than or
	// equal to saturation"); 0 means peak == saturation.
	PeakThreads int
}

// Example returns the parameters of the paper's walk-through: a 1 µs CS
// and a 5 µs NCS, which saturate at 6 threads.
func Example() Params {
	return Params{CS: 1, NCS: 5, CollapsePerThread: 0.08}
}

// Saturation returns the minimum thread count at which the lock is held
// continuously: 1 + NCS/CS, the "Amdahl peak" of §1's example.
func (p Params) Saturation() int {
	if p.CS <= 0 {
		return 1
	}
	n := 1 + int(p.NCS/p.CS)
	if n < 1 {
		n = 1
	}
	return n
}

// Throughput returns iterations per time unit with n threads and no
// concurrency restriction.
func (p Params) Throughput(n int) float64 {
	if n <= 0 {
		return 0
	}
	sat := p.Saturation()
	if p.PeakThreads > 0 && sat > p.PeakThreads {
		sat = p.PeakThreads
	}
	if n <= sat {
		// Under-saturated: every thread circulates independently.
		return float64(n) / (p.CS + p.NCS)
	}
	// Beyond the peak, each surplus circulating thread inflates the
	// effective critical path via resource competition. At the pure
	// saturation point this is exactly 1/CS_eff, since
	// sat/(CS+NCS) = 1/CS when sat = 1 + NCS/CS.
	surplus := float64(n - sat)
	peak := float64(sat) / (p.CS + p.NCS)
	return peak / (1 + p.CollapsePerThread*surplus)
}

// ThroughputCR returns iterations per time unit with n threads under
// ideal concurrency restriction: the circulating set is clamped at
// saturation, so surplus threads impose no competition.
func (p Params) ThroughputCR(n int) float64 {
	sat := p.Saturation()
	if n > sat {
		n = sat
	}
	return p.Throughput(n)
}

// Curves evaluates both curves over 1..maxThreads; used to regenerate
// Figure 1.
func (p Params) Curves(maxThreads int) (threads []int, without, with []float64) {
	for n := 1; n <= maxThreads; n++ {
		threads = append(threads, n)
		without = append(without, p.Throughput(n))
		with = append(with, p.ThroughputCR(n))
	}
	return threads, without, with
}
