package store

import "testing"

// New is run at vet time by the speclit analyzer over every constant
// backend spec in the module; it must be total and deterministic.
func FuzzNew(f *testing.F) {
	f.Add("hashmap")
	f.Add("skiplist?seed=7&capacity=128")
	f.Add("rbtree?capacity=0")
	f.Add("skplist")
	f.Add("skiplist?seed=7&seed=8")
	f.Add("SKIPLIST")
	f.Add("hashmap?capacity=%31")
	f.Add("")
	f.Fuzz(func(t *testing.T, s string) {
		b1, err1 := New(s)
		b2, err2 := New(s)
		if (err1 == nil) != (err2 == nil) {
			t.Fatalf("New(%q) is nondeterministic: %v vs %v", s, err1, err2)
		}
		if err1 != nil {
			if b1 != nil {
				t.Fatalf("New(%q) returned both a backend and an error %v", s, err1)
			}
			return
		}
		if b1 == nil || b2 == nil {
			t.Fatalf("New(%q) succeeded with a nil backend", s)
		}
		// An accepted backend must actually store.
		b1.Put(1, 2)
		if v, ok := b1.Get(1); !ok || v != 2 {
			t.Fatalf("New(%q): Put/Get round-trip failed (%d, %v)", s, v, ok)
		}
	})
}
