package store

import (
	"strings"
	"testing"

	"repro/internal/hashmap"
	"repro/internal/skiplist"
)

// TestNames pins the canonical backend set: these are the names
// shard.Config.BackendSpec, shardbench -backend, and the docs rely on
// resolving.
func TestNames(t *testing.T) {
	want := []string{"hashmap", "rbtree", "skiplist"}
	got := Names()
	if len(got) != len(want) {
		t.Fatalf("Names() = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Names() = %v, want %v", got, want)
		}
	}
}

// TestRoundTrip: every canonical name must build and serve a basic
// put/get/delete; every Registration must carry a Summary (the -list
// consumer renders it).
func TestRoundTrip(t *testing.T) {
	for _, name := range Names() {
		t.Run(name, func(t *testing.T) {
			reg, ok := Lookup(name)
			if !ok {
				t.Fatalf("Lookup(%q) failed", name)
			}
			if reg.Summary == "" {
				t.Fatalf("registered backend %q has no Summary", name)
			}
			b, err := New(name)
			if err != nil {
				t.Fatalf("New(%q): %v", name, err)
			}
			if !b.Put(42, 1) {
				t.Fatal("Put of a fresh key reported existing")
			}
			if b.Put(42, 2) {
				t.Fatal("update reported new key")
			}
			if v, ok := b.Get(42); !ok || v != 2 {
				t.Fatalf("Get = %d,%v want 2,true", v, ok)
			}
			if b.Len() != 1 {
				t.Fatalf("Len = %d want 1", b.Len())
			}
			if !b.Delete(42) || b.Delete(42) {
				t.Fatal("Delete semantics wrong")
			}
		})
	}
}

// TestOrderedSet pins which backends serve the Ordered extension: order
// is the property shard.Scan is gated on.
func TestOrderedSet(t *testing.T) {
	for name, wantOrdered := range map[string]bool{
		"hashmap":  false,
		"skiplist": true,
		"rbtree":   true,
	} {
		b := MustNew(name)
		if _, ok := b.(Ordered); ok != wantOrdered {
			t.Errorf("%s: Ordered = %v, want %v", name, ok, wantOrdered)
		}
	}
}

func TestAliases(t *testing.T) {
	for alias, canonical := range map[string]string{
		"hash": "hashmap", "skip": "skiplist", "rb": "rbtree", "tree": "rbtree",
		"HASHMAP": "hashmap", " rbtree ": "rbtree", // case/space insensitive
	} {
		r, ok := Lookup(alias)
		if !ok {
			t.Fatalf("Lookup(%q) failed", alias)
		}
		if r.Name != canonical {
			t.Fatalf("Lookup(%q).Name = %q, want %q", alias, r.Name, canonical)
		}
	}
}

// TestSpecParameters verifies spec parameters reach construction and
// override programmatic options, the same contract lock.New documents.
func TestSpecParameters(t *testing.T) {
	// capacity pre-sizes the hash table.
	hm := MustNew("hashmap?capacity=1000").(*hashmap.Plain)
	if hm.Slots() < 2000 {
		t.Fatalf("capacity=1000 pre-sized only %d slots", hm.Slots())
	}
	// Spec overrides the programmatic option.
	hm = MustNew("hashmap?capacity=1000", WithCapacity(1)).(*hashmap.Plain)
	if hm.Slots() < 2000 {
		t.Fatalf("spec capacity did not override option: %d slots", hm.Slots())
	}
	// The builders hand back the internal structures directly — no
	// wrapper layer to pay for on the per-probe path.
	if _, ok := MustNew("skiplist?seed=7").(*skiplist.Plain); !ok {
		t.Fatal("skiplist spec did not build *skiplist.Plain")
	}
}

func TestSpecErrors(t *testing.T) {
	for spec, wantSub := range map[string]string{
		"nosuch":                 "unknown backend",
		"":                       "unknown backend",
		"hashmap?bogus=1":        "unknown parameter",
		"hashmap?capacity=abc":   "bad value",
		"hashmap?capacity=-1":    "bad value",
		"skiplist?seed=x":        "bad value",
		"skiplist?seed=1&seed=2": "given 2 times",
		"rbtree?seed=%zz":        "malformed parameters",
	} {
		b, err := New(spec)
		if err == nil {
			t.Errorf("New(%q) accepted a malformed spec (built %T)", spec, b)
			continue
		}
		if b != nil {
			t.Errorf("New(%q) returned non-nil Backend alongside error", spec)
		}
		if !strings.Contains(err.Error(), wantSub) {
			t.Errorf("New(%q) error %q does not mention %q", spec, err, wantSub)
		}
	}
	// The unknown-name error must list the known names (discoverability).
	_, err := New("nosuch")
	if !strings.Contains(err.Error(), "skiplist") {
		t.Fatalf("unknown-backend error does not enumerate known backends: %v", err)
	}
}

func TestMustNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustNew of a malformed spec did not panic")
		}
	}()
	//lockcheck:ignore exercising the MustNew panic path with a malformed spec
	MustNew("definitely-not-a-backend")
}

func TestRegisterCollisionPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate Register did not panic")
		}
	}()
	Register(Registration{Name: "hashmap", Build: func(...Option) Backend { return nil }})
}

func TestOptimisticReaderOptIn(t *testing.T) {
	// The opt-in surface is part of each backend's contract: hashmap's
	// slot arrays are atomically published, so it claims OptimisticReader;
	// the pointer-chasing ordered backends decline and keep the locked
	// path. A backend silently gaining or losing the interface changes
	// which read path its stripes serve, so pin it here.
	if _, ok := MustNew("hashmap").(OptimisticReader); !ok {
		t.Fatal("hashmap must implement OptimisticReader")
	}
	for _, name := range []string{"skiplist", "rbtree"} {
		if _, ok := MustNew(name).(OptimisticReader); ok {
			t.Fatalf("%s claims OptimisticReader but its traversal is not torn-read-safe", name)
		}
	}
}
