// Package store defines the pluggable table backends behind the sharded
// KV store's stripes, mirroring the lock registry's design: each backend
// self-registers from its own file's init, and consumers select one with
// a spec string resolved by New — so the data-structure policy of a
// stripe is runtime configuration, exactly like its admission policy:
//
//	b, err := store.New("hashmap")
//	b, err := store.New("skiplist?seed=42")
//	b := store.MustNew("rbtree", store.WithCapacity(1024))
//
// Every backend implements Backend (point operations plus an unordered
// Range). Backends whose structure maintains key order additionally
// implement Ordered (Min, and Scan over an inclusive key range in
// ascending order); callers that need order assert for it:
//
//	if ob, ok := b.(Ordered); ok { ob.Scan(lo, hi, fn) }
//
// Backends are deliberately lean: the serving-path adapters carry no
// simulator instrumentation (no Touch callbacks, no virtual addresses —
// the hashmap.Plain precedent), and no internal locking. A backend is
// not safe for concurrent use; the caller's lock — in the sharded store,
// the stripe's registry-built lock — provides mutual exclusion. That
// split keeps both registries orthogonal: pick your lock, pick your
// backend.
package store

import "repro/internal/spec"

// Backend is one stripe's table: a uint64→uint64 map over the full key
// domain (key 0 included). Implementations are single-threaded by
// contract (see the package comment).
type Backend interface {
	// Get returns the value for key and whether it was present.
	Get(key uint64) (uint64, bool)
	// Put inserts or updates key. It reports whether the key was new.
	Put(key, val uint64) bool
	// Delete removes key; it reports whether the key was present.
	Delete(key uint64) bool
	// Len returns the number of keys present.
	Len() int
	// Range calls fn for every key/value pair until fn returns false, in
	// an unspecified order. The backend must not be mutated during the
	// walk.
	Range(fn func(key, val uint64) bool)
}

// Ordered is the extension implemented by backends that maintain key
// order (skiplist, rbtree). Order is what buys range queries: a hash
// table can answer Get but can never answer "the keys in [lo, hi]"
// without a full sweep.
type Ordered interface {
	Backend
	// Min returns the smallest key present, or ok=false when empty.
	Min() (key uint64, ok bool)
	// Scan calls fn for every pair with lo <= key <= hi, in ascending
	// key order, until fn returns false. Bounds are inclusive, so the
	// full domain is Scan(0, ^uint64(0), fn). The backend must not be
	// mutated during the walk.
	Scan(lo, hi uint64, fn func(key, val uint64) bool)
}

// OptimisticReader is the extension implemented by backends whose read
// path is torn-read-safe: safe to execute with no lock, concurrently
// with a mutator running under the stripe lock. Implementing it is how a
// backend opts into the sharded store's optimistic (seqlock-validated)
// read path; backends whose traversals cannot be made torn-read-safe
// cheaply (pointer-chasing trees rebalancing under writers) simply
// decline, and their stripes keep the locked path even when the map is
// configured optimistic.
//
// The contract is deliberately weak, because the seqlock supplies the
// correctness: GetOptimistic may return a stale value, miss a present
// key, or observe a mix of two versions when a mutator overlaps — but it
// must not race (all shared state it touches is accessed atomically),
// must not fault or loop unboundedly on any torn view, and any value it
// returns must be one the backend held for some key at some point. The
// shard layer only trusts a result after validating the stripe's version
// stamp, which proves no mutator overlapped and retroactively upgrades
// the weak read to a linearizable one.
type OptimisticReader interface {
	Backend
	// GetOptimistic is Get with no mutual-exclusion requirement: atomic
	// loads only, no locking, no blocking, bounded work.
	GetOptimistic(key uint64) (uint64, bool)
}

// config carries the construction parameters every backend understands.
// A backend reads what applies to it and ignores the rest (a capacity
// means nothing to a tree; a seed means nothing to a hash table) — the
// same contract the lock options follow.
type config struct {
	capacity int
	seed     uint64
}

// Option configures backend construction.
type Option func(*config)

// WithCapacity pre-sizes the backend for n keys, where pre-sizing is
// meaningful (the hash table's slot array). 0 means the minimum size.
func WithCapacity(n int) Option {
	return func(c *config) {
		if n > 0 {
			c.capacity = n
		}
	}
}

// WithSeed seeds the backend-local PRNG, where one exists (the skip
// list's tower-height generator), making structure deterministic for a
// given insert sequence. Zero keeps the fixed default seed.
func WithSeed(seed uint64) Option {
	return func(c *config) {
		if seed != 0 {
			c.seed = seed
		}
	}
}

// DefaultSeed is the backend PRNG seed when no option or spec parameter
// supplies one.
const DefaultSeed = 1

func resolve(opts []Option) config {
	cfg := config{seed: DefaultSeed}
	for _, o := range opts {
		o(&cfg)
	}
	return cfg
}

// Builder constructs a backend from construction options.
type Builder func(opts ...Option) Backend

// Registration describes one backend implementation to the registry;
// the machinery is the same generic internal/spec registry the lock
// family uses.
type Registration = spec.Registration[Builder]

var registry = spec.NewRegistry[Builder]("store", "backend")

// Register adds a backend implementation to the registry. It panics on
// an empty name, a nil builder, or a name/alias collision — registration
// is an init-time act and a collision is a programming error.
func Register(r Registration) {
	if r.Name == "" || r.Build == nil {
		panic("store: Register with empty name or nil builder")
	}
	registry.Register(r)
}

// Names returns the sorted canonical names of every registered backend.
func Names() []string { return registry.Names() }

// Lookup resolves a name or alias to its Registration.
func Lookup(name string) (Registration, bool) { return registry.Lookup(name) }

// New builds a backend from a spec string: a registered name, optionally
// followed by URL-style parameters:
//
//	"hashmap"
//	"skiplist?seed=42"
//	"rbtree"
//	"hashmap?capacity=4096"
//
// Parameters (each maps onto the corresponding Option):
//
//	capacity=N   pre-size for N keys                 WithCapacity
//	seed=N       backend-local PRNG seed             WithSeed
//
// Spec parameters are applied after opts, so the spec overrides
// programmatic defaults. Malformed specs — unknown name, unknown or
// duplicated parameter, bad value — return a descriptive error and a nil
// Backend.
func New(spec string, opts ...Option) (Backend, error) {
	reg, query, err := registry.Resolve(spec)
	if err != nil {
		return nil, err
	}
	specOpts, err := grammar.Parse(spec, query)
	if err != nil {
		return nil, err
	}
	if len(specOpts) > 0 {
		opts = append(append([]Option(nil), opts...), specOpts...)
	}
	return reg.Build(opts...), nil
}

// MustNew is New for tests, examples, and initialization paths where a
// malformed spec is a programming error; it panics instead of returning
// one.
func MustNew(spec string, opts ...Option) Backend {
	b, err := New(spec, opts...)
	if err != nil {
		panic(err)
	}
	return b
}

var grammar = spec.NewGrammar[Option]("store", map[string]spec.ParamFunc[Option]{
	"capacity": func(v string) (Option, error) {
		n, err := spec.NonNegInt(v)
		if err != nil {
			return nil, err
		}
		return WithCapacity(n), nil
	},
	"seed": func(v string) (Option, error) {
		n, err := spec.Uint(v)
		if err != nil {
			return nil, err
		}
		return WithSeed(n), nil
	},
})
