package store

import "repro/internal/skiplist"

// The skiplist backend is internal/skiplist.Plain: the lean (no Touch,
// no virtual addresses) variant of the simulator's memtable skip list.
// Tower heights come from a backend-local PRNG, so seed= makes the
// structure deterministic for a given insert sequence. It satisfies
// Ordered: level 0 is the whole map in ascending key order, so Scan is a
// findGE plus a linked-list walk.
func init() {
	Register(Registration{
		Name:    "skiplist",
		Aliases: []string{"skip"},
		Summary: "probabilistic skip list; ordered (Min/Scan), O(log n) point ops, cheap in-order walks",
		Build: func(opts ...Option) Backend {
			cfg := resolve(opts)
			return skiplist.NewPlain(cfg.seed)
		},
	})
}
