package store

import "repro/internal/rbtree"

// The rbtree backend is internal/rbtree.Plain: the lean (no Touch, no
// virtual addresses) variant of the left-leaning red-black tree the
// LRUCache workload models. It satisfies Ordered: Scan is a bounded
// in-order traversal. Balanced-tree worst cases are deterministic where
// the skip list's are probabilistic — the trade the two ordered backends
// exist to measure.
func init() {
	Register(Registration{
		Name:    "rbtree",
		Aliases: []string{"rb", "tree"},
		Summary: "left-leaning red-black tree; ordered (Min/Scan), deterministic O(log n) bounds",
		Build: func(opts ...Option) Backend {
			_ = resolve(opts) // capacity/seed mean nothing to a tree
			return rbtree.NewPlain()
		},
	})
}
