package store

import "repro/internal/hashmap"

// The hashmap backend is internal/hashmap.Plain unchanged: open
// addressing, linear probing, backward-shift deletion, full uint64 key
// domain. It already satisfies Backend directly — it was written as the
// serving-path table — so the registration is the whole adapter. It is
// the unordered baseline every ordered backend is priced against: O(1)
// point operations, no Scan. It is also the first OptimisticReader: its
// slot arrays are atomically published, so the sharded store's seqlock
// read path can probe it with no lock at all.
func init() {
	Register(Registration{
		Name:    "hashmap",
		Aliases: []string{"hash"},
		Summary: "open-addressing hash table (linear probe, backward-shift delete); fastest point ops, unordered",
		Build: func(opts ...Option) Backend {
			cfg := resolve(opts)
			return hashmap.NewPlain(cfg.capacity)
		},
	})
}
