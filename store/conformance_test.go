package store

import (
	"math/rand"
	"sort"
	"testing"
)

// invariantChecked is satisfied by backends that can self-verify their
// structural invariants (tree balance, tower subsequences, size counts).
type invariantChecked interface {
	CheckInvariants() bool
}

// conformanceKey draws keys from a mix of a small hot domain (so
// operations actually collide), a wide domain (so tree/tower shapes get
// exercised), and the domain extremes (key 0 is the hash table's
// out-of-band case; ^uint64(0) probes inclusive-bound handling).
func conformanceKey(rng *rand.Rand) uint64 {
	switch rng.Intn(10) {
	case 0:
		return 0
	case 1:
		return ^uint64(0) - uint64(rng.Intn(4))
	case 2, 3, 4:
		return rng.Uint64()
	default:
		return uint64(rng.Intn(512))
	}
}

// TestConformance runs every registered backend against a
// map[uint64]uint64 model under a randomized operation sequence: the
// differential half checks each backend agrees with the model op by op,
// and CheckInvariants (where available) verifies the structure itself.
// One suite, every backend — a new Register'd backend is conformance
// tested by existing.
func TestConformance(t *testing.T) {
	for _, name := range Names() {
		t.Run(name, func(t *testing.T) {
			b := MustNew(name, WithSeed(7), WithCapacity(64))
			ordered, _ := b.(Ordered)
			checked, _ := b.(invariantChecked)
			optimistic, _ := b.(OptimisticReader)
			model := make(map[uint64]uint64)
			rng := rand.New(rand.NewSource(42))

			for i := 0; i < 30000; i++ {
				key := conformanceKey(rng)
				switch rng.Intn(12) {
				case 0, 1, 2, 3: // Put
					val := rng.Uint64()
					_, had := model[key]
					if fresh := b.Put(key, val); fresh == had {
						t.Fatalf("op %d: Put(%d) fresh=%v but model had=%v", i, key, fresh, had)
					}
					model[key] = val
				case 4, 5, 6: // Get
					wantV, want := model[key]
					if v, ok := b.Get(key); ok != want || (ok && v != wantV) {
						t.Fatalf("op %d: Get(%d)=%d,%v want %d,%v", i, key, v, ok, wantV, want)
					}
					// With no concurrent mutator, the weak read must be
					// exact: staleness and tearing are only permitted when
					// a writer overlaps.
					if optimistic != nil {
						if v, ok := optimistic.GetOptimistic(key); ok != want || (ok && v != wantV) {
							t.Fatalf("op %d: GetOptimistic(%d)=%d,%v want %d,%v", i, key, v, ok, wantV, want)
						}
					}
				case 7, 8: // Delete
					_, had := model[key]
					if present := b.Delete(key); present != had {
						t.Fatalf("op %d: Delete(%d)=%v but model had=%v", i, key, present, had)
					}
					delete(model, key)
				case 9: // Len + Range (full differential sweep)
					if b.Len() != len(model) {
						t.Fatalf("op %d: Len=%d model=%d", i, b.Len(), len(model))
					}
					if rng.Intn(50) != 0 {
						continue // full sweeps are O(n); sample them
					}
					seen := make(map[uint64]uint64, len(model))
					b.Range(func(k, v uint64) bool {
						if _, dup := seen[k]; dup {
							t.Fatalf("op %d: Range yielded key %d twice", i, k)
						}
						seen[k] = v
						return true
					})
					if len(seen) != len(model) {
						t.Fatalf("op %d: Range yielded %d pairs, model has %d", i, len(seen), len(model))
					}
					for k, v := range model {
						if seen[k] != v {
							t.Fatalf("op %d: Range yielded %d=%d, model %d", i, k, seen[k], v)
						}
					}
				case 10: // ordered reads
					if ordered == nil {
						continue
					}
					// Min against the model's minimum.
					var wantMin uint64
					wantOK := false
					for k := range model {
						if !wantOK || k < wantMin {
							wantMin, wantOK = k, true
						}
					}
					if k, ok := ordered.Min(); ok != wantOK || (ok && k != wantMin) {
						t.Fatalf("op %d: Min=%d,%v want %d,%v", i, k, ok, wantMin, wantOK)
					}
					// Scan over a random inclusive range (occasionally the
					// full domain) against the model's sorted keys.
					lo, hi := rng.Uint64(), rng.Uint64()
					if lo > hi {
						lo, hi = hi, lo
					}
					if rng.Intn(4) == 0 {
						lo, hi = 0, ^uint64(0)
					}
					var want []uint64
					for k := range model {
						if lo <= k && k <= hi {
							want = append(want, k)
						}
					}
					sort.Slice(want, func(a, b int) bool { return want[a] < want[b] })
					var got []uint64
					ordered.Scan(lo, hi, func(k, v uint64) bool {
						if v != model[k] {
							t.Fatalf("op %d: Scan yielded %d=%d, model %d", i, k, v, model[k])
						}
						got = append(got, k)
						return true
					})
					if len(got) != len(want) {
						t.Fatalf("op %d: Scan[%d,%d] yielded %d keys, model %d", i, lo, hi, len(got), len(want))
					}
					for j := range want {
						if got[j] != want[j] {
							t.Fatalf("op %d: Scan order diverges at %d: got %d want %d", i, j, got[j], want[j])
						}
					}
				case 11: // Range/Scan early stop must actually stop
					if b.Len() == 0 {
						continue
					}
					n := 0
					b.Range(func(_, _ uint64) bool { n++; return n < 3 })
					if max := 3; n > max {
						t.Fatalf("op %d: Range visited %d pairs after early stop", i, n)
					}
					if ordered != nil {
						n = 0
						ordered.Scan(0, ^uint64(0), func(_, _ uint64) bool { n++; return false })
						if n > 1 {
							t.Fatalf("op %d: Scan visited %d pairs after immediate stop", i, n)
						}
					}
				}
				if checked != nil && i%1024 == 0 {
					if !checked.CheckInvariants() {
						t.Fatalf("op %d: CheckInvariants failed", i)
					}
				}
			}
			if checked != nil && !checked.CheckInvariants() {
				t.Fatal("final CheckInvariants failed")
			}
			// Final full differential: the backend and the model hold the
			// same map.
			if b.Len() != len(model) {
				t.Fatalf("final Len=%d model=%d", b.Len(), len(model))
			}
			b.Range(func(k, v uint64) bool {
				if mv, ok := model[k]; !ok || mv != v {
					t.Fatalf("final state diverges at key %d: backend %d, model %d,%v", k, v, mv, ok)
				}
				return true
			})
		})
	}
}
