package optimistic

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestParseReadPath(t *testing.T) {
	cases := []struct {
		spec string
		want ReadPath
	}{
		{"", ReadPath{}},
		{"locked", ReadPath{}},
		{" Locked ", ReadPath{}},
		{"optimistic", ReadPath{Optimistic: true, Retries: DefaultRetries}},
		{"seqlock", ReadPath{Optimistic: true, Retries: DefaultRetries}},
		{"optimistic?retries=3", ReadPath{Optimistic: true, Retries: 3}},
	}
	for _, c := range cases {
		got, err := Parse(c.spec)
		if err != nil {
			t.Fatalf("Parse(%q): %v", c.spec, err)
		}
		if got != c.want {
			t.Fatalf("Parse(%q) = %+v, want %+v", c.spec, got, c.want)
		}
		// Canonical strings round-trip.
		back, err := Parse(got.String())
		if err != nil || back != got {
			t.Fatalf("Parse(%q.String()=%q) = %+v, %v", c.spec, got.String(), back, err)
		}
	}
}

func TestParseReadPathErrors(t *testing.T) {
	for _, spec := range []string{
		"turbo",
		"locked?retries=3",
		"optimistic?retries=0",
		"optimistic?retries=x",
		"optimistic?bogus=1",
		"optimistic?retries=1&retries=2",
	} {
		if _, err := Parse(spec); err == nil {
			t.Fatalf("Parse(%q): want error, got nil", spec)
		}
	}
}

func TestSeqProtocol(t *testing.T) {
	var s Seq
	stamp, ok := s.ReadBegin()
	if !ok || stamp != 0 {
		t.Fatalf("zero Seq ReadBegin = %d, %v; want 0, true", stamp, ok)
	}
	if !s.Validate(stamp) {
		t.Fatal("unmodified Seq must validate")
	}

	s.WriteBegin()
	if _, ok := s.ReadBegin(); ok {
		t.Fatal("ReadBegin during a write section must report unstable")
	}
	if s.Validate(stamp) {
		t.Fatal("stamp from before a write section must not validate")
	}
	s.WriteEnd()

	stamp2, ok := s.ReadBegin()
	if !ok {
		t.Fatal("Seq must be stable after WriteEnd")
	}
	if stamp2 == stamp {
		t.Fatal("a completed write section must move the stamp")
	}
	// A writer that begins and ends entirely inside the reader's window
	// still fails validation: equality, not evenness.
	s.WriteBegin()
	s.WriteEnd()
	if s.Validate(stamp2) {
		t.Fatal("stamp must not validate across a complete write section")
	}
}

func TestSeqPoison(t *testing.T) {
	var s Seq
	s.WriteBegin()
	s.WriteEnd()
	stamp, _ := s.ReadBegin()
	s.Poison()
	if s.Validate(stamp) {
		t.Fatal("poisoned Seq validated a pre-poison stamp")
	}
	if _, ok := s.ReadBegin(); ok {
		t.Fatal("poisoned Seq must read as unstable forever")
	}
	if got := s.Stamp(); got&1 == 0 {
		t.Fatalf("poisoned stamp %#x is even", got)
	}
}

func TestEpochDeferredRetirement(t *testing.T) {
	e := NewEpoch()
	var ran atomic.Bool

	h := e.Pin()
	e.Retire(func() { ran.Store(true) })
	// A pinned reader from the retiree's phase blocks collection no
	// matter how many advances are attempted.
	for i := 0; i < 10; i++ {
		e.TryAdvance()
		if ran.Load() {
			t.Fatal("callback ran while a same-phase reader was pinned")
		}
	}
	if st := e.Stats(); st.Pinned != 1 || st.Pending != 1 {
		t.Fatalf("stats with one pinned, one pending = %+v", st)
	}

	h.Unpin()
	for i := 0; i < 4 && !ran.Load(); i++ {
		e.TryAdvance()
	}
	if !ran.Load() {
		t.Fatal("callback did not run after unpin + advances")
	}
	st := e.Stats()
	if st.Pinned != 0 || st.Retired != 1 || st.Collected != 1 || st.Pending != 0 {
		t.Fatalf("post-collection stats = %+v", st)
	}
}

func TestEpochLateReaderDoesNotBlockOlderRetirees(t *testing.T) {
	e := NewEpoch()
	var ran atomic.Bool
	e.Retire(func() { ran.Store(true) })
	e.TryAdvance() // ages the retiree's phase out
	_ = e.Pin()    // new reader, pinned after the flip
	// The new reader pinned after the retiree was unlinked, so it must
	// not block collection forever.
	for i := 0; i < 4 && !ran.Load(); i++ {
		e.TryAdvance()
	}
	if !ran.Load() {
		t.Fatal("a reader pinned after the flip blocked an older retiree")
	}
}

func TestEpochStress(t *testing.T) {
	e := NewEpoch()
	stop := make(chan struct{})
	var wg sync.WaitGroup

	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				h := e.Pin()
				runtime.Gosched()
				h.Unpin()
			}
		}()
	}

	var want, got atomic.Uint64
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			want.Add(1)
			e.Retire(func() { got.Add(1) })
			e.TryAdvance()
		}
	}()

	time.Sleep(100 * time.Millisecond)
	close(stop)
	wg.Wait()

	// Drain: with no readers left, two advances collect everything.
	e.TryAdvance()
	e.TryAdvance()
	st := e.Stats()
	if st.Pinned != 0 {
		t.Fatalf("pinned = %d after all readers exited", st.Pinned)
	}
	if got.Load() != want.Load() || st.Pending != 0 {
		t.Fatalf("collected %d of %d retirees (stats %+v)", got.Load(), want.Load(), st)
	}
	if st.Advances == 0 {
		t.Fatal("no advances completed under stress")
	}
}
