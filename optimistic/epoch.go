package optimistic

import (
	"runtime"
	"sync"
	"sync/atomic"
	"unsafe"
)

// Epoch is a minimal grace-period mechanism for lock-free readers: a
// two-phase epoch with striped per-P pin counters and deferred
// retirement callbacks.
//
// Readers bracket each lock-free traversal with Pin/Unpin. Writers (in
// practice, Reconfigure retiring a stripe descriptor) hand replaced
// structures to Retire after unlinking them; the callback runs only
// after a full grace period — once every reader that was pinned when the
// structure was still reachable has unpinned. TryAdvance is the
// collector step; it is cheap and safe to call from any control-plane
// path (Reconfigure itself, the metrics sampler).
//
// The design is the classic two-phase flip-flop. The global phase is a
// bit; Pin counts the reader into the striped counter of the phase it
// observed, Unpin counts it back out of that same counter. Retire
// enqueues the callback under the current phase. TryAdvance may flip the
// phase only when the *previous* phase's counters have drained to zero —
// at that point every reader that pinned before the previous flip is
// gone, so the callbacks enqueued before that flip are unreachable and
// run. A reader that loads the phase and is then descheduled before
// incrementing can count itself into the "old" phase, but that is
// harmless: it only delays the next flip, and the structures it can
// reach were all unlinked after it started.
//
// In Go the garbage collector is the actual reclaimer — a pinned reader
// holding a pointer keeps the memory alive regardless. What the epoch
// buys is the *grace-period event*: the moment it is sound to count a
// descriptor as dead, to reuse an identity, or (in a non-GC port of this
// design) to free the memory. It also makes reader residency observable:
// Stats exposes pinned/retired/collected, which the server's /metrics
// exports.
type Epoch struct {
	phase atomic.Uint32
	slots []epochSlot
	mask  uint32

	// mu guards the retirement lists and the advance step. Control
	// plane only — readers never touch it.
	mu      sync.Mutex
	pending [2][]func()

	retired   atomic.Uint64
	collected atomic.Uint64
	advances  atomic.Uint64
}

// epochSlotBytes pads each slot to two cache lines (matching the
// module-wide stripe padding) so pinning readers on different processors
// do not share a line.
const epochSlotBytes = 128

// epochSlot holds one stripe's pair of phase counters on its own lines.
//
//lockcheck:line=2
type epochSlot struct {
	c [2]atomic.Int64
	_ [epochSlotBytes - 16]byte
}

// NewEpoch returns an epoch with pin counters striped to the host's true
// parallelism — min(GOMAXPROCS, NumCPU) rounded up to a power of two,
// the same sizing rule as the lock stats stripes.
func NewEpoch() *Epoch {
	n := runtime.GOMAXPROCS(0)
	if c := runtime.NumCPU(); c < n {
		n = c
	}
	p := 1
	for p < n {
		p <<= 1
	}
	return &Epoch{slots: make([]epochSlot, p), mask: uint32(p - 1)}
}

// Handle is a pinned reader's receipt: the slot and phase Pin counted it
// into, so Unpin decrements exactly the counter that was incremented
// even if the phase flips in between.
type Handle struct {
	slot  *epochSlot
	phase uint32
}

// slotFor picks the caller's slot by the same per-goroutine stack-address
// hash the striped lock stats use: no TLS, no atomics, stability only
// affects spreading, never correctness.
//
//lockcheck:optimistic
func (e *Epoch) slotFor() *epochSlot {
	if e.mask == 0 {
		return &e.slots[0]
	}
	var probe byte
	h := uint32(uintptr(unsafe.Pointer(&probe))>>10) * 0x9E3779B1
	return &e.slots[(h>>16)&e.mask]
}

// Pin enters a read-side critical section: structures reachable now will
// not be counted as collected until the matching Unpin. Wait-free — two
// atomic operations, no branches on other readers.
//
//lockcheck:optimistic
func (e *Epoch) Pin() Handle {
	p := e.phase.Load() & 1
	s := e.slotFor()
	s.c[p].Add(1)
	return Handle{slot: s, phase: p}
}

// Unpin leaves the read-side critical section opened by Pin.
//
//lockcheck:optimistic
func (h Handle) Unpin() {
	h.slot.c[h.phase].Add(-1)
}

// Retire enqueues fn to run after a full grace period: once every reader
// pinned at the time of this call has unpinned. The caller must have
// already unlinked the structure (new readers must not be able to reach
// it) — Retire defers the *callback*, not the unlinking.
func (e *Epoch) Retire(fn func()) {
	e.mu.Lock()
	e.pending[e.phase.Load()&1] = append(e.pending[e.phase.Load()&1], fn)
	e.retired.Add(1)
	e.mu.Unlock()
}

// TryAdvance attempts one collector step: if every reader from the
// previous phase has unpinned, it runs the callbacks that phase had
// pending and flips the global phase, starting the clock on the current
// phase's retirees. It returns whether the phase advanced. Callbacks run
// while holding the epoch's control-plane lock, so they must be brief
// and must not call back into the epoch.
//
// A Retire is collected after at most two successful advances: one to
// age its phase out, one to drain it.
func (e *Epoch) TryAdvance() bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	cur := e.phase.Load() & 1
	prev := 1 - cur
	var residents int64
	for i := range e.slots {
		residents += e.slots[i].c[prev].Load()
	}
	if residents != 0 {
		return false
	}
	for _, fn := range e.pending[prev] {
		fn()
		e.collected.Add(1)
	}
	e.pending[prev] = nil
	e.phase.Store(prev)
	e.advances.Add(1)
	return true
}

// EpochStats is a point-in-time summary of an Epoch.
type EpochStats struct {
	// Pinned is the number of readers currently inside Pin/Unpin.
	// Momentarily negative per-slot counts (a reader that unpinned on a
	// different slot phase) cannot happen — Unpin uses the Handle — but
	// the sum races with in-flight pins and is a gauge, not an invariant.
	Pinned int64
	// Retired counts callbacks handed to Retire since creation.
	Retired uint64
	// Collected counts callbacks that completed a grace period and ran.
	Collected uint64
	// Pending is Retired - Collected: callbacks still awaiting grace.
	Pending uint64
	// Advances counts successful phase flips.
	Advances uint64
}

// Stats reads the epoch's counters.
func (e *Epoch) Stats() EpochStats {
	var pinned int64
	for i := range e.slots {
		pinned += e.slots[i].c[0].Load() + e.slots[i].c[1].Load()
	}
	r, c := e.retired.Load(), e.collected.Load()
	return EpochStats{
		Pinned:    pinned,
		Retired:   r,
		Collected: c,
		Pending:   r - c,
		Advances:  e.advances.Load(),
	}
}
