// Package optimistic is the substrate for the sharded store's wait-free
// read path: Gets that never take the stripe lock.
//
// Malthusian Locks is a story about writers — culling and passivating the
// excess threads fighting over a lock so the survivors run at cache
// speed. Readers do not need to be in that fight at all. This package
// provides the three mechanisms that let them leave it:
//
//   - Seq, a per-stripe seqlock stamp. The write path (which already
//     holds the stripe lock) brackets every table mutation with
//     WriteBegin/WriteEnd, moving the stamp odd→even. A reader snapshots
//     the stamp, reads the table with no lock, and revalidates: an
//     unchanged even stamp proves no writer overlapped, so the read is
//     linearizable at any point inside the window.
//
//   - Epoch, a minimal grace-period mechanism (per-P pin slots, deferred
//     retirement). Readers pin the epoch around lock-free traversals;
//     writers and Reconfigure retire replaced structures through it, so
//     retirement callbacks run only after every reader that could have
//     observed the old structure has unpinned. Go's garbage collector
//     already guarantees the memory itself stays valid — the epoch
//     supplies the ordering, the observability, and the discipline a
//     non-GC port would need.
//
//   - ReadPath, the spec grammar ("locked", "optimistic?retries=8")
//     consumers use to select the read path, in the same URL-parameter
//     style as the lock/store/policy/fault registries.
//
// Validation failures are bounded: after Retries failed attempts the
// reader falls back to the stripe lock, so a write storm degrades reads
// to exactly the pre-optimistic behavior instead of livelocking them.
package optimistic

import (
	"fmt"
	"strings"

	"repro/internal/spec"
)

// DefaultRetries is the optimistic read path's default validation-retry
// budget before a reader falls back to the stripe lock. Eight attempts
// rides out a burst of short writer critical sections; anything still
// failing after eight is a write storm the locked path handles better
// (it parks instead of burning cycles).
const DefaultRetries = 8

// ReadPath is a parsed read-path spec: how a shard.Map serves Gets.
// The zero value is the locked path.
type ReadPath struct {
	// Optimistic selects seqlock-validated lock-free Gets on backends
	// that support them (store.OptimisticReader), with per-stripe
	// fallback to the lock. False is the classic locked read path.
	Optimistic bool
	// Retries is the per-Get validation retry budget before falling
	// back to the stripe lock. Meaningful only when Optimistic.
	Retries int
}

// String renders the canonical spec ("locked", "optimistic",
// "optimistic?retries=4"). Parse(String()) round-trips.
func (rp ReadPath) String() string {
	if !rp.Optimistic {
		return "locked"
	}
	if rp.Retries == DefaultRetries {
		return "optimistic"
	}
	return fmt.Sprintf("optimistic?retries=%d", rp.Retries)
}

// readGrammar parses the optimistic path's parameters. locked takes
// none, enforced in Parse.
var readGrammar = spec.NewGrammar[func(*ReadPath)]("optimistic", map[string]spec.ParamFunc[func(*ReadPath)]{
	"retries": func(v string) (func(*ReadPath), error) {
		n, err := spec.PosInt(v)
		if err != nil {
			return nil, err
		}
		return func(rp *ReadPath) { rp.Retries = n }, nil
	},
})

// Parse parses a read-path spec. The empty spec is the locked path, so
// zero-valued configs keep today's behavior. Recognized names:
//
//	locked                   every Get acquires the stripe lock
//	optimistic[?retries=N]   seqlock-validated lock-free Gets,
//	                         N failed validations fall back to the lock
func Parse(s string) (ReadPath, error) {
	name, query, _ := strings.Cut(s, "?")
	switch strings.ToLower(strings.TrimSpace(name)) {
	case "", "locked":
		if query != "" {
			return ReadPath{}, fmt.Errorf("optimistic: spec %q: the locked read path takes no parameters", s)
		}
		return ReadPath{}, nil
	case "optimistic", "seqlock":
		rp := ReadPath{Optimistic: true, Retries: DefaultRetries}
		opts, err := readGrammar.Parse(s, query)
		if err != nil {
			return ReadPath{}, err
		}
		for _, opt := range opts {
			opt(&rp)
		}
		return rp, nil
	default:
		return ReadPath{}, fmt.Errorf("optimistic: unknown read path %q in spec %q (known read paths: locked, optimistic)",
			strings.TrimSpace(name), s)
	}
}
