package optimistic

import "sync/atomic"

// Seq is a seqlock stamp: a version counter that is even while the
// guarded structure is stable and odd while a writer is inside its
// critical section. It does not replace the stripe lock — writers still
// serialize through it — it *publishes* the lock's critical sections so
// readers can detect whether one overlapped their lock-free read.
//
// Writer protocol (under the stripe lock, so WriteBegin/WriteEnd never
// race each other):
//
//	d.seq.WriteBegin()   // stamp even→odd: readers in flight will fail
//	mutate the table
//	d.seq.WriteEnd()     // stamp odd→even: new stable version
//
// Reader protocol (no lock):
//
//	stamp, ok := d.seq.ReadBegin()  // !ok: writer active, retry
//	read the table (torn-read-safe loads only)
//	if d.seq.Validate(stamp) { the read is linearizable }
//
// Validate compares for equality, not evenness: a writer that begins
// *and* ends inside the reader's window still moves the stamp by two, so
// the reader cannot be fooled by a fast writer.
//
// All operations are sequentially consistent atomics. That is what makes
// the protocol sound in Go's memory model: if a reader's data load
// observes any store from a writer's critical section, the WriteBegin
// that preceded that store in program order is ordered before the
// reader's Validate load in the single total order of SC operations, so
// Validate must see the moved stamp and fail. (A pure happens-before
// argument is not enough — the reader and writer never synchronize.)
//
// The zero Seq is valid and stable at stamp 0.
type Seq struct {
	v atomic.Uint64
}

// poisonBit marks a permanently-retired Seq. It is odd, so every
// in-flight and future validation against a poisoned Seq fails, and
// distinct from any live writer stamp, so retirement is not confused
// with a writer who will eventually call WriteEnd.
const poisonBit = 1 << 63

// WriteBegin opens a writer critical section: the stamp becomes odd.
// Callers must hold the stripe lock.
//
//lockcheck:cs
func (s *Seq) WriteBegin() {
	s.v.Add(1)
}

// WriteEnd closes a writer critical section: the stamp becomes the next
// even value. Callers must hold the stripe lock.
//
//lockcheck:cs
func (s *Seq) WriteEnd() {
	s.v.Add(1)
}

// ReadBegin snapshots the stamp for a lock-free read. ok is false when a
// writer is currently inside its critical section (odd stamp) — the
// caller should back off and retry rather than read state mid-mutation.
//
//lockcheck:optimistic
func (s *Seq) ReadBegin() (stamp uint64, ok bool) {
	stamp = s.v.Load()
	return stamp, stamp&1 == 0
}

// Validate reports whether the stamp is unchanged since ReadBegin: no
// writer critical section overlapped the reader's window, so everything
// loaded inside it is a consistent stable version.
//
//lockcheck:optimistic
func (s *Seq) Validate(stamp uint64) bool {
	return s.v.Load() == stamp
}

// Stamp returns the current stamp. Under the stripe lock it is always
// even (no writer can be mid-section), which is what lets ScanChunked
// certify that a stripe's data was unchanged between two locked visits:
// equal stamps ⇒ zero intervening write sections.
func (s *Seq) Stamp() uint64 {
	return s.v.Load()
}

// Poison permanently retires the Seq: the stamp becomes odd forever, so
// every reader still validating against this Seq — including one that
// snapshotted before the poison — fails and re-reads through the current
// descriptor. Reconfigure calls this on the outgoing descriptor, under
// its lock, *before* publishing the replacement: any reader that could
// still observe post-swap mutations through a stale descriptor is
// guaranteed to also observe the poison at Validate time.
func (s *Seq) Poison() {
	s.v.Or(poisonBit | 1)
}
