// Package semaphore implements a counting semaphore whose waiter admission
// order is a policy: strict FIFO, mostly-LIFO (concurrency restriction),
// or pure LIFO.
//
// §6.11 of the paper interposes on POSIX sem_wait/sem_post with "an
// explicit list of waiting threads ... equipped to allow the
// append-prepend probability P to be controlled", and contrasts the result
// with folly's LifoSem: "LifoSem uses an always-prepend policy for strict
// LIFO admission, whereas our approach allows mixed append-prepend
// ensuring long-term fairness, while still providing most of the
// performance benefits of LIFO admission."
//
// Release uses direct handoff: if a waiter exists the permit is conveyed
// to it without ever becoming visible in the count, so a barging Acquire
// cannot overtake a waiter that was just granted.
//
// Acquisition is context-aware, with the same contract as
// lock.ContextMutex: AcquireContext abandons the wait when ctx is done,
// an uncancellable context routes to the plain path, an already-done
// context fails fast, and a grant that races the cancellation wins — the
// waiter keeps the conveyed permit and AcquireContext returns nil, so the
// permit is never leaked and never re-posted behind a live waiter's back.
package semaphore

import (
	"context"
	"time"

	"repro/internal/core"
	"repro/internal/park"
	"repro/lock"
)

// Append probabilities for the standard policies (see package condvar).
const (
	FIFO       = 1.0
	MostlyLIFO = 1.0 / 1000
	LIFO       = 0.0
)

type waiter struct {
	parker *park.Parker
	//lockcheck:guardedby semaphore.Semaphore.mu
	next *waiter
	//lockcheck:guardedby semaphore.Semaphore.mu
	prev *waiter
	// granted is guarded by the owning Semaphore's internal lock.
	//
	//lockcheck:guardedby semaphore.Semaphore.mu
	granted bool
}

// Semaphore is a counting semaphore with policy-controlled admission.
type Semaphore struct {
	// mu guards the count and waiter list. The zero-value TAS carries no
	// stats reference, so the acquire/release paths pay no striped-counter
	// updates for the internal latch.
	mu lock.TAS
	//lockcheck:guardedby mu
	count int
	//lockcheck:guardedby mu
	head *waiter
	//lockcheck:guardedby mu
	tail *waiter
	//lockcheck:guardedby mu
	size       int
	appendProb float64
	//lockcheck:guardedby mu
	trial *core.Trial
	stats *core.Stats
}

// New returns a semaphore holding n initial permits with the given append
// probability.
func New(n int, appendProb float64, seed uint64) *Semaphore {
	if n < 0 {
		panic("semaphore: negative initial count")
	}
	return &Semaphore{
		count:      n,
		appendProb: appendProb,
		trial:      core.NewTrial(0, seed),
		stats:      core.NewStats(),
	}
}

// NewFIFO returns a strict-FIFO semaphore with n permits.
func NewFIFO(n int) *Semaphore { return New(n, FIFO, 0) }

// NewMostlyLIFO returns a CR semaphore with n permits and the paper's
// 1-in-1000 append policy.
func NewMostlyLIFO(n int) *Semaphore { return New(n, MostlyLIFO, 0) }

// Acquire obtains one permit, blocking until available.
//
//lockcheck:acquires s
func (s *Semaphore) Acquire() {
	s.acquire(nil) // a nil ctx cannot fail
}

// AcquireContext obtains one permit, abandoning the wait when ctx is
// cancelled or its deadline passes. It returns nil once a permit is held
// and ctx.Err() after an abandoned attempt.
//
// The grant-vs-abandon race is arbitrated under the internal latch, the
// same authority Release grants under: whichever of {grant, abandon}
// commits first wins, and a waiter that finds itself granted while
// cancelling keeps the permit and returns nil (grant-wins, exactly as
// lock.ContextMutex). The conveyed permit therefore can never leak: it is
// either consumed by the successful return or still queued on a live
// waiter. Exactly one Cancels event is counted per error return.
//
//lockcheck:acquires s
func (s *Semaphore) AcquireContext(ctx context.Context) error {
	if ctx == nil || ctx.Done() == nil {
		s.acquire(nil)
		return nil
	}
	if err := ctx.Err(); err != nil {
		// Fail-fast: an already-done context never joins the queue and
		// never consumes a permit.
		s.stats.Inc(core.EvCancels)
		return err
	}
	return s.acquire(ctx)
}

// AcquireFor obtains a permit within d and reports whether it did.
// d <= 0 degenerates to TryAcquire.
//
//lockcheck:acquires s
func (s *Semaphore) AcquireFor(d time.Duration) bool {
	if s.TryAcquire() {
		return true
	}
	if d <= 0 {
		return false
	}
	ctx, cancel := context.WithTimeout(context.Background(), d)
	defer cancel()
	return s.AcquireContext(ctx) == nil
}

// AcquireTimeout obtains a permit or gives up after d; it reports whether
// a permit was obtained. It is AcquireFor under its historical name.
//
//lockcheck:acquires s
func (s *Semaphore) AcquireTimeout(d time.Duration) bool { return s.AcquireFor(d) }

// acquire is the shared acquisition body; a nil ctx waits indefinitely
// and cannot fail, a non-nil ctx must be cancellable.
//
//lockcheck:acquires s
func (s *Semaphore) acquire(ctx context.Context) error {
	s.mu.Lock()
	if s.count > 0 && s.head == nil {
		s.count--
		s.mu.Unlock()
		s.stats.Inc2(core.EvFastPath, core.EvAcquires)
		return nil
	}
	w := &waiter{parker: park.NewParker()}
	s.enqueue(w)
	s.mu.Unlock()
	for {
		ok := w.parker.ParkContext(ctx)
		s.mu.Lock()
		if w.granted {
			// Grant-wins: even when ctx raced us here, the permit was
			// already conveyed to this waiter and we keep it.
			s.mu.Unlock()
			s.stats.Inc3(core.EvParks, core.EvSlowPath, core.EvAcquires)
			return nil
		}
		if !ok {
			// ctx is done and — under the same latch Release would need to
			// grant us — we are not granted: the abandon wins. Unlink so no
			// future Release can convey a permit to a departed waiter.
			s.unlink(w)
			s.mu.Unlock()
			s.stats.Inc2(core.EvParks, core.EvCancels)
			return ctx.Err()
		}
		s.mu.Unlock()
		// Spurious wakeup; park again.
	}
}

// TryAcquire obtains a permit only if one is immediately available and no
// waiter is queued ahead.
//
//lockcheck:acquires s
func (s *Semaphore) TryAcquire() bool {
	s.mu.Lock()
	ok := s.count > 0 && s.head == nil
	if ok {
		s.count--
	}
	s.mu.Unlock()
	if ok {
		s.stats.Inc2(core.EvFastPath, core.EvAcquires)
	}
	return ok
}

// Release returns one permit. If waiters exist, the permit is handed
// directly to the one at the head of the queue.
func (s *Semaphore) Release() {
	s.mu.Lock()
	w := s.popHead()
	if w != nil {
		w.granted = true
	} else {
		s.count++
	}
	s.mu.Unlock()
	if w != nil {
		w.parker.Unpark()
		s.stats.Inc2(core.EvHandoffs, core.EvUnparks)
	}
}

// NoStats disables event-counter maintenance — the analogue of
// lock.WithStats(false): the stats reference goes nil and every counter
// site reduces to one predicted branch. Call it before the semaphore is
// shared; it returns s for construction chaining
// (semaphore.NewFIFO(8).NoStats()). Stats then reports zeros.
func (s *Semaphore) NoStats() *Semaphore {
	s.stats = nil
	return s
}

// Stats returns a snapshot of the semaphore's event counters: Acquires
// (fast path = immediate permits, slow path = queued waits), Handoffs and
// Unparks from Release conveyances, Parks from queued waits, and Cancels —
// exactly one per AcquireContext error return.
func (s *Semaphore) Stats() core.Snapshot { return s.stats.Read() }

// Count reports the number of unclaimed permits (racy; for monitoring).
func (s *Semaphore) Count() int {
	s.mu.Lock()
	n := s.count
	s.mu.Unlock()
	return n
}

// Waiters reports the current queue length (racy; for monitoring).
func (s *Semaphore) Waiters() int {
	s.mu.Lock()
	n := s.size
	s.mu.Unlock()
	return n
}

//lockcheck:holds s.mu
func (s *Semaphore) enqueue(w *waiter) {
	if s.head == nil {
		s.head, s.tail = w, w
	} else if s.trial.Prob(s.appendProb) {
		w.prev = s.tail
		s.tail.next = w
		s.tail = w
	} else {
		w.next = s.head
		s.head.prev = w
		s.head = w
	}
	s.size++
}

//lockcheck:holds s.mu
func (s *Semaphore) popHead() *waiter {
	w := s.head
	if w == nil {
		return nil
	}
	s.head = w.next
	if s.head == nil {
		s.tail = nil
	} else {
		s.head.prev = nil
	}
	w.next, w.prev = nil, nil
	s.size--
	return w
}

//lockcheck:holds s.mu
func (s *Semaphore) unlink(w *waiter) {
	if w.prev != nil {
		w.prev.next = w.next
	} else {
		s.head = w.next
	}
	if w.next != nil {
		w.next.prev = w.prev
	} else {
		s.tail = w.prev
	}
	w.next, w.prev = nil, nil
	s.size--
}
