// Package semaphore implements a counting semaphore whose waiter admission
// order is a policy: strict FIFO, mostly-LIFO (concurrency restriction),
// or pure LIFO.
//
// §6.11 of the paper interposes on POSIX sem_wait/sem_post with "an
// explicit list of waiting threads ... equipped to allow the
// append-prepend probability P to be controlled", and contrasts the result
// with folly's LifoSem: "LifoSem uses an always-prepend policy for strict
// LIFO admission, whereas our approach allows mixed append-prepend
// ensuring long-term fairness, while still providing most of the
// performance benefits of LIFO admission."
//
// Release uses direct handoff: if a waiter exists the permit is conveyed
// to it without ever becoming visible in the count, so a barging Acquire
// cannot overtake a waiter that was just granted.
package semaphore

import (
	"time"

	"repro/internal/core"
	"repro/internal/park"
	"repro/lock"
)

// Append probabilities for the standard policies (see package condvar).
const (
	FIFO       = 1.0
	MostlyLIFO = 1.0 / 1000
	LIFO       = 0.0
)

type waiter struct {
	parker     *park.Parker
	next, prev *waiter
	granted    bool // guarded by the semaphore's internal lock
}

// Semaphore is a counting semaphore with policy-controlled admission.
type Semaphore struct {
	// mu guards the count and waiter list. The zero-value TAS carries no
	// stats reference, so the acquire/release paths pay no striped-counter
	// updates for the internal latch.
	mu         lock.TAS
	count      int
	head, tail *waiter
	size       int
	appendProb float64
	trial      *core.Trial
}

// New returns a semaphore holding n initial permits with the given append
// probability.
func New(n int, appendProb float64, seed uint64) *Semaphore {
	if n < 0 {
		panic("semaphore: negative initial count")
	}
	return &Semaphore{count: n, appendProb: appendProb, trial: core.NewTrial(0, seed)}
}

// NewFIFO returns a strict-FIFO semaphore with n permits.
func NewFIFO(n int) *Semaphore { return New(n, FIFO, 0) }

// NewMostlyLIFO returns a CR semaphore with n permits and the paper's
// 1-in-1000 append policy.
func NewMostlyLIFO(n int) *Semaphore { return New(n, MostlyLIFO, 0) }

// Acquire obtains one permit, blocking until available.
func (s *Semaphore) Acquire() {
	s.mu.Lock()
	if s.count > 0 && s.head == nil {
		s.count--
		s.mu.Unlock()
		return
	}
	w := &waiter{parker: park.NewParker()}
	s.enqueue(w)
	s.mu.Unlock()
	for {
		w.parker.Park()
		s.mu.Lock()
		done := w.granted
		s.mu.Unlock()
		if done {
			return
		}
	}
}

// TryAcquire obtains a permit only if one is immediately available and no
// waiter is queued ahead.
func (s *Semaphore) TryAcquire() bool {
	s.mu.Lock()
	ok := s.count > 0 && s.head == nil
	if ok {
		s.count--
	}
	s.mu.Unlock()
	return ok
}

// AcquireTimeout obtains a permit or gives up after d; it reports whether
// a permit was obtained.
func (s *Semaphore) AcquireTimeout(d time.Duration) bool {
	s.mu.Lock()
	if s.count > 0 && s.head == nil {
		s.count--
		s.mu.Unlock()
		return true
	}
	w := &waiter{parker: park.NewParker()}
	s.enqueue(w)
	s.mu.Unlock()
	deadline := time.Now().Add(d)
	for {
		if !w.parker.ParkTimeout(time.Until(deadline)) {
			s.mu.Lock()
			if w.granted {
				s.mu.Unlock()
				return true
			}
			s.unlink(w)
			s.mu.Unlock()
			return false
		}
		s.mu.Lock()
		done := w.granted
		s.mu.Unlock()
		if done {
			return true
		}
	}
}

// Release returns one permit. If waiters exist, the permit is handed
// directly to the one at the head of the queue.
func (s *Semaphore) Release() {
	s.mu.Lock()
	w := s.popHead()
	if w != nil {
		w.granted = true
	} else {
		s.count++
	}
	s.mu.Unlock()
	if w != nil {
		w.parker.Unpark()
	}
}

// Count reports the number of unclaimed permits (racy; for monitoring).
func (s *Semaphore) Count() int {
	s.mu.Lock()
	n := s.count
	s.mu.Unlock()
	return n
}

// Waiters reports the current queue length (racy; for monitoring).
func (s *Semaphore) Waiters() int {
	s.mu.Lock()
	n := s.size
	s.mu.Unlock()
	return n
}

func (s *Semaphore) enqueue(w *waiter) {
	if s.head == nil {
		s.head, s.tail = w, w
	} else if s.trial.Prob(s.appendProb) {
		w.prev = s.tail
		s.tail.next = w
		s.tail = w
	} else {
		w.next = s.head
		s.head.prev = w
		s.head = w
	}
	s.size++
}

func (s *Semaphore) popHead() *waiter {
	w := s.head
	if w == nil {
		return nil
	}
	s.head = w.next
	if s.head == nil {
		s.tail = nil
	} else {
		s.head.prev = nil
	}
	w.next, w.prev = nil, nil
	s.size--
	return w
}

func (s *Semaphore) unlink(w *waiter) {
	if w.prev != nil {
		w.prev.next = w.next
	} else {
		s.head = w.next
	}
	if w.next != nil {
		w.next.prev = w.prev
	} else {
		s.tail = w.prev
	}
	w.next, w.prev = nil, nil
	s.size--
}
