package semaphore

import (
	"context"
	"math/rand"
	"os"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestMain(m *testing.M) {
	if runtime.GOMAXPROCS(0) < 4 {
		runtime.GOMAXPROCS(4)
	}
	os.Exit(m.Run())
}

func TestAcquireReleaseSequential(t *testing.T) {
	s := NewFIFO(2)
	s.Acquire()
	s.Acquire()
	if s.TryAcquire() {
		t.Fatal("TryAcquire succeeded with zero permits")
	}
	s.Release()
	if !s.TryAcquire() {
		t.Fatal("TryAcquire failed with one permit")
	}
	s.Release()
	s.Release()
	if s.Count() != 2 {
		t.Fatalf("count=%d want 2", s.Count())
	}
}

func TestNegativeInitialPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New(-1) did not panic")
		}
	}()
	New(-1, FIFO, 0)
}

func TestBlockingAcquire(t *testing.T) {
	s := NewFIFO(0)
	done := make(chan struct{})
	go func() {
		s.Acquire()
		close(done)
	}()
	select {
	case <-done:
		t.Fatal("Acquire with zero permits did not block")
	case <-time.After(20 * time.Millisecond):
	}
	s.Release()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Release did not wake the waiter")
	}
}

func TestPermitConservation(t *testing.T) {
	// N goroutines hammer a K-permit semaphore; at most K may ever be
	// inside, and all permits return at the end.
	for name, p := range map[string]float64{"FIFO": FIFO, "MostlyLIFO": MostlyLIFO, "LIFO": LIFO} {
		t.Run(name, func(t *testing.T) {
			const permits, goroutines, iters = 3, 10, 300
			s := New(permits, p, 7)
			var inside, maxInside atomic.Int32
			var wg sync.WaitGroup
			for g := 0; g < goroutines; g++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for i := 0; i < iters; i++ {
						s.Acquire()
						v := inside.Add(1)
						for {
							m := maxInside.Load()
							if v <= m || maxInside.CompareAndSwap(m, v) {
								break
							}
						}
						inside.Add(-1)
						s.Release()
					}
				}()
			}
			done := make(chan struct{})
			go func() { wg.Wait(); close(done) }()
			select {
			case <-done:
			case <-time.After(60 * time.Second):
				t.Fatal("semaphore stalled (lost permit?)")
			}
			if maxInside.Load() > permits {
				t.Fatalf("%d goroutines inside a %d-permit semaphore", maxInside.Load(), permits)
			}
			if s.Count() != permits {
				t.Fatalf("permits leaked: count=%d want %d", s.Count(), permits)
			}
			if s.Waiters() != 0 {
				t.Fatalf("waiters left: %d", s.Waiters())
			}
		})
	}
}

func TestAcquireTimeout(t *testing.T) {
	s := NewFIFO(0)
	if s.AcquireTimeout(20 * time.Millisecond) {
		t.Fatal("acquired a permit that does not exist")
	}
	if s.Waiters() != 0 {
		t.Fatal("timed-out waiter left on queue")
	}
	s.Release()
	if !s.AcquireTimeout(20 * time.Millisecond) {
		t.Fatal("failed to acquire an available permit")
	}
	// Late release must reach a timed waiter.
	go func() {
		time.Sleep(10 * time.Millisecond)
		s.Release()
	}()
	if !s.AcquireTimeout(5 * time.Second) {
		t.Fatal("missed a permit released before the deadline")
	}
}

func TestDirectHandoffNoBarge(t *testing.T) {
	// With a waiter queued, TryAcquire must not steal the permit conveyed
	// by Release.
	s := NewFIFO(0)
	acquired := make(chan struct{})
	go func() {
		s.Acquire()
		close(acquired)
	}()
	for s.Waiters() == 0 {
		runtime.Gosched()
	}
	s.Release()
	if s.TryAcquire() {
		t.Fatal("TryAcquire stole a directly handed-off permit")
	}
	select {
	case <-acquired:
	case <-time.After(5 * time.Second):
		t.Fatal("handoff lost")
	}
}

func TestLIFOWakeOrder(t *testing.T) {
	s := New(0, LIFO, 1)
	const n = 5
	order := make(chan int, n)
	for i := 0; i < n; i++ {
		i := i
		go func() {
			s.Acquire()
			order <- i
		}()
		for s.Waiters() != i+1 {
			runtime.Gosched()
		}
	}
	for i := n - 1; i >= 0; i-- {
		s.Release()
		if got := <-order; got != i {
			t.Fatalf("LIFO release woke %d, want %d", got, i)
		}
	}
}

func TestFIFOWakeOrder(t *testing.T) {
	s := NewFIFO(0)
	const n = 5
	order := make(chan int, n)
	for i := 0; i < n; i++ {
		i := i
		go func() {
			s.Acquire()
			order <- i
		}()
		for s.Waiters() != i+1 {
			runtime.Gosched()
		}
	}
	for i := 0; i < n; i++ {
		s.Release()
		if got := <-order; got != i {
			t.Fatalf("FIFO release woke %d, want %d", got, i)
		}
	}
}

func TestAcquireContextFailFast(t *testing.T) {
	s := NewFIFO(1)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := s.AcquireContext(ctx); err != context.Canceled {
		t.Fatalf("AcquireContext(done)=%v want context.Canceled", err)
	}
	if s.Count() != 1 {
		t.Fatalf("fail-fast consumed a permit: count=%d", s.Count())
	}
	if s.Waiters() != 0 {
		t.Fatalf("fail-fast joined the queue: waiters=%d", s.Waiters())
	}
	if c := s.Stats().Cancels; c != 1 {
		t.Fatalf("Cancels=%d want 1", c)
	}
}

func TestAcquireContextUncancellable(t *testing.T) {
	s := NewFIFO(1)
	if err := s.AcquireContext(context.Background()); err != nil {
		t.Fatalf("AcquireContext(Background)=%v", err)
	}
	s.Release()
	if err := s.AcquireContext(nil); err != nil {
		t.Fatalf("AcquireContext(nil)=%v", err)
	}
	s.Release()
}

func TestAcquireContextCancelWhileWaiting(t *testing.T) {
	s := NewFIFO(0)
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if err := s.AcquireContext(ctx); err != context.DeadlineExceeded {
		t.Fatalf("AcquireContext on empty semaphore=%v want DeadlineExceeded", err)
	}
	if s.Waiters() != 0 {
		t.Fatalf("cancelled waiter left on queue: %d", s.Waiters())
	}
	// A Release after the abandonment must become a visible permit, not a
	// conveyance to the departed waiter.
	s.Release()
	if s.Count() != 1 {
		t.Fatalf("permit leaked to a cancelled waiter: count=%d", s.Count())
	}
	if !s.AcquireFor(time.Second) {
		t.Fatal("AcquireFor missed the available permit")
	}
}

func TestNoStats(t *testing.T) {
	s := NewFIFO(1).NoStats()
	s.Acquire()
	s.Release()
	if !s.AcquireFor(time.Second) {
		t.Fatal("AcquireFor failed with a permit available")
	}
	s.Release()
	if snap := s.Stats(); snap.Acquires != 0 {
		t.Fatalf("NoStats semaphore counted %d acquires", snap.Acquires)
	}
}

func TestAcquireForDegenerate(t *testing.T) {
	s := NewFIFO(1)
	if !s.AcquireFor(0) {
		t.Fatal("AcquireFor(0) failed with a permit available")
	}
	if s.AcquireFor(0) {
		t.Fatal("AcquireFor(0) acquired a permit that does not exist")
	}
	s.Release()
}

// TestCancelStormConservation is the grant-vs-abandon stress: goroutines
// hammer a small semaphore with short and already-expired deadlines while
// successful acquirers release. No permit may leak in either direction,
// and the Cancels counter must reconcile exactly with the observed error
// returns.
func TestCancelStormConservation(t *testing.T) {
	for name, p := range map[string]float64{"FIFO": FIFO, "MostlyLIFO": MostlyLIFO, "LIFO": LIFO} {
		t.Run(name, func(t *testing.T) {
			const permits, goroutines, iters = 2, 8, 400
			s := New(permits, p, 11)
			var succ, fail atomic.Int64
			var inside, maxInside atomic.Int32
			var wg sync.WaitGroup
			for g := 0; g < goroutines; g++ {
				wg.Add(1)
				go func(id int) {
					defer wg.Done()
					rng := rand.New(rand.NewSource(int64(id)))
					for i := 0; i < iters; i++ {
						var ctx context.Context
						cancel := context.CancelFunc(func() {})
						switch rng.Intn(3) {
						case 0: // already expired: deterministic fail-fast
							c, cfn := context.WithCancel(context.Background())
							cfn()
							ctx, cancel = c, func() {}
						case 1: // tight deadline: races the handoff
							ctx, cancel = context.WithTimeout(context.Background(), time.Duration(rng.Intn(200))*time.Microsecond)
						default: // generous deadline: normally succeeds
							ctx, cancel = context.WithTimeout(context.Background(), time.Second)
						}
						err := s.AcquireContext(ctx)
						cancel()
						if err != nil {
							fail.Add(1)
							continue
						}
						succ.Add(1)
						v := inside.Add(1)
						for {
							m := maxInside.Load()
							if v <= m || maxInside.CompareAndSwap(m, v) {
								break
							}
						}
						inside.Add(-1)
						s.Release()
					}
				}(g)
			}
			done := make(chan struct{})
			go func() { wg.Wait(); close(done) }()
			select {
			case <-done:
			case <-time.After(120 * time.Second):
				t.Fatal("cancel storm stalled (lost permit?)")
			}
			if maxInside.Load() > permits {
				t.Fatalf("%d goroutines inside a %d-permit semaphore", maxInside.Load(), permits)
			}
			if s.Count() != permits {
				t.Fatalf("permits leaked: count=%d want %d", s.Count(), permits)
			}
			if s.Waiters() != 0 {
				t.Fatalf("waiters left: %d", s.Waiters())
			}
			snap := s.Stats()
			if snap.Cancels != uint64(fail.Load()) {
				t.Fatalf("Cancels=%d but %d error returns", snap.Cancels, fail.Load())
			}
			if snap.Acquires != uint64(succ.Load()) {
				t.Fatalf("Acquires=%d but %d successful returns", snap.Acquires, succ.Load())
			}
		})
	}
}

// TestBufferPoolPattern exercises the §6.11 buffer-pool usage: a pool of
// K buffers guarded by a CR semaphore.
func TestBufferPoolPattern(t *testing.T) {
	const buffers, goroutines, iters = 5, 12, 200
	s := NewMostlyLIFO(buffers)
	var mu sync.Mutex
	pool := make([]int, buffers)
	for i := range pool {
		pool[i] = i
	}
	take := func() int {
		mu.Lock()
		defer mu.Unlock()
		b := pool[len(pool)-1]
		pool = pool[:len(pool)-1]
		return b
	}
	put := func(b int) {
		mu.Lock()
		defer mu.Unlock()
		pool = append(pool, b)
	}
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				s.Acquire()
				b := take()
				put(b)
				s.Release()
			}
		}()
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(60 * time.Second):
		t.Fatal("buffer pool stalled")
	}
	if len(pool) != buffers {
		t.Fatalf("buffers leaked: %d want %d", len(pool), buffers)
	}
}
