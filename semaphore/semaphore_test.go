package semaphore

import (
	"os"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestMain(m *testing.M) {
	if runtime.GOMAXPROCS(0) < 4 {
		runtime.GOMAXPROCS(4)
	}
	os.Exit(m.Run())
}

func TestAcquireReleaseSequential(t *testing.T) {
	s := NewFIFO(2)
	s.Acquire()
	s.Acquire()
	if s.TryAcquire() {
		t.Fatal("TryAcquire succeeded with zero permits")
	}
	s.Release()
	if !s.TryAcquire() {
		t.Fatal("TryAcquire failed with one permit")
	}
	s.Release()
	s.Release()
	if s.Count() != 2 {
		t.Fatalf("count=%d want 2", s.Count())
	}
}

func TestNegativeInitialPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New(-1) did not panic")
		}
	}()
	New(-1, FIFO, 0)
}

func TestBlockingAcquire(t *testing.T) {
	s := NewFIFO(0)
	done := make(chan struct{})
	go func() {
		s.Acquire()
		close(done)
	}()
	select {
	case <-done:
		t.Fatal("Acquire with zero permits did not block")
	case <-time.After(20 * time.Millisecond):
	}
	s.Release()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Release did not wake the waiter")
	}
}

func TestPermitConservation(t *testing.T) {
	// N goroutines hammer a K-permit semaphore; at most K may ever be
	// inside, and all permits return at the end.
	for name, p := range map[string]float64{"FIFO": FIFO, "MostlyLIFO": MostlyLIFO, "LIFO": LIFO} {
		t.Run(name, func(t *testing.T) {
			const permits, goroutines, iters = 3, 10, 300
			s := New(permits, p, 7)
			var inside, maxInside atomic.Int32
			var wg sync.WaitGroup
			for g := 0; g < goroutines; g++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for i := 0; i < iters; i++ {
						s.Acquire()
						v := inside.Add(1)
						for {
							m := maxInside.Load()
							if v <= m || maxInside.CompareAndSwap(m, v) {
								break
							}
						}
						inside.Add(-1)
						s.Release()
					}
				}()
			}
			done := make(chan struct{})
			go func() { wg.Wait(); close(done) }()
			select {
			case <-done:
			case <-time.After(60 * time.Second):
				t.Fatal("semaphore stalled (lost permit?)")
			}
			if maxInside.Load() > permits {
				t.Fatalf("%d goroutines inside a %d-permit semaphore", maxInside.Load(), permits)
			}
			if s.Count() != permits {
				t.Fatalf("permits leaked: count=%d want %d", s.Count(), permits)
			}
			if s.Waiters() != 0 {
				t.Fatalf("waiters left: %d", s.Waiters())
			}
		})
	}
}

func TestAcquireTimeout(t *testing.T) {
	s := NewFIFO(0)
	if s.AcquireTimeout(20 * time.Millisecond) {
		t.Fatal("acquired a permit that does not exist")
	}
	if s.Waiters() != 0 {
		t.Fatal("timed-out waiter left on queue")
	}
	s.Release()
	if !s.AcquireTimeout(20 * time.Millisecond) {
		t.Fatal("failed to acquire an available permit")
	}
	// Late release must reach a timed waiter.
	go func() {
		time.Sleep(10 * time.Millisecond)
		s.Release()
	}()
	if !s.AcquireTimeout(5 * time.Second) {
		t.Fatal("missed a permit released before the deadline")
	}
}

func TestDirectHandoffNoBarge(t *testing.T) {
	// With a waiter queued, TryAcquire must not steal the permit conveyed
	// by Release.
	s := NewFIFO(0)
	acquired := make(chan struct{})
	go func() {
		s.Acquire()
		close(acquired)
	}()
	for s.Waiters() == 0 {
		runtime.Gosched()
	}
	s.Release()
	if s.TryAcquire() {
		t.Fatal("TryAcquire stole a directly handed-off permit")
	}
	select {
	case <-acquired:
	case <-time.After(5 * time.Second):
		t.Fatal("handoff lost")
	}
}

func TestLIFOWakeOrder(t *testing.T) {
	s := New(0, LIFO, 1)
	const n = 5
	order := make(chan int, n)
	for i := 0; i < n; i++ {
		i := i
		go func() {
			s.Acquire()
			order <- i
		}()
		for s.Waiters() != i+1 {
			runtime.Gosched()
		}
	}
	for i := n - 1; i >= 0; i-- {
		s.Release()
		if got := <-order; got != i {
			t.Fatalf("LIFO release woke %d, want %d", got, i)
		}
	}
}

func TestFIFOWakeOrder(t *testing.T) {
	s := NewFIFO(0)
	const n = 5
	order := make(chan int, n)
	for i := 0; i < n; i++ {
		i := i
		go func() {
			s.Acquire()
			order <- i
		}()
		for s.Waiters() != i+1 {
			runtime.Gosched()
		}
	}
	for i := 0; i < n; i++ {
		s.Release()
		if got := <-order; got != i {
			t.Fatalf("FIFO release woke %d, want %d", got, i)
		}
	}
}

// TestBufferPoolPattern exercises the §6.11 buffer-pool usage: a pool of
// K buffers guarded by a CR semaphore.
func TestBufferPoolPattern(t *testing.T) {
	const buffers, goroutines, iters = 5, 12, 200
	s := NewMostlyLIFO(buffers)
	var mu sync.Mutex
	pool := make([]int, buffers)
	for i := range pool {
		pool[i] = i
	}
	take := func() int {
		mu.Lock()
		defer mu.Unlock()
		b := pool[len(pool)-1]
		pool = pool[:len(pool)-1]
		return b
	}
	put := func(b int) {
		mu.Lock()
		defer mu.Unlock()
		pool = append(pool, b)
	}
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				s.Acquire()
				b := take()
				put(b)
				s.Release()
			}
		}()
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(60 * time.Second):
		t.Fatal("buffer pool stalled")
	}
	if len(pool) != buffers {
		t.Fatalf("buffers leaked: %d want %d", len(pool), buffers)
	}
}
