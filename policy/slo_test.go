package policy

import (
	"testing"

	"repro/shard"
)

// sloSnap builds a scripted stripe snapshot carrying the cumulative
// deadline counters the slo policy reads.
func sloSnap(idx int, lockSpec string, attempts, misses uint64) shard.StripeSnapshot {
	return shard.StripeSnapshot{
		Index:            idx,
		LockSpec:         lockSpec,
		DeadlineAttempts: attempts,
		DeadlineMisses:   misses,
	}
}

// sloScript drives a policy with per-interval (attempts, misses) deltas
// against cumulative snapshots, returning the decisions.
type sloScript struct {
	p        Policy
	lockSpec string
	attempts uint64
	misses   uint64
	prev     shard.StripeSnapshot
}

func newSLOScript(p Policy, lockSpec string) *sloScript {
	return &sloScript{p: p, lockSpec: lockSpec, prev: sloSnap(0, lockSpec, 0, 0)}
}

func (s *sloScript) interval(dAttempts, dMisses uint64) (string, string, bool) {
	s.attempts += dAttempts
	s.misses += dMisses
	cur := sloSnap(0, s.lockSpec, s.attempts, s.misses)
	ls, bs, swap := s.p.Decide(s.prev, cur)
	s.prev = cur
	return ls, bs, swap
}

func TestSLOSpec(t *testing.T) {
	for _, good := range []string{
		"slo",
		"slo?target=0.1&fast=2&slow=8&min=4",
		"slo?hot=lifocr",
	} {
		if _, err := New(good); err != nil {
			t.Fatalf("New(%q): %v", good, err)
		}
	}
	for _, bad := range []string{
		"slo?target=1.5",
		"slo?fast=0",
		"slo?slow=x",
		"slo?min=-1",
		"slo?hot=no-such-lock",
	} {
		if _, err := New(bad); err == nil {
			t.Fatalf("New(%q) accepted", bad)
		}
	}
}

// TestSLODemotesWithinFastWindow: a storm on a fresh stripe must demote
// as soon as the fast window fills — the fast window is the reaction-
// time bound — and to the hot= lock spec, lock only.
func TestSLODemotesWithinFastWindow(t *testing.T) {
	s := newSLOScript(MustNew("slo?target=0.25&fast=3&slow=12&min=1"), "mcs-stp")
	for i := 0; i < 2; i++ {
		if _, _, swap := s.interval(100, 50); swap {
			t.Fatalf("demoted at interval %d, before the fast window filled", i)
		}
	}
	ls, bs, swap := s.interval(100, 50)
	if !swap || ls != DefaultHotLockSpec || bs != "" {
		t.Fatalf("interval 2: Decide = %q, %q, %v want %q, \"\", true", ls, bs, swap, DefaultHotLockSpec)
	}
}

// TestSLOFastWindowAloneDoesNotDemote: a stripe with a long calm history
// that spikes for a couple of intervals burns hot on the fast window
// only — the calm slow window vetoes the demotion until the storm
// proves itself against the whole retained history.
func TestSLOFastWindowAloneDoesNotDemote(t *testing.T) {
	s := newSLOScript(MustNew("slo?target=0.25&fast=3&slow=12&min=1"), "mcs-stp")
	for i := 0; i < 9; i++ {
		if _, _, swap := s.interval(100, 0); swap {
			t.Fatalf("demoted a calm stripe at interval %d", i)
		}
	}
	// Two storm intervals: the fast window's mean rate is 1/3 >= 0.25,
	// the slow window's (two 0.5 intervals among nine calm) is ~0.09 —
	// fast-only, no demote.
	for i := 0; i < 2; i++ {
		if ls, _, swap := s.interval(100, 50); swap {
			t.Fatalf("fast-window-only burn demoted (interval %d, %q)", i, ls)
		}
	}
	// A sustained storm eventually carries the slow window too.
	demoted := false
	for i := 0; i < 12 && !demoted; i++ {
		_, _, demoted = s.interval(100, 50)
	}
	if !demoted {
		t.Fatal("sustained storm never demoted")
	}
}

// TestSLOVolumeCliff: the windows weight intervals by time, not traffic.
// A collapse cuts a stripe's throughput along with its SLO, so a storm's
// few hundred attempts must not be buried under a calm history carrying
// thousands — the demotion lands a bounded number of storm intervals in,
// however lopsided the volumes.
func TestSLOVolumeCliff(t *testing.T) {
	s := newSLOScript(MustNew("slo?target=0.25&fast=3&slow=12&min=1"), "mcs-stp")
	// A full slow window of heavy, perfectly healthy traffic...
	for i := 0; i < 12; i++ {
		s.interval(100000, 0)
	}
	// ...then a collapse: ~10 attempts per interval, nearly all missed.
	// Pooled counters would need the calm million to roll out of the ring
	// before the slow window burned; with per-interval means the slow
	// window concedes once storm intervals are ~target·slow of the ring —
	// 0.9k/12 >= 0.25 at the fourth storm interval (index 3).
	demotedAt := -1
	for i := 0; i < 12 && demotedAt < 0; i++ {
		if _, _, swap := s.interval(10, 9); swap {
			demotedAt = i
		}
	}
	if demotedAt != 3 {
		t.Fatalf("volume cliff demoted at storm interval %d, want 3", demotedAt)
	}
}

// TestSLOReentryBandNoFlap: a demoted stripe whose miss rate sits inside
// the hysteresis band (above target/2, below target) must stay demoted —
// the band is sticky in both directions.
func TestSLOReentryBandNoFlap(t *testing.T) {
	s := newSLOScript(MustNew("slo?target=0.2&fast=3&slow=6&min=1"), "mcs-stp")
	s.interval(100, 50)
	s.interval(100, 50)
	if _, _, swap := s.interval(100, 50); !swap {
		t.Fatal("setup: storm did not demote")
	}
	s.lockSpec = DefaultHotLockSpec // the swap landed
	// Band intervals: rate 0.15, inside (0.1, 0.2) — no restore, ever.
	for i := 0; i < 30; i++ {
		if ls, _, swap := s.interval(100, 15); swap {
			t.Fatalf("swapped inside the re-entry band at interval %d (%q)", i, ls)
		}
	}
	// True calm drains the slow window and restores the original spec —
	// exactly once; the calm-filled ring must not re-demote after.
	restored := false
	for i := 0; i < 20; i++ {
		ls, _, swap := s.interval(100, 0)
		if swap && restored {
			t.Fatalf("second swap after restore at interval %d (%q)", i, ls)
		}
		if swap {
			if ls != "mcs-stp" {
				t.Fatalf("restore Decide = %q want original mcs-stp", ls)
			}
			restored = true
			s.lockSpec = "mcs-stp"
		}
	}
	if !restored {
		t.Fatal("sustained calm never restored")
	}
}

// TestSLOIdleIntervalsRetainEvidence: a lull with no deadline-bounded
// traffic must neither age out storm evidence nor manufacture calm.
func TestSLOIdleIntervalsRetainEvidence(t *testing.T) {
	s := newSLOScript(MustNew("slo?target=0.25&fast=3&slow=12&min=1"), "mcs-stp")
	// Two storm intervals (one short of the fast window)...
	s.interval(100, 50)
	s.interval(100, 50)
	// ...then a long idle lull: no decisions, no evidence decay.
	for i := 0; i < 10; i++ {
		if ls, _, swap := s.interval(0, 0); swap {
			t.Fatalf("swapped on an idle interval %d (%q)", i, ls)
		}
	}
	// The next storm interval completes the fast window and demotes.
	ls, _, swap := s.interval(100, 50)
	if !swap || ls != DefaultHotLockSpec {
		t.Fatalf("idle lull decayed storm evidence: %q, %v", ls, swap)
	}

	// Symmetrically: a demoted stripe stays demoted across a lull (idle
	// intervals are not calm evidence).
	s.lockSpec = DefaultHotLockSpec
	for i := 0; i < 20; i++ {
		if ls, _, swap := s.interval(0, 0); swap {
			t.Fatalf("idle interval %d restored (%q)", i, ls)
		}
	}
}

// TestSLOMinAttemptsFloor: a near-idle stripe's few missed ops are not a
// burn rate — below the min= evidence floor the policy must not act.
func TestSLOMinAttemptsFloor(t *testing.T) {
	s := newSLOScript(MustNew("slo?target=0.25&fast=3&slow=12&min=30"), "mcs-stp")
	// 100% miss rate but only 3 attempts per interval: 9 < 30 in the
	// fast window — no demotion.
	for i := 0; i < 10; i++ {
		if ls, _, swap := s.interval(3, 3); swap {
			t.Fatalf("demoted below the evidence floor at interval %d (%q)", i, ls)
		}
	}
	// Real traffic at the same rate clears the floor and demotes.
	demoted := false
	for i := 0; i < 3 && !demoted; i++ {
		_, _, demoted = s.interval(100, 100)
	}
	if !demoted {
		t.Fatal("did not demote once the evidence floor cleared")
	}
}

// TestSLODisabledAndAlreadyHot: target=0 disables the policy; a stripe
// already running the hot lock is left alone however hot it burns.
func TestSLODisabledAndAlreadyHot(t *testing.T) {
	s := newSLOScript(MustNew("slo?target=0&fast=1&min=1"), "mcs-stp")
	for i := 0; i < 10; i++ {
		if _, _, swap := s.interval(100, 100); swap {
			t.Fatalf("target=0 swapped at interval %d", i)
		}
	}
	hot := newSLOScript(MustNew("slo?target=0.1&fast=1&min=1"), "mcscr-stp?fairness=500")
	for i := 0; i < 10; i++ {
		if _, _, swap := hot.interval(100, 100); swap {
			t.Fatalf("swapped a stripe already on the hot lock at interval %d", i)
		}
	}
}
