package policy

import (
	"repro/internal/core"
	"repro/shard"
)

func init() {
	Register(Registration{
		Name:    "scanaware",
		Summary: "flips a scan-dominated stripe's backend to an ordered one (to=), back when scans fade; scanfrac=/hold=",
		Build: func(opts ...Option) Policy {
			cfg := resolve(opts)
			return &scanaware{
				frac: cfg.scanFrac,
				hold: cfg.hold,
				to:   cfg.ordered,
				st:   make(map[int]*scanawareState),
			}
		},
	})
}

// scanaware adapts the *storage* half of a stripe's configuration: when
// range-scan traffic dominates a stripe whose backend cannot serve it
// (the default hashmap answers every scan with ErrUnordered), flip the
// stripe to an ordered backend; when scan traffic fades, restore the
// original. It leans on the map counting scan *attempts* even when they
// are rejected — demand for order is visible before order exists.
//
// The signal, per stripe, per controller interval: the scan share
//
//	dScans / max(dAcquires, dScans)
//
// where dScans is the scan-attempt delta (map-level — every scan visits
// every stripe, and in particular acquires *this* stripe's lock once)
// and dAcquires the stripe's lock acquisition delta, so the ratio is the
// scan fraction of this stripe's traffic; with lock stats disabled the
// denominator degrades to dScans and any scan traffic reads as
// dominant. An idle interval (both deltas zero) leaves the hysteresis
// counters untouched rather than reading as calm.
//
// A share at or above scanfrac sustained for hold consecutive intervals
// flips the backend to the target; a share at or below scanfrac/2 for
// hold consecutive intervals flips it back. Flipping back surrenders
// order — subsequent scans fail with ErrUnordered until demand rebuilds
// — which is the honest cost of paying for order only while it earns
// its point-op overhead. scanfrac=0 disables the policy entirely (the
// same "0 disables this trigger" convention as malthusian's thresholds);
// without that rule a zero threshold would read every interval as both
// hot and calm and migrate the stripe back and forth forever.
//
// Two sources of counter noise are filtered before they can masquerade
// as evidence: an interval with fewer than minEvidence acquisitions is
// ignored outright (the controller's own per-tick snapshot acquires
// every stripe lock, so a pure traffic lull still shows a few
// acquisitions per interval — without the floor, a lull would read as
// "calm" and restore the unordered backend, paying two O(keys)
// migrations per lull), and rejected scans are added to the denominator
// on unordered stripes (they never acquire the lock).
type scanaware struct {
	frac float64
	hold int
	to   string
	st   map[int]*scanawareState
}

type scanawareState struct {
	orig     string // backend spec to restore when scans fade
	hotRuns  int
	calmRuns int
	flipped  bool
}

func (p *scanaware) state(i int) *scanawareState {
	s := p.st[i]
	if s == nil {
		s = &scanawareState{}
		p.st[i] = s
	}
	return s
}

// minEvidence is the minimum per-interval acquisition count for an
// interval to count as evidence at all. Monitoring traffic (the
// controller's own snapshots, Len/Range sweeps) contributes a handful
// of acquisitions per interval; real request traffic contributes orders
// of magnitude more. An interval below the floor is neither hot nor
// calm — it is ignored, like the documented idle case.
const minEvidence = 16

func (p *scanaware) Decide(prev, cur shard.StripeSnapshot) (lockSpec, backendSpec string, swap bool) {
	if p.frac == 0 {
		// Disabled, the same convention as malthusian's zero thresholds.
		return "", "", false
	}
	s := p.state(cur.Index)
	if s.flipped && cur.BackendSpec != p.to {
		// The stripe is not running our target backend: the flip never
		// landed (Reconfigure rejected the to= target — programmatic
		// WithOrderedSpec is not pre-validated), or another actor
		// installed a backend of their own since. Resync to the observed
		// state rather than restore over someone else's choice; if the
		// stripe is now unordered and scans persist, the flip is simply
		// re-attempted.
		s.flipped = false
		s.hotRuns, s.calmRuns = 0, 0
	}
	// Saturating, like every delta in the module: a mis-ordered or
	// mismatched snapshot pair must read as idle, not as 2^64 scans.
	dScans := core.SatSub(cur.Scans, prev.Scans)
	dAcq := cur.Lock.Sub(prev.Lock).Acquires
	den := dAcq
	if !cur.Ordered {
		// A rejected scan never acquires the stripe lock, so on an
		// unordered stripe the attempts are NOT in dAcq — add them, or
		// the share would overestimate exactly in the pre-flip case
		// this policy exists for (and the threshold would mean
		// different things before and after a flip).
		den = dAcq + dScans
	} else if dScans > den {
		den = dScans
	}
	if den < minEvidence {
		// Idle (or monitoring-only) interval: no evidence either way.
		return "", "", false
	}
	share := float64(dScans) / float64(den)
	if !s.flipped {
		if cur.Ordered {
			// The stripe's backend already serves scans — whatever spec
			// it is. Flipping would be an O(keys) migration for zero
			// functional gain.
			s.hotRuns, s.calmRuns = 0, 0
			return "", "", false
		}
		if share >= p.frac {
			s.hotRuns++
		} else {
			s.hotRuns = 0
		}
		if s.hotRuns >= p.hold {
			s.orig = cur.BackendSpec
			s.flipped = true
			s.hotRuns, s.calmRuns = 0, 0
			return "", p.to, true
		}
		return "", "", false
	}
	if share <= p.frac/2 {
		s.calmRuns++
	} else {
		s.calmRuns = 0
	}
	if s.calmRuns >= p.hold {
		s.flipped = false
		s.hotRuns, s.calmRuns = 0, 0
		return "", s.orig, true
	}
	return "", "", false
}
