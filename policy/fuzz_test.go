package policy

import "testing"

// New is run at vet time by the speclit analyzer over every constant
// policy spec in the module; it must be total and deterministic.
func FuzzNew(f *testing.F) {
	f.Add("static")
	f.Add("malthusian")
	f.Add("slo?target=0.1&hot=mcscr-stp")
	f.Add("slo?target=2")
	f.Add("scanaware")
	f.Add("malthusain")
	f.Add("static?bogus=1")
	f.Add("slo?target=0.1&target=0.2")
	f.Add(" STATIC ")
	f.Fuzz(func(t *testing.T, s string) {
		p1, err1 := New(s)
		p2, err2 := New(s)
		if (err1 == nil) != (err2 == nil) {
			t.Fatalf("New(%q) is nondeterministic: %v vs %v", s, err1, err2)
		}
		if err1 != nil {
			if p1 != nil {
				t.Fatalf("New(%q) returned both a policy and an error %v", s, err1)
			}
			return
		}
		if p1 == nil || p2 == nil {
			t.Fatalf("New(%q) succeeded with a nil policy", s)
		}
	})
}
