package policy

import (
	"strings"

	"repro/lock"
	"repro/shard"
)

// sameLock reports whether two lock specs name the same registered lock,
// ignoring parameters and resolving aliases: "mcscr-stp?fairness=500" is
// the same lock as "mcscr-stp". Unregistered names fall back to a
// case-insensitive name comparison.
func sameLock(a, b string) bool {
	return lockName(a) == lockName(b)
}

func lockName(spec string) string {
	name, _, _ := strings.Cut(spec, "?")
	if reg, ok := lock.Lookup(name); ok {
		return reg.Name
	}
	return strings.ToLower(strings.TrimSpace(name))
}

func init() {
	Register(Registration{
		Name:    "malthusian",
		Summary: "demotes a collapsing stripe's lock to a culling spec (hot=), restores it when calm; lwss=/parks=/hold=",
		Build: func(opts ...Option) Policy {
			cfg := resolve(opts)
			return &malthusian{
				lwss:  cfg.lwss,
				parks: cfg.parks,
				hold:  cfg.hold,
				hot:   cfg.hotLock,
				st:    make(map[int]*malthusianState),
			}
		},
	})
}

// malthusian is the paper's admission-policy thesis applied one level
// up: when a stripe's observed contention says its lock is collapsing —
// a park storm per interval, or a recent working set wider than the
// stripe can serve — demote the stripe to a culling/passivating lock
// spec (MCSCR by default), which restricts the working set the way §3 of
// the paper restricts the ACS. When the stripe calms down, restore the
// spec it was built with.
//
// Signals, per stripe, per controller interval:
//
//   - parks rate: cur.Lock.Parks - prev.Lock.Parks >= parks (voluntary
//     context switching is the paper's collapse symptom; 0 disables).
//   - recent working set: cur.Fairness.RecentLWSS >= lwss (needs a
//     history-recording map, Config.HistoryCap > 0; 0 disables). A
//     capped history freezes this signal once full — size HistoryCap for
//     the run length, or rely on the parks trigger.
//
// Either signal sustained for hold consecutive intervals demotes; both
// signals clear — parks rate at or below half the threshold, recent
// working set strictly below lwss — for hold consecutive intervals
// restores. The half-threshold re-entry band plus the hold depth is the
// hysteresis: a stripe oscillating around the threshold swaps at most
// once per hold intervals in the worst case, and a borderline stripe
// that never sustains a signal never swaps at all.
type malthusian struct {
	lwss  float64
	parks uint64
	hold  int
	hot   string
	st    map[int]*malthusianState
}

type malthusianState struct {
	orig     string // lock spec to restore on recovery
	hotRuns  int
	calmRuns int
	demoted  bool
}

func (p *malthusian) state(i int) *malthusianState {
	s := p.st[i]
	if s == nil {
		s = &malthusianState{}
		p.st[i] = s
	}
	return s
}

func (p *malthusian) Decide(prev, cur shard.StripeSnapshot) (lockSpec, backendSpec string, swap bool) {
	s := p.state(cur.Index)
	if s.demoted && !sameLock(cur.LockSpec, p.hot) {
		// The demotion never landed (Reconfigure rejected the hot=
		// target — programmatic WithHotLockSpec is not pre-validated —
		// or another actor swapped the lock since). Resync to the
		// observed state and keep watching, rather than believing a
		// swap that did not happen for the rest of the run.
		s.demoted = false
		s.hotRuns, s.calmRuns = 0, 0
	}
	dParks := cur.Lock.Sub(prev.Lock).Parks
	parksHot := p.parks > 0 && dParks >= p.parks
	lwssHot := p.lwss > 0 && cur.Fairness.RecentLWSS >= p.lwss
	if !s.demoted {
		if sameLock(cur.LockSpec, p.hot) {
			// Already running the hot lock (configured that way —
			// possibly with tuned parameters — or swapped by someone
			// else): a demotion would discard those parameters and
			// churn the queue for nothing.
			s.hotRuns, s.calmRuns = 0, 0
			return "", "", false
		}
		if parksHot || lwssHot {
			s.hotRuns++
		} else {
			s.hotRuns = 0
		}
		if s.hotRuns >= p.hold {
			s.orig = cur.LockSpec
			s.demoted = true
			s.hotRuns, s.calmRuns = 0, 0
			return p.hot, "", true
		}
		return "", "", false
	}
	parksCalm := p.parks == 0 || dParks <= p.parks/2
	lwssCalm := p.lwss == 0 || cur.Fairness.RecentLWSS < p.lwss
	if parksCalm && lwssCalm {
		s.calmRuns++
	} else {
		s.calmRuns = 0
	}
	if s.calmRuns >= p.hold {
		s.demoted = false
		s.hotRuns, s.calmRuns = 0, 0
		return s.orig, "", true
	}
	return "", "", false
}
